// Package exp generates the experiment sets of paper §4.1 and couples
// experiments with measured throughputs.
//
// The generated set contains, for instruction forms i over the ISA under
// test:
//
//  1. a singleton {i→1} per form, measuring the individual throughput
//     t*(i);
//  2. a pair {iA→1, iB→1} per unordered pair of forms;
//  3. a weighted pair {iA→1, iB→n} with n = ⌈t*(iA)/t*(iB)⌉ per ordered
//     pair with t*(iA) > t*(iB).
//
// Pairs expose conflicting resource requirements; weighted pairs balance
// the mass of a slow instruction against several fast ones so partial
// conflicts become visible in the steady-state throughput.
package exp

import (
	"context"
	"fmt"
	"math"

	"pmevo/internal/portmap"
	"pmevo/internal/runctrl"
)

// Measurement couples an experiment with its measured throughput.
type Measurement struct {
	Exp        portmap.Experiment
	Throughput float64
}

// Measurer produces a throughput for an experiment. It is implemented by
// measure.Harness (simulated hardware) and could be implemented by a
// driver for real hardware.
type Measurer interface {
	Measure(e portmap.Experiment) (float64, error)
}

// BatchMeasurer is an optional extension of Measurer for backends that
// can measure a whole batch at once (e.g. measure.Harness, which fans
// the deterministic simulations out over all cores). Results must be in
// experiment order and identical to sequential Measure calls.
//
// The contract deliberately leaves room for backends to amortize the
// deterministic part of a measurement — measure.Harness caches the
// noiseless steady-state simulation per canonical kernel and reuses it
// across repeated and aliased bodies — as long as the noise/variance
// component is still drawn per measurement in experiment order, so batch
// and sequential results stay bit-identical. Experiments in a batch must
// NOT be deduplicated at this level: two equal experiments are distinct
// measurements and receive independent noise.
type BatchMeasurer interface {
	Measurer
	MeasureAll(ctx context.Context, es []portmap.Experiment) ([]float64, error)
}

// measureAll measures a batch through the fastest interface the
// measurer supports, honoring cancellation between measurements either
// way (an interrupted batch returns no partial results — see
// measure.Harness.MeasureAll for why batches are all-or-nothing).
func measureAll(ctx context.Context, m Measurer, es []portmap.Experiment) ([]float64, error) {
	if bm, ok := m.(BatchMeasurer); ok {
		return bm.MeasureAll(ctx, es)
	}
	out := make([]float64, len(es))
	for i, e := range es {
		if err := runctrl.Check(ctx); err != nil {
			return nil, err
		}
		tp, err := m.Measure(e)
		if err != nil {
			return nil, fmt.Errorf("experiment %d: %w", i, err)
		}
		out[i] = tp
	}
	return out, nil
}

// Set is a measured experiment set for an ISA with numInsts instructions.
type Set struct {
	NumInsts int
	// Individual[i] is the measured individual throughput t*(i).
	Individual []float64
	// Measurements contains all measured experiments, including the
	// singletons.
	Measurements []Measurement
}

// Singletons returns the singleton experiments {i→1} in instruction
// order.
func Singletons(numInsts int) []portmap.Experiment {
	out := make([]portmap.Experiment, numInsts)
	for i := range out {
		out[i] = portmap.Experiment{{Inst: i, Count: 1}}
	}
	return out
}

// PairExperiments returns the §4.1 pair and weighted-pair experiments
// for the given individual throughputs, deduplicated by multiset.
func PairExperiments(individual []float64) []portmap.Experiment {
	n := len(individual)
	var out []portmap.Experiment
	seen := make(map[string]bool)
	add := func(e portmap.Experiment) {
		e = e.Normalize()
		k := e.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, e)
		}
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			add(portmap.Experiment{{Inst: a, Count: 1}, {Inst: b, Count: 1}})
			// Weighted pair: slower instruction once, faster one often
			// enough to balance the masses.
			tA, tB := individual[a], individual[b]
			if tA > tB && tB > 0 {
				k := int(math.Ceil(tA / tB))
				add(portmap.Experiment{{Inst: a, Count: 1}, {Inst: b, Count: k}})
			} else if tB > tA && tA > 0 {
				k := int(math.Ceil(tB / tA))
				add(portmap.Experiment{{Inst: b, Count: 1}, {Inst: a, Count: k}})
			}
		}
	}
	return out
}

// GenerateAndMeasure runs the full §4.1 protocol: measure singletons,
// derive pair and weighted-pair experiments from the individual
// throughputs, and measure those too. Cancellation (honored between
// measurement batches and inside them) returns the typed
// runctrl.ErrCanceled/ErrDeadline — a partially measured set is never
// returned, because downstream inference assumes a complete protocol.
func GenerateAndMeasure(ctx context.Context, m Measurer, numInsts int) (*Set, error) {
	if numInsts <= 0 {
		return nil, fmt.Errorf("exp: no instructions")
	}
	set := &Set{
		NumInsts:   numInsts,
		Individual: make([]float64, numInsts),
	}
	singles := Singletons(numInsts)
	tps, err := measureAll(ctx, m, singles)
	if err != nil {
		if runctrl.Interrupted(err) {
			return nil, err
		}
		return nil, fmt.Errorf("exp: singletons: %w", err)
	}
	for i, e := range singles {
		if tps[i] <= 0 {
			return nil, fmt.Errorf("exp: singleton %d: non-positive throughput %g", i, tps[i])
		}
		set.Individual[i] = tps[i]
		set.Measurements = append(set.Measurements, Measurement{Exp: e, Throughput: tps[i]})
	}
	pairs := PairExperiments(set.Individual)
	tps, err = measureAll(ctx, m, pairs)
	if err != nil {
		if runctrl.Interrupted(err) {
			return nil, err
		}
		return nil, fmt.Errorf("exp: pairs: %w", err)
	}
	for i, e := range pairs {
		set.Measurements = append(set.Measurements, Measurement{Exp: e, Throughput: tps[i]})
	}
	return set, nil
}

// NumExperiments returns the number of measured experiments in the set.
func (s *Set) NumExperiments() int { return len(s.Measurements) }

// PairThroughputs indexes the set's two-instruction measurements:
// the returned map's key identifies (a, countA, b, countB) with a < b.
type PairKey struct {
	A, CountA int
	B, CountB int
}

// PairThroughputs returns all measurements that involve exactly two
// distinct instructions, keyed by their shape. Congruence filtering uses
// this index.
func (s *Set) PairThroughputs() map[PairKey]float64 {
	out := make(map[PairKey]float64)
	for _, m := range s.Measurements {
		e := m.Exp.Normalize()
		if len(e) != 2 {
			continue
		}
		out[PairKey{A: e[0].Inst, CountA: e[0].Count, B: e[1].Inst, CountB: e[1].Count}] = m.Throughput
	}
	return out
}

// Project maps a measurement set onto a reduced instruction space:
// keep[i] gives the new index of old instruction i, or -1 to drop
// experiments mentioning it. Congruence filtering uses Project to
// restrict the evolutionary algorithm's inputs to class representatives
// (§4.3: "only needs to consider experiments that consist of these
// representatives").
func (s *Set) Project(keep []int, newCount int) *Set {
	out := &Set{
		NumInsts:   newCount,
		Individual: make([]float64, newCount),
	}
	for old, nw := range keep {
		if nw >= 0 {
			out.Individual[nw] = s.Individual[old]
		}
	}
	for _, m := range s.Measurements {
		var proj portmap.Experiment
		ok := true
		for _, t := range m.Exp {
			nw := keep[t.Inst]
			if nw < 0 {
				ok = false
				break
			}
			proj = append(proj, portmap.InstCount{Inst: nw, Count: t.Count})
		}
		if ok {
			out.Measurements = append(out.Measurements, Measurement{
				Exp:        proj.Normalize(),
				Throughput: m.Throughput,
			})
		}
	}
	return out
}

// RandomBenchmarkSet samples `size` experiments, each a uniformly random
// multiset of `length` instructions, reproducing the §5.3 benchmark sets
// ("sampled uniformly at random from the set of all instruction
// multi-sets of size 5"). Sampling uses the provided deterministic
// source.
func RandomBenchmarkSet(rng interface{ Intn(int) int }, numInsts, size, length int) []portmap.Experiment {
	out := make([]portmap.Experiment, size)
	for i := range out {
		var e portmap.Experiment
		for j := 0; j < length; j++ {
			e = append(e, portmap.InstCount{Inst: rng.Intn(numInsts), Count: 1})
		}
		out[i] = e.Normalize()
	}
	return out
}
