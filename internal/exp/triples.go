package exp

import (
	"math/rand"

	"pmevo/internal/portmap"
)

// The paper's experiment design stops at (weighted) pairs: "In theory,
// longer experiments that combine instances of more than two different
// instruction forms can unveil resource conflicts that cannot be covered
// by these experiments. However, when exploring the experiment design
// space experimentally for existing processors, we did not observe
// benefits in port mapping quality from more complex experiments"
// (§4.1). This file implements that extension so the claim can be
// tested: TripleExperiments samples three-form experiments, and the
// ablation benchmarks compare inference quality with and without them.

// TripleExperiments samples up to n distinct experiments that combine
// three different instruction forms {iA→1, iB→1, iC→1}, optionally
// mass-balanced against the individual throughputs like the weighted
// pairs: each form i appears ⌈maxT/t*(i)⌉ times, where maxT is the
// largest individual throughput in the triple.
func TripleExperiments(rng *rand.Rand, individual []float64, n int, balanced bool) []portmap.Experiment {
	numInsts := len(individual)
	if numInsts < 3 || n <= 0 {
		return nil
	}
	seen := make(map[string]bool)
	var out []portmap.Experiment
	// Bounded rejection sampling: the space of triples is large, so
	// collisions are rare; the attempt cap guards tiny ISAs.
	for attempts := 0; len(out) < n && attempts < 20*n; attempts++ {
		a := rng.Intn(numInsts)
		b := rng.Intn(numInsts)
		c := rng.Intn(numInsts)
		if a == b || b == c || a == c {
			continue
		}
		var e portmap.Experiment
		if balanced {
			maxT := individual[a]
			for _, i := range []int{b, c} {
				if individual[i] > maxT {
					maxT = individual[i]
				}
			}
			for _, i := range []int{a, b, c} {
				count := 1
				if individual[i] > 0 {
					count = int(ceil(maxT / individual[i]))
					if count < 1 {
						count = 1
					}
				}
				e = append(e, portmap.InstCount{Inst: i, Count: count})
			}
		} else {
			e = portmap.Experiment{
				{Inst: a, Count: 1}, {Inst: b, Count: 1}, {Inst: c, Count: 1},
			}
		}
		e = e.Normalize()
		k := e.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, e)
	}
	return out
}

func ceil(x float64) float64 {
	i := float64(int64(x))
	if x > i {
		return i + 1
	}
	return i
}

// ExtendWithTriples measures additional triple experiments and appends
// them to the set, returning the number added.
func (s *Set) ExtendWithTriples(m Measurer, rng *rand.Rand, n int, balanced bool) (int, error) {
	triples := TripleExperiments(rng, s.Individual, n, balanced)
	for _, e := range triples {
		tp, err := m.Measure(e)
		if err != nil {
			return 0, err
		}
		s.Measurements = append(s.Measurements, Measurement{Exp: e, Throughput: tp})
	}
	return len(triples), nil
}
