package exp

import (
	"context"
	"math/rand"
	"testing"

	"pmevo/internal/portmap"
)

func TestTripleExperimentsBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ind := []float64{1, 1, 1, 1, 1}
	es := TripleExperiments(rng, ind, 10, false)
	if len(es) != 10 {
		t.Fatalf("got %d experiments, want 10", len(es))
	}
	seen := make(map[string]bool)
	for _, e := range es {
		if len(e) != 3 {
			t.Errorf("experiment %v does not combine 3 distinct forms", e)
		}
		if e.TotalCount() != 3 {
			t.Errorf("unbalanced triple %v should have 3 instances", e)
		}
		if seen[e.Key()] {
			t.Errorf("duplicate experiment %v", e)
		}
		seen[e.Key()] = true
	}
}

func TestTripleExperimentsBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Form 0 is 4x slower: balanced triples must repeat the fast forms.
	ind := []float64{4, 1, 1, 1}
	es := TripleExperiments(rng, ind, 5, true)
	for _, e := range es {
		counts := make(map[int]int)
		for _, term := range e {
			counts[term.Inst] = term.Count
		}
		if c, ok := counts[0]; ok {
			if c != 1 {
				t.Errorf("slow form repeated %d times in %v", c, e)
			}
			for inst, c := range counts {
				if inst != 0 && c != 4 {
					t.Errorf("fast form %d has count %d in %v, want 4", inst, c, e)
				}
			}
		}
	}
}

func TestTripleExperimentsDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if es := TripleExperiments(rng, []float64{1, 1}, 5, false); es != nil {
		t.Errorf("2-instruction ISA produced triples: %v", es)
	}
	if es := TripleExperiments(rng, []float64{1, 1, 1}, 0, false); es != nil {
		t.Errorf("n=0 produced triples: %v", es)
	}
	// A 3-instruction ISA has exactly one unbalanced triple.
	es := TripleExperiments(rng, []float64{1, 1, 1}, 10, false)
	if len(es) != 1 {
		t.Errorf("3-instruction ISA yielded %d distinct triples, want 1", len(es))
	}
}

func TestExtendWithTriples(t *testing.T) {
	mm := &modelMeasurer{m: testMapping()}
	set, err := GenerateAndMeasure(context.Background(), mm, 3)
	if err != nil {
		t.Fatal(err)
	}
	before := set.NumExperiments()
	rng := rand.New(rand.NewSource(7))
	n, err := set.ExtendWithTriples(mm, rng, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 { // only one distinct triple over 3 forms
		t.Errorf("added %d triples, want 1", n)
	}
	if set.NumExperiments() != before+n {
		t.Errorf("set grew by %d, want %d", set.NumExperiments()-before, n)
	}
	// The appended measurement must be model-consistent.
	last := set.Measurements[len(set.Measurements)-1]
	if last.Throughput <= 0 {
		t.Errorf("triple measured %g", last.Throughput)
	}
}

func TestExtendWithTriplesPropagatesErrors(t *testing.T) {
	mm := &modelMeasurer{m: testMapping()}
	set, err := GenerateAndMeasure(context.Background(), mm, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	if _, err := set.ExtendWithTriples(&failingMeasurer{}, rng, 3, false); err == nil {
		t.Error("measurement failure not propagated")
	}
	_ = portmap.Experiment{}
}
