package exp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pmevo/internal/portmap"
	"pmevo/internal/throughput"
)

// modelMeasurer measures experiments exactly according to a ground-truth
// mapping (noise-free), for fast unit testing.
type modelMeasurer struct {
	m     *portmap.Mapping
	calls int
}

func (mm *modelMeasurer) Measure(e portmap.Experiment) (float64, error) {
	mm.calls++
	return throughput.OfExperiment(mm.m, e), nil
}

// failingMeasurer errors after k calls.
type failingMeasurer struct{ left int }

func (fm *failingMeasurer) Measure(e portmap.Experiment) (float64, error) {
	if fm.left <= 0 {
		return 0, errors.New("boom")
	}
	fm.left--
	return 1, nil
}

func testMapping() *portmap.Mapping {
	// 3 instructions over 3 ports: i0 on {P0}, i1 on {P0,P1}, i2 two µops.
	m := portmap.NewMapping(3, 3)
	m.SetDecomp(0, []portmap.UopCount{{Ports: portmap.MakePortSet(0), Count: 1}})
	m.SetDecomp(1, []portmap.UopCount{{Ports: portmap.MakePortSet(0, 1), Count: 1}})
	m.SetDecomp(2, []portmap.UopCount{
		{Ports: portmap.MakePortSet(2), Count: 2},
	})
	return m
}

func TestSingletons(t *testing.T) {
	s := Singletons(3)
	if len(s) != 3 {
		t.Fatalf("got %d singletons", len(s))
	}
	for i, e := range s {
		if len(e) != 1 || e[0].Inst != i || e[0].Count != 1 {
			t.Errorf("singleton %d = %v", i, e)
		}
	}
}

func TestPairExperimentsShapes(t *testing.T) {
	// individual throughputs: i0: 1.0, i1: 0.5, i2: 2.0.
	ind := []float64{1.0, 0.5, 2.0}
	es := PairExperiments(ind)
	keys := make(map[string]bool)
	for _, e := range es {
		keys[e.Key()] = true
	}
	// Plain pairs.
	for _, want := range []string{"0:1,1:1", "0:1,2:1", "1:1,2:1"} {
		if !keys[want] {
			t.Errorf("missing pair %q", want)
		}
	}
	// Weighted pairs: t0 > t1 → {0:1, 1:2}; t2 > t0 → {2:1, 0:2};
	// t2 > t1 → {2:1, 1:4}.
	for _, want := range []string{"0:1,1:2", "0:2,2:1", "1:4,2:1"} {
		if !keys[want] {
			t.Errorf("missing weighted pair %q (have %v)", want, keys)
		}
	}
	if len(es) != 6 {
		t.Errorf("got %d experiments, want 6", len(es))
	}
}

func TestPairExperimentsEqualThroughputsNoWeighted(t *testing.T) {
	es := PairExperiments([]float64{1, 1})
	if len(es) != 1 {
		t.Fatalf("got %d experiments, want only the plain pair", len(es))
	}
}

func TestPairExperimentsDedup(t *testing.T) {
	// t0=2, t1=1: weighted pair is {0:1, 1:2}; no duplicate of the plain
	// pair appears even though ceil(2/1)=2.
	es := PairExperiments([]float64{2, 1})
	seen := make(map[string]int)
	for _, e := range es {
		seen[e.Key()]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("experiment %q appears %d times", k, n)
		}
	}
}

func TestGenerateAndMeasure(t *testing.T) {
	mm := &modelMeasurer{m: testMapping()}
	set, err := GenerateAndMeasure(context.Background(), mm, 3)
	if err != nil {
		t.Fatal(err)
	}
	if set.NumInsts != 3 {
		t.Errorf("NumInsts = %d", set.NumInsts)
	}
	// Individual throughputs: i0 = 1 (single port), i1 = 0.5 (two
	// ports), i2 = 2 (two µops on one port).
	want := []float64{1, 0.5, 2}
	for i, w := range want {
		if math.Abs(set.Individual[i]-w) > 1e-9 {
			t.Errorf("Individual[%d] = %g, want %g", i, set.Individual[i], w)
		}
	}
	if set.NumExperiments() < 6 {
		t.Errorf("only %d experiments", set.NumExperiments())
	}
	if mm.calls != set.NumExperiments() {
		t.Errorf("measurer called %d times for %d experiments", mm.calls, set.NumExperiments())
	}
}

func TestGenerateAndMeasureErrors(t *testing.T) {
	if _, err := GenerateAndMeasure(context.Background(), &modelMeasurer{m: testMapping()}, 0); err == nil {
		t.Error("zero instructions accepted")
	}
	if _, err := GenerateAndMeasure(context.Background(), &failingMeasurer{left: 1}, 3); err == nil {
		t.Error("failing measurer not propagated")
	}
	if _, err := GenerateAndMeasure(context.Background(), &failingMeasurer{left: 4}, 3); err == nil {
		t.Error("failure in pair phase not propagated")
	}
}

func TestPairThroughputs(t *testing.T) {
	mm := &modelMeasurer{m: testMapping()}
	set, err := GenerateAndMeasure(context.Background(), mm, 3)
	if err != nil {
		t.Fatal(err)
	}
	pairs := set.PairThroughputs()
	// The pair {i0, i1} must be present with its model throughput:
	// masses p0:1, p01:1 → Q={P0}: 1, Q={P0,P1}: 1 → 1.
	tp, ok := pairs[PairKey{A: 0, CountA: 1, B: 1, CountB: 1}]
	if !ok {
		t.Fatal("pair (0,1) missing")
	}
	if math.Abs(tp-1) > 1e-9 {
		t.Errorf("pair (0,1) throughput = %g, want 1", tp)
	}
	// Singletons must not appear.
	for k := range pairs {
		if k.A == k.B {
			t.Errorf("degenerate pair key %+v", k)
		}
	}
}

func TestProject(t *testing.T) {
	mm := &modelMeasurer{m: testMapping()}
	set, err := GenerateAndMeasure(context.Background(), mm, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Keep instructions 0 and 2 (drop 1).
	keep := []int{0, -1, 1}
	proj := set.Project(keep, 2)
	if proj.NumInsts != 2 {
		t.Errorf("NumInsts = %d", proj.NumInsts)
	}
	if proj.Individual[0] != set.Individual[0] || proj.Individual[1] != set.Individual[2] {
		t.Errorf("Individual = %v", proj.Individual)
	}
	for _, m := range proj.Measurements {
		for _, term := range m.Exp {
			if term.Inst < 0 || term.Inst >= 2 {
				t.Errorf("projected experiment references instruction %d", term.Inst)
			}
		}
	}
	// All experiments containing old instruction 1 are gone: the
	// remaining two-instruction experiments must be over {0, 1(new)}.
	found := false
	for _, m := range proj.Measurements {
		if len(m.Exp.Normalize()) == 2 {
			found = true
		}
	}
	if !found {
		t.Error("no pair experiments survived projection")
	}
}

func TestRandomBenchmarkSet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	set := RandomBenchmarkSet(rng, 10, 100, 5)
	if len(set) != 100 {
		t.Fatalf("got %d experiments", len(set))
	}
	distinct := make(map[string]bool)
	for _, e := range set {
		if e.TotalCount() != 5 {
			t.Errorf("experiment %v has length %d, want 5", e, e.TotalCount())
		}
		distinct[e.Key()] = true
	}
	if len(distinct) < 50 {
		t.Errorf("only %d distinct experiments of 100", len(distinct))
	}
}

func ExamplePairExperiments() {
	es := PairExperiments([]float64{2, 1})
	for _, e := range es {
		fmt.Println(e.Key())
	}
	// Output:
	// 0:1,1:1
	// 0:1,1:2
}
