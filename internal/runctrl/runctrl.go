// Package runctrl defines the typed interruption errors shared by every
// long-running entry point in the compute stack (evolution, fitness
// evaluation, measurement, the eval drivers) and small helpers for
// mapping context state onto them.
//
// The contract: an interrupted entry point stops at its next natural
// cancellation point (a generation boundary, an epoch barrier, a
// work-pool index claim), returns the best partial result it has, and
// wraps exactly one of the two sentinels below so callers can
// distinguish "the user hit Ctrl-C" (ErrCanceled) from "the deadline
// budget ran out" (ErrDeadline) with errors.Is — without losing the
// partial work either way.
package runctrl

import (
	"context"
	"errors"
	"fmt"
)

// ErrCanceled reports that a run was cut short by context cancellation
// (SIGINT/SIGTERM, an explicit CancelFunc). Results returned alongside
// it are valid partial results: everything completed before the
// cancellation point.
var ErrCanceled = errors.New("run canceled")

// ErrDeadline reports that a run was cut short by a context deadline
// (-deadline on the CLIs). Like ErrCanceled, it travels with the
// best-so-far partial result rather than discarding it.
var ErrDeadline = errors.New("run deadline exceeded")

// Check maps the context's current state onto the typed sentinels:
// nil while the context is live, ErrDeadline after its deadline passed,
// ErrCanceled after cancellation. Long loops call it at every natural
// stopping point; the returned error already wraps the sentinel, so
// callers propagate it as-is (optionally adding their own context with
// %w).
func Check(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return cause(ctx)
	default:
		return nil
	}
}

// cause converts a done context's error into the matching sentinel,
// preserving the original error text via wrapping.
func cause(ctx context.Context) error {
	err := context.Cause(ctx)
	if err == nil {
		err = ctx.Err()
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrDeadline, err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	case err != nil:
		// A custom cancel cause: still an interruption.
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	default:
		return ErrCanceled
	}
}

// Interrupted reports whether err (or anything it wraps) is one of the
// interruption sentinels — i.e. whether a partial result may accompany
// it. Plain failures (I/O errors, invalid options) return false.
func Interrupted(err error) bool {
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadline)
}
