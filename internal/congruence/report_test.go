package congruence

import (
	"bytes"
	"strings"
	"testing"

	"pmevo/internal/portmap"
)

func reportClasses(t *testing.T) *Classes {
	t.Helper()
	m := portmap.NewMapping(4, 3)
	p01 := portmap.MakePortSet(0, 1)
	p2 := portmap.MakePortSet(2)
	m.SetDecomp(0, []portmap.UopCount{{Ports: p01, Count: 1}})
	m.SetDecomp(1, []portmap.UopCount{{Ports: p01, Count: 1}})
	m.SetDecomp(2, []portmap.UopCount{{Ports: p01, Count: 1}})
	m.SetDecomp(3, []portmap.UopCount{{Ports: p2, Count: 1}})
	set := buildSet(t, m)
	classes, err := Partition(set, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	return classes
}

func TestReport(t *testing.T) {
	classes := reportClasses(t)
	names := []string{"add", "sub", "or", "store"}
	out := classes.Report(names)
	if !strings.Contains(out, "4 instruction forms in 2 congruence classes") {
		t.Errorf("header wrong:\n%s", out)
	}
	// Largest class first: the 3-member ALU class.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.Contains(lines[1], "3 forms") || !strings.Contains(lines[1], "add") {
		t.Errorf("first class line = %q", lines[1])
	}
	if !strings.Contains(out, "store") {
		t.Errorf("store class missing:\n%s", out)
	}
	// Without names, IDs render as I<n>.
	anon := classes.Report(nil)
	if !strings.Contains(anon, "I0") {
		t.Errorf("anonymous report missing I0:\n%s", anon)
	}
}

func TestReportTruncatesLargeClasses(t *testing.T) {
	// 12 congruent forms: the member list is truncated with a count.
	m := portmap.NewMapping(12, 2)
	p01 := portmap.MakePortSet(0, 1)
	for i := 0; i < 12; i++ {
		m.SetDecomp(i, []portmap.UopCount{{Ports: p01, Count: 1}})
	}
	set := buildSet(t, m)
	classes, err := Partition(set, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	out := classes.Report(nil)
	if !strings.Contains(out, "+4 more") {
		t.Errorf("expected truncation marker:\n%s", out)
	}
}

func TestClassesCSV(t *testing.T) {
	classes := reportClasses(t)
	var buf bytes.Buffer
	if err := classes.WriteCSV(&buf, []string{"add", "sub", "or", "store"}); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.HasPrefix(got, "instruction,class,representative\n") {
		t.Errorf("CSV header missing:\n%s", got)
	}
	if !strings.Contains(got, "sub,0,add") {
		t.Errorf("CSV rows wrong:\n%s", got)
	}
	if strings.Count(got, "\n") != 5 {
		t.Errorf("CSV has %d lines", strings.Count(got, "\n"))
	}
}
