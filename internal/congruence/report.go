package congruence

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Report renders the congruence partition as human-readable text: one
// line per class with its representative and members, largest classes
// first. instNames may be nil, in which case instructions render as
// I<n>.
func (c *Classes) Report(instNames []string) string {
	name := func(i int) string {
		if instNames != nil && i < len(instNames) {
			return instNames[i]
		}
		return fmt.Sprintf("I%d", i)
	}
	order := make([]int, c.NumClasses())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if len(c.Members[order[a]]) != len(c.Members[order[b]]) {
			return len(c.Members[order[a]]) > len(c.Members[order[b]])
		}
		return order[a] < order[b]
	})

	var b strings.Builder
	fmt.Fprintf(&b, "%d instruction forms in %d congruence classes (%.0f%% congruent)\n",
		c.NumInsts, c.NumClasses(), c.ReductionRatio()*100)
	for _, cls := range order {
		members := c.Members[cls]
		fmt.Fprintf(&b, "class %d (%d forms, rep %s):", cls, len(members), name(c.Rep[cls]))
		const maxShown = 8
		for i, m := range members {
			if i == maxShown {
				fmt.Fprintf(&b, " … +%d more", len(members)-maxShown)
				break
			}
			fmt.Fprintf(&b, " %s", name(m))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteCSV emits "instruction,class,representative" rows.
func (c *Classes) WriteCSV(w io.Writer, instNames []string) error {
	name := func(i int) string {
		if instNames != nil && i < len(instNames) {
			return instNames[i]
		}
		return fmt.Sprintf("I%d", i)
	}
	if _, err := fmt.Fprintln(w, "instruction,class,representative"); err != nil {
		return err
	}
	for i := 0; i < c.NumInsts; i++ {
		cls := c.ClassOf[i]
		if _, err := fmt.Fprintf(w, "%s,%d,%s\n", name(i), cls, name(c.Rep[cls])); err != nil {
			return err
		}
	}
	return nil
}
