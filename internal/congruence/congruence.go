// Package congruence implements the congruence filtering of paper §4.3:
// instruction forms that the measured experiment set cannot distinguish
// are merged into classes, and only one representative per class enters
// the evolutionary search.
//
// Two instruction forms iA and iB are congruent iff
//
//   - their individual throughputs are equal up to ε, and
//   - every two-instruction experiment shape {iA→m, iC→n} measures
//     equally (up to ε) to its counterpart {iB→m, iC→n}, for every other
//     form iC.
//
// Throughputs t1, t2 count as equal when their symmetric relative
// difference |t1−t2| / (|t1+t2|/2) is below ε.
package congruence

import (
	"fmt"
	"sort"

	"pmevo/internal/exp"
	"pmevo/internal/portmap"
)

// Classes is a partition of the instruction forms into congruence
// classes.
type Classes struct {
	// NumInsts is the size of the original instruction space.
	NumInsts int
	// ClassOf maps each instruction to its class index.
	ClassOf []int
	// Members lists the instructions of each class in increasing order.
	Members [][]int
	// Rep is the representative (smallest member) of each class.
	Rep []int
}

// NumClasses returns the number of congruence classes.
func (c *Classes) NumClasses() int { return len(c.Members) }

// ReductionRatio returns the fraction of instructions eliminated by the
// filtering, the "insns found congruent" row of Table 2.
func (c *Classes) ReductionRatio() float64 {
	if c.NumInsts == 0 {
		return 0
	}
	return 1 - float64(c.NumClasses())/float64(c.NumInsts)
}

// Equal reports whether two throughputs are equal under the ε criterion.
func Equal(t1, t2, epsilon float64) bool {
	if t1 == t2 {
		return true
	}
	mean := (abs(t1) + abs(t2)) / 2 // |t1+t2|/2 for positive throughputs
	if mean == 0 {
		return false
	}
	return abs(t1-t2)/mean < epsilon
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Partition computes the congruence classes of the measured set.
func Partition(set *exp.Set, epsilon float64) (*Classes, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("congruence: epsilon must be positive")
	}
	n := set.NumInsts
	pairs := set.PairThroughputs()

	// pairShape returns the measured throughput of {x→m, other→n} if
	// present.
	pairShape := func(x, m, other, n int) (float64, bool) {
		if x == other {
			return 0, false
		}
		k := exp.PairKey{A: x, CountA: m, B: other, CountB: n}
		if x > other {
			k = exp.PairKey{A: other, CountA: n, B: x, CountB: m}
		}
		tp, ok := pairs[k]
		return tp, ok
	}

	// shapesOf collects, per instruction x, the set of (m, other, n)
	// shapes that were measured with it.
	type shape struct{ m, other, n int }
	shapesOf := make([][]shape, n)
	for k := range pairs {
		shapesOf[k.A] = append(shapesOf[k.A], shape{m: k.CountA, other: k.B, n: k.CountB})
		shapesOf[k.B] = append(shapesOf[k.B], shape{m: k.CountB, other: k.A, n: k.CountA})
	}
	// Map iteration filled shapesOf in randomized order; congruent()
	// below only quantifies over each shape set, but a canonical order
	// keeps the partition structurally deterministic for debugging and
	// any future order-sensitive consumer.
	for i := range shapesOf {
		sort.Slice(shapesOf[i], func(a, b int) bool {
			sa, sb := shapesOf[i][a], shapesOf[i][b]
			if sa.m != sb.m {
				return sa.m < sb.m
			}
			if sa.other != sb.other {
				return sa.other < sb.other
			}
			return sa.n < sb.n
		})
	}

	congruent := func(a, b int) bool {
		if !Equal(set.Individual[a], set.Individual[b], epsilon) {
			return false
		}
		// Every shape measured with a must be measured with b (with the
		// other instruction ≠ a, b) and agree, and vice versa.
		check := func(x, y int) bool {
			for _, s := range shapesOf[x] {
				if s.other == x || s.other == y {
					continue
				}
				tx, okx := pairShape(x, s.m, s.other, s.n)
				ty, oky := pairShape(y, s.m, s.other, s.n)
				if !okx {
					continue
				}
				if !oky {
					// The counterpart shape was not measured; the
					// experiments cannot distinguish the two forms on a
					// shape only one of them has, so skip it. (This
					// happens for weighted pairs whose multiplier was
					// derived from slightly different throughputs.)
					continue
				}
				if !Equal(tx, ty, epsilon) {
					return false
				}
			}
			return true
		}
		return check(a, b) && check(b, a)
	}

	// Union-find over transitive merging. Congruence by ε-equality is
	// not strictly transitive; following the paper we partition greedily
	// into classes whose representative certifies membership.
	classOf := make([]int, n)
	for i := range classOf {
		classOf[i] = -1
	}
	var members [][]int
	var reps []int
	for i := 0; i < n; i++ {
		placed := false
		for c := range reps {
			if congruent(reps[c], i) {
				classOf[i] = c
				members[c] = append(members[c], i)
				placed = true
				break
			}
		}
		if !placed {
			classOf[i] = len(reps)
			reps = append(reps, i)
			members = append(members, []int{i})
		}
	}
	for c := range members {
		sort.Ints(members[c])
	}
	return &Classes{
		NumInsts: n,
		ClassOf:  classOf,
		Members:  members,
		Rep:      reps,
	}, nil
}

// ProjectSet restricts a measurement set to class representatives,
// renumbering instructions to class indices. Experiments mentioning
// non-representative forms are dropped.
func (c *Classes) ProjectSet(set *exp.Set) *exp.Set {
	keep := make([]int, c.NumInsts)
	for i := range keep {
		keep[i] = -1
	}
	for cls, rep := range c.Rep {
		keep[rep] = cls
	}
	return set.Project(keep, c.NumClasses())
}

// ExpandMapping lifts a mapping over class representatives back to the
// full instruction space: every member of a class receives its
// representative's decomposition.
func (c *Classes) ExpandMapping(repMapping *portmap.Mapping, instNames []string) *portmap.Mapping {
	full := portmap.NewMapping(c.NumInsts, repMapping.NumPorts)
	for i := 0; i < c.NumInsts; i++ {
		// SetDecomp copies and re-canonicalizes (a no-op on an already
		// canonical decomposition) and keeps the fingerprint cache fresh.
		full.SetDecomp(i, repMapping.Decomp[c.ClassOf[i]])
	}
	full.InstNames = instNames
	full.PortNames = repMapping.PortNames
	return full
}
