package congruence

import (
	"context"
	"math"
	"testing"

	"pmevo/internal/exp"
	"pmevo/internal/portmap"
	"pmevo/internal/throughput"
)

// modelMeasurer measures exactly per a ground-truth mapping.
type modelMeasurer struct{ m *portmap.Mapping }

func (mm modelMeasurer) Measure(e portmap.Experiment) (float64, error) {
	return throughput.OfExperiment(mm.m, e), nil
}

// buildSet measures the full §4.1 set for a mapping.
func buildSet(t *testing.T, m *portmap.Mapping) *exp.Set {
	t.Helper()
	set, err := exp.GenerateAndMeasure(context.Background(), modelMeasurer{m}, m.NumInsts())
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestEqual(t *testing.T) {
	if !Equal(1.0, 1.0, 0.05) {
		t.Error("identical values not equal")
	}
	if !Equal(1.0, 1.02, 0.05) {
		t.Error("2% difference should be equal at eps=0.05")
	}
	if Equal(1.0, 1.2, 0.05) {
		t.Error("20% difference should not be equal at eps=0.05")
	}
	if Equal(0, 1, 0.05) {
		t.Error("0 vs 1 should not be equal")
	}
	if !Equal(0, 0, 0.05) {
		t.Error("0 vs 0 should be equal")
	}
}

func TestPartitionMergesIdenticalInstructions(t *testing.T) {
	// add and sub on the same ports are indistinguishable; mul (other
	// ports) is not.
	m := portmap.NewMapping(3, 3)
	p01 := portmap.MakePortSet(0, 1)
	m.SetDecomp(0, []portmap.UopCount{{Ports: p01, Count: 1}})                    // add
	m.SetDecomp(1, []portmap.UopCount{{Ports: p01, Count: 1}})                    // sub
	m.SetDecomp(2, []portmap.UopCount{{Ports: portmap.MakePortSet(2), Count: 1}}) // mul

	set := buildSet(t, m)
	classes, err := Partition(set, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if classes.NumClasses() != 2 {
		t.Fatalf("got %d classes, want 2: %v", classes.NumClasses(), classes.Members)
	}
	if classes.ClassOf[0] != classes.ClassOf[1] {
		t.Error("add and sub should share a class")
	}
	if classes.ClassOf[2] == classes.ClassOf[0] {
		t.Error("mul should be separate")
	}
	if got := classes.ReductionRatio(); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("ReductionRatio = %g, want 1/3", got)
	}
}

func TestPartitionDistinguishesByPairBehaviour(t *testing.T) {
	// i0 and i1 have the same individual throughput (1 cycle: one µop on
	// one port) but live on different ports; i2 conflicts with i0 only.
	// The pair experiments must separate i0 from i1.
	m := portmap.NewMapping(3, 3)
	m.SetDecomp(0, []portmap.UopCount{{Ports: portmap.MakePortSet(0), Count: 1}})
	m.SetDecomp(1, []portmap.UopCount{{Ports: portmap.MakePortSet(1), Count: 1}})
	m.SetDecomp(2, []portmap.UopCount{{Ports: portmap.MakePortSet(0), Count: 1}})

	set := buildSet(t, m)
	classes, err := Partition(set, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if classes.ClassOf[0] == classes.ClassOf[1] {
		t.Error("i0 and i1 behave differently with i2 and must not merge")
	}
	if classes.ClassOf[0] != classes.ClassOf[2] {
		// i0 and i2 are identical (same single port): should merge.
		t.Error("i0 and i2 are indistinguishable and should merge")
	}
}

func TestPartitionToleratesNoise(t *testing.T) {
	// Identical instructions with small multiplicative noise still merge
	// at eps=0.05 but not at a tiny epsilon.
	m := portmap.NewMapping(2, 2)
	p01 := portmap.MakePortSet(0, 1)
	m.SetDecomp(0, []portmap.UopCount{{Ports: p01, Count: 1}})
	m.SetDecomp(1, []portmap.UopCount{{Ports: p01, Count: 1}})

	noisy := func(e portmap.Experiment) (float64, error) {
		tp := throughput.OfExperiment(m, e)
		// Deterministic ±1% skew depending on the experiment.
		if len(e) > 0 && e[0].Inst == 1 {
			tp *= 1.01
		}
		return tp, nil
	}
	set, err := exp.GenerateAndMeasure(context.Background(), measurerFunc(noisy), 2)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Partition(set, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if loose.NumClasses() != 1 {
		t.Errorf("eps=0.05: got %d classes, want 1", loose.NumClasses())
	}
	strict, err := Partition(set, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if strict.NumClasses() != 2 {
		t.Errorf("eps=0.001: got %d classes, want 2", strict.NumClasses())
	}
}

type measurerFunc func(portmap.Experiment) (float64, error)

func (f measurerFunc) Measure(e portmap.Experiment) (float64, error) { return f(e) }

func TestPartitionRejectsBadEpsilon(t *testing.T) {
	set := &exp.Set{NumInsts: 1, Individual: []float64{1}}
	if _, err := Partition(set, 0); err == nil {
		t.Error("epsilon 0 accepted")
	}
	if _, err := Partition(set, -1); err == nil {
		t.Error("negative epsilon accepted")
	}
}

func TestProjectSetAndExpandMapping(t *testing.T) {
	m := portmap.NewMapping(4, 3)
	p01 := portmap.MakePortSet(0, 1)
	p2 := portmap.MakePortSet(2)
	m.SetDecomp(0, []portmap.UopCount{{Ports: p01, Count: 1}})
	m.SetDecomp(1, []portmap.UopCount{{Ports: p01, Count: 1}}) // congruent to 0
	m.SetDecomp(2, []portmap.UopCount{{Ports: p2, Count: 1}})
	m.SetDecomp(3, []portmap.UopCount{{Ports: p2, Count: 1}}) // congruent to 2

	set := buildSet(t, m)
	classes, err := Partition(set, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if classes.NumClasses() != 2 {
		t.Fatalf("got %d classes, want 2", classes.NumClasses())
	}

	proj := classes.ProjectSet(set)
	if proj.NumInsts != 2 {
		t.Errorf("projected NumInsts = %d", proj.NumInsts)
	}
	// The projected individual throughputs are those of the reps.
	if proj.Individual[0] != set.Individual[classes.Rep[0]] {
		t.Error("projected individuals wrong")
	}

	// Build a mapping over the representatives and expand it.
	repMap := portmap.NewMapping(2, 3)
	repMap.SetDecomp(0, []portmap.UopCount{{Ports: p01, Count: 2}})
	repMap.SetDecomp(1, []portmap.UopCount{{Ports: p2, Count: 3}})
	names := []string{"a", "b", "c", "d"}
	full := classes.ExpandMapping(repMap, names)
	if full.NumInsts() != 4 {
		t.Fatalf("expanded mapping covers %d insts", full.NumInsts())
	}
	for _, i := range []int{0, 1} {
		if full.UopCountOf(i) != 2 {
			t.Errorf("inst %d: µop count %d, want 2", i, full.UopCountOf(i))
		}
	}
	for _, i := range []int{2, 3} {
		if full.UopCountOf(i) != 3 {
			t.Errorf("inst %d: µop count %d, want 3", i, full.UopCountOf(i))
		}
	}
	if full.InstNames[3] != "d" {
		t.Error("expanded mapping lost names")
	}
	// Expanded decompositions must be copies, not aliases.
	full.Decomp[0][0].Count = 99
	if repMap.Decomp[0][0].Count == 99 {
		t.Error("ExpandMapping aliases the representative decomposition")
	}
}

func TestPartitionRepresentativeIsSmallestMember(t *testing.T) {
	m := portmap.NewMapping(3, 2)
	p01 := portmap.MakePortSet(0, 1)
	for i := 0; i < 3; i++ {
		m.SetDecomp(i, []portmap.UopCount{{Ports: p01, Count: 1}})
	}
	set := buildSet(t, m)
	classes, err := Partition(set, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if classes.NumClasses() != 1 {
		t.Fatalf("got %d classes", classes.NumClasses())
	}
	if classes.Rep[0] != 0 {
		t.Errorf("representative = %d, want 0", classes.Rep[0])
	}
	if len(classes.Members[0]) != 3 {
		t.Errorf("members = %v", classes.Members[0])
	}
}
