// Package lp implements a small dense linear programming solver using the
// two-phase primal simplex method with Bland's anti-cycling rule.
//
// The solver exists for two reasons. First, the paper defines instruction
// throughput as the optimum of a linear program (Definitions 3 and 4), and
// we cross-validate the bottleneck simulation algorithm against a direct
// LP solution. Second, §5.4 compares the bottleneck algorithm's speed
// against a state-of-the-art LP solver (Gurobi); this package is the
// stdlib-only stand-in for that baseline, with model construction included
// in the measured time exactly as in the paper.
//
// All variables are non-negative. Problems may minimize or maximize a
// linear objective subject to ≤, ≥ and = constraints.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the comparison operator of a constraint.
type Relation int

const (
	// LE is "less than or equal" (≤).
	LE Relation = iota
	// GE is "greater than or equal" (≥).
	GE
	// EQ is equality (=).
	EQ
)

// String returns the operator symbol.
func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Sense is the optimization direction.
type Sense int

const (
	// Minimize the objective.
	Minimize Sense = iota
	// Maximize the objective.
	Maximize
)

// Status reports the outcome of Solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means no assignment satisfies all constraints.
	Infeasible
	// Unbounded means the objective can be improved without limit.
	Unbounded
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ErrNotSolved is returned by accessors when the problem has not been
// solved to optimality.
var ErrNotSolved = errors.New("lp: problem not solved to optimality")

// Var identifies a decision variable within its Problem.
type Var int

// Term is a coefficient-variable product in a linear expression.
type Term struct {
	Var   Var
	Coeff float64
}

type constraint struct {
	terms []Term
	rel   Relation
	rhs   float64
}

// Problem is a linear program under construction. The zero value is not
// usable; create problems with NewProblem.
type Problem struct {
	sense   Sense
	objness []float64 // objective coefficient per variable
	cons    []constraint
}

// NewProblem creates an empty problem with the given optimization sense.
func NewProblem(sense Sense) *Problem {
	return &Problem{sense: sense}
}

// AddVariable adds a non-negative decision variable with the given
// objective coefficient and returns its handle.
func (p *Problem) AddVariable(objCoeff float64) Var {
	p.objness = append(p.objness, objCoeff)
	return Var(len(p.objness) - 1)
}

// NumVariables returns the number of variables added so far.
func (p *Problem) NumVariables() int { return len(p.objness) }

// AddConstraint adds the constraint Σ terms rel rhs. Terms may repeat a
// variable; coefficients are summed.
func (p *Problem) AddConstraint(terms []Term, rel Relation, rhs float64) error {
	for _, t := range terms {
		if int(t.Var) < 0 || int(t.Var) >= len(p.objness) {
			return fmt.Errorf("lp: constraint references unknown variable %d", t.Var)
		}
	}
	p.cons = append(p.cons, constraint{
		terms: append([]Term(nil), terms...),
		rel:   rel,
		rhs:   rhs,
	})
	return nil
}

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// Solution holds the result of Solve.
type Solution struct {
	Status    Status
	Objective float64
	values    []float64
}

// Value returns the optimal value of variable v.
func (s *Solution) Value(v Var) (float64, error) {
	if s.Status != Optimal {
		return 0, ErrNotSolved
	}
	if int(v) < 0 || int(v) >= len(s.values) {
		return 0, fmt.Errorf("lp: unknown variable %d", v)
	}
	return s.values[v], nil
}

// Values returns the optimal values of all variables in declaration
// order. The returned slice must not be modified.
func (s *Solution) Values() ([]float64, error) {
	if s.Status != Optimal {
		return nil, ErrNotSolved
	}
	return s.values, nil
}

// tol is the numeric tolerance for pivoting and feasibility decisions.
const tol = 1e-9

// Solve runs the two-phase simplex method and returns the solution. The
// Problem may be re-solved after further modification.
func (p *Problem) Solve() *Solution {
	n := len(p.objness)
	m := len(p.cons)

	// Build the standard-form tableau. Columns: n structural variables,
	// then one slack/surplus variable per inequality, then one artificial
	// variable per constraint that needs one, then the RHS.
	numSlack := 0
	for _, c := range p.cons {
		if c.rel != EQ {
			numSlack++
		}
	}

	// Normalize RHS to be non-negative (flip constraint if needed).
	type rowSpec struct {
		coeffs []float64
		rel    Relation
		rhs    float64
	}
	rows := make([]rowSpec, m)
	for i, c := range p.cons {
		coeffs := make([]float64, n)
		for _, t := range c.terms {
			coeffs[t.Var] += t.Coeff
		}
		rel, rhs := c.rel, c.rhs
		if rhs < 0 {
			for j := range coeffs {
				coeffs[j] = -coeffs[j]
			}
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows[i] = rowSpec{coeffs: coeffs, rel: rel, rhs: rhs}
	}

	// Count artificials: GE and EQ rows need one; LE rows use their slack
	// as the initial basic variable.
	numArt := 0
	for _, r := range rows {
		if r.rel != LE {
			numArt++
		}
	}

	totalCols := n + numSlack + numArt
	t := newTableau(m, totalCols)

	slackIdx := n
	artIdx := n + numSlack
	artCols := make([]int, 0, numArt)
	for i, r := range rows {
		copy(t.a[i][:n], r.coeffs)
		t.rhs[i] = r.rhs
		switch r.rel {
		case LE:
			t.a[i][slackIdx] = 1
			t.basis[i] = slackIdx
			slackIdx++
		case GE:
			t.a[i][slackIdx] = -1
			slackIdx++
			t.a[i][artIdx] = 1
			t.basis[i] = artIdx
			artCols = append(artCols, artIdx)
			artIdx++
		case EQ:
			t.a[i][artIdx] = 1
			t.basis[i] = artIdx
			artCols = append(artCols, artIdx)
			artIdx++
		}
	}

	// Phase 1: minimize the sum of artificial variables.
	if numArt > 0 {
		phase1 := make([]float64, totalCols)
		for _, j := range artCols {
			phase1[j] = 1
		}
		t.setObjective(phase1)
		if !t.optimize() {
			// Phase-1 objective is bounded below by 0; unboundedness
			// cannot happen with a correct implementation.
			return &Solution{Status: Infeasible}
		}
		if t.objValue() > 1e-7 {
			return &Solution{Status: Infeasible}
		}
		// Pivot any artificial variables that remain basic at zero level
		// out of the basis where possible; rows that cannot be pivoted
		// are redundant and harmless because their RHS is zero.
		for i := 0; i < m; i++ {
			if !isArtificial(t.basis[i], n+numSlack) {
				continue
			}
			pivoted := false
			for j := 0; j < n+numSlack; j++ {
				if math.Abs(t.a[i][j]) > tol {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			_ = pivoted
		}
		// Forbid artificials from re-entering.
		t.forbidden = make([]bool, totalCols)
		for _, j := range artCols {
			t.forbidden[j] = true
		}
	}

	// Phase 2: the real objective.
	obj := make([]float64, totalCols)
	for j := 0; j < n; j++ {
		c := p.objness[j]
		if p.sense == Maximize {
			c = -c
		}
		obj[j] = c
	}
	t.setObjective(obj)
	if !t.optimize() {
		return &Solution{Status: Unbounded}
	}

	values := make([]float64, n)
	for i, b := range t.basis {
		if b < n {
			values[b] = t.rhs[i]
		}
	}
	objVal := 0.0
	for j := 0; j < n; j++ {
		objVal += p.objness[j] * values[j]
	}
	return &Solution{Status: Optimal, Objective: objVal, values: values}
}

func isArtificial(col, firstArt int) bool { return col >= firstArt }

// tableau is a dense simplex tableau with an explicit objective row.
type tableau struct {
	m, n      int // rows, columns (excluding RHS)
	a         [][]float64
	rhs       []float64
	obj       []float64 // reduced cost row
	objRHS    float64   // negative of current objective value
	basis     []int
	forbidden []bool // columns barred from entering (artificials in phase 2)
}

func newTableau(m, n int) *tableau {
	t := &tableau{
		m:     m,
		n:     n,
		a:     make([][]float64, m),
		rhs:   make([]float64, m),
		obj:   make([]float64, n),
		basis: make([]int, m),
	}
	for i := range t.a {
		t.a[i] = make([]float64, n)
	}
	return t
}

// setObjective installs cost coefficients and prices out the current
// basic variables so the objective row holds reduced costs.
func (t *tableau) setObjective(costs []float64) {
	copy(t.obj, costs)
	t.objRHS = 0
	for i, b := range t.basis {
		cb := costs[b]
		if cb == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			t.obj[j] -= cb * t.a[i][j]
		}
		t.objRHS -= cb * t.rhs[i]
	}
}

// objValue returns the current objective value.
func (t *tableau) objValue() float64 { return -t.objRHS }

// optimize runs simplex pivots until optimal or unbounded. It returns
// false on unboundedness. Bland's rule (smallest-index entering and
// leaving variables) guarantees termination.
func (t *tableau) optimize() bool {
	for iter := 0; ; iter++ {
		// Entering variable: smallest index with negative reduced cost.
		enter := -1
		for j := 0; j < t.n; j++ {
			if t.forbidden != nil && t.forbidden[j] {
				continue
			}
			if t.obj[j] < -tol {
				enter = j
				break
			}
		}
		if enter < 0 {
			return true // optimal
		}
		// Leaving row: minimum ratio; ties broken by smallest basis index
		// (Bland).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij <= tol {
				continue
			}
			ratio := t.rhs[i] / aij
			if ratio < bestRatio-tol ||
				(ratio < bestRatio+tol && (leave < 0 || t.basis[i] < t.basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave < 0 {
			return false // unbounded
		}
		t.pivot(leave, enter)
	}
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	piv := t.a[leave][enter]
	inv := 1 / piv
	row := t.a[leave]
	for j := 0; j < t.n; j++ {
		row[j] *= inv
	}
	t.rhs[leave] *= inv
	row[enter] = 1 // exact

	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := 0; j < t.n; j++ {
			ri[j] -= f * row[j]
		}
		ri[enter] = 0 // exact
		t.rhs[i] -= f * t.rhs[leave]
		if t.rhs[i] < 0 && t.rhs[i] > -tol {
			t.rhs[i] = 0
		}
	}
	f := t.obj[enter]
	if f != 0 {
		for j := 0; j < t.n; j++ {
			t.obj[j] -= f * row[j]
		}
		t.obj[enter] = 0
		t.objRHS -= f * t.rhs[leave]
	}
	t.basis[leave] = enter
}
