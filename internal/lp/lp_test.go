package lp

import (
	"math"
	"math/rand"
	"testing"
)

func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func mustSolve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("Solve status = %v, want optimal", s.Status)
	}
	return s
}

func TestMaximizeTextbook(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (Dantzig's example).
	// Optimum: x=2, y=6, obj=36.
	p := NewProblem(Maximize)
	x := p.AddVariable(3)
	y := p.AddVariable(5)
	p.AddConstraint([]Term{{x, 1}}, LE, 4)
	p.AddConstraint([]Term{{y, 2}}, LE, 12)
	p.AddConstraint([]Term{{x, 3}, {y, 2}}, LE, 18)
	s := mustSolve(t, p)
	if !approxEq(s.Objective, 36) {
		t.Errorf("objective = %g, want 36", s.Objective)
	}
	vx, _ := s.Value(x)
	vy, _ := s.Value(y)
	if !approxEq(vx, 2) || !approxEq(vy, 6) {
		t.Errorf("solution = (%g, %g), want (2, 6)", vx, vy)
	}
}

func TestMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x >= 2. Optimum: x=10 (y=0)? No:
	// cost of x is 2 < 3, so x=10, y=0, obj=20; x >= 2 satisfied.
	p := NewProblem(Minimize)
	x := p.AddVariable(2)
	y := p.AddVariable(3)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 10)
	p.AddConstraint([]Term{{x, 1}}, GE, 2)
	s := mustSolve(t, p)
	if !approxEq(s.Objective, 20) {
		t.Errorf("objective = %g, want 20", s.Objective)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// min x + 2y s.t. x + y = 5, x - y = 1 → x=3, y=2, obj=7.
	p := NewProblem(Minimize)
	x := p.AddVariable(1)
	y := p.AddVariable(2)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 5)
	p.AddConstraint([]Term{{x, 1}, {y, -1}}, EQ, 1)
	s := mustSolve(t, p)
	if !approxEq(s.Objective, 7) {
		t.Errorf("objective = %g, want 7", s.Objective)
	}
	vx, _ := s.Value(x)
	vy, _ := s.Value(y)
	if !approxEq(vx, 3) || !approxEq(vy, 2) {
		t.Errorf("solution = (%g, %g), want (3, 2)", vx, vy)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and x >= 2 cannot both hold.
	p := NewProblem(Minimize)
	x := p.AddVariable(1)
	p.AddConstraint([]Term{{x, 1}}, LE, 1)
	p.AddConstraint([]Term{{x, 1}}, GE, 2)
	s := p.Solve()
	if s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
	if _, err := s.Value(x); err == nil {
		t.Error("Value on infeasible solution should error")
	}
	if _, err := s.Values(); err == nil {
		t.Error("Values on infeasible solution should error")
	}
}

func TestUnbounded(t *testing.T) {
	// max x with only x >= 0: unbounded.
	p := NewProblem(Maximize)
	x := p.AddVariable(1)
	p.AddConstraint([]Term{{x, 1}}, GE, 0)
	s := p.Solve()
	if s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// min x s.t. -x <= -3  (i.e. x >= 3).
	p := NewProblem(Minimize)
	x := p.AddVariable(1)
	p.AddConstraint([]Term{{x, -1}}, LE, -3)
	s := mustSolve(t, p)
	if !approxEq(s.Objective, 3) {
		t.Errorf("objective = %g, want 3", s.Objective)
	}
}

func TestNegativeRHSEquality(t *testing.T) {
	// min x + y s.t. -x - y = -4 → x + y = 4, obj 4.
	p := NewProblem(Minimize)
	x := p.AddVariable(1)
	y := p.AddVariable(1)
	p.AddConstraint([]Term{{x, -1}, {y, -1}}, EQ, -4)
	s := mustSolve(t, p)
	if !approxEq(s.Objective, 4) {
		t.Errorf("objective = %g, want 4", s.Objective)
	}
}

func TestRepeatedVariableInConstraint(t *testing.T) {
	// Terms repeating a variable are summed: 2x + 3x = 5x <= 10 → x <= 2.
	p := NewProblem(Maximize)
	x := p.AddVariable(1)
	p.AddConstraint([]Term{{x, 2}, {x, 3}}, LE, 10)
	s := mustSolve(t, p)
	if !approxEq(s.Objective, 2) {
		t.Errorf("objective = %g, want 2", s.Objective)
	}
}

func TestDegenerateProblem(t *testing.T) {
	// A classic degenerate LP (Beale's cycling example needs a specific
	// pivot rule to cycle; Bland's rule must terminate with the optimum).
	// min -0.75x4 + 150x5 - 0.02x6 + 6x7
	// s.t. 0.25x4 - 60x5 - 0.04x6 + 9x7 <= 0
	//      0.5x4 - 90x5 - 0.02x6 + 3x7 <= 0
	//      x6 <= 1
	// Optimum: -0.05 at x6=1 (x4=x5=x7 chosen accordingly).
	p := NewProblem(Minimize)
	x4 := p.AddVariable(-0.75)
	x5 := p.AddVariable(150)
	x6 := p.AddVariable(-0.02)
	x7 := p.AddVariable(6)
	p.AddConstraint([]Term{{x4, 0.25}, {x5, -60}, {x6, -0.04}, {x7, 9}}, LE, 0)
	p.AddConstraint([]Term{{x4, 0.5}, {x5, -90}, {x6, -0.02}, {x7, 3}}, LE, 0)
	p.AddConstraint([]Term{{x6, 1}}, LE, 1)
	s := mustSolve(t, p)
	if !approxEq(s.Objective, -0.05) {
		t.Errorf("objective = %g, want -0.05", s.Objective)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// Same equality twice: phase 1 leaves a redundant artificial basic
	// at level zero; solver must still succeed.
	p := NewProblem(Minimize)
	x := p.AddVariable(1)
	y := p.AddVariable(1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 2)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 2)
	s := mustSolve(t, p)
	if !approxEq(s.Objective, 2) {
		t.Errorf("objective = %g, want 2", s.Objective)
	}
}

func TestZeroRHSEqualities(t *testing.T) {
	// min x s.t. x - y = 0, y >= 5 → x = 5.
	p := NewProblem(Minimize)
	x := p.AddVariable(1)
	y := p.AddVariable(0)
	p.AddConstraint([]Term{{x, 1}, {y, -1}}, EQ, 0)
	p.AddConstraint([]Term{{y, 1}}, GE, 5)
	s := mustSolve(t, p)
	if !approxEq(s.Objective, 5) {
		t.Errorf("objective = %g, want 5", s.Objective)
	}
}

func TestAddConstraintUnknownVariable(t *testing.T) {
	p := NewProblem(Minimize)
	p.AddVariable(1)
	if err := p.AddConstraint([]Term{{Var(5), 1}}, LE, 1); err == nil {
		t.Error("constraint with unknown variable accepted")
	}
	if err := p.AddConstraint([]Term{{Var(-1), 1}}, LE, 1); err == nil {
		t.Error("constraint with negative variable accepted")
	}
}

func TestCounts(t *testing.T) {
	p := NewProblem(Minimize)
	p.AddVariable(1)
	p.AddVariable(2)
	p.AddConstraint(nil, LE, 1)
	if p.NumVariables() != 2 || p.NumConstraints() != 1 {
		t.Errorf("counts = (%d, %d), want (2, 1)", p.NumVariables(), p.NumConstraints())
	}
}

func TestSolutionValueBounds(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable(1)
	p.AddConstraint([]Term{{x, 1}}, GE, 1)
	s := mustSolve(t, p)
	if _, err := s.Value(Var(99)); err == nil {
		t.Error("Value of out-of-range variable should error")
	}
}

func TestRelationAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("Relation strings wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" {
		t.Error("Status strings wrong")
	}
}

// TestRandomFeasibilityInvariant solves random feasible LPs and verifies
// that the returned solution satisfies every constraint and that the
// reported objective matches the variable assignment.
func TestRandomFeasibilityInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		nVars := 1 + rng.Intn(6)
		nCons := 1 + rng.Intn(6)
		p := NewProblem(Minimize)
		vars := make([]Var, nVars)
		objCoeffs := make([]float64, nVars)
		for i := range vars {
			objCoeffs[i] = rng.Float64() * 5 // non-negative costs keep min bounded
			vars[i] = p.AddVariable(objCoeffs[i])
		}
		type savedCon struct {
			coeffs []float64
			rel    Relation
			rhs    float64
		}
		var saved []savedCon
		for c := 0; c < nCons; c++ {
			coeffs := make([]float64, nVars)
			terms := make([]Term, 0, nVars)
			sum := 0.0
			for i := range coeffs {
				coeffs[i] = rng.Float64() * 3 // non-negative coefficients
				terms = append(terms, Term{vars[i], coeffs[i]})
				sum += coeffs[i]
			}
			// GE constraints with positive rhs are always feasible with
			// non-negative coefficients as long as some coefficient > 0.
			rhs := rng.Float64() * 10
			rel := GE
			if sum < tolTest {
				rel = LE // all-zero row: make it trivially satisfiable
			}
			p.AddConstraint(terms, rel, rhs)
			saved = append(saved, savedCon{coeffs, rel, rhs})
		}
		s := p.Solve()
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
		vals, _ := s.Values()
		obj := 0.0
		for i, v := range vals {
			if v < -1e-9 {
				t.Fatalf("trial %d: negative variable value %g", trial, v)
			}
			obj += objCoeffs[i] * v
		}
		if !approxEq(obj, s.Objective) {
			t.Fatalf("trial %d: objective mismatch: %g vs %g", trial, obj, s.Objective)
		}
		for ci, c := range saved {
			lhs := 0.0
			for i, v := range vals {
				lhs += c.coeffs[i] * v
			}
			switch c.rel {
			case GE:
				if lhs < c.rhs-1e-6 {
					t.Fatalf("trial %d constraint %d violated: %g >= %g", trial, ci, lhs, c.rhs)
				}
			case LE:
				if lhs > c.rhs+1e-6 {
					t.Fatalf("trial %d constraint %d violated: %g <= %g", trial, ci, lhs, c.rhs)
				}
			}
		}
	}
}

const tolTest = 1e-9

// TestTransportationProblem exercises equality-heavy problems of the kind
// the throughput LP produces (mass balance plus capacity rows).
func TestTransportationProblem(t *testing.T) {
	// Two sources (supply 3, 4), two sinks (demand 5, 2), costs:
	//   c11=1 c12=4
	//   c21=2 c22=1
	// min cost = 1*3 + 2*2 + 1*2 ... optimal: x11=3, x21=2, x22=2 → 3+4+2=9.
	p := NewProblem(Minimize)
	x11 := p.AddVariable(1)
	x12 := p.AddVariable(4)
	x21 := p.AddVariable(2)
	x22 := p.AddVariable(1)
	p.AddConstraint([]Term{{x11, 1}, {x12, 1}}, EQ, 3)
	p.AddConstraint([]Term{{x21, 1}, {x22, 1}}, EQ, 4)
	p.AddConstraint([]Term{{x11, 1}, {x21, 1}}, EQ, 5)
	p.AddConstraint([]Term{{x12, 1}, {x22, 1}}, EQ, 2)
	s := mustSolve(t, p)
	if !approxEq(s.Objective, 9) {
		t.Errorf("objective = %g, want 9", s.Objective)
	}
}
