// Package cachetable provides the bounded, lock-free cache table shared
// by the engine's throughput memo and the measurement layer's
// kernel-simulation cache: a fixed-size array of independently atomic
// slots, direct-mapped by key.
//
// Each slot packs (key, value) into two atomic words with the
// transposition-table XOR trick: the tag word stores key ^ value, so a
// torn read (tag from one write, value from another) fails the tag
// check and reads as a miss instead of returning a mismatched value. A
// false hit requires two concurrently written keys with colliding
// tag/value XORs — the same ~2^-64 regime as a fingerprint collision.
//
// The table is a cache, not a map: colliding keys overwrite each other
// (bounded memory, no eviction bookkeeping), and a lost entry only
// costs a recomputation. Callers must never use key 0 (an empty slot
// would read as a hit for it); hash constructions here map 0 to 1.
package cachetable

import "sync/atomic"

// Table is the direct-mapped cache. Values are raw 64-bit words;
// callers storing floats convert with math.Float64bits/Float64frombits.
type Table struct {
	mask    uint64
	entries []entry
}

type entry struct {
	tag atomic.Uint64 // key ^ val
	val atomic.Uint64
}

// MinEntries and MaxEntries bound the slot count of every table. The
// floor keeps degenerate requests (0, negative) from building a 1-slot
// table where every key collides with every other; the ceiling keeps a
// miscomputed request (or the old round-up loop's overflow for inputs
// near MaxInt) from attempting a multi-gigabyte — or, after signed
// overflow, negative — allocation. 2^24 slots is 256 MiB, far above any
// configured consumer (the engine memo caps itself at 2^20).
const (
	MinEntries = 1 << 6
	MaxEntries = 1 << 24
)

// New creates a table with at least `entries` slots, rounded up to a
// power of two and clamped to [MinEntries, MaxEntries].
func New(entries int) *Table {
	if entries < MinEntries {
		entries = MinEntries
	}
	if entries > MaxEntries {
		entries = MaxEntries
	}
	size := MinEntries
	for size < entries {
		size <<= 1
	}
	return &Table{mask: uint64(size - 1), entries: make([]entry, size)}
}

// Len returns the slot count.
func (t *Table) Len() int { return len(t.entries) }

// Get returns the value stored for key, if present.
func (t *Table) Get(key uint64) (uint64, bool) {
	e := &t.entries[key&t.mask]
	v := e.val.Load()
	if e.tag.Load() != key^v {
		return 0, false
	}
	return v, true
}

// Put stores the value for key, overwriting whatever shared the slot.
func (t *Table) Put(key, val uint64) {
	e := &t.entries[key&t.mask]
	e.tag.Store(key ^ val)
	e.val.Store(val)
}

// Clear drops every entry. Zeroed slots read as misses for all valid
// (non-zero) keys, so clearing is safe even while readers are active —
// a concurrent Get sees either the old entry or a miss. Benchmark
// drivers use this to time cold-cache behavior; results are unaffected
// (the table caches a pure function).
func (t *Table) Clear() {
	for i := range t.entries {
		t.entries[i].tag.Store(0)
		t.entries[i].val.Store(0)
	}
}

// Entry is one live (key, value) pair, the unit of the snapshot/load API
// that internal/cachestore persists to disk.
type Entry struct {
	Key uint64
	Val uint64
}

// Snapshot returns every live entry of the table. Unlike Get, Snapshot
// reconstructs keys from the XOR tag, so the tag trick cannot flag a
// torn read — a Put racing a slot being snapshotted could yield an
// entry whose reconstructed key is neither the old nor the new one.
// Callers must therefore only snapshot at quiesce points (save-on-exit,
// between benchmark phases), never concurrently with writers. As
// defense in depth — not a concurrency guarantee — slots whose tag
// changes mid-read or whose reconstructed key does not map back to the
// slot it was read from (every genuine entry's key does; a fabricated
// tag^val almost surely does not) are dropped.
func (t *Table) Snapshot() []Entry {
	var out []Entry
	for i := range t.entries {
		e := &t.entries[i]
		tag := e.tag.Load()
		val := e.val.Load()
		if tag != e.tag.Load() {
			continue // slot written mid-read; skip rather than persist garbage
		}
		key := tag ^ val
		if key == 0 {
			continue // empty slot (valid keys are never 0)
		}
		if key&t.mask != uint64(i) {
			continue // torn or corrupt slot: a real entry lives where its key maps
		}
		out = append(out, Entry{Key: key, Val: val})
	}
	return out
}

// LoadEntries stores every entry into the table with the usual
// overwrite-on-collision semantics and returns the number stored.
// Entries with key 0 are skipped (an empty slot would read as a hit for
// key 0, so valid tables never contain it).
func (t *Table) LoadEntries(entries []Entry) int {
	n := 0
	for _, e := range entries {
		if e.Key == 0 {
			continue
		}
		t.Put(e.Key, e.Val)
		n++
	}
	return n
}
