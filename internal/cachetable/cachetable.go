// Package cachetable provides the bounded, lock-free cache table shared
// by the engine's throughput memo and the measurement layer's
// kernel-simulation cache: a fixed-size array of independently atomic
// slots, direct-mapped by key.
//
// Each slot packs (key, value) into two atomic words with the
// transposition-table XOR trick: the tag word stores key ^ value, so a
// torn read (tag from one write, value from another) fails the tag
// check and reads as a miss instead of returning a mismatched value. A
// false hit requires two concurrently written keys with colliding
// tag/value XORs — the same ~2^-64 regime as a fingerprint collision.
//
// The table is a cache, not a map: colliding keys overwrite each other
// (bounded memory, no eviction bookkeeping), and a lost entry only
// costs a recomputation. Callers must never use key 0 (an empty slot
// would read as a hit for it); hash constructions here map 0 to 1.
package cachetable

import "sync/atomic"

// Table is the direct-mapped cache. Values are raw 64-bit words;
// callers storing floats convert with math.Float64bits/Float64frombits.
type Table struct {
	mask    uint64
	entries []entry
}

type entry struct {
	tag atomic.Uint64 // key ^ val
	val atomic.Uint64
}

// New creates a table with at least `entries` slots, rounded up to a
// power of two.
func New(entries int) *Table {
	size := 1
	for size < entries {
		size <<= 1
	}
	return &Table{mask: uint64(size - 1), entries: make([]entry, size)}
}

// Len returns the slot count.
func (t *Table) Len() int { return len(t.entries) }

// Get returns the value stored for key, if present.
func (t *Table) Get(key uint64) (uint64, bool) {
	e := &t.entries[key&t.mask]
	v := e.val.Load()
	if e.tag.Load() != key^v {
		return 0, false
	}
	return v, true
}

// Put stores the value for key, overwriting whatever shared the slot.
func (t *Table) Put(key, val uint64) {
	e := &t.entries[key&t.mask]
	e.tag.Store(key ^ val)
	e.val.Store(val)
}

// Clear drops every entry. Zeroed slots read as misses for all valid
// (non-zero) keys, so clearing is safe even while readers are active —
// a concurrent Get sees either the old entry or a miss. Benchmark
// drivers use this to time cold-cache behavior; results are unaffected
// (the table caches a pure function).
func (t *Table) Clear() {
	for i := range t.entries {
		t.entries[i].tag.Store(0)
		t.entries[i].val.Store(0)
	}
}
