package cachetable

import (
	"math"
	"testing"
)

// TestNewClampsSize is the regression test for the degenerate and
// overflowing size requests: entries <= 0 used to build a 1-slot table,
// and the power-of-two round-up loop could overflow for inputs near
// MaxInt.
func TestNewClampsSize(t *testing.T) {
	cases := []struct {
		entries int
		want    int
	}{
		{math.MinInt, MinEntries},
		{-1, MinEntries},
		{0, MinEntries},
		{1, MinEntries},
		{MinEntries, MinEntries},
		{MinEntries + 1, MinEntries * 2},
		{1 << 16, 1 << 16},
		{1<<16 + 1, 1 << 17},
		{MaxEntries - 1, MaxEntries},
		{MaxEntries, MaxEntries},
		{MaxEntries + 1, MaxEntries},
		{math.MaxInt/2 + 1, MaxEntries}, // would overflow the old round-up loop
		{math.MaxInt, MaxEntries},
	}
	for _, c := range cases {
		if got := New(c.entries).Len(); got != c.want {
			t.Errorf("New(%d).Len() = %d, want %d", c.entries, got, c.want)
		}
	}
}

func TestGetPutClear(t *testing.T) {
	tab := New(MinEntries)
	if _, ok := tab.Get(42); ok {
		t.Fatal("empty table reported a hit")
	}
	tab.Put(42, 99)
	if v, ok := tab.Get(42); !ok || v != 99 {
		t.Fatalf("Get(42) = %v, %v; want 99, true", v, ok)
	}
	// Colliding key (same slot) overwrites.
	collide := 42 + uint64(tab.Len())
	tab.Put(collide, 7)
	if _, ok := tab.Get(42); ok {
		t.Fatal("overwritten key still hit")
	}
	if v, ok := tab.Get(collide); !ok || v != 7 {
		t.Fatalf("Get(collide) = %v, %v; want 7, true", v, ok)
	}
	tab.Clear()
	if _, ok := tab.Get(collide); ok {
		t.Fatal("cleared table reported a hit")
	}
}

func TestSnapshotLoadRoundTrip(t *testing.T) {
	tab := New(1 << 10)
	want := map[uint64]uint64{}
	for i := uint64(1); i <= 300; i++ {
		key := i * 0x9e3779b97f4a7c15
		if key == 0 {
			key = 1
		}
		tab.Put(key, i)
		want[key] = i
	}
	snap := tab.Snapshot()
	// Collisions may have dropped entries, but every snapshotted pair
	// must be one that was stored.
	seen := map[uint64]bool{}
	for _, e := range snap {
		v, ok := want[e.Key]
		if !ok || v != e.Val {
			t.Fatalf("snapshot contains fabricated entry {%#x, %d}", e.Key, e.Val)
		}
		if seen[e.Key] {
			t.Fatalf("snapshot contains duplicate key %#x", e.Key)
		}
		seen[e.Key] = true
	}
	if len(snap) == 0 {
		t.Fatal("snapshot of populated table is empty")
	}

	fresh := New(1 << 10)
	if n := fresh.LoadEntries(snap); n != len(snap) {
		t.Fatalf("LoadEntries stored %d of %d", n, len(snap))
	}
	for _, e := range snap {
		if v, ok := fresh.Get(e.Key); !ok || v != e.Val {
			t.Fatalf("reloaded table misses {%#x, %d} (got %v, %v)", e.Key, e.Val, v, ok)
		}
	}
}

func TestLoadEntriesSkipsZeroKey(t *testing.T) {
	tab := New(MinEntries)
	n := tab.LoadEntries([]Entry{{Key: 0, Val: 5}, {Key: 3, Val: 4}})
	if n != 1 {
		t.Fatalf("LoadEntries = %d, want 1", n)
	}
	if _, ok := tab.Get(3); !ok {
		t.Fatal("valid entry not loaded")
	}
}
