package predictors

import (
	"math"
	"math/rand"
	"testing"

	"pmevo/internal/exp"
	"pmevo/internal/measure"
	"pmevo/internal/portmap"
	"pmevo/internal/stats"
	"pmevo/internal/throughput"
	"pmevo/internal/uarch"
)

func TestFromMapping(t *testing.T) {
	m := portmap.NewMapping(2, 2)
	m.SetDecomp(0, []portmap.UopCount{{Ports: portmap.MakePortSet(0), Count: 1}})
	m.SetDecomp(1, []portmap.UopCount{{Ports: portmap.MakePortSet(0, 1), Count: 1}})
	p := FromMapping("test", m)
	if p.Name() != "test" {
		t.Errorf("Name = %q", p.Name())
	}
	got, err := p.Predict(portmap.Experiment{{Inst: 0, Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("Predict = %g, want 2", got)
	}
	if _, err := p.Predict(portmap.Experiment{{Inst: 5, Count: 1}}); err == nil {
		t.Error("out-of-range instruction accepted")
	}
}

func TestUopsInfoAvailability(t *testing.T) {
	if _, err := UopsInfo(uarch.SKL()); err != nil {
		t.Errorf("uops.info should support SKL: %v", err)
	}
	for _, name := range []string{"ZEN", "A72"} {
		proc, _ := uarch.ByName(name)
		if _, err := UopsInfo(proc); err == nil {
			t.Errorf("uops.info should refuse %s (no per-port counters)", name)
		}
	}
}

func TestIACAAvailability(t *testing.T) {
	if _, err := IACA(uarch.SKL()); err != nil {
		t.Errorf("IACA should support SKL: %v", err)
	}
	for _, name := range []string{"ZEN", "A72"} {
		proc, _ := uarch.ByName(name)
		if _, err := IACA(proc); err == nil {
			t.Errorf("IACA should refuse %s (Intel-only)", name)
		}
	}
}

func TestIACAFrontEndBound(t *testing.T) {
	proc := uarch.SKL()
	p, err := IACA(proc)
	if err != nil {
		t.Fatal(err)
	}
	// A wide mix of cheap ALU ops: port model says count/4 ALU ports
	// ≈ 1.5 for 6 ops, but the front end allows only 6 µops/cycle,
	// so both bounds coincide here; use 8 ops to make the front end
	// bind: port bound 8/4 = 2, front end 8/6 = 1.33 → prediction 2.
	add, _ := proc.ISA.FormByName("add_r64_r64")
	e := portmap.Experiment{{Inst: add.ID, Count: 8}}
	got, err := p.Predict(e)
	if err != nil {
		t.Fatal(err)
	}
	want := throughput.OfExperiment(proc.GroundTruth, e)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("IACA = %g, port model = %g (port bound should dominate)", got, want)
	}
	// A single-µop instruction repeated cannot exercise the front end
	// (4 ALU ports, width 6). Build a mix that is front-end bound:
	// many single-cycle shuffles (p5 only)? No - port bound 1/port.
	// Instead verify the bound formula directly on a wide mov mix.
	mov, _ := proc.ISA.FormByName("mov_r64_r64")
	e2 := portmap.Experiment{{Inst: add.ID, Count: 4}, {Inst: mov.ID, Count: 4}}
	got2, err := p.Predict(e2)
	if err != nil {
		t.Fatal(err)
	}
	port := throughput.OfExperiment(proc.GroundTruth, e2) // 8 µops / 4 ports = 2
	front := 8.0 / 6.0
	want2 := math.Max(port, front)
	if math.Abs(got2-want2) > 1e-9 {
		t.Errorf("IACA = %g, want %g", got2, want2)
	}
}

func TestLLVMMCADegradationByArch(t *testing.T) {
	// SKL: mild degradation → small MAPE; ZEN/A72: heavy degradation →
	// systematic over-estimation.
	for _, tc := range []struct {
		name           string
		overEstimation bool
	}{{"SKL", false}, {"ZEN", true}, {"A72", true}} {
		proc, _ := uarch.ByName(tc.name)
		p := LLVMMCA(proc)
		if p.Name() != "llvm-mca" {
			t.Fatalf("Name = %q", p.Name())
		}
		rng := rand.New(rand.NewSource(7))
		over, under, n := 0, 0, 200
		for i := 0; i < n; i++ {
			e := portmap.RandomExperiment(rng, proc.ISA.NumForms(), 5)
			pred, err := p.Predict(e)
			if err != nil {
				t.Fatal(err)
			}
			truth := throughput.OfExperiment(proc.GroundTruth, e)
			if pred > truth*1.05 {
				over++
			}
			if pred < truth*0.95 {
				under++
			}
		}
		if tc.overEstimation && over < n/2 {
			t.Errorf("%s: llvm-mca over-estimates only %d/%d experiments", tc.name, over, n)
		}
		if !tc.overEstimation && over > n/4 {
			t.Errorf("%s: llvm-mca over-estimates %d/%d experiments, want mostly accurate", tc.name, over, n)
		}
		if under > n/10 {
			t.Errorf("%s: llvm-mca under-estimates %d/%d experiments vs model", tc.name, under, n)
		}
	}
}

func TestLLVMMCANeverBelowModelOptimum(t *testing.T) {
	// Degrading port sets can only increase predicted cycles.
	proc := uarch.ZEN()
	p := LLVMMCA(proc)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		e := portmap.RandomExperiment(rng, proc.ISA.NumForms(), 4)
		pred, err := p.Predict(e)
		if err != nil {
			t.Fatal(err)
		}
		truth := throughput.OfExperiment(proc.GroundTruth, e)
		if pred < truth-1e-9 {
			t.Fatalf("degraded model predicts %g below optimum %g", pred, truth)
		}
	}
}

func TestIthemalTrainsAndPredicts(t *testing.T) {
	proc := uarch.SKL()
	opts := DefaultIthemalOptions()
	opts.TrainingBlocks = 300 // keep the test fast
	p, err := TrainIthemal(proc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "Ithemal" {
		t.Errorf("Name = %q", p.Name())
	}
	add, _ := proc.ISA.FormByName("add_r64_r64")
	got, err := p.Predict(portmap.Experiment{{Inst: add.ID, Count: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 {
		t.Errorf("prediction %g not positive", got)
	}
	if _, err := p.Predict(portmap.Experiment{{Inst: 10 << 20, Count: 1}}); err == nil {
		t.Error("out-of-range instruction accepted")
	}
}

func TestIthemalOptionsValidation(t *testing.T) {
	proc := uarch.SKL()
	if _, err := TrainIthemal(proc, IthemalOptions{TrainingBlocks: 1, MaxBlockLen: 4}); err == nil {
		t.Error("too few training blocks accepted")
	}
	if _, err := TrainIthemal(proc, IthemalOptions{TrainingBlocks: 100, MaxBlockLen: 0}); err == nil {
		t.Error("zero block length accepted")
	}
}

// TestIthemalWorseOnDependencyFreeExperiments reproduces the paper's
// central observation about Ithemal (Table 3): trained on dependency-
// heavy code, it predicts dependency-free port-mapping-bound experiments
// much worse than the port-mapping-based tools.
func TestIthemalWorseOnDependencyFreeExperiments(t *testing.T) {
	proc := uarch.SKL()
	opts := DefaultIthemalOptions()
	opts.TrainingBlocks = 600
	ith, err := TrainIthemal(proc, opts)
	if err != nil {
		t.Fatal(err)
	}
	ui, err := UopsInfo(proc)
	if err != nil {
		t.Fatal(err)
	}

	h, err := measure.NewHarness(proc, measure.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	bench := exp.RandomBenchmarkSet(rng, proc.ISA.NumForms(), 60, 5)
	var meas, predIth, predUI []float64
	for _, e := range bench {
		m, err := h.Measure(e)
		if err != nil {
			t.Fatal(err)
		}
		pi, err := ith.Predict(e)
		if err != nil {
			t.Fatal(err)
		}
		pu, err := ui.Predict(e)
		if err != nil {
			t.Fatal(err)
		}
		meas = append(meas, m)
		predIth = append(predIth, pi)
		predUI = append(predUI, pu)
	}
	mapeIth := stats.MAPE(predIth, meas)
	mapeUI := stats.MAPE(predUI, meas)
	if mapeIth < 2*mapeUI {
		t.Errorf("Ithemal MAPE %.1f%% should be much worse than uops.info %.1f%%",
			mapeIth, mapeUI)
	}
}

func TestSolveLinearSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := solveLinearSystem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5, x + 3y = 10 → x = 1, y = 3.
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Errorf("solution = %v, want [1 3]", x)
	}
	if _, err := solveLinearSystem([][]float64{{0, 0}, {0, 0}}, []float64{1, 1}); err == nil {
		t.Error("singular system accepted")
	}
}

// TestAsEngineLiftsHeuristics checks the adapter that lifts a bound
// heuristic predictor into the engine.Predictor interface: predictions
// must match the direct interface, single and batched, with the
// mapping argument ignored.
func TestAsEngineLiftsHeuristics(t *testing.T) {
	proc := uarch.SKL()
	iaca, err := IACA(proc)
	if err != nil {
		t.Fatal(err)
	}
	lifted := AsEngine(iaca)
	if lifted.Name() != iaca.Name() {
		t.Errorf("Name = %q, want %q", lifted.Name(), iaca.Name())
	}
	rng := rand.New(rand.NewSource(13))
	es := exp.RandomBenchmarkSet(rng, proc.ISA.NumForms(), 20, 4)
	batched := make([]float64, len(es))
	// The mapping argument must be irrelevant: pass nil.
	if err := lifted.PredictAll(nil, es, batched); err != nil {
		t.Fatal(err)
	}
	for i, e := range es {
		direct, err := iaca.Predict(e)
		if err != nil {
			t.Fatal(err)
		}
		single, err := lifted.Predict(nil, e)
		if err != nil {
			t.Fatal(err)
		}
		if single != direct || batched[i] != direct {
			t.Errorf("experiment %d: direct %g, lifted single %g, batched %g",
				i, direct, single, batched[i])
		}
	}
}

// TestIthemalRejectsDegenerateBlockLength: MaxBlockLen 1 must error,
// not panic (blocks are always at least 2 instructions long).
func TestIthemalRejectsDegenerateBlockLength(t *testing.T) {
	opts := DefaultIthemalOptions()
	opts.MaxBlockLen = 1
	if _, err := TrainIthemal(uarch.SKL(), opts); err == nil {
		t.Error("MaxBlockLen 1 accepted")
	}
}
