package predictors

import (
	"fmt"
	"math/rand"

	"pmevo/internal/engine"
	"pmevo/internal/isa"
	"pmevo/internal/machine"
	"pmevo/internal/measure"
	"pmevo/internal/portmap"
	"pmevo/internal/uarch"
)

// IthemalOptions configures the training of the learned baseline.
type IthemalOptions struct {
	// TrainingBlocks is the number of random basic blocks sampled.
	TrainingBlocks int
	// MaxBlockLen bounds the number of instructions per training block.
	MaxBlockLen int
	// Ridge is the L2 regularization strength of the regression.
	Ridge float64
	// Seed makes training reproducible.
	Seed int64
}

// DefaultIthemalOptions returns a configuration that trains in well
// under a second.
func DefaultIthemalOptions() IthemalOptions {
	return IthemalOptions{
		TrainingBlocks: 1500,
		MaxBlockLen:    8,
		Ridge:          1e-3,
		Seed:           1,
	}
}

// ithemalPredictor is a linear regressor over per-class instruction
// counts, standing in for the paper's LSTM network. Like the real
// Ithemal, it is trained (supervised) on basic blocks extracted from
// compiled programs, which are full of data dependencies; its
// predictions therefore reflect latency chains rather than pure port
// pressure, which is exactly why it fares poorly on PMEvo's
// dependency-free experiments (§5.3.1).
type ithemalPredictor struct {
	classIdx map[string]int
	isa      *isa.ISA
	weights  []float64 // per class, plus bias as the last entry
}

// TrainIthemal trains the learned baseline on the given processor by
// sampling random dependency-heavy basic blocks (small register pools
// force chains, as in compiler output for sequential code), measuring
// them on the simulated machine, and fitting a ridge regression of
// cycles-per-block on per-class instruction counts.
func TrainIthemal(proc *uarch.Processor, opts IthemalOptions) (Predictor, error) {
	if opts.TrainingBlocks < 10 {
		return nil, fmt.Errorf("ithemal: need at least 10 training blocks")
	}
	if opts.MaxBlockLen < 2 {
		// Training blocks are always at least 2 instructions long.
		return nil, fmt.Errorf("ithemal: invalid block length")
	}
	mach, err := proc.Machine()
	if err != nil {
		return nil, err
	}
	classes := proc.ISA.Classes()
	classIdx := make(map[string]int, len(classes))
	for i, c := range classes {
		classIdx[c] = i
	}
	nf := len(classes) + 1 // features + bias

	rng := rand.New(rand.NewSource(opts.Seed))
	// Tiny register pools create the dependency chains typical of
	// compiled basic blocks.
	pools := measure.PoolSizes{GPR: 4, Vec: 4, FPR: 4, MemOffsets: 2}

	// Accumulate the normal equations X'X w = X'y.
	xtx := make([][]float64, nf)
	for i := range xtx {
		xtx[i] = make([]float64, nf)
	}
	xty := make([]float64, nf)

	// Generate all training blocks sequentially (the RNG stream fixes
	// them), then simulate them in parallel — the simulator is immutable
	// — and accumulate the normal equations in block order so training
	// stays deterministic.
	blockForms := make([][]*isa.Form, opts.TrainingBlocks)
	bodies := make([][]machine.Inst, opts.TrainingBlocks)
	for b := range blockForms {
		blockLen := 2 + rng.Intn(opts.MaxBlockLen-1)
		forms := make([]*isa.Form, blockLen)
		for i := range forms {
			forms[i] = proc.ISA.Form(rng.Intn(proc.ISA.NumForms()))
		}
		alloc, err := measure.NewAllocator(pools)
		if err != nil {
			return nil, err
		}
		insts, err := alloc.InstantiateSequence(forms)
		if err != nil {
			return nil, err
		}
		blockForms[b] = forms
		bodies[b] = measure.ToMachineInsts(insts)
	}
	cycles := make([]float64, opts.TrainingBlocks)
	simErrs := make([]error, opts.TrainingBlocks)
	engine.ForEach(opts.TrainingBlocks, 0, func(b int) {
		cycles[b], simErrs[b] = steadyCycles(mach, bodies[b])
	})

	feat := make([]float64, nf)
	for b := 0; b < opts.TrainingBlocks; b++ {
		if simErrs[b] != nil {
			return nil, simErrs[b]
		}
		for i := range feat {
			feat[i] = 0
		}
		for _, f := range blockForms[b] {
			feat[classIdx[f.Class]]++
		}
		feat[nf-1] = 1 // bias
		for i := 0; i < nf; i++ {
			if feat[i] == 0 {
				continue
			}
			for j := 0; j < nf; j++ {
				xtx[i][j] += feat[i] * feat[j]
			}
			xty[i] += feat[i] * cycles[b]
		}
	}
	for i := 0; i < nf; i++ {
		xtx[i][i] += opts.Ridge
	}
	w, err := solveLinearSystem(xtx, xty)
	if err != nil {
		return nil, fmt.Errorf("ithemal: training failed: %w", err)
	}
	return &ithemalPredictor{classIdx: classIdx, isa: proc.ISA, weights: w}, nil
}

func steadyCycles(mach *machine.Machine, body []machine.Inst) (float64, error) {
	return mach.SteadyStateCycles(body, 10, 40)
}

func (p *ithemalPredictor) Name() string { return "Ithemal" }

func (p *ithemalPredictor) Predict(e portmap.Experiment) (float64, error) {
	nf := len(p.weights)
	feat := make([]float64, nf)
	for _, t := range e {
		if t.Inst < 0 || t.Inst >= p.isa.NumForms() {
			return 0, fmt.Errorf("ithemal: instruction %d out of range", t.Inst)
		}
		feat[p.classIdx[p.isa.Form(t.Inst).Class]] += float64(t.Count)
	}
	feat[nf-1] = 1
	pred := 0.0
	for i, w := range p.weights {
		pred += w * feat[i]
	}
	if pred < 0.05 {
		pred = 0.05 // throughputs are positive; clamp degenerate outputs
	}
	return pred, nil
}

// solveLinearSystem solves Ax = b by Gaussian elimination with partial
// pivoting. A is modified in place.
func solveLinearSystem(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if abs(a[r][col]) > abs(a[piv][col]) {
				piv = r
			}
		}
		if abs(a[piv][col]) < 1e-12 {
			return nil, fmt.Errorf("singular system at column %d", col)
		}
		a[col], a[piv] = a[piv], a[col]
		x[col], x[piv] = x[piv], x[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	for col := n - 1; col >= 0; col-- {
		sum := x[col]
		for c := col + 1; c < n; c++ {
			sum -= a[col][c] * x[c]
		}
		x[col] = sum / a[col][col]
	}
	return x, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
