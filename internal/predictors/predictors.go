// Package predictors implements the throughput predictors PMEvo is
// compared against in the paper's evaluation (§5.3, §6):
//
//   - uops.info (Abel & Reineke): throughput from the documented
//     ground-truth port mapping via the LP model. Requires per-port
//     hardware performance counters, so it exists only for SKL.
//   - IACA: Intel's closed-source analyzer. Modeled as the documented
//     port mapping plus a front-end dispatch bound, which makes it
//     slightly more accurate than the pure port-mapping model on longer
//     experiments (Figure 6). Intel-only.
//   - llvm-mca: LLVM's scheduling models. Good for SKL, but for ZEN and
//     A72 the models are stale and pessimistic about port parallelism,
//     producing the systematic over-estimation of Figure 7 (§5.3.2).
//   - Ithemal: a learned regressor trained on dependency-heavy basic
//     blocks. Accurate in its training distribution, poor on PMEvo's
//     dependency-free experiments (§5.3.1, Table 3).
//
// All predictors implement the Predictor interface; FromMapping adapts
// any port mapping (including PMEvo's inferred ones) to it. Throughput
// computation goes through internal/engine's unified Predictor layer,
// which also provides the batched, parallel PredictAll entry point.
package predictors

import (
	"fmt"

	"pmevo/internal/engine"
	"pmevo/internal/portmap"
	"pmevo/internal/throughput"
	"pmevo/internal/uarch"
)

// Predictor estimates the steady-state throughput of an experiment in
// cycles per experiment instance. Implementations are safe for
// concurrent use.
type Predictor interface {
	Name() string
	Predict(e portmap.Experiment) (float64, error)
}

// batchPredictor is the optional batched extension of Predictor.
type batchPredictor interface {
	Predictor
	PredictAll(es []portmap.Experiment, out []float64) error
}

// PredictAll evaluates a predictor on a whole benchmark set, writing
// results into out (len(out) must equal len(es)). Predictors backed by
// the engine layer use its batched implementation; everything else fans
// out over the engine's worker pool.
func PredictAll(p Predictor, es []portmap.Experiment, out []float64) error {
	if bp, ok := p.(batchPredictor); ok {
		return bp.PredictAll(es, out)
	}
	if len(out) != len(es) {
		return fmt.Errorf("%s: output length %d does not match batch length %d", p.Name(), len(out), len(es))
	}
	return engine.ForEachErr(len(es), 0, func(i int) error {
		v, err := p.Predict(es[i])
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
}

// mappingPredictor binds a throughput engine to a fixed port mapping.
type mappingPredictor struct {
	name string
	eng  engine.Predictor
	m    *portmap.Mapping
}

// FromMapping adapts a port mapping to the Predictor interface using
// the default (bottleneck) engine under the optimal-scheduler
// throughput model. PMEvo's inferred mappings are evaluated through
// this adapter.
func FromMapping(name string, m *portmap.Mapping) Predictor {
	return FromMappingEngine(name, engine.Default(), m)
}

// FromMappingEngine is FromMapping with an explicit throughput engine
// (e.g. the LP reference), for evaluating a mapping under a
// non-default throughput model.
func FromMappingEngine(name string, eng engine.Predictor, m *portmap.Mapping) Predictor {
	return &mappingPredictor{name: name, eng: eng, m: m}
}

func (p *mappingPredictor) Name() string { return p.name }

func (p *mappingPredictor) Predict(e portmap.Experiment) (float64, error) {
	v, err := p.eng.Predict(p.m, e)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", p.name, err)
	}
	return v, nil
}

func (p *mappingPredictor) PredictAll(es []portmap.Experiment, out []float64) error {
	if err := p.eng.PredictAll(p.m, es, out); err != nil {
		return fmt.Errorf("%s: %w", p.name, err)
	}
	return nil
}

// boundEngine adapts a bound heuristic predictor (IACA, llvm-mca,
// Ithemal, ...) to the engine.Predictor interface. The mapping argument
// is ignored: heuristic predictors carry their own model.
type boundEngine struct{ p Predictor }

// AsEngine lifts any Predictor into the engine.Predictor interface so
// heuristic baselines can flow through code written against the unified
// engine layer.
func AsEngine(p Predictor) engine.Predictor { return boundEngine{p} }

func (b boundEngine) Name() string { return b.p.Name() }

func (b boundEngine) Predict(_ *portmap.Mapping, e portmap.Experiment) (float64, error) {
	return b.p.Predict(e)
}

func (b boundEngine) PredictAll(_ *portmap.Mapping, es []portmap.Experiment, out []float64) error {
	return PredictAll(b.p, es, out)
}

// UopsInfo builds the uops.info-style predictor: the exact documented
// port usage under the optimal scheduling model. It refuses processors
// without per-port performance counters, mirroring the real tool's
// hardware requirements (§5.1.1, §6.1).
func UopsInfo(proc *uarch.Processor) (Predictor, error) {
	if !proc.HasPortCounters {
		return nil, fmt.Errorf("uops.info requires per-port performance counters; %s has none", proc.Name)
	}
	return FromMapping("uops.info", proc.GroundTruth), nil
}

// iacaPredictor combines the documented port mapping with a front-end
// dispatch bound.
type iacaPredictor struct {
	proc *uarch.Processor
}

// IACA builds the IACA-style predictor. IACA is provided by Intel for
// Intel microarchitectures only (§6.2).
func IACA(proc *uarch.Processor) (Predictor, error) {
	if proc.Manufacturer != "Intel" {
		return nil, fmt.Errorf("IACA supports only Intel microarchitectures, not %s", proc.Name)
	}
	return &iacaPredictor{proc: proc}, nil
}

func (p *iacaPredictor) Name() string { return "IACA" }

func (p *iacaPredictor) Predict(e portmap.Experiment) (float64, error) {
	gt := p.proc.GroundTruth
	for _, t := range e {
		if t.Inst < 0 || t.Inst >= gt.NumInsts() {
			return 0, fmt.Errorf("IACA: instruction %d out of range", t.Inst)
		}
	}
	port := throughput.OfExperiment(gt, e)
	// Front-end bound: the decoder/dispatch stage moves at most
	// DispatchWidth µops per cycle (documented µop counts).
	uops := 0
	for _, t := range e {
		uops += gt.UopCountOf(t.Inst) * t.Count
	}
	front := float64(uops) / float64(p.proc.Config.DispatchWidth)
	if front > port {
		return front, nil
	}
	return port, nil
}

// LLVMMCA builds the llvm-mca-style predictor from a degraded copy of
// the ground truth, reflecting the quality of LLVM's scheduling models
// per architecture: near-exact for SKL (heavily tuned), pessimistic
// about port parallelism for ZEN and A72, whose models "might not yet be
// as elaborate and accurate" (§5.3.2). The degradation keeps relative
// instruction ordering (hence the decent Pearson correlation in Table 4)
// but systematically over-estimates cycles.
func LLVMMCA(proc *uarch.Processor) Predictor {
	m := proc.GroundTruth.Clone()
	switch proc.Name {
	case "SKL":
		degradeSKL(m)
	case "ZEN":
		degradePorts(m, 1)
	default:
		degradePorts(m, 1)
		inflateUopCounts(m)
	}
	return FromMapping("llvm-mca", m)
}

// inflateUopCounts doubles the µop count of originally multi-µop
// instructions, modeling scheduling files whose per-instruction resource
// cycles are copied from a slower predecessor core. Applied to the A72
// model, whose prediction error in the paper exceeds ZEN's (Table 4).
func inflateUopCounts(m *portmap.Mapping) {
	for i, uops := range m.Decomp {
		if m.UopCountOf(i) < 2 {
			continue
		}
		for j := range uops {
			uops[j].Count *= 2
		}
		m.SetDecomp(i, uops)
	}
}

// degradeSKL applies the small inaccuracies of LLVM's (well-tuned)
// Skylake model: the simple-store AGU port P7 is missing from store
// address µops, and the LEA port set is modeled too narrowly.
func degradeSKL(m *portmap.Mapping) {
	for i, uops := range m.Decomp {
		changed := false
		for j, uc := range uops {
			if uc.Ports == portmap.MakePortSet(2, 3, 7) {
				uops[j].Ports = portmap.MakePortSet(2, 3)
				changed = true
			}
			if uc.Ports == portmap.MakePortSet(1, 5) {
				uops[j].Ports = portmap.MakePortSet(1)
				changed = true
			}
		}
		if changed {
			m.SetDecomp(i, uops)
		}
	}
}

// degradePorts truncates every µop's port set to its maxPorts lowest
// ports, modeling scheduling files that understate the available
// parallelism.
func degradePorts(m *portmap.Mapping, maxPorts int) {
	for i, uops := range m.Decomp {
		for j, uc := range uops {
			if uc.Ports.Count() > maxPorts {
				var trimmed portmap.PortSet
				for _, k := range uc.Ports.Ports()[:maxPorts] {
					trimmed = trimmed.With(k)
				}
				uops[j].Ports = trimmed
			}
		}
		m.SetDecomp(i, uops)
	}
}
