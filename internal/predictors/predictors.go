// Package predictors implements the throughput predictors PMEvo is
// compared against in the paper's evaluation (§5.3, §6):
//
//   - uops.info (Abel & Reineke): throughput from the documented
//     ground-truth port mapping via the LP model. Requires per-port
//     hardware performance counters, so it exists only for SKL.
//   - IACA: Intel's closed-source analyzer. Modeled as the documented
//     port mapping plus a front-end dispatch bound, which makes it
//     slightly more accurate than the pure port-mapping model on longer
//     experiments (Figure 6). Intel-only.
//   - llvm-mca: LLVM's scheduling models. Good for SKL, but for ZEN and
//     A72 the models are stale and pessimistic about port parallelism,
//     producing the systematic over-estimation of Figure 7 (§5.3.2).
//   - Ithemal: a learned regressor trained on dependency-heavy basic
//     blocks. Accurate in its training distribution, poor on PMEvo's
//     dependency-free experiments (§5.3.1, Table 3).
//
// All predictors implement the Predictor interface; FromMapping adapts
// any port mapping (including PMEvo's inferred ones) to it.
package predictors

import (
	"fmt"

	"pmevo/internal/portmap"
	"pmevo/internal/throughput"
	"pmevo/internal/uarch"
)

// Predictor estimates the steady-state throughput of an experiment in
// cycles per experiment instance.
type Predictor interface {
	Name() string
	Predict(e portmap.Experiment) (float64, error)
}

// mappingPredictor predicts via the bottleneck algorithm on a mapping.
type mappingPredictor struct {
	name string
	m    *portmap.Mapping
}

// FromMapping adapts a port mapping to the Predictor interface using the
// optimal-scheduler throughput model. PMEvo's inferred mappings are
// evaluated through this adapter.
func FromMapping(name string, m *portmap.Mapping) Predictor {
	return &mappingPredictor{name: name, m: m}
}

func (p *mappingPredictor) Name() string { return p.name }

func (p *mappingPredictor) Predict(e portmap.Experiment) (float64, error) {
	for _, t := range e {
		if t.Inst < 0 || t.Inst >= p.m.NumInsts() {
			return 0, fmt.Errorf("%s: instruction %d out of range", p.name, t.Inst)
		}
	}
	return throughput.OfExperiment(p.m, e), nil
}

// UopsInfo builds the uops.info-style predictor: the exact documented
// port usage under the optimal scheduling model. It refuses processors
// without per-port performance counters, mirroring the real tool's
// hardware requirements (§5.1.1, §6.1).
func UopsInfo(proc *uarch.Processor) (Predictor, error) {
	if !proc.HasPortCounters {
		return nil, fmt.Errorf("uops.info requires per-port performance counters; %s has none", proc.Name)
	}
	return FromMapping("uops.info", proc.GroundTruth), nil
}

// iacaPredictor combines the documented port mapping with a front-end
// dispatch bound.
type iacaPredictor struct {
	proc *uarch.Processor
}

// IACA builds the IACA-style predictor. IACA is provided by Intel for
// Intel microarchitectures only (§6.2).
func IACA(proc *uarch.Processor) (Predictor, error) {
	if proc.Manufacturer != "Intel" {
		return nil, fmt.Errorf("IACA supports only Intel microarchitectures, not %s", proc.Name)
	}
	return &iacaPredictor{proc: proc}, nil
}

func (p *iacaPredictor) Name() string { return "IACA" }

func (p *iacaPredictor) Predict(e portmap.Experiment) (float64, error) {
	gt := p.proc.GroundTruth
	for _, t := range e {
		if t.Inst < 0 || t.Inst >= gt.NumInsts() {
			return 0, fmt.Errorf("IACA: instruction %d out of range", t.Inst)
		}
	}
	port := throughput.OfExperiment(gt, e)
	// Front-end bound: the decoder/dispatch stage moves at most
	// DispatchWidth µops per cycle (documented µop counts).
	uops := 0
	for _, t := range e {
		uops += gt.UopCountOf(t.Inst) * t.Count
	}
	front := float64(uops) / float64(p.proc.Config.DispatchWidth)
	if front > port {
		return front, nil
	}
	return port, nil
}

// LLVMMCA builds the llvm-mca-style predictor from a degraded copy of
// the ground truth, reflecting the quality of LLVM's scheduling models
// per architecture: near-exact for SKL (heavily tuned), pessimistic
// about port parallelism for ZEN and A72, whose models "might not yet be
// as elaborate and accurate" (§5.3.2). The degradation keeps relative
// instruction ordering (hence the decent Pearson correlation in Table 4)
// but systematically over-estimates cycles.
func LLVMMCA(proc *uarch.Processor) Predictor {
	m := proc.GroundTruth.Clone()
	switch proc.Name {
	case "SKL":
		degradeSKL(m)
	case "ZEN":
		degradePorts(m, 1)
	default:
		degradePorts(m, 1)
		inflateUopCounts(m)
	}
	return FromMapping("llvm-mca", m)
}

// inflateUopCounts doubles the µop count of originally multi-µop
// instructions, modeling scheduling files whose per-instruction resource
// cycles are copied from a slower predecessor core. Applied to the A72
// model, whose prediction error in the paper exceeds ZEN's (Table 4).
func inflateUopCounts(m *portmap.Mapping) {
	for i, uops := range m.Decomp {
		if m.UopCountOf(i) < 2 {
			continue
		}
		for j := range uops {
			uops[j].Count *= 2
		}
		m.SetDecomp(i, uops)
	}
}

// degradeSKL applies the small inaccuracies of LLVM's (well-tuned)
// Skylake model: the simple-store AGU port P7 is missing from store
// address µops, and the LEA port set is modeled too narrowly.
func degradeSKL(m *portmap.Mapping) {
	for i, uops := range m.Decomp {
		changed := false
		for j, uc := range uops {
			if uc.Ports == portmap.MakePortSet(2, 3, 7) {
				uops[j].Ports = portmap.MakePortSet(2, 3)
				changed = true
			}
			if uc.Ports == portmap.MakePortSet(1, 5) {
				uops[j].Ports = portmap.MakePortSet(1)
				changed = true
			}
		}
		if changed {
			m.SetDecomp(i, uops)
		}
	}
}

// degradePorts truncates every µop's port set to its maxPorts lowest
// ports, modeling scheduling files that understate the available
// parallelism.
func degradePorts(m *portmap.Mapping, maxPorts int) {
	for i, uops := range m.Decomp {
		for j, uc := range uops {
			if uc.Ports.Count() > maxPorts {
				var trimmed portmap.PortSet
				for _, k := range uc.Ports.Ports()[:maxPorts] {
					trimmed = trimmed.With(k)
				}
				uops[j].Ports = trimmed
			}
		}
		m.SetDecomp(i, uops)
	}
}
