// Package machine implements a cycle-level simulator of an out-of-order
// processor core, serving as the hardware substitute for the physical
// Intel, AMD, and ARM machines of the paper's evaluation (Table 1).
//
// The simulator models the parts of Figure 1 that determine steady-state
// throughput: a dispatch stage with limited width, a scheduler window of
// limited capacity, execution ports that accept one µop per cycle
// (pipelined units) or block for several cycles (dividers), and register
// dependencies with per-instruction latencies.
//
// Crucially, the scheduler is *greedy*, not optimal: µops issue oldest-
// first to the least-loaded allowed port. The gap between this greedy
// schedule and the optimal schedule assumed by the throughput model
// (Definition 3, assumption 1) is one source of the model error the paper
// observes (Figure 6), alongside measurement noise. A deliberately weak
// configuration (narrow dispatch, small window) reproduces the A72's
// "less advanced out-of-order execution engine" (§5.3.2).
package machine

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"pmevo/internal/portmap"
)

// SchedPolicy selects how the greedy scheduler picks among free allowed
// ports.
type SchedPolicy int

const (
	// LeastLoaded picks the free allowed port with the smallest total
	// number of µops issued so far. This balances well and is close to
	// the optimal scheduler for symmetric workloads.
	LeastLoaded SchedPolicy = iota
	// LowestIndex always picks the free allowed port with the smallest
	// index. It creates systematic imbalance, modeling simpler hardware.
	LowestIndex
)

// Config describes the simulated core.
type Config struct {
	// NumPorts is the number of execution ports.
	NumPorts int
	// DispatchWidth is the maximum number of µops entering the scheduler
	// window per cycle.
	DispatchWidth int
	// WindowSize is the scheduler window capacity (µops waiting to
	// issue).
	WindowSize int
	// Policy is the port selection policy.
	Policy SchedPolicy
	// FrequencyGHz converts cycles to wall-clock time for the
	// measurement harness.
	FrequencyGHz float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NumPorts <= 0 || c.NumPorts > portmap.MaxPorts {
		return fmt.Errorf("machine: invalid port count %d", c.NumPorts)
	}
	if c.DispatchWidth <= 0 {
		return errors.New("machine: dispatch width must be positive")
	}
	if c.WindowSize <= 0 {
		return errors.New("machine: window size must be positive")
	}
	if c.FrequencyGHz <= 0 {
		return errors.New("machine: frequency must be positive")
	}
	return nil
}

// UopSpec describes one µop of an instruction's decomposition.
type UopSpec struct {
	// Ports is the set of ports that can execute the µop.
	Ports portmap.PortSet
	// Block is the number of cycles the chosen port is occupied.
	// 1 means fully pipelined (Definition 3, assumption 2); dividers
	// use larger values.
	Block int
}

// InstSpec describes the execution behaviour of one instruction form.
type InstSpec struct {
	// Uops is the µop decomposition.
	Uops []UopSpec
	// Latency is the number of cycles from issue of the last µop until
	// the instruction's results are available to dependent instructions.
	Latency int
}

// Inst is one instruction instance in a program: a reference to its spec
// plus the concrete registers it reads and writes. Register IDs are
// small dense integers assigned by the caller (the measurement harness's
// register allocator).
type Inst struct {
	Spec   int
	Reads  []int
	Writes []int
}

// Result reports a simulation run.
type Result struct {
	// Cycles is the number of cycles until the last µop issued.
	Cycles int64
	// Instructions is the total number of instruction instances executed.
	Instructions int64
	// Uops is the total number of µops issued.
	Uops int64
	// PortUops[k] is the number of µops issued on port k.
	PortUops []int64
	// WindowFullCycles counts cycles in which dispatch halted because
	// the scheduler window was full — the signature of a too-small
	// out-of-order window (the A72 story of §5.3.2).
	WindowFullCycles int64
	// OccupancySum accumulates the window occupancy per cycle; divide by
	// Cycles (MeanOccupancy) for the average number of waiting µops.
	OccupancySum int64
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// MeanOccupancy returns the average scheduler-window occupancy over the
// run, in µops.
func (r Result) MeanOccupancy() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.OccupancySum) / float64(r.Cycles)
}

// WindowFullFraction returns the fraction of cycles in which the window
// capacity stalled dispatch.
func (r Result) WindowFullFraction() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.WindowFullCycles) / float64(r.Cycles)
}

// Machine is a simulated core with a fixed instruction spec table.
type Machine struct {
	cfg   Config
	specs []InstSpec
}

// New creates a machine. Every spec must have at least one µop and every
// µop at least one in-range port.
func New(cfg Config, specs []InstSpec) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	all := portmap.FullPortSet(cfg.NumPorts)
	for i, s := range specs {
		if len(s.Uops) == 0 {
			return nil, fmt.Errorf("machine: spec %d has no µops", i)
		}
		if s.Latency < 1 {
			return nil, fmt.Errorf("machine: spec %d has latency %d < 1", i, s.Latency)
		}
		for j, u := range s.Uops {
			if u.Ports.IsEmpty() {
				return nil, fmt.Errorf("machine: spec %d µop %d has no ports", i, j)
			}
			if !u.Ports.SubsetOf(all) {
				return nil, fmt.Errorf("machine: spec %d µop %d uses out-of-range ports %s", i, j, u.Ports)
			}
			if u.Block < 1 {
				return nil, fmt.Errorf("machine: spec %d µop %d has block %d < 1", i, j, u.Block)
			}
		}
	}
	return &Machine{cfg: cfg, specs: specs}, nil
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// NumSpecs returns the number of instruction specs.
func (m *Machine) NumSpecs() int { return len(m.specs) }

const notReady = math.MaxInt64 / 4

// flight is a µop in the scheduler window.
type flight struct {
	ports    portmap.PortSet
	block    int
	srcs     []*int64 // completion cells of the producing instructions
	instCell *int64   // completion cell of this µop's instruction
	instLeft *int32   // remaining un-issued µops of the instruction
	latency  int64
}

// Run executes the loop body `iters` times and returns the result.
// The body's register reads and writes establish dependencies across
// iterations exactly as in real hardware (loop-carried dependencies are
// respected; the measurement harness unrolls to avoid them).
func (m *Machine) Run(body []Inst, iters int) (Result, error) {
	for idx, in := range body {
		if in.Spec < 0 || in.Spec >= len(m.specs) {
			return Result{}, fmt.Errorf("machine: instruction %d references unknown spec %d", idx, in.Spec)
		}
	}
	if len(body) == 0 || iters <= 0 {
		return Result{PortUops: make([]int64, m.cfg.NumPorts)}, nil
	}

	// regCell maps a register ID to the completion cell of its most
	// recent writer (register renaming: each dispatch of a writer
	// installs a fresh cell).
	regCell := make(map[int]*int64)
	zero := int64(0)
	cellFor := func(reg int) *int64 {
		if c, ok := regCell[reg]; ok {
			return c
		}
		regCell[reg] = &zero
		return &zero
	}

	res := Result{PortUops: make([]int64, m.cfg.NumPorts)}

	window := make([]*flight, 0, m.cfg.WindowSize)
	portBusyUntil := make([]int64, m.cfg.NumPorts)
	portLoad := make([]int64, m.cfg.NumPorts)

	// Stream state: next µop to dispatch.
	iter, bodyIdx, uopIdx := 0, 0, 0
	var curCell *int64
	var curLeft *int32
	var curSrcs []*int64
	var curSpec *InstSpec
	startInst := func() {
		in := body[bodyIdx]
		spec := &m.specs[in.Spec]
		curSpec = spec
		curSrcs = make([]*int64, 0, len(in.Reads))
		for _, r := range in.Reads {
			curSrcs = append(curSrcs, cellFor(r))
		}
		cell := new(int64)
		*cell = notReady
		left := int32(len(spec.Uops))
		curCell, curLeft = cell, &left
		for _, w := range in.Writes {
			regCell[w] = cell
		}
		res.Instructions++
	}
	startInst()

	done := func() bool { return iter >= iters }
	var lastIssue int64 = -1

	const watchdog = int64(1) << 40
	for cycle := int64(0); ; cycle++ {
		if cycle > watchdog {
			return Result{}, errors.New("machine: simulation exceeded watchdog limit")
		}
		// Dispatch stage: move up to DispatchWidth µops into the window.
		dispatched := 0
		for !done() && dispatched < m.cfg.DispatchWidth && len(window) < m.cfg.WindowSize {
			u := curSpec.Uops[uopIdx]
			window = append(window, &flight{
				ports:    u.Ports,
				block:    u.Block,
				srcs:     curSrcs,
				instCell: curCell,
				instLeft: curLeft,
				latency:  int64(curSpec.Latency),
			})
			dispatched++
			uopIdx++
			if uopIdx == len(curSpec.Uops) {
				uopIdx = 0
				bodyIdx++
				if bodyIdx == len(body) {
					bodyIdx = 0
					iter++
				}
				if !done() {
					startInst()
				}
			}
		}

		// Window statistics: a dispatch halted purely by window capacity
		// marks this cycle as window-stalled.
		if !done() && dispatched < m.cfg.DispatchWidth && len(window) >= m.cfg.WindowSize {
			res.WindowFullCycles++
		}
		res.OccupancySum += int64(len(window))

		// Issue stage: oldest-first greedy issue to free allowed ports.
		var issuedPorts portmap.PortSet
		w := 0
		for _, f := range window {
			ready := true
			for _, s := range f.srcs {
				if *s > cycle {
					ready = false
					break
				}
			}
			if !ready {
				window[w] = f
				w++
				continue
			}
			port := m.pickPort(f.ports, issuedPorts, portBusyUntil, portLoad, cycle)
			if port < 0 {
				window[w] = f
				w++
				continue
			}
			issuedPorts = issuedPorts.With(port)
			portBusyUntil[port] = cycle + int64(f.block)
			portLoad[port]++
			res.PortUops[port]++
			res.Uops++
			lastIssue = cycle
			*f.instLeft--
			if *f.instLeft == 0 {
				*f.instCell = cycle + f.latency
			}
		}
		window = window[:w]

		if done() && len(window) == 0 {
			break
		}
	}
	res.Cycles = lastIssue + 1
	return res, nil
}

// pickPort selects a port for a µop that may use `allowed`, given the
// ports already used this cycle and the per-port busy state. It returns
// -1 if no allowed port is free.
func (m *Machine) pickPort(allowed, issued portmap.PortSet, busyUntil, load []int64, cycle int64) int {
	best := -1
	var bestLoad int64
	for v := uint64(allowed &^ issued); v != 0; v &= v - 1 {
		k := bits.TrailingZeros64(v)
		if busyUntil[k] > cycle {
			continue
		}
		if m.cfg.Policy == LowestIndex {
			return k
		}
		if best < 0 || load[k] < bestLoad {
			best = k
			bestLoad = load[k]
		}
	}
	return best
}

// SteadyStateCycles runs the body for warmup+measure iterations and
// returns the marginal cycles per iteration over the measured portion,
// implementing the steady-state throughput of Definition 1.
func (m *Machine) SteadyStateCycles(body []Inst, warmup, measure int) (float64, error) {
	if measure <= 0 {
		return 0, errors.New("machine: measure iterations must be positive")
	}
	r1, err := m.Run(body, warmup)
	if err != nil {
		return 0, err
	}
	r2, err := m.Run(body, warmup+measure)
	if err != nil {
		return 0, err
	}
	return float64(r2.Cycles-r1.Cycles) / float64(measure), nil
}
