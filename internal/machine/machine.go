// Package machine implements a cycle-level simulator of an out-of-order
// processor core, serving as the hardware substitute for the physical
// Intel, AMD, and ARM machines of the paper's evaluation (Table 1).
//
// The simulator models the parts of Figure 1 that determine steady-state
// throughput: a dispatch stage with limited width, a scheduler window of
// limited capacity, execution ports that accept one µop per cycle
// (pipelined units) or block for several cycles (dividers), and register
// dependencies with per-instruction latencies.
//
// Crucially, the scheduler is *greedy*, not optimal: µops issue oldest-
// first to the least-loaded allowed port. The gap between this greedy
// schedule and the optimal schedule assumed by the throughput model
// (Definition 3, assumption 1) is one source of the model error the paper
// observes (Figure 6), alongside measurement noise. A deliberately weak
// configuration (narrow dispatch, small window) reproduces the A72's
// "less advanced out-of-order execution engine" (§5.3.2).
//
// Because the scheduler is deterministic, a loop body's execution becomes
// exactly periodic once the simulator state recurs. Run exploits this:
// it hashes a canonical state snapshot every cycle and, on recurrence,
// extrapolates the remaining iterations arithmetically instead of
// simulating them — with results bit-identical to full cycle-by-cycle
// simulation (see period.go). Inside every simulated span the core is
// event-driven: cycles in which no dispatch and no issue is possible are
// fast-forwarded in one arithmetic jump to the next readiness event
// (see run.go), again bit-identical to stepping them. Simulation storage
// lives in pooled per-goroutine scratch, so steady-state runs allocate
// (almost) nothing.
package machine

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"

	"pmevo/internal/portmap"
)

// SchedPolicy selects how the greedy scheduler picks among free allowed
// ports.
type SchedPolicy int

const (
	// LeastLoaded picks the free allowed port with the smallest total
	// number of µops issued so far. This balances well and is close to
	// the optimal scheduler for symmetric workloads.
	LeastLoaded SchedPolicy = iota
	// LowestIndex always picks the free allowed port with the smallest
	// index. It creates systematic imbalance, modeling simpler hardware.
	LowestIndex
)

// PeriodDetectDisabled disables steady-state period detection when
// assigned to Config.PeriodDetectBudget: Run simulates every cycle.
const PeriodDetectDisabled = -1

// defaultPeriodDetectBudget is the number of simulated cycles Run spends
// looking for a steady-state period (Config.PeriodDetectBudget == 0)
// before falling back to plain cycle-by-cycle simulation. Harness-scale
// loop bodies (~50 instructions) settle into their period within a few
// body iterations, far below this bound.
const defaultPeriodDetectBudget = 4096

// Config describes the simulated core.
type Config struct {
	// NumPorts is the number of execution ports.
	NumPorts int
	// DispatchWidth is the maximum number of µops entering the scheduler
	// window per cycle.
	DispatchWidth int
	// WindowSize is the scheduler window capacity (µops waiting to
	// issue).
	WindowSize int
	// Policy is the port selection policy.
	Policy SchedPolicy
	// FrequencyGHz converts cycles to wall-clock time for the
	// measurement harness.
	FrequencyGHz float64
	// PeriodDetectBudget caps the number of simulated cycles examined by
	// steady-state period detection before Run falls back to plain
	// cycle-by-cycle simulation for the rest of the run. 0 selects a
	// default budget; PeriodDetectDisabled (or any negative value) turns
	// detection off entirely. Detection never changes results: an
	// extrapolated run is bit-identical to full simulation, only cheaper.
	// Detection composes with, and is independent of, the event-driven
	// fast-forward (EventDrivenDisabled): detection removes redundant
	// *iterations* once a recurrence is found, the fast-forward removes
	// dead *cycles* inside every simulated span — including the transient
	// before a recurrence and runs where detection is off or never fires.
	// Disabling both (uarch.Processor.BaselineMachine) yields the
	// brute-force cycle-by-cycle twin used as the bit-equality oracle.
	PeriodDetectBudget int
	// EventDrivenDisabled turns off the event-driven fast-forward in the
	// simulation core: every cycle is stepped individually even when no
	// state transition is possible (window full or stream done, and every
	// waiting µop blocked on a future completion or busy port). Like
	// PeriodDetectBudget, the knob never changes results — a
	// fast-forwarded run is bit-identical to the stepped run, dead spans
	// are accounted arithmetically (see run.go) — it exists so the
	// brute-force twin stays available as the bit-equality oracle and so
	// eval.RunMachineBench can quantify the fast-forward win.
	EventDrivenDisabled bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NumPorts <= 0 || c.NumPorts > portmap.MaxPorts {
		return fmt.Errorf("machine: invalid port count %d", c.NumPorts)
	}
	if c.DispatchWidth <= 0 {
		return errors.New("machine: dispatch width must be positive")
	}
	if c.WindowSize <= 0 {
		return errors.New("machine: window size must be positive")
	}
	if c.FrequencyGHz <= 0 {
		return errors.New("machine: frequency must be positive")
	}
	return nil
}

// UopSpec describes one µop of an instruction's decomposition.
type UopSpec struct {
	// Ports is the set of ports that can execute the µop.
	Ports portmap.PortSet
	// Block is the number of cycles the chosen port is occupied.
	// 1 means fully pipelined (Definition 3, assumption 2); dividers
	// use larger values.
	Block int
}

// InstSpec describes the execution behaviour of one instruction form.
type InstSpec struct {
	// Uops is the µop decomposition.
	Uops []UopSpec
	// Latency is the number of cycles from issue of the last µop until
	// the instruction's results are available to dependent instructions.
	Latency int
}

// Inst is one instruction instance in a program: a reference to its spec
// plus the concrete registers it reads and writes. Register IDs are
// small dense integers assigned by the caller (the measurement harness's
// register allocator).
type Inst struct {
	Spec   int
	Reads  []int
	Writes []int
}

// Result reports a simulation run.
type Result struct {
	// Cycles is the number of cycles until the last µop issued.
	Cycles int64
	// Instructions is the total number of instruction instances executed.
	Instructions int64
	// Uops is the total number of µops issued.
	Uops int64
	// PortUops[k] is the number of µops issued on port k.
	PortUops []int64
	// WindowFullCycles counts cycles in which dispatch halted because
	// the scheduler window was full — the signature of a too-small
	// out-of-order window (the A72 story of §5.3.2).
	WindowFullCycles int64
	// OccupancySum accumulates the window occupancy per cycle; divide by
	// Cycles (MeanOccupancy) for the average number of waiting µops.
	OccupancySum int64
	// DetectedPeriod is the steady-state period in cycles found by
	// period detection (0 when no recurrence was found and the run was
	// simulated cycle by cycle; non-zero even if the extrapolation then
	// skipped zero whole periods because the tail covered the rest).
	// Diagnostic metadata: it does not affect, and is not part of, the
	// simulated semantics.
	DetectedPeriod int64
	// DetectedPeriodIters is the same steady-state period expressed in
	// body iterations. A later run of the same body can pass it back as
	// the period hint (SteadyStateCyclesHinted) to skip most detection
	// hashing. Diagnostic metadata, like DetectedPeriod.
	DetectedPeriodIters int
	// SkippedCycles counts the dead cycles the event-driven core
	// fast-forwarded over instead of stepping (0 with
	// Config.EventDrivenDisabled). It counts cycles actually simulated
	// past, not cycles covered by period extrapolation — the two
	// mechanisms' wins are reported separately. Diagnostic metadata: a
	// fast-forwarded run is bit-identical to the stepped run on every
	// other field.
	SkippedCycles int64
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// MeanOccupancy returns the average scheduler-window occupancy over the
// run, in µops.
func (r Result) MeanOccupancy() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.OccupancySum) / float64(r.Cycles)
}

// WindowFullFraction returns the fraction of cycles in which the window
// capacity stalled dispatch.
func (r Result) WindowFullFraction() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.WindowFullCycles) / float64(r.Cycles)
}

// Machine is a simulated core with a fixed instruction spec table. It is
// immutable after construction and safe for concurrent Run calls: every
// run draws its storage from an internal scratch pool.
type Machine struct {
	cfg    Config
	specs  []InstSpec
	fp     uint64
	specFP []uint64
	pool   sync.Pool // *runScratch
}

// New creates a machine. Every spec must have at least one µop and every
// µop at least one in-range port.
func New(cfg Config, specs []InstSpec) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	all := portmap.FullPortSet(cfg.NumPorts)
	for i, s := range specs {
		if len(s.Uops) == 0 {
			return nil, fmt.Errorf("machine: spec %d has no µops", i)
		}
		if s.Latency < 1 {
			return nil, fmt.Errorf("machine: spec %d has latency %d < 1", i, s.Latency)
		}
		for j, u := range s.Uops {
			if u.Ports.IsEmpty() {
				return nil, fmt.Errorf("machine: spec %d µop %d has no ports", i, j)
			}
			if !u.Ports.SubsetOf(all) {
				return nil, fmt.Errorf("machine: spec %d µop %d uses out-of-range ports %s", i, j, u.Ports)
			}
			if u.Block < 1 {
				return nil, fmt.Errorf("machine: spec %d µop %d has block %d < 1", i, j, u.Block)
			}
		}
	}
	m := &Machine{cfg: cfg, specs: specs, fp: fingerprintMachine(cfg, specs)}
	m.specFP = make([]uint64, len(specs))
	for i := range specs {
		m.specFP[i] = fingerprintSpec(&specs[i])
	}
	return m, nil
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// NumSpecs returns the number of instruction specs.
func (m *Machine) NumSpecs() int { return len(m.specs) }

// Fingerprint returns a 64-bit identity of the simulated machine: the
// configuration and every instruction spec, hashed. Two machines with
// equal fingerprints produce identical Run results on every body (up to
// ~2^-64 hash-collision odds). The period-detection budget and the
// event-driven knob are excluded — neither ever changes results. The
// measurement layer's kernel-simulation cache keys on this.
func (m *Machine) Fingerprint() uint64 { return m.fp }

// SpecFingerprint returns a content hash of one instruction spec (µop
// decomposition and latency). Distinct spec IDs with equal fingerprints
// behave identically in the simulator, so a canonical loop-body encoding
// can substitute the fingerprint for the ID: instruction forms of the
// same semantic class share specs, and their measurement kernels then
// deduplicate in the kernel-simulation cache — the bulk of the
// redundancy in Table 1-shaped form sets.
func (m *Machine) SpecFingerprint(spec int) uint64 { return m.specFP[spec] }

// fingerprintSpec hashes one spec's simulator-visible content.
func fingerprintSpec(s *InstSpec) uint64 {
	h := mixA(0x706d65766f737063) // "pmevospc"
	h = mixA(h ^ uint64(s.Latency)<<32 ^ uint64(len(s.Uops)))
	for _, u := range s.Uops {
		h = mixA(h ^ uint64(u.Ports))
		h = mixA(h ^ uint64(u.Block))
	}
	return h
}

// fingerprintMachine hashes the result-determining parts of a machine:
// the configuration plus every spec's content fingerprint, so the two
// hashes can never disagree about what counts as simulator-visible
// spec content.
func fingerprintMachine(cfg Config, specs []InstSpec) uint64 {
	h := mixA(0x706d65766f6d6163) // "pmevomac"
	h = mixA(h ^ uint64(cfg.NumPorts))
	h = mixA(h ^ uint64(cfg.DispatchWidth))
	h = mixA(h ^ uint64(cfg.WindowSize))
	h = mixA(h ^ uint64(cfg.Policy))
	h = mixA(h ^ math.Float64bits(cfg.FrequencyGHz))
	for i := range specs {
		h = mixA(h ^ fingerprintSpec(&specs[i]))
	}
	return h
}

const notReady = math.MaxInt64 / 4

// pickPort selects a port for a µop that may use `allowed`, given the
// ports already used this cycle and the per-port busy state. It returns
// -1 if no allowed port is free.
func (m *Machine) pickPort(allowed, issued portmap.PortSet, busyUntil, load []int64, cycle int64) int {
	best := -1
	var bestLoad int64
	for v := uint64(allowed &^ issued); v != 0; v &= v - 1 {
		k := bits.TrailingZeros64(v)
		if busyUntil[k] > cycle {
			continue
		}
		if m.cfg.Policy == LowestIndex {
			return k
		}
		if best < 0 || load[k] < bestLoad {
			best = k
			bestLoad = load[k]
		}
	}
	return best
}

// SteadyStateCycles runs the body for warmup+measure iterations and
// returns the marginal cycles per iteration over the measured portion,
// implementing the steady-state throughput of Definition 1.
//
// The two underlying runs share one simulation pass (runPair): the
// steady-state transient is simulated once and the warmup-length run is
// completed from a forked state copy, with both cycle counts
// bit-identical to standalone Runs (and hence to brute-force simulation
// with detection disabled).
func (m *Machine) SteadyStateCycles(body []Inst, warmup, measure int) (float64, error) {
	v, _, err := m.SteadyStateCyclesHinted(body, warmup, measure, 0)
	return v, err
}

// SteadyStateCyclesHinted is SteadyStateCycles with a period hint and
// run diagnostics: periodHint, when positive, is a steady-state period
// in body iterations from an earlier run of the same body (typically
// Result.DetectedPeriodIters), and restricts period-detection hashing
// to iterations congruent modulo the hint — the second run of a known
// body pays ~1/hint of the detection cost. A wrong or stale hint only
// delays detection (recurrences are still found at hint-aligned
// iterations, or the run falls back to plain simulation); the returned
// cycles are bit-identical to an unhinted run either way. The returned
// Result is the diagnostics of the warmup+measure run (its
// DetectedPeriodIters feeds the next hint).
func (m *Machine) SteadyStateCyclesHinted(body []Inst, warmup, measure, periodHint int) (float64, Result, error) {
	if measure <= 0 {
		return 0, Result{}, errors.New("machine: measure iterations must be positive")
	}
	c1, r2, err := m.runPair(body, warmup, warmup+measure, periodHint)
	if err != nil {
		return 0, Result{}, err
	}
	return float64(r2.Cycles-c1) / float64(measure), r2, nil
}
