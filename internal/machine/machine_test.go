package machine

import (
	"math"
	"testing"

	"pmevo/internal/portmap"
)

// testConfig is a small 3-port machine with generous front end.
func testConfig() Config {
	return Config{
		NumPorts:      3,
		DispatchWidth: 6,
		WindowSize:    60,
		Policy:        LeastLoaded,
		FrequencyGHz:  1.0,
	}
}

func simpleSpec(lat int, ports ...int) InstSpec {
	return InstSpec{
		Uops:    []UopSpec{{Ports: portmap.MakePortSet(ports...), Block: 1}},
		Latency: lat,
	}
}

func mustMachine(t *testing.T, cfg Config, specs []InstSpec) *Machine {
	t.Helper()
	m, err := New(cfg, specs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.NumPorts = 0 },
		func(c *Config) { c.NumPorts = 100 },
		func(c *Config) { c.DispatchWidth = 0 },
		func(c *Config) { c.WindowSize = 0 },
		func(c *Config) { c.FrequencyGHz = 0 },
	}
	for i, mutate := range cases {
		c := testConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestNewRejectsBadSpecs(t *testing.T) {
	cfg := testConfig()
	cases := []InstSpec{
		{}, // no µops
		{Uops: []UopSpec{{Ports: 0, Block: 1}}, Latency: 1},                      // empty ports
		{Uops: []UopSpec{{Ports: portmap.MakePortSet(5), Block: 1}}, Latency: 1}, // out of range
		{Uops: []UopSpec{{Ports: portmap.MakePortSet(0), Block: 0}}, Latency: 1}, // bad block
		{Uops: []UopSpec{{Ports: portmap.MakePortSet(0), Block: 1}}, Latency: 0}, // bad latency
	}
	for i, s := range cases {
		if _, err := New(cfg, []InstSpec{s}); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestRunRejectsUnknownSpec(t *testing.T) {
	m := mustMachine(t, testConfig(), []InstSpec{simpleSpec(1, 0)})
	if _, err := m.Run([]Inst{{Spec: 3}}, 1); err == nil {
		t.Error("unknown spec accepted")
	}
}

func TestEmptyRun(t *testing.T) {
	m := mustMachine(t, testConfig(), []InstSpec{simpleSpec(1, 0)})
	r, err := m.Run(nil, 10)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Cycles != 0 || r.Instructions != 0 {
		t.Errorf("empty run produced %+v", r)
	}
	if r.IPC() != 0 {
		t.Errorf("IPC of empty run = %g", r.IPC())
	}
}

func TestSinglePortThroughput(t *testing.T) {
	// One instruction on one port, no dependencies: 1 cycle/inst.
	m := mustMachine(t, testConfig(), []InstSpec{simpleSpec(1, 0)})
	body := []Inst{
		{Spec: 0, Writes: []int{1}},
		{Spec: 0, Writes: []int{2}},
	}
	tp, err := m.SteadyStateCycles(body, 10, 100)
	if err != nil {
		t.Fatalf("SteadyStateCycles: %v", err)
	}
	// Two instructions per iteration, both on port 0: 2 cycles/iteration.
	if math.Abs(tp-2) > 0.05 {
		t.Errorf("steady state = %g cycles/iter, want 2", tp)
	}
}

func TestTwoPortsBalance(t *testing.T) {
	// Instructions on {P0,P1}: two can issue per cycle.
	m := mustMachine(t, testConfig(), []InstSpec{simpleSpec(1, 0, 1)})
	body := []Inst{
		{Spec: 0, Writes: []int{1}},
		{Spec: 0, Writes: []int{2}},
		{Spec: 0, Writes: []int{3}},
		{Spec: 0, Writes: []int{4}},
	}
	tp, err := m.SteadyStateCycles(body, 10, 100)
	if err != nil {
		t.Fatalf("SteadyStateCycles: %v", err)
	}
	if math.Abs(tp-2) > 0.05 {
		t.Errorf("steady state = %g cycles/iter, want 2 (4 insts / 2 ports)", tp)
	}
}

func TestPortUopsAccounting(t *testing.T) {
	m := mustMachine(t, testConfig(), []InstSpec{simpleSpec(1, 0, 1)})
	body := []Inst{{Spec: 0, Writes: []int{1}}, {Spec: 0, Writes: []int{2}}}
	r, err := m.Run(body, 50)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Uops != 100 {
		t.Errorf("Uops = %d, want 100", r.Uops)
	}
	if r.Instructions != 100 {
		t.Errorf("Instructions = %d, want 100", r.Instructions)
	}
	var sum int64
	for _, n := range r.PortUops {
		sum += n
	}
	if sum != r.Uops {
		t.Errorf("PortUops sum %d != Uops %d", sum, r.Uops)
	}
	// LeastLoaded should balance the two ports evenly.
	if r.PortUops[0] != 50 || r.PortUops[1] != 50 {
		t.Errorf("PortUops = %v, want 50/50 balance", r.PortUops)
	}
}

func TestLowestIndexPolicySkews(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = LowestIndex
	cfg.DispatchWidth = 1 // one µop per cycle: port 0 always free at issue
	m := mustMachine(t, cfg, []InstSpec{simpleSpec(1, 0, 1)})
	body := []Inst{{Spec: 0, Writes: []int{1}}}
	r, err := m.Run(body, 50)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.PortUops[0] != 50 || r.PortUops[1] != 0 {
		t.Errorf("PortUops = %v, want all on port 0", r.PortUops)
	}
}

func TestLatencyChain(t *testing.T) {
	// A dependency chain of 3-cycle instructions: 3 cycles per instruction.
	m := mustMachine(t, testConfig(), []InstSpec{simpleSpec(3, 0, 1, 2)})
	body := []Inst{{Spec: 0, Reads: []int{1}, Writes: []int{1}}}
	tp, err := m.SteadyStateCycles(body, 10, 50)
	if err != nil {
		t.Fatalf("SteadyStateCycles: %v", err)
	}
	if math.Abs(tp-3) > 0.05 {
		t.Errorf("steady state = %g cycles/iter, want 3 (latency-bound chain)", tp)
	}
}

func TestIndependentStreamsHideLatency(t *testing.T) {
	// Three independent chains of latency 3 on 3 ports: 1 cycle/inst.
	m := mustMachine(t, testConfig(), []InstSpec{simpleSpec(3, 0, 1, 2)})
	body := []Inst{
		{Spec: 0, Reads: []int{1}, Writes: []int{1}},
		{Spec: 0, Reads: []int{2}, Writes: []int{2}},
		{Spec: 0, Reads: []int{3}, Writes: []int{3}},
	}
	tp, err := m.SteadyStateCycles(body, 20, 100)
	if err != nil {
		t.Fatalf("SteadyStateCycles: %v", err)
	}
	if math.Abs(tp-3) > 0.1 {
		t.Errorf("steady state = %g cycles/iter, want 3 (3 chains × 3 cycles / 3-way ILP)", tp)
	}
}

func TestBlockingDivider(t *testing.T) {
	// An unpipelined 4-cycle divider on port 0: 4 cycles per instruction
	// even without dependencies (Definition 3 assumption 2 violation).
	spec := InstSpec{
		Uops:    []UopSpec{{Ports: portmap.MakePortSet(0), Block: 4}},
		Latency: 10,
	}
	m := mustMachine(t, testConfig(), []InstSpec{spec})
	body := []Inst{{Spec: 0, Writes: []int{1}}}
	tp, err := m.SteadyStateCycles(body, 10, 50)
	if err != nil {
		t.Fatalf("SteadyStateCycles: %v", err)
	}
	if math.Abs(tp-4) > 0.1 {
		t.Errorf("steady state = %g cycles/iter, want 4 (blocking unit)", tp)
	}
}

func TestMultiUopInstruction(t *testing.T) {
	// An instruction with two µops on the same single port: 2 cycles each.
	spec := InstSpec{
		Uops: []UopSpec{
			{Ports: portmap.MakePortSet(0), Block: 1},
			{Ports: portmap.MakePortSet(0), Block: 1},
		},
		Latency: 1,
	}
	m := mustMachine(t, testConfig(), []InstSpec{spec})
	body := []Inst{{Spec: 0, Writes: []int{1}}}
	tp, err := m.SteadyStateCycles(body, 10, 50)
	if err != nil {
		t.Fatalf("SteadyStateCycles: %v", err)
	}
	if math.Abs(tp-2) > 0.05 {
		t.Errorf("steady state = %g cycles/iter, want 2", tp)
	}
}

func TestDispatchWidthLimits(t *testing.T) {
	// 6 independent single-µop instructions on 3 ports would need 2
	// cycles/iter, but dispatch width 1 forces 6 cycles/iter.
	cfg := testConfig()
	cfg.DispatchWidth = 1
	m := mustMachine(t, cfg, []InstSpec{simpleSpec(1, 0, 1, 2)})
	var body []Inst
	for i := 0; i < 6; i++ {
		body = append(body, Inst{Spec: 0, Writes: []int{10 + i}})
	}
	tp, err := m.SteadyStateCycles(body, 10, 50)
	if err != nil {
		t.Fatalf("SteadyStateCycles: %v", err)
	}
	if math.Abs(tp-6) > 0.1 {
		t.Errorf("steady state = %g cycles/iter, want 6 (dispatch-bound)", tp)
	}
}

func TestWindowSizeLimitsLatencyHiding(t *testing.T) {
	// One long chain plus many independent instructions: with a tiny
	// window the machine cannot look far enough ahead to fill ports,
	// so throughput degrades vs a large window.
	mkBody := func() []Inst {
		body := []Inst{{Spec: 1, Reads: []int{1}, Writes: []int{1}}}
		for i := 0; i < 40; i++ {
			body = append(body, Inst{Spec: 0, Writes: []int{20 + i}})
		}
		return body
	}
	specs := []InstSpec{
		simpleSpec(1, 0, 1, 2),
		{Uops: []UopSpec{{Ports: portmap.MakePortSet(0), Block: 1}}, Latency: 12},
	}

	big := testConfig()
	big.WindowSize = 64
	mBig := mustMachine(t, big, specs)
	tpBig, err := mBig.SteadyStateCycles(mkBody(), 20, 100)
	if err != nil {
		t.Fatalf("big: %v", err)
	}

	small := testConfig()
	small.WindowSize = 2
	mSmall := mustMachine(t, small, specs)
	tpSmall, err := mSmall.SteadyStateCycles(mkBody(), 20, 100)
	if err != nil {
		t.Fatalf("small: %v", err)
	}
	// Big window: bound by port pressure, ~41 µops / 3 ports ≈ 14 c/iter.
	// Small window: the stalled chain µop occupies one of two slots for
	// 12 cycles each iteration, serializing the independent work.
	if tpSmall <= tpBig+4 {
		t.Errorf("small window %g should be clearly slower than big window %g", tpSmall, tpBig)
	}
}

func TestGreedyMatchesLPForSimpleMixes(t *testing.T) {
	// For a dependency-free mix the greedy scheduler should track the
	// optimal throughput closely (within ~10%): this is the premise of
	// using the LP model for measured data (Figure 6, short experiments).
	specs := []InstSpec{
		simpleSpec(1, 0),    // only P0
		simpleSpec(1, 0, 1), // P0 or P1
		simpleSpec(1, 2),    // only P2
	}
	m := mustMachine(t, testConfig(), specs)
	body := []Inst{
		{Spec: 0, Writes: []int{1}},
		{Spec: 1, Writes: []int{2}},
		{Spec: 1, Writes: []int{3}},
		{Spec: 2, Writes: []int{4}},
	}
	tp, err := m.SteadyStateCycles(body, 20, 200)
	if err != nil {
		t.Fatalf("SteadyStateCycles: %v", err)
	}
	// Optimal (LP): masses p0:1, p01:2, p2:1 → Q={P0,P1}: 3/2 = 1.5.
	if tp < 1.5-1e-9 {
		t.Errorf("greedy throughput %g beats LP optimum 1.5: impossible", tp)
	}
	if tp > 1.5*1.10 {
		t.Errorf("greedy throughput %g more than 10%% above optimum 1.5", tp)
	}
}

func TestSteadyStateRequiresPositiveMeasure(t *testing.T) {
	m := mustMachine(t, testConfig(), []InstSpec{simpleSpec(1, 0)})
	if _, err := m.SteadyStateCycles([]Inst{{Spec: 0}}, 1, 0); err == nil {
		t.Error("measure=0 accepted")
	}
}

func TestLoopCarriedDependency(t *testing.T) {
	// Writes in iteration i are read in iteration i+1: the chain spans
	// iterations, so throughput equals the latency even though each
	// iteration's instructions are "independent" within the body.
	m := mustMachine(t, testConfig(), []InstSpec{simpleSpec(5, 0, 1, 2)})
	body := []Inst{{Spec: 0, Reads: []int{7}, Writes: []int{7}}}
	tp, err := m.SteadyStateCycles(body, 10, 50)
	if err != nil {
		t.Fatalf("SteadyStateCycles: %v", err)
	}
	if math.Abs(tp-5) > 0.1 {
		t.Errorf("steady state = %g, want 5 (loop-carried chain)", tp)
	}
}

func TestWindowStatistics(t *testing.T) {
	// A latency-12 loop-carried chain plus plenty of independent work:
	// the 2-entry window stalls dispatch most cycles, the 64-entry
	// window rarely.
	specs := []InstSpec{
		simpleSpec(1, 0, 1, 2),
		{Uops: []UopSpec{{Ports: portmap.MakePortSet(0), Block: 1}}, Latency: 12},
	}
	body := []Inst{{Spec: 1, Reads: []int{1}, Writes: []int{1}}}
	for i := 0; i < 20; i++ {
		body = append(body, Inst{Spec: 0, Writes: []int{20 + i}})
	}

	small := testConfig()
	small.WindowSize = 2
	mSmall := mustMachine(t, small, specs)
	rSmall, err := mSmall.Run(body, 50)
	if err != nil {
		t.Fatal(err)
	}
	big := testConfig()
	big.WindowSize = 64
	mBig := mustMachine(t, big, specs)
	rBig, err := mBig.Run(body, 50)
	if err != nil {
		t.Fatal(err)
	}
	if rSmall.WindowFullFraction() <= rBig.WindowFullFraction() {
		t.Errorf("small window stall fraction %.2f should exceed big window %.2f",
			rSmall.WindowFullFraction(), rBig.WindowFullFraction())
	}
	if rSmall.MeanOccupancy() > 2 {
		t.Errorf("mean occupancy %.2f exceeds window size 2", rSmall.MeanOccupancy())
	}
	if rBig.MeanOccupancy() <= 0 {
		t.Error("big window occupancy should be positive")
	}
	// Empty result accessors.
	var zero Result
	if zero.MeanOccupancy() != 0 || zero.WindowFullFraction() != 0 {
		t.Error("zero-value result accessors should return 0")
	}
}

func TestMachineAccessors(t *testing.T) {
	specs := []InstSpec{simpleSpec(1, 0), simpleSpec(2, 1)}
	m := mustMachine(t, testConfig(), specs)
	if m.NumSpecs() != 2 {
		t.Errorf("NumSpecs = %d, want 2", m.NumSpecs())
	}
	if m.Config().NumPorts != 3 {
		t.Errorf("Config().NumPorts = %d, want 3", m.Config().NumPorts)
	}
}
