package machine_test

// Property tests for the event-driven fast-forward: Run with dead-cycle
// skipping enabled must be bit-identical to brute-force cycle-by-cycle
// simulation in every combination with period detection, on dead-cycle-
// heavy workloads (latency far above the window drain rate, blocking
// dividers, tiny windows) under both scheduling policies — the regimes
// where the fast-forward does the most work and where an off-by-one in
// the span accounting would surface immediately.

import (
	"math/rand"
	"testing"

	"pmevo/internal/machine"
	"pmevo/internal/measure"
	"pmevo/internal/portmap"
	"pmevo/internal/uarch"
)

// quadVariant names one point of the {detection} × {event skip} square.
type quadVariant struct {
	name      string
	detectOff bool
	eventOff  bool
}

var quadVariants = []quadVariant{
	{"detect+skip", false, false},
	{"detect-only", false, true},
	{"skip-only", true, false},
	{"brute", true, true},
}

// quad builds the four machines of the {detection} × {event skip}
// square from one configuration; index 3 is the brute-force oracle.
func quad(t *testing.T, cfg machine.Config, specs []machine.InstSpec) [4]*machine.Machine {
	t.Helper()
	var out [4]*machine.Machine
	for i, v := range quadVariants {
		c := cfg
		if v.detectOff {
			c.PeriodDetectBudget = machine.PeriodDetectDisabled
		} else {
			c.PeriodDetectBudget = 0
		}
		c.EventDrivenDisabled = v.eventOff
		m, err := machine.New(c, specs)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = m
	}
	return out
}

// deadCycleBody generates a loop body dominated by dead cycles: long
// single-register RAW chains (latency far above the drain rate of the
// tiny windows used below) interleaved with occasional independent or
// divider instructions, so readiness bounds, busy-release bounds, and
// the window-full stall accounting are all exercised across a jump.
func deadCycleBody(rng *rand.Rand, nspecs int) []machine.Inst {
	bodyLen := 1 + rng.Intn(8)
	body := make([]machine.Inst, bodyLen)
	chainReg := rng.Intn(3)
	for i := range body {
		in := machine.Inst{Spec: rng.Intn(nspecs)}
		switch rng.Intn(4) {
		case 0: // independent
			in.Writes = append(in.Writes, 4+rng.Intn(4))
		default: // extend the loop-carried chain
			in.Reads = append(in.Reads, chainReg)
			in.Writes = append(in.Writes, chainReg)
		}
		body[i] = in
	}
	return body
}

// TestEventSkipMatchesBruteForceStress runs the dead-cycle stress
// generator through all four {detection} × {event skip} combinations:
// latencies 8..64 against windows of 1..8 µops and dispatch widths of
// 1..3, blocking dividers up to 16 cycles, both scheduling policies.
// Every variant must be bit-identical to brute force, and the skipping
// variants must actually skip (the workload is built so stepping would
// spend most cycles doing nothing).
func TestEventSkipMatchesBruteForceStress(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var totalSkipped [4]int64
	for trial := 0; trial < 250; trial++ {
		ports := 1 + rng.Intn(3)
		cfg := machine.Config{
			NumPorts:      ports,
			DispatchWidth: 1 + rng.Intn(3),
			WindowSize:    1 + rng.Intn(8),
			Policy:        machine.SchedPolicy(rng.Intn(2)),
			FrequencyGHz:  1,
		}
		nspecs := 1 + rng.Intn(3)
		specs := make([]machine.InstSpec, nspecs)
		for i := range specs {
			nuops := 1 + rng.Intn(2)
			uops := make([]machine.UopSpec, nuops)
			for j := range uops {
				ps := portmap.PortSet(rng.Intn(1<<ports-1) + 1)
				block := 1
				if rng.Intn(3) == 0 {
					block = 2 + rng.Intn(15) // divider: busy-release bounds
				}
				uops[j] = machine.UopSpec{Ports: ps, Block: block}
			}
			// Latency ≫ window drain rate: the chain parks the window for
			// many cycles per issue.
			specs[i] = machine.InstSpec{Uops: uops, Latency: 8 + rng.Intn(57)}
		}
		body := deadCycleBody(rng, nspecs)
		iters := 1 + rng.Intn(60)

		var results [4]machine.Result
		for i, m := range quad(t, cfg, specs) {
			res, err := m.Run(body, iters)
			if err != nil {
				t.Fatal(err)
			}
			results[i] = res
			totalSkipped[i] += res.SkippedCycles
		}
		for i := 0; i < 3; i++ {
			sameResult(t, quadVariants[i].name+" stress trial", results[i], results[3])
		}
		if results[3].SkippedCycles != 0 {
			t.Fatalf("brute run skipped %d cycles", results[3].SkippedCycles)
		}
		if results[1].SkippedCycles != 0 {
			t.Fatalf("detect-only run skipped %d cycles", results[1].SkippedCycles)
		}
	}
	// The premise of the PR: on this workload the fast-forward engages
	// massively (typically >90% of simulated cycles are jumped).
	if totalSkipped[0] == 0 || totalSkipped[2] == 0 {
		t.Errorf("event skip never engaged on the stress set: skipped %v", totalSkipped)
	}
}

// TestEventSkipWorstCases pins hand-picked adversarial shapes per
// scheduling policy: LowestIndex's systematic imbalance (everything
// funnels to port 0 while others idle), a window of one µop (every
// dispatch stalls), and a divider-only body (busy-release is the only
// event source). Each must match brute force bit-for-bit and with equal
// SteadyStateCycles.
func TestEventSkipWorstCases(t *testing.T) {
	cases := []struct {
		name  string
		cfg   machine.Config
		specs []machine.InstSpec
		body  []machine.Inst
	}{
		{
			// All µops may issue anywhere but LowestIndex sends every one
			// to port 0; ports 1-2 stay idle forever and their busy[k]=0
			// must not pull the event bound into the past.
			name: "lowest-index-imbalance",
			cfg: machine.Config{
				NumPorts: 3, DispatchWidth: 2, WindowSize: 4,
				Policy: machine.LowestIndex, FrequencyGHz: 1,
			},
			specs: []machine.InstSpec{
				{Uops: []machine.UopSpec{{Ports: portmap.MakePortSet(0, 1, 2), Block: 5}}, Latency: 20},
			},
			body: []machine.Inst{
				{Spec: 0, Reads: []int{0}, Writes: []int{0}},
				{Spec: 0, Reads: []int{0}, Writes: []int{0}},
			},
		},
		{
			// Window of one: dispatch is blocked almost always, so nearly
			// every cycle is a windowFull cycle — the span accounting term
			// most sensitive to an off-by-one.
			name: "window-of-one",
			cfg: machine.Config{
				NumPorts: 2, DispatchWidth: 3, WindowSize: 1,
				Policy: machine.LeastLoaded, FrequencyGHz: 1,
			},
			specs: []machine.InstSpec{
				{Uops: []machine.UopSpec{{Ports: portmap.MakePortSet(0, 1), Block: 1}}, Latency: 13},
			},
			body: []machine.Inst{
				{Spec: 0, Reads: []int{1}, Writes: []int{1}},
			},
		},
		{
			// Divider-heavy: independent µops with long blocking on one
			// port — wakeAt is always ready, the busy-release bound alone
			// drives every jump.
			name: "divider-only",
			cfg: machine.Config{
				NumPorts: 2, DispatchWidth: 2, WindowSize: 6,
				Policy: machine.LowestIndex, FrequencyGHz: 1,
			},
			specs: []machine.InstSpec{
				{Uops: []machine.UopSpec{{Ports: portmap.MakePortSet(0), Block: 16}}, Latency: 1},
				{Uops: []machine.UopSpec{{Ports: portmap.MakePortSet(1), Block: 11}}, Latency: 1},
			},
			body: []machine.Inst{
				{Spec: 0, Writes: []int{2}},
				{Spec: 1, Writes: []int{3}},
				{Spec: 0, Writes: []int{4}},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ms := quad(t, tc.cfg, tc.specs)
			for _, iters := range []int{1, 7, 40, 200} {
				var results [4]machine.Result
				for i, m := range ms {
					res, err := m.Run(tc.body, iters)
					if err != nil {
						t.Fatal(err)
					}
					results[i] = res
				}
				for i := 0; i < 3; i++ {
					sameResult(t, quadVariants[i].name, results[i], results[3])
				}
			}
			skipOnly := ms[2]
			brute := ms[3]
			res, err := skipOnly.Run(tc.body, 200)
			if err != nil {
				t.Fatal(err)
			}
			if res.SkippedCycles == 0 {
				t.Errorf("event skip never engaged on %s", tc.name)
			}
			g, err := ms[0].SteadyStateCycles(tc.body, 30, 120)
			if err != nil {
				t.Fatal(err)
			}
			w, err := brute.SteadyStateCycles(tc.body, 30, 120)
			if err != nil {
				t.Fatal(err)
			}
			if g != w {
				t.Errorf("%s: SteadyStateCycles %v != brute %v", tc.name, g, w)
			}
		})
	}
}

// TestEventSkipMatchesBruteForceUarch runs harness-built loop bodies on
// all three Table 1 configurations under both scheduling policies with
// the full quad, mirroring the period-detection uarch test but asserting
// the skip engages at measurement scale on at least one body per
// processor (the real configs have latency-bound instructions).
func TestEventSkipMatchesBruteForceUarch(t *testing.T) {
	mopts := measure.DefaultOptions()
	for _, proc := range uarch.All() {
		h, err := measure.NewHarness(proc, mopts)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		var exps []portmap.Experiment
		n := proc.ISA.NumForms()
		for i := 0; i < 5; i++ {
			e := portmap.Experiment{{Inst: rng.Intn(n), Count: 1 + rng.Intn(2)}}
			exps = append(exps, e.Normalize())
		}
		for _, policy := range []machine.SchedPolicy{machine.LeastLoaded, machine.LowestIndex} {
			cfg := proc.Config
			cfg.Policy = policy
			ms := quad(t, cfg, proc.Specs)
			for _, e := range exps {
				body, _, err := h.BuildLoop(e)
				if err != nil {
					t.Fatal(err)
				}
				var results [4]machine.Result
				for i, m := range ms {
					results[i], err = m.Run(body, mopts.WarmupIters+mopts.MeasureIters)
					if err != nil {
						t.Fatal(err)
					}
				}
				for i := 0; i < 3; i++ {
					sameResult(t, proc.Name+"/"+quadVariants[i].name, results[i], results[3])
				}
			}
		}
	}
}

// TestPeriodHintMatchesBruteForce pins the hint contract of
// SteadyStateCyclesHinted: correct, wrong, and absurd hints are all
// bit-identical to the unhinted and brute-force results — hints gate
// which iterations detection hashes, never what the simulation computes
// — and a correct hint still detects a period.
func TestPeriodHintMatchesBruteForce(t *testing.T) {
	proc := uarch.SKL()
	h, err := measure.NewHarness(proc, measure.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	det, brute := twin(t, proc.Config, proc.Specs)
	rng := rand.New(rand.NewSource(5))
	n := proc.ISA.NumForms()
	for i := 0; i < 8; i++ {
		e := portmap.Experiment{{Inst: rng.Intn(n), Count: 1 + rng.Intn(2)}}
		body, _, err := h.BuildLoop(e.Normalize())
		if err != nil {
			t.Fatal(err)
		}
		warmup, iters := 30, 120
		want, err := brute.SteadyStateCycles(body, warmup, iters)
		if err != nil {
			t.Fatal(err)
		}
		// Discover the true period (in iterations) with an unhinted run.
		unhinted, res0, err := det.SteadyStateCyclesHinted(body, warmup, iters, 0)
		if err != nil {
			t.Fatal(err)
		}
		if unhinted != want {
			t.Fatalf("unhinted %v != brute %v", unhinted, want)
		}
		truePeriod := res0.DetectedPeriodIters
		hints := []int{truePeriod, truePeriod + 1, 3, 1 << 19}
		for _, hint := range hints {
			if hint <= 1 {
				continue
			}
			got, res, err := det.SteadyStateCyclesHinted(body, warmup, iters, hint)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("hint %d: SteadyStateCycles %v != brute %v", hint, got, want)
			}
			if hint == truePeriod && truePeriod > 1 && res.DetectedPeriodIters == 0 {
				t.Errorf("correct hint %d suppressed detection entirely", hint)
			}
		}
	}
}
