package machine

import (
	"errors"
	"fmt"
	"math/bits"

	"pmevo/internal/portmap"
)

// Simulation storage. All simulator state is index-based — completion
// cells, µop counters, and source lists are indices into growable arenas
// rather than heap pointers — for three reasons: arenas are reusable
// across runs (a steady-state Run allocates nothing beyond its Result),
// stable indices give period detection a canonical way to name in-flight
// state (see period.go), and the whole state forks with a handful of
// memcpys (runPair's warmup fork).

// flight is a µop waiting in the scheduler window.
type flight struct {
	ports   portmap.PortSet
	block   int32
	latency int32
	srcOff  int32 // first source cell index in runScratch.srcIdx
	srcLen  int32
	cell    int32 // completion cell of this µop's instruction
	left    int32 // remaining-µop counter of this µop's instruction

	// wakeAt caches the µop's earliest possible issue cycle: the maximum
	// of its source completion cells as of the last inspection. While
	// any source is unresolved (producer not yet issued) the maximum is
	// notReady and the sources are rescanned when the flight is next
	// considered; once all sources carry final values the bound is exact
	// and the issue scan skips the flight with one comparison. Purely
	// derived state: it never changes an issue decision, so it is
	// excluded from period-detection snapshots.
	wakeAt int64
}

// runScratch is one goroutine's reusable simulation state.
type runScratch struct {
	// cells[i] is an instruction completion cycle: notReady until the
	// instruction's last µop issues, then issue cycle + latency.
	// cells[0] is the shared always-ready cell for never-written
	// registers.
	cells    []int64
	lefts    []int32
	srcIdx   []int32
	window   []flight
	busy     []int64 // per-port busy-until cycle (exclusive)
	load     []int64 // per-port µops issued so far
	portUops []int64
	reg      map[int]int32
	det      detector
}

func (m *Machine) getScratch() *runScratch {
	sc, _ := m.pool.Get().(*runScratch)
	if sc == nil {
		sc = &runScratch{reg: make(map[int]int32)}
	}
	return sc
}

// sim is one simulation in progress.
type sim struct {
	m     *Machine
	body  []Inst
	iters int
	sc    *runScratch

	cycle   int64
	iter    int
	bodyIdx int
	uopIdx  int

	// Stream state of the instruction currently being dispatched.
	curSpec   *InstSpec
	curSrcOff int32
	curSrcLen int32
	curCell   int32
	curLeft   int32
	curWake   int64 // wakeAt seed for the instruction's flights

	lastIssue int64

	// lastSnapIter is the body iteration of the most recent period
	// snapshot: detection samples the first top-of-cycle state of each
	// iteration, not every cycle, keeping the hashing overhead at
	// O(window) per *iteration*. The sample set is a deterministic
	// function of the execution, so recurrence detection stays sound.
	lastSnapIter int
	detecting    bool
	budget       int64

	// hintIters, when > 1, restricts detection snapshots to iterations
	// congruent to 0 modulo the hint: a caller that already knows the
	// body's steady-state period (in iterations) from an earlier run
	// pays ~1/hint of the hashing cost. States at iterations i and i+kP
	// are equal once steady, so sampling any congruence class still
	// finds a recurrence (possibly a multiple of the true period, which
	// extrapolates just as exactly); a wrong hint at worst delays
	// detection and never changes results.
	hintIters int

	// eventSkip enables the event-driven fast-forward; skipped counts
	// the dead cycles jumped over (Result.SkippedCycles).
	eventSkip bool
	skipped   int64

	// Period extrapolation state, filled in when a recurrence is found:
	// the final result gains extraPeriods copies of the per-period stat
	// deltas.
	extraPeriods, periodCycles int64
	dInstructions, dUops       int64
	dWindowFull, dOccupancy    int64
	dPortUops                  []int64
	recIter                    int // first occurrence of the period
	periodIters                int // P

	// Warmup fork (runPair): when the dispatch stream crosses iteration
	// forkAt, or the period extrapolates past it, the complete state is
	// captured into fork so the shorter run's cycle count can be
	// finished independently.
	forkAt      int // -1: no fork requested
	fork        *sim
	forkMid     bool  // fork captured mid-cycle (dispatch already ran)
	forkExtraCy int64 // (k-1)·C for a fork created at the recurrence

	// Result accumulators; the per-port counts live in scratch.
	instructions int64
	uops         int64
	windowFull   int64
	occupancy    int64
}

// Run executes the loop body `iters` times and returns the result.
// The body's register reads and writes establish dependencies across
// iterations exactly as in real hardware (loop-carried dependencies are
// respected; the measurement harness unrolls to avoid them).
//
// Run detects the steady-state period of the (deterministic) execution
// and extrapolates the remaining iterations exactly, unless disabled via
// Config.PeriodDetectBudget, and fast-forwards dead cycles inside every
// simulated span unless disabled via Config.EventDrivenDisabled; results
// are bit-identical whichever combination is enabled.
func (m *Machine) Run(body []Inst, iters int) (Result, error) {
	for idx, in := range body {
		if in.Spec < 0 || in.Spec >= len(m.specs) {
			return Result{}, fmt.Errorf("machine: instruction %d references unknown spec %d", idx, in.Spec)
		}
	}
	if len(body) == 0 || iters <= 0 {
		return Result{PortUops: make([]int64, m.cfg.NumPorts)}, nil
	}
	sc := m.getScratch()
	s := sim{m: m, body: body, iters: iters, sc: sc, forkAt: -1}
	res, err := s.run()
	m.pool.Put(sc)
	return res, err
}

// reset prepares the scratch for a fresh run.
func (s *sim) reset() {
	sc := s.sc
	sc.cells = append(sc.cells[:0], 0) // cells[0]: the always-ready cell
	sc.lefts = sc.lefts[:0]
	sc.srcIdx = sc.srcIdx[:0]
	sc.window = sc.window[:0]
	n := s.m.cfg.NumPorts
	if cap(sc.busy) < n {
		sc.busy = make([]int64, n)
		sc.load = make([]int64, n)
		sc.portUops = make([]int64, n)
	}
	sc.busy = sc.busy[:n]
	sc.load = sc.load[:n]
	sc.portUops = sc.portUops[:n]
	for k := 0; k < n; k++ {
		sc.busy[k] = 0
		sc.load[k] = 0
		sc.portUops[k] = 0
	}
	clear(sc.reg)
	s.lastIssue = -1
	s.lastSnapIter = -1

	budget := int64(s.m.cfg.PeriodDetectBudget)
	s.detecting = budget >= 0
	if budget == 0 {
		budget = defaultPeriodDetectBudget
	}
	s.budget = budget
	if s.detecting {
		s.sc.det.start(s)
	}
	s.eventSkip = !s.m.cfg.EventDrivenDisabled
}

// cellFor returns the completion cell index of a register's most recent
// writer (cells[0] if it was never written).
func (s *sim) cellFor(reg int) int32 {
	if ci, ok := s.sc.reg[reg]; ok {
		return ci
	}
	return 0
}

// startInst begins dispatching the instruction at the current stream
// position: it resolves source cells against the register file, installs
// a fresh completion cell for the destinations (register renaming), and
// arms the remaining-µop counter.
func (s *sim) startInst() {
	in := &s.body[s.bodyIdx]
	spec := &s.m.specs[in.Spec]
	s.curSpec = spec
	s.curSrcOff = int32(len(s.sc.srcIdx))
	for _, r := range in.Reads {
		s.sc.srcIdx = append(s.sc.srcIdx, s.cellFor(r))
	}
	s.curSrcLen = int32(len(s.sc.srcIdx)) - s.curSrcOff
	s.curWake = 0
	for _, ci := range s.sc.srcIdx[s.curSrcOff:] {
		if v := s.sc.cells[ci]; v > s.curWake {
			s.curWake = v
		}
	}
	s.curCell = int32(len(s.sc.cells))
	s.sc.cells = append(s.sc.cells, notReady)
	s.curLeft = int32(len(s.sc.lefts))
	s.sc.lefts = append(s.sc.lefts, int32(len(spec.Uops)))
	for _, w := range in.Writes {
		s.sc.reg[w] = s.curCell
	}
	s.instructions++
}

func (s *sim) done() bool { return s.iter >= s.iters }

// capture copies the complete simulation state into dst, which receives
// its own scratch (capacity reused across runs via the machine pool).
func (s *sim) capture(dst *sim, dstSc *runScratch) {
	reg := dstSc.reg
	det := dstSc.det
	*dst = *s
	dst.sc = dstSc
	dstSc.cells = append(dstSc.cells[:0], s.sc.cells...)
	dstSc.lefts = append(dstSc.lefts[:0], s.sc.lefts...)
	dstSc.srcIdx = append(dstSc.srcIdx[:0], s.sc.srcIdx...)
	dstSc.window = append(dstSc.window[:0], s.sc.window...)
	dstSc.busy = append(dstSc.busy[:0], s.sc.busy...)
	dstSc.load = append(dstSc.load[:0], s.sc.load...)
	dstSc.portUops = append(dstSc.portUops[:0], s.sc.portUops...)
	if reg == nil {
		reg = make(map[int]int32, len(s.sc.reg))
	} else {
		clear(reg)
	}
	for k, v := range s.sc.reg {
		reg[k] = v
	}
	dstSc.reg = reg
	dstSc.det = det // forks never detect; keep dst's own arenas
	dst.detecting = false
	dst.fork = nil
	dst.forkAt = -1
}

// onPeriodFound applies the extrapolation bookkeeping at a recurrence:
// truncate the main target to the tail remainder and, if a warmup fork
// is still pending (runPair with the warmup target beyond the current
// iteration), capture it here with its own tail remainder.
func (s *sim) onPeriodFound(rec periodRec) {
	P := s.iter - rec.iter
	C := s.cycle - rec.cycle
	if P <= 0 {
		return
	}
	// tailFor splits `target - rec.iter` into whole periods and a
	// remainder in [1, P]: the simulated tail must keep at least one
	// iteration, because a remainder of zero would stop the dispatch
	// stream exactly at the recurrence point, whose state includes an
	// instruction start (and !done-guarded stall accounting) that a run
	// ending there never performs. k ≥ 1 holds after the fold because
	// detection only fires while iterations remain (target > rec.iter+P
	// for the main run; the fork case checks forkAt > s.iter).
	tailFor := func(target int) (extra int64, r int) {
		k := int64(target-rec.iter) / int64(P)
		r = (target - rec.iter) % P
		if r == 0 {
			r = P
			k--
		}
		return k - 1, r
	}

	extra, r := tailFor(s.iters)
	s.extraPeriods = extra
	s.periodCycles = C
	s.recIter = rec.iter
	s.periodIters = P
	s.dInstructions = s.instructions - rec.instructions
	s.dUops = s.uops - rec.uops
	s.dWindowFull = s.windowFull - rec.windowFull
	s.dOccupancy = s.occupancy - rec.occupancy
	s.dPortUops = make([]int64, s.m.cfg.NumPorts)
	for p := range s.dPortUops {
		s.dPortUops[p] = s.sc.portUops[p] - s.sc.det.arena[rec.portOff+p]
	}

	if s.forkAt > s.iter && s.fork == nil {
		// The warmup target lies beyond the truncated tail: extrapolate
		// it from the same period, with its own independently simulated
		// tail from the recurrence state.
		fExtra, fr := tailFor(s.forkAt)
		//pmevo:allow scratchescape -- ownership transfers to s.fork via capture; runPair's epilogue releases both scratches
		fsc := s.m.getScratch()
		f := &sim{}
		s.capture(f, fsc)
		f.iters = s.iter + fr
		f.forkMid = false
		f.forkExtraCy = fExtra * C
		s.fork = f
	}
	s.iters = s.iter + r
}

// dispatchStage moves up to DispatchWidth µops into the window, forking
// the state at the instant the stream crosses the warmup target (that is
// exactly where a run with that target stops dispatching).
func (s *sim) dispatchStage() int {
	cfg := &s.m.cfg
	dispatched := 0
	for !s.done() && dispatched < cfg.DispatchWidth && len(s.sc.window) < cfg.WindowSize {
		u := &s.curSpec.Uops[s.uopIdx]
		s.sc.window = append(s.sc.window, flight{
			ports:   u.Ports,
			block:   int32(u.Block),
			latency: int32(s.curSpec.Latency),
			srcOff:  s.curSrcOff,
			srcLen:  s.curSrcLen,
			cell:    s.curCell,
			left:    s.curLeft,
			wakeAt:  s.curWake,
		})
		dispatched++
		s.uopIdx++
		if s.uopIdx == len(s.curSpec.Uops) {
			s.uopIdx = 0
			s.bodyIdx++
			if s.bodyIdx == len(s.body) {
				s.bodyIdx = 0
				s.iter++
				if s.iter == s.forkAt && s.fork == nil {
					//pmevo:allow scratchescape -- ownership transfers to s.fork via capture; runPair's epilogue releases both scratches
					fsc := s.m.getScratch()
					f := &sim{}
					s.capture(f, fsc)
					f.iters = s.forkAt
					f.forkMid = true
					f.forkExtraCy = 0
					s.fork = f
				}
			}
			if !s.done() {
				s.startInst()
			}
		}
	}
	return dispatched
}

// finishCycle runs the post-dispatch half of a cycle — window
// statistics and the oldest-first greedy issue stage — and reports
// whether the run is complete.
func (s *sim) finishCycle(dispatched int) bool {
	cfg := &s.m.cfg
	if !s.done() && dispatched < cfg.DispatchWidth && len(s.sc.window) >= cfg.WindowSize {
		s.windowFull++
	}
	s.occupancy += int64(len(s.sc.window))

	var issuedPorts portmap.PortSet
	w := 0
	cells := s.sc.cells
	for fi := range s.sc.window {
		f := &s.sc.window[fi]
		if f.wakeAt > s.cycle {
			if f.wakeAt != notReady {
				// All sources resolved to a future completion: the bound
				// is exact, skip without rescanning.
				s.sc.window[w] = *f
				w++
				continue
			}
			// An unresolved source at the last look; rescan. The maximum
			// lands back on notReady while any producer is un-issued
			// (resolved completions are always far below it).
			wake := int64(0)
			for _, ci := range s.sc.srcIdx[f.srcOff : f.srcOff+f.srcLen] {
				if v := cells[ci]; v > wake {
					wake = v
				}
			}
			f.wakeAt = wake
			if wake > s.cycle {
				s.sc.window[w] = *f
				w++
				continue
			}
		}
		port := s.m.pickPort(f.ports, issuedPorts, s.sc.busy, s.sc.load, s.cycle)
		if port >= 0 {
			issuedPorts = issuedPorts.With(port)
			s.sc.busy[port] = s.cycle + int64(f.block)
			s.sc.load[port]++
			s.sc.portUops[port]++
			s.uops++
			s.lastIssue = s.cycle
			s.sc.lefts[f.left]--
			if s.sc.lefts[f.left] == 0 {
				cells[f.cell] = s.cycle + int64(f.latency)
			}
			continue
		}
		s.sc.window[w] = *f
		w++
	}
	s.sc.window = s.sc.window[:w]

	return s.done() && len(s.sc.window) == 0
}

// watchdog bounds the simulated cycle count. The top-of-loop check is
// the only exit for runaway simulations, so the event-driven jump must
// never leap a run from below the limit to "past it unnoticed":
// nextEventCycle clamps its target to watchdog+1, the first cycle the
// check rejects, so a jump over the limit is reported exactly like a
// stepped run reaching it.
const watchdog = int64(1) << 40

// loop is the simulation main loop, entered at the top of a cycle.
func (s *sim) loop() error {
	for {
		if s.cycle > watchdog {
			return errors.New("machine: simulation exceeded watchdog limit")
		}
		if s.detecting && !s.done() && s.iter > s.lastSnapIter {
			s.lastSnapIter = s.iter
			if s.hintIters > 1 && s.iter%s.hintIters != 0 {
				// Period-hinted run: only hint-aligned iterations are
				// hashed (see the hintIters field comment). Skipping
				// the budget check with the snapshot is deliberate —
				// detection cost, which the budget bounds, is only
				// paid on hashed iterations.
			} else if s.cycle >= s.budget {
				s.detecting = false
			} else if rec, ok := s.sc.det.check(s); ok {
				// The state at this top-of-cycle recurred: execution
				// from here replicates execution from the first
				// occurrence, shifted by C cycles per P iterations.
				// Simulate the remainder once and account for the
				// skipped periods arithmetically. This is exact: the
				// simulator's evolution depends only on cycle-relative
				// state, which is identical at both occurrences.
				s.onPeriodFound(rec)
				s.detecting = false
			}
		}
		dispatched := s.dispatchStage()
		if s.finishCycle(dispatched) {
			return nil
		}
		// Event-driven fast-forward: a cycle that dispatched nothing and
		// issued nothing changed no semantic state — dispatch stays
		// blocked (the window is still full, or the stream is done) and
		// every waiting µop stays blocked until its readiness event. The
		// cycles from here to the next event are therefore dead, and all
		// their per-cycle accounting is linear in the span length:
		//
		//   - windowFull: the stepped loop would add 1 per cycle exactly
		//     when !done (dispatched==0 with instructions remaining
		//     implies the window is full, and no issues means it stays
		//     full), so the span adds span·[!done];
		//   - occupancy: no µop enters or leaves the window, so the span
		//     adds span·len(window);
		//   - every other counter (uops, instructions, port µops,
		//     lastIssue) only changes on dispatch or issue — none occur.
		//
		// Jumping cycle straight to the event is thus exact, not
		// approximate. Detection snapshots are unaffected: snapshots
		// fire at the first top-of-cycle of a new iteration, iterations
		// only advance on dispatch, and the span dispatches nothing —
		// the stepped loop would not have hashed any of the skipped
		// cycles either. The gate below (nothing happened this cycle) is
		// also what keeps dense kernels regression-free: a cycle that
		// issues never pays for the event scan.
		if s.eventSkip && dispatched == 0 && s.lastIssue != s.cycle {
			if next := s.nextEventCycle(); next > s.cycle+1 {
				span := next - s.cycle - 1
				if !s.done() {
					s.windowFull += span
				}
				s.occupancy += span * int64(len(s.sc.window))
				s.skipped += span
				s.cycle = next
				continue
			}
		}
		s.cycle++
	}
}

// nextEventCycle returns the earliest cycle at which any state
// transition is possible, given that nothing happened in the current
// cycle: the minimum over in-window flights of
// max(wakeAt, earliest allowed-port release). Flights whose sources are
// still unresolved (a producer µop has not issued) contribute nothing —
// the producer itself is an older in-window flight whose own bound
// covers them, and the oldest flight in the window always has resolved
// sources (every older µop has left the window, i.e. issued), so the
// minimum is always finite while the window is non-empty. At the
// returned cycle at least one µop issues: the bound-achieving flight is
// awake and one of its ports is free, and the oldest-first scan issues
// it or something older. Only called after a dead cycle, so no port was
// newly taken and no cell newly written this cycle.
func (s *sim) nextEventCycle() int64 {
	sc := s.sc
	cells := sc.cells
	next := int64(notReady)
	for fi := range sc.window {
		f := &sc.window[fi]
		wake := f.wakeAt
		if wake == notReady {
			// Same rescan finishCycle performs; caching the result is
			// safe because wakeAt is derived state and cells cannot
			// change before the next issue.
			wake = 0
			for _, ci := range sc.srcIdx[f.srcOff : f.srcOff+f.srcLen] {
				if v := cells[ci]; v > wake {
					wake = v
				}
			}
			f.wakeAt = wake
			if wake == notReady {
				continue
			}
		}
		minBusy := int64(notReady)
		for v := uint64(f.ports); v != 0; v &= v - 1 {
			k := bits.TrailingZeros64(v)
			if b := sc.busy[k]; b < minBusy {
				minBusy = b
				if b <= s.cycle {
					break
				}
			}
		}
		t := wake
		if minBusy > t {
			t = minBusy
		}
		if t < next {
			next = t
		}
	}
	if next > watchdog {
		// Never leap past the watchdog unreported (see its comment); the
		// clamp also catches the impossible all-unresolved window.
		next = watchdog + 1
	}
	return next
}

// run simulates from scratch and assembles the Result.
func (s *sim) run() (Result, error) {
	s.reset()
	s.startInst()
	if err := s.loop(); err != nil {
		return Result{}, err
	}
	cfg := &s.m.cfg
	res := Result{
		Cycles:              s.lastIssue + 1 + s.extraPeriods*s.periodCycles,
		Instructions:        s.instructions + s.extraPeriods*s.dInstructions,
		Uops:                s.uops + s.extraPeriods*s.dUops,
		WindowFullCycles:    s.windowFull + s.extraPeriods*s.dWindowFull,
		OccupancySum:        s.occupancy + s.extraPeriods*s.dOccupancy,
		PortUops:            make([]int64, cfg.NumPorts),
		DetectedPeriod:      s.periodCycles,
		DetectedPeriodIters: s.periodIters,
		SkippedCycles:       s.skipped,
	}
	copy(res.PortUops, s.sc.portUops)
	for p := range s.dPortUops {
		res.PortUops[p] += s.extraPeriods * s.dPortUops[p]
	}
	return res, nil
}

// finish completes a forked simulation and returns its cycle count. A
// mid-cycle fork (stream crossed the warmup target during dispatch)
// first finishes the interrupted cycle — its dispatch already ran, and
// with the target reached no further µops enter; a recurrence fork
// replays its tail from the top of the capture cycle.
func (s *sim) finish() (int64, error) {
	if s.forkMid {
		if !s.finishCycle(0) {
			s.cycle++
			if err := s.loop(); err != nil {
				return 0, err
			}
		}
	} else {
		if err := s.loop(); err != nil {
			return 0, err
		}
	}
	return s.lastIssue + 1 + s.forkExtraCy, nil
}

// runPair simulates the body for two iteration targets n1 < n2 in one
// pass, returning the n1 run's cycle count and the n2 run's full Result,
// each bit-identical to a standalone Run. The shared prefix — including
// the steady-state transient, the expensive part once period detection
// truncates the rest — is simulated once; the n1 result is completed
// from a forked state copy. hint is a period-detection sampling hint in
// body iterations (see SteadyStateCyclesHinted); 0 hashes every
// iteration. The fork lands on the same cycle it would under brute
// force: forks are taken inside the dispatch stage (mid-dispatch) or at
// a recurrence, and the event-driven fast-forward only ever jumps over
// cycles in which nothing dispatches.
func (m *Machine) runPair(body []Inst, n1, n2, hint int) (int64, Result, error) {
	if n1 >= n2 {
		return 0, Result{}, fmt.Errorf("machine: runPair targets must be ordered, got %d >= %d", n1, n2)
	}
	if len(body) == 0 || n1 <= 0 || m.cfg.PeriodDetectBudget < 0 {
		// Degenerate or brute-force configurations: two plain runs (for
		// n1 <= 0, Run returns the canonical empty result).
		r1, err := m.Run(body, n1)
		if err != nil {
			return 0, Result{}, err
		}
		r2, err := m.Run(body, n2)
		if err != nil {
			return 0, Result{}, err
		}
		return r1.Cycles, r2, nil
	}
	for idx, in := range body {
		if in.Spec < 0 || in.Spec >= len(m.specs) {
			return 0, Result{}, fmt.Errorf("machine: instruction %d references unknown spec %d", idx, in.Spec)
		}
	}
	sc := m.getScratch()
	s := sim{m: m, body: body, iters: n2, sc: sc, forkAt: n1, hintIters: hint}
	res, err := s.run()
	if err != nil {
		if s.fork != nil {
			m.pool.Put(s.fork.sc)
		}
		m.pool.Put(sc)
		return 0, Result{}, err
	}
	// The dispatch stream of the n2 run passes iteration n1 before n2,
	// either literally (mid-cycle fork) or via the period (recurrence
	// fork), so a fork always exists here.
	cycles1, err := s.fork.finish()
	m.pool.Put(s.fork.sc)
	m.pool.Put(sc)
	if err != nil {
		return 0, Result{}, err
	}
	return cycles1, res, nil
}
