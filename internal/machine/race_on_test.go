//go:build race

package machine_test

// raceEnabled: the race detector instruments allocations, so
// allocation-count assertions are meaningless under -race.
const raceEnabled = true
