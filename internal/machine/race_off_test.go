//go:build !race

package machine_test

const raceEnabled = false
