package machine_test

// Property tests for steady-state period detection: Run with detection
// enabled must be bit-identical to brute-force cycle-by-cycle simulation
// on randomized kernels and configurations, on all three Table 1
// processors, under both scheduling policies. This external test package
// exists so the tests can drive the simulator with the real uarch
// configurations and harness-built loop bodies without an import cycle.

import (
	"math/rand"
	"testing"

	"pmevo/internal/machine"
	"pmevo/internal/measure"
	"pmevo/internal/portmap"
	"pmevo/internal/uarch"
)

// twin builds a fast machine (period detection and the event-driven
// fast-forward both enabled) and a brute-force machine (both disabled)
// from the same configuration and specs, so every comparison below
// exercises the two fast paths composed against pure cycle-by-cycle
// simulation.
func twin(t *testing.T, cfg machine.Config, specs []machine.InstSpec) (det, brute *machine.Machine) {
	t.Helper()
	cfg.PeriodDetectBudget = 0
	cfg.EventDrivenDisabled = false
	det, err := machine.New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PeriodDetectBudget = machine.PeriodDetectDisabled
	cfg.EventDrivenDisabled = true
	brute, err = machine.New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	return det, brute
}

// sameResult compares every semantic field (DetectedPeriod,
// DetectedPeriodIters, and SkippedCycles are diagnostic metadata and
// intentionally excluded — they describe how the run was computed, not
// what it computed).
func sameResult(t *testing.T, ctx string, got, want machine.Result) {
	t.Helper()
	if got.Cycles != want.Cycles || got.Instructions != want.Instructions ||
		got.Uops != want.Uops || got.WindowFullCycles != want.WindowFullCycles ||
		got.OccupancySum != want.OccupancySum {
		t.Fatalf("%s: detection diverged from brute force:\n got  %+v\nwant %+v", ctx, got, want)
	}
	for k := range want.PortUops {
		if got.PortUops[k] != want.PortUops[k] {
			t.Fatalf("%s: port %d µops %d != %d", ctx, k, got.PortUops[k], want.PortUops[k])
		}
	}
}

// TestPeriodDetectionMatchesBruteForceRandom exercises randomized
// machines (ports, dispatch width, window size, both policies, blocking
// µops) against randomized dependency-carrying bodies and iteration
// counts.
func TestPeriodDetectionMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 300; trial++ {
		ports := 1 + rng.Intn(4)
		cfg := machine.Config{
			NumPorts:      ports,
			DispatchWidth: 1 + rng.Intn(4),
			WindowSize:    1 + rng.Intn(24),
			Policy:        machine.SchedPolicy(rng.Intn(2)),
			FrequencyGHz:  1,
		}
		nspecs := 1 + rng.Intn(4)
		specs := make([]machine.InstSpec, nspecs)
		for i := range specs {
			nuops := 1 + rng.Intn(3)
			uops := make([]machine.UopSpec, nuops)
			for j := range uops {
				ps := portmap.PortSet(rng.Intn(1<<ports-1) + 1)
				block := 1
				if rng.Intn(4) == 0 {
					block = 1 + rng.Intn(4)
				}
				uops[j] = machine.UopSpec{Ports: ps, Block: block}
			}
			specs[i] = machine.InstSpec{Uops: uops, Latency: 1 + rng.Intn(12)}
		}
		det, brute := twin(t, cfg, specs)

		bodyLen := 1 + rng.Intn(10)
		body := make([]machine.Inst, bodyLen)
		for i := range body {
			in := machine.Inst{Spec: rng.Intn(nspecs)}
			for r := rng.Intn(3); r > 0; r-- {
				in.Reads = append(in.Reads, rng.Intn(8))
			}
			for w := rng.Intn(3); w > 0; w-- {
				in.Writes = append(in.Writes, rng.Intn(8))
			}
			body[i] = in
		}
		iters := 1 + rng.Intn(80)

		got, err := det.Run(body, iters)
		if err != nil {
			t.Fatal(err)
		}
		want, err := brute.Run(body, iters)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "random trial", got, want)

		warmup := rng.Intn(20)
		measureIters := 1 + rng.Intn(60)
		g, err := det.SteadyStateCycles(body, warmup, measureIters)
		if err != nil {
			t.Fatal(err)
		}
		w, err := brute.SteadyStateCycles(body, warmup, measureIters)
		if err != nil {
			t.Fatal(err)
		}
		if g != w {
			t.Fatalf("trial %d: SteadyStateCycles %v != brute %v", trial, g, w)
		}
	}
}

// TestPeriodDetectionMatchesBruteForceUarch runs harness-built loop
// bodies on all three Table 1 configurations under both scheduling
// policies and pins bit-equality of Run and SteadyStateCycles against
// brute force. It also asserts that detection actually engages at
// measurement scale — the premise of the measurement speedup.
func TestPeriodDetectionMatchesBruteForceUarch(t *testing.T) {
	mopts := measure.DefaultOptions()
	for _, proc := range uarch.All() {
		h, err := measure.NewHarness(proc, mopts)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		var exps []portmap.Experiment
		n := proc.ISA.NumForms()
		for i := 0; i < 6; i++ {
			e := portmap.Experiment{{Inst: rng.Intn(n), Count: 1 + rng.Intn(2)}}
			if rng.Intn(2) == 0 {
				e = append(e, portmap.InstCount{Inst: rng.Intn(n), Count: 1})
			}
			exps = append(exps, e.Normalize())
		}
		for _, policy := range []machine.SchedPolicy{machine.LeastLoaded, machine.LowestIndex} {
			cfg := proc.Config
			cfg.Policy = policy
			det, brute := twin(t, cfg, proc.Specs)
			detected := false
			for _, e := range exps {
				body, _, err := h.BuildLoop(e)
				if err != nil {
					t.Fatal(err)
				}
				for _, iters := range []int{mopts.WarmupIters, mopts.WarmupIters + mopts.MeasureIters} {
					got, err := det.Run(body, iters)
					if err != nil {
						t.Fatal(err)
					}
					want, err := brute.Run(body, iters)
					if err != nil {
						t.Fatal(err)
					}
					sameResult(t, proc.Name, got, want)
					if got.DetectedPeriod > 0 {
						detected = true
					}
					if want.DetectedPeriod != 0 {
						t.Fatalf("%s: brute-force run reports a detected period", proc.Name)
					}
				}
				g, err := det.SteadyStateCycles(body, mopts.WarmupIters, mopts.MeasureIters)
				if err != nil {
					t.Fatal(err)
				}
				w, err := brute.SteadyStateCycles(body, mopts.WarmupIters, mopts.MeasureIters)
				if err != nil {
					t.Fatal(err)
				}
				if g != w {
					t.Fatalf("%s: SteadyStateCycles %v != brute %v", proc.Name, g, w)
				}
			}
			if !detected {
				t.Errorf("%s (policy %v): period detection never engaged on harness bodies", proc.Name, policy)
			}
		}
	}
}

// TestPeriodDetectionScratchReuse runs many different bodies back to
// back through ONE machine (and therefore one pooled scratch/detector),
// pinning that state left over from a previous run — recurrence tables,
// pending-cell numbering stamps, arenas — can never leak into the next
// run's canonical encoding: every result must still match brute force.
func TestPeriodDetectionScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	cfg := machine.Config{
		NumPorts:      3,
		DispatchWidth: 2,
		WindowSize:    12,
		Policy:        machine.LeastLoaded,
		FrequencyGHz:  1,
	}
	specs := []machine.InstSpec{
		{Uops: []machine.UopSpec{{Ports: portmap.MakePortSet(0, 1), Block: 1}}, Latency: 2},
		{Uops: []machine.UopSpec{{Ports: portmap.MakePortSet(2), Block: 1}}, Latency: 5},
		{Uops: []machine.UopSpec{{Ports: portmap.MakePortSet(0), Block: 3}}, Latency: 1},
	}
	det, brute := twin(t, cfg, specs)
	for trial := 0; trial < 200; trial++ {
		body := make([]machine.Inst, 1+rng.Intn(8))
		for i := range body {
			in := machine.Inst{Spec: rng.Intn(len(specs))}
			for r := rng.Intn(3); r > 0; r-- {
				in.Reads = append(in.Reads, rng.Intn(6))
			}
			for w := rng.Intn(2); w >= 0; w-- {
				in.Writes = append(in.Writes, rng.Intn(6))
			}
			body[i] = in
		}
		iters := 1 + rng.Intn(70)
		got, err := det.Run(body, iters)
		if err != nil {
			t.Fatal(err)
		}
		want, err := brute.Run(body, iters)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "scratch-reuse trial", got, want)
	}
}

// TestBaselineMachineMatches pins the uarch plumb-through: a processor's
// BaselineMachine must be the brute-force twin of Machine — identical
// results, detection disabled, same fingerprint.
func TestBaselineMachineMatches(t *testing.T) {
	for _, proc := range uarch.All() {
		mach, err := proc.Machine()
		if err != nil {
			t.Fatal(err)
		}
		base, err := proc.BaselineMachine()
		if err != nil {
			t.Fatal(err)
		}
		if mach.Fingerprint() != base.Fingerprint() {
			t.Errorf("%s: fingerprints differ between Machine and BaselineMachine", proc.Name)
		}
		h, err := measure.NewHarness(proc, measure.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		body, _, err := h.BuildLoop(portmap.Experiment{{Inst: 0, Count: 1}, {Inst: 1, Count: 1}})
		if err != nil {
			t.Fatal(err)
		}
		got, err := mach.Run(body, 40)
		if err != nil {
			t.Fatal(err)
		}
		want, err := base.Run(body, 40)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, proc.Name, got, want)
		if want.DetectedPeriod != 0 {
			t.Errorf("%s: BaselineMachine still detects periods", proc.Name)
		}
		if want.SkippedCycles != 0 {
			t.Errorf("%s: BaselineMachine still fast-forwards cycles (%d skipped)", proc.Name, want.SkippedCycles)
		}
	}
}

// TestRunSteadyStateAllocationFree pins the scratch-pool property: after
// warmup, Run allocates only its Result (the PortUops slice and, when a
// period is found, the per-period port deltas).
func TestRunSteadyStateAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations")
	}
	proc := uarch.SKL()
	mach, err := proc.Machine()
	if err != nil {
		t.Fatal(err)
	}
	h, err := measure.NewHarness(proc, measure.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	body, _, err := h.BuildLoop(portmap.Experiment{{Inst: 0, Count: 1}, {Inst: 2, Count: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // warm the scratch pool and detection arenas
		if _, err := mach.Run(body, 150); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := mach.Run(body, 150); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 3 {
		t.Errorf("steady-state Run allocates %.1f objects per call, want <= 3", allocs)
	}
}
