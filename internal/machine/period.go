package machine

import (
	"math"
	"math/bits"
)

// Steady-state period detection.
//
// The simulator is deterministic, so its execution is a function of the
// current state alone — and that state can be expressed relative to the
// current cycle: every comparison Run performs is of the form
// "completion/busy cycle > now" or "load[i] < load[j]", never against an
// absolute cycle. Two top-of-cycle states whose cycle-relative encodings
// are equal therefore evolve identically (shifted in time), which makes
// execution exactly periodic from the first recurrence onward.
//
// detector hashes a canonical cycle-relative snapshot at the top of each
// cycle and records (iteration, cycle, statistics) per distinct state.
// When a state recurs, Run extrapolates: with period P iterations / C
// cycles, the remaining iterations split into k whole periods plus a
// remainder r < P; Run simulates the remainder (and the window drain)
// once and adds k-1 copies of the per-period statistic deltas. The
// result is bit-identical to full simulation — the arithmetic is exact —
// up to the ~2^-128 odds of a two-lane hash collision, the same regime
// as the engine's fingerprint memo.
//
// The canonical encoding:
//
//   - stream position (bodyIdx, uopIdx) and the window flights in order
//     (ports, block, latency, remaining µops, source cells);
//   - completion cells, encoded as max(completion-now, 0) when written —
//     a cell ≤ now stays ready forever, so all past completions are
//     equivalent — or as a canonical identity when still pending. A
//     pending cell always belongs to an instruction with un-issued µops,
//     whose flights sit in the window (or are the instruction currently
//     dispatching), so first-encounter numbering over the window + the
//     dispatch stream names every pending cell deterministically;
//   - per-port busy deltas max(busyUntil-now, 0);
//   - for the LeastLoaded policy, per-port issue counts normalized
//     within port *components*: the scheduler only ever compares loads
//     of ports that co-occur in some µop's allowed set (transitively),
//     so loads are encoded relative to the minimum of their component —
//     absolute counts grow without bound, but steady-state deltas within
//     a component are periodic;
//   - the register file, folded commutatively (registers resolved to the
//     always-ready state are skipped — they are indistinguishable from
//     never-written registers).
type detector struct {
	table map[[2]uint64]periodRec
	// arena stores per-snapshot port-µop counts; periodRec.portOff
	// indexes into it.
	arena []int64

	// comp[k] is port k's component id for load normalization; compMin
	// is per-snapshot scratch for the component minima.
	comp    []int32
	compMin []int64

	// Pending-cell identity numbering, reset per snapshot via epoch.
	// The epoch counter is monotonic across the detector's whole
	// lifetime (scratch is pooled and reused across runs): resetting it
	// would let stale cellEpoch stamps from a previous run's body alias
	// a fresh snapshot's numbering and corrupt the canonical encoding.
	cellEpoch []int64
	cellID    []int32
	epoch     int64
	nextID    int32
}

// periodRec remembers the first occurrence of a state.
type periodRec struct {
	iter    int
	cycle   int64
	portOff int

	instructions int64
	uops         int64
	windowFull   int64
	occupancy    int64
}

// mixA is the splitmix64 finalizer; mixB is the murmur3 finalizer. The
// two lanes of the state hash use one each, so a collision must defeat
// both mixers on the same encoding stream.
func mixA(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func mixB(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// lanes is the two-lane incremental state hash.
type lanes struct{ a, b uint64 }

func (l *lanes) add(x uint64) {
	l.a = mixA(l.a ^ x)
	l.b = mixB(l.b ^ (x + 0x9e3779b97f4a7c15))
}

// start prepares the detector for a run: it clears the recurrence table
// and computes the port components of the body's spec set (union-find
// over every µop's allowed-port set).
func (d *detector) start(s *sim) {
	if d.table == nil {
		d.table = make(map[[2]uint64]periodRec)
	} else {
		clear(d.table)
	}
	d.arena = d.arena[:0]
	// d.epoch deliberately NOT reset: see the field comment.

	n := s.m.cfg.NumPorts
	if cap(d.comp) < n {
		d.comp = make([]int32, n)
		d.compMin = make([]int64, n)
	}
	d.comp = d.comp[:n]
	d.compMin = d.compMin[:n]
	for k := 0; k < n; k++ {
		d.comp[k] = int32(k)
	}
	var find func(k int32) int32
	find = func(k int32) int32 {
		for d.comp[k] != k {
			d.comp[k] = d.comp[d.comp[k]] // path halving
			k = d.comp[k]
		}
		return k
	}
	for _, in := range s.body {
		for _, u := range s.m.specs[in.Spec].Uops {
			root := int32(-1)
			for v := uint64(u.Ports); v != 0; v &= v - 1 {
				p := find(int32(bits.TrailingZeros64(v)))
				if root < 0 {
					root = p
				} else {
					d.comp[p] = root
				}
			}
		}
	}
	for k := 0; k < n; k++ {
		d.comp[k] = find(int32(k))
	}
}

// encodeCell canonically encodes one completion cell relative to the
// current cycle: even values are resolved completion deltas (0 = ready
// now or earlier), odd values carry the first-encounter identity of a
// still-pending cell.
func (d *detector) encodeCell(s *sim, ci int32) uint64 {
	v := s.sc.cells[ci]
	if v != notReady {
		delta := v - s.cycle
		if delta <= 0 {
			return 0
		}
		return uint64(delta) << 1
	}
	if d.cellEpoch[ci] != d.epoch {
		d.cellEpoch[ci] = d.epoch
		d.cellID[ci] = d.nextID
		d.nextID++
	}
	return uint64(d.cellID[ci])<<1 | 1
}

// check hashes the current top-of-cycle state. If the state was seen
// before, it returns that occurrence; otherwise it records the state.
// Only called while !done(), so the dispatch-stream fields are live.
func (d *detector) check(s *sim) (periodRec, bool) {
	sc := s.sc
	if len(d.cellEpoch) < len(sc.cells) {
		grown := make([]int64, len(sc.cells)+len(sc.cells)/2)
		copy(grown, d.cellEpoch)
		d.cellEpoch = grown
		ids := make([]int32, len(grown))
		copy(ids, d.cellID)
		d.cellID = ids
	}
	d.epoch++
	d.nextID = 0

	var h lanes
	h.add(uint64(s.bodyIdx)<<20 | uint64(s.uopIdx))

	cfg := &s.m.cfg
	for k := 0; k < cfg.NumPorts; k++ {
		delta := sc.busy[k] - s.cycle
		if delta < 0 {
			delta = 0
		}
		h.add(uint64(delta))
	}
	if cfg.Policy == LeastLoaded {
		for k := 0; k < cfg.NumPorts; k++ {
			d.compMin[d.comp[k]] = math.MaxInt64
		}
		for k := 0; k < cfg.NumPorts; k++ {
			if c := d.comp[k]; sc.load[k] < d.compMin[c] {
				d.compMin[c] = sc.load[k]
			}
		}
		for k := 0; k < cfg.NumPorts; k++ {
			h.add(uint64(sc.load[k] - d.compMin[d.comp[k]]))
		}
	}

	h.add(uint64(len(sc.window)))
	for fi := range sc.window {
		f := &sc.window[fi]
		h.add(uint64(f.ports))
		h.add(uint64(f.block)<<40 | uint64(f.latency)<<8 | uint64(f.srcLen))
		h.add(d.encodeCell(s, f.cell))
		h.add(uint64(sc.lefts[f.left]))
		for _, ci := range sc.srcIdx[f.srcOff : f.srcOff+f.srcLen] {
			h.add(d.encodeCell(s, ci))
		}
	}

	// The instruction currently being dispatched.
	h.add(d.encodeCell(s, s.curCell))
	h.add(uint64(sc.lefts[s.curLeft]))
	for _, ci := range sc.srcIdx[s.curSrcOff : s.curSrcOff+s.curSrcLen] {
		h.add(d.encodeCell(s, ci))
	}

	// Register file, folded commutatively (map order is arbitrary).
	// Every pending cell reachable here was already numbered by the
	// window/stream traversal above, so the per-register terms are
	// deterministic.
	var ra, rb uint64
	for reg, ci := range sc.reg {
		e := d.encodeCell(s, ci)
		if e == 0 {
			continue // ready now ≡ never written
		}
		x := mixA(uint64(reg)+0x9e3779b97f4a7c15) ^ mixB(e)
		ra += mixA(x)
		rb += mixB(x)
	}
	h.add(ra)
	h.add(rb)

	key := [2]uint64{h.a, h.b}
	if rec, ok := d.table[key]; ok {
		return rec, true
	}
	off := len(d.arena)
	d.arena = append(d.arena, sc.portUops...)
	d.table[key] = periodRec{
		iter:         s.iter,
		cycle:        s.cycle,
		portOff:      off,
		instructions: s.instructions,
		uops:         s.uops,
		windowFull:   s.windowFull,
		occupancy:    s.occupancy,
	}
	return periodRec{}, false
}
