package espec

import (
	"strings"
	"testing"

	"pmevo/internal/portmap"
)

func testResolver() *Resolver {
	return NewResolver([]string{"add_r64_r64", "imul_r64_r64", "mov_m64_r64"})
}

func TestParseBasic(t *testing.T) {
	r := testResolver()
	e, err := r.Parse([]string{"add_r64_r64:2", "imul_r64_r64"})
	if err != nil {
		t.Fatal(err)
	}
	want := portmap.Experiment{{Inst: 0, Count: 2}, {Inst: 1, Count: 1}}
	if e.Key() != want.Key() {
		t.Errorf("parsed %v, want %v", e, want)
	}
}

func TestParseMergesRepeats(t *testing.T) {
	r := testResolver()
	e, err := r.Parse([]string{"add_r64_r64", "add_r64_r64:3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(e) != 1 || e[0].Count != 4 {
		t.Errorf("parsed %v, want merged count 4", e)
	}
}

func TestParseErrors(t *testing.T) {
	r := testResolver()
	cases := [][]string{
		nil,
		{""},
		{"add_r64_r64:0"},
		{"add_r64_r64:-1"},
		{"add_r64_r64:x"},
		{"nope_r64"},
		{":3"},
	}
	for _, toks := range cases {
		if _, err := r.Parse(toks); err == nil {
			t.Errorf("Parse(%v) succeeded", toks)
		}
	}
}

func TestParseSuggestions(t *testing.T) {
	r := testResolver()
	_, err := r.Parse([]string{"add_r32_r32"})
	if err == nil {
		t.Fatal("unknown form accepted")
	}
	if !strings.Contains(err.Error(), "add_r64_r64") {
		t.Errorf("error lacks suggestion: %v", err)
	}
}

func TestLookupAndNames(t *testing.T) {
	r := testResolver()
	if i, ok := r.Lookup("imul_r64_r64"); !ok || i != 1 {
		t.Errorf("Lookup = %d, %v", i, ok)
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Error("missing name resolved")
	}
	if len(r.Names()) != 3 {
		t.Errorf("Names() = %v", r.Names())
	}
}

func TestResolverSkipsEmptyAndDuplicateNames(t *testing.T) {
	r := NewResolver([]string{"a", "", "a", "b"})
	if i, _ := r.Lookup("a"); i != 0 {
		t.Errorf("duplicate name resolved to %d, want first occurrence 0", i)
	}
	if _, ok := r.Lookup(""); ok {
		t.Error("empty name resolvable")
	}
}

func TestFormat(t *testing.T) {
	r := testResolver()
	e := portmap.Experiment{{Inst: 1, Count: 1}, {Inst: 0, Count: 2}}
	if got := r.Format(e); got != "add_r64_r64:2 imul_r64_r64" {
		t.Errorf("Format = %q", got)
	}
	// Out-of-table indices render generically.
	if got := r.Format(portmap.Experiment{{Inst: 9, Count: 1}}); got != "I9" {
		t.Errorf("Format = %q", got)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	r := testResolver()
	orig := portmap.Experiment{{Inst: 0, Count: 3}, {Inst: 2, Count: 1}}
	back, err := r.Parse(strings.Fields(r.Format(orig)))
	if err != nil {
		t.Fatal(err)
	}
	if back.Key() != orig.Normalize().Key() {
		t.Errorf("round trip %v -> %v", orig, back)
	}
}
