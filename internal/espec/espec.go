// Package espec parses textual experiment specifications of the form
// used by the command line tools:
//
//	add_r64_r64:2 imul_r64_r64 mov_m64_r64:1
//
// Each token is an instruction form name with an optional ":count"
// suffix (default 1). Names resolve against a provided name table —
// either an ISA's form names or an inferred mapping's instruction names.
package espec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pmevo/internal/portmap"
)

// Resolver maps instruction names to dense indices.
type Resolver struct {
	byName map[string]int
	names  []string
}

// NewResolver builds a resolver from a dense name table.
func NewResolver(names []string) *Resolver {
	r := &Resolver{byName: make(map[string]int, len(names)), names: names}
	for i, n := range names {
		if n == "" {
			continue
		}
		if _, dup := r.byName[n]; !dup {
			r.byName[n] = i
		}
	}
	return r
}

// Names returns the resolvable names in index order.
func (r *Resolver) Names() []string { return r.names }

// Lookup resolves one name.
func (r *Resolver) Lookup(name string) (int, bool) {
	i, ok := r.byName[name]
	return i, ok
}

// suggest returns up to three known names containing the given
// substring, for error messages.
func (r *Resolver) suggest(fragment string) []string {
	var out []string
	for name := range r.byName {
		if strings.Contains(name, fragment) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	if len(out) > 3 {
		out = out[:3]
	}
	return out
}

// Parse parses a list of "name[:count]" tokens into an experiment.
func (r *Resolver) Parse(tokens []string) (portmap.Experiment, error) {
	if len(tokens) == 0 {
		return nil, fmt.Errorf("espec: empty experiment specification")
	}
	var e portmap.Experiment
	for _, tok := range tokens {
		name, countStr, hasCount := strings.Cut(tok, ":")
		if name == "" {
			return nil, fmt.Errorf("espec: empty instruction name in %q", tok)
		}
		count := 1
		if hasCount {
			c, err := strconv.Atoi(countStr)
			if err != nil || c < 1 {
				return nil, fmt.Errorf("espec: bad count in %q (want a positive integer)", tok)
			}
			count = c
		}
		idx, ok := r.Lookup(name)
		if !ok {
			msg := fmt.Sprintf("espec: unknown instruction form %q", name)
			if hints := r.suggest(firstWord(name)); len(hints) > 0 {
				msg += fmt.Sprintf(" (did you mean %s?)", strings.Join(hints, ", "))
			}
			return nil, fmt.Errorf("%s", msg)
		}
		e = append(e, portmap.InstCount{Inst: idx, Count: count})
	}
	return e.Normalize(), nil
}

// firstWord extracts the mnemonic part of a form name for suggestions.
func firstWord(name string) string {
	if i := strings.IndexByte(name, '_'); i > 0 {
		return name[:i]
	}
	return name
}

// Format renders an experiment back into the token syntax.
func (r *Resolver) Format(e portmap.Experiment) string {
	n := e.Normalize()
	parts := make([]string, 0, len(n))
	for _, t := range n {
		name := fmt.Sprintf("I%d", t.Inst)
		if t.Inst >= 0 && t.Inst < len(r.names) && r.names[t.Inst] != "" {
			name = r.names[t.Inst]
		}
		if t.Count == 1 {
			parts = append(parts, name)
		} else {
			parts = append(parts, fmt.Sprintf("%s:%d", name, t.Count))
		}
	}
	return strings.Join(parts, " ")
}
