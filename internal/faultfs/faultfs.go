// Package faultfs is the fault-injection seam under cachestore's
// atomic write path. Production code calls WriteFile and Rename, which
// normally delegate straight to the os package; tests install Hooks to
// simulate the failure modes a crash-safe store must survive —
// a crash between temp-file write and rename, a torn (short) write
// that still renames into place, and ENOSPC — and then assert that
// every reader degrades to last-good-file or cold start, never to a
// misread.
//
// Hooks are process-global (the write paths they guard are already
// process-global caches) and restored by the func Set returns, so tests
// can scope an injection to one save.
package faultfs

import (
	"os"
	"sync/atomic"
)

// Hooks intercepts the primitive steps of an atomic temp-write+rename.
// A nil field leaves that step untouched.
type Hooks struct {
	// BeforeWrite may replace or reject the bytes about to be written
	// to the temp file at path. Returning a prefix simulates a torn
	// write; returning an error simulates a write failure (e.g.
	// syscall.ENOSPC).
	BeforeWrite func(path string, data []byte) ([]byte, error)
	// BeforeRename runs after the temp file is durably written and
	// closed, immediately before it is renamed over the final path.
	// Returning an error simulates a crash in the window between write
	// and rename: the temp file exists, the final path is untouched.
	BeforeRename func(oldpath, newpath string) error
}

var hooks atomic.Pointer[Hooks]

// Set installs h as the process-global hook set and returns a func that
// restores the previous hooks. Pass nil to clear.
func Set(h *Hooks) (restore func()) {
	prev := hooks.Swap(h)
	return func() { hooks.Store(prev) }
}

// WriteFile writes data to the open temp file f (created at path),
// applying any installed BeforeWrite hook first. A hook that shortens
// the data produces a torn write that the caller will not notice — by
// design, so the on-disk integrity checks are what must catch it.
func WriteFile(f *os.File, path string, data []byte) error {
	if h := hooks.Load(); h != nil && h.BeforeWrite != nil {
		d, err := h.BeforeWrite(path, data)
		if err != nil {
			return err
		}
		data = d
	}
	_, err := f.Write(data)
	return err
}

// Rename renames oldpath onto newpath, applying any installed
// BeforeRename hook first. A hook error models a crash before the
// rename: the caller sees the error, the final path keeps its previous
// (last-good) content, and the orphaned temp file is the only residue.
func Rename(oldpath, newpath string) error {
	if h := hooks.Load(); h != nil && h.BeforeRename != nil {
		if err := h.BeforeRename(oldpath, newpath); err != nil {
			return err
		}
	}
	return os.Rename(oldpath, newpath)
}
