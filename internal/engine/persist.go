package engine

import (
	"math"
	"path/filepath"

	"pmevo/internal/cachestore"
	"pmevo/internal/cachetable"
	"pmevo/internal/exp"
	"pmevo/internal/portmap"
)

// Persistence of the throughput memo (the engine side of the
// warm-start seam; the measurement side is measure.Load/SaveSimCache).
//
// A memo entry maps (experiment identity, decomposition fingerprints of
// its instructions) → bottleneck throughput; every component is a pure
// content hash, deterministic across processes. The one piece of
// context a key does NOT encode is the experiment set itself: expSalt
// is indexed by experiment position, so a spilled memo is only valid
// against the exact set it was built from. ExpSetFingerprint hashes the
// set and gates the file as cachestore's content key — a memo spilled
// against different measurements loads as empty and the run
// cold-starts. Within a matching set, warm entries are the exact floats
// a fresh evaluation would produce, so a warm-started run is
// bit-identical to a cold one (only timing changes).

// ExpSetFingerprint returns a 64-bit content hash of a measured
// experiment set: the instruction count, every experiment's terms in
// order, and the exact bits of every measured throughput. It is the
// content key under which a Service's memo may be spilled and reloaded.
func ExpSetFingerprint(set *exp.Set) uint64 {
	h := portmap.CombineFingerprints(0x706d65766f736574, uint64(set.NumInsts)) // "pmevoset"
	for _, v := range set.Individual {
		h = portmap.CombineFingerprints(h, math.Float64bits(v))
	}
	for _, m := range set.Measurements {
		h = portmap.CombineFingerprints(h, uint64(len(m.Exp)))
		for _, t := range m.Exp {
			h = portmap.CombineFingerprints(h, uint64(t.Inst))
			h = portmap.CombineFingerprints(h, uint64(t.Count))
		}
		h = portmap.CombineFingerprints(h, math.Float64bits(m.Throughput))
	}
	if h == 0 {
		h = 1
	}
	return h
}

// MemoPath returns the conventional throughput-memo spill file inside a
// tool's -cache-dir.
func MemoPath(dir string) string { return filepath.Join(dir, "fitness-memo.pmc") }

// LoadMemo reads the memo entries spilled at path for the given
// experiment set, for ServiceOptions.MemoWarm (or evo.Options.MemoWarm).
// It never fails into a result path: a missing, damaged, or
// foreign-set file yields nil entries plus a typed cachestore
// diagnostic (errors.Is against cachestore.ErrMissing et al.), and the
// run cold-starts.
func LoadMemo(path string, set *exp.Set) ([]cachetable.Entry, error) {
	return cachestore.Load(path, cachestore.SchemaFitnessMemo, ExpSetFingerprint(set))
}

// SaveMemo atomically spills memo entries (Service.MemoSnapshot) taken
// against the given experiment set to path.
func SaveMemo(path string, set *exp.Set, entries []cachetable.Entry) error {
	return cachestore.Save(path, cachestore.SchemaFitnessMemo, ExpSetFingerprint(set), entries)
}

// FitCachePath returns the conventional cross-generation fitness-cache
// spill file inside an evolution checkpoint directory.
func FitCachePath(dir string) string { return filepath.Join(dir, "fitness-cache.pmc") }

// LoadFitCache reads a fitness-cache spill (Service.FitCacheSnapshot)
// taken against the given experiment set, for
// ServiceOptions.FitCacheWarm, with the same degrade-to-cold contract
// as LoadMemo. Keys are whole-mapping fingerprints, pure content
// hashes; the set fingerprint gates the file because Davg is a function
// of mapping × experiment set.
func LoadFitCache(path string, set *exp.Set) ([]cachetable.Entry, error) {
	return cachestore.Load(path, cachestore.SchemaFitnessCache, ExpSetFingerprint(set))
}

// SaveFitCache atomically spills fitness-cache entries taken against
// the given experiment set to path.
func SaveFitCache(path string, set *exp.Set, entries []cachetable.Entry) error {
	return cachestore.Save(path, cachestore.SchemaFitnessCache, ExpSetFingerprint(set), entries)
}
