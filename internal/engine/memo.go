package engine

import (
	"math"
	"sync/atomic"
)

// memoTable is the bounded, shared throughput memo of the fitness
// Service: a fixed-size array of independently atomic slots, direct-mapped
// by key. Reads and writes are lock-free; the population's worker
// goroutines share one table, so a decomposition tuple evaluated by any
// candidate is reused by every other candidate of the generation.
//
// Each slot packs (key, value) into two atomic words with the
// transposition-table XOR trick: the tag word stores key ^ valueBits, so
// a torn read (tag from one write, value from another) fails the tag
// check and reads as a miss instead of returning a mismatched value. A
// false hit requires two concurrently written keys with colliding
// tag/value XORs — the same ~2^-64 regime as a fingerprint collision.
//
// The table is a cache, not a map: colliding keys overwrite each other
// (bounded memory, no eviction bookkeeping), and a lost entry only costs
// a recomputation.
type memoTable struct {
	mask    uint64
	entries []memoEntry
}

type memoEntry struct {
	tag atomic.Uint64 // key ^ val
	val atomic.Uint64 // math.Float64bits of the throughput
}

// newMemoTable creates a table with at least `entries` slots, rounded up
// to a power of two.
func newMemoTable(entries int) *memoTable {
	size := 1
	for size < entries {
		size <<= 1
	}
	return &memoTable{
		mask:    uint64(size - 1),
		entries: make([]memoEntry, size),
	}
}

// get returns the memoized throughput for key, if present.
func (t *memoTable) get(key uint64) (float64, bool) {
	e := &t.entries[key&t.mask]
	v := e.val.Load()
	if e.tag.Load() != key^v {
		return 0, false
	}
	return math.Float64frombits(v), true
}

// put stores the throughput for key, overwriting whatever shared the
// slot.
func (t *memoTable) put(key uint64, tp float64) {
	v := math.Float64bits(tp)
	e := &t.entries[key&t.mask]
	e.tag.Store(key ^ v)
	e.val.Store(v)
}
