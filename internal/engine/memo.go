package engine

import (
	"math"

	"pmevo/internal/cachetable"
)

// memoTable is the bounded, shared throughput memo of the fitness
// Service: a cachetable.Table storing float64 throughputs, direct-mapped
// by the decomposition-fingerprint key of an experiment. The
// population's worker goroutines share one table, so a decomposition
// tuple evaluated by any candidate is reused by every other candidate
// of the generation; a slot lost to a colliding key only costs a
// recomputation, and memoized values are the exact floats a fresh
// evaluation would produce.
type memoTable struct {
	t *cachetable.Table
}

// newMemoTable creates a table with at least `entries` slots, rounded up
// to a power of two.
func newMemoTable(entries int) *memoTable {
	return &memoTable{t: cachetable.New(entries)}
}

// size returns the slot count.
func (m *memoTable) size() int { return m.t.Len() }

// get returns the memoized throughput for key, if present.
func (m *memoTable) get(key uint64) (float64, bool) {
	v, ok := m.t.Get(key)
	if !ok {
		return 0, false
	}
	return math.Float64frombits(v), true
}

// put stores the throughput for key, overwriting whatever shared the
// slot.
func (m *memoTable) put(key uint64, tp float64) {
	m.t.Put(key, math.Float64bits(tp))
}
