package engine

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"pmevo/internal/portmap"
	"pmevo/internal/runctrl"
)

// TestForEachWorkerCtxCancel: once the context is canceled, no further
// indices start, in-flight invocations complete (the counter is
// consistent), and the pool returns the typed error.
func TestForEachWorkerCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	const n = 10000
	err := ForEachWorkerCtx(ctx, n, 4, func(_, i int) {
		if started.Add(1) == 50 {
			cancel()
		}
	})
	if !errors.Is(err, runctrl.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	got := started.Load()
	if got >= n {
		t.Fatalf("all %d indices ran despite cancellation", n)
	}
	// Every claim checks ctx first, so at most `workers` indices can be
	// in flight when cancel lands; allow generous slack for the race
	// between Add and the workers' next claim.
	if got > 50+4 {
		t.Fatalf("%d indices started after cancellation at 50", got)
	}
}

// TestForEachWorkerCtxDeadline maps an expired deadline onto
// ErrDeadline, distinct from ErrCanceled.
func TestForEachWorkerCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	ran := 0
	err := ForEachWorkerCtx(ctx, 100, 1, func(_, i int) { ran++ })
	if !errors.Is(err, runctrl.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if ran != 0 {
		t.Fatalf("%d indices ran under an expired deadline", ran)
	}
}

// TestForEachWorkerCtxComplete: a live context runs every index exactly
// once and returns nil.
func TestForEachWorkerCtxComplete(t *testing.T) {
	const n = 500
	seen := make([]atomic.Int32, n)
	if err := ForEachWorkerCtx(context.Background(), n, 4, func(_, i int) {
		seen[i].Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if c := seen[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

// TestForEachWorkerErrCtxTaskErrorOutranksCancel: a real task failure
// must not be masked by a concurrent cancellation.
func TestForEachWorkerErrCtxTaskErrorOutranksCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("boom")
	err := ForEachWorkerErrCtx(ctx, 100, 2, func(_, i int) error {
		if i == 3 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the task error", err)
	}
}

// TestEvaluateAllCanceled: a canceled context stops the batch with the
// typed error; a live one fills every slot.
func TestEvaluateAllCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	_, set := measuredSet(t, rng, 8, 3)
	svc, err := NewService(set, ServiceOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]*portmap.Mapping, 64)
	for i := range ms {
		ms[i] = portmap.Random(rng, portmap.RandomOptions{NumInsts: 8, NumPorts: 3, MaxUops: 3})
	}
	out := make([]Fitness, len(ms))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := svc.EvaluateAll(ctx, ms, out); !errors.Is(err, runctrl.ErrCanceled) {
		t.Fatalf("canceled EvaluateAll: err = %v, want ErrCanceled", err)
	}

	if err := svc.EvaluateAll(context.Background(), ms, out); err != nil {
		t.Fatal(err)
	}
	for i, f := range out {
		if f.Davg < 0 || f.Volume <= 0 {
			t.Fatalf("slot %d not filled: %+v", i, f)
		}
	}
}
