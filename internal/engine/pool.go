package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"pmevo/internal/runctrl"
)

// Workers resolves a worker-count option: values <= 0 mean GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEachWorkerCtx invokes fn(worker, i) at most once for every i in
// [0, n), distributing indices dynamically over up to `workers`
// goroutines (<= 0: GOMAXPROCS). The worker argument identifies the
// executing goroutine with a dense index in [0, workers), so callers can
// keep per-worker scratch state (e.g. a reusable throughput.Evaluator)
// without locking. Dynamic distribution keeps the pool balanced when
// task costs vary, as they do for simulations of different experiment
// lengths.
//
// Cancellation is checked before every index claim: once ctx is done,
// no further indices start (in-flight invocations run to completion —
// fn is never abandoned mid-call), every worker goroutine exits, and
// the pool returns the typed interruption error (runctrl.ErrCanceled /
// runctrl.ErrDeadline). A nil error means every index ran. A nil or
// never-canceled ctx costs one channel poll per index.
//
// ForEachWorkerCtx returns after all started invocations have
// completed — it never leaks goroutines, canceled or not. With one
// worker (or n <= 1) everything runs on the calling goroutine.
func ForEachWorkerCtx(ctx context.Context, n, workers int, fn func(worker, i int)) error {
	if n <= 0 {
		return runctrl.Check(ctx)
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := runctrl.Check(ctx); err != nil {
				return err
			}
			fn(0, i)
		}
		return runctrl.Check(ctx)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if runctrl.Check(ctx) != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
	return runctrl.Check(ctx)
}

// ForEachWorker is ForEachWorkerCtx without a cancellation scope: it
// invokes fn exactly once for every index and returns after all
// invocations have completed.
func ForEachWorker(n, workers int, fn func(worker, i int)) {
	//pmevo:allow ctxflow -- back-compat shim: the pre-PR-8 non-ctx surface; cancelable callers use ForEachWorkerCtx
	ForEachWorkerCtx(context.Background(), n, workers, fn)
}

// ForEachCtx is ForEachWorkerCtx for tasks that need no per-worker
// state.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	return ForEachWorkerCtx(ctx, n, workers, func(_, i int) { fn(i) })
}

// ForEach is ForEachWorker for tasks that need no per-worker state.
func ForEach(n, workers int, fn func(i int)) {
	ForEachWorker(n, workers, func(_, i int) { fn(i) })
}

// ForEachWorkerErrCtx is ForEachWorkerCtx for fallible tasks: it runs
// all started invocations to completion and returns the error of the
// lowest-indexed failed task; with no task failure it returns the
// cancellation state like ForEachWorkerCtx (task errors take
// precedence — a real failure outranks "we were also interrupted").
func ForEachWorkerErrCtx(ctx context.Context, n, workers int, fn func(worker, i int) error) error {
	var mu sync.Mutex
	firstErr := error(nil)
	firstIdx := n
	ctxErr := ForEachWorkerCtx(ctx, n, workers, func(w, i int) {
		if err := fn(w, i); err != nil {
			mu.Lock()
			if i < firstIdx {
				firstErr, firstIdx = err, i
			}
			mu.Unlock()
		}
	})
	if firstErr != nil {
		return firstErr
	}
	return ctxErr
}

// ForEachWorkerErr is ForEachWorkerErrCtx without a cancellation scope.
func ForEachWorkerErr(n, workers int, fn func(worker, i int) error) error {
	//pmevo:allow ctxflow -- back-compat shim: the pre-PR-8 non-ctx surface; cancelable callers use ForEachWorkerErrCtx
	return ForEachWorkerErrCtx(context.Background(), n, workers, fn)
}

// ForEachErrCtx is ForEachWorkerErrCtx for tasks without per-worker
// state.
func ForEachErrCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	return ForEachWorkerErrCtx(ctx, n, workers, func(_, i int) error { return fn(i) })
}

// ForEachErr is ForEachWorkerErr for tasks without per-worker state.
func ForEachErr(n, workers int, fn func(i int) error) error {
	return ForEachWorkerErr(n, workers, func(_, i int) error { return fn(i) })
}
