package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count option: values <= 0 mean GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEachWorker invokes fn(worker, i) exactly once for every i in
// [0, n), distributing indices dynamically over up to `workers`
// goroutines (<= 0: GOMAXPROCS). The worker argument identifies the
// executing goroutine with a dense index in [0, workers), so callers can
// keep per-worker scratch state (e.g. a reusable throughput.Evaluator)
// without locking. Dynamic distribution keeps the pool balanced when
// task costs vary, as they do for simulations of different experiment
// lengths.
//
// ForEachWorker returns after all invocations have completed. With one
// worker (or n <= 1) everything runs on the calling goroutine.
func ForEachWorker(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// ForEach is ForEachWorker for tasks that need no per-worker state.
func ForEach(n, workers int, fn func(i int)) {
	ForEachWorker(n, workers, func(_, i int) { fn(i) })
}

// ForEachWorkerErr is ForEachWorker for fallible tasks: it runs all
// invocations to completion and returns the error of the
// lowest-indexed failed task (nil if none failed).
func ForEachWorkerErr(n, workers int, fn func(worker, i int) error) error {
	var mu sync.Mutex
	firstErr := error(nil)
	firstIdx := n
	ForEachWorker(n, workers, func(w, i int) {
		if err := fn(w, i); err != nil {
			mu.Lock()
			if i < firstIdx {
				firstErr, firstIdx = err, i
			}
			mu.Unlock()
		}
	})
	return firstErr
}

// ForEachErr is ForEachWorkerErr for tasks without per-worker state.
func ForEachErr(n, workers int, fn func(i int) error) error {
	return ForEachWorkerErr(n, workers, func(_, i int) error { return fn(i) })
}
