// Package engine is the batched, parallel throughput-evaluation layer
// shared by every consumer of the throughput model: the evolutionary
// search (fitness evaluation, §4.4), the evaluation figure and table
// generators (§5), and the CLIs.
//
// It provides two abstractions:
//
//   - Predictor: a uniform, concurrency-safe interface over the
//     interchangeable throughput engines (the §4.5 bottleneck simulation
//     algorithm, the Definition-3 linear program, and the
//     union-enumeration variant), with a batched PredictAll form that
//     fans out over a worker pool.
//   - Service: a fitness-evaluation service over a fixed measured
//     experiment set, with pre-flattened experiment storage and
//     per-worker reusable evaluator state so the hot loop performs no
//     allocation.
//
// All engines agree on all inputs (up to floating-point tolerance);
// this is property-tested in this package and re-checked end to end by
// `pmevo-bench -exp engines`.
package engine

import (
	"fmt"
	"sort"
	"sync"

	"pmevo/internal/portmap"
	"pmevo/internal/throughput"
)

// Predictor predicts the steady-state throughput of experiments under a
// port mapping, in cycles per experiment instance. Implementations are
// safe for concurrent use.
type Predictor interface {
	// Name identifies the engine (e.g. "bottleneck", "lp").
	Name() string
	// Predict returns the throughput of one experiment under m.
	Predict(m *portmap.Mapping, e portmap.Experiment) (float64, error)
	// PredictAll predicts every experiment in es, writing results into
	// out (len(out) must equal len(es)). Implementations parallelize
	// over the batch.
	PredictAll(m *portmap.Mapping, es []portmap.Experiment, out []float64) error
}

var engines = map[string]Predictor{
	"bottleneck": &bottleneckPredictor{},
	"lp":         lpPredictor{},
	"union":      unionPredictor{},
	"naive":      naivePredictor{},
}

// Default returns the production engine: the bottleneck simulation
// algorithm with the subset-sum and union-enumeration optimizations.
func Default() Predictor { return engines["bottleneck"] }

// Names returns the selectable engine names, sorted.
func Names() []string {
	out := make([]string, 0, len(engines))
	for n := range engines {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByName returns the engine with the given name; the empty string
// selects the default (bottleneck) engine.
func ByName(name string) (Predictor, error) {
	if name == "" {
		return Default(), nil
	}
	if p, ok := engines[name]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("engine: unknown engine %q (have %v)", name, Names())
}

// validate checks that every instruction of e is covered by m.
func validate(m *portmap.Mapping, e portmap.Experiment) error {
	for _, t := range e {
		if t.Inst < 0 || t.Inst >= m.NumInsts() {
			return fmt.Errorf("engine: instruction %d out of range (mapping covers %d)", t.Inst, m.NumInsts())
		}
	}
	return nil
}

// checkBatch validates the out length and every experiment of a batch.
func checkBatch(m *portmap.Mapping, es []portmap.Experiment, out []float64) error {
	if len(out) != len(es) {
		return fmt.Errorf("engine: output length %d does not match batch length %d", len(out), len(es))
	}
	for _, e := range es {
		if err := validate(m, e); err != nil {
			return err
		}
	}
	return nil
}

// predictBatch fans a validated batch out over the worker pool, giving
// each worker its own reusable evaluator, and collects the first error.
func predictBatch(m *portmap.Mapping, es []portmap.Experiment, out []float64,
	predict func(ev *throughput.Evaluator, e portmap.Experiment) (float64, error)) error {
	workers := Workers(0)
	if workers > len(es) {
		workers = len(es)
	}
	evals := make([]throughput.Evaluator, workers)
	return ForEachWorkerErr(len(es), workers, func(w, i int) error {
		v, err := predict(&evals[w], es[i])
		if err != nil {
			return fmt.Errorf("engine: experiment %d: %w", i, err)
		}
		out[i] = v
		return nil
	})
}

// bottleneckPredictor is the production engine: §4.5's bottleneck
// simulation algorithm via throughput.Evaluator, which dispatches
// between the subset-sum table and union enumeration. Single-experiment
// calls draw a reusable evaluator from a pool so buffers survive across
// calls without locking in the caller.
type bottleneckPredictor struct {
	pool sync.Pool // *throughput.Evaluator
}

func (p *bottleneckPredictor) Name() string { return "bottleneck" }

func (p *bottleneckPredictor) Predict(m *portmap.Mapping, e portmap.Experiment) (float64, error) {
	if err := validate(m, e); err != nil {
		return 0, err
	}
	ev, _ := p.pool.Get().(*throughput.Evaluator)
	if ev == nil {
		ev = new(throughput.Evaluator)
	}
	v := ev.ThroughputOf(m, e)
	p.pool.Put(ev)
	return v, nil
}

func (p *bottleneckPredictor) PredictAll(m *portmap.Mapping, es []portmap.Experiment, out []float64) error {
	if err := checkBatch(m, es, out); err != nil {
		return err
	}
	return predictBatch(m, es, out, func(ev *throughput.Evaluator, e portmap.Experiment) (float64, error) {
		return ev.ThroughputOf(m, e), nil
	})
}

// lpPredictor is the reference engine: the linear program of
// Definition 3, solved with the simplex solver in internal/lp. Model
// construction is part of every call, mirroring the paper's measurement
// methodology for the LP baseline (§5.4).
type lpPredictor struct{}

func (lpPredictor) Name() string { return "lp" }

func (lpPredictor) Predict(m *portmap.Mapping, e portmap.Experiment) (float64, error) {
	if err := validate(m, e); err != nil {
		return 0, err
	}
	return throughput.LP(m.Flatten(e), m.NumPorts)
}

func (lpPredictor) PredictAll(m *portmap.Mapping, es []portmap.Experiment, out []float64) error {
	if err := checkBatch(m, es, out); err != nil {
		return err
	}
	return predictBatch(m, es, out, func(_ *throughput.Evaluator, e portmap.Experiment) (float64, error) {
		return throughput.LP(m.Flatten(e), m.NumPorts)
	})
}

// unionPredictor enumerates subsets of the distinct µop port sets
// instead of subsets of the ports; exact, and independent of the port
// count (the ablation of the paper's design choice).
type unionPredictor struct{}

func (unionPredictor) Name() string { return "union" }

func (unionPredictor) Predict(m *portmap.Mapping, e portmap.Experiment) (float64, error) {
	if err := validate(m, e); err != nil {
		return 0, err
	}
	return throughput.BottleneckUnion(m.Flatten(e)), nil
}

func (unionPredictor) PredictAll(m *portmap.Mapping, es []portmap.Experiment, out []float64) error {
	if err := checkBatch(m, es, out); err != nil {
		return err
	}
	return predictBatch(m, es, out, func(_ *throughput.Evaluator, e portmap.Experiment) (float64, error) {
		return throughput.BottleneckUnion(m.Flatten(e)), nil
	})
}

// naivePredictor is the unoptimized Θ(2^|P|) subset scan exactly as
// presented in §4.5, kept as an ablation baseline.
type naivePredictor struct{}

func (naivePredictor) Name() string { return "naive" }

func (naivePredictor) Predict(m *portmap.Mapping, e portmap.Experiment) (float64, error) {
	if err := validate(m, e); err != nil {
		return 0, err
	}
	return throughput.BottleneckNaive(m.Flatten(e)), nil
}

func (naivePredictor) PredictAll(m *portmap.Mapping, es []portmap.Experiment, out []float64) error {
	if err := checkBatch(m, es, out); err != nil {
		return err
	}
	return predictBatch(m, es, out, func(_ *throughput.Evaluator, e portmap.Experiment) (float64, error) {
		return throughput.BottleneckNaive(m.Flatten(e)), nil
	})
}
