package engine

import (
	"fmt"
	"math"

	"pmevo/internal/portmap"
)

// FitnessState carries a fully evaluated candidate mapping together with
// its per-experiment predictions, enabling incremental re-evaluation
// after single-instruction edits. It is the engine side of the greedy
// local search (§4.4): each ±1 µop-count probe touches one instruction,
// so only the experiments containing it (the Service's inverted index)
// need new throughput predictions — every other per-experiment error
// term is reused.
//
// Protocol:
//
//	st, _ := svc.NewState(m)          // one full evaluation
//	// mutate exactly instruction i of m (SetUopCount, RemoveUopAt, ...)
//	fit, _ := svc.EvaluateDelta(st, i)
//	// accept: st.Commit()  — st now describes the mutated mapping
//	// reject: revert the mutation on m; do NOT Commit
//
// Between NewState/Commit and the next EvaluateDelta, all changes to the
// mapping must be confined to the single instruction passed to
// EvaluateDelta, and must go through Mapping's fingerprint-maintaining
// methods. A FitnessState is not safe for concurrent use.
//
// Delta results are bit-identical to a full evaluation of the mutated
// mapping: retained predictions are the exact floats a fresh computation
// would produce, and the error sum is re-accumulated over all
// experiments in order.
type FitnessState struct {
	svc   *Service
	m     *portmap.Mapping
	fit   Fitness
	preds []float64 // per-experiment predictions of the committed mapping
	sc    evalScratch

	// Pending (uncommitted) delta evaluation.
	pendingInst    int // -1: none
	pendingFit     Fitness
	pendingTouched []int32   // experiments re-predicted by the pending delta
	pendingPreds   []float64 // parallel to pendingTouched
}

// NewState fully evaluates m (counting as one evaluation) and returns a
// state for incremental re-evaluation. The state keeps a reference to m:
// subsequent edits to m drive EvaluateDelta.
func (s *Service) NewState(m *portmap.Mapping) (*FitnessState, error) {
	if m.NumInsts() < s.numInsts {
		return nil, fmt.Errorf("engine: mapping covers %d instructions, experiment set needs %d",
			m.NumInsts(), s.numInsts)
	}
	st := &FitnessState{
		svc:         s,
		m:           m,
		preds:       make([]float64, len(s.meas)),
		pendingInst: -1,
	}
	s.evals.Add(1)
	if s.pred != nil {
		d, err := s.davgGeneric(m, st.preds)
		if err != nil {
			return nil, err
		}
		st.fit = Fitness{Davg: d, Volume: m.Volume()}
		return st, nil
	}
	st.fit = Fitness{Davg: s.davgFast(&st.sc, m, st.preds), Volume: m.Volume()}
	s.maybeGrowMemo()
	return st, nil
}

// Fitness returns the fitness of the last committed evaluation.
func (st *FitnessState) Fitness() Fitness { return st.fit }

// Mapping returns the mapping the state tracks.
func (st *FitnessState) Mapping() *portmap.Mapping { return st.m }

// EvaluateDelta re-evaluates the state's mapping after the caller
// changed instruction inst, re-predicting only the experiments that
// contain inst. It counts as one (delta) evaluation. The result is
// pending until Commit: rejecting the edit means reverting the mapping
// and simply not committing.
func (s *Service) EvaluateDelta(st *FitnessState, inst int) (Fitness, error) {
	if st == nil || st.svc != s {
		return Fitness{}, fmt.Errorf("engine: fitness state does not belong to this service")
	}
	if inst < 0 || inst >= st.m.NumInsts() {
		return Fitness{}, fmt.Errorf("engine: instruction %d out of range (mapping covers %d)", inst, st.m.NumInsts())
	}
	st.pendingInst = -1 // invalidate until this evaluation completes
	// Instructions beyond the experiment set (NewState admits oversized
	// mappings) occur in no experiment: only the volume can change.
	var touched []int32
	if inst < s.numInsts {
		touched = s.instExps[inst]
	}
	if cap(st.pendingPreds) < len(touched) {
		st.pendingPreds = make([]float64, len(touched))
	}
	st.pendingPreds = st.pendingPreds[:len(touched)]

	if s.pred != nil {
		for k, j := range touched {
			pred, err := s.pred.Predict(st.m, s.experiment(int(j)))
			if err != nil {
				return Fitness{}, fmt.Errorf("engine: %s on experiment %d: %w", s.pred.Name(), j, err)
			}
			st.pendingPreds[k] = pred
		}
	} else {
		// The scratch's derived per-instruction data is keyed by
		// decomposition fingerprint, so the edited instruction's table
		// rebuilds itself and everything else stays valid across probes.
		t := s.memo.Load()
		if t != nil {
			st.sc.ensure(s.numInsts, st.m.NumPorts)
		}
		for k, j := range touched {
			st.pendingPreds[k] = s.predictOne(&st.sc, t, st.m, int(j))
		}
		s.flushMemoCounters(&st.sc)
	}

	// Re-accumulate the error sum over all experiments in order —
	// O(#experiments) float operations, zero throughput predictions for
	// untouched experiments — so Davg stays bit-identical to a full
	// evaluation.
	sum := 0.0
	ti := 0
	for j, meas := range s.meas {
		pred := st.preds[j]
		if ti < len(touched) && int(touched[ti]) == j {
			pred = st.pendingPreds[ti]
			ti++
		}
		sum += math.Abs(pred-meas) / meas
	}
	fit := Fitness{Davg: sum / float64(len(s.meas)), Volume: st.m.Volume()}

	st.pendingInst = inst
	st.pendingTouched = touched
	st.pendingFit = fit
	s.evals.Add(1)
	s.deltaEvals.Add(1)
	s.deltaSkipped.Add(int64(len(s.meas) - len(touched)))
	return fit, nil
}

// Commit folds the pending delta evaluation into the state: the state's
// fitness and per-experiment predictions now describe the mapping as
// currently edited. Without a pending delta, Commit is a no-op.
func (st *FitnessState) Commit() {
	if st.pendingInst < 0 {
		return
	}
	for k, j := range st.pendingTouched {
		st.preds[j] = st.pendingPreds[k]
	}
	st.fit = st.pendingFit
	st.pendingInst = -1
}
