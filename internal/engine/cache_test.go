package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"pmevo/internal/portmap"
	"pmevo/internal/throughput"
)

// newServicePair builds two services over the same measured set: one
// with the memo enabled (the default) and one with caching disabled.
func newServicePair(t *testing.T, rng *rand.Rand, numInsts, numPorts int) (*Service, *Service) {
	t.Helper()
	_, set := measuredSet(t, rng, numInsts, numPorts)
	memo, err := NewService(set, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewService(set, ServiceOptions{MemoEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	if memo.memo.Load() == nil {
		t.Fatal("default service has no memo")
	}
	if plain.memo.Load() != nil {
		t.Fatal("MemoEntries < 0 did not disable the memo")
	}
	return memo, plain
}

// TestMemoizedDavgBitIdentical is the central memo property: on random
// mappings — including repeated evaluations of equal mappings, which hit
// the memo — the memoized Davg must be bit-identical to the uncached
// davgWith-style computation.
func TestMemoizedDavgBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	memo, plain := newServicePair(t, rng, 10, 4)
	for trial := 0; trial < 40; trial++ {
		m := portmap.Random(rng, portmap.RandomOptions{NumInsts: 10, NumPorts: 4, MaxUops: 3})
		want, err := plain.Evaluate(m)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 2; rep++ { // rep 1 evaluates through memo hits
			got, err := memo.Evaluate(m)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trial %d rep %d: memoized %+v != uncached %+v", trial, rep, got, want)
			}
			// A structurally equal clone shares all fingerprints and must
			// hit the same memo entries.
			got2, err := memo.Evaluate(m.Clone())
			if err != nil {
				t.Fatal(err)
			}
			if got2 != want {
				t.Fatalf("trial %d rep %d: clone %+v != uncached %+v", trial, rep, got2, want)
			}
		}
	}
	st := memo.Stats()
	if st.MemoHits == 0 {
		t.Error("repeated evaluations produced no memo hits")
	}
	if st.MemoMisses == 0 {
		t.Error("no memo misses recorded")
	}
	if total := st.MemoHits + st.MemoMisses; total != int64(memo.NumExperiments())*int64(memo.Evaluations()) {
		t.Errorf("hits+misses = %d, want experiments*evaluations = %d",
			total, int64(memo.NumExperiments())*int64(memo.Evaluations()))
	}
}

// TestEvaluateDeltaBitIdentical drives random single-instruction edit
// sequences through the NewState/EvaluateDelta/Commit protocol — with
// and without the memo — and checks every pending and committed fitness
// bitwise against a fresh full evaluation of an equal mapping.
func TestEvaluateDeltaBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	memo, plain := newServicePair(t, rng, 9, 4)
	for _, svc := range []*Service{memo, plain} {
		for trial := 0; trial < 12; trial++ {
			m := portmap.Random(rng, portmap.RandomOptions{NumInsts: 9, NumPorts: 4, MaxUops: 3})
			st, err := svc.NewState(m)
			if err != nil {
				t.Fatal(err)
			}
			full, err := plain.Evaluate(m.Clone())
			if err != nil {
				t.Fatal(err)
			}
			if st.Fitness() != full {
				t.Fatalf("trial %d: NewState %+v != full %+v", trial, st.Fitness(), full)
			}
			for edit := 0; edit < 30; edit++ {
				inst := rng.Intn(9)
				j := rng.Intn(len(m.Decomp[inst]))
				// Random probe: bump a count, drop a µop, or add one.
				var revert func()
				switch op := rng.Intn(3); {
				case op == 0:
					orig := m.Decomp[inst][j].Count
					m.SetUopCount(inst, j, orig+1)
					revert = func() { m.SetUopCount(inst, j, orig) }
				case op == 1 && len(m.Decomp[inst]) > 1:
					uc := m.RemoveUopAt(inst, j)
					revert = func() { m.InsertUopAt(inst, j, uc) }
				default:
					ports := portmap.RandomPortSet(rng, 4)
					before := append([]portmap.UopCount(nil), m.Decomp[inst]...)
					m.AddUop(inst, ports, 1+rng.Intn(2))
					revert = func() { m.SetDecomp(inst, before) }
				}
				fit, err := svc.EvaluateDelta(st, inst)
				if err != nil {
					t.Fatal(err)
				}
				want, err := plain.Evaluate(m.Clone())
				if err != nil {
					t.Fatal(err)
				}
				if fit != want {
					t.Fatalf("trial %d edit %d: delta %+v != full %+v", trial, edit, fit, want)
				}
				if rng.Intn(2) == 0 {
					st.Commit()
					if st.Fitness() != want {
						t.Fatalf("trial %d edit %d: committed %+v != full %+v", trial, edit, st.Fitness(), want)
					}
				} else {
					revert()
				}
			}
			// After the edit sequence the state must still agree with a
			// fresh full evaluation (one more delta on a no-op edit).
			m.SetUopCount(0, 0, m.Decomp[0][0].Count+1)
			fit, err := svc.EvaluateDelta(st, 0)
			if err != nil {
				t.Fatal(err)
			}
			want, err := plain.Evaluate(m.Clone())
			if err != nil {
				t.Fatal(err)
			}
			if fit != want {
				t.Fatalf("trial %d: final delta %+v != full %+v", trial, fit, want)
			}
		}
	}
	if memo.Stats().DeltaEvaluations == 0 || plain.Stats().DeltaEvaluations == 0 {
		t.Error("no delta evaluations recorded")
	}
	if memo.Stats().DeltaExperimentsSkipped == 0 {
		t.Error("delta evaluation skipped no experiments on §4.1-style sets")
	}
}

// TestEvaluateDeltaGenericPredictor runs the delta protocol through a
// generic (non-fast-path) engine and checks it against full generic
// evaluations.
func TestEvaluateDeltaGenericPredictor(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	_, set := measuredSet(t, rng, 6, 3)
	union, err := ByName("union")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(set, ServiceOptions{Predictor: union})
	if err != nil {
		t.Fatal(err)
	}
	m := portmap.Random(rng, portmap.RandomOptions{NumInsts: 6, NumPorts: 3, MaxUops: 2})
	st, err := svc.NewState(m)
	if err != nil {
		t.Fatal(err)
	}
	for edit := 0; edit < 10; edit++ {
		inst := rng.Intn(6)
		m.SetUopCount(inst, 0, m.Decomp[inst][0].Count+1)
		fit, err := svc.EvaluateDelta(st, inst)
		if err != nil {
			t.Fatal(err)
		}
		st.Commit()
		want, err := svc.Evaluate(m)
		if err != nil {
			t.Fatal(err)
		}
		if fit != want {
			t.Fatalf("edit %d: generic delta %+v != full %+v", edit, fit, want)
		}
	}
}

// TestEvaluateDeltaValidation covers the error paths of the delta API.
func TestEvaluateDeltaValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	_, set := measuredSet(t, rng, 5, 3)
	svc, err := NewService(set, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewService(set, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.NewState(portmap.NewMapping(2, 3)); err == nil {
		t.Error("undersized mapping accepted")
	}
	m := portmap.Random(rng, portmap.RandomOptions{NumInsts: 5, NumPorts: 3})
	st, err := svc.NewState(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.EvaluateDelta(st, -1); err == nil {
		t.Error("negative instruction accepted")
	}
	if _, err := svc.EvaluateDelta(st, 99); err == nil {
		t.Error("out-of-range instruction accepted")
	}
	if _, err := other.EvaluateDelta(st, 0); err == nil {
		t.Error("foreign fitness state accepted")
	}
	st.Commit() // no pending delta: must be a no-op
	if st.Mapping() != m {
		t.Error("Mapping() does not return the tracked mapping")
	}
}

// TestMemoConcurrentEvaluation hammers one memoized service from many
// goroutines over a small pool of shared mappings; under -race this
// verifies the lock-free memo and the pure fingerprint reads, and every
// result must match the uncached reference.
func TestMemoConcurrentEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	memo, plain := newServicePair(t, rng, 8, 4)
	mappings := make([]*portmap.Mapping, 6)
	want := make([]Fitness, len(mappings))
	for i := range mappings {
		mappings[i] = portmap.Random(rng, portmap.RandomOptions{NumInsts: 8, NumPorts: 4, MaxUops: 2})
		f, err := plain.Evaluate(mappings[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = f
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				k := (g + iter) % len(mappings)
				got, err := memo.Evaluate(mappings[k])
				if err != nil {
					t.Errorf("Evaluate: %v", err)
					return
				}
				if got != want[k] {
					t.Errorf("concurrent memoized Evaluate diverged: %+v != %+v", got, want[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Batched evaluation over a population with many duplicates.
	pop := make([]*portmap.Mapping, 64)
	fits := make([]Fitness, len(pop))
	for i := range pop {
		pop[i] = mappings[i%len(mappings)]
	}
	if err := memo.EvaluateAll(context.Background(), pop, fits); err != nil {
		t.Fatal(err)
	}
	for i := range pop {
		if fits[i] != want[i%len(mappings)] {
			t.Fatalf("batch %d: %+v != %+v", i, fits[i], want[i%len(mappings)])
		}
	}
}

// TestInvertedIndex checks the instruction → experiments index against a
// direct scan.
func TestInvertedIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	_, set := measuredSet(t, rng, 7, 3)
	svc, err := NewService(set, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for inst := 0; inst < 7; inst++ {
		var want []int32
		for i, m := range set.Measurements {
			for _, term := range m.Exp {
				if term.Inst == inst {
					want = append(want, int32(i))
					break
				}
			}
		}
		got := svc.instExps[inst]
		if len(got) != len(want) {
			t.Fatalf("inst %d: index has %d experiments, want %d", inst, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("inst %d: index[%d] = %d, want %d", inst, k, got[k], want[k])
			}
		}
		if svc.ExperimentsWith(inst) != len(want) {
			t.Fatalf("ExperimentsWith(%d) = %d, want %d", inst, svc.ExperimentsWith(inst), len(want))
		}
		// §4.1 sets are pair experiments: the per-instruction slice must
		// be a strict subset of all experiments.
		if len(got) >= svc.NumExperiments() {
			t.Fatalf("inst %d: index not sparse (%d of %d)", inst, len(got), svc.NumExperiments())
		}
	}
}

// TestNegativeCountRejected: NewService must reject negative experiment
// counts (the parts-based fast path relies on non-negative masses).
func TestNegativeCountRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	_, set := measuredSet(t, rng, 4, 3)
	set.Measurements[0].Exp = portmap.Experiment{{Inst: 0, Count: -1}}
	if _, err := NewService(set, ServiceOptions{}); err == nil {
		t.Error("negative experiment count accepted")
	}
}

// TestEvaluateDeltaOversizedMapping: NewState admits mappings covering
// more instructions than the experiment set; probing and committing an
// edit on an extra instruction (which occurs in no experiment) must
// change only the volume — and must not crash.
func TestEvaluateDeltaOversizedMapping(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	_, set := measuredSet(t, rng, 4, 3)
	svc, err := NewService(set, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := portmap.Random(rng, portmap.RandomOptions{NumInsts: 6, NumPorts: 3, MaxUops: 2})
	st, err := svc.NewState(m)
	if err != nil {
		t.Fatal(err)
	}
	base := st.Fitness()
	m.SetUopCount(5, 0, m.Decomp[5][0].Count+1)
	fit, err := svc.EvaluateDelta(st, 5)
	if err != nil {
		t.Fatal(err)
	}
	st.Commit()
	if fit.Davg != base.Davg {
		t.Errorf("editing an unused instruction changed Davg: %v -> %v", base.Davg, fit.Davg)
	}
	if fit.Volume != m.Volume() {
		t.Errorf("Volume = %d, want %d", fit.Volume, m.Volume())
	}
	if _, err := svc.EvaluateDelta(st, 6); err == nil {
		t.Error("instruction beyond the mapping accepted")
	}
}

// failingPredictor errors on every experiment after the first `allow`
// predictions.
type failingPredictor struct {
	allow int
	seen  int
}

func (p *failingPredictor) Name() string { return "failing" }

func (p *failingPredictor) Predict(m *portmap.Mapping, e portmap.Experiment) (float64, error) {
	p.seen++
	if p.seen > p.allow {
		return 0, fmt.Errorf("induced failure")
	}
	return throughput.OfExperiment(m, e), nil
}

func (p *failingPredictor) PredictAll(m *portmap.Mapping, es []portmap.Experiment, out []float64) error {
	for i, e := range es {
		v, err := p.Predict(m, e)
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}

// TestEvaluateDeltaErrorInvalidatesPending: a failed EvaluateDelta must
// leave no pending delta, so a stray Commit cannot fold partial
// predictions into the state.
func TestEvaluateDeltaErrorInvalidatesPending(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	_, set := measuredSet(t, rng, 4, 3)
	pred := &failingPredictor{allow: 1 << 30}
	svc, err := NewService(set, ServiceOptions{Predictor: pred})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewService(set, ServiceOptions{MemoEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	m := portmap.Random(rng, portmap.RandomOptions{NumInsts: 4, NumPorts: 3, MaxUops: 2})
	st, err := svc.NewState(m)
	if err != nil {
		t.Fatal(err)
	}
	pred.allow = pred.seen + 1 // next delta fails partway through
	m.SetUopCount(0, 0, m.Decomp[0][0].Count+1)
	if _, err := svc.EvaluateDelta(st, 0); err == nil {
		t.Fatal("induced failure did not surface")
	}
	m.SetUopCount(0, 0, m.Decomp[0][0].Count-1) // revert the edit
	st.Commit()                                 // must be a no-op
	want, err := plain.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fitness() != want {
		t.Errorf("state corrupted after failed delta: %+v != %+v", st.Fitness(), want)
	}
	pred.allow = 1 << 30
	fit, err := svc.EvaluateDelta(st, 0) // the no-op edit: same mapping
	if err != nil {
		t.Fatal(err)
	}
	if fit != want {
		t.Errorf("recovered delta %+v != full %+v", fit, want)
	}
}

// TestAdaptiveMemoGrowth drives enough distinct candidates through an
// auto-sized service to trigger growth, and checks that growth happened,
// is bounded, and never changes results (bit-equality against both a
// cache-disabled service and a pinned-size service).
func TestAdaptiveMemoGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	_, set := measuredSet(t, rng, 12, 6)
	auto, err := NewService(set, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := auto.Stats().MemoEntries; got != autoMemoFloor {
		t.Fatalf("auto memo starts at %d slots, want %d", got, autoMemoFloor)
	}
	pinned, err := NewService(set, ServiceOptions{MemoEntries: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	if pinned.memoAuto {
		t.Fatal("pinned size must not adapt")
	}
	plain, err := NewService(set, ServiceOptions{MemoEntries: -1})
	if err != nil {
		t.Fatal(err)
	}

	// Each batch of distinct random mappings floods the memo with
	// distinct keys; the window heuristic must grow the table.
	for batch := 0; batch < 4; batch++ {
		ms := make([]*portmap.Mapping, 48)
		for i := range ms {
			ms[i] = portmap.Random(rng, portmap.RandomOptions{NumInsts: 12, NumPorts: 6, MaxUops: 3})
		}
		want := make([]Fitness, len(ms))
		if err := plain.EvaluateAll(context.Background(), ms, want); err != nil {
			t.Fatal(err)
		}
		for _, svc := range []*Service{auto, pinned} {
			got := make([]Fitness, len(ms))
			if err := svc.EvaluateAll(context.Background(), ms, got); err != nil {
				t.Fatal(err)
			}
			for i := range ms {
				if got[i] != want[i] {
					t.Fatalf("batch %d mapping %d: %+v != uncached %+v", batch, i, got[i], want[i])
				}
			}
		}
	}

	st := auto.Stats()
	if st.MemoResizes < 1 {
		t.Errorf("auto memo never grew (misses=%d, entries=%d)", st.MemoMisses, st.MemoEntries)
	}
	if st.MemoEntries <= autoMemoFloor || st.MemoEntries > autoMemoCeil {
		t.Errorf("auto memo entries = %d, want in (%d, %d]", st.MemoEntries, autoMemoFloor, autoMemoCeil)
	}
	if pst := pinned.Stats(); pst.MemoResizes != 0 || pst.MemoEntries != 1<<15 {
		t.Errorf("pinned memo changed size: %+v", pst)
	}
	if plain.Stats().MemoEntries != 0 {
		t.Error("disabled memo reports entries")
	}
}
