package engine

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"pmevo/internal/cachestore"
	"pmevo/internal/exp"
	"pmevo/internal/portmap"
)

// TestMemoWarmStartBitIdentical is the engine half of the persistence
// golden test: a service warm-started from another service's memo
// snapshot must produce bit-identical fitness for every candidate,
// serve the repeats from disk-warm entries (counted as MemoWarmHits),
// and a snapshot round-tripped through the on-disk store must behave
// identically to the in-memory one.
func TestMemoWarmStartBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	_, set := measuredSet(t, rng, 10, 4)
	cold, err := NewService(set, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var ms []*portmap.Mapping
	for i := 0; i < 12; i++ {
		ms = append(ms, portmap.Random(rng, portmap.RandomOptions{NumInsts: 10, NumPorts: 4, MaxUops: 3}))
	}
	want := make([]Fitness, len(ms))
	if err := cold.EvaluateAll(context.Background(), ms, want); err != nil {
		t.Fatal(err)
	}
	snap := cold.MemoSnapshot()
	if len(snap) == 0 {
		t.Fatal("cold service produced an empty memo snapshot")
	}
	if cold.Stats().MemoWarmEntries != 0 || cold.Stats().MemoWarmHits != 0 {
		t.Fatalf("cold service reports warm traffic: %+v", cold.Stats())
	}

	// Round-trip the snapshot through the on-disk store.
	path := filepath.Join(t.TempDir(), "fitness-memo.pmc")
	if err := SaveMemo(path, set, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMemo(path, set)
	if err != nil || len(loaded) != len(snap) {
		t.Fatalf("LoadMemo: %d of %d entries, err %v", len(loaded), len(snap), err)
	}

	warm, err := NewService(set, ServiceOptions{MemoWarm: loaded})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]Fitness, len(ms))
	if err := warm.EvaluateAll(context.Background(), ms, got); err != nil {
		t.Fatal(err)
	}
	for i := range ms {
		if got[i] != want[i] {
			t.Fatalf("candidate %d: warm %+v != cold %+v", i, got[i], want[i])
		}
	}
	st := warm.Stats()
	if st.MemoWarmEntries == 0 {
		t.Error("warm service reports no seeded entries")
	}
	if st.MemoWarmHits == 0 {
		t.Error("warm service served no disk-warm hits on a repeated batch")
	}
	if st.MemoWarmHits > st.MemoHits {
		t.Errorf("warm hits %d exceed total hits %d", st.MemoWarmHits, st.MemoHits)
	}
	// The direct-mapped table overwrites colliding keys, so a snapshot
	// is not a complete key set — but a warm start must still eliminate
	// the bulk of the cold run's misses.
	if cs := cold.Stats(); st.MemoMisses*2 >= cs.MemoMisses {
		t.Errorf("warm misses %d not well below cold misses %d", st.MemoMisses, cs.MemoMisses)
	}
}

// TestLoadMemoRejectsForeignSet: a memo spilled against one experiment
// set must load as empty against any other (expSalt keys are positional,
// so cross-set reuse would be unsound even when it would mostly miss).
func TestLoadMemoRejectsForeignSet(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	_, setA := measuredSet(t, rng, 8, 4)
	_, setB := measuredSet(t, rng, 8, 4)
	if ExpSetFingerprint(setA) == ExpSetFingerprint(setB) {
		t.Fatal("distinct sets share a fingerprint")
	}
	svc, err := NewService(setA, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := portmap.Random(rng, portmap.RandomOptions{NumInsts: 8, NumPorts: 4, MaxUops: 2})
	if _, err := svc.Evaluate(m); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fitness-memo.pmc")
	if err := SaveMemo(path, setA, svc.MemoSnapshot()); err != nil {
		t.Fatal(err)
	}
	if entries, err := LoadMemo(path, setB); len(entries) != 0 || !errors.Is(err, cachestore.ErrContentKey) {
		t.Fatalf("foreign-set load returned %d entries (err %v)", len(entries), err)
	}
	if entries, err := LoadMemo(path, setA); len(entries) == 0 || err != nil {
		t.Fatalf("same-set load failed: %d entries, err %v", len(entries), err)
	}
}

// TestExpSetFingerprintSensitivity: the content key must change when any
// component of the set changes — instruction count, terms, or the exact
// bits of a measured throughput.
func TestExpSetFingerprintSensitivity(t *testing.T) {
	base := &exp.Set{
		NumInsts:   2,
		Individual: []float64{1, 2},
		Measurements: []exp.Measurement{
			{Exp: portmap.Experiment{{Inst: 0, Count: 1}}, Throughput: 1},
			{Exp: portmap.Experiment{{Inst: 1, Count: 2}}, Throughput: 2},
		},
	}
	fp := ExpSetFingerprint(base)
	mutations := []func(*exp.Set){
		func(s *exp.Set) { s.NumInsts = 3 },
		func(s *exp.Set) { s.Individual[1] = 2.5 },
		func(s *exp.Set) { s.Measurements[0].Throughput = 1.0000000001 },
		func(s *exp.Set) { s.Measurements[1].Exp[0].Count = 3 },
		func(s *exp.Set) { s.Measurements[1].Exp[0].Inst = 0 },
		func(s *exp.Set) { s.Measurements = s.Measurements[:1] },
	}
	for i, mutate := range mutations {
		clone := &exp.Set{
			NumInsts:   base.NumInsts,
			Individual: append([]float64(nil), base.Individual...),
		}
		for _, m := range base.Measurements {
			clone.Measurements = append(clone.Measurements, exp.Measurement{
				Exp:        append(portmap.Experiment(nil), m.Exp...),
				Throughput: m.Throughput,
			})
		}
		mutate(clone)
		if ExpSetFingerprint(clone) == fp {
			t.Errorf("mutation %d did not change the set fingerprint", i)
		}
	}
}
