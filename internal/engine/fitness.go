package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"pmevo/internal/cachetable"
	"pmevo/internal/exp"
	"pmevo/internal/portmap"
	"pmevo/internal/runctrl"
	"pmevo/internal/throughput"
)

// Fitness holds the two §4.4 objectives of one candidate mapping: the
// average relative prediction error Davg over the measured experiment
// set, and the µop volume V.
type Fitness struct {
	Davg   float64
	Volume int
}

// ServiceOptions configures a fitness-evaluation Service.
type ServiceOptions struct {
	// Workers is the parallelism of EvaluateAll (<= 0: GOMAXPROCS).
	Workers int
	// Predictor selects the throughput engine. nil selects the built-in
	// bottleneck fast path, which evaluates with zero allocation,
	// per-worker reusable evaluator state, and the shared throughput
	// memo; any other engine goes through the generic Predict interface
	// (no memoization).
	Predictor Predictor
	// MemoEntries bounds the shared per-experiment throughput memo
	// (slots, rounded up to a power of two). 0 selects adaptive sizing:
	// the memo starts small and grows — up to a bounded maximum — when
	// the observed miss traffic indicates collision churn (see
	// maybeGrowMemo). Positive values pin the size; negative disables
	// memoization entirely. Sizing never changes results: a smaller
	// table only recomputes more. The memo only accelerates the built-in
	// bottleneck fast path.
	MemoEntries int
	// MemoWarm seeds the memo with entries spilled by a previous run
	// (Service.MemoSnapshot via internal/cachestore), warm-starting
	// evaluation across processes. Keys are content hashes (experiment
	// identity × decomposition fingerprints), so entries from a
	// different experiment set never hit — the persistence layer
	// additionally guards the file with ExpSetFingerprint. Warm entries
	// are the exact floats a fresh evaluation would produce, so results
	// are bit-identical to a cold start; hits on them are counted in
	// CacheStats.MemoWarmHits. Ignored when the memo is disabled.
	MemoWarm []cachetable.Entry
	// FitCacheEntries bounds the cross-generation whole-mapping fitness
	// cache (slots, rounded up to a power of two): FingerprintAll(m) →
	// Davg(m). Where the throughput memo deduplicates per-experiment
	// work inside one evaluation, this cache skips the evaluation of a
	// recurring candidate entirely — across generations, and across the
	// islands of an island-model run sharing one Service. Values are
	// the exact floats a fresh evaluation would produce (the cache holds
	// a pure function of the mapping under the fixed experiment set), so
	// hits never change results. <= 0 disables the cache (the zero-value
	// option keeps the pre-existing Service behavior); consumers opt in
	// with a size (evo.Run uses 2^16 slots by default).
	FitCacheEntries int
	// FitCacheWarm seeds the cross-generation fitness cache with entries
	// from a previous run (Service.FitCacheSnapshot, spilled alongside an
	// evolution checkpoint). Keys are whole-mapping fingerprints and
	// values exact Davg bits, so warm entries are bit-identical to
	// re-evaluating; a resumed run warm-started this way only saves
	// recomputation. Ignored when FitCacheEntries <= 0.
	FitCacheWarm []cachetable.Entry
}

// CacheStats is a snapshot of a Service's evaluation counters. The
// memo/delta counters quantify how much redundant work the caching layer
// eliminated; pmevo-bench's fitness experiment reports them.
type CacheStats struct {
	// Evaluations counts Davg computations: every candidate passed to
	// Evaluate/EvaluateAll/NewState plus every EvaluateDelta probe.
	Evaluations int64
	// DeltaEvaluations counts the EvaluateDelta subset.
	DeltaEvaluations int64
	// MemoHits / MemoMisses count per-experiment memo lookups on the
	// fast path (hits + misses = experiments actually inspected).
	MemoHits   int64
	MemoMisses int64
	// DeltaExperimentsSkipped counts experiments EvaluateDelta did not
	// have to re-predict because the changed instruction does not occur
	// in them.
	DeltaExperimentsSkipped int64
	// MemoEntries is the current memo size in slots (0 when the memo is
	// disabled); MemoResizes counts adaptive growth steps.
	MemoEntries int64
	MemoResizes int64
	// MemoWarmEntries is the number of disk-warm entries the memo was
	// seeded with (ServiceOptions.MemoWarm); MemoWarmHits is the subset
	// of MemoHits served on warm-seeded keys. Attribution is by key:
	// after adaptive growth discards the seeded table, a re-computed
	// entry under a warm key still counts, so treat warm hits as an
	// attribution of keys, not of stored bytes.
	MemoWarmEntries int64
	MemoWarmHits    int64
	// FitCacheHits / FitCacheMisses count cross-generation fitness-cache
	// lookups (FitnessCacheGet): a hit skipped one whole candidate
	// evaluation; FitCacheEntries is the cache size in slots (0 when
	// disabled). Cross-generation hit rate = hits / (hits + misses).
	FitCacheHits    int64
	FitCacheMisses  int64
	FitCacheEntries int64
}

// Service evaluates candidate port mappings against a fixed measured
// experiment set. It is the fitness-evaluation layer of the evolutionary
// algorithm (§4.4/§4.5). Construction pre-flattens the experiment set
// into contiguous storage and builds an inverted index (instruction →
// experiments containing it); batched evaluation fans out over a worker
// pool whose workers each own reusable evaluator state, so the
// per-candidate hot loop allocates nothing.
//
// Two layers make the hot loop sublinear in redundant work:
//
//   - a bounded, shared, lock-free throughput memo keyed by the
//     decomposition-fingerprint tuple of each experiment's instructions:
//     duplicate decompositions across the 2p candidates of a generation
//     (recombined children share µop decompositions with their parents)
//     are evaluated once;
//   - the incremental NewState/EvaluateDelta API: re-evaluating after a
//     single-instruction change only re-predicts the experiments that
//     contain the changed instruction, turning a local-search probe from
//     O(#experiments) into O(#experiments containing the instruction).
//
// Both layers are bit-exact: memoized values are the exact floats a
// fresh evaluation would produce (fingerprint equality stands in for
// decomposition equality at ~2^-64 collision odds), and delta evaluation
// re-accumulates the error sum in experiment order, so Davg is
// bit-identical to a full evaluation.
//
// Evaluate may be called concurrently; EvaluateAll runs one batch at a
// time (per-worker state is reused across batches).
type Service struct {
	workers  int
	numInsts int
	pred     Predictor // nil: bottleneck fast path

	// Pre-flattened experiment set: experiment i is
	// terms[offs[i]:offs[i+1]] with measured throughput meas[i].
	terms []portmap.InstCount
	offs  []int32
	meas  []float64

	// instExps is the inverted index: instExps[i] lists (sorted,
	// deduplicated) the experiments whose multiset contains instruction
	// i. EvaluateDelta re-predicts exactly these.
	instExps [][]int32

	// expSalt[i] seeds experiment i's memo key, so equal fingerprint
	// tuples of different experiments (different counts) never alias.
	expSalt []uint64
	// memo is nil-pointer-valued when memoization is disabled. With
	// adaptive sizing (memoAuto) the table is replaced wholesale on
	// growth — readers hold whatever table they loaded, which is safe:
	// the table is a cache of a pure function.
	memo     atomic.Pointer[memoTable]
	memoAuto bool
	memoMax  int
	// warmKeys is the read-only set of memo keys seeded from
	// ServiceOptions.MemoWarm, for warm-hit attribution; nil when no
	// warm start was requested (the common case — the hit path then
	// pays only a nil check).
	warmKeys    map[uint64]struct{}
	warmEntries int

	// fitCache is the cross-generation whole-mapping fitness cache
	// (FingerprintAll → Davg bits); nil when disabled. Like the memo it
	// is a bounded, lock-free cache of a pure function, shared by every
	// goroutine — and every island — evaluating against this Service.
	fitCache *cachetable.Table

	workerSc []evalScratch // per-worker state for EvaluateAll
	pool     sync.Pool     // *evalScratch for Evaluate

	evals        atomic.Int64
	deltaEvals   atomic.Int64
	memoHits     atomic.Int64
	memoMisses   atomic.Int64
	memoWarmHits atomic.Int64
	deltaSkipped atomic.Int64
	memoResizes  atomic.Int64
	fitHits      atomic.Int64
	fitMisses    atomic.Int64
	// missesAtGrow remembers the total miss count at the last growth
	// decision, so maybeGrowMemo reasons about a window of traffic.
	missesAtGrow atomic.Int64
}

// maxTableFastPorts gates the per-instruction subset-sum-table fast
// path: tables have 2^|P| entries per instruction, so the path is
// restricted to realistic port counts (the paper's machines have ≤ 10).
// Wider mappings fall back to the pre-flattened-terms path.
const maxTableFastPorts = 11

// evalScratch is one worker's reusable evaluation state: the throughput
// evaluator plus per-instruction derived data — subset-sum unit tables
// and pre-flattened unit mass terms — keyed by decomposition
// fingerprint, so they are (re)built only when an instruction's
// decomposition actually differs from the one last seen by this worker.
// Experiments sharing an instruction reuse them within a candidate, and
// candidates sharing decompositions reuse them across the batch.
type evalScratch struct {
	ev throughput.Evaluator

	k       int      // port count the tables are built for
	tblFp   []uint64 // fingerprint each table was built from (0: none)
	tblUsed []portmap.PortSet
	tblInf  []bool
	tables  [][]float64
	tparts  []throughput.TablePart

	unitFp []uint64 // fingerprint each unit-term list was built from
	unit   [][]portmap.MassTerm
	parts  []throughput.Part

	hits int64 // memo counters, flushed per candidate
	miss int64
	warm int64 // hits on disk-warm keys (subset of hits)
}

// ensure sizes the scratch for the instruction count and invalidates the
// tables if the port universe changed.
func (sc *evalScratch) ensure(numInsts, numPorts int) {
	if len(sc.tblFp) < numInsts {
		sc.tblFp = make([]uint64, numInsts)
		sc.tblUsed = make([]portmap.PortSet, numInsts)
		sc.tblInf = make([]bool, numInsts)
		sc.tables = make([][]float64, numInsts)
		sc.unitFp = make([]uint64, numInsts)
		sc.unit = make([][]portmap.MassTerm, numInsts)
	}
	if sc.k != numPorts {
		sc.k = numPorts
		clear(sc.tblFp) // unit terms are port-independent and stay valid
	}
}

// tableFor returns instruction inst's unit subset-sum table under m (as
// a ready TablePart minus the scale), rebuilding it only if the cached
// table was built from a different decomposition.
func (sc *evalScratch) tableFor(m *portmap.Mapping, inst, size int) throughput.TablePart {
	fp := m.Fingerprint(inst)
	if sc.tblFp[inst] == fp {
		return throughput.TablePart{Table: sc.tables[inst], Used: sc.tblUsed[inst], Inf: sc.tblInf[inst]}
	}
	t := sc.tables[inst]
	if cap(t) < size {
		t = make([]float64, size)
	}
	t = t[:size]
	used, inf := throughput.BuildUnitTable(t, m.Decomp[inst], sc.k)
	sc.tables[inst] = t
	sc.tblFp[inst] = fp
	sc.tblUsed[inst] = used
	sc.tblInf[inst] = inf
	return throughput.TablePart{Table: t, Used: used, Inf: inf}
}

// unitFor returns instruction inst's pre-flattened unit mass terms (its
// µop decomposition with Mass = µop count), rebuilding only on
// fingerprint change.
func (sc *evalScratch) unitFor(m *portmap.Mapping, inst int) []portmap.MassTerm {
	fp := m.Fingerprint(inst)
	if sc.unitFp[inst] == fp {
		return sc.unit[inst]
	}
	u := sc.unit[inst][:0]
	for _, uc := range m.Decomp[inst] {
		u = append(u, portmap.MassTerm{Ports: uc.Ports, Mass: float64(uc.Count)})
	}
	sc.unit[inst] = u
	sc.unitFp[inst] = fp
	return u
}

// Adaptive memo sizing (ServiceOptions.MemoEntries == 0): the table
// starts at the floor and quadruples — up to the ceiling — whenever a
// traffic window records more misses than ¾ of the table's slots, the
// signature of distinct keys churning through a too-small direct-mapped
// cache. Small inference runs stay at a few KiB; population-scale runs
// grow to collision-free sizes within a generation or two. Resizing
// discards the old table's entries, which costs only recomputation:
// memoized values are exact, so results are bit-identical at any size.
const (
	autoMemoFloor      = 1 << 12
	autoMemoCeil       = 1 << 20
	autoMemoGrowFactor = 4
)

// NewService compiles the measured experiment set into a Service.
func NewService(set *exp.Set, opts ServiceOptions) (*Service, error) {
	if set == nil || set.NumInsts == 0 {
		return nil, errors.New("engine: empty instruction set")
	}
	if len(set.Measurements) == 0 {
		return nil, errors.New("engine: no measurements")
	}
	workers := Workers(opts.Workers)
	s := &Service{
		workers:  workers,
		numInsts: set.NumInsts,
		pred:     opts.Predictor,
		offs:     make([]int32, 1, len(set.Measurements)+1),
		meas:     make([]float64, 0, len(set.Measurements)),
		instExps: make([][]int32, set.NumInsts),
		workerSc: make([]evalScratch, workers),
	}
	for i, m := range set.Measurements {
		if m.Throughput <= 0 {
			return nil, fmt.Errorf("engine: measurement %d has non-positive throughput %g", i, m.Throughput)
		}
		for _, t := range m.Exp {
			if t.Inst < 0 || t.Inst >= set.NumInsts {
				return nil, fmt.Errorf("engine: measurement %d references instruction %d outside 0..%d",
					i, t.Inst, set.NumInsts-1)
			}
			if t.Count < 0 {
				return nil, fmt.Errorf("engine: measurement %d has negative count %d for instruction %d",
					i, t.Count, t.Inst)
			}
		}
		s.terms = append(s.terms, m.Exp...)
		s.offs = append(s.offs, int32(len(s.terms)))
		s.meas = append(s.meas, m.Throughput)
	}

	// Inverted index: experiments are visited in order, so each list is
	// sorted; consecutive-duplicate suppression handles instructions
	// appearing in several terms of one (un-normalized) experiment.
	for i := range s.meas {
		for _, t := range s.experiment(i) {
			lst := s.instExps[t.Inst]
			if len(lst) == 0 || lst[len(lst)-1] != int32(i) {
				s.instExps[t.Inst] = append(lst, int32(i))
			}
		}
	}

	if opts.MemoEntries >= 0 && opts.Predictor == nil {
		entries := opts.MemoEntries
		if entries == 0 {
			entries = autoMemoFloor
			s.memoAuto = true
			s.memoMax = autoMemoCeil
			// A warm start should not begin with the seeded entries
			// evicting each other in a floor-sized table: open with
			// room for them (adaptive growth takes over from there).
			for entries < autoMemoCeil && entries < 2*len(opts.MemoWarm) {
				entries *= autoMemoGrowFactor
			}
		}
		t := newMemoTable(entries)
		if len(opts.MemoWarm) > 0 {
			s.warmEntries = t.t.LoadEntries(opts.MemoWarm)
			s.warmKeys = make(map[uint64]struct{}, len(opts.MemoWarm))
			for _, e := range opts.MemoWarm {
				if e.Key != 0 {
					s.warmKeys[e.Key] = struct{}{}
				}
			}
		}
		s.memo.Store(t)
		s.expSalt = make([]uint64, len(s.meas))
		for i := range s.expSalt {
			s.expSalt[i] = portmap.CombineFingerprints(0xa0761d6478bd642f, uint64(i)+1)
		}
	}
	if opts.FitCacheEntries > 0 {
		s.fitCache = cachetable.New(opts.FitCacheEntries)
		s.fitCache.LoadEntries(opts.FitCacheWarm)
	}
	return s, nil
}

// FitnessCacheGet looks a candidate up in the cross-generation fitness
// cache by its whole-mapping fingerprint (portmap.Mapping.FingerprintAll)
// and returns the memoized Davg. The volume is not stored: it is an
// exact integer recomputed in O(#µops) by the caller (Mapping.Volume),
// far cheaper than one throughput prediction. Lookups are counted in
// CacheStats.FitCacheHits/FitCacheMisses; with the cache disabled every
// lookup is a (free, uncounted) miss.
func (s *Service) FitnessCacheGet(fp uint64) (float64, bool) {
	if s.fitCache == nil {
		return 0, false
	}
	if fp == 0 {
		fp = 1 // FingerprintAll never returns 0, but keep the key contract local
	}
	v, ok := s.fitCache.Get(fp)
	if !ok {
		s.fitMisses.Add(1)
		return 0, false
	}
	s.fitHits.Add(1)
	return math.Float64frombits(v), true
}

// FitnessCachePut stores a freshly evaluated candidate's Davg under its
// whole-mapping fingerprint. The stored float is exactly what a future
// evaluation would produce, so a later hit is bit-identical to
// re-evaluating.
func (s *Service) FitnessCachePut(fp uint64, davg float64) {
	if s.fitCache == nil {
		return
	}
	if fp == 0 {
		fp = 1
	}
	s.fitCache.Put(fp, math.Float64bits(davg))
}

// MemoSnapshot returns the memo's live entries for persistence
// (engine.SaveMemo → internal/cachestore). Call at a quiesce point —
// after a run completes — never concurrently with evaluation (see
// cachetable.Snapshot). Returns nil when the memo is disabled.
func (s *Service) MemoSnapshot() []cachetable.Entry {
	t := s.memo.Load()
	if t == nil {
		return nil
	}
	return t.t.Snapshot()
}

// FitCacheSnapshot returns the cross-generation fitness cache's live
// entries for persistence (engine.SaveFitCache alongside an evolution
// checkpoint). Like MemoSnapshot, call only at a quiesce point. Returns
// nil when the cache is disabled.
func (s *Service) FitCacheSnapshot() []cachetable.Entry {
	if s.fitCache == nil {
		return nil
	}
	return s.fitCache.Snapshot()
}

// maybeGrowMemo is the adaptive-sizing decision point, called after each
// batch (EvaluateAll/NewState): if the traffic window since the last
// decision produced more misses than ¾ of the current table, the table
// is too small for the workload's distinct-key set and is replaced by a
// larger empty one. The CAS on the window marker makes concurrent
// callers elect a single grower.
func (s *Service) maybeGrowMemo() {
	if !s.memoAuto {
		return
	}
	t := s.memo.Load()
	if t == nil || t.size() >= s.memoMax {
		return
	}
	misses := s.memoMisses.Load()
	last := s.missesAtGrow.Load()
	if misses-last <= int64(t.size())*3/4 {
		return
	}
	if !s.missesAtGrow.CompareAndSwap(last, misses) {
		return
	}
	size := t.size() * autoMemoGrowFactor
	if size > s.memoMax {
		size = s.memoMax
	}
	// CAS on the table itself: a concurrent grower that already replaced
	// t must not be overwritten with a table sized from the stale load
	// (that would discard a populated, possibly larger table).
	if s.memo.CompareAndSwap(t, newMemoTable(size)) {
		s.memoResizes.Add(1)
	}
}

// NumExperiments returns the number of measurements the service
// evaluates against.
func (s *Service) NumExperiments() int { return len(s.meas) }

// ExperimentsWith returns how many experiments contain instruction inst
// (the cost of one EvaluateDelta probe, in throughput predictions).
func (s *Service) ExperimentsWith(inst int) int { return len(s.instExps[inst]) }

// Evaluations returns the number of Davg computations performed so far
// (the paper's cost metric for the bottleneck algorithm's speed).
func (s *Service) Evaluations() int { return int(s.evals.Load()) }

// Stats returns a snapshot of the evaluation counters.
func (s *Service) Stats() CacheStats {
	st := CacheStats{
		Evaluations:             s.evals.Load(),
		DeltaEvaluations:        s.deltaEvals.Load(),
		MemoHits:                s.memoHits.Load(),
		MemoMisses:              s.memoMisses.Load(),
		DeltaExperimentsSkipped: s.deltaSkipped.Load(),
		MemoResizes:             s.memoResizes.Load(),
		MemoWarmEntries:         int64(s.warmEntries),
		MemoWarmHits:            s.memoWarmHits.Load(),
		FitCacheHits:            s.fitHits.Load(),
		FitCacheMisses:          s.fitMisses.Load(),
	}
	if t := s.memo.Load(); t != nil {
		st.MemoEntries = int64(t.size())
	}
	if s.fitCache != nil {
		st.FitCacheEntries = int64(s.fitCache.Len())
	}
	return st
}

// experiment returns the i-th pre-flattened experiment without copying.
func (s *Service) experiment(i int) portmap.Experiment {
	return portmap.Experiment(s.terms[s.offs[i]:s.offs[i+1]])
}

// expKey returns experiment i's memo key under mapping m: a hash of the
// experiment's identity (salt) and the decomposition fingerprints of its
// instructions. Two mappings that agree on the decompositions of the
// experiment's instructions produce the same key — and the same
// throughput.
func (s *Service) expKey(m *portmap.Mapping, i int) uint64 {
	key := s.expSalt[i]
	for _, t := range s.terms[s.offs[i]:s.offs[i+1]] {
		key = portmap.CombineFingerprints(key, m.Fingerprint(t.Inst))
	}
	if key == 0 {
		key = 1 // 0 would read an empty memo slot as a hit
	}
	return key
}

// predictOne predicts experiment i under m on the fast path, through
// memo table t when non-nil (the caller loads the table once per
// candidate, so one growth swap cannot split a candidate's lookups
// between tables). Memo misses evaluate via the per-instruction
// subset-sum tables (or, for wide port universes, the pre-flattened unit
// terms) in sc, which must have been ensured for m. All three routes are
// bit-identical to ThroughputOf.
func (s *Service) predictOne(sc *evalScratch, t *memoTable, m *portmap.Mapping, i int) float64 {
	if t == nil {
		return sc.ev.ThroughputOf(m, s.experiment(i))
	}
	key := s.expKey(m, i)
	if v, ok := t.get(key); ok {
		sc.hits++
		if s.warmKeys != nil {
			if _, warm := s.warmKeys[key]; warm {
				sc.warm++
			}
		}
		return v
	}
	sc.miss++
	var v float64
	if m.NumPorts <= maxTableFastPorts {
		size := 1 << uint(m.NumPorts)
		sc.tparts = sc.tparts[:0]
		for _, t := range s.experiment(i) {
			part := sc.tableFor(m, t.Inst, size)
			part.Scale = float64(t.Count)
			sc.tparts = append(sc.tparts, part)
		}
		v = sc.ev.BottleneckTables(sc.tparts, m.NumPorts)
	} else {
		sc.parts = sc.parts[:0]
		for _, t := range s.experiment(i) {
			sc.parts = append(sc.parts, throughput.Part{Terms: sc.unitFor(m, t.Inst), Scale: float64(t.Count)})
		}
		v = sc.ev.BottleneckParts(sc.parts)
	}
	t.put(key, v)
	return v
}

// davgFast computes Davg(m) on the fast path, optionally capturing the
// per-experiment predictions into preds (len(preds) == NumExperiments).
func (s *Service) davgFast(sc *evalScratch, m *portmap.Mapping, preds []float64) float64 {
	t := s.memo.Load()
	if t != nil {
		sc.ensure(s.numInsts, m.NumPorts)
	}
	sc.hits, sc.miss = 0, 0
	sum := 0.0
	for i, meas := range s.meas {
		pred := s.predictOne(sc, t, m, i)
		if preds != nil {
			preds[i] = pred
		}
		sum += math.Abs(pred-meas) / meas
	}
	s.flushMemoCounters(sc)
	return sum / float64(len(s.meas))
}

// flushMemoCounters folds the scratch's local memo counters into the
// shared stats (batched per candidate to keep atomics off the per-
// experiment path).
func (s *Service) flushMemoCounters(sc *evalScratch) {
	if sc.hits != 0 {
		s.memoHits.Add(sc.hits)
	}
	if sc.miss != 0 {
		s.memoMisses.Add(sc.miss)
	}
	if sc.warm != 0 {
		s.memoWarmHits.Add(sc.warm)
	}
	sc.hits, sc.miss, sc.warm = 0, 0, 0
}

// davgGeneric computes Davg(m) through an arbitrary Predictor,
// optionally capturing the per-experiment predictions into preds.
func (s *Service) davgGeneric(m *portmap.Mapping, preds []float64) (float64, error) {
	sum := 0.0
	for i, meas := range s.meas {
		pred, err := s.pred.Predict(m, s.experiment(i))
		if err != nil {
			return 0, fmt.Errorf("engine: %s on experiment %d: %w", s.pred.Name(), i, err)
		}
		if preds != nil {
			preds[i] = pred
		}
		sum += math.Abs(pred-meas) / meas
	}
	return sum / float64(len(s.meas)), nil
}

// getScratch draws a reusable scratch for concurrent single-candidate
// evaluation; putScratch returns it.
func (s *Service) getScratch() *evalScratch {
	sc, _ := s.pool.Get().(*evalScratch)
	if sc == nil {
		sc = new(evalScratch)
	}
	return sc
}

func (s *Service) putScratch(sc *evalScratch) { s.pool.Put(sc) }

// Evaluate computes the fitness of a single mapping. It is safe for
// concurrent use and counts as one fitness evaluation.
func (s *Service) Evaluate(m *portmap.Mapping) (Fitness, error) {
	s.evals.Add(1)
	if s.pred != nil {
		d, err := s.davgGeneric(m, nil)
		return Fitness{Davg: d, Volume: m.Volume()}, err
	}
	sc := s.getScratch()
	f := Fitness{Davg: s.davgFast(sc, m, nil), Volume: m.Volume()}
	s.putScratch(sc)
	s.maybeGrowMemo()
	return f, nil
}

// EvaluateAll computes the fitness of every mapping in ms in parallel,
// writing results into out (len(out) must equal len(ms)). Cancellation
// is honored between candidates: once ctx is done, no further
// candidates start and the typed interruption error (runctrl.ErrCanceled
// / runctrl.ErrDeadline) is returned; out is then partially filled and
// must be discarded — the caller resumes from its last consistent
// state, which for the evolutionary loop is the previous generation.
func (s *Service) EvaluateAll(ctx context.Context, ms []*portmap.Mapping, out []Fitness) error {
	if len(out) != len(ms) {
		return fmt.Errorf("engine: output length %d does not match batch length %d", len(out), len(ms))
	}
	s.evals.Add(int64(len(ms)))
	if s.pred == nil {
		err := ForEachWorkerCtx(ctx, len(ms), s.workers, func(w, i int) {
			out[i] = Fitness{Davg: s.davgFast(&s.workerSc[w], ms[i], nil), Volume: ms[i].Volume()}
		})
		s.maybeGrowMemo()
		return err
	}
	return ForEachErrCtx(ctx, len(ms), s.workers, func(i int) error {
		d, err := s.davgGeneric(ms[i], nil)
		if err != nil {
			return err
		}
		out[i] = Fitness{Davg: d, Volume: ms[i].Volume()}
		return nil
	})
}

// BatchEvaluator is a serial batch-evaluation handle with its own private
// scratch. Where Service.EvaluateAll runs one batch at a time over the
// shared per-worker scratches, any number of BatchEvaluators may evaluate
// concurrently against the same Service — each island of an island-model
// run owns one and evaluates its sub-population on its own goroutine,
// while still sharing the Service's lock-free throughput memo and
// cross-generation fitness cache (both are bit-exact pure-function
// caches, so sharing never changes results). A BatchEvaluator itself is
// not safe for concurrent use.
//
//pmevo:serial
type BatchEvaluator struct {
	svc *Service
	sc  evalScratch
}

// NewBatchEvaluator returns a serial evaluation handle for this Service.
func (s *Service) NewBatchEvaluator() *BatchEvaluator {
	return &BatchEvaluator{svc: s}
}

// EvaluateAll computes the fitness of every mapping in ms serially on the
// calling goroutine, writing results into out (len(out) must equal
// len(ms)). Results are bit-identical to Service.EvaluateAll.
// Cancellation is honored between candidates, with the same partial-out
// contract as Service.EvaluateAll.
func (b *BatchEvaluator) EvaluateAll(ctx context.Context, ms []*portmap.Mapping, out []Fitness) error {
	s := b.svc
	if len(out) != len(ms) {
		return fmt.Errorf("engine: output length %d does not match batch length %d", len(out), len(ms))
	}
	s.evals.Add(int64(len(ms)))
	if s.pred == nil {
		var err error
		for i, m := range ms {
			if err = runctrl.Check(ctx); err != nil {
				break
			}
			out[i] = Fitness{Davg: s.davgFast(&b.sc, m, nil), Volume: m.Volume()}
		}
		s.maybeGrowMemo()
		return err
	}
	for i, m := range ms {
		if err := runctrl.Check(ctx); err != nil {
			return err
		}
		d, err := s.davgGeneric(m, nil)
		if err != nil {
			return err
		}
		out[i] = Fitness{Davg: d, Volume: m.Volume()}
	}
	return nil
}
