package engine

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"pmevo/internal/exp"
	"pmevo/internal/portmap"
	"pmevo/internal/throughput"
)

// Fitness holds the two §4.4 objectives of one candidate mapping: the
// average relative prediction error Davg over the measured experiment
// set, and the µop volume V.
type Fitness struct {
	Davg   float64
	Volume int
}

// ServiceOptions configures a fitness-evaluation Service.
type ServiceOptions struct {
	// Workers is the parallelism of EvaluateAll (<= 0: GOMAXPROCS).
	Workers int
	// Predictor selects the throughput engine. nil selects the built-in
	// bottleneck fast path, which evaluates with zero allocation and
	// per-worker reusable evaluator state; any other engine goes through
	// the generic Predict interface.
	Predictor Predictor
}

// Service evaluates candidate port mappings against a fixed measured
// experiment set. It is the fitness-evaluation layer of the
// evolutionary algorithm (§4.4/§4.5): construction pre-flattens the
// experiment set into contiguous storage, and batched evaluation fans
// out over a worker pool whose workers each own a reusable
// throughput.Evaluator, so the per-candidate hot loop allocates
// nothing.
//
// Evaluate may be called concurrently; EvaluateAll runs one batch at a
// time (per-worker state is reused across batches).
type Service struct {
	workers int
	pred    Predictor // nil: bottleneck fast path

	// Pre-flattened experiment set: experiment i is
	// terms[offs[i]:offs[i+1]] with measured throughput meas[i].
	terms []portmap.InstCount
	offs  []int32
	meas  []float64

	workerEv []throughput.Evaluator // per-worker state for EvaluateAll
	pool     sync.Pool              // *throughput.Evaluator for Evaluate
	evals    atomic.Int64
}

// NewService compiles the measured experiment set into a Service.
func NewService(set *exp.Set, opts ServiceOptions) (*Service, error) {
	if set == nil || set.NumInsts == 0 {
		return nil, errors.New("engine: empty instruction set")
	}
	if len(set.Measurements) == 0 {
		return nil, errors.New("engine: no measurements")
	}
	workers := Workers(opts.Workers)
	s := &Service{
		workers:  workers,
		pred:     opts.Predictor,
		offs:     make([]int32, 1, len(set.Measurements)+1),
		meas:     make([]float64, 0, len(set.Measurements)),
		workerEv: make([]throughput.Evaluator, workers),
	}
	for i, m := range set.Measurements {
		if m.Throughput <= 0 {
			return nil, fmt.Errorf("engine: measurement %d has non-positive throughput %g", i, m.Throughput)
		}
		for _, t := range m.Exp {
			if t.Inst < 0 || t.Inst >= set.NumInsts {
				return nil, fmt.Errorf("engine: measurement %d references instruction %d outside 0..%d",
					i, t.Inst, set.NumInsts-1)
			}
		}
		s.terms = append(s.terms, m.Exp...)
		s.offs = append(s.offs, int32(len(s.terms)))
		s.meas = append(s.meas, m.Throughput)
	}
	return s, nil
}

// NumExperiments returns the number of measurements the service
// evaluates against.
func (s *Service) NumExperiments() int { return len(s.meas) }

// Evaluations returns the number of Davg computations performed so far
// (the paper's cost metric for the bottleneck algorithm's speed).
func (s *Service) Evaluations() int { return int(s.evals.Load()) }

// experiment returns the i-th pre-flattened experiment without copying.
func (s *Service) experiment(i int) portmap.Experiment {
	return portmap.Experiment(s.terms[s.offs[i]:s.offs[i+1]])
}

// davgWith computes Davg(m) with the given reusable evaluator.
func (s *Service) davgWith(ev *throughput.Evaluator, m *portmap.Mapping) float64 {
	sum := 0.0
	for i, meas := range s.meas {
		pred := ev.ThroughputOf(m, s.experiment(i))
		sum += math.Abs(pred-meas) / meas
	}
	return sum / float64(len(s.meas))
}

// davgGeneric computes Davg(m) through an arbitrary Predictor.
func (s *Service) davgGeneric(m *portmap.Mapping) (float64, error) {
	sum := 0.0
	for i, meas := range s.meas {
		pred, err := s.pred.Predict(m, s.experiment(i))
		if err != nil {
			return 0, fmt.Errorf("engine: %s on experiment %d: %w", s.pred.Name(), i, err)
		}
		sum += math.Abs(pred-meas) / meas
	}
	return sum / float64(len(s.meas)), nil
}

// Evaluate computes the fitness of a single mapping. It is safe for
// concurrent use and counts as one fitness evaluation.
func (s *Service) Evaluate(m *portmap.Mapping) (Fitness, error) {
	s.evals.Add(1)
	if s.pred != nil {
		d, err := s.davgGeneric(m)
		return Fitness{Davg: d, Volume: m.Volume()}, err
	}
	ev, _ := s.pool.Get().(*throughput.Evaluator)
	if ev == nil {
		ev = new(throughput.Evaluator)
	}
	f := Fitness{Davg: s.davgWith(ev, m), Volume: m.Volume()}
	s.pool.Put(ev)
	return f, nil
}

// EvaluateAll computes the fitness of every mapping in ms in parallel,
// writing results into out (len(out) must equal len(ms)).
func (s *Service) EvaluateAll(ms []*portmap.Mapping, out []Fitness) error {
	if len(out) != len(ms) {
		return fmt.Errorf("engine: output length %d does not match batch length %d", len(out), len(ms))
	}
	s.evals.Add(int64(len(ms)))
	if s.pred == nil {
		ForEachWorker(len(ms), s.workers, func(w, i int) {
			out[i] = Fitness{Davg: s.davgWith(&s.workerEv[w], ms[i]), Volume: ms[i].Volume()}
		})
		return nil
	}
	return ForEachErr(len(ms), s.workers, func(i int) error {
		d, err := s.davgGeneric(ms[i])
		if err != nil {
			return err
		}
		out[i] = Fitness{Davg: d, Volume: ms[i].Volume()}
		return nil
	})
}
