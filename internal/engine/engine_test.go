package engine

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"pmevo/internal/exp"
	"pmevo/internal/portmap"
	"pmevo/internal/throughput"
)

// randomWorkload builds a random mapping and a batch of random
// experiments over it.
func randomWorkload(rng *rand.Rand, numInsts, numPorts, numExps, maxLen int) (*portmap.Mapping, []portmap.Experiment) {
	m := portmap.Random(rng, portmap.RandomOptions{NumInsts: numInsts, NumPorts: numPorts, MaxUops: 3})
	es := make([]portmap.Experiment, numExps)
	for i := range es {
		es[i] = portmap.RandomExperiment(rng, numInsts, 1+rng.Intn(maxLen))
	}
	return m, es
}

// TestBatchedAgreesWithSingle is the central batching property: for
// every engine, PredictAll must agree exactly with per-experiment
// Predict on random mappings and experiments.
func TestBatchedAgreesWithSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		m, es := randomWorkload(rng, 20, 3+rng.Intn(6), 30, 5)
		for _, name := range Names() {
			eng, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			batched := make([]float64, len(es))
			if err := eng.PredictAll(m, es, batched); err != nil {
				t.Fatalf("%s: PredictAll: %v", name, err)
			}
			for i, e := range es {
				single, err := eng.Predict(m, e)
				if err != nil {
					t.Fatalf("%s: Predict: %v", name, err)
				}
				if single != batched[i] {
					t.Fatalf("%s: trial %d experiment %d: Predict %g != PredictAll %g",
						name, trial, i, single, batched[i])
				}
			}
		}
	}
}

// TestEnginesAgreeWithLPReference property-tests every engine against
// the LP reference on random mappings (the Definition 3/Equation 1
// equivalence).
func TestEnginesAgreeWithLPReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lp, err := ByName("lp")
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		m, es := randomWorkload(rng, 16, 3+rng.Intn(5), 12, 4)
		want := make([]float64, len(es))
		if err := lp.PredictAll(m, es, want); err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"bottleneck", "union", "naive"} {
			eng, _ := ByName(name)
			got := make([]float64, len(es))
			if err := eng.PredictAll(m, es, got); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for i := range es {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					t.Fatalf("%s: trial %d experiment %d: %g, LP reference %g",
						name, trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("no-such-engine"); err == nil {
		t.Error("unknown engine accepted")
	}
	def, err := ByName("")
	if err != nil {
		t.Fatal(err)
	}
	if def.Name() != Default().Name() {
		t.Errorf("empty name resolved to %q, want default %q", def.Name(), Default().Name())
	}
	for _, name := range Names() {
		eng, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if eng.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, eng.Name())
		}
	}
}

func TestPredictValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, _ := randomWorkload(rng, 4, 3, 1, 1)
	bad := portmap.Experiment{{Inst: 99, Count: 1}}
	for _, name := range Names() {
		eng, _ := ByName(name)
		if _, err := eng.Predict(m, bad); err == nil {
			t.Errorf("%s: out-of-range instruction accepted", name)
		}
		if err := eng.PredictAll(m, []portmap.Experiment{bad}, make([]float64, 1)); err == nil {
			t.Errorf("%s: out-of-range instruction accepted in batch", name)
		}
		if err := eng.PredictAll(m, make([]portmap.Experiment, 2), make([]float64, 1)); err == nil {
			t.Errorf("%s: mismatched output length accepted", name)
		}
	}
}

// measuredSet builds a measurement set from a hidden mapping with
// noise-free model measurements.
func measuredSet(t *testing.T, rng *rand.Rand, numInsts, numPorts int) (*portmap.Mapping, *exp.Set) {
	t.Helper()
	hidden := portmap.Random(rng, portmap.RandomOptions{NumInsts: numInsts, NumPorts: numPorts, MaxUops: 2})
	set, err := exp.GenerateAndMeasure(context.Background(), oracle{hidden}, numInsts)
	if err != nil {
		t.Fatal(err)
	}
	return hidden, set
}

type oracle struct{ m *portmap.Mapping }

func (o oracle) Measure(e portmap.Experiment) (float64, error) {
	return throughput.OfExperiment(o.m, e), nil
}

// TestServiceMatchesDirectDavg checks the pre-flattened batched service
// against a direct, allocating computation of Davg.
func TestServiceMatchesDirectDavg(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	_, set := measuredSet(t, rng, 10, 4)
	svc, err := NewService(set, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if svc.NumExperiments() != len(set.Measurements) {
		t.Fatalf("NumExperiments = %d, want %d", svc.NumExperiments(), len(set.Measurements))
	}
	ms := make([]*portmap.Mapping, 16)
	for i := range ms {
		ms[i] = portmap.Random(rng, portmap.RandomOptions{NumInsts: 10, NumPorts: 4, MaxUops: 3})
	}
	fits := make([]Fitness, len(ms))
	if err := svc.EvaluateAll(context.Background(), ms, fits); err != nil {
		t.Fatal(err)
	}
	for i, m := range ms {
		want := 0.0
		for _, meas := range set.Measurements {
			pred := throughput.OfExperiment(m, meas.Exp)
			want += math.Abs(pred-meas.Throughput) / meas.Throughput
		}
		want /= float64(len(set.Measurements))
		if fits[i].Davg != want {
			t.Errorf("mapping %d: Davg %g, direct %g", i, fits[i].Davg, want)
		}
		if fits[i].Volume != m.Volume() {
			t.Errorf("mapping %d: Volume %d, want %d", i, fits[i].Volume, m.Volume())
		}
		single, err := svc.Evaluate(m)
		if err != nil {
			t.Fatal(err)
		}
		if single != fits[i] {
			t.Errorf("mapping %d: Evaluate %+v != EvaluateAll %+v", i, single, fits[i])
		}
	}
	if got := svc.Evaluations(); got != len(ms)*2 {
		t.Errorf("Evaluations = %d, want %d", got, len(ms)*2)
	}
}

// TestServiceGenericEngineAgrees runs the service through the generic
// Predictor path (LP engine) and compares with the fast path.
func TestServiceGenericEngineAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	_, set := measuredSet(t, rng, 8, 3)
	fast, err := NewService(set, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lp, _ := ByName("lp")
	ref, err := NewService(set, ServiceOptions{Predictor: lp})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		m := portmap.Random(rng, portmap.RandomOptions{NumInsts: 8, NumPorts: 3, MaxUops: 2})
		f1, err := fast.Evaluate(m)
		if err != nil {
			t.Fatal(err)
		}
		f2, err := ref.Evaluate(m)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(f1.Davg-f2.Davg) > 1e-9 || f1.Volume != f2.Volume {
			t.Errorf("trial %d: bottleneck %+v vs lp %+v", trial, f1, f2)
		}
	}
}

func TestServiceValidation(t *testing.T) {
	if _, err := NewService(nil, ServiceOptions{}); err == nil {
		t.Error("nil set accepted")
	}
	if _, err := NewService(&exp.Set{NumInsts: 2}, ServiceOptions{}); err == nil {
		t.Error("set without measurements accepted")
	}
	bad := &exp.Set{
		NumInsts:     1,
		Individual:   []float64{1},
		Measurements: []exp.Measurement{{Exp: portmap.Experiment{{Inst: 0, Count: 1}}, Throughput: -1}},
	}
	if _, err := NewService(bad, ServiceOptions{}); err == nil {
		t.Error("non-positive throughput accepted")
	}
	oob := &exp.Set{
		NumInsts:     1,
		Individual:   []float64{1},
		Measurements: []exp.Measurement{{Exp: portmap.Experiment{{Inst: 5, Count: 1}}, Throughput: 1}},
	}
	if _, err := NewService(oob, ServiceOptions{}); err == nil {
		t.Error("out-of-range instruction accepted")
	}
}

// TestConcurrentEngineUse exercises the predictors and the service from
// many goroutines at once; run under -race it verifies the concurrency
// contract of the package.
func TestConcurrentEngineUse(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m, es := randomWorkload(rng, 12, 4, 40, 4)
	_, set := measuredSet(t, rng, 8, 3)
	svc, err := NewService(set, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	candidates := make([]*portmap.Mapping, 8)
	for i := range candidates {
		candidates[i] = portmap.Random(rng, portmap.RandomOptions{NumInsts: 8, NumPorts: 3, MaxUops: 2})
	}

	eng := Default()
	want := make([]float64, len(es))
	if err := eng.PredictAll(m, es, want); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				e := es[(g*7+iter)%len(es)]
				v, err := eng.Predict(m, e)
				if err != nil {
					t.Errorf("Predict: %v", err)
					return
				}
				if v != want[(g*7+iter)%len(es)] {
					t.Errorf("concurrent Predict diverged: %g", v)
					return
				}
				if _, err := svc.Evaluate(candidates[(g+iter)%len(candidates)]); err != nil {
					t.Errorf("Evaluate: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestForEachWorker(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		for _, workers := range []int{0, 1, 3, 200} {
			hits := make([]int32, n)
			var mu sync.Mutex
			maxWorker := -1
			ForEachWorker(n, workers, func(w, i int) {
				hits[i]++
				mu.Lock()
				if w > maxWorker {
					maxWorker = w
				}
				mu.Unlock()
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, h)
				}
			}
			if n > 0 && maxWorker >= Workers(workers) {
				t.Fatalf("worker index %d out of range", maxWorker)
			}
		}
	}
}
