// Package stats provides the accuracy metrics and visualization binning
// of the paper's evaluation (§5.3): mean absolute percentage error,
// Pearson and Spearman correlation coefficients, and the 35×35 heat-map
// binning of Figure 7.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// MAPE returns the mean absolute percentage error of predictions against
// measurements: mean(|pred−meas| / meas), expressed as a percentage.
// Pairs with a non-positive measurement are skipped.
func MAPE(pred, meas []float64) float64 {
	if len(pred) != len(meas) {
		panic("stats: length mismatch")
	}
	sum, n := 0.0, 0
	for i := range pred {
		if meas[i] <= 0 {
			continue
		}
		sum += math.Abs(pred[i]-meas[i]) / meas[i]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n) * 100
}

// Pearson returns the Pearson correlation coefficient of x and y.
// It returns 0 if either series has zero variance.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: length mismatch")
	}
	n := float64(len(x))
	if n == 0 {
		return 0
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Ranks returns the fractional ranks of xs (average ranks for ties),
// 1-based as in the usual definition of Spearman's coefficient.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		// Average rank of the tie group [i, j).
		avg := float64(i+j+1) / 2 // (i+1 + j) / 2 in 1-based ranks
		for k := i; k < j; k++ {
			ranks[idx[k]] = avg
		}
		i = j
	}
	return ranks
}

// Spearman returns the Spearman rank correlation coefficient of x and y
// (Pearson correlation of the tie-adjusted ranks).
func Spearman(x, y []float64) float64 {
	return Pearson(Ranks(x), Ranks(y))
}

// Median returns the median of xs (the mean of the two central values
// for even lengths). It panics on empty input.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: median of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear
// interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: quantile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Heatmap is the Figure 7 visualization: measured-vs-predicted
// throughputs binned into a Bins×Bins grid over [0, Max]² with
// logarithmic shading.
type Heatmap struct {
	Bins int
	Max  float64
	// Count[y][x] is the number of experiments with measured value in
	// bin x and predicted value in bin y (y grows upward).
	Count [][]int
	// Total is the number of binned points; Clipped counts points
	// outside [0, Max] that were clamped into the border bins.
	Total   int
	Clipped int
}

// BinHeatmap builds a heat map of the given measured/predicted pairs.
// Following Figure 7, values beyond max are clamped into the outermost
// bin.
func BinHeatmap(meas, pred []float64, bins int, max float64) *Heatmap {
	if len(meas) != len(pred) {
		panic("stats: length mismatch")
	}
	if bins <= 0 || max <= 0 {
		panic("stats: invalid heat map geometry")
	}
	h := &Heatmap{Bins: bins, Max: max, Count: make([][]int, bins)}
	for y := range h.Count {
		h.Count[y] = make([]int, bins)
	}
	clamp := func(v float64) (int, bool) {
		b := int(v / max * float64(bins))
		clipped := false
		if b < 0 {
			b, clipped = 0, true
		}
		if b >= bins {
			b, clipped = bins-1, v > max
		}
		return b, clipped
	}
	for i := range meas {
		x, cx := clamp(meas[i])
		y, cy := clamp(pred[i])
		h.Count[y][x]++
		h.Total++
		if cx || cy {
			h.Clipped++
		}
	}
	return h
}

// shades are the ASCII density ramp for rendering.
var shades = []byte(" .:-=+*#%@")

// Render draws the heat map as ASCII art with the diagonal marked,
// predicted cycles on the vertical axis and measured cycles on the
// horizontal axis (larger y printed first so the diagonal ascends).
func (h *Heatmap) Render() string {
	maxCount := 0
	for _, row := range h.Count {
		for _, c := range row {
			if c > maxCount {
				maxCount = c
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "predicted ↑  (0..%.0f cycles, %d points, %d clipped)\n",
		h.Max, h.Total, h.Clipped)
	for y := h.Bins - 1; y >= 0; y-- {
		b.WriteByte('|')
		for x := 0; x < h.Bins; x++ {
			c := h.Count[y][x]
			var ch byte
			switch {
			case c == 0 && x == y:
				ch = '/' // the ideal diagonal
			case c == 0:
				ch = ' '
			default:
				// Logarithmic shade, like the paper's log color scale.
				lvl := int(math.Log1p(float64(c)) / math.Log1p(float64(maxCount)) * float64(len(shades)-1))
				if lvl >= len(shades) {
					lvl = len(shades) - 1
				}
				ch = shades[lvl]
			}
			b.WriteByte(ch)
		}
		b.WriteString("|\n")
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", h.Bins))
	b.WriteString("+  measured →\n")
	return b.String()
}

// WriteCSV emits the heat map as "measured_bin,predicted_bin,count"
// rows for external plotting.
func (h *Heatmap) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "measured_bin,predicted_bin,count"); err != nil {
		return err
	}
	for y := 0; y < h.Bins; y++ {
		for x := 0; x < h.Bins; x++ {
			if h.Count[y][x] == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%d,%d,%d\n", x, y, h.Count[y][x]); err != nil {
				return err
			}
		}
	}
	return nil
}
