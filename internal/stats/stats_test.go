package stats

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMAPE(t *testing.T) {
	pred := []float64{1.1, 2.0, 3.0}
	meas := []float64{1.0, 2.0, 4.0}
	// errors: 0.1/1, 0, 1/4 → mean = (0.1 + 0 + 0.25)/3 = 0.11666…
	want := (0.1 + 0 + 0.25) / 3 * 100
	if got := MAPE(pred, meas); !approx(got, want) {
		t.Errorf("MAPE = %g, want %g", got, want)
	}
}

func TestMAPESkipsNonPositiveMeasurements(t *testing.T) {
	got := MAPE([]float64{1, 5}, []float64{0, 5})
	if !approx(got, 0) {
		t.Errorf("MAPE = %g, want 0 (zero measurement skipped)", got)
	}
	if got := MAPE(nil, nil); got != 0 {
		t.Errorf("empty MAPE = %g", got)
	}
}

func TestMAPEPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on mismatched lengths")
		}
	}()
	MAPE([]float64{1}, []float64{1, 2})
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if got := Pearson(x, y); !approx(got, 1) {
		t.Errorf("Pearson = %g, want 1", got)
	}
	yneg := []float64{8, 6, 4, 2}
	if got := Pearson(x, yneg); !approx(got, -1) {
		t.Errorf("Pearson = %g, want -1", got)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("Pearson with constant x = %g, want 0", got)
	}
	if got := Pearson(nil, nil); got != 0 {
		t.Errorf("Pearson of empty = %g, want 0", got)
	}
}

func TestPearsonKnownValue(t *testing.T) {
	// Hand-computed example.
	x := []float64{1, 2, 3}
	y := []float64{1, 3, 2}
	// means: 2, 2; cov = (1·1 + 0·(-1)... compute:
	// dx = [-1,0,1], dy = [-1,1,0] → sxy = 1+0+0 = 1; sxx=2, syy=2 → 0.5.
	if got := Pearson(x, y); !approx(got, 0.5) {
		t.Errorf("Pearson = %g, want 0.5", got)
	}
}

func TestRanksWithTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if !approx(r[i], want[i]) {
			t.Fatalf("Ranks = %v, want %v", r, want)
		}
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly monotone transformation has Spearman 1.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125}
	if got := Spearman(x, y); !approx(got, 1) {
		t.Errorf("Spearman = %g, want 1", got)
	}
	rev := []float64{125, 64, 27, 8, 1}
	if got := Spearman(x, rev); !approx(got, -1) {
		t.Errorf("Spearman = %g, want -1", got)
	}
}

func TestSpearmanBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
			y[i] = rng.Float64()
		}
		s := Spearman(x, y)
		p := Pearson(x, y)
		return s >= -1-1e-9 && s <= 1+1e-9 && p >= -1-1e-9 && p <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); !approx(got, 2) {
		t.Errorf("Median odd = %g", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); !approx(got, 2.5) {
		t.Errorf("Median even = %g", got)
	}
	// Median must not modify its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 {
		t.Error("Median sorted its input in place")
	}
	defer func() {
		if recover() == nil {
			t.Error("Median of empty did not panic")
		}
	}()
	Median(nil)
}

func TestMeanAndQuantile(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); !approx(got, 2) {
		t.Errorf("Mean = %g", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); !approx(got, 5) {
		t.Errorf("Quantile(0.5) = %g", got)
	}
	if got := Quantile(xs, 0); !approx(got, 0) {
		t.Errorf("Quantile(0) = %g", got)
	}
	if got := Quantile(xs, 1); !approx(got, 10) {
		t.Errorf("Quantile(1) = %g", got)
	}
}

func TestBinHeatmap(t *testing.T) {
	meas := []float64{0.5, 1.5, 2.5, 100}
	pred := []float64{0.5, 1.6, 2.4, -1}
	h := BinHeatmap(meas, pred, 3, 3)
	if h.Total != 4 {
		t.Errorf("Total = %d", h.Total)
	}
	if h.Clipped != 1 {
		t.Errorf("Clipped = %d, want 1", h.Clipped)
	}
	// (0.5, 0.5) → bin (0,0); (1.5,1.6) → (1,1); (2.5,2.4) → (2,2);
	// (100,-1) → clamped to (2,0).
	if h.Count[0][0] != 1 || h.Count[1][1] != 1 || h.Count[2][2] != 1 || h.Count[0][2] != 1 {
		t.Errorf("Count = %v", h.Count)
	}
}

func TestHeatmapRender(t *testing.T) {
	meas := make([]float64, 100)
	pred := make([]float64, 100)
	rng := rand.New(rand.NewSource(1))
	for i := range meas {
		meas[i] = rng.Float64() * 10
		pred[i] = meas[i] * (1 + rng.NormFloat64()*0.1)
	}
	h := BinHeatmap(meas, pred, 35, 10)
	out := h.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + 35 rows + axis line.
	if len(lines) != 37 {
		t.Fatalf("render has %d lines, want 37", len(lines))
	}
	if !strings.Contains(lines[0], "100 points") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestHeatmapCSV(t *testing.T) {
	h := BinHeatmap([]float64{0.5, 1.5}, []float64{0.5, 1.5}, 2, 2)
	var buf bytes.Buffer
	if err := h.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.HasPrefix(got, "measured_bin,predicted_bin,count\n") {
		t.Errorf("CSV header missing:\n%s", got)
	}
	if !strings.Contains(got, "0,0,1") || !strings.Contains(got, "1,1,1") {
		t.Errorf("CSV rows missing:\n%s", got)
	}
}

func TestBinHeatmapPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { BinHeatmap([]float64{1}, []float64{}, 3, 1) },
		func() { BinHeatmap(nil, nil, 0, 1) },
		func() { BinHeatmap(nil, nil, 3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
