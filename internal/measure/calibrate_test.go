package measure

import (
	"testing"

	"pmevo/internal/portmap"
	"pmevo/internal/uarch"
)

func TestCalibrateSelectsStableBudget(t *testing.T) {
	proc := uarch.SKL()
	opts := DefaultOptions()
	opts.NoiseSigma = 0
	h, err := NewHarness(proc, opts)
	if err != nil {
		t.Fatal(err)
	}
	add, _ := proc.ISA.FormByName("add_r64_r64")
	mul, _ := proc.ISA.FormByName("imul_r64_r64")
	probes := []portmap.Experiment{
		{{Inst: add.ID, Count: 1}},
		{{Inst: add.ID, Count: 1}, {Inst: mul.ID, Count: 1}},
	}
	res, err := h.Calibrate(probes, 3, 0.01, 8, 512)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasureIters < 8 || res.MeasureIters > 512 {
		t.Errorf("selected budget %d out of range", res.MeasureIters)
	}
	if res.Spread > 0.01 && res.MeasureIters < 512 {
		t.Errorf("calibration stopped at spread %g without exhausting budget", res.Spread)
	}
	if len(res.Steps) == 0 {
		t.Error("no calibration steps recorded")
	}
	if h.MeasureIters() != res.MeasureIters {
		t.Error("harness not updated with calibrated budget")
	}
	// Spreads must be recorded monotonically in iterations.
	for i := 1; i < len(res.Steps); i++ {
		if res.Steps[i].Iters <= res.Steps[i-1].Iters {
			t.Errorf("non-increasing iteration steps: %v", res.Steps)
		}
	}
}

func TestCalibrateValidation(t *testing.T) {
	proc := uarch.SKL()
	h, err := NewHarness(proc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	probe := []portmap.Experiment{{{Inst: 0, Count: 1}}}
	cases := []struct {
		name string
		call func() error
	}{
		{"no probes", func() error { _, err := h.Calibrate(nil, 3, 0.01, 8, 64); return err }},
		{"one probe rep", func() error { _, err := h.Calibrate(probe, 1, 0.01, 8, 64); return err }},
		{"zero tol", func() error { _, err := h.Calibrate(probe, 3, 0, 8, 64); return err }},
		{"bad iters", func() error { _, err := h.Calibrate(probe, 3, 0.01, 64, 8); return err }},
	}
	for _, tc := range cases {
		if tc.call() == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestCalibrateStopsAtMaxIters(t *testing.T) {
	proc := uarch.A72()
	opts := DefaultOptions()
	opts.NoiseSigma = 0
	h, err := NewHarness(proc, opts)
	if err != nil {
		t.Fatal(err)
	}
	probe := []portmap.Experiment{{{Inst: 0, Count: 1}}}
	// An impossible tolerance forces the sweep to its cap.
	res, err := h.Calibrate(probe, 3, 1e-12, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasureIters != 32 && res.Spread > 1e-12 {
		t.Errorf("expected cap 32, got %d (spread %g)", res.MeasureIters, res.Spread)
	}
}

// TestCalibratePeriodHints pins that the calibration sweep — one body
// probed under many (warmup, iters) pairs — reuses the period detected
// by its first probe for all later ones, and that the selected budget is
// unchanged by the hints (they gate detection cost, not results).
func TestCalibratePeriodHints(t *testing.T) {
	FlushSimCache()
	defer FlushSimCache()
	proc := uarch.SKL()
	add, _ := proc.ISA.FormByName("add_r64_r64")
	mul, _ := proc.ISA.FormByName("imul_r64_r64")
	probes := []portmap.Experiment{
		{{Inst: add.ID, Count: 1}},
		{{Inst: add.ID, Count: 1}, {Inst: mul.ID, Count: 1}},
	}
	run := func(disable bool) (*CalibrationResult, CacheStats) {
		FlushSimCache()
		opts := DefaultOptions()
		opts.NoiseSigma = 0
		opts.DisableSimCache = disable
		h, err := NewHarness(proc, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := h.Calibrate(probes, 3, 0.01, 8, 512)
		if err != nil {
			t.Fatal(err)
		}
		return res, h.CacheStats()
	}
	hinted, st := run(false)
	if st.SimPeriodHints == 0 {
		t.Error("calibration sweep never reused a period hint")
	}
	plain, stOff := run(true)
	if stOff.SimPeriodHints != 0 {
		t.Errorf("uncached calibration recorded hint traffic: %+v", stOff)
	}
	if hinted.MeasureIters != plain.MeasureIters || hinted.Spread != plain.Spread {
		t.Errorf("hints changed calibration: %+v vs %+v", hinted, plain)
	}
}
