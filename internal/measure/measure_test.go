package measure

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pmevo/internal/cachestore"
	"pmevo/internal/cachetable"
	"pmevo/internal/isa"
	"pmevo/internal/machine"
	"pmevo/internal/portmap"
	"pmevo/internal/throughput"
	"pmevo/internal/uarch"
)

func TestDefaultPoolSizes(t *testing.T) {
	x86 := DefaultPoolSizes(isa.SyntheticX86())
	arm := DefaultPoolSizes(isa.SyntheticARM())
	if x86.GPR >= arm.GPR {
		t.Errorf("x86 GPR pool %d should be smaller than ARM %d", x86.GPR, arm.GPR)
	}
	if x86.MemOffsets < 1 || arm.MemOffsets < 1 {
		t.Error("memory offsets must be positive")
	}
}

func TestNewAllocatorRejectsTinyPools(t *testing.T) {
	if _, err := NewAllocator(PoolSizes{GPR: 1, Vec: 4, FPR: 4, MemOffsets: 4}); err == nil {
		t.Error("tiny GPR pool accepted")
	}
	if _, err := NewAllocator(PoolSizes{GPR: 4, Vec: 4, FPR: 4, MemOffsets: 0}); err == nil {
		t.Error("zero mem offsets accepted")
	}
}

// TestAllocatorAvoidsImmediateReuse verifies the core §4.2 property: a
// register written by one instruction is not read by the next few
// instructions (dependency distance is maximized).
func TestAllocatorAvoidsImmediateReuse(t *testing.T) {
	x86 := isa.SyntheticX86()
	f, ok := x86.FormByName("add_r64_r64")
	if !ok {
		t.Fatal("add_r64_r64 missing")
	}
	alloc, err := NewAllocator(PoolSizes{GPR: 12, Vec: 14, FPR: 14, MemOffsets: 8})
	if err != nil {
		t.Fatal(err)
	}
	var seq []*isa.Form
	for i := 0; i < 24; i++ {
		seq = append(seq, f)
	}
	insts, err := alloc.InstantiateSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	// add r, r is read-write on operand 0, read on operand 1. Track the
	// writer of each register and check the read distance.
	lastWriter := map[int]int{}
	minDist := len(insts)
	for i, in := range insts {
		for j, op := range in.Operands {
			spec := in.Form.Operands[j]
			if spec.Read {
				if w, ok := lastWriter[op.Reg]; ok {
					if d := i - w; d < minDist {
						minDist = d
					}
				}
			}
		}
		for j, op := range in.Operands {
			if in.Form.Operands[j].Write {
				lastWriter[op.Reg] = i
			}
		}
	}
	// With a 12-register pool and 2 registers per instruction, the
	// dependency distance should be at least ~5 instructions.
	if minDist < 5 {
		t.Errorf("minimum read-after-write distance = %d, want >= 5", minDist)
	}
}

func TestAllocatorDistinctOperandsWithinInstruction(t *testing.T) {
	arm := isa.SyntheticARM()
	f, ok := arm.FormByName("add_r64_r64_r64")
	if !ok {
		t.Fatal("add_r64_r64_r64 missing")
	}
	alloc, _ := NewAllocator(DefaultPoolSizes(arm))
	for i := 0; i < 10; i++ {
		in, err := alloc.Instantiate(f)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		for _, op := range in.Operands {
			if op.Kind == isa.KindReg {
				if seen[op.Reg] {
					t.Fatalf("instruction %d reuses register %d across operands", i, op.Reg)
				}
				seen[op.Reg] = true
			}
		}
	}
}

func TestAllocatorRotatesMemOffsets(t *testing.T) {
	x86 := isa.SyntheticX86()
	f, ok := x86.FormByName("mov_r64_m64")
	if !ok {
		t.Fatal("mov_r64_m64 missing")
	}
	alloc, _ := NewAllocator(PoolSizes{GPR: 12, Vec: 14, FPR: 14, MemOffsets: 4})
	offsets := map[int]int{}
	for i := 0; i < 8; i++ {
		in, err := alloc.Instantiate(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range in.Operands {
			if op.Kind == isa.KindMem {
				offsets[op.Offset]++
			}
		}
	}
	if len(offsets) != 4 {
		t.Errorf("used %d distinct offsets, want 4", len(offsets))
	}
	for off, n := range offsets {
		if n != 2 {
			t.Errorf("offset %d used %d times, want 2 (round robin)", off, n)
		}
	}
}

func TestToMachineInstMapsMemory(t *testing.T) {
	x86 := isa.SyntheticX86()
	load, _ := x86.FormByName("mov_r64_m64")
	store, _ := x86.FormByName("mov_m64_r64")
	alloc, _ := NewAllocator(DefaultPoolSizes(x86))
	li, err := alloc.Instantiate(load)
	if err != nil {
		t.Fatal(err)
	}
	si, err := alloc.Instantiate(store)
	if err != nil {
		t.Fatal(err)
	}
	lm := ToMachineInst(li)
	sm := ToMachineInst(si)
	// Load: reads base pointer and the offset pseudo-register.
	readsBase := false
	readsPseudo := false
	for _, r := range lm.Reads {
		if r == basePtrID {
			readsBase = true
		}
		if r >= memBase && r < basePtrID {
			readsPseudo = true
		}
	}
	if !readsBase || !readsPseudo {
		t.Errorf("load reads = %v; want base pointer and mem pseudo-reg", lm.Reads)
	}
	// Store: writes the offset pseudo-register.
	writesPseudo := false
	for _, w := range sm.Writes {
		if w >= memBase && w < basePtrID {
			writesPseudo = true
		}
	}
	if !writesPseudo {
		t.Errorf("store writes = %v; want mem pseudo-reg", sm.Writes)
	}
}

func TestHarnessOptionsValidation(t *testing.T) {
	proc := uarch.SKL()
	bad := []Options{
		{UnrollLength: 0, Repetitions: 1, MeasureIters: 10},
		{UnrollLength: 50, Repetitions: 0, MeasureIters: 10},
		{UnrollLength: 50, Repetitions: 1, MeasureIters: 0},
		{UnrollLength: 50, Repetitions: 1, MeasureIters: 10, WarmupIters: -1},
	}
	for i, o := range bad {
		if _, err := NewHarness(proc, o); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}

func TestBuildLoopUnrolls(t *testing.T) {
	proc := uarch.SKL()
	opts := DefaultOptions()
	h, err := NewHarness(proc, opts)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := proc.ISA.FormByName("add_r64_r64")
	g, _ := proc.ISA.FormByName("imul_r64_r64")
	e := portmap.Experiment{{Inst: f.ID, Count: 1}, {Inst: g.ID, Count: 1}}
	body, instances, err := h.BuildLoop(e)
	if err != nil {
		t.Fatal(err)
	}
	if instances != 25 {
		t.Errorf("instances = %d, want 25 (50/2)", instances)
	}
	if len(body) != 50 {
		t.Errorf("body length = %d, want 50", len(body))
	}
	if _, _, err := h.BuildLoop(nil); err == nil {
		t.Error("empty experiment accepted")
	}
	if _, _, err := h.BuildLoop(portmap.Experiment{{Inst: 99999, Count: 1}}); err == nil {
		t.Error("out-of-range instruction accepted")
	}
}

// TestMeasureMatchesModelSingleALU is the end-to-end sanity check: a
// dependency-free ALU experiment on SKL must measure close to the
// LP-model prediction under the ground truth.
func TestMeasureMatchesModelSingleALU(t *testing.T) {
	proc := uarch.SKL()
	opts := DefaultOptions()
	opts.NoiseSigma = 0 // deterministic
	h, err := NewHarness(proc, opts)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := proc.ISA.FormByName("add_r64_r64")
	e := portmap.Experiment{{Inst: f.ID, Count: 1}}
	got, err := h.Measure(e)
	if err != nil {
		t.Fatal(err)
	}
	want := throughput.OfExperiment(proc.GroundTruth, e) // 1/4 cycle: 4 ALU ports
	if math.Abs(got-want) > 0.08 {
		t.Errorf("measured %g, model %g", got, want)
	}
}

func TestMeasurePairConflict(t *testing.T) {
	// Two shift instructions (p06 only) must measure ~1 cycle for the
	// pair (2 µops / 2 ports); a shift and a shuffle (p5) are disjoint
	// and must measure ~0.5+0.5 in parallel = max(0.5, 0.5)... per
	// experiment instance: masses p06:1, p5:1 → throughput 1? No:
	// Q={P0,P6}: 1/2; Q={P5}: 1 → 1. Both cases hand-checked below.
	proc := uarch.SKL()
	opts := DefaultOptions()
	opts.NoiseSigma = 0
	h, err := NewHarness(proc, opts)
	if err != nil {
		t.Fatal(err)
	}
	shl, _ := proc.ISA.FormByName("shl_r64_i8")
	shr, _ := proc.ISA.FormByName("shr_r64_i8")
	e := portmap.Experiment{{Inst: shl.ID, Count: 1}, {Inst: shr.ID, Count: 1}}
	got, err := h.Measure(e)
	if err != nil {
		t.Fatal(err)
	}
	want := throughput.OfExperiment(proc.GroundTruth, e) // 2 µops on p06 → 1.0
	if math.Abs(want-1.0) > 1e-9 {
		t.Fatalf("model says %g, hand calculation says 1.0", want)
	}
	if math.Abs(got-want) > 0.12 {
		t.Errorf("measured %g, model %g", got, want)
	}
}

func TestMeasureNoiseAndMedian(t *testing.T) {
	proc := uarch.SKL()
	opts := DefaultOptions()
	opts.NoiseSigma = 0.02
	opts.Repetitions = 7
	h, err := NewHarness(proc, opts)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := proc.ISA.FormByName("add_r64_r64")
	e := portmap.Experiment{{Inst: f.ID, Count: 1}}
	want := throughput.OfExperiment(proc.GroundTruth, e)
	got, err := h.Measure(e)
	if err != nil {
		t.Fatal(err)
	}
	// The median of 7 draws with 2% noise must stay within ~8%.
	if math.Abs(got-want)/want > 0.08 {
		t.Errorf("noisy measurement %g deviates too far from %g", got, want)
	}
}

func TestMeasureAllAndAccounting(t *testing.T) {
	proc := uarch.A72()
	opts := DefaultOptions()
	opts.Repetitions = 3
	h, err := NewHarness(proc, opts)
	if err != nil {
		t.Fatal(err)
	}
	f := proc.ISA.Form(0)
	g := proc.ISA.Form(1)
	es := []portmap.Experiment{
		{{Inst: f.ID, Count: 1}},
		{{Inst: g.ID, Count: 1}},
		{{Inst: f.ID, Count: 1}, {Inst: g.ID, Count: 1}},
	}
	tps, err := h.MeasureAll(context.Background(), es)
	if err != nil {
		t.Fatal(err)
	}
	if len(tps) != 3 {
		t.Fatalf("got %d throughputs", len(tps))
	}
	for i, tp := range tps {
		if tp <= 0 {
			t.Errorf("experiment %d: non-positive throughput %g", i, tp)
		}
	}
	if h.Measurements() != 3 {
		t.Errorf("Measurements = %d, want 3", h.Measurements())
	}
	cost := h.SimulatedBenchmarkingCost()
	wantCost := 3 * (opts.CompileOverheadS + 3*opts.LoopTimeMS/1000)
	if math.Abs(cost-wantCost) > 1e-9 {
		t.Errorf("SimulatedBenchmarkingCost = %g, want %g", cost, wantCost)
	}
}

func TestLoopBound(t *testing.T) {
	proc := uarch.SKL() // 3.4 GHz
	h, err := NewHarness(proc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 10 ms at 3.4 GHz = 34e6 cycles; at 17 cycles/iter → 2e6 iterations.
	if got := h.LoopBound(17); got != 2_000_000 {
		t.Errorf("LoopBound(17) = %d, want 2000000", got)
	}
	if got := h.LoopBound(0); got != 1 {
		t.Errorf("LoopBound(0) = %d, want 1", got)
	}
}

func TestEmitCX86(t *testing.T) {
	proc := uarch.SKL()
	opts := DefaultOptions()
	h, err := NewHarness(proc, opts)
	if err != nil {
		t.Fatal(err)
	}
	add, _ := proc.ISA.FormByName("add_r64_r64")
	ld, _ := proc.ISA.FormByName("mov_r64_m64")
	e := portmap.Experiment{{Inst: add.ID, Count: 1}, {Inst: ld.ID, Count: 1}}
	prog, err := h.EmitProgram(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"gettimeofday(&start, NULL);",
		"gettimeofday(&end, NULL);",
		"__asm__ volatile(",
		"add %r", // an x86 add on a GPR
		"(%r15)", // memory operand via base pointer
		"3.4",    // frequency in the throughput formula
		"for (long i = 0; i < loop_bound; i++)",
	} {
		if !strings.Contains(prog, want) {
			t.Errorf("emitted C missing %q:\n%s", want, prog)
		}
	}
}

func TestEmitCARM(t *testing.T) {
	proc := uarch.A72()
	h, err := NewHarness(proc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	add, ok := proc.ISA.FormByName("add_r64_r64_r64")
	if !ok {
		t.Fatal("add_r64_r64_r64 missing")
	}
	prog, err := h.EmitProgram(portmap.Experiment{{Inst: add.ID, Count: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog, "add x") {
		t.Errorf("ARM program should use xN registers:\n%s", prog)
	}
	if !strings.Contains(prog, "x28") {
		t.Errorf("ARM program should use the x28 base pointer:\n%s", prog)
	}
}

func TestRenderAsmVariants(t *testing.T) {
	x86 := isa.SyntheticX86()
	alloc, _ := NewAllocator(DefaultPoolSizes(x86))
	vadd, _ := x86.FormByName("vaddps_v256_v256_v256")
	in, err := alloc.Instantiate(vadd)
	if err != nil {
		t.Fatal(err)
	}
	s := RenderAsm("x86-64", in)
	if !strings.Contains(s, "ymm") {
		t.Errorf("256-bit operand should render as ymm: %q", s)
	}
	shl, _ := x86.FormByName("shl_r64_i8")
	in2, _ := alloc.Instantiate(shl)
	s2 := RenderAsm("x86-64", in2)
	if !strings.Contains(s2, "$") {
		t.Errorf("immediate should render with $: %q", s2)
	}
}

// TestMeasureAllMatchesSequentialMeasure pins the parallelization
// contract of MeasureAll: fanning the simulations out over all cores
// must leave the results bit-identical to sequential Measure calls,
// because noise is drawn in experiment order either way.
func TestMeasureAllMatchesSequentialMeasure(t *testing.T) {
	proc := uarch.SKL()
	es := []portmap.Experiment{}
	for i := 0; i < 12; i++ {
		es = append(es, portmap.Experiment{{Inst: proc.ISA.Form(i).ID, Count: 1 + i%3}})
	}
	seq, err := NewHarness(proc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var want []float64
	for _, e := range es {
		tp, err := seq.Measure(e)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, tp)
	}
	par, err := NewHarness(proc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.MeasureAll(context.Background(), es)
	if err != nil {
		t.Fatal(err)
	}
	for i := range es {
		if got[i] != want[i] {
			t.Errorf("experiment %d: MeasureAll %g != Measure %g", i, got[i], want[i])
		}
	}
	if par.Measurements() != seq.Measurements() {
		t.Errorf("accounting diverged: %d vs %d", par.Measurements(), seq.Measurements())
	}
}

// TestMeasureAllKernelCacheBitExact is the fixed-seed golden test of the
// kernel-simulation cache: MeasureAll over an experiment list with
// count-scaled aliases and literal repeats must produce bit-identical
// outputs with the cache enabled and disabled (the cache sits below the
// noise layer, which draws per measurement in experiment order either
// way).
func TestMeasureAllKernelCacheBitExact(t *testing.T) {
	proc := uarch.SKL()
	var es []portmap.Experiment
	for i := 0; i < 8; i++ {
		es = append(es, portmap.Experiment{{Inst: proc.ISA.Form(i).ID, Count: 1}})
		es = append(es, portmap.Experiment{{Inst: proc.ISA.Form(i).ID, Count: 2}}) // body-aliases the singleton
	}
	es = append(es, es[0], es[1]) // literal repeats
	opts := DefaultOptions()
	opts.Seed = 42

	cached, err := NewHarness(proc, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cached.MeasureAll(context.Background(), es)
	if err != nil {
		t.Fatal(err)
	}

	optsOff := opts
	optsOff.DisableSimCache = true
	plain, err := NewHarness(proc, optsOff)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.MeasureAll(context.Background(), es)
	if err != nil {
		t.Fatal(err)
	}

	// Full brute force: cache off, steady-state period detection off, and
	// the event-driven fast-forward off.
	bruteProc := uarch.SKL()
	bruteProc.Config.PeriodDetectBudget = machine.PeriodDetectDisabled
	bruteProc.Config.EventDrivenDisabled = true
	brute, err := NewHarness(bruteProc, optsOff)
	if err != nil {
		t.Fatal(err)
	}
	wantBrute, err := brute.MeasureAll(context.Background(), es)
	if err != nil {
		t.Fatal(err)
	}

	for i := range es {
		if got[i] != want[i] {
			t.Errorf("experiment %d: cached %v != uncached %v", i, got[i], want[i])
		}
		if got[i] != wantBrute[i] {
			t.Errorf("experiment %d: fast path %v != brute-force simulation %v", i, got[i], wantBrute[i])
		}
	}
	st := cached.CacheStats()
	if st.SimHits+st.SimMisses != int64(len(es)) {
		t.Errorf("hits+misses = %d, want %d simulations", st.SimHits+st.SimMisses, len(es))
	}
	// Re-measuring the same batch must be served from the cache (every
	// key was inserted by the first batch; nothing else writes between).
	// The first batch's own hit count is NOT asserted: concurrent
	// simulations of aliased bodies can race, both missing before either
	// inserts.
	again, err := cached.MeasureAll(context.Background(), es)
	if err != nil {
		t.Fatal(err)
	}
	for i := range es {
		if again[i] == got[i] {
			t.Errorf("experiment %d: identical noisy value on re-measurement; rng did not advance", i)
		}
	}
	st2 := cached.CacheStats()
	if delta := st2.SimHits - st.SimHits; delta != int64(len(es)) {
		t.Errorf("second batch hit %d of %d simulations", delta, len(es))
	}
	off := plain.CacheStats()
	if off.SimHits != 0 || off.SimMisses != 0 {
		t.Errorf("disabled cache recorded traffic: %+v", off)
	}
}

// TestKernelCacheAliasedBodies pins the aliasing property the body-level
// cache key exists for: a singleton {i→1} and its count-scaled variant
// {i→k} unroll to the identical concrete loop body.
func TestKernelCacheAliasedBodies(t *testing.T) {
	proc := uarch.SKL()
	h, err := NewHarness(proc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, _ := proc.ISA.FormByName("add_r64_r64")
	b1, _, err := h.BuildLoop(portmap.Experiment{{Inst: f.ID, Count: 1}})
	if err != nil {
		t.Fatal(err)
	}
	b2, _, err := h.BuildLoop(portmap.Experiment{{Inst: f.ID, Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) != len(b2) {
		t.Fatalf("aliased bodies differ in length: %d vs %d", len(b1), len(b2))
	}
	k1 := simKey(h.mach, 1, 1, b1)
	k2 := simKey(h.mach, 1, 1, b2)
	if k1 != k2 {
		t.Fatal("aliased bodies produce different cache keys")
	}
	// Distinct iteration options must not alias.
	if simKey(h.mach, 1, 1, b1) == simKey(h.mach, 2, 1, b1) ||
		simKey(h.mach, 1, 1, b1) == simKey(h.mach, 1, 2, b1) {
		t.Error("cache key ignores the iteration counts")
	}
	// Class-level canonicalization: two forms with identical simulator
	// specs (same semantic class) produce aliased singleton kernels.
	g, ok := proc.ISA.FormByName("sub_r64_r64")
	if !ok {
		t.Skip("sub_r64_r64 not in ISA")
	}
	b3, _, err := h.BuildLoop(portmap.Experiment{{Inst: g.ID, Count: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.ID == f.ID {
		t.Fatal("expected distinct forms")
	}
	if simKey(h.mach, 1, 1, b3) != k1 {
		t.Error("same-class forms (identical specs) should alias in the kernel cache")
	}
}

// TestSimKeyLengthPacking is the regression test for the read/write
// list-length encoding. The old key packed both lengths into one
// 16-bit-shifted word (len(reads)<<16 | len(writes)), so a write list
// of ≥ 2^16 entries overflowed into the reads field and distinct
// (reads, writes) splits collapsed to one packed word — e.g. (1, 2^16)
// and (0, 2^16) OR to the same value. Lengths now enter the key as two
// separate fingerprint combines, which is injective.
func TestSimKeyLengthPacking(t *testing.T) {
	// The packed-word collision the old encoding allowed.
	oldPacked := func(reads, writes int) uint64 { return uint64(reads)<<16 | uint64(writes) }
	if oldPacked(1, 1<<16) != oldPacked(0, 1<<16) {
		t.Fatal("test premise wrong: legacy packing should conflate these length pairs")
	}

	proc := uarch.SKL()
	h, err := NewHarness(proc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	regs := make([]int, 1<<16)
	body := func(reads, writes []int) []machine.Inst {
		return []machine.Inst{{Spec: 0, Reads: reads, Writes: writes}}
	}
	a := body(regs[:1], regs[:1<<16])
	b := body(nil, regs[:1<<16])
	if simKey(h.mach, 1, 1, a) == simKey(h.mach, 1, 1, b) {
		t.Error("bodies whose legacy length words collide alias in the cache key")
	}
	// Boundary splits with identical concatenated register streams must
	// stay distinct (the job of the length prefix).
	c := body([]int{1, 2}, []int{3})
	d := body([]int{1}, []int{2, 3})
	if simKey(h.mach, 1, 1, c) == simKey(h.mach, 1, 1, d) {
		t.Error("read/write boundary splits alias in the cache key")
	}
	// And equal bodies must still agree.
	if simKey(h.mach, 1, 1, a) != simKey(h.mach, 1, 1, body(regs[:1], regs[:1<<16])) {
		t.Error("equal bodies produce different keys")
	}
}

// TestSimCacheDiskWarmStart is the end-to-end golden test of the
// persistence seam: a MeasureAll warm-started from a spilled cache file
// in a "fresh process" (simulated by flushing the in-memory cache) must
// be bit-identical to the cold run, report its hits as disk-warm, and
// degrade to a cold start — with identical results — when the file is
// missing, truncated, or corrupt.
func TestSimCacheDiskWarmStart(t *testing.T) {
	proc := uarch.A72()
	var es []portmap.Experiment
	for i := 0; i < 6; i++ {
		es = append(es, portmap.Experiment{{Inst: proc.ISA.Form(i).ID, Count: 1 + i%2}})
	}
	opts := DefaultOptions()
	opts.Seed = 99
	measureAll := func() ([]float64, CacheStats) {
		h, err := NewHarness(proc, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.MeasureAll(context.Background(), es)
		if err != nil {
			t.Fatal(err)
		}
		return got, h.CacheStats()
	}

	FlushSimCache()
	want, coldStats := measureAll()
	if coldStats.SimWarmHits != 0 {
		t.Fatalf("cold run reported %d warm hits", coldStats.SimWarmHits)
	}
	path := filepath.Join(t.TempDir(), "simcache.pmc")
	if err := SaveSimCache(path); err != nil {
		t.Fatal(err)
	}

	// "Fresh process": empty in-memory cache, warm-started from disk.
	FlushSimCache()
	loaded, lerr := LoadSimCache(path)
	if loaded == 0 {
		t.Fatalf("loaded no entries (err %v)", lerr)
	}
	procBefore := ProcessCacheStats()
	got, warmStats := measureAll()
	for i := range es {
		if got[i] != want[i] {
			t.Errorf("experiment %d: warm %v != cold %v", i, got[i], want[i])
		}
	}
	if warmStats.SimMisses != 0 {
		t.Errorf("warm run missed %d times; every kernel was spilled", warmStats.SimMisses)
	}
	if warmStats.SimWarmHits == 0 || warmStats.SimWarmHits != warmStats.SimHits {
		t.Errorf("warm run hits not attributed to disk: %+v", warmStats)
	}
	if d := ProcessCacheStats().Sub(procBefore); d.SimWarmHits != warmStats.SimWarmHits {
		t.Errorf("process-wide warm delta %d != harness warm hits %d", d.SimWarmHits, warmStats.SimWarmHits)
	}

	// Damaged or missing files must cold-start with identical results.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func() error) {
		t.Run(name, func(t *testing.T) {
			if err := mutate(); err != nil {
				t.Fatal(err)
			}
			FlushSimCache()
			loaded, lerr := LoadSimCache(path)
			if loaded != 0 || lerr == nil {
				t.Fatalf("damaged file loaded %d entries (err %v)", loaded, lerr)
			}
			got, stats := measureAll()
			for i := range es {
				if got[i] != want[i] {
					t.Errorf("experiment %d: after failed load %v != cold %v", i, got[i], want[i])
				}
			}
			if stats.SimWarmHits != 0 {
				t.Errorf("failed load produced %d warm hits", stats.SimWarmHits)
			}
		})
	}
	corrupt("truncated", func() error { return os.WriteFile(path, data[:len(data)/2], 0o644) })
	corrupt("bit-flipped", func() error {
		b := append([]byte(nil), data...)
		b[len(b)/2] ^= 0x40
		return os.WriteFile(path, b, 0o644)
	})
	corrupt("missing", func() error { return os.Remove(path) })
	FlushSimCache()
}

// TestMeasureNoiseStreamIndependentOfCache pins the noise-ordering
// guarantee directly: measuring the same experiment twice must give two
// different noisy values (the rng advances per measurement), and the
// pair must be identical between a cache-on and a cache-off harness.
func TestMeasureNoiseStreamIndependentOfCache(t *testing.T) {
	proc := uarch.ZEN()
	e := portmap.Experiment{{Inst: proc.ISA.Form(0).ID, Count: 1}}
	run := func(disable bool) [2]float64 {
		opts := DefaultOptions()
		opts.Seed = 7
		opts.DisableSimCache = disable
		h, err := NewHarness(proc, opts)
		if err != nil {
			t.Fatal(err)
		}
		var out [2]float64
		for i := range out {
			v, err := h.Measure(e)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = v
		}
		return out
	}
	on := run(false)
	off := run(true)
	if on != off {
		t.Errorf("noise stream diverged: cache on %v, off %v", on, off)
	}
	if on[0] == on[1] {
		t.Error("repeated measurements returned identical noisy values; noise not drawn per measurement")
	}
}

// TestKernelCachePeriodHints pins the per-body hint seam: a second
// harness measuring the same experiments under a different iteration
// budget misses the kernel cache (its keys include the budget) but
// reuses the periods the first harness detected — and its results stay
// bit-identical to an uncached harness with the same configuration.
func TestKernelCachePeriodHints(t *testing.T) {
	FlushSimCache()
	defer FlushSimCache()
	proc := uarch.SKL()
	var es []portmap.Experiment
	for i := 0; i < 6; i++ {
		es = append(es, portmap.Experiment{{Inst: proc.ISA.Form(i).ID, Count: 1}})
	}
	opts := DefaultOptions()
	opts.Seed = 17

	a, err := NewHarness(proc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.MeasureAll(context.Background(), es); err != nil {
		t.Fatal(err)
	}

	optsB := opts
	optsB.MeasureIters = opts.MeasureIters + 80 // same bodies, new cache keys
	b, err := NewHarness(proc, optsB)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.MeasureAll(context.Background(), es)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct-body keys from harness A never hit (the budget is part of
	// the key): every simulation B actually runs is a miss (its only hits
	// are bodies aliased within its own batch), and the misses reuse A's
	// detected periods through the hint table.
	st := b.CacheStats()
	if st.SimMisses == 0 {
		t.Fatal("budget change produced no kernel-cache misses")
	}
	if st.SimPeriodHints == 0 {
		t.Error("no period hints reused across iteration budgets")
	}

	optsOff := optsB
	optsOff.DisableSimCache = true
	plain, err := NewHarness(proc, optsOff)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.MeasureAll(context.Background(), es)
	if err != nil {
		t.Fatal(err)
	}
	for i := range es {
		if got[i] != want[i] {
			t.Errorf("experiment %d: hinted %v != unhinted %v", i, got[i], want[i])
		}
	}
	if off := plain.CacheStats(); off.SimPeriodHints != 0 {
		t.Errorf("disabled cache recorded hint traffic: %+v", off)
	}
}

// TestPeriodHintDiskRoundTrip pins the persisted half of the hint seam:
// hints spilled by one process warm-start detection in the next — a
// "fresh process" (flushed tables) that loads only the hint file reuses
// the previously detected periods on first contact with each body, with
// results bit-identical to cold detection. Damaged, missing, or
// out-of-range hint files degrade to cold detection.
func TestPeriodHintDiskRoundTrip(t *testing.T) {
	FlushSimCache()
	defer FlushSimCache()
	proc := uarch.SKL()
	var es []portmap.Experiment
	for i := 0; i < 6; i++ {
		es = append(es, portmap.Experiment{{Inst: proc.ISA.Form(i).ID, Count: 1}})
	}
	opts := DefaultOptions()
	opts.Seed = 23
	measureAll := func() ([]float64, CacheStats) {
		h, err := NewHarness(proc, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.MeasureAll(context.Background(), es)
		if err != nil {
			t.Fatal(err)
		}
		return got, h.CacheStats()
	}

	want, coldStats := measureAll()
	if coldStats.SimPeriodHints != 0 {
		t.Fatalf("first-contact run reported %d hint hits", coldStats.SimPeriodHints)
	}
	path := filepath.Join(t.TempDir(), "period-hints.pmc")
	if err := SaveHintCache(path); err != nil {
		t.Fatal(err)
	}

	// "Fresh process": both tables empty, only the hint file loaded. The
	// kernel cache stays cold, so every body re-simulates — now hinted.
	FlushSimCache()
	loaded, lerr := LoadHintCache(path)
	if loaded == 0 {
		t.Fatalf("loaded no hints (err %v)", lerr)
	}
	got, warmStats := measureAll()
	for i := range es {
		if got[i] != want[i] {
			t.Errorf("experiment %d: hint-warmed %v != cold %v", i, got[i], want[i])
		}
	}
	// The kernel cache itself stayed cold: its only hits are the same
	// within-batch body aliases the cold run had (the hint file feeds
	// only the hint table).
	if warmStats.SimHits != coldStats.SimHits || warmStats.SimWarmHits != 0 {
		t.Errorf("kernel-cache traffic changed after hint load: warm %+v vs cold %+v", warmStats, coldStats)
	}
	if warmStats.SimPeriodHints == 0 {
		t.Error("disk-loaded hints never engaged on first contact")
	}

	// Damaged or missing files must degrade to cold detection, results
	// unchanged.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func() error) {
		t.Run(name, func(t *testing.T) {
			if err := mutate(); err != nil {
				t.Fatal(err)
			}
			FlushSimCache()
			loaded, lerr := LoadHintCache(path)
			if loaded != 0 || lerr == nil {
				t.Fatalf("damaged hint file loaded %d entries (err %v)", loaded, lerr)
			}
			got, stats := measureAll()
			for i := range es {
				if got[i] != want[i] {
					t.Errorf("experiment %d: after failed load %v != cold %v", i, got[i], want[i])
				}
			}
			if stats.SimPeriodHints != 0 {
				t.Errorf("failed load produced %d hint hits", stats.SimPeriodHints)
			}
		})
	}
	corrupt("truncated", func() error { return os.WriteFile(path, data[:len(data)/2], 0o644) })
	corrupt("bit-flipped", func() error {
		b := append([]byte(nil), data...)
		b[len(b)/2] ^= 0x40
		return os.WriteFile(path, b, 0o644)
	})
	corrupt("missing", func() error { return os.Remove(path) })

	// A well-formed file whose values are outside the valid period range
	// (a collision artifact, or a file written by a buggy producer) seeds
	// nothing.
	if err := cachestore.Save(path, cachestore.SchemaPeriodHints, hintCacheContentKey, []cachetable.Entry{
		{Key: 12345, Val: 1},                 // periods must exceed one iteration
		{Key: 67890, Val: maxPeriodHint + 5}, // absurdly large
	}); err != nil {
		t.Fatal(err)
	}
	FlushSimCache()
	if loaded, lerr := LoadHintCache(path); loaded != 0 || !errors.Is(lerr, ErrNoValidHints) {
		t.Fatalf("out-of-range hints loaded %d entries (err %v)", loaded, lerr)
	}
}
