package measure

import (
	"math"

	"pmevo/internal/cachetable"
	"pmevo/internal/machine"
	"pmevo/internal/portmap"
)

// Kernel-level simulation cache.
//
// The harness re-simulates identical loop bodies constantly: singleton
// experiments alias their count-scaled variants ({i→1} and {i→k} unroll
// to the same 50-instruction body), the same experiments recur across
// experiment sets (pipeline generation, calibration probes, benchmark
// sets, C emission), and every eval driver rebuilds harnesses over the
// same three processors. The noiseless steady-state cycles of a body are
// a pure function of (machine, warmup, measure, body), so they are
// cached process-wide and shared by all harnesses.
//
// The cache sits strictly below the noise layer: a hit returns the exact
// float the simulation would produce, and noise is drawn per measurement
// in experiment order as before, so Measure/MeasureAll results are
// bit-identical with the cache on or off (pinned by test). Keys hash the
// machine fingerprint, the iteration counts, and the canonical body
// (spec-content fingerprints plus register read/write lists); key
// equality stands in for input equality at the same ~2^-64 odds as the
// engine's fingerprint memo. Storage is the bounded XOR-tagged atomic
// table shared with the engine memo (internal/cachetable).

// simCacheEntries bounds the shared cache: 2^16 slots × 16 bytes = 1 MiB,
// comfortably above the distinct-kernel count of a full Table 1
// evaluation sweep.
const simCacheEntries = 1 << 16

// sharedSimCache is the process-wide kernel cache (float64 cycles per
// iteration in a cachetable.Table). Pollution across harnesses is
// harmless by construction: equal keys map to equal deterministic
// simulation results.
var sharedSimCache = cachetable.New(simCacheEntries)

// FlushSimCache drops every cached kernel simulation. Results are never
// affected — the cache holds a pure function of its key — but timing
// is: benchmark drivers flush before a timed run so the reported cost
// is cold-cache and independent of whatever measured earlier in the
// process.
func FlushSimCache() { sharedSimCache.Clear() }

// simKey hashes one steady-state simulation request into its canonical
// form: instructions are identified by spec *content* fingerprint, not
// spec ID, so two bodies whose instructions decompose and behave
// identically alias even when they reference different forms. Real form
// sets make this the dominant redundancy: all instruction forms of a
// semantic class (add/sub/and/... on the same operand shapes) share one
// simulator spec, so their kernels — identical up to form IDs — collapse
// to one simulation. The length-prefixed encoding of reads/writes keeps
// genuinely distinct bodies from aliasing.
func simKey(mach *machine.Machine, warmup, measure int, body []machine.Inst) uint64 {
	key := portmap.CombineFingerprints(0x706d65766f73696d, mach.Fingerprint()) // "pmevosim"
	key = portmap.CombineFingerprints(key, uint64(warmup))
	key = portmap.CombineFingerprints(key, uint64(measure))
	for i := range body {
		in := &body[i]
		key = portmap.CombineFingerprints(key, mach.SpecFingerprint(in.Spec))
		key = portmap.CombineFingerprints(key, uint64(len(in.Reads))<<16|uint64(len(in.Writes)))
		for _, r := range in.Reads {
			key = portmap.CombineFingerprints(key, uint64(r))
		}
		for _, w := range in.Writes {
			key = portmap.CombineFingerprints(key, uint64(w))
		}
	}
	if key == 0 {
		key = 1 // 0 would read an empty slot as a hit
	}
	return key
}

// CacheStats counts one harness's kernel-cache traffic. Hits + misses
// equals the number of steady-state simulations requested; with the
// cache disabled both stay zero.
type CacheStats struct {
	SimHits   int64
	SimMisses int64
}

// CacheStats returns a snapshot of the harness's kernel-cache counters.
func (h *Harness) CacheStats() CacheStats {
	return CacheStats{SimHits: h.simHits.Load(), SimMisses: h.simMisses.Load()}
}

// steadyState returns the noiseless steady-state cycles per iteration of
// a loop body, through the shared kernel cache unless disabled. Safe for
// concurrent use (MeasureAll fans simulations out over all cores).
func (h *Harness) steadyState(body []machine.Inst) (float64, error) {
	if h.opts.DisableSimCache {
		return h.mach.SteadyStateCycles(body, h.opts.WarmupIters, h.opts.MeasureIters)
	}
	key := simKey(h.mach, h.opts.WarmupIters, h.opts.MeasureIters, body)
	if v, ok := sharedSimCache.Get(key); ok {
		h.simHits.Add(1)
		return math.Float64frombits(v), nil
	}
	v, err := h.mach.SteadyStateCycles(body, h.opts.WarmupIters, h.opts.MeasureIters)
	if err != nil {
		return 0, err
	}
	sharedSimCache.Put(key, math.Float64bits(v))
	h.simMisses.Add(1)
	return v, nil
}
