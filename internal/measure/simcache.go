package measure

import (
	"errors"
	"math"
	"path/filepath"
	"sync"
	"sync/atomic"

	"pmevo/internal/cachestore"
	"pmevo/internal/cachetable"
	"pmevo/internal/machine"
	"pmevo/internal/portmap"
)

// Kernel-level simulation cache.
//
// The harness re-simulates identical loop bodies constantly: singleton
// experiments alias their count-scaled variants ({i→1} and {i→k} unroll
// to the same 50-instruction body), the same experiments recur across
// experiment sets (pipeline generation, calibration probes, benchmark
// sets, C emission), and every eval driver rebuilds harnesses over the
// same three processors. The noiseless steady-state cycles of a body are
// a pure function of (machine, warmup, measure, body), so they are
// cached process-wide and shared by all harnesses — and, through
// LoadSimCache/SaveSimCache, across processes: repeated pmevo-bench or
// pmevo-infer invocations on the same virtual machines warm-start
// measurement from disk.
//
// The cache sits strictly below the noise layer: a hit returns the exact
// float the simulation would produce, and noise is drawn per measurement
// in experiment order as before, so Measure/MeasureAll results are
// bit-identical with the cache on or off, cold or warm (pinned by test).
// Keys hash the machine fingerprint, the iteration counts, and the
// canonical body (spec-content fingerprints plus register read/write
// lists); key equality stands in for input equality at the same ~2^-64
// odds as the engine's fingerprint memo. The machine fingerprint in
// every key also versions disk-loaded entries: a cache file from a
// different simulator configuration simply never hits. Storage is the
// bounded XOR-tagged atomic table shared with the engine memo
// (internal/cachetable).

// simCacheEntries bounds the shared cache: 2^16 slots × 16 bytes = 1 MiB,
// comfortably above the distinct-kernel count of a full Table 1
// evaluation sweep.
const simCacheEntries = 1 << 16

// simCacheContentKey tags the on-disk spill ("pmevosim"). The entries'
// own keys carry the machine fingerprint, so the file-level content key
// is a fixed schema-style constant.
const simCacheContentKey = 0x706d65766f73696d

// sharedSimCache is the process-wide kernel cache (float64 cycles per
// iteration in a cachetable.Table). Pollution across harnesses is
// harmless by construction: equal keys map to equal deterministic
// simulation results.
var sharedSimCache = cachetable.New(simCacheEntries)

// simHintEntries bounds the per-body period-hint table: hints are one
// word per distinct body (not per body × iteration counts), so a much
// smaller table than the kernel cache suffices.
const simHintEntries = 1 << 12

// sharedHintCache maps a body fingerprint (machine + canonical body,
// without iteration counts) to the steady-state period in body
// iterations detected by a previous simulation of that body. When the
// kernel cache misses only because the iteration counts differ — the
// calibration sweep and harnesses with different warmup/measure budgets
// re-simulate bodies the cache has already seen — the stored period is
// passed back as a detection hint, so the re-run skips most detection
// hashing (machine.SteadyStateCyclesHinted). Hints affect only cost,
// never results: a stale or colliding hint at worst delays detection.
// Persisted next to the kernel cache spill (LoadHintCache/SaveHintCache,
// wired into WarmStartSimCache/SpillSimCache), so cross-process reruns
// skip detection hashing on first contact with a body too; values read
// back from disk pass through the same > 1 && <= maxPeriodHint gate as
// live table reads, so a corrupt record degrades to cold detection.
var sharedHintCache = cachetable.New(simHintEntries)

// hintCacheContentKey tags the on-disk period-hint spill ("pmevohnt").
// As with the kernel cache, each entry's own key carries the machine
// fingerprint, so a hint file from a different simulator configuration
// never hits.
const hintCacheContentKey = 0x706d65766f686e74

// warmSimKeys is the set of keys seeded from disk by LoadSimCache, used
// to attribute hits to the warm start (CacheStats.SimWarmHits). The map
// is immutable once published; LoadSimCache replaces it wholesale.
var warmSimKeys atomic.Pointer[map[uint64]struct{}]

// simCacheMu serializes the load/save/flush entry points against each
// other (the lookup fast path is lock-free and unaffected).
var simCacheMu sync.Mutex

// Process-wide kernel-cache counters. Per-harness counters (see
// Harness.CacheStats) attribute traffic to one harness but cannot tell
// a self-seeded hit from one seeded by another harness or by a disk
// load; these process totals are the right scope for per-driver
// snapshot-and-subtract reporting (pmevo-bench attributes per-BENCH
// record deltas this way).
var (
	procSimHits     atomic.Int64
	procSimMisses   atomic.Int64
	procSimWarmHits atomic.Int64
	procSimHintHits atomic.Int64
)

// FlushSimCache drops every cached kernel simulation, including entries
// warm-started from disk (the warm-hit attribution set is cleared with
// them) and the per-body period hints. Results are never affected — the cache holds a pure function
// of its key — but timing is: benchmark drivers flush before a timed
// run so the reported cost is cold-cache and independent of whatever
// measured earlier in the process. Process-wide counters are cumulative
// and not reset; drivers snapshot and subtract.
func FlushSimCache() {
	simCacheMu.Lock()
	defer simCacheMu.Unlock()
	sharedSimCache.Clear()
	sharedHintCache.Clear()
	warmSimKeys.Store(nil)
}

// LoadSimCache warm-starts the kernel cache from the spill file at
// path, returning the number of entries seeded and, when nothing was
// loaded, a typed diagnostic (errors.Is against cachestore.ErrMissing
// et al.). It never fails into a result path: a missing, truncated,
// corrupt, or mismatched file seeds nothing and measurement cold-starts
// (cachestore's contract). Call it before measurement begins —
// typically straight after flag parsing; loading concurrently with
// in-flight measurements would blur warm-hit attribution (results would
// still be exact).
func LoadSimCache(path string) (loaded int, err error) {
	entries, err := cachestore.Load(path, cachestore.SchemaSimCache, simCacheContentKey)
	if len(entries) == 0 {
		return 0, err
	}
	simCacheMu.Lock()
	defer simCacheMu.Unlock()
	warm := make(map[uint64]struct{}, len(entries))
	if old := warmSimKeys.Load(); old != nil {
		for k := range *old {
			warm[k] = struct{}{}
		}
	}
	for _, e := range entries {
		warm[e.Key] = struct{}{}
	}
	sharedSimCache.LoadEntries(entries)
	warmSimKeys.Store(&warm)
	return len(entries), nil
}

// SaveSimCache atomically spills the kernel cache to path (temp file +
// rename; see cachestore.Save). Call it at a quiesce point — process
// exit, or between benchmark phases — never concurrently with
// measurement.
func SaveSimCache(path string) error {
	simCacheMu.Lock()
	defer simCacheMu.Unlock()
	return cachestore.SaveTable(path, cachestore.SchemaSimCache, simCacheContentKey, sharedSimCache)
}

// SimCachePath returns the conventional kernel-cache spill file inside
// a tool's -cache-dir.
func SimCachePath(dir string) string { return filepath.Join(dir, "simcache.pmc") }

// HintCachePath returns the conventional period-hint spill file inside
// a tool's -cache-dir (written and read alongside the kernel cache).
func HintCachePath(dir string) string { return filepath.Join(dir, "period-hints.pmc") }

// ErrNoValidHints is LoadHintCache's diagnostic for a well-formed hint
// file none of whose values fall in the valid period range.
var ErrNoValidHints = errors.New("no hint in valid period range")

// LoadHintCache warm-starts the per-body period-hint table from the
// spill file at path, returning the number of hints seeded and, when
// nothing was loaded, a typed diagnostic (errors.Is against
// cachestore.ErrMissing et al., or ErrNoValidHints). Like LoadSimCache
// it never fails into a result path: a missing, truncated, corrupt, or
// mismatched file — or one whose values are outside the valid period
// range — seeds nothing, and detection runs cold. Hints only gate which
// iterations detection hashes, so even an adversarial file cannot
// change measurement results, only delay detection.
func LoadHintCache(path string) (loaded int, err error) {
	entries, err := cachestore.Load(path, cachestore.SchemaPeriodHints, hintCacheContentKey)
	if len(entries) == 0 {
		return 0, err
	}
	// Drop out-of-range values at the door (the read path re-checks, so
	// this only keeps garbage from occupying slots).
	valid := entries[:0]
	for _, e := range entries {
		if e.Val > 1 && e.Val <= maxPeriodHint {
			valid = append(valid, e)
		}
	}
	if len(valid) == 0 {
		return 0, ErrNoValidHints
	}
	simCacheMu.Lock()
	defer simCacheMu.Unlock()
	return sharedHintCache.LoadEntries(valid), nil
}

// SaveHintCache atomically spills the period-hint table to path. Same
// quiesce-point contract as SaveSimCache.
func SaveHintCache(path string) error {
	simCacheMu.Lock()
	defer simCacheMu.Unlock()
	return cachestore.SaveTable(path, cachestore.SchemaPeriodHints, hintCacheContentKey, sharedHintCache)
}

// WarmStartSimCache loads the kernel-cache spill from a tool's
// -cache-dir and reports the outcome — including why a load seeded
// nothing — through logf (fmt.Printf-style, typically the tool's
// stderr logger). The shared entry point for all three cmds.
func WarmStartSimCache(dir string, logf func(format string, args ...any)) {
	path := SimCachePath(dir)
	if loaded, err := LoadSimCache(path); loaded > 0 {
		logf("warm-started kernel cache: %d entries from %s", loaded, path)
	} else {
		logf("kernel cache cold start (%v)", err)
	}
	hintPath := HintCachePath(dir)
	if loaded, err := LoadHintCache(hintPath); loaded > 0 {
		logf("warm-started period hints: %d entries from %s", loaded, hintPath)
	} else {
		logf("period hints cold start (%v)", err)
	}
}

// SpillSimCache saves the kernel cache into a tool's -cache-dir,
// reporting failure through logf instead of failing the caller: a lost
// spill only costs the next invocation recomputation.
func SpillSimCache(dir string, logf func(format string, args ...any)) {
	path := SimCachePath(dir)
	if err := SaveSimCache(path); err != nil {
		logf("spill kernel cache: %v", err)
	} else {
		logf("spilled kernel cache to %s", path)
	}
	hintPath := HintCachePath(dir)
	if err := SaveHintCache(hintPath); err != nil {
		logf("spill period hints: %v", err)
	} else {
		logf("spilled period hints to %s", hintPath)
	}
}

// simKey hashes one steady-state simulation request into its canonical
// form: instructions are identified by spec *content* fingerprint, not
// spec ID, so two bodies whose instructions decompose and behave
// identically alias even when they reference different forms. Real form
// sets make this the dominant redundancy: all instruction forms of a
// semantic class (add/sub/and/... on the same operand shapes) share one
// simulator spec, so their kernels — identical up to form IDs — collapse
// to one simulation. The length-prefixed encoding of reads/writes keeps
// genuinely distinct bodies from aliasing; the two list lengths are
// folded as separate fingerprint combines (packing them into one shifted
// word let ≥ 2^16-entry write lists alias other length splits).
func simKey(mach *machine.Machine, warmup, measure int, body []machine.Inst) uint64 {
	key := portmap.CombineFingerprints(0x706d65766f73696d, mach.Fingerprint()) // "pmevosim"
	key = portmap.CombineFingerprints(key, uint64(warmup))
	key = portmap.CombineFingerprints(key, uint64(measure))
	key = combineBody(key, mach, body)
	if key == 0 {
		key = 1 // 0 would read an empty slot as a hit
	}
	return key
}

// hintKey is the per-body period-hint key: simKey's canonical body
// encoding without the iteration counts, under its own salt, so a body
// simulated under one (warmup, measure) budget shares its detected
// period with every other budget.
func hintKey(mach *machine.Machine, body []machine.Inst) uint64 {
	key := portmap.CombineFingerprints(0x706d65766f686e74, mach.Fingerprint()) // "pmevohnt"
	key = combineBody(key, mach, body)
	if key == 0 {
		key = 1
	}
	return key
}

// combineBody folds the canonical loop-body encoding into key (shared by
// simKey and hintKey; see simKey for why spec-content fingerprints and
// length-prefixed register lists).
func combineBody(key uint64, mach *machine.Machine, body []machine.Inst) uint64 {
	for i := range body {
		in := &body[i]
		key = portmap.CombineFingerprints(key, mach.SpecFingerprint(in.Spec))
		key = portmap.CombineFingerprints(key, uint64(len(in.Reads)))
		key = portmap.CombineFingerprints(key, uint64(len(in.Writes)))
		for _, r := range in.Reads {
			key = portmap.CombineFingerprints(key, uint64(r))
		}
		for _, w := range in.Writes {
			key = portmap.CombineFingerprints(key, uint64(w))
		}
	}
	return key
}

// CacheStats counts kernel-cache traffic. Hits + misses equals the
// number of steady-state simulations requested; SimWarmHits is the
// subset of hits whose key was seeded from disk by LoadSimCache;
// SimPeriodHints is the number of simulations (cache misses and
// calibration probes) that ran with a period hint recovered from an
// earlier simulation of the same body. With the cache disabled all
// stay zero.
type CacheStats struct {
	SimHits        int64
	SimMisses      int64
	SimWarmHits    int64
	SimPeriodHints int64
}

// CacheStats returns a snapshot of this harness's kernel-cache
// counters: traffic requested by this harness, against the shared
// process-wide table. A hit counted here may have been seeded by
// another harness (or by a disk load — that subset is SimWarmHits);
// for totals attributable across all harnesses use ProcessCacheStats.
func (h *Harness) CacheStats() CacheStats {
	return CacheStats{
		SimHits:        h.simHits.Load(),
		SimMisses:      h.simMisses.Load(),
		SimWarmHits:    h.simWarmHits.Load(),
		SimPeriodHints: h.simHintHits.Load(),
	}
}

// ProcessCacheStats returns the process-wide kernel-cache counters:
// cumulative traffic from every harness since process start. Drivers
// that report per-phase hit rates snapshot before and after and
// subtract, so entries seeded by earlier phases never inflate a later
// phase's report.
func ProcessCacheStats() CacheStats {
	return CacheStats{
		SimHits:        procSimHits.Load(),
		SimMisses:      procSimMisses.Load(),
		SimWarmHits:    procSimWarmHits.Load(),
		SimPeriodHints: procSimHintHits.Load(),
	}
}

// Sub returns s - o field-wise (the snapshot-and-subtract helper for
// per-phase attribution).
func (s CacheStats) Sub(o CacheStats) CacheStats {
	return CacheStats{
		SimHits:        s.SimHits - o.SimHits,
		SimMisses:      s.SimMisses - o.SimMisses,
		SimWarmHits:    s.SimWarmHits - o.SimWarmHits,
		SimPeriodHints: s.SimPeriodHints - o.SimPeriodHints,
	}
}

// maxPeriodHint caps hint values read from the shared table: a key
// collision (or a stale slot) could surface an arbitrary word, and
// modulo-gating detection with an absurd period would postpone it past
// the budget for no benefit. Genuinely detected periods are bounded by
// the snapshot ring; anything larger is dropped on read.
const maxPeriodHint = 1 << 20

// steadyState returns the noiseless steady-state cycles per iteration of
// a loop body, through the shared kernel cache unless disabled. Safe for
// concurrent use (MeasureAll fans simulations out over all cores).
func (h *Harness) steadyState(body []machine.Inst) (float64, error) {
	if h.opts.DisableSimCache {
		// The disabled path is the pre-cache cost model exactly: no key
		// hashing, no period hints. Benchmarks that toggle the knob
		// measure the full caching layer, hints included.
		return h.mach.SteadyStateCycles(body, h.opts.WarmupIters, h.opts.MeasureIters)
	}
	key := simKey(h.mach, h.opts.WarmupIters, h.opts.MeasureIters, body)
	if v, ok := sharedSimCache.Get(key); ok {
		h.simHits.Add(1)
		procSimHits.Add(1)
		if warm := warmSimKeys.Load(); warm != nil {
			if _, ok := (*warm)[key]; ok {
				h.simWarmHits.Add(1)
				procSimWarmHits.Add(1)
			}
		}
		return math.Float64frombits(v), nil
	}
	v, err := h.steadyStateHinted(body, h.opts.WarmupIters, h.opts.MeasureIters)
	if err != nil {
		return 0, err
	}
	sharedSimCache.Put(key, math.Float64bits(v))
	h.simMisses.Add(1)
	procSimMisses.Add(1)
	return v, nil
}

// steadyStateHinted simulates a body under the given iteration budget,
// consulting the per-body hint table: a kernel-cache miss that is "the
// same body under different iteration counts" — the calibration sweep,
// or harnesses with different warmup/measure budgets — reuses the period
// detected by the earlier run, so detection re-engages with almost no
// hashing. Whatever period this run detects is stored back for the next
// one. Results are bit-identical with or without a hint (hints only gate
// which iterations are hashed; machine.SteadyStateCyclesHinted).
func (h *Harness) steadyStateHinted(body []machine.Inst, warmup, measure int) (float64, error) {
	hk := hintKey(h.mach, body)
	hint := 0
	if v, ok := sharedHintCache.Get(hk); ok && v > 1 && v <= maxPeriodHint {
		hint = int(v)
		h.simHintHits.Add(1)
		procSimHintHits.Add(1)
	}
	cyc, res, err := h.mach.SteadyStateCyclesHinted(body, warmup, measure, hint)
	if err != nil {
		return 0, err
	}
	if p := res.DetectedPeriodIters; p > 1 && p != hint {
		sharedHintCache.Put(hk, uint64(p))
	}
	return cyc, nil
}
