package measure

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"

	"pmevo/internal/engine"
	"pmevo/internal/isa"
	"pmevo/internal/machine"
	"pmevo/internal/portmap"
	"pmevo/internal/uarch"
)

// Options configures the measurement harness.
type Options struct {
	// UnrollLength is the target loop body length in instructions.
	// The paper found 50 appropriate for all evaluated architectures
	// (§4.2). The body is the smallest whole number of experiment
	// repetitions reaching this length.
	UnrollLength int
	// LoopTimeMS is the wall-clock time each measured loop should run;
	// the paper uses 10 ms. It determines the simulated benchmarking
	// cost (Table 2), not the simulation effort.
	LoopTimeMS float64
	// Repetitions is the number of measurements whose median is
	// reported (§4.2: "median over multiple such measurements").
	Repetitions int
	// NoiseSigma is the relative standard deviation of the multiplicative
	// Gaussian noise modeling clock-frequency fluctuations.
	NoiseSigma float64
	// WarmupIters and MeasureIters bound the simulated loop iterations
	// used to estimate the steady state.
	WarmupIters  int
	MeasureIters int
	// CompileOverheadS is the per-measurement cost of compiling and
	// launching the benchmark program on the real system; it dominates
	// the paper's multi-hour benchmarking times and is accounted for in
	// the simulated benchmarking cost.
	CompileOverheadS float64
	// Seed seeds the noise generator.
	Seed int64
	// Pools overrides the register pool sizes (zero value: ISA default).
	Pools PoolSizes
	// DisableSimCache bypasses the shared kernel-simulation cache (the
	// noiseless steady-state cycles per canonical loop body; see
	// simcache.go). Measurement results are bit-identical either way —
	// the knob exists for benchmarking and debugging.
	DisableSimCache bool
}

// DefaultOptions returns the paper's measurement parameters.
func DefaultOptions() Options {
	return Options{
		UnrollLength:     50,
		LoopTimeMS:       10,
		Repetitions:      5,
		NoiseSigma:       0.004,
		WarmupIters:      30,
		MeasureIters:     120,
		CompileOverheadS: 1.0,
		Seed:             1,
	}
}

// Harness measures experiment throughputs on a virtual processor.
// It implements core.Measurer.
type Harness struct {
	proc *uarch.Processor
	mach *machine.Machine
	opts Options
	rng  *rand.Rand

	measurements int // number of Measure calls, for cost accounting

	// Kernel-cache counters; atomic because MeasureAll simulates
	// concurrently. simWarmHits is the subset of simHits served by
	// entries LoadSimCache seeded from disk; simHintHits counts
	// simulations that ran with a per-body period hint (simcache.go).
	simHits     atomic.Int64
	simMisses   atomic.Int64
	simWarmHits atomic.Int64
	simHintHits atomic.Int64
}

// NewHarness builds a harness for the given processor.
func NewHarness(proc *uarch.Processor, opts Options) (*Harness, error) {
	if opts.UnrollLength <= 0 {
		return nil, fmt.Errorf("measure: unroll length must be positive")
	}
	if opts.Repetitions <= 0 {
		return nil, fmt.Errorf("measure: repetitions must be positive")
	}
	if opts.MeasureIters <= 0 || opts.WarmupIters < 0 {
		return nil, fmt.Errorf("measure: invalid iteration counts")
	}
	if opts.Pools == (PoolSizes{}) {
		opts.Pools = DefaultPoolSizes(proc.ISA)
	}
	mach, err := proc.Machine()
	if err != nil {
		return nil, err
	}
	return &Harness{
		proc: proc,
		mach: mach,
		opts: opts,
		//pmevo:allow detrand -- seeded per-harness noise stream: draws happen in experiment order (MeasureAll contract), reproducible from Options.Seed
		rng: rand.New(rand.NewSource(opts.Seed)),
	}, nil
}

// Processor returns the processor under test.
func (h *Harness) Processor() *uarch.Processor { return h.proc }

// BuildConcreteLoop expands the experiment into an unrolled, operand-
// allocated loop body of concrete instructions, returning the body and
// the number of experiment instances per loop iteration. This is the
// input for both the simulator (via ToMachineInsts) and the C emitter.
func (h *Harness) BuildConcreteLoop(e portmap.Experiment) ([]Inst, int, error) {
	e = e.Normalize()
	if len(e) == 0 {
		return nil, 0, fmt.Errorf("measure: empty experiment")
	}
	var seqForms []*isa.Form
	for _, t := range e {
		if t.Inst < 0 || t.Inst >= h.proc.ISA.NumForms() {
			return nil, 0, fmt.Errorf("measure: instruction %d out of range", t.Inst)
		}
		for j := 0; j < t.Count; j++ {
			seqForms = append(seqForms, h.proc.ISA.Form(t.Inst))
		}
	}
	instances := (h.opts.UnrollLength + len(seqForms) - 1) / len(seqForms)
	alloc, err := NewAllocator(h.opts.Pools)
	if err != nil {
		return nil, 0, err
	}
	var body []Inst
	for k := 0; k < instances; k++ {
		insts, err := alloc.InstantiateSequence(seqForms)
		if err != nil {
			return nil, 0, err
		}
		body = append(body, insts...)
	}
	return body, instances, nil
}

// BuildLoop is BuildConcreteLoop lowered to the simulator representation.
func (h *Harness) BuildLoop(e portmap.Experiment) ([]machine.Inst, int, error) {
	body, instances, err := h.BuildConcreteLoop(e)
	if err != nil {
		return nil, 0, err
	}
	return ToMachineInsts(body), instances, nil
}

// EmitProgram renders the complete C benchmark program for an experiment
// as the paper's harness would generate it, using the loop bound that
// reaches the configured loop time at the processor's clock.
func (h *Harness) EmitProgram(e portmap.Experiment) (string, error) {
	body, instances, err := h.BuildConcreteLoop(e)
	if err != nil {
		return "", err
	}
	cyclesPerIter, err := h.steadyState(ToMachineInsts(body))
	if err != nil {
		return "", err
	}
	bound := h.LoopBound(cyclesPerIter)
	return EmitC(h.proc.ISA.Name, body, bound, instances, h.proc.ClockGHz), nil
}

// Measure returns the throughput t*(e) of the experiment in cycles per
// experiment instance, as the median over the configured repetitions
// with multiplicative noise (Definition 1; §4.2 measurement formula
// t*(e) = time × frequency / #instances).
func (h *Harness) Measure(e portmap.Experiment) (float64, error) {
	perInstance, err := h.simulate(e)
	if err != nil {
		return 0, err
	}
	return h.applyNoise(perInstance), nil
}

// simulate runs the deterministic part of a measurement: loop
// construction and the steady-state simulation — through the shared
// kernel cache, which is keyed on the canonical body and so deduplicates
// count-scaled experiment aliases and repeats across experiment sets —
// yielding the noise-free cycles per experiment instance. It touches
// only atomic harness state, so simulations of independent experiments
// may run concurrently (the simulated machine is immutable).
func (h *Harness) simulate(e portmap.Experiment) (float64, error) {
	body, instances, err := h.BuildLoop(e)
	if err != nil {
		return 0, err
	}
	cyclesPerIter, err := h.steadyState(body)
	if err != nil {
		return 0, err
	}
	return cyclesPerIter / float64(instances), nil
}

// applyNoise draws the configured repetitions of multiplicative
// measurement noise and returns their median (§4.2). It consumes the
// harness noise generator and accounting, so calls must occur in
// measurement order.
func (h *Harness) applyNoise(perInstance float64) float64 {
	reps := make([]float64, h.opts.Repetitions)
	for i := range reps {
		noise := 1.0
		if h.opts.NoiseSigma > 0 {
			noise = 1 + h.rng.NormFloat64()*h.opts.NoiseSigma
			if noise < 0.5 {
				noise = 0.5
			}
		}
		reps[i] = perInstance * noise
	}
	sort.Float64s(reps)
	h.measurements++
	return reps[len(reps)/2]
}

// MeasureAll measures a set of experiments, returning throughputs in
// the same order. The deterministic simulations fan out over all cores;
// noise is then applied sequentially in experiment order, so the result
// is bit-identical to calling Measure in a loop. It implements
// exp.BatchMeasurer.
//
// Cancellation is honored between simulations (never mid-simulation):
// an interrupted batch returns no partial results — measurement batches
// are all-or-nothing, because the harness's noise stream is drawn in
// experiment order and a partial draw would desynchronize later
// measurements.
func (h *Harness) MeasureAll(ctx context.Context, es []portmap.Experiment) ([]float64, error) {
	perInstance := make([]float64, len(es))
	errs := make([]error, len(es))
	if err := engine.ForEachCtx(ctx, len(es), 0, func(i int) {
		perInstance[i], errs[i] = h.simulate(es[i])
	}); err != nil {
		return nil, err
	}
	out := make([]float64, len(es))
	for i := range es {
		if errs[i] != nil {
			return nil, fmt.Errorf("experiment %d: %w", i, errs[i])
		}
		out[i] = h.applyNoise(perInstance[i])
	}
	return out, nil
}

// Measurements returns the number of Measure calls so far.
func (h *Harness) Measurements() int { return h.measurements }

// SubsetMeasurer adapts a harness to a dense instruction subset:
// experiments use subset indices, and index i is measured as the
// harness ISA's form IDs[i]. It implements exp.BatchMeasurer, so the
// harness's parallel batch path stays reachable through subset
// pipelines.
type SubsetMeasurer struct {
	H   *Harness
	IDs []int
}

func (s SubsetMeasurer) translate(e portmap.Experiment) portmap.Experiment {
	full := make(portmap.Experiment, len(e))
	for i, t := range e {
		full[i] = portmap.InstCount{Inst: s.IDs[t.Inst], Count: t.Count}
	}
	return full
}

// Measure measures one subset-space experiment.
func (s SubsetMeasurer) Measure(e portmap.Experiment) (float64, error) {
	return s.H.Measure(s.translate(e))
}

// MeasureAll measures a batch of subset-space experiments.
func (s SubsetMeasurer) MeasureAll(ctx context.Context, es []portmap.Experiment) ([]float64, error) {
	full := make([]portmap.Experiment, len(es))
	for i, e := range es {
		full[i] = s.translate(e)
	}
	return s.H.MeasureAll(ctx, full)
}

// SimulatedBenchmarkingCost estimates the wall-clock time the measured
// experiments would have taken on the real system: per measurement, one
// compile+launch overhead plus Repetitions timed loops of LoopTimeMS.
// This reproduces the "benchmarking time" row of Table 2.
func (h *Harness) SimulatedBenchmarkingCost() float64 {
	perMeasurement := h.opts.CompileOverheadS + float64(h.opts.Repetitions)*h.opts.LoopTimeMS/1000
	return float64(h.measurements) * perMeasurement
}

// LoopBound returns the iteration count the real system would use so the
// loop runs for LoopTimeMS at the processor's clock, given the observed
// cycles per iteration. It documents the §4.2 loop-bound selection; the
// simulator itself uses the much smaller MeasureIters.
func (h *Harness) LoopBound(cyclesPerIter float64) int {
	if cyclesPerIter <= 0 {
		return 1
	}
	cycles := h.opts.LoopTimeMS / 1000 * h.proc.ClockGHz * 1e9
	n := int(math.Round(cycles / cyclesPerIter))
	if n < 1 {
		n = 1
	}
	return n
}
