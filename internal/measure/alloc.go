// Package measure implements the throughput measurement methodology of
// paper §4.2: instruction forms are instantiated with concrete operands
// by a register allocator that avoids data dependencies, the sequence is
// unrolled into a loop body of ~50 instructions, and the loop is run to a
// steady state whose cycles-per-iteration give the throughput
// (Definition 1).
//
// In the paper, the loop is emitted as C-with-inline-assembly, compiled,
// and timed with gettimeofday on real hardware. Here the loop runs on the
// cycle-level simulator of internal/machine, with a configurable noise
// model standing in for clock jitter; the C emitter is retained (EmitC)
// to document and test the code-generation scheme.
package measure

import (
	"fmt"

	"pmevo/internal/isa"
	"pmevo/internal/machine"
)

// Register ID space: each register class gets a disjoint ID range so the
// simulator's dependency tracking can mix classes freely.
const (
	gprBase   = 0
	vecBase   = 1000
	fprBase   = 2000
	memBase   = 3000 // pseudo-registers modeling distinct memory offsets
	basePtrID = 4000 // the memory base pointer (never written)
)

// PoolSizes configures how many architectural registers the allocator
// may use per class. Using many registers maximizes dependency distance
// (§4.2: "Using as many different registers as available").
type PoolSizes struct {
	GPR int
	Vec int
	FPR int
	// MemOffsets is the number of distinct constant offsets used to
	// instantiate memory operands without aliasing.
	MemOffsets int
}

// DefaultPoolSizes returns realistic pool sizes for the given ISA:
// x86-64 has 16 GPRs and 16 vector registers (minus stack/base pointers
// and scratch), ARMv8-A has 31 GPRs and 32 vector registers.
func DefaultPoolSizes(a *isa.ISA) PoolSizes {
	if a.Name == "ARMv8-A" {
		return PoolSizes{GPR: 26, Vec: 30, FPR: 30, MemOffsets: 8}
	}
	return PoolSizes{GPR: 12, Vec: 14, FPR: 14, MemOffsets: 8}
}

// Operand is a concrete operand produced by the allocator.
type Operand struct {
	// Kind mirrors the form's operand kind.
	Kind isa.OperandKind
	// Reg is the architectural register index within its class pool
	// (for KindReg), or the base pointer for KindMem.
	Reg int
	// Class is the register class of Reg.
	Class isa.RegClass
	// Offset is the memory offset index (for KindMem).
	Offset int
	// Imm is the immediate value (for KindImm).
	Imm int64
}

// Inst is an instruction instance with concrete operands.
type Inst struct {
	Form     *isa.Form
	Operands []Operand
}

// Allocator assigns registers to instruction form operands while
// avoiding read-after-write dependencies (§4.2):
//
//   - read operands get the least recently written register, so any
//     pending write to it lies as far in the past as possible;
//   - written operands get the most recently read register, whose value
//     has already been consumed and which readers will now avoid.
//
// Memory operands use a dedicated base pointer plus rotating constant
// offsets so consecutive memory accesses touch distinct addresses.
type Allocator struct {
	sizes PoolSizes
	pools map[isa.RegClass]*regPool
	clock int
	mem   int // next memory offset (rotating)
}

type regPool struct {
	n         int
	lastRead  []int
	lastWrite []int
}

func newRegPool(n int) *regPool {
	p := &regPool{n: n, lastRead: make([]int, n), lastWrite: make([]int, n)}
	for i := range p.lastRead {
		p.lastRead[i] = -1
		p.lastWrite[i] = -1
	}
	return p
}

// NewAllocator creates an allocator with the given pool sizes.
func NewAllocator(sizes PoolSizes) (*Allocator, error) {
	if sizes.GPR < 2 || sizes.Vec < 2 || sizes.FPR < 2 {
		return nil, fmt.Errorf("measure: register pools too small: %+v", sizes)
	}
	if sizes.MemOffsets < 1 {
		return nil, fmt.Errorf("measure: need at least one memory offset")
	}
	return &Allocator{
		sizes: sizes,
		pools: map[isa.RegClass]*regPool{
			isa.ClassGPR: newRegPool(sizes.GPR),
			isa.ClassVec: newRegPool(sizes.Vec),
			isa.ClassFPR: newRegPool(sizes.FPR),
		},
	}, nil
}

// pickRead selects a register for a read (or read-write) operand:
// the least recently written register, ties broken by the least recently
// read one, excluding registers already used by this instruction.
func (a *Allocator) pickRead(p *regPool, used map[int]bool) int {
	best := -1
	for r := 0; r < p.n; r++ {
		if used[r] {
			continue
		}
		if best < 0 ||
			p.lastWrite[r] < p.lastWrite[best] ||
			(p.lastWrite[r] == p.lastWrite[best] && p.lastRead[r] < p.lastRead[best]) {
			best = r
		}
	}
	return best
}

// pickWrite selects a register for a write-only operand: the most
// recently read register, ties broken by the least recently written one.
func (a *Allocator) pickWrite(p *regPool, used map[int]bool) int {
	best := -1
	for r := 0; r < p.n; r++ {
		if used[r] {
			continue
		}
		if best < 0 ||
			p.lastRead[r] > p.lastRead[best] ||
			(p.lastRead[r] == p.lastRead[best] && p.lastWrite[r] < p.lastWrite[best]) {
			best = r
		}
	}
	return best
}

// Instantiate assigns concrete operands to one instruction form.
func (a *Allocator) Instantiate(f *isa.Form) (Inst, error) {
	a.clock++
	now := a.clock
	inst := Inst{Form: f, Operands: make([]Operand, len(f.Operands))}
	usedPerClass := map[isa.RegClass]map[int]bool{}
	usedIn := func(c isa.RegClass) map[int]bool {
		if usedPerClass[c] == nil {
			usedPerClass[c] = make(map[int]bool)
		}
		return usedPerClass[c]
	}

	for i, op := range f.Operands {
		switch op.Kind {
		case isa.KindImm:
			inst.Operands[i] = Operand{Kind: isa.KindImm, Imm: int64(1 + i)}
		case isa.KindMem:
			off := a.mem
			a.mem = (a.mem + 1) % a.sizes.MemOffsets
			inst.Operands[i] = Operand{
				Kind:   isa.KindMem,
				Class:  isa.ClassGPR,
				Reg:    0, // the dedicated base pointer
				Offset: off,
			}
		case isa.KindReg:
			pool, ok := a.pools[op.Class]
			if !ok {
				return Inst{}, fmt.Errorf("measure: no pool for register class %v", op.Class)
			}
			used := usedIn(op.Class)
			var r int
			if op.Read {
				r = a.pickRead(pool, used)
			} else {
				r = a.pickWrite(pool, used)
			}
			if r < 0 {
				return Inst{}, fmt.Errorf("measure: register pool %v exhausted for %s",
					op.Class, f.Name())
			}
			used[r] = true
			if op.Read {
				pool.lastRead[r] = now
			}
			if op.Write {
				pool.lastWrite[r] = now
			}
			inst.Operands[i] = Operand{Kind: isa.KindReg, Class: op.Class, Reg: r}
		}
	}
	return inst, nil
}

// InstantiateSequence allocates operands for a whole instruction
// sequence in order.
func (a *Allocator) InstantiateSequence(seq []*isa.Form) ([]Inst, error) {
	out := make([]Inst, 0, len(seq))
	for _, f := range seq {
		inst, err := a.Instantiate(f)
		if err != nil {
			return nil, err
		}
		out = append(out, inst)
	}
	return out, nil
}

// regID maps a concrete register to its simulator dependency-tracking ID.
func regID(class isa.RegClass, reg int) int {
	switch class {
	case isa.ClassVec:
		return vecBase + reg
	case isa.ClassFPR:
		return fprBase + reg
	default:
		return gprBase + reg
	}
}

// ToMachineInst lowers a concrete instruction to the simulator's
// representation: register reads/writes including memory pseudo-
// registers (loads read, stores write the pseudo-register of their
// offset) and the base pointer.
func ToMachineInst(in Inst) machine.Inst {
	mi := machine.Inst{Spec: in.Form.ID}
	for i, op := range in.Operands {
		spec := in.Form.Operands[i]
		switch op.Kind {
		case isa.KindReg:
			id := regID(op.Class, op.Reg)
			if spec.Read {
				mi.Reads = append(mi.Reads, id)
			}
			if spec.Write {
				mi.Writes = append(mi.Writes, id)
			}
		case isa.KindMem:
			mi.Reads = append(mi.Reads, basePtrID)
			pseudo := memBase + op.Offset
			if spec.Read {
				mi.Reads = append(mi.Reads, pseudo)
			}
			if spec.Write {
				mi.Writes = append(mi.Writes, pseudo)
			}
		}
	}
	return mi
}

// ToMachineInsts lowers a sequence.
func ToMachineInsts(seq []Inst) []machine.Inst {
	out := make([]machine.Inst, len(seq))
	for i, in := range seq {
		out[i] = ToMachineInst(in)
	}
	return out
}
