package measure

import (
	"fmt"
	"sort"

	"pmevo/internal/portmap"
)

// This file implements the empirical loop-time selection of §4.2: "The
// loop bound is automatically chosen to ensure that the loop runs for a
// specific time that guarantees steady-state execution. This time is
// estimated empirically for the processor under test by comparing the
// measurement stability for different times."
//
// On the simulator the analog of the loop time is the number of measured
// iterations: Calibrate increases the iteration budget until repeated
// measurements of a probe workload agree within a stability tolerance,
// then fixes that budget for subsequent measurements.

// CalibrationResult reports the outcome of Calibrate.
type CalibrationResult struct {
	// MeasureIters is the selected measurement iteration count.
	MeasureIters int
	// Spread is the final relative spread between repeated probe
	// measurements.
	Spread float64
	// Steps records the (iterations, spread) pairs tried.
	Steps []CalibrationStep
}

// CalibrationStep is one probe of the calibration sweep.
type CalibrationStep struct {
	Iters  int
	Spread float64
}

// Calibrate determines a measurement iteration budget at which probe
// experiments measure stably: starting from minIters, the budget doubles
// until the relative spread of `probes` repeated measurements of each
// probe experiment drops below tol (or maxIters is reached). The
// harness's configuration is updated with the selected budget.
func (h *Harness) Calibrate(probeExps []portmap.Experiment, probes int, tol float64, minIters, maxIters int) (*CalibrationResult, error) {
	if len(probeExps) == 0 {
		return nil, fmt.Errorf("measure: no probe experiments")
	}
	if probes < 2 {
		return nil, fmt.Errorf("measure: need at least 2 probes")
	}
	if tol <= 0 || minIters < 1 || maxIters < minIters {
		return nil, fmt.Errorf("measure: invalid calibration parameters")
	}

	res := &CalibrationResult{}
	iters := minIters
	for {
		worst := 0.0
		for _, e := range probeExps {
			body, instances, err := h.BuildLoop(e)
			if err != nil {
				return nil, err
			}
			vals := make([]float64, probes)
			for p := range vals {
				// Vary the warmup slightly so unstable steady states
				// produce visibly different estimates. The sweep probes
				// one body under many (warmup, iters) pairs — the exact
				// shape the per-body period hint deduplicates — so route
				// through the hinted path: after the first probe, later
				// probes and doublings skip most detection hashing.
				warm := h.opts.WarmupIters + p
				var cyc float64
				if h.opts.DisableSimCache {
					cyc, err = h.mach.SteadyStateCycles(body, warm, iters)
				} else {
					cyc, err = h.steadyStateHinted(body, warm, iters)
				}
				if err != nil {
					return nil, err
				}
				vals[p] = cyc / float64(instances)
			}
			sort.Float64s(vals)
			lo, hi := vals[0], vals[len(vals)-1]
			if hi > 0 {
				if spread := (hi - lo) / hi; spread > worst {
					worst = spread
				}
			}
		}
		res.Steps = append(res.Steps, CalibrationStep{Iters: iters, Spread: worst})
		res.MeasureIters = iters
		res.Spread = worst
		if worst <= tol || iters >= maxIters {
			break
		}
		iters *= 2
		if iters > maxIters {
			iters = maxIters
		}
	}
	h.opts.MeasureIters = res.MeasureIters
	return res, nil
}

// MeasureIters returns the harness's current measurement iteration
// budget (after optional calibration).
func (h *Harness) MeasureIters() int { return h.opts.MeasureIters }
