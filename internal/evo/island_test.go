package evo

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"pmevo/internal/engine"
	"pmevo/internal/portmap"
)

func mappingJSON(t *testing.T, m *portmap.Mapping) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// prePRGoldenMapping is the mapping the pre-island-model evo.Run found
// on the hiddenMapping experiment set under both golden configurations
// below, captured before the restructure. It is equivalent to the
// hidden mapping up to port permutation except for instruction 3
// (compacted to one µop by the volume objective).
func prePRGoldenMapping() *portmap.Mapping {
	m := portmap.NewMapping(4, 3)
	m.SetDecomp(0, []portmap.UopCount{{Ports: portmap.MakePortSet(0), Count: 1}})
	m.SetDecomp(1, []portmap.UopCount{{Ports: portmap.MakePortSet(0, 2), Count: 1}})
	m.SetDecomp(2, []portmap.UopCount{{Ports: portmap.MakePortSet(1), Count: 1}})
	m.SetDecomp(3, []portmap.UopCount{{Ports: portmap.MakePortSet(1), Count: 1}})
	return m
}

// TestGoldenSinglePopulation pins the Islands<=1 path bit-identical to
// the pre-island-model evo.Run: mapping JSON bytes, Davg bits,
// generation count, and — with the cross-generation fitness cache
// disabled, the exact pre-PR configuration — the evaluation count too.
// The golden values were captured from the pre-PR code on this seed.
func TestGoldenSinglePopulation(t *testing.T) {
	const goldenDavgBits = 0x3f9a41a41a41a41a
	cases := []struct {
		name        string
		seed        int64
		localSearch bool
		generations int
		evals       int
	}{
		{name: "seed7-localsearch", seed: 7, localSearch: true, generations: 32, evals: 3947},
		{name: "seed42-evolution-only", seed: 42, localSearch: false, generations: 26, evals: 3283},
	}
	set := measuredSet(t, hiddenMapping())
	wantJSON := mappingJSON(t, prePRGoldenMapping())
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := smallOpts()
			opts.Seed = tc.seed
			opts.LocalSearch = tc.localSearch
			opts.FitnessCacheEntries = -1 // the pre-PR service had no fitness cache
			res, err := Run(context.Background(), set, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got := mappingJSON(t, res.Best); !bytes.Equal(got, wantJSON) {
				t.Errorf("mapping diverged from pre-PR golden:\ngot:\n%s\nwant:\n%s", got, wantJSON)
			}
			if bits := math.Float64bits(res.BestError); bits != goldenDavgBits {
				t.Errorf("BestError bits = %#x, want %#x", bits, goldenDavgBits)
			}
			if res.BestVolume != 5 {
				t.Errorf("BestVolume = %d, want 5", res.BestVolume)
			}
			if res.Generations != tc.generations {
				t.Errorf("Generations = %d, want %d", res.Generations, tc.generations)
			}
			if res.FitnessEvaluations != tc.evals {
				t.Errorf("FitnessEvaluations = %d, want %d", res.FitnessEvaluations, tc.evals)
			}

			// The cross-generation cache must not change any result —
			// only skip work (Islands=1, cache on vs the pinned run).
			opts.FitnessCacheEntries = 0 // default size
			cached, err := Run(context.Background(), set, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got := mappingJSON(t, cached.Best); !bytes.Equal(got, wantJSON) {
				t.Errorf("mapping with fitness cache diverged from golden:\ngot:\n%s", got)
			}
			if cached.BestError != res.BestError || cached.BestVolume != res.BestVolume ||
				cached.Generations != res.Generations || !reflect.DeepEqual(cached.History, res.History) {
				t.Errorf("fitness cache changed results: err %v vs %v, vol %d vs %d, gens %d vs %d",
					cached.BestError, res.BestError, cached.BestVolume, res.BestVolume,
					cached.Generations, res.Generations)
			}
			if cached.FitnessEvaluations > res.FitnessEvaluations {
				t.Errorf("fitness cache increased evaluations: %d > %d",
					cached.FitnessEvaluations, res.FitnessEvaluations)
			}
		})
	}
}

// TestIslandsDeterministicAcrossWorkers is the determinism contract:
// fixed Seed and fixed Islands must give bit-identical results no
// matter how many goroutines schedule the islands.
func TestIslandsDeterministicAcrossWorkers(t *testing.T) {
	set := measuredSet(t, hiddenMapping())
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	var ref *Result
	var refJSON []byte
	for _, w := range workerCounts {
		opts := smallOpts()
		opts.Islands = 4
		opts.Workers = w
		res, err := Run(context.Background(), set, opts)
		if err != nil {
			t.Fatal(err)
		}
		j := mappingJSON(t, res.Best)
		if ref == nil {
			ref, refJSON = res, j
			continue
		}
		if !bytes.Equal(j, refJSON) {
			t.Errorf("Workers=%d mapping differs from Workers=%d:\n%s\nvs\n%s", w, workerCounts[0], j, refJSON)
		}
		if math.Float64bits(res.BestError) != math.Float64bits(ref.BestError) {
			t.Errorf("Workers=%d BestError %v != %v", w, res.BestError, ref.BestError)
		}
		if res.BestVolume != ref.BestVolume || res.Generations != ref.Generations {
			t.Errorf("Workers=%d (volume, gens) = (%d, %d), want (%d, %d)",
				w, res.BestVolume, res.Generations, ref.BestVolume, ref.Generations)
		}
		if !reflect.DeepEqual(res.History, ref.History) {
			t.Errorf("Workers=%d history differs", w)
		}
	}
}

// TestIslandsRecoverSmallMapping checks solution quality does not
// regress under sharding: the island run must still explain the
// measurements about as well as the single population does.
func TestIslandsRecoverSmallMapping(t *testing.T) {
	set := measuredSet(t, hiddenMapping())
	opts := smallOpts()
	opts.Islands = 3
	res, err := Run(context.Background(), set, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestError > 0.05 {
		t.Fatalf("best Davg = %g, want < 0.05\nmapping:\n%s", res.BestError, res.Best)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatalf("result mapping invalid: %v", err)
	}
	if res.Generations < 1 || len(res.History) != res.Generations {
		t.Errorf("merged history has %d entries for %d generations", len(res.History), res.Generations)
	}
	for g, h := range res.History {
		if h.Generation != g {
			t.Errorf("history[%d].Generation = %d", g, h.Generation)
		}
	}
}

// TestIslandsNoMigration exercises the migration-off path (fully
// independent islands, single epoch).
func TestIslandsNoMigration(t *testing.T) {
	set := measuredSet(t, hiddenMapping())
	opts := smallOpts()
	opts.Islands = 3
	opts.MigrationInterval = -1
	res, err := Run(context.Background(), set, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestError > 0.05 {
		t.Fatalf("best Davg = %g, want < 0.05", res.BestError)
	}
}

// TestCrossGenCacheOnOffBitIdentical pins that the cross-generation
// fitness cache only ever skips work: every result field except the
// evaluation count is identical with the cache on and off, and on a
// convergent run the cache actually hits.
func TestCrossGenCacheOnOffBitIdentical(t *testing.T) {
	set := measuredSet(t, hiddenMapping())
	for _, islands := range []int{1, 3} {
		opts := smallOpts()
		opts.Islands = islands
		opts.FitnessCacheEntries = -1
		off, err := Run(context.Background(), set, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.FitnessCacheEntries = 0 // default
		on, err := Run(context.Background(), set, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mappingJSON(t, on.Best), mappingJSON(t, off.Best)) {
			t.Errorf("islands=%d: cache changed the result mapping", islands)
		}
		if math.Float64bits(on.BestError) != math.Float64bits(off.BestError) ||
			on.BestVolume != off.BestVolume || on.Generations != off.Generations ||
			!reflect.DeepEqual(on.History, off.History) {
			t.Errorf("islands=%d: cache changed result stats", islands)
		}
		if off.CacheStats.FitCacheHits != 0 || off.CacheStats.FitCacheEntries != 0 {
			t.Errorf("islands=%d: disabled cache reported traffic: %+v", islands, off.CacheStats)
		}
		if on.CacheStats.FitCacheHits == 0 {
			t.Errorf("islands=%d: enabled cache never hit on a convergent run", islands)
		}
		if on.FitnessEvaluations >= off.FitnessEvaluations {
			t.Errorf("islands=%d: cache did not reduce evaluations: %d >= %d",
				islands, on.FitnessEvaluations, off.FitnessEvaluations)
		}
	}
}

// TestPlanIslandsClamping covers the satellite contract: nonsensical
// option values are normalized, never errors.
func TestPlanIslandsClamping(t *testing.T) {
	base := Options{PopulationSize: 10}
	cases := []struct {
		name string
		mod  func(*Options)
		want islandPlan
	}{
		{
			name: "zero islands collapse to one",
			mod:  func(o *Options) { o.Islands = 0 },
			want: islandPlan{islands: 1},
		},
		{
			name: "negative islands collapse to one",
			mod:  func(o *Options) { o.Islands = -3 },
			want: islandPlan{islands: 1},
		},
		{
			name: "islands capped so each holds two individuals",
			mod:  func(o *Options) { o.Islands = 100 },
			want: islandPlan{islands: 5, sizes: []int{2, 2, 2, 2, 2}, interval: 5, count: 1},
		},
		{
			name: "remainder spread over the first islands",
			mod:  func(o *Options) { o.Islands = 3 },
			want: islandPlan{islands: 3, sizes: []int{4, 3, 3}, interval: 5, count: 1},
		},
		{
			name: "migration count capped below smallest island",
			mod:  func(o *Options) { o.Islands = 3; o.MigrationCount = 99 },
			want: islandPlan{islands: 3, sizes: []int{4, 3, 3}, interval: 5, count: 2},
		},
		{
			name: "negative migration count disables migration",
			mod:  func(o *Options) { o.Islands = 2; o.MigrationCount = -1 },
			want: islandPlan{islands: 2, sizes: []int{5, 5}, interval: 0, count: 0},
		},
		{
			name: "negative interval disables migration",
			mod:  func(o *Options) { o.Islands = 2; o.MigrationInterval = -1 },
			want: islandPlan{islands: 2, sizes: []int{5, 5}, interval: 0, count: 0},
		},
		{
			name: "explicit interval and count pass through",
			mod:  func(o *Options) { o.Islands = 2; o.MigrationInterval = 7; o.MigrationCount = 3 },
			want: islandPlan{islands: 2, sizes: []int{5, 5}, interval: 7, count: 3},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := base
			tc.mod(&opts)
			got := planIslands(opts)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("planIslands(%+v) = %+v, want %+v", opts, got, tc.want)
			}
			if got.islands > 1 {
				sum := 0
				for _, s := range got.sizes {
					sum += s
				}
				if sum != opts.PopulationSize {
					t.Errorf("island sizes %v sum to %d, want %d", got.sizes, sum, opts.PopulationSize)
				}
			}
		})
	}
}

// testIsland builds an island whose population holds ports-distinct
// single-µop mappings with the given davg values, sorted best-first
// like a post-selection population.
func testIsland(idx int, davgs ...float64) *island {
	isl := &island{idx: idx}
	for i, d := range davgs {
		m := portmap.NewMapping(1, 8)
		m.SetDecomp(0, []portmap.UopCount{{Ports: portmap.MakePortSet(idx), Count: i + 1}})
		isl.pop = append(isl.pop, individual{m: m, davg: d, volume: i + 1})
	}
	return isl
}

// TestMigrateRingTopology pins the migration semantics: best-count
// emigrants travel k -> (k+1) mod N, replace the receiver's worst,
// are cloned (no shared mutable mappings), and are taken from the
// pre-migration populations regardless of application order.
func TestMigrateRingTopology(t *testing.T) {
	isls := []*island{
		testIsland(0, 0.10, 0.20, 0.30),
		testIsland(1, 0.11, 0.21, 0.31),
		testIsland(2, 0.12, 0.22, 0.32),
	}
	bestFP := make([]uint64, len(isls))
	bestPtr := make([]*portmap.Mapping, len(isls))
	for k, isl := range isls {
		bestFP[k] = isl.pop[0].m.FingerprintAll()
		bestPtr[k] = isl.pop[0].m
	}
	migrate(isls, 1, 1e-9)
	for k := range isls {
		dst := isls[(k+1)%len(isls)]
		got := dst.pop[len(dst.pop)-1]
		if got.m.FingerprintAll() != bestFP[k] {
			t.Errorf("island %d's worst slot does not hold island %d's pre-migration best", (k+1)%len(isls), k)
		}
		if got.m == bestPtr[k] {
			t.Errorf("island %d received an aliased mapping, want a clone", (k+1)%len(isls))
		}
		if got.davg != isls[k].pop[0].davg && k != (k+1)%len(isls) {
			// Source islands kept their best (emigration copies).
			t.Errorf("emigrant fitness not carried over: %v", got.davg)
		}
		if dst.pop[0].m.FingerprintAll() != bestFP[(k+1)%len(isls)] {
			t.Errorf("island %d lost its own best to migration", (k+1)%len(isls))
		}
	}

	// Multiple emigrants replace the worst slots in rank order.
	isls = []*island{
		testIsland(0, 0.10, 0.20, 0.30, 0.40),
		testIsland(1, 0.11, 0.21, 0.31, 0.41),
	}
	migrate(isls, 2, 1e-9)
	if isls[1].pop[3].davg != 0.10 || isls[1].pop[2].davg != 0.20 {
		t.Errorf("two-emigrant migration misplaced: tail davgs = %v, %v", isls[1].pop[3].davg, isls[1].pop[2].davg)
	}
	if isls[0].pop[3].davg != 0.11 || isls[0].pop[2].davg != 0.21 {
		t.Errorf("ring wrap misplaced: tail davgs = %v, %v", isls[0].pop[3].davg, isls[0].pop[2].davg)
	}
}

// TestMigrateUnconverges: a converged island that receives an immigrant
// with a different fitness goes back into the evolution loop.
func TestMigrateUnconverges(t *testing.T) {
	src := testIsland(0, 0.05, 0.06)
	dst := testIsland(1, 0.20, 0.20)
	dst.pop[1].davg = 0.20
	dst.pop[1].volume = dst.pop[0].volume // truly converged
	dst.converged = true
	migrate([]*island{src, dst}, 1, 1e-9)
	if dst.converged {
		t.Error("receiving a fitter immigrant should clear the converged flag")
	}
	// A converged island receiving its own fitness stays converged.
	src = testIsland(0, 0.20, 0.20)
	src.pop[1].volume = src.pop[0].volume
	dst = testIsland(1, 0.20, 0.20)
	dst.pop[1].volume = dst.pop[0].volume
	// Make volumes agree across islands too.
	src.pop[0].volume, src.pop[1].volume = 1, 1
	dst.pop[0].volume, dst.pop[1].volume = 1, 1
	dst.converged = true
	migrate([]*island{src, dst}, 1, 1e-9)
	if !dst.converged {
		t.Error("an immigrant with identical fitness must not clear the converged flag")
	}
}

// TestMergeIslandStats checks the history merge: per-generation best
// over islands with volume tie-breaks and population-weighted means,
// over islands of different lengths.
func TestMergeIslandStats(t *testing.T) {
	a := testIsland(0, 0.1, 0.2) // population 2
	a.gens = 2
	a.history = []GenStats{
		{Generation: 0, BestError: 0.5, BestVolume: 4, MeanError: 0.6},
		{Generation: 1, BestError: 0.3, BestVolume: 6, MeanError: 0.4},
	}
	b := testIsland(1, 0.1, 0.2, 0.3) // population 3
	b.gens = 1
	b.history = []GenStats{
		{Generation: 0, BestError: 0.5, BestVolume: 3, MeanError: 0.1},
	}
	gens, hist := mergeIslandStats([]*island{a, b})
	if gens != 2 {
		t.Fatalf("gens = %d, want 2", gens)
	}
	if len(hist) != 2 {
		t.Fatalf("merged history has %d entries, want 2", len(hist))
	}
	// Generation 0: equal errors, island b wins the volume tie-break;
	// mean = (0.6*2 + 0.1*3) / 5.
	if hist[0].BestError != 0.5 || hist[0].BestVolume != 3 {
		t.Errorf("gen 0 best = (%v, %d), want (0.5, 3)", hist[0].BestError, hist[0].BestVolume)
	}
	if want := (0.6*2 + 0.1*3) / 5; math.Abs(hist[0].MeanError-want) > 1e-15 {
		t.Errorf("gen 0 mean = %v, want %v", hist[0].MeanError, want)
	}
	// Generation 1: only island a ran it.
	if hist[1].BestError != 0.3 || hist[1].BestVolume != 6 || hist[1].MeanError != 0.4 {
		t.Errorf("gen 1 = %+v", hist[1])
	}
}

// TestBatchEvaluatorMatchesService pins that the serial per-island
// evaluator and the parallel Service batch path produce bit-identical
// fitnesses, including when several evaluators run concurrently against
// one Service (the island configuration; run under -race in CI).
func TestBatchEvaluatorMatchesService(t *testing.T) {
	set := measuredSet(t, hiddenMapping())
	svc, err := engine.NewService(set, engine.ServiceOptions{Workers: 2, FitCacheEntries: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const batches, per = 4, 32
	ms := make([][]*portmap.Mapping, batches)
	want := make([][]engine.Fitness, batches)
	for b := range ms {
		ms[b] = make([]*portmap.Mapping, per)
		for i := range ms[b] {
			ms[b][i] = portmap.Random(rng, portmap.RandomOptions{NumInsts: set.NumInsts, NumPorts: 3})
		}
		want[b] = make([]engine.Fitness, per)
		if err := svc.EvaluateAll(context.Background(), ms[b], want[b]); err != nil {
			t.Fatal(err)
		}
	}
	got := make([][]engine.Fitness, batches)
	errs := make([]error, batches)
	var wg = make(chan struct{}, batches)
	for b := 0; b < batches; b++ {
		go func(b int) {
			defer func() { wg <- struct{}{} }()
			be := svc.NewBatchEvaluator()
			got[b] = make([]engine.Fitness, per)
			errs[b] = be.EvaluateAll(context.Background(), ms[b], got[b])
		}(b)
	}
	for b := 0; b < batches; b++ {
		<-wg
	}
	for b := range got {
		if errs[b] != nil {
			t.Fatal(errs[b])
		}
		for i := range got[b] {
			if math.Float64bits(got[b][i].Davg) != math.Float64bits(want[b][i].Davg) ||
				got[b][i].Volume != want[b][i].Volume {
				t.Errorf("batch %d candidate %d: BatchEvaluator %v != Service %v", b, i, got[b][i], want[b][i])
			}
		}
	}
}
