package evo

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// checkGoroutines asserts the goroutine count settles back to (near)
// base after a canceled run — no worker may outlive Run.
func checkGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak after cancellation: %d > base %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// wellFormedPartial asserts the partial-result contract: a valid best
// mapping, History consistent with Generations, and a history that is
// an exact prefix of the uninterrupted run's.
func wellFormedPartial(t *testing.T, label string, partial, full *Result) {
	t.Helper()
	if partial == nil || partial.Best == nil {
		t.Fatalf("%s: no partial result", label)
	}
	if err := partial.Best.Validate(); err != nil {
		t.Fatalf("%s: partial best invalid: %v", label, err)
	}
	historyPrefix(t, label, partial, full)
}

// TestCancelMidRunPartialResult cancels a single-population run at
// several generation boundaries (via the OnGeneration hook, the
// deterministic cancellation point) and checks the typed error, the
// partial-result shape, and that no goroutines leak. Run under -race
// this also exercises the pool shutdown paths.
func TestCancelMidRunPartialResult(t *testing.T) {
	opts := ckptOpts()
	opts.Workers = 4
	full := mustRun(t, opts)
	base := runtime.NumGoroutine()

	for _, g := range []int{1, 3, 7} {
		ctx, hook := cancelAt(g)
		copts := opts
		copts.OnGeneration = hook
		partial, err := Run(ctx, measuredSet(t, hiddenMapping()), copts)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("cancel@%d: err = %v, want ErrCanceled", g, err)
		}
		if !Interrupted(err) {
			t.Fatalf("cancel@%d: Interrupted(err) = false", g)
		}
		if partial.Generations != g {
			t.Errorf("cancel@%d: Generations = %d, want %d", g, partial.Generations, g)
		}
		wellFormedPartial(t, "cancel", partial, full)
	}
	checkGoroutines(t, base)
}

// TestCancelIslandsPartialResult does the same for the island model:
// cancellation at an epoch barrier with islands fanned out over
// workers must return a well-formed combined best and leave no
// goroutines behind.
func TestCancelIslandsPartialResult(t *testing.T) {
	opts := ckptOpts()
	opts.Workers = 4
	opts.Islands = 3
	opts.MigrationInterval = 2
	full := mustRun(t, opts)
	base := runtime.NumGoroutine()

	ctx, hook := cancelAt(4)
	copts := opts
	copts.OnGeneration = hook
	partial, err := Run(ctx, measuredSet(t, hiddenMapping()), copts)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if partial == nil || partial.Best == nil {
		t.Fatal("no partial result")
	}
	if err := partial.Best.Validate(); err != nil {
		t.Fatalf("partial best invalid: %v", err)
	}
	if partial.Generations < 4 {
		t.Errorf("Generations = %d, want >= 4 (canceled after barrier 4)", partial.Generations)
	}
	_ = full
	checkGoroutines(t, base)
}

// TestCancelDuringLocalSearch cancels after the last generation
// completes, so the interruption lands in the local-search phase: the
// partial result must carry the full generational history plus the
// typed error.
func TestCancelDuringLocalSearch(t *testing.T) {
	opts := ckptOpts()
	full := mustRun(t, opts)

	ctx, hook := cancelAt(full.Generations) // fires after the final generation
	copts := opts
	copts.OnGeneration = hook
	partial, err := Run(ctx, measuredSet(t, hiddenMapping()), copts)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	wellFormedPartial(t, "local search", partial, full)
	if partial.Generations != full.Generations {
		t.Errorf("Generations = %d, want %d", partial.Generations, full.Generations)
	}
}

// TestDeadlineTyped: an expired deadline surfaces as ErrDeadline (not
// ErrCanceled), before any work happens — so no partial result exists.
func TestDeadlineTyped(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := Run(ctx, measuredSet(t, hiddenMapping()), ckptOpts())
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatal("deadline expiry must not also match ErrCanceled")
	}
	if res != nil {
		t.Fatalf("pre-start deadline returned a result: %+v", res)
	}
}

// TestCancelBeforeStart: an already-canceled context returns
// ErrCanceled with no result.
func TestCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, measuredSet(t, hiddenMapping()), ckptOpts())
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res != nil {
		t.Fatalf("pre-start cancellation returned a result: %+v", res)
	}
}
