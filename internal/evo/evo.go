// Package evo implements the evolutionary algorithm of paper §4.4 that
// searches for a port mapping explaining a set of measured throughputs.
//
// The algorithm follows the paper's Algorithm 1:
//
//	initialize population randomly
//	while not done:
//	    apply evolutionary operators   (binary recombination, no mutation)
//	    evaluate fitness               (bottleneck simulation, §4.5)
//	    select new population          (best p of 2p)
//	perform local search               (greedy hill climbing on µop counts)
//	return fittest individual
//
// Fitness scalarizes two objectives (a priori scalarization of the
// multiobjective problem): the average relative prediction error Davg and
// the µop volume V, each affinely normalized to [0, 1000] over the
// current combined population.
//
// Per the paper, there is no mutation operator by default: experiments
// showed little benefit over spending the same fitness evaluations on a
// larger population. A mutation rate is retained as an explicit ablation
// knob.
//
// Fitness evaluation — the dominant cost of the algorithm — is delegated
// to internal/engine's batched, parallel fitness service; this package
// contains no worker-pool code of its own beyond distributing islands
// over engine.ForEachWorker.
//
// # Island model
//
// With Options.Islands > 1 the population is sharded into sub-populations
// ("islands") that run the algorithm above independently and
// concurrently, each on its own goroutine with its own deterministic RNG
// stream split from Options.Seed. Every Options.MigrationInterval
// generations the islands exchange individuals on a ring: island k's
// best Options.MigrationCount individuals (cloned) replace island
// (k+1 mod N)'s worst. All islands share one engine.Service — and with
// it the lock-free throughput memo and the cross-generation fitness
// cache — through per-island engine.BatchEvaluator handles. Because
// islands only interact at epoch barriers (migration is applied
// serially, collect-then-apply) and every shared cache is a bit-exact
// memo of a pure function, a fixed Seed and a fixed Islands produce
// bit-identical results regardless of Workers or goroutine scheduling;
// Islands <= 1 reproduces the single-population algorithm bit-exactly.
package evo

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"pmevo/internal/cachetable"
	"pmevo/internal/engine"
	"pmevo/internal/exp"
	"pmevo/internal/portmap"
	"pmevo/internal/runctrl"
)

// Typed interruption errors, re-exported from internal/runctrl so
// consumers can errors.Is against the evo package directly. A Run that
// returns one of these still returns a non-nil *Result when any
// generation completed: the best-so-far partial result, with History
// and Generations reflecting the work actually done.
var (
	ErrCanceled = runctrl.ErrCanceled
	ErrDeadline = runctrl.ErrDeadline
)

// Interrupted reports whether err is a cancellation/deadline
// interruption (and a partial Result may accompany it).
func Interrupted(err error) bool { return runctrl.Interrupted(err) }

// Options configures the evolutionary algorithm.
type Options struct {
	// PopulationSize is p: each generation keeps the best p of 2p
	// individuals. The paper's evaluation uses 100,000; scaled-down runs
	// converge on small ISAs with far less.
	PopulationSize int
	// MaxGenerations bounds the evolution loop.
	MaxGenerations int
	// NumPorts is the |P| hyperparameter given by the user (Figure 5:
	// "# ports").
	NumPorts int
	// MaxUopsPerInst bounds the distinct µops sampled per instruction at
	// initialization (0: |P|, the paper's choice).
	MaxUopsPerInst int
	// MutationRate is the per-instruction probability of re-randomizing
	// a child's decomposition. The paper's design uses 0; non-zero
	// values exist for the ablation study.
	MutationRate float64
	// LocalSearch enables the final greedy hill-climbing phase.
	LocalSearch bool
	// LocalSearchMaxPasses bounds hill-climbing sweeps (0: until no
	// improvement, at most 32 passes).
	LocalSearchMaxPasses int
	// VolumeObjective includes the µop volume V in the fitness. The
	// paper always uses it; disabling it is an ablation that yields less
	// compact, harder-to-interpret mappings.
	VolumeObjective bool
	// AccuracyWeight scales the normalized accuracy objective relative
	// to the volume objective (the paper's scalarization weights both
	// equally; values ≤ 0 mean 1). On very small problems the
	// equal-weight scalarization can prefer compact-but-wrong mappings;
	// raising this weight is an extension knob that trades compactness
	// for accuracy (see the ablation tests).
	AccuracyWeight float64
	// Workers is the number of parallel fitness evaluation goroutines
	// (0: GOMAXPROCS). Workers are shared across islands, not
	// per-island: with Islands <= 1 each generation's batch fans out
	// over Workers goroutines; with Islands > 1 each island evaluates
	// serially on its own goroutine and the islands themselves are
	// distributed over min(Workers, Islands) goroutines — total
	// parallelism never exceeds Workers either way, and the value never
	// affects results (see Islands).
	Workers int
	// Islands shards the population into this many sub-populations of
	// PopulationSize/Islands individuals (remainder spread over the
	// first islands) that evolve concurrently, each on its own RNG
	// stream split deterministically from Seed, exchanging individuals
	// on a ring every MigrationInterval generations. Determinism
	// contract: a fixed Seed and a fixed Islands give bit-identical
	// results regardless of Workers or goroutine scheduling (pinned by
	// test), and Islands <= 1 reproduces the single-population
	// algorithm bit-exactly. Clamped so every island holds at least 2
	// individuals (Islands <= 0 -> 1, Islands > PopulationSize/2 ->
	// PopulationSize/2).
	Islands int
	// MigrationInterval is the epoch length: the number of generations
	// each island evolves between ring migrations (0: default 5;
	// negative: migration off). Ignored with Islands <= 1.
	MigrationInterval int
	// MigrationCount is the number of emigrants each island sends to
	// its ring successor per migration — its best individuals, cloned,
	// replacing the receiver's worst. 0 selects 1; values >= the
	// smallest island population are capped one below it; negative
	// disables migration.
	MigrationCount int
	// Engine selects the throughput engine used for fitness evaluation.
	// nil selects the engine package's zero-allocation bottleneck fast
	// path (§4.5); any other engine.Predictor (e.g. the LP reference)
	// goes through the generic interface.
	Engine engine.Predictor
	// Seed makes runs reproducible.
	Seed int64
	// DisableCache turns off the redundancy-exploiting evaluation layer:
	// the engine's shared throughput memo, the duplicate-candidate skip,
	// and the incremental (delta) scoring of local-search probes — each
	// probe is scored by a full evaluation instead. Results are
	// bit-identical either way (pinned by test); the knob exists for
	// benchmarking and debugging. Also forces FitnessCacheEntries off.
	DisableCache bool
	// FitnessCacheEntries bounds the engine's cross-generation fitness
	// cache (whole-mapping fingerprint -> Davg, slots rounded up to a
	// power of two): recurring candidates across generations — and
	// across islands — skip evaluation entirely, where the
	// per-generation duplicate skip only primes from the surviving
	// population. 0 selects the default (2^16 slots); negative disables
	// the cache. Hits return the exact floats a fresh evaluation would
	// produce, so Best/History are bit-identical either way (pinned by
	// test); only Result.FitnessEvaluations shrinks with the work
	// skipped (and, with Islands > 1, may vary slightly across
	// schedules as islands race to insert the same key — values never
	// do). Forced off by DisableCache.
	FitnessCacheEntries int
	// ConvergenceEps terminates evolution when the spread of Davg in the
	// selected population falls below it and all volumes agree.
	ConvergenceEps float64
	// SeedMappings are injected into the initial population (extension:
	// warm-starting from an existing, possibly outdated port mapping —
	// the OSACA-style validation/refinement use case of §6). Mappings
	// must cover the instruction set with the configured port count.
	SeedMappings []*portmap.Mapping
	// MemoWarm seeds the engine's throughput memo with entries spilled
	// by a previous run against the SAME experiment set
	// (engine.LoadMemo). Bit-exact: warm entries are the floats a fresh
	// evaluation would produce, so results never depend on the warm
	// start. Ignored when DisableCache is set.
	MemoWarm []cachetable.Entry
	// SnapshotMemo captures the memo's live entries into
	// Result.MemoSnapshot when the run completes, for persistence via
	// engine.SaveMemo.
	SnapshotMemo bool
	// CheckpointDir enables crash-safe checkpointing: every
	// CheckpointInterval generations (and at every migration barrier, on
	// interruption, and on completion of the generational phase) the
	// run atomically spills populations, RNG stream positions,
	// generation counters, and the engine's fitness caches to this
	// directory. Empty disables checkpointing.
	CheckpointDir string
	// CheckpointInterval is the periodic checkpoint cadence in
	// generations (0: default 10; negative: periodic checkpoints off —
	// barrier/interruption/completion checkpoints still happen).
	// Clamped, never an error, in the planIslands style.
	CheckpointInterval int
	// Resume restores the run from CheckpointDir's checkpoint before
	// evolving. The determinism contract: an interrupted-then-resumed
	// fixed-seed run produces Best/BestError/BestVolume/History/
	// Generations bit-identical to an uninterrupted run (pinned by
	// golden test); only run-local diagnostics (FitnessEvaluations,
	// CacheStats) may differ, since the resumed process skips work the
	// first process already did. A missing, damaged, or incompatible
	// checkpoint — different experiment set, seed, or any
	// trajectory-shaping option — logs a diagnostic and cold-starts;
	// MaxGenerations may differ (a resume can extend the budget).
	Resume bool
	// OnGeneration, when non-nil, is called on the coordinator
	// goroutine after each completed generation (single-population
	// runs) or after each migration barrier (island runs) with the
	// number of generations completed so far. It is a progress hook and
	// a deterministic cancellation point for tests; it must not call
	// back into the run.
	OnGeneration func(gensDone int)
	// Log, when non-nil, receives checkpoint/resume diagnostics
	// (Printf-style). Nil means silent.
	Log func(format string, args ...any)
}

// DefaultOptions returns a configuration suitable for medium-size
// inference runs.
func DefaultOptions(numPorts int) Options {
	return Options{
		PopulationSize:  500,
		MaxGenerations:  60,
		NumPorts:        numPorts,
		LocalSearch:     true,
		VolumeObjective: true,
		Seed:            1,
		ConvergenceEps:  1e-9,
	}
}

// GenStats records one generation for convergence inspection.
type GenStats struct {
	Generation int
	BestError  float64
	BestVolume int
	MeanError  float64
}

// Result is the outcome of a Run.
type Result struct {
	// Best is the fittest mapping found.
	Best *portmap.Mapping
	// BestError is Davg(Best) on the input measurements.
	BestError float64
	// BestVolume is V(Best).
	BestVolume int
	// Generations is the number of evolution steps performed.
	Generations int
	// FitnessEvaluations counts Davg computations (the paper's cost
	// metric for the bottleneck algorithm's speed).
	FitnessEvaluations int
	// History records per-generation statistics.
	History []GenStats
	// CacheStats snapshots the engine's evaluation counters (memo hits,
	// delta evaluations, experiments skipped, disk-warm traffic) at the
	// end of the run.
	CacheStats engine.CacheStats
	// MemoSnapshot holds the memo's live entries when
	// Options.SnapshotMemo was set (nil otherwise), ready for
	// engine.SaveMemo.
	MemoSnapshot []cachetable.Entry
}

// individual carries a candidate mapping with cached objectives.
type individual struct {
	m      *portmap.Mapping
	davg   float64
	volume int
}

// Run executes the evolutionary algorithm on a measured experiment set.
//
// Cancellation: ctx is honored at every generation boundary, between
// candidates inside a fitness batch, and between local-search probes.
// When ctx is canceled or its deadline passes, Run stops at the next
// such point and returns the best-so-far partial *Result together with
// a typed error wrapping ErrCanceled or ErrDeadline (nil Result only
// when not even the initial population was evaluated). With
// Options.CheckpointDir set, the state at the last completed
// generation boundary is checkpointed before returning, ready for
// Resume.
func Run(ctx context.Context, set *exp.Set, opts Options) (*Result, error) {
	if set == nil || set.NumInsts == 0 {
		return nil, errors.New("evo: empty instruction set")
	}
	if len(set.Measurements) == 0 {
		return nil, errors.New("evo: no measurements")
	}
	if opts.PopulationSize < 2 {
		return nil, errors.New("evo: population size must be at least 2")
	}
	if opts.MaxGenerations < 1 {
		return nil, errors.New("evo: need at least one generation")
	}
	if opts.NumPorts <= 0 || opts.NumPorts > portmap.MaxPorts {
		return nil, fmt.Errorf("evo: invalid port count %d", opts.NumPorts)
	}
	for _, m := range set.Measurements {
		if m.Throughput <= 0 {
			return nil, fmt.Errorf("evo: non-positive measured throughput %g", m.Throughput)
		}
	}
	if opts.ConvergenceEps <= 0 {
		opts.ConvergenceEps = 1e-9
	}
	for _, sm := range opts.SeedMappings {
		if sm.NumInsts() != set.NumInsts || sm.NumPorts != opts.NumPorts {
			return nil, fmt.Errorf("evo: seed mapping dimensions %dx%d do not match %dx%d",
				sm.NumInsts(), sm.NumPorts, set.NumInsts, opts.NumPorts)
		}
		if err := sm.Validate(); err != nil {
			return nil, fmt.Errorf("evo: invalid seed mapping: %w", err)
		}
	}

	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	plan := planIslands(opts)
	setFP := engine.ExpSetFingerprint(set)
	ckptKey := checkpointKey(setFP, opts, plan)

	// Resume restores the checkpoint (and the cache spills next to it)
	// before the Service exists, so warm entries ride in through the
	// service options. Every failure path cold-starts with a diagnostic.
	var restored *ckptState
	fitWarm := []cachetable.Entry(nil)
	memoWarm := opts.MemoWarm
	if opts.Resume && opts.CheckpointDir != "" {
		st, err := loadCheckpoint(opts.CheckpointDir, ckptKey, set.NumInsts, opts.NumPorts)
		if err != nil {
			logf("evo: resume: cold start: %v", err)
		} else if err := validateCheckpointGeometry(st, plan, opts); err != nil {
			logf("evo: resume: cold start: %v", err)
		} else {
			restored = st
			logf("evo: resume: restored checkpoint at generation %d from %s",
				maxGens(st), CheckpointPath(opts.CheckpointDir))
		}
		if !opts.DisableCache {
			if entries, err := engine.LoadFitCache(engine.FitCachePath(opts.CheckpointDir), set); err == nil {
				fitWarm = entries
			}
			if entries, err := engine.LoadMemo(engine.MemoPath(opts.CheckpointDir), set); err == nil {
				memoWarm = append(append([]cachetable.Entry(nil), memoWarm...), entries...)
			}
		}
	}

	memoEntries := 0
	fitEntries := opts.FitnessCacheEntries
	if fitEntries == 0 {
		fitEntries = defaultFitCacheEntries
	}
	if fitEntries < 0 || opts.DisableCache {
		fitEntries = 0
	}
	if opts.DisableCache {
		memoEntries = -1
	}
	svc, err := engine.NewService(set, engine.ServiceOptions{
		Workers:         opts.Workers,
		Predictor:       opts.Engine,
		MemoEntries:     memoEntries,
		MemoWarm:        memoWarm,
		FitCacheEntries: fitEntries,
		FitCacheWarm:    fitWarm,
	})
	if err != nil {
		return nil, fmt.Errorf("evo: %w", err)
	}

	var cp *checkpointer
	if opts.CheckpointDir != "" {
		cp = &checkpointer{
			dir:      opts.CheckpointDir,
			interval: planCheckpointInterval(opts),
			key:      ckptKey,
			set:      set,
			svc:      svc,
			numInsts: set.NumInsts,
			numPorts: opts.NumPorts,
			logf:     logf,
		}
	}

	var best individual
	res := &Result{}
	if plan.islands == 1 {
		best, err = runSingle(ctx, set, opts, svc, res, cp, restored)
	} else {
		best, err = runIslands(ctx, set, opts, svc, plan, res, cp, restored)
	}
	finish := func(b individual) *Result {
		res.Best = b.m
		res.BestError = b.davg
		res.BestVolume = b.volume
		res.FitnessEvaluations = svc.Evaluations()
		res.CacheStats = svc.Stats()
		if opts.SnapshotMemo {
			res.MemoSnapshot = svc.MemoSnapshot()
		}
		return res
	}
	if err != nil {
		if runctrl.Interrupted(err) && best.m != nil {
			return finish(best), err
		}
		return nil, err
	}
	if opts.LocalSearch {
		improved, lsErr := localSearch(ctx, svc, best, opts)
		if lsErr != nil {
			if runctrl.Interrupted(lsErr) && improved.m != nil {
				return finish(improved), lsErr
			}
			return nil, lsErr
		}
		best = improved
	}
	return finish(best), nil
}

// Resume is Run with Options.Resume forced on: restore the checkpoint
// in opts.CheckpointDir (cold-starting with a diagnostic when there is
// none) and continue to MaxGenerations.
func Resume(ctx context.Context, set *exp.Set, opts Options) (*Result, error) {
	opts.Resume = true
	return Run(ctx, set, opts)
}

// maxGens returns the furthest generation any island of a checkpoint
// reached (for the resume diagnostic).
func maxGens(st *ckptState) int {
	g := 0
	for i := range st.islands {
		if st.islands[i].gens > g {
			g = st.islands[i].gens
		}
	}
	return g
}

// validateCheckpointGeometry cross-checks a decoded checkpoint against
// the run's clamped plan. The content key already covers everything
// here (same options hash to the same key), so failures indicate a
// damaged-but-checksum-colliding file or a version skew — treated, as
// always, as a cold start.
func validateCheckpointGeometry(st *ckptState, plan islandPlan, opts Options) error {
	if plan.islands == 1 {
		if st.mode != ckptModeSingle || len(st.islands) != 1 {
			return fmt.Errorf("checkpoint has %d islands in mode %d, want single-population", len(st.islands), st.mode)
		}
		if n := len(st.islands[0].pop); n != opts.PopulationSize {
			return fmt.Errorf("checkpoint population %d, want %d", n, opts.PopulationSize)
		}
		return nil
	}
	if st.mode != ckptModeIslands || len(st.islands) != plan.islands {
		return fmt.Errorf("checkpoint has %d islands in mode %d, want %d islands", len(st.islands), st.mode, plan.islands)
	}
	for k := range st.islands {
		if n := len(st.islands[k].pop); n != plan.sizes[k] {
			return fmt.Errorf("checkpoint island %d population %d, want %d", k, n, plan.sizes[k])
		}
	}
	return nil
}

// defaultFitCacheEntries sizes the cross-generation fitness cache when
// Options.FitnessCacheEntries is 0; defaultMigrationInterval is the
// epoch length when Options.MigrationInterval is 0.
const (
	defaultFitCacheEntries   = 1 << 16
	defaultMigrationInterval = 5
)

// islandPlan is the clamped island-model geometry of a run (the
// satellite contract: nonsensical Options values are normalized here,
// never returned as errors).
type islandPlan struct {
	islands  int   // >= 1
	sizes    []int // per-island population; sums to PopulationSize (nil when islands == 1)
	interval int   // generations per epoch; 0: migration off
	count    int   // emigrants per migration; 0: migration off
}

// planIslands clamps the island-model knobs: Islands <= 0 collapses to
// 1, Islands too large for PopulationSize is capped so every island
// holds at least 2 individuals, MigrationCount is capped below the
// smallest island population, and zero interval/count select defaults.
func planIslands(opts Options) islandPlan {
	n := opts.Islands
	if n <= 0 {
		n = 1
	}
	if max := opts.PopulationSize / 2; n > max {
		n = max
	}
	pl := islandPlan{islands: n}
	if n == 1 {
		return pl
	}
	base, rem := opts.PopulationSize/n, opts.PopulationSize%n
	pl.sizes = make([]int, n)
	for k := range pl.sizes {
		pl.sizes[k] = base
		if k < rem {
			pl.sizes[k]++
		}
	}
	interval := opts.MigrationInterval
	if interval == 0 {
		interval = defaultMigrationInterval
	}
	count := opts.MigrationCount
	if count == 0 {
		count = 1
	}
	if count > base-1 {
		count = base - 1 // base is the smallest island population
	}
	if interval < 0 || count < 0 {
		interval, count = 0, 0
	}
	pl.interval, pl.count = interval, count
	return pl
}

// runSingle is the single-population algorithm — the pre-island code
// path, preserved so that Islands <= 1 consumes the RNG stream
// identically and reproduces historical fixed-seed runs bit-exactly
// (pinned by golden test). It returns the fittest individual before
// local search and fills res.Generations/History.
//
// Cancellation stops the loop at the next generation boundary (or
// mid-batch via evaluate, in which case the aborted generation's
// children are discarded) and returns the last completed generation's
// best with the typed interruption error; the boundary state is
// checkpointed first. An interruption before the initial population
// was evaluated returns no partial (there is no consistent state yet).
func runSingle(ctx context.Context, set *exp.Set, opts Options, svc *engine.Service, res *Result, cp *checkpointer, restored *ckptState) (individual, error) {
	rng, src := newCountedRand(opts.Seed)
	p := opts.PopulationSize
	dedupe := !opts.DisableCache
	// seen caches fitness by whole-mapping fingerprint for the current
	// population, so duplicate candidates — common once the population
	// converges — skip evaluation entirely. Rebuilt per generation to
	// stay bounded.
	seen := make(map[uint64]engine.Fitness)

	var pop []individual
	startGen := 0
	if restored != nil {
		// The restored population is already evaluated and sorted; the
		// RNG fast-forwards to the boundary position, after which every
		// draw matches the uninterrupted run.
		st := &restored.islands[0]
		pop = make([]individual, 0, 2*p)
		pop = append(pop, st.pop...)
		startGen = st.gens
		res.Generations = st.gens
		res.History = append(res.History, st.history...)
		src.skip(st.draws)
		if converged(pop, opts.ConvergenceEps) || st.converged {
			return pop[0], nil
		}
	} else {
		pop = make([]individual, 0, 2*p)
		for _, sm := range opts.SeedMappings {
			if len(pop) < p {
				pop = append(pop, individual{m: sm.Clone()})
			}
		}
		for len(pop) < p {
			m := portmap.Random(rng, portmap.RandomOptions{
				NumInsts:       set.NumInsts,
				NumPorts:       opts.NumPorts,
				ThroughputHint: set.Individual,
				MaxUops:        opts.MaxUopsPerInst,
			})
			pop = append(pop, individual{m: m})
		}
		if err := evaluate(ctx, svc, svc, pop, seen, dedupe); err != nil {
			return individual{}, err
		}
	}

	// singleState snapshots the boundary state for checkpointing.
	singleState := func(gens int, draws uint64) *ckptState {
		return &ckptState{mode: ckptModeSingle, islands: []ckptIsland{{
			draws:   draws,
			gens:    gens,
			inited:  true,
			history: res.History,
			pop:     pop,
		}}}
	}

	for gen := startGen; gen < opts.MaxGenerations; gen++ {
		boundaryDraws := src.n
		if err := runctrl.Check(ctx); err != nil {
			cp.interruptOrDone(gen, func() *ckptState { return singleState(gen, boundaryDraws) })
			return pop[0], err
		}

		// Evolutionary operators: p children from recombined parents.
		children := make([]individual, 0, p)
		for len(children) < p {
			a := pop[rng.Intn(len(pop))].m
			b := pop[rng.Intn(len(pop))].m
			c1, c2 := recombine(rng, a, b, set.Individual)
			if opts.MutationRate > 0 {
				mutate(rng, c1, opts, set.Individual)
				mutate(rng, c2, opts, set.Individual)
			}
			children = append(children, individual{m: c1})
			if len(children) < p {
				children = append(children, individual{m: c2})
			}
		}
		if dedupe {
			// Prime the duplicate skip with the already evaluated parents.
			clear(seen)
			for i := range pop {
				seen[pop[i].m.FingerprintAll()] = engine.Fitness{Davg: pop[i].davg, Volume: pop[i].volume}
			}
		}
		if err := evaluate(ctx, svc, svc, children, seen, dedupe); err != nil {
			if runctrl.Interrupted(err) {
				// The aborted generation's children are discarded; pop is
				// still the last boundary state, and boundaryDraws predates
				// this generation's recombination draws.
				cp.interruptOrDone(gen, func() *ckptState { return singleState(gen, boundaryDraws) })
				return pop[0], err
			}
			return individual{}, err
		}
		pop = append(pop, children...)

		// Selection: scalarize both objectives over the combined
		// population and keep the best p.
		selectBest(pop, p, opts.VolumeObjective, opts.AccuracyWeight)
		pop = pop[:p]

		res.Generations = gen + 1
		best := pop[0]
		res.History = append(res.History, GenStats{
			Generation: gen,
			BestError:  best.davg,
			BestVolume: best.volume,
			MeanError:  meanError(pop),
		})

		cp.maybe(gen+1, func() *ckptState { return singleState(gen+1, src.n) })
		if opts.OnGeneration != nil {
			opts.OnGeneration(gen + 1)
		}

		if converged(pop, opts.ConvergenceEps) {
			break
		}
	}
	cp.interruptOrDone(res.Generations, func() *ckptState { return singleState(res.Generations, src.n) })
	return pop[0], nil
}

// island is one sub-population of an island-model run. Between epoch
// barriers an island touches no state outside itself except the shared
// engine.Service's bit-exact pure-function caches (through its private
// BatchEvaluator), which is what makes the run scheduling-independent.
type island struct {
	idx        int
	rng        *rand.Rand
	src        *countingSource
	pop        []individual // sorted best-first after every generation
	seen       map[uint64]engine.Fitness
	be         *engine.BatchEvaluator
	history    []GenStats
	gens       int
	draws      uint64 // RNG draw count at the last generation boundary
	epochStart int    // gens at the start of the current epoch
	target     int    // gens this epoch runs to (set by the coordinator)
	inited     bool
	converged  bool
	err        error
}

// alive reports whether the island still has evolution budget.
func (isl *island) alive(maxGens int) bool {
	return isl.err == nil && isl.gens < maxGens && !isl.converged
}

// evolve advances the island up to its epoch target (first evaluating
// the initial population if this is the island's first epoch), running
// the same generation loop as runSingle on the island's private RNG and
// population. Called concurrently across islands; errors are parked in
// isl.err for the coordinator. Cancellation stops the island at a
// generation boundary — isl.gens/isl.draws always describe a fully
// evaluated, sorted population, so an interrupted island checkpoints
// and resumes exactly like one that hit its barrier.
func (isl *island) evolve(ctx context.Context, set *exp.Set, svc *engine.Service, opts Options, dedupe bool) {
	if isl.err != nil {
		return
	}
	if !isl.inited {
		if err := evaluate(ctx, svc, isl.be, isl.pop, isl.seen, dedupe); err != nil {
			isl.err = err
			return
		}
		isl.inited = true
		isl.draws = isl.src.n
	}
	p := len(isl.pop)
	for isl.gens < isl.target && isl.gens < opts.MaxGenerations && !isl.converged {
		if runctrl.Check(ctx) != nil {
			// Boundary stop: the coordinator notices the interruption
			// itself, so the island just stops cleanly.
			return
		}
		gen := isl.gens

		children := make([]individual, 0, p)
		for len(children) < p {
			a := isl.pop[isl.rng.Intn(len(isl.pop))].m
			b := isl.pop[isl.rng.Intn(len(isl.pop))].m
			c1, c2 := recombine(isl.rng, a, b, set.Individual)
			if opts.MutationRate > 0 {
				mutate(isl.rng, c1, opts, set.Individual)
				mutate(isl.rng, c2, opts, set.Individual)
			}
			children = append(children, individual{m: c1})
			if len(children) < p {
				children = append(children, individual{m: c2})
			}
		}
		if dedupe {
			clear(isl.seen)
			for i := range isl.pop {
				isl.seen[isl.pop[i].m.FingerprintAll()] = engine.Fitness{Davg: isl.pop[i].davg, Volume: isl.pop[i].volume}
			}
		}
		if err := evaluate(ctx, svc, isl.be, children, isl.seen, dedupe); err != nil {
			// Interrupted mid-batch: the aborted generation's children
			// are discarded and the island state stays at the last
			// boundary (gens/draws untouched). Real errors propagate.
			isl.err = err
			return
		}
		isl.pop = append(isl.pop, children...)
		selectBest(isl.pop, p, opts.VolumeObjective, opts.AccuracyWeight)
		isl.pop = isl.pop[:p]

		best := isl.pop[0]
		isl.history = append(isl.history, GenStats{
			Generation: gen,
			BestError:  best.davg,
			BestVolume: best.volume,
			MeanError:  meanError(isl.pop),
		})
		isl.gens = gen + 1
		isl.draws = isl.src.n
		if converged(isl.pop, opts.ConvergenceEps) {
			isl.converged = true
		}
	}
}

// runIslands is the island-model run: plan.islands sub-populations
// evolving concurrently in epochs of plan.interval generations, with a
// serial ring migration at every epoch barrier, and a final cross-island
// selection over the union of the surviving populations. Returns the
// fittest individual before local search and fills
// res.Generations/History.
//
// Cancellation is observed at island generation boundaries and acted on
// at the epoch barrier: the coordinator checkpoints every island's
// boundary state (per-island gens + epochStart, so a mid-epoch stop
// resumes to the same barrier) and returns the cross-island best so far
// with the typed interruption error.
func runIslands(ctx context.Context, set *exp.Set, opts Options, svc *engine.Service, plan islandPlan, res *Result, cp *checkpointer, restored *ckptState) (individual, error) {
	// Split one RNG stream per island from the master seed: island k's
	// stream is seeded by the k-th draw, so the layout is a pure
	// function of (Seed, Islands) — independent of Workers and of which
	// goroutine runs which island.
	// The master stream also goes through the draw-counting seam: it is
	// never checkpointed (all its draws happen before any island runs),
	// but routing it through newCountedRand keeps rng.go the only place
	// a raw source is constructed. The wrapped source delegates to the
	// same generator, so the sub-seed layout is bit-identical to
	// rand.New(rand.NewSource(opts.Seed)).
	master, _ := newCountedRand(opts.Seed)
	isls := make([]*island, plan.islands)
	for k := range isls {
		rng, src := newCountedRand(master.Int63())
		isls[k] = &island{
			idx:  k,
			rng:  rng,
			src:  src,
			seen: make(map[uint64]engine.Fitness),
			//pmevo:allow serialhandle -- each island is owned by exactly one worker goroutine per generation (see runIslands); the handle never crosses islands
			be: svc.NewBatchEvaluator(),
		}
	}
	restoredEpoch := false
	if restored != nil {
		// Geometry was validated by the caller; each island fast-forwards
		// its RNG to its boundary draw count and picks up its population,
		// so the continuation is draw-for-draw the uninterrupted run.
		for k, isl := range isls {
			st := &restored.islands[k]
			isl.pop = append(isl.pop, st.pop...)
			isl.history = append(isl.history, st.history...)
			isl.gens = st.gens
			isl.epochStart = st.epochStart
			isl.inited = st.inited
			isl.converged = st.converged
			isl.src.skip(st.draws)
			isl.draws = st.draws
			if isl.inited && !isl.converged && converged(isl.pop, opts.ConvergenceEps) {
				isl.converged = true
			}
		}
		restoredEpoch = true
	} else {
		// Seed mappings are distributed round-robin; each island fills the
		// rest of its population from its own stream.
		for i, sm := range opts.SeedMappings {
			isl := isls[i%len(isls)]
			if len(isl.pop) < plan.sizes[isl.idx] {
				isl.pop = append(isl.pop, individual{m: sm.Clone()})
			}
		}
		for k, isl := range isls {
			for len(isl.pop) < plan.sizes[k] {
				isl.pop = append(isl.pop, individual{m: portmap.Random(isl.rng, portmap.RandomOptions{
					NumInsts:       set.NumInsts,
					NumPorts:       opts.NumPorts,
					ThroughputHint: set.Individual,
					MaxUops:        opts.MaxUopsPerInst,
				})})
			}
			isl.draws = isl.src.n
		}
	}

	// islandState snapshots every island's boundary state for
	// checkpointing (slices are copied at encode time).
	islandState := func() *ckptState {
		st := &ckptState{mode: ckptModeIslands, islands: make([]ckptIsland, len(isls))}
		for k, isl := range isls {
			st.islands[k] = ckptIsland{
				draws:      isl.draws,
				gens:       isl.gens,
				epochStart: isl.epochStart,
				inited:     isl.inited,
				converged:  isl.converged,
				history:    isl.history,
				pop:        isl.pop,
			}
		}
		return st
	}
	maxIslandGens := func() int {
		g := 0
		for _, isl := range isls {
			if isl.gens > g {
				g = isl.gens
			}
		}
		return g
	}
	// combinedBest ranks the union of the initialized populations under
	// one shared normalization, exactly as one combined generation would
	// be — the same selection the uninterrupted run performs at the end.
	combinedBest := func() (individual, bool) {
		combined := make([]individual, 0, opts.PopulationSize)
		for _, isl := range isls {
			if isl.inited {
				combined = append(combined, isl.pop...)
			}
		}
		if len(combined) == 0 {
			return individual{}, false
		}
		selectBest(combined, len(combined), opts.VolumeObjective, opts.AccuracyWeight)
		return combined[0], true
	}

	dedupe := !opts.DisableCache
	migrating := plan.interval > 0 && plan.count > 0
	for {
		alive := 0
		for _, isl := range isls {
			if isl.alive(opts.MaxGenerations) {
				alive++
			}
		}
		if alive == 0 {
			break
		}
		// Assign this epoch's per-island generation targets. On the
		// first round after a resume the saved epochStart is reused, so
		// a mid-epoch interruption continues to the barrier the
		// uninterrupted run would have hit; afterwards each epoch starts
		// at the island's own boundary.
		for _, isl := range isls {
			if !migrating {
				isl.epochStart = isl.gens
				isl.target = opts.MaxGenerations // one epoch runs the full budget
				continue
			}
			if !restoredEpoch {
				isl.epochStart = isl.gens
			}
			isl.target = isl.epochStart + plan.interval
		}
		restoredEpoch = false
		engine.ForEachWorker(len(isls), opts.Workers, func(_, k int) {
			isls[k].evolve(ctx, set, svc, opts, dedupe)
		})
		interrupted := runctrl.Check(ctx)
		for _, isl := range isls {
			if isl.err == nil {
				continue
			}
			if runctrl.Interrupted(isl.err) {
				// The island stopped at its last boundary; the
				// coordinator owns the interruption from here.
				if interrupted == nil {
					interrupted = isl.err
				}
				isl.err = nil
				continue
			}
			return individual{}, isl.err
		}
		if interrupted != nil {
			res.Generations, res.History = mergeIslandStats(isls)
			cp.interruptOrDone(maxIslandGens(), islandState)
			best, ok := combinedBest()
			if !ok {
				return individual{}, interrupted
			}
			return best, interrupted
		}
		if !migrating {
			break
		}
		migrate(isls, plan.count, opts.ConvergenceEps)
		// Migration rewrote populations outside the islands' own
		// generation loops; the barrier checkpoint captures the
		// post-migration state so a resume never replays the exchange.
		for _, isl := range isls {
			isl.epochStart = isl.gens
		}
		cp.barrier(maxIslandGens(), islandState)
		if opts.OnGeneration != nil {
			opts.OnGeneration(maxIslandGens())
		}
	}

	res.Generations, res.History = mergeIslandStats(isls)
	cp.interruptOrDone(res.Generations, islandState)

	// Final cross-island selection over the union of the surviving
	// populations.
	best, _ := combinedBest()
	return best, nil
}

// migrate performs one ring migration: island k's best count individuals
// (clones, so islands never share mutable mappings) replace island
// (k+1 mod N)'s worst. Emigrants are collected from every island before
// any are applied, so the exchange sees each island's pre-migration
// population and the result is independent of application order. A
// converged island keeps donating; receiving immigrants that re-open its
// fitness spread puts it back into the evolution loop.
func migrate(isls []*island, count int, eps float64) {
	n := len(isls)
	emigrants := make([][]individual, n)
	for k, isl := range isls {
		es := make([]individual, 0, count)
		for j := 0; j < count && j < len(isl.pop); j++ {
			src := isl.pop[j]
			es = append(es, individual{m: src.m.Clone(), davg: src.davg, volume: src.volume})
		}
		emigrants[k] = es
	}
	for k := range isls {
		dst := isls[(k+1)%n]
		for j, em := range emigrants[k] {
			dst.pop[len(dst.pop)-1-j] = em
		}
		if dst.converged && !converged(dst.pop, eps) {
			dst.converged = false
		}
	}
}

// mergeIslandStats folds per-island histories into the Result shape:
// generation g's BestError/BestVolume is the best over the islands that
// ran generation g (ties break on volume, then island order), MeanError
// is the population-weighted mean, and Generations is the longest island
// run.
func mergeIslandStats(isls []*island) (int, []GenStats) {
	gens := 0
	for _, isl := range isls {
		if isl.gens > gens {
			gens = isl.gens
		}
	}
	var hist []GenStats
	for g := 0; ; g++ {
		any := false
		hs := GenStats{Generation: g, BestError: math.Inf(1), BestVolume: math.MaxInt}
		sumMean, totalPop := 0.0, 0
		for _, isl := range isls {
			if g >= len(isl.history) {
				continue
			}
			h := isl.history[g]
			if h.BestError < hs.BestError || (h.BestError == hs.BestError && h.BestVolume < hs.BestVolume) {
				hs.BestError, hs.BestVolume = h.BestError, h.BestVolume
			}
			sumMean += h.MeanError * float64(len(isl.pop))
			totalPop += len(isl.pop)
			any = true
		}
		if !any {
			break
		}
		hs.MeanError = sumMean / float64(totalPop)
		hist = append(hist, hs)
	}
	return gens, hist
}

// batchEvaluator abstracts the two batch-evaluation routes: the Service
// itself (parallel over Workers, one batch at a time — the
// single-population path) and a per-island engine.BatchEvaluator
// (serial, any number concurrent against one Service). Both produce
// bit-identical fitnesses.
type batchEvaluator interface {
	EvaluateAll(ctx context.Context, ms []*portmap.Mapping, out []engine.Fitness) error
}

// evaluate fills in the objectives of all individuals through the given
// batch evaluator. With dedupe enabled, structurally equal candidates —
// detected by whole-mapping fingerprint, within the batch and against
// the caller-primed seen map — are evaluated once and the fitness
// copied (bit-identical: equal mappings have equal fitness), and
// candidates remembered by the service's cross-generation fitness cache
// skip evaluation entirely (bit-identical: the cache stores the exact
// Davg a fresh evaluation would produce). Newly computed fitnesses are
// added to seen and to the cross-generation cache.
//
// An interrupted EvaluateAll leaves the batch partially filled; the
// error propagates and no individual is updated, so the caller's
// population stays consistent (the aborted batch is simply discarded).
func evaluate(ctx context.Context, svc *engine.Service, be batchEvaluator, inds []individual, seen map[uint64]engine.Fitness, dedupe bool) error {
	if !dedupe {
		ms := make([]*portmap.Mapping, len(inds))
		for i := range inds {
			ms[i] = inds[i].m
		}
		fits := make([]engine.Fitness, len(inds))
		if err := be.EvaluateAll(ctx, ms, fits); err != nil {
			return err
		}
		for i := range inds {
			inds[i].davg = fits[i].Davg
			inds[i].volume = fits[i].Volume
		}
		return nil
	}

	fps := make([]uint64, len(inds))
	batch := make(map[uint64]int, len(inds)) // fingerprint -> index into uniq
	uniq := make([]*portmap.Mapping, 0, len(inds))
	for i := range inds {
		fp := inds[i].m.FingerprintAll()
		fps[i] = fp
		if _, ok := seen[fp]; ok {
			continue
		}
		if _, ok := batch[fp]; ok {
			continue
		}
		if davg, ok := svc.FitnessCacheGet(fp); ok {
			seen[fp] = engine.Fitness{Davg: davg, Volume: inds[i].m.Volume()}
			continue
		}
		batch[fp] = len(uniq)
		uniq = append(uniq, inds[i].m)
	}
	fits := make([]engine.Fitness, len(uniq))
	if err := be.EvaluateAll(ctx, uniq, fits); err != nil {
		return err
	}
	for fp, k := range batch {
		seen[fp] = fits[k]
		svc.FitnessCachePut(fp, fits[k].Davg)
	}
	for i := range inds {
		f := seen[fps[i]]
		inds[i].davg = f.Davg
		inds[i].volume = f.Volume
	}
	return nil
}

func meanError(pop []individual) float64 {
	s := 0.0
	for _, ind := range pop {
		s += ind.davg
	}
	return s / float64(len(pop))
}

// converged reports whether the population has collapsed to a single
// fitness value (§4.4 termination criterion).
func converged(pop []individual, eps float64) bool {
	minD, maxD := pop[0].davg, pop[0].davg
	minV, maxV := pop[0].volume, pop[0].volume
	for _, ind := range pop[1:] {
		minD = math.Min(minD, ind.davg)
		maxD = math.Max(maxD, ind.davg)
		if ind.volume < minV {
			minV = ind.volume
		}
		if ind.volume > maxV {
			maxV = ind.volume
		}
	}
	return maxD-minD < eps && minV == maxV
}

// selectBest sorts the population by scalarized fitness F(m) =
// w·Λ1(Davg(m)) + Λ2(V(m)) with both objectives affinely normalized to
// [0, 1000] over the current population (the paper uses w = 1), then
// truncates to the best p. Ties break deterministically on
// (davg, volume). The scalarized key is computed once per individual —
// O(n) normalizations — and the stable sort compares keys, so the
// resulting order is identical to recomputing the key in the comparator.
func selectBest(pop []individual, p int, volumeObjective bool, accuracyWeight float64) {
	if accuracyWeight <= 0 {
		accuracyWeight = 1
	}
	minD, maxD := pop[0].davg, pop[0].davg
	minV, maxV := float64(pop[0].volume), float64(pop[0].volume)
	for _, ind := range pop[1:] {
		minD = math.Min(minD, ind.davg)
		maxD = math.Max(maxD, ind.davg)
		minV = math.Min(minV, float64(ind.volume))
		maxV = math.Max(maxV, float64(ind.volume))
	}
	norm := func(v, lo, hi float64) float64 {
		if hi <= lo {
			return 0
		}
		return (v - lo) / (hi - lo) * 1000
	}
	keys := make([]float64, len(pop))
	for i := range pop {
		f := accuracyWeight * norm(pop[i].davg, minD, maxD)
		if volumeObjective {
			f += norm(float64(pop[i].volume), minV, maxV)
		}
		keys[i] = f
	}
	sort.Stable(&popByKey{pop: pop, keys: keys})
}

// popByKey sorts a population and its precomputed scalarized fitness
// keys together.
type popByKey struct {
	pop  []individual
	keys []float64
}

func (s *popByKey) Len() int { return len(s.pop) }

func (s *popByKey) Less(i, j int) bool {
	if s.keys[i] != s.keys[j] {
		return s.keys[i] < s.keys[j]
	}
	if s.pop[i].davg != s.pop[j].davg {
		return s.pop[i].davg < s.pop[j].davg
	}
	return s.pop[i].volume < s.pop[j].volume
}

func (s *popByKey) Swap(i, j int) {
	s.pop[i], s.pop[j] = s.pop[j], s.pop[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// recombine implements the paper's binary recombination: for each
// instruction, the µops of both parents (with multiplicities) are
// divided randomly into two parts that become the children's
// decompositions. A child that would end up with no µops for an
// instruction receives one random µop instance from the combined pool.
func recombine(rng *rand.Rand, a, b *portmap.Mapping, tpHints []float64) (*portmap.Mapping, *portmap.Mapping) {
	n := a.NumInsts()
	c1 := portmap.NewMapping(n, a.NumPorts)
	c2 := portmap.NewMapping(n, a.NumPorts)
	var pool, d1, d2 []portmap.UopCount
	for i := 0; i < n; i++ {
		pool = pool[:0]
		pool = append(pool, a.Decomp[i]...)
		pool = append(pool, b.Decomp[i]...)

		d1, d2 = d1[:0], d2[:0]
		for _, uc := range pool {
			// Binomial split of the multiplicity between the children.
			k := 0
			for j := 0; j < uc.Count; j++ {
				if rng.Intn(2) == 0 {
					k++
				}
			}
			if k > 0 {
				d1 = append(d1, portmap.UopCount{Ports: uc.Ports, Count: k})
			}
			if uc.Count-k > 0 {
				d2 = append(d2, portmap.UopCount{Ports: uc.Ports, Count: uc.Count - k})
			}
		}
		if len(d1) == 0 {
			uc := pool[rng.Intn(len(pool))]
			d1 = append(d1, portmap.UopCount{Ports: uc.Ports, Count: 1})
		}
		if len(d2) == 0 {
			uc := pool[rng.Intn(len(pool))]
			d2 = append(d2, portmap.UopCount{Ports: uc.Ports, Count: 1})
		}
		c1.SetDecomp(i, d1)
		c2.SetDecomp(i, d2)
	}
	return c1, c2
}

// mutate re-randomizes each instruction's decomposition with probability
// opts.MutationRate (ablation only; the paper's design omits mutation).
func mutate(rng *rand.Rand, m *portmap.Mapping, opts Options, tpHints []float64) {
	for i := 0; i < m.NumInsts(); i++ {
		if rng.Float64() >= opts.MutationRate {
			continue
		}
		hint := 1.0
		if tpHints != nil {
			hint = tpHints[i]
		}
		single := portmap.Random(rng, portmap.RandomOptions{
			NumInsts:       1,
			NumPorts:       opts.NumPorts,
			ThroughputHint: []float64{hint},
			MaxUops:        opts.MaxUopsPerInst,
		})
		m.SetDecomp(i, single.Decomp[0])
	}
}

// localSearch greedily adjusts µop multiplicities (§4.4: "incrementally
// adjusts the number n of µop occurrences for each edge (i,n,u) ∈ N and
// keeps the changes to the port mapping if it is fitter than before").
// An adjustment is kept if it reduces Davg, or keeps Davg (within 1e-12)
// while reducing the volume.
//
// Each ±1 probe edits the single affected µop count in place and is
// scored through the engine's incremental EvaluateDelta, which only
// re-predicts the experiments containing the changed instruction;
// rejected probes revert the edit, accepted ones commit the delta. The
// one Clone is taken up front, so the probe loop allocates nothing and
// its cost is O(#experiments containing instruction i) per probe instead
// of O(#experiments). With Options.DisableCache every probe is scored by
// a full evaluation instead — bit-identical, pinned by test.
//
// Cancellation is checked per pass and per instruction; an interrupted
// search returns the best individual accepted so far (every commit
// leaves m consistent) with the typed interruption error.
func localSearch(ctx context.Context, svc *engine.Service, start individual, opts Options) (individual, error) {
	m := start.m.Clone()
	cur := engine.Fitness{Davg: start.davg, Volume: start.volume}
	var st *engine.FitnessState
	if !opts.DisableCache {
		var err error
		st, err = svc.NewState(m)
		if err != nil {
			return individual{}, err
		}
		cur = st.Fitness()
	}

	better := func(d2 float64, v2 int, d1 float64, v1 int) bool {
		if d2 < d1-1e-12 {
			return true
		}
		return d2 <= d1+1e-12 && v2 < v1
	}

	maxPasses := opts.LocalSearchMaxPasses
	if maxPasses <= 0 {
		maxPasses = 32
	}
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for i := 0; i < m.NumInsts(); i++ {
			if err := runctrl.Check(ctx); err != nil {
				return individual{m: m, davg: cur.Davg, volume: cur.Volume}, err
			}
			for j := 0; j < len(m.Decomp[i]); j++ {
				orig := m.Decomp[i][j].Count
				for _, delta := range []int{1, -1} {
					next := orig + delta
					if next < 0 {
						continue
					}
					if next == 0 && len(m.Decomp[i]) == 1 {
						continue // every instruction needs at least one µop
					}
					var removed portmap.UopCount
					if next == 0 {
						removed = m.RemoveUopAt(i, j)
					} else {
						m.SetUopCount(i, j, next)
					}
					var fit engine.Fitness
					var err error
					if st != nil {
						fit, err = svc.EvaluateDelta(st, i)
					} else {
						fit, err = svc.Evaluate(m)
					}
					if err != nil {
						return individual{}, err
					}
					if better(fit.Davg, fit.Volume, cur.Davg, cur.Volume) {
						if st != nil {
							st.Commit()
						}
						cur = fit
						improved = true
						break // re-inspect the modified decomposition
					}
					// Rejected: revert the in-place edit.
					if next == 0 {
						m.InsertUopAt(i, j, removed)
					} else {
						m.SetUopCount(i, j, orig)
					}
				}
				if j >= len(m.Decomp[i]) {
					break
				}
			}
		}
		if !improved {
			break
		}
	}
	return individual{m: m, davg: cur.Davg, volume: cur.Volume}, nil
}
