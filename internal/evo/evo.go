// Package evo implements the evolutionary algorithm of paper §4.4 that
// searches for a port mapping explaining a set of measured throughputs.
//
// The algorithm follows the paper's Algorithm 1:
//
//	initialize population randomly
//	while not done:
//	    apply evolutionary operators   (binary recombination, no mutation)
//	    evaluate fitness               (bottleneck simulation, §4.5)
//	    select new population          (best p of 2p)
//	perform local search               (greedy hill climbing on µop counts)
//	return fittest individual
//
// Fitness scalarizes two objectives (a priori scalarization of the
// multiobjective problem): the average relative prediction error Davg and
// the µop volume V, each affinely normalized to [0, 1000] over the
// current combined population.
//
// Per the paper, there is no mutation operator by default: experiments
// showed little benefit over spending the same fitness evaluations on a
// larger population. A mutation rate is retained as an explicit ablation
// knob.
//
// Fitness evaluation — the dominant cost of the algorithm — is delegated
// to internal/engine's batched, parallel fitness service; this package
// contains no worker-pool code of its own.
package evo

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"pmevo/internal/cachetable"
	"pmevo/internal/engine"
	"pmevo/internal/exp"
	"pmevo/internal/portmap"
)

// Options configures the evolutionary algorithm.
type Options struct {
	// PopulationSize is p: each generation keeps the best p of 2p
	// individuals. The paper's evaluation uses 100,000; scaled-down runs
	// converge on small ISAs with far less.
	PopulationSize int
	// MaxGenerations bounds the evolution loop.
	MaxGenerations int
	// NumPorts is the |P| hyperparameter given by the user (Figure 5:
	// "# ports").
	NumPorts int
	// MaxUopsPerInst bounds the distinct µops sampled per instruction at
	// initialization (0: |P|, the paper's choice).
	MaxUopsPerInst int
	// MutationRate is the per-instruction probability of re-randomizing
	// a child's decomposition. The paper's design uses 0; non-zero
	// values exist for the ablation study.
	MutationRate float64
	// LocalSearch enables the final greedy hill-climbing phase.
	LocalSearch bool
	// LocalSearchMaxPasses bounds hill-climbing sweeps (0: until no
	// improvement, at most 32 passes).
	LocalSearchMaxPasses int
	// VolumeObjective includes the µop volume V in the fitness. The
	// paper always uses it; disabling it is an ablation that yields less
	// compact, harder-to-interpret mappings.
	VolumeObjective bool
	// AccuracyWeight scales the normalized accuracy objective relative
	// to the volume objective (the paper's scalarization weights both
	// equally; values ≤ 0 mean 1). On very small problems the
	// equal-weight scalarization can prefer compact-but-wrong mappings;
	// raising this weight is an extension knob that trades compactness
	// for accuracy (see the ablation tests).
	AccuracyWeight float64
	// Workers is the number of parallel fitness evaluation goroutines
	// (0: GOMAXPROCS).
	Workers int
	// Engine selects the throughput engine used for fitness evaluation.
	// nil selects the engine package's zero-allocation bottleneck fast
	// path (§4.5); any other engine.Predictor (e.g. the LP reference)
	// goes through the generic interface.
	Engine engine.Predictor
	// Seed makes runs reproducible.
	Seed int64
	// DisableCache turns off the redundancy-exploiting evaluation layer:
	// the engine's shared throughput memo, the duplicate-candidate skip,
	// and the incremental (delta) scoring of local-search probes — each
	// probe is scored by a full evaluation instead. Results are
	// bit-identical either way (pinned by test); the knob exists for
	// benchmarking and debugging.
	DisableCache bool
	// ConvergenceEps terminates evolution when the spread of Davg in the
	// selected population falls below it and all volumes agree.
	ConvergenceEps float64
	// SeedMappings are injected into the initial population (extension:
	// warm-starting from an existing, possibly outdated port mapping —
	// the OSACA-style validation/refinement use case of §6). Mappings
	// must cover the instruction set with the configured port count.
	SeedMappings []*portmap.Mapping
	// MemoWarm seeds the engine's throughput memo with entries spilled
	// by a previous run against the SAME experiment set
	// (engine.LoadMemo). Bit-exact: warm entries are the floats a fresh
	// evaluation would produce, so results never depend on the warm
	// start. Ignored when DisableCache is set.
	MemoWarm []cachetable.Entry
	// SnapshotMemo captures the memo's live entries into
	// Result.MemoSnapshot when the run completes, for persistence via
	// engine.SaveMemo.
	SnapshotMemo bool
}

// DefaultOptions returns a configuration suitable for medium-size
// inference runs.
func DefaultOptions(numPorts int) Options {
	return Options{
		PopulationSize:  500,
		MaxGenerations:  60,
		NumPorts:        numPorts,
		LocalSearch:     true,
		VolumeObjective: true,
		Seed:            1,
		ConvergenceEps:  1e-9,
	}
}

// GenStats records one generation for convergence inspection.
type GenStats struct {
	Generation int
	BestError  float64
	BestVolume int
	MeanError  float64
}

// Result is the outcome of a Run.
type Result struct {
	// Best is the fittest mapping found.
	Best *portmap.Mapping
	// BestError is Davg(Best) on the input measurements.
	BestError float64
	// BestVolume is V(Best).
	BestVolume int
	// Generations is the number of evolution steps performed.
	Generations int
	// FitnessEvaluations counts Davg computations (the paper's cost
	// metric for the bottleneck algorithm's speed).
	FitnessEvaluations int
	// History records per-generation statistics.
	History []GenStats
	// CacheStats snapshots the engine's evaluation counters (memo hits,
	// delta evaluations, experiments skipped, disk-warm traffic) at the
	// end of the run.
	CacheStats engine.CacheStats
	// MemoSnapshot holds the memo's live entries when
	// Options.SnapshotMemo was set (nil otherwise), ready for
	// engine.SaveMemo.
	MemoSnapshot []cachetable.Entry
}

// individual carries a candidate mapping with cached objectives.
type individual struct {
	m      *portmap.Mapping
	davg   float64
	volume int
}

// Run executes the evolutionary algorithm on a measured experiment set.
func Run(set *exp.Set, opts Options) (*Result, error) {
	if set == nil || set.NumInsts == 0 {
		return nil, errors.New("evo: empty instruction set")
	}
	if len(set.Measurements) == 0 {
		return nil, errors.New("evo: no measurements")
	}
	if opts.PopulationSize < 2 {
		return nil, errors.New("evo: population size must be at least 2")
	}
	if opts.MaxGenerations < 1 {
		return nil, errors.New("evo: need at least one generation")
	}
	if opts.NumPorts <= 0 || opts.NumPorts > portmap.MaxPorts {
		return nil, fmt.Errorf("evo: invalid port count %d", opts.NumPorts)
	}
	for _, m := range set.Measurements {
		if m.Throughput <= 0 {
			return nil, fmt.Errorf("evo: non-positive measured throughput %g", m.Throughput)
		}
	}
	if opts.ConvergenceEps <= 0 {
		opts.ConvergenceEps = 1e-9
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	memoEntries := 0
	if opts.DisableCache {
		memoEntries = -1
	}
	svc, err := engine.NewService(set, engine.ServiceOptions{
		Workers:     opts.Workers,
		Predictor:   opts.Engine,
		MemoEntries: memoEntries,
		MemoWarm:    opts.MemoWarm,
	})
	if err != nil {
		return nil, fmt.Errorf("evo: %w", err)
	}

	p := opts.PopulationSize
	pop := make([]individual, 0, 2*p)
	for _, sm := range opts.SeedMappings {
		if sm.NumInsts() != set.NumInsts || sm.NumPorts != opts.NumPorts {
			return nil, fmt.Errorf("evo: seed mapping dimensions %dx%d do not match %dx%d",
				sm.NumInsts(), sm.NumPorts, set.NumInsts, opts.NumPorts)
		}
		if err := sm.Validate(); err != nil {
			return nil, fmt.Errorf("evo: invalid seed mapping: %w", err)
		}
		if len(pop) < p {
			pop = append(pop, individual{m: sm.Clone()})
		}
	}
	for len(pop) < p {
		m := portmap.Random(rng, portmap.RandomOptions{
			NumInsts:       set.NumInsts,
			NumPorts:       opts.NumPorts,
			ThroughputHint: set.Individual,
			MaxUops:        opts.MaxUopsPerInst,
		})
		pop = append(pop, individual{m: m})
	}
	// seen caches fitness by whole-mapping fingerprint for the current
	// population, so duplicate candidates — common once the population
	// converges — skip evaluation entirely. Rebuilt per generation to
	// stay bounded.
	dedupe := !opts.DisableCache
	seen := make(map[uint64]engine.Fitness)
	if err := evaluate(svc, pop, seen, dedupe); err != nil {
		return nil, err
	}

	res := &Result{}
	for gen := 0; gen < opts.MaxGenerations; gen++ {
		res.Generations = gen + 1

		// Evolutionary operators: p children from recombined parents.
		children := make([]individual, 0, p)
		for len(children) < p {
			a := pop[rng.Intn(len(pop))].m
			b := pop[rng.Intn(len(pop))].m
			c1, c2 := recombine(rng, a, b, set.Individual)
			if opts.MutationRate > 0 {
				mutate(rng, c1, opts, set.Individual)
				mutate(rng, c2, opts, set.Individual)
			}
			children = append(children, individual{m: c1})
			if len(children) < p {
				children = append(children, individual{m: c2})
			}
		}
		if dedupe {
			// Prime the duplicate skip with the already evaluated parents.
			clear(seen)
			for i := range pop {
				seen[pop[i].m.FingerprintAll()] = engine.Fitness{Davg: pop[i].davg, Volume: pop[i].volume}
			}
		}
		if err := evaluate(svc, children, seen, dedupe); err != nil {
			return nil, err
		}
		pop = append(pop, children...)

		// Selection: scalarize both objectives over the combined
		// population and keep the best p.
		selectBest(pop, p, opts.VolumeObjective, opts.AccuracyWeight)
		pop = pop[:p]

		best := pop[0]
		res.History = append(res.History, GenStats{
			Generation: gen,
			BestError:  best.davg,
			BestVolume: best.volume,
			MeanError:  meanError(pop),
		})

		if converged(pop, opts.ConvergenceEps) {
			break
		}
	}

	best := pop[0]
	if opts.LocalSearch {
		best, err = localSearch(svc, best, opts)
		if err != nil {
			return nil, err
		}
	}
	res.Best = best.m
	res.BestError = best.davg
	res.BestVolume = best.volume
	res.FitnessEvaluations = svc.Evaluations()
	res.CacheStats = svc.Stats()
	if opts.SnapshotMemo {
		res.MemoSnapshot = svc.MemoSnapshot()
	}
	return res, nil
}

// evaluate fills in the objectives of all individuals through the
// engine's batched fitness service. With dedupe enabled, structurally
// equal candidates — detected by whole-mapping fingerprint, within the
// batch and against the caller-primed seen map — are evaluated once and
// the fitness copied (bit-identical: equal mappings have equal fitness).
// Newly computed fitnesses are added to seen.
func evaluate(svc *engine.Service, inds []individual, seen map[uint64]engine.Fitness, dedupe bool) error {
	if !dedupe {
		ms := make([]*portmap.Mapping, len(inds))
		for i := range inds {
			ms[i] = inds[i].m
		}
		fits := make([]engine.Fitness, len(inds))
		if err := svc.EvaluateAll(ms, fits); err != nil {
			return err
		}
		for i := range inds {
			inds[i].davg = fits[i].Davg
			inds[i].volume = fits[i].Volume
		}
		return nil
	}

	fps := make([]uint64, len(inds))
	batch := make(map[uint64]int, len(inds)) // fingerprint -> index into uniq
	uniq := make([]*portmap.Mapping, 0, len(inds))
	for i := range inds {
		fp := inds[i].m.FingerprintAll()
		fps[i] = fp
		if _, ok := seen[fp]; ok {
			continue
		}
		if _, ok := batch[fp]; !ok {
			batch[fp] = len(uniq)
			uniq = append(uniq, inds[i].m)
		}
	}
	fits := make([]engine.Fitness, len(uniq))
	if err := svc.EvaluateAll(uniq, fits); err != nil {
		return err
	}
	for fp, k := range batch {
		seen[fp] = fits[k]
	}
	for i := range inds {
		f := seen[fps[i]]
		inds[i].davg = f.Davg
		inds[i].volume = f.Volume
	}
	return nil
}

func meanError(pop []individual) float64 {
	s := 0.0
	for _, ind := range pop {
		s += ind.davg
	}
	return s / float64(len(pop))
}

// converged reports whether the population has collapsed to a single
// fitness value (§4.4 termination criterion).
func converged(pop []individual, eps float64) bool {
	minD, maxD := pop[0].davg, pop[0].davg
	minV, maxV := pop[0].volume, pop[0].volume
	for _, ind := range pop[1:] {
		minD = math.Min(minD, ind.davg)
		maxD = math.Max(maxD, ind.davg)
		if ind.volume < minV {
			minV = ind.volume
		}
		if ind.volume > maxV {
			maxV = ind.volume
		}
	}
	return maxD-minD < eps && minV == maxV
}

// selectBest sorts the population by scalarized fitness F(m) =
// w·Λ1(Davg(m)) + Λ2(V(m)) with both objectives affinely normalized to
// [0, 1000] over the current population (the paper uses w = 1), then
// truncates to the best p. Ties break deterministically on
// (davg, volume). The scalarized key is computed once per individual —
// O(n) normalizations — and the stable sort compares keys, so the
// resulting order is identical to recomputing the key in the comparator.
func selectBest(pop []individual, p int, volumeObjective bool, accuracyWeight float64) {
	if accuracyWeight <= 0 {
		accuracyWeight = 1
	}
	minD, maxD := pop[0].davg, pop[0].davg
	minV, maxV := float64(pop[0].volume), float64(pop[0].volume)
	for _, ind := range pop[1:] {
		minD = math.Min(minD, ind.davg)
		maxD = math.Max(maxD, ind.davg)
		minV = math.Min(minV, float64(ind.volume))
		maxV = math.Max(maxV, float64(ind.volume))
	}
	norm := func(v, lo, hi float64) float64 {
		if hi <= lo {
			return 0
		}
		return (v - lo) / (hi - lo) * 1000
	}
	keys := make([]float64, len(pop))
	for i := range pop {
		f := accuracyWeight * norm(pop[i].davg, minD, maxD)
		if volumeObjective {
			f += norm(float64(pop[i].volume), minV, maxV)
		}
		keys[i] = f
	}
	sort.Stable(&popByKey{pop: pop, keys: keys})
}

// popByKey sorts a population and its precomputed scalarized fitness
// keys together.
type popByKey struct {
	pop  []individual
	keys []float64
}

func (s *popByKey) Len() int { return len(s.pop) }

func (s *popByKey) Less(i, j int) bool {
	if s.keys[i] != s.keys[j] {
		return s.keys[i] < s.keys[j]
	}
	if s.pop[i].davg != s.pop[j].davg {
		return s.pop[i].davg < s.pop[j].davg
	}
	return s.pop[i].volume < s.pop[j].volume
}

func (s *popByKey) Swap(i, j int) {
	s.pop[i], s.pop[j] = s.pop[j], s.pop[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// recombine implements the paper's binary recombination: for each
// instruction, the µops of both parents (with multiplicities) are
// divided randomly into two parts that become the children's
// decompositions. A child that would end up with no µops for an
// instruction receives one random µop instance from the combined pool.
func recombine(rng *rand.Rand, a, b *portmap.Mapping, tpHints []float64) (*portmap.Mapping, *portmap.Mapping) {
	n := a.NumInsts()
	c1 := portmap.NewMapping(n, a.NumPorts)
	c2 := portmap.NewMapping(n, a.NumPorts)
	var pool, d1, d2 []portmap.UopCount
	for i := 0; i < n; i++ {
		pool = pool[:0]
		pool = append(pool, a.Decomp[i]...)
		pool = append(pool, b.Decomp[i]...)

		d1, d2 = d1[:0], d2[:0]
		for _, uc := range pool {
			// Binomial split of the multiplicity between the children.
			k := 0
			for j := 0; j < uc.Count; j++ {
				if rng.Intn(2) == 0 {
					k++
				}
			}
			if k > 0 {
				d1 = append(d1, portmap.UopCount{Ports: uc.Ports, Count: k})
			}
			if uc.Count-k > 0 {
				d2 = append(d2, portmap.UopCount{Ports: uc.Ports, Count: uc.Count - k})
			}
		}
		if len(d1) == 0 {
			uc := pool[rng.Intn(len(pool))]
			d1 = append(d1, portmap.UopCount{Ports: uc.Ports, Count: 1})
		}
		if len(d2) == 0 {
			uc := pool[rng.Intn(len(pool))]
			d2 = append(d2, portmap.UopCount{Ports: uc.Ports, Count: 1})
		}
		c1.SetDecomp(i, d1)
		c2.SetDecomp(i, d2)
	}
	return c1, c2
}

// mutate re-randomizes each instruction's decomposition with probability
// opts.MutationRate (ablation only; the paper's design omits mutation).
func mutate(rng *rand.Rand, m *portmap.Mapping, opts Options, tpHints []float64) {
	for i := 0; i < m.NumInsts(); i++ {
		if rng.Float64() >= opts.MutationRate {
			continue
		}
		hint := 1.0
		if tpHints != nil {
			hint = tpHints[i]
		}
		single := portmap.Random(rng, portmap.RandomOptions{
			NumInsts:       1,
			NumPorts:       opts.NumPorts,
			ThroughputHint: []float64{hint},
			MaxUops:        opts.MaxUopsPerInst,
		})
		m.SetDecomp(i, single.Decomp[0])
	}
}

// localSearch greedily adjusts µop multiplicities (§4.4: "incrementally
// adjusts the number n of µop occurrences for each edge (i,n,u) ∈ N and
// keeps the changes to the port mapping if it is fitter than before").
// An adjustment is kept if it reduces Davg, or keeps Davg (within 1e-12)
// while reducing the volume.
//
// Each ±1 probe edits the single affected µop count in place and is
// scored through the engine's incremental EvaluateDelta, which only
// re-predicts the experiments containing the changed instruction;
// rejected probes revert the edit, accepted ones commit the delta. The
// one Clone is taken up front, so the probe loop allocates nothing and
// its cost is O(#experiments containing instruction i) per probe instead
// of O(#experiments). With Options.DisableCache every probe is scored by
// a full evaluation instead — bit-identical, pinned by test.
func localSearch(svc *engine.Service, start individual, opts Options) (individual, error) {
	m := start.m.Clone()
	cur := engine.Fitness{Davg: start.davg, Volume: start.volume}
	var st *engine.FitnessState
	if !opts.DisableCache {
		var err error
		st, err = svc.NewState(m)
		if err != nil {
			return individual{}, err
		}
		cur = st.Fitness()
	}

	better := func(d2 float64, v2 int, d1 float64, v1 int) bool {
		if d2 < d1-1e-12 {
			return true
		}
		return d2 <= d1+1e-12 && v2 < v1
	}

	maxPasses := opts.LocalSearchMaxPasses
	if maxPasses <= 0 {
		maxPasses = 32
	}
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for i := 0; i < m.NumInsts(); i++ {
			for j := 0; j < len(m.Decomp[i]); j++ {
				orig := m.Decomp[i][j].Count
				for _, delta := range []int{1, -1} {
					next := orig + delta
					if next < 0 {
						continue
					}
					if next == 0 && len(m.Decomp[i]) == 1 {
						continue // every instruction needs at least one µop
					}
					var removed portmap.UopCount
					if next == 0 {
						removed = m.RemoveUopAt(i, j)
					} else {
						m.SetUopCount(i, j, next)
					}
					var fit engine.Fitness
					var err error
					if st != nil {
						fit, err = svc.EvaluateDelta(st, i)
					} else {
						fit, err = svc.Evaluate(m)
					}
					if err != nil {
						return individual{}, err
					}
					if better(fit.Davg, fit.Volume, cur.Davg, cur.Volume) {
						if st != nil {
							st.Commit()
						}
						cur = fit
						improved = true
						break // re-inspect the modified decomposition
					}
					// Rejected: revert the in-place edit.
					if next == 0 {
						m.InsertUopAt(i, j, removed)
					} else {
						m.SetUopCount(i, j, orig)
					}
				}
				if j >= len(m.Decomp[i]) {
					break
				}
			}
		}
		if !improved {
			break
		}
	}
	return individual{m: m, davg: cur.Davg, volume: cur.Volume}, nil
}
