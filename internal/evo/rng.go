package evo

import "math/rand"

// countingSource wraps the standard PRNG source and counts state
// advances, making the RNG stream checkpointable without changing the
// generator: math/rand's rngSource advances its state exactly once per
// Int63 or Uint64 call, so (seed, draw count) fully determines the
// stream position. A checkpoint stores the count; resume re-seeds and
// fast-forwards, and every subsequent draw is bit-identical to the
// uninterrupted run. This deliberately avoids swapping in an
// explicitly-serializable PRNG, which would change every existing
// fixed-seed golden result.
type countingSource struct {
	src rand.Source64
	n   uint64 // state advances since seeding
}

// newCountedRand returns a *rand.Rand whose draws are counted by the
// returned source. The Rand consumes the source through the Source64
// interface, so the count covers every draw the evolution loop makes
// (Intn, Float64, Int63, ...).
func newCountedRand(seed int64) (*rand.Rand, *countingSource) {
	cs := &countingSource{src: rand.NewSource(seed).(rand.Source64)} //pmevo:allow detrand -- the draw-counting seam itself: the one sanctioned place a raw source is constructed and wrapped
	return rand.New(cs), cs
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// skip fast-forwards the source by n state advances. Int63 and Uint64
// advance the underlying state identically, so replaying with Uint64
// reproduces the exact position regardless of which mix of calls the
// original run made.
func (c *countingSource) skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.src.Uint64()
	}
	c.n = n
}
