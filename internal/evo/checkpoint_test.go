package evo

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"strings"
	"testing"

	"pmevo/internal/faultfs"
)

// ckptOpts is a small but non-trivial configuration for the
// checkpoint/resume golden tests: big enough that the trajectory is
// interesting, small enough to run three full searches per test.
func ckptOpts() Options {
	return Options{
		PopulationSize:  60,
		MaxGenerations:  14,
		NumPorts:        3,
		LocalSearch:     true,
		VolumeObjective: true,
		Seed:            11,
		Workers:         2,
	}
}

func mustRun(t *testing.T, opts Options) *Result {
	t.Helper()
	res, err := Run(context.Background(), measuredSet(t, hiddenMapping()), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sameTrajectory asserts the bit-identity contract of Options.Resume:
// Best/BestError/BestVolume/History/Generations must match exactly
// (FitnessEvaluations and CacheStats are run-local diagnostics and
// deliberately excluded).
func sameTrajectory(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Best.String() != want.Best.String() {
		t.Errorf("%s: Best differs\ngot:\n%s\nwant:\n%s", label, got.Best, want.Best)
	}
	if math.Float64bits(got.BestError) != math.Float64bits(want.BestError) {
		t.Errorf("%s: BestError %v != %v", label, got.BestError, want.BestError)
	}
	if got.BestVolume != want.BestVolume {
		t.Errorf("%s: BestVolume %d != %d", label, got.BestVolume, want.BestVolume)
	}
	if got.Generations != want.Generations {
		t.Errorf("%s: Generations %d != %d", label, got.Generations, want.Generations)
	}
	if len(got.History) != len(want.History) {
		t.Fatalf("%s: History length %d != %d", label, len(got.History), len(want.History))
	}
	for i := range got.History {
		if got.History[i] != want.History[i] {
			t.Errorf("%s: History[%d] = %+v != %+v", label, i, got.History[i], want.History[i])
		}
	}
}

// historyPrefix asserts that a partial result's history is exactly the
// first generations of the uninterrupted run — interruption must never
// perturb the work already done.
func historyPrefix(t *testing.T, label string, partial, full *Result) {
	t.Helper()
	if len(partial.History) != partial.Generations {
		t.Fatalf("%s: partial has %d history entries for %d generations",
			label, len(partial.History), partial.Generations)
	}
	if len(partial.History) > len(full.History) {
		t.Fatalf("%s: partial history longer than full (%d > %d)",
			label, len(partial.History), len(full.History))
	}
	for i := range partial.History {
		if partial.History[i] != full.History[i] {
			t.Errorf("%s: History[%d] = %+v != full %+v", label, i, partial.History[i], full.History[i])
		}
	}
}

// cancelAt returns an OnGeneration hook canceling the run once gensDone
// reaches g, plus the context to run under.
func cancelAt(g int) (context.Context, func(int)) {
	ctx, cancel := context.WithCancel(context.Background())
	return ctx, func(gensDone int) {
		if gensDone >= g {
			cancel()
		}
	}
}

// TestResumeAfterInterruptBitIdenticalSingle is the tentpole golden
// test: a single-population run interrupted mid-search and resumed from
// its checkpoint must finish bit-identical to the uninterrupted run.
func TestResumeAfterInterruptBitIdenticalSingle(t *testing.T) {
	opts := ckptOpts()
	full := mustRun(t, opts)

	dir := t.TempDir()
	iopts := opts
	iopts.CheckpointDir = dir
	iopts.CheckpointInterval = 3
	ctx, hook := cancelAt(5)
	iopts.OnGeneration = hook
	partial, err := Run(ctx, measuredSet(t, hiddenMapping()), iopts)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("interrupted run: err = %v, want ErrCanceled", err)
	}
	if partial == nil || partial.Best == nil {
		t.Fatal("interrupted run returned no partial result")
	}
	if partial.Generations != 5 {
		t.Fatalf("interrupted at generation 5, partial reports %d", partial.Generations)
	}
	historyPrefix(t, "interrupted", partial, full)
	if _, err := os.Stat(CheckpointPath(dir)); err != nil {
		t.Fatalf("no checkpoint on disk after interruption: %v", err)
	}

	ropts := opts
	ropts.CheckpointDir = dir
	var logs []string
	ropts.Log = func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) }
	resumed, err := Resume(context.Background(), measuredSet(t, hiddenMapping()), ropts)
	if err != nil {
		t.Fatal(err)
	}
	if !containsLog(logs, "restored checkpoint at generation 5") {
		t.Errorf("resume did not report restoring the generation-5 checkpoint:\n%s", strings.Join(logs, "\n"))
	}
	sameTrajectory(t, "resumed", resumed, full)
}

// TestResumeAfterInterruptBitIdenticalIslands pins the same contract
// for the island model: interruption at an epoch barrier, resume,
// bit-identical finish.
func TestResumeAfterInterruptBitIdenticalIslands(t *testing.T) {
	opts := ckptOpts()
	opts.Islands = 3
	opts.MigrationInterval = 2
	opts.MigrationCount = 1
	full := mustRun(t, opts)

	dir := t.TempDir()
	iopts := opts
	iopts.CheckpointDir = dir
	ctx, hook := cancelAt(6)
	iopts.OnGeneration = hook
	partial, err := Run(ctx, measuredSet(t, hiddenMapping()), iopts)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("interrupted island run: err = %v, want ErrCanceled", err)
	}
	if partial == nil || partial.Best == nil {
		t.Fatal("interrupted island run returned no partial result")
	}
	if err := partial.Best.Validate(); err != nil {
		t.Fatalf("partial best invalid: %v", err)
	}

	ropts := opts
	ropts.CheckpointDir = dir
	ropts.Resume = true
	var logs []string
	ropts.Log = func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) }
	resumed, err := Run(context.Background(), measuredSet(t, hiddenMapping()), ropts)
	if err != nil {
		t.Fatal(err)
	}
	if !containsLog(logs, "restored checkpoint") {
		t.Errorf("island resume did not restore:\n%s", strings.Join(logs, "\n"))
	}
	sameTrajectory(t, "islands resumed", resumed, full)
}

// TestResumeBudgetExtension pins that a run which COMPLETED its
// generation budget checkpoints its final state, so a later resume with
// a larger MaxGenerations continues the same trajectory instead of
// restarting — MaxGenerations is deliberately excluded from the
// checkpoint content key.
func TestResumeBudgetExtension(t *testing.T) {
	opts := ckptOpts()
	full := mustRun(t, opts)

	dir := t.TempDir()
	sopts := opts
	sopts.MaxGenerations = 5
	sopts.CheckpointDir = dir
	if _, err := Run(context.Background(), measuredSet(t, hiddenMapping()), sopts); err != nil {
		t.Fatal(err)
	}

	ropts := opts // full MaxGenerations again
	ropts.CheckpointDir = dir
	ropts.Resume = true
	var logs []string
	ropts.Log = func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) }
	resumed, err := Run(context.Background(), measuredSet(t, hiddenMapping()), ropts)
	if err != nil {
		t.Fatal(err)
	}
	if !containsLog(logs, "restored checkpoint at generation 5") {
		t.Errorf("budget extension did not restore the generation-5 checkpoint:\n%s", strings.Join(logs, "\n"))
	}
	sameTrajectory(t, "budget extension", resumed, full)
}

// TestResumeMissingCheckpointColdStarts: Resume against an empty
// directory must log a diagnostic and produce the cold-start result —
// never fail the run.
func TestResumeMissingCheckpointColdStarts(t *testing.T) {
	opts := ckptOpts()
	full := mustRun(t, opts)

	ropts := opts
	ropts.CheckpointDir = t.TempDir()
	ropts.Resume = true
	var logs []string
	ropts.Log = func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) }
	res, err := Run(context.Background(), measuredSet(t, hiddenMapping()), ropts)
	if err != nil {
		t.Fatal(err)
	}
	if !containsLog(logs, "cold start") {
		t.Errorf("missing checkpoint did not log a cold-start diagnostic:\n%s", strings.Join(logs, "\n"))
	}
	sameTrajectory(t, "cold start", res, full)
}

// TestResumeMismatchedOptionsColdStarts: a checkpoint written under a
// different seed (any trajectory-shaping option) must be rejected by
// the content key, cold-starting with a diagnostic rather than
// splicing incompatible state into the run.
func TestResumeMismatchedOptionsColdStarts(t *testing.T) {
	dir := t.TempDir()
	wopts := ckptOpts()
	wopts.MaxGenerations = 5
	wopts.CheckpointDir = dir
	if _, err := Run(context.Background(), measuredSet(t, hiddenMapping()), wopts); err != nil {
		t.Fatal(err)
	}

	fresh := ckptOpts()
	fresh.Seed = 12
	full := mustRun(t, fresh)

	ropts := fresh
	ropts.CheckpointDir = dir
	ropts.Resume = true
	var logs []string
	ropts.Log = func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) }
	res, err := Run(context.Background(), measuredSet(t, hiddenMapping()), ropts)
	if err != nil {
		t.Fatal(err)
	}
	if !containsLog(logs, "cold start") {
		t.Errorf("seed mismatch did not log a cold-start diagnostic:\n%s", strings.Join(logs, "\n"))
	}
	sameTrajectory(t, "seed mismatch", res, full)
}

// TestCheckpointCrashBeforeRenameKeepsLastGood injects a crash in the
// window between temp-file write and rename on every checkpoint save:
// the file on disk must keep the last successfully written state, and
// a subsequent resume must restore it.
func TestCheckpointCrashBeforeRenameKeepsLastGood(t *testing.T) {
	opts := ckptOpts()
	full := mustRun(t, opts)

	// Phase 1: write a good generation-5 checkpoint.
	dir := t.TempDir()
	sopts := opts
	sopts.MaxGenerations = 5
	sopts.CheckpointDir = dir
	if _, err := Run(context.Background(), measuredSet(t, hiddenMapping()), sopts); err != nil {
		t.Fatal(err)
	}

	// Phase 2: resume to generation 9 while every checkpoint rename
	// "crashes". The run itself must succeed (save failures are logged
	// and swallowed), and the on-disk checkpoint must stay at
	// generation 5.
	restore := faultfs.Set(&faultfs.Hooks{
		BeforeRename: func(_, newpath string) error {
			if strings.Contains(newpath, "evo-checkpoint") {
				return errors.New("injected crash before rename")
			}
			return nil
		},
	})
	mopts := opts
	mopts.MaxGenerations = 9
	mopts.CheckpointDir = dir
	mopts.Resume = true
	if _, err := Run(context.Background(), measuredSet(t, hiddenMapping()), mopts); err != nil {
		restore()
		t.Fatal(err)
	}
	restore()

	// Phase 3: resume with the full budget. The only readable
	// checkpoint is the last-good generation-5 state; the final result
	// must still be bit-identical to the uninterrupted run.
	ropts := opts
	ropts.CheckpointDir = dir
	ropts.Resume = true
	var logs []string
	ropts.Log = func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) }
	resumed, err := Run(context.Background(), measuredSet(t, hiddenMapping()), ropts)
	if err != nil {
		t.Fatal(err)
	}
	if !containsLog(logs, "restored checkpoint at generation 5") {
		t.Errorf("expected last-good generation-5 restore:\n%s", strings.Join(logs, "\n"))
	}
	sameTrajectory(t, "crash window", resumed, full)
}

// TestCheckpointTornWriteColdStarts injects a torn (truncated) write
// that still renames into place: the damaged file must be detected by
// the store's integrity checks on resume, degrading to a cold start
// with a diagnostic — never a misread.
func TestCheckpointTornWriteColdStarts(t *testing.T) {
	opts := ckptOpts()
	full := mustRun(t, opts)

	// The atomic-write temp files carry generic names, so the hook
	// tears every store write of the phase — checkpoint blob and cache
	// spills alike; all of them must degrade cleanly.
	dir := t.TempDir()
	restore := faultfs.Set(&faultfs.Hooks{
		BeforeWrite: func(_ string, data []byte) ([]byte, error) {
			return data[:len(data)/2], nil
		},
	})
	sopts := opts
	sopts.MaxGenerations = 5
	sopts.CheckpointDir = dir
	if _, err := Run(context.Background(), measuredSet(t, hiddenMapping()), sopts); err != nil {
		restore()
		t.Fatal(err)
	}
	restore()

	ropts := opts
	ropts.CheckpointDir = dir
	ropts.Resume = true
	var logs []string
	ropts.Log = func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) }
	res, err := Run(context.Background(), measuredSet(t, hiddenMapping()), ropts)
	if err != nil {
		t.Fatal(err)
	}
	if !containsLog(logs, "cold start") {
		t.Errorf("torn checkpoint did not log a cold-start diagnostic:\n%s", strings.Join(logs, "\n"))
	}
	sameTrajectory(t, "torn write", res, full)
}

// TestPlanCheckpointIntervalClamping pins the clamp-at-the-seam
// convention for the new knob (satellite: flag validation).
func TestPlanCheckpointIntervalClamping(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, defaultCheckpointInterval},
		{-1, -1},
		{-100, -1},
		{1, 1},
		{25, 25},
	}
	for _, c := range cases {
		if got := planCheckpointInterval(Options{CheckpointInterval: c.in}); got != c.want {
			t.Errorf("planCheckpointInterval(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func containsLog(logs []string, substr string) bool {
	for _, l := range logs {
		if strings.Contains(l, substr) {
			return true
		}
	}
	return false
}
