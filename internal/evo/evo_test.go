package evo

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"pmevo/internal/engine"
	"pmevo/internal/exp"
	"pmevo/internal/portmap"
	"pmevo/internal/throughput"
)

// modelMeasurer produces noise-free measurements from a hidden mapping.
type modelMeasurer struct{ m *portmap.Mapping }

func (mm modelMeasurer) Measure(e portmap.Experiment) (float64, error) {
	return throughput.OfExperiment(mm.m, e), nil
}

// hiddenMapping builds the secret ground truth the EA must recover: a
// small machine with interesting structure (shared ports, a two-µop
// instruction).
func hiddenMapping() *portmap.Mapping {
	m := portmap.NewMapping(4, 3)
	m.SetDecomp(0, []portmap.UopCount{{Ports: portmap.MakePortSet(0), Count: 1}})
	m.SetDecomp(1, []portmap.UopCount{{Ports: portmap.MakePortSet(0, 1), Count: 1}})
	m.SetDecomp(2, []portmap.UopCount{{Ports: portmap.MakePortSet(2), Count: 1}})
	m.SetDecomp(3, []portmap.UopCount{
		{Ports: portmap.MakePortSet(0, 1), Count: 1},
		{Ports: portmap.MakePortSet(2), Count: 1},
	})
	return m
}

func measuredSet(t *testing.T, m *portmap.Mapping) *exp.Set {
	t.Helper()
	set, err := exp.GenerateAndMeasure(context.Background(), modelMeasurer{m}, m.NumInsts())
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func smallOpts() Options {
	return Options{
		PopulationSize:  150,
		MaxGenerations:  40,
		NumPorts:        3,
		LocalSearch:     true,
		VolumeObjective: true,
		Seed:            7,
		Workers:         2,
	}
}

// TestRecoversSmallMapping is the central correctness test: on a small
// hidden machine with noise-free measurements, the EA must find a
// mapping that explains the measured experiments well. Note that exact
// recovery is not expected: the two-objective fitness deliberately
// trades the last bit of accuracy for compactness (the paper's inferred
// SKL mapping likewise has 14.7% MAPE, §5.3.1), and port identities are
// only determined up to permutation.
func TestRecoversSmallMapping(t *testing.T) {
	hidden := hiddenMapping()
	set := measuredSet(t, hidden)
	res, err := Run(context.Background(), set, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.BestError > 0.05 {
		t.Fatalf("best Davg = %g, want < 0.05\nmapping:\n%s", res.BestError, res.Best)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatalf("result mapping invalid: %v", err)
	}
	// The inferred mapping must generalize to experiments NOT in the
	// training set: random multisets of size 3.
	rng := rand.New(rand.NewSource(3))
	worst, sum := 0.0, 0.0
	const trials = 200
	for i := 0; i < trials; i++ {
		e := portmap.RandomExperiment(rng, hidden.NumInsts(), 3)
		want := throughput.OfExperiment(hidden, e)
		got := throughput.OfExperiment(res.Best, e)
		relErr := math.Abs(got-want) / want
		sum += relErr
		if relErr > worst {
			worst = relErr
		}
	}
	if mean := sum / trials; mean > 0.10 {
		t.Errorf("mean generalization error %g > 10%%", mean)
	}
	if worst > 0.40 {
		t.Errorf("worst generalization error %g > 40%%", worst)
	}
}

func TestRunValidation(t *testing.T) {
	set := measuredSet(t, hiddenMapping())
	cases := []Options{
		{PopulationSize: 1, MaxGenerations: 5, NumPorts: 3},
		{PopulationSize: 10, MaxGenerations: 0, NumPorts: 3},
		{PopulationSize: 10, MaxGenerations: 5, NumPorts: 0},
		{PopulationSize: 10, MaxGenerations: 5, NumPorts: 100},
	}
	for i, o := range cases {
		if _, err := Run(context.Background(), set, o); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
	if _, err := Run(context.Background(), nil, smallOpts()); err == nil {
		t.Error("nil set accepted")
	}
	if _, err := Run(context.Background(), &exp.Set{NumInsts: 2}, smallOpts()); err == nil {
		t.Error("set without measurements accepted")
	}
	bad := &exp.Set{
		NumInsts:   1,
		Individual: []float64{1},
		Measurements: []exp.Measurement{
			{Exp: portmap.Experiment{{Inst: 0, Count: 1}}, Throughput: -1},
		},
	}
	if _, err := Run(context.Background(), bad, smallOpts()); err == nil {
		t.Error("negative measured throughput accepted")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	set := measuredSet(t, hiddenMapping())
	opts := smallOpts()
	opts.MaxGenerations = 10
	r1, err := Run(context.Background(), set, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(context.Background(), set, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Best.Equal(r2.Best) {
		t.Error("same seed produced different mappings")
	}
	if r1.BestError != r2.BestError || r1.Generations != r2.Generations {
		t.Error("same seed produced different run statistics")
	}
}

func TestDifferentSeedsExploreDifferently(t *testing.T) {
	set := measuredSet(t, hiddenMapping())
	opts := smallOpts()
	opts.MaxGenerations = 3 // early stop: unlikely to agree already
	opts.LocalSearch = false
	r1, _ := Run(context.Background(), set, opts)
	opts.Seed = 99
	r2, _ := Run(context.Background(), set, opts)
	if r1.Best.Equal(r2.Best) {
		t.Log("warning: different seeds produced identical early mappings (possible but unlikely)")
	}
}

func TestHistoryMonotoneBestError(t *testing.T) {
	set := measuredSet(t, hiddenMapping())
	opts := smallOpts()
	opts.LocalSearch = false
	res, err := Run(context.Background(), set, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("no history recorded")
	}
	// The best error may fluctuate slightly because selection is on the
	// scalarized two-objective fitness, but it must not degrade overall.
	first := res.History[0].BestError
	last := res.History[len(res.History)-1].BestError
	if last > first+1e-9 {
		t.Errorf("best error degraded: %g -> %g", first, last)
	}
}

func TestLocalSearchImprovesOrKeeps(t *testing.T) {
	set := measuredSet(t, hiddenMapping())
	opts := smallOpts()
	opts.LocalSearch = false
	opts.MaxGenerations = 6
	noLS, err := Run(context.Background(), set, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.LocalSearch = true
	withLS, err := Run(context.Background(), set, opts)
	if err != nil {
		t.Fatal(err)
	}
	if withLS.BestError > noLS.BestError+1e-9 {
		t.Errorf("local search degraded Davg: %g -> %g", noLS.BestError, withLS.BestError)
	}
}

func TestVolumeObjectiveYieldsCompactMappings(t *testing.T) {
	set := measuredSet(t, hiddenMapping())

	opts := smallOpts()
	opts.Seed = 11
	withV, err := Run(context.Background(), set, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.VolumeObjective = false
	withoutV, err := Run(context.Background(), set, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Both should fit well; the volume-aware run must not be larger.
	if withV.BestVolume > withoutV.BestVolume {
		t.Errorf("volume objective produced larger mapping: %d vs %d",
			withV.BestVolume, withoutV.BestVolume)
	}
}

func TestRecombinePreservesInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		a := portmap.Random(rng, portmap.RandomOptions{NumInsts: 6, NumPorts: 4})
		b := portmap.Random(rng, portmap.RandomOptions{NumInsts: 6, NumPorts: 4})
		c1, c2 := recombine(rng, a, b, nil)
		if err := c1.Validate(); err != nil {
			t.Fatalf("child1 invalid: %v", err)
		}
		if err := c2.Validate(); err != nil {
			t.Fatalf("child2 invalid: %v", err)
		}
		// Mass conservation: except for the non-empty repair case, the
		// combined µop multiset of the children equals the parents'.
		for i := 0; i < 6; i++ {
			parentCount := a.UopCountOf(i) + b.UopCountOf(i)
			childCount := c1.UopCountOf(i) + c2.UopCountOf(i)
			// The repair path can add at most 1 per child.
			if childCount < parentCount || childCount > parentCount+2 {
				t.Fatalf("inst %d: children have %d µops, parents %d", i, childCount, parentCount)
			}
		}
	}
}

func TestMutationAblationRuns(t *testing.T) {
	set := measuredSet(t, hiddenMapping())
	opts := smallOpts()
	opts.MutationRate = 0.2
	opts.MaxGenerations = 8
	res, err := Run(context.Background(), set, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatalf("mutated run produced invalid mapping: %v", err)
	}
}

func TestConvergenceStopsEarly(t *testing.T) {
	// A single instruction on one port converges almost immediately; the
	// run must stop well before MaxGenerations.
	m := portmap.NewMapping(1, 2)
	m.SetDecomp(0, []portmap.UopCount{{Ports: portmap.MakePortSet(0), Count: 1}})
	set := measuredSet(t, m)
	opts := smallOpts()
	opts.NumPorts = 2
	opts.MaxGenerations = 500
	res, err := Run(context.Background(), set, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generations >= 500 {
		t.Errorf("run did not converge early (%d generations)", res.Generations)
	}
	if res.BestError > 1e-6 {
		t.Errorf("trivial problem not solved: Davg = %g", res.BestError)
	}
}

func TestFitnessEvaluationsCounted(t *testing.T) {
	set := measuredSet(t, hiddenMapping())
	opts := smallOpts()
	opts.MaxGenerations = 5
	res, err := Run(context.Background(), set, opts)
	if err != nil {
		t.Fatal(err)
	}
	// At least the initial population and one generation of children.
	if res.FitnessEvaluations < opts.PopulationSize*2 {
		t.Errorf("FitnessEvaluations = %d, want >= %d",
			res.FitnessEvaluations, opts.PopulationSize*2)
	}
}

// TestWarmStartFromSeedMapping exercises the SeedMappings extension:
// warm-starting from the (hidden) truth must immediately reach Davg 0,
// and warm-starting from a perturbed mapping must do no worse than the
// perturbed mapping itself (the OSACA-style refinement use case, §6).
func TestWarmStartFromSeedMapping(t *testing.T) {
	hidden := hiddenMapping()
	set := measuredSet(t, hidden)

	opts := smallOpts()
	opts.MaxGenerations = 5
	// Refinement runs care about fit: lean the scalarization toward
	// accuracy so the compactness objective cannot displace a perfect
	// seed (with equal weights, a compact approximation may legitimately
	// outrank it — that is the paper's trade-off, not a bug).
	opts.AccuracyWeight = 10
	opts.SeedMappings = []*portmap.Mapping{hidden}
	res, err := Run(context.Background(), set, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestError > 1e-9 {
		t.Errorf("warm start from truth: Davg = %g, want 0", res.BestError)
	}

	// Perturb the truth: drop a port from the two-port µop of I1.
	perturbed := hidden.Clone()
	perturbed.SetDecomp(1, []portmap.UopCount{{Ports: portmap.MakePortSet(0), Count: 1}})
	var te throughput.Evaluator
	perturbedErr := 0.0
	for _, m := range set.Measurements {
		pred := te.ThroughputOf(perturbed, m.Exp)
		perturbedErr += abs(pred-m.Throughput) / m.Throughput
	}
	perturbedErr /= float64(len(set.Measurements))

	opts.SeedMappings = []*portmap.Mapping{perturbed}
	opts.MaxGenerations = 30
	res, err = Run(context.Background(), set, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestError > perturbedErr {
		t.Errorf("refinement worse than its seed: %g vs %g", res.BestError, perturbedErr)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestWarmStartValidation(t *testing.T) {
	set := measuredSet(t, hiddenMapping())
	opts := smallOpts()
	wrong := portmap.NewMapping(99, 3)
	opts.SeedMappings = []*portmap.Mapping{wrong}
	if _, err := Run(context.Background(), set, opts); err == nil {
		t.Error("mismatched seed mapping accepted")
	}
	invalid := portmap.NewMapping(4, 3) // empty decompositions
	opts.SeedMappings = []*portmap.Mapping{invalid}
	if _, err := Run(context.Background(), set, opts); err == nil {
		t.Error("invalid seed mapping accepted")
	}
}

// TestSelectBestOrdering exercises the scalarization in isolation.
func TestSelectBestOrdering(t *testing.T) {
	mk := func(d float64, v int) individual {
		return individual{m: nil, davg: d, volume: v}
	}
	pop := []individual{
		mk(0.5, 10), // poor error
		mk(0.1, 50), // good error, large volume
		mk(0.1, 10), // good error, small volume: must win
		mk(0.3, 20),
	}
	selectBest(pop, 2, true, 1)
	if pop[0].davg != 0.1 || pop[0].volume != 10 {
		t.Errorf("best = (%g, %d), want (0.1, 10)", pop[0].davg, pop[0].volume)
	}
	// Without the volume objective, 0.1/50 and 0.1/10 tie on error and
	// the tie-break prefers the smaller volume.
	pop2 := []individual{mk(0.1, 50), mk(0.1, 10)}
	selectBest(pop2, 1, false, 1)
	if pop2[0].volume != 10 {
		t.Errorf("tie-break failed: volume %d", pop2[0].volume)
	}
	// A high accuracy weight outranks compactness: (0.1, 50) must beat
	// (0.2, 10).
	pop3 := []individual{mk(0.2, 10), mk(0.1, 50)}
	selectBest(pop3, 1, true, 100)
	if pop3[0].davg != 0.1 {
		t.Errorf("accuracy weight ignored: best davg = %g", pop3[0].davg)
	}
}

// TestAccuracyWeightEscapesCompactnessTrap reproduces the pathology of
// equal-weight scalarization on very small problems — all seeds converge
// to a compact mapping with ~31% Davg on this 2-port machine — and shows
// that the AccuracyWeight extension escapes it.
func TestAccuracyWeightEscapesCompactnessTrap(t *testing.T) {
	hidden := portmap.NewMapping(3, 2)
	hidden.SetDecomp(0, []portmap.UopCount{{Ports: portmap.MakePortSet(0), Count: 1}})
	hidden.SetDecomp(1, []portmap.UopCount{{Ports: portmap.MakePortSet(0, 1), Count: 1}})
	hidden.SetDecomp(2, []portmap.UopCount{{Ports: portmap.MakePortSet(1), Count: 2}})
	set := measuredSet(t, hidden)

	opts := smallOpts()
	opts.NumPorts = 2
	equal, err := Run(context.Background(), set, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.AccuracyWeight = 10
	weighted, err := Run(context.Background(), set, opts)
	if err != nil {
		t.Fatal(err)
	}
	if weighted.BestError >= equal.BestError {
		t.Errorf("accuracy weight did not improve Davg: %g vs %g",
			weighted.BestError, equal.BestError)
	}
	if weighted.BestError > 0.02 {
		t.Errorf("weighted run still inaccurate: Davg = %g", weighted.BestError)
	}
}

// TestCacheOnOffBitIdentical is the golden pin for the memoized and
// incremental evaluation layer: a fixed-seed Run must return a
// bit-identical result — same Best mapping, same Davg, same volume, same
// per-generation history — with the caching layer enabled (memo +
// duplicate skip + delta local search over memoized predictions) and
// disabled. Exercised across several seeds and with local search on and
// off.
func TestCacheOnOffBitIdentical(t *testing.T) {
	set := measuredSet(t, hiddenMapping())
	for _, localSearch := range []bool{true, false} {
		for _, seed := range []int64{1, 7, 42} {
			opts := smallOpts()
			opts.Seed = seed
			opts.LocalSearch = localSearch
			opts.MaxGenerations = 12

			opts.DisableCache = false
			cached, err := Run(context.Background(), set, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.DisableCache = true
			plain, err := Run(context.Background(), set, opts)
			if err != nil {
				t.Fatal(err)
			}

			tag := "localSearch=" + map[bool]string{true: "on", false: "off"}[localSearch]
			if !cached.Best.Equal(plain.Best) {
				t.Errorf("seed %d %s: Best differs with caching on/off:\n%s\nvs\n%s",
					seed, tag, cached.Best, plain.Best)
			}
			if cached.BestError != plain.BestError {
				t.Errorf("seed %d %s: BestError %v (cached) != %v (plain)",
					seed, tag, cached.BestError, plain.BestError)
			}
			if cached.BestVolume != plain.BestVolume {
				t.Errorf("seed %d %s: BestVolume %d != %d", seed, tag, cached.BestVolume, plain.BestVolume)
			}
			if cached.Generations != plain.Generations {
				t.Errorf("seed %d %s: Generations %d != %d", seed, tag, cached.Generations, plain.Generations)
			}
			if len(cached.History) != len(plain.History) {
				t.Fatalf("seed %d %s: history lengths differ: %d vs %d",
					seed, tag, len(cached.History), len(plain.History))
			}
			for g := range cached.History {
				if cached.History[g] != plain.History[g] {
					t.Errorf("seed %d %s: generation %d stats differ: %+v vs %+v",
						seed, tag, g, cached.History[g], plain.History[g])
				}
			}
			// The cached run must actually have exercised the caching
			// layer, and the plain run must not have.
			if cached.CacheStats.MemoHits == 0 {
				t.Errorf("seed %d %s: cached run recorded no memo hits", seed, tag)
			}
			if plain.CacheStats.MemoHits != 0 || plain.CacheStats.MemoMisses != 0 {
				t.Errorf("seed %d %s: DisableCache run recorded memo traffic: %+v",
					seed, tag, plain.CacheStats)
			}
			if localSearch && cached.CacheStats.DeltaEvaluations == 0 {
				t.Errorf("seed %d %s: local search performed no delta evaluations", seed, tag)
			}
		}
	}
}

// TestCacheOnOffBitIdenticalGenericEngine pins the same property through
// a generic (non-fast-path) predictor, where the memo is inactive but
// the duplicate skip and delta local search still apply.
func TestCacheOnOffBitIdenticalGenericEngine(t *testing.T) {
	set := measuredSet(t, hiddenMapping())
	eng, err := engine.ByName("union")
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOpts()
	opts.MaxGenerations = 6
	opts.Engine = eng
	opts.DisableCache = false
	cached, err := Run(context.Background(), set, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.DisableCache = true
	plain, err := Run(context.Background(), set, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !cached.Best.Equal(plain.Best) || cached.BestError != plain.BestError {
		t.Errorf("generic engine: results differ with caching on/off: %v vs %v",
			cached.BestError, plain.BestError)
	}
}
