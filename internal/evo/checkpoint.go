package evo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"path/filepath"

	"pmevo/internal/cachestore"
	"pmevo/internal/engine"
	"pmevo/internal/exp"
	"pmevo/internal/portmap"
)

// Crash-safe checkpoint/resume for the evolutionary run.
//
// A checkpoint captures everything the generational loop needs to
// continue bit-identically: per-island populations (with cached
// objectives), per-island RNG stream positions (seed is implied by
// Options, the position is a draw count — see countingSource),
// generation counters, epoch positions, and per-generation history.
// It deliberately captures state only at generation boundaries: a
// cancellation mid-batch rolls back to the last completed generation,
// whose state is the last consistent one (children of the aborted
// generation were never selected, and the recorded draw count predates
// their recombination).
//
// The checkpoint file is a cachestore blob (SchemaEvoCheckpoint) gated
// by a content key hashing the experiment set and every option that
// shapes the generational trajectory. MaxGenerations is deliberately
// excluded: the trajectory through generation g is independent of the
// budget, so a resume may extend the budget and continue — bit-identical
// to having run with the larger budget from the start (pinned by golden
// test). Alongside the blob, the engine's cross-generation fitness
// cache and throughput memo are spilled; both are bit-exact
// pure-function caches, so reloading them on resume only saves
// recomputation.
//
// Degradation contract (same as every cachestore consumer): a missing,
// damaged, foreign, or incompatible checkpoint never fails a run —
// Resume logs a diagnostic and cold-starts. Checkpoint writes are
// atomic (temp file + rename through the faultfs seam) and write
// failures only log: losing a checkpoint costs re-evolution, never
// correctness.

// ckptPayloadVersion versions the blob payload layout (the cachestore
// frame has its own format version; this one covers the evo-specific
// encoding inside it).
const ckptPayloadVersion uint32 = 1

const (
	ckptModeSingle  byte = 0
	ckptModeIslands byte = 1
)

// defaultCheckpointInterval is the periodic checkpoint cadence (in
// generations) when Options.CheckpointInterval is 0.
const defaultCheckpointInterval = 10

// planCheckpointInterval clamps Options.CheckpointInterval in the
// planIslands style: 0 selects the default, negative disables periodic
// checkpoints (barrier, interruption, and completion checkpoints still
// happen — "never" is spelled CheckpointDir == "").
func planCheckpointInterval(opts Options) int {
	switch {
	case opts.CheckpointInterval == 0:
		return defaultCheckpointInterval
	case opts.CheckpointInterval < 0:
		return -1
	default:
		return opts.CheckpointInterval
	}
}

// CheckpointPath returns the conventional checkpoint blob file inside a
// -checkpoint-dir.
func CheckpointPath(dir string) string { return filepath.Join(dir, "evo-checkpoint.pmc") }

// ckptIsland is the checkpointed state of one island (or of the single
// population, which is encoded as one island in mode ckptModeSingle).
type ckptIsland struct {
	draws      uint64 // RNG state advances at the last generation boundary
	gens       int
	epochStart int // generation count when the in-flight epoch began
	inited     bool
	converged  bool
	history    []GenStats
	pop        []individual
}

// ckptState is a decoded checkpoint.
type ckptState struct {
	mode    byte
	islands []ckptIsland
}

// checkpointKey derives the content key gating a checkpoint file: the
// experiment-set fingerprint combined with every option that shapes the
// generational trajectory. Two runs agree on this key iff they walk the
// same trajectory generation by generation — which is exactly when
// resuming one from the other's checkpoint is sound. Budget
// (MaxGenerations), local search, Workers, and cache sizing are
// excluded: none of them changes what generation g computes.
func checkpointKey(setFingerprint uint64, opts Options, plan islandPlan) uint64 {
	h := portmap.CombineFingerprints(0x706d65766f636b70, uint64(ckptPayloadVersion)) // "pmevockp"
	h = portmap.CombineFingerprints(h, setFingerprint)
	h = portmap.CombineFingerprints(h, uint64(opts.PopulationSize))
	h = portmap.CombineFingerprints(h, uint64(opts.NumPorts))
	h = portmap.CombineFingerprints(h, uint64(opts.MaxUopsPerInst))
	h = portmap.CombineFingerprints(h, math.Float64bits(opts.MutationRate))
	h = portmap.CombineFingerprints(h, boolBit(opts.VolumeObjective))
	h = portmap.CombineFingerprints(h, math.Float64bits(opts.AccuracyWeight))
	h = portmap.CombineFingerprints(h, uint64(opts.Seed))
	h = portmap.CombineFingerprints(h, math.Float64bits(opts.ConvergenceEps))
	h = portmap.CombineFingerprints(h, uint64(plan.islands))
	h = portmap.CombineFingerprints(h, uint64(plan.interval))
	h = portmap.CombineFingerprints(h, uint64(plan.count))
	for _, sm := range opts.SeedMappings {
		h = portmap.CombineFingerprints(h, sm.FingerprintAll())
	}
	if opts.Engine != nil {
		for _, c := range []byte(opts.Engine.Name()) {
			h = portmap.CombineFingerprints(h, uint64(c))
		}
	}
	if h == 0 {
		h = 1
	}
	return h
}

func boolBit(b bool) uint64 {
	if b {
		return 2
	}
	return 1
}

// encodeCheckpoint renders the blob payload. All integers are
// little-endian; floats are stored as exact bit patterns, so a decoded
// individual carries byte-identical objectives.
func encodeCheckpoint(st *ckptState, numInsts, numPorts int) []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, ckptPayloadVersion)
	b = append(b, st.mode)
	b = binary.LittleEndian.AppendUint32(b, uint32(numInsts))
	b = binary.LittleEndian.AppendUint32(b, uint32(numPorts))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(st.islands)))
	for i := range st.islands {
		isl := &st.islands[i]
		b = binary.LittleEndian.AppendUint64(b, isl.draws)
		b = binary.LittleEndian.AppendUint64(b, uint64(isl.gens))
		b = binary.LittleEndian.AppendUint64(b, uint64(isl.epochStart))
		b = append(b, byte(boolBit(isl.inited)-1), byte(boolBit(isl.converged)-1))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(isl.history)))
		for _, h := range isl.history {
			b = binary.LittleEndian.AppendUint64(b, uint64(h.Generation))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(h.BestError))
			b = binary.LittleEndian.AppendUint64(b, uint64(h.BestVolume))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(h.MeanError))
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(len(isl.pop)))
		for _, ind := range isl.pop {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(ind.davg))
			b = binary.LittleEndian.AppendUint32(b, uint32(ind.volume))
			for inst := 0; inst < numInsts; inst++ {
				d := ind.m.Decomp[inst]
				b = binary.LittleEndian.AppendUint32(b, uint32(len(d)))
				for _, uc := range d {
					b = binary.LittleEndian.AppendUint64(b, uint64(uc.Ports))
					b = binary.LittleEndian.AppendUint32(b, uint32(uc.Count))
				}
			}
		}
	}
	return b
}

// ckptCursor is a bounds-checked little-endian reader over the payload.
type ckptCursor struct {
	b   []byte
	off int
	err error
}

func (c *ckptCursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if c.off+n > len(c.b) {
		c.err = errors.New("checkpoint payload overrun")
		return nil
	}
	s := c.b[c.off : c.off+n]
	c.off += n
	return s
}

func (c *ckptCursor) u8() byte {
	s := c.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (c *ckptCursor) u32() uint32 {
	s := c.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (c *ckptCursor) u64() uint64 {
	s := c.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

// decodeCheckpoint parses and validates a blob payload against the
// run's geometry. Any inconsistency is an error — the caller treats it
// exactly like a corrupt file and cold-starts.
func decodeCheckpoint(payload []byte, numInsts, numPorts int) (*ckptState, error) {
	c := &ckptCursor{b: payload}
	if v := c.u32(); c.err == nil && v != ckptPayloadVersion {
		return nil, fmt.Errorf("checkpoint payload version %d, want %d", v, ckptPayloadVersion)
	}
	st := &ckptState{mode: c.u8()}
	if st.mode != ckptModeSingle && st.mode != ckptModeIslands {
		return nil, fmt.Errorf("unknown checkpoint mode %d", st.mode)
	}
	if n := int(c.u32()); c.err == nil && n != numInsts {
		return nil, fmt.Errorf("checkpoint for %d instructions, want %d", n, numInsts)
	}
	if p := int(c.u32()); c.err == nil && p != numPorts {
		return nil, fmt.Errorf("checkpoint for %d ports, want %d", p, numPorts)
	}
	nIslands := int(c.u32())
	if c.err == nil && (nIslands < 1 || nIslands > 1<<16) {
		return nil, fmt.Errorf("implausible island count %d", nIslands)
	}
	for k := 0; k < nIslands && c.err == nil; k++ {
		isl := ckptIsland{
			draws:      c.u64(),
			gens:       int(c.u64()),
			epochStart: int(c.u64()),
			inited:     c.u8() != 0,
			converged:  c.u8() != 0,
		}
		nHist := int(c.u32())
		if c.err == nil && nHist > 1<<24 {
			return nil, fmt.Errorf("implausible history length %d", nHist)
		}
		for i := 0; i < nHist && c.err == nil; i++ {
			isl.history = append(isl.history, GenStats{
				Generation: int(c.u64()),
				BestError:  math.Float64frombits(c.u64()),
				BestVolume: int(c.u64()),
				MeanError:  math.Float64frombits(c.u64()),
			})
		}
		nPop := int(c.u32())
		if c.err == nil && (nPop < 1 || nPop > 1<<24) {
			return nil, fmt.Errorf("implausible population size %d", nPop)
		}
		for i := 0; i < nPop && c.err == nil; i++ {
			ind := individual{
				davg:   math.Float64frombits(c.u64()),
				volume: int(c.u32()),
			}
			m := portmap.NewMapping(numInsts, numPorts)
			for inst := 0; inst < numInsts && c.err == nil; inst++ {
				nUops := int(c.u32())
				if c.err == nil && (nUops < 1 || nUops > 1<<16) {
					return nil, fmt.Errorf("implausible uop count %d", nUops)
				}
				ucs := make([]portmap.UopCount, 0, nUops)
				for u := 0; u < nUops && c.err == nil; u++ {
					ucs = append(ucs, portmap.UopCount{
						Ports: portmap.PortSet(c.u64()),
						Count: int(c.u32()),
					})
				}
				if c.err == nil {
					m.SetDecomp(inst, ucs)
				}
			}
			if c.err == nil {
				if err := m.Validate(); err != nil {
					return nil, fmt.Errorf("checkpointed mapping invalid: %w", err)
				}
				ind.m = m
				isl.pop = append(isl.pop, ind)
			}
		}
		st.islands = append(st.islands, isl)
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.off != len(c.b) {
		return nil, fmt.Errorf("checkpoint payload has %d trailing bytes", len(c.b)-c.off)
	}
	return st, nil
}

// checkpointer owns the run's checkpoint writes. All methods are
// called from the coordinator goroutine at quiesce points (generation
// boundaries, epoch barriers, interruption, completion) — never
// concurrently with evaluation, so cache snapshots are safe. A nil
// checkpointer (checkpointing disabled) turns every method into a
// no-op.
type checkpointer struct {
	dir      string
	interval int // periodic cadence in generations; < 0: periodic off
	key      uint64
	set      *exp.Set
	svc      *engine.Service
	numInsts int
	numPorts int
	logf     func(string, ...any)

	lastGens int    // generations at the last periodic save
	lastSig  uint64 // state signature of the last save, to skip no-progress rewrites
}

func (c *checkpointer) enabled() bool { return c != nil && c.dir != "" }

// saveState encodes and atomically lands the checkpoint blob, then
// spills the engine's fitness cache and throughput memo next to it.
// Failures are logged and swallowed: a lost checkpoint costs
// re-evolution after a crash, never correctness — and the previous
// checkpoint file, if any, survives any failed write (atomicity is
// pinned by the cachestore fault-injection tests).
func (c *checkpointer) saveState(st *ckptState, gensDone int) {
	sig := stateSig(st)
	if sig == c.lastSig {
		c.lastGens = gensDone
		return
	}
	payload := encodeCheckpoint(st, c.numInsts, c.numPorts)
	if err := cachestore.SaveBlob(CheckpointPath(c.dir), cachestore.SchemaEvoCheckpoint, c.key, payload); err != nil {
		c.log("checkpoint save failed (run continues): %v", err)
		return
	}
	c.lastSig = sig
	c.lastGens = gensDone
	if entries := c.svc.FitCacheSnapshot(); len(entries) > 0 {
		if err := engine.SaveFitCache(engine.FitCachePath(c.dir), c.set, entries); err != nil {
			c.log("fitness-cache spill failed (run continues): %v", err)
		}
	}
	if entries := c.svc.MemoSnapshot(); len(entries) > 0 {
		if err := engine.SaveMemo(engine.MemoPath(c.dir), c.set, entries); err != nil {
			c.log("memo spill failed (run continues): %v", err)
		}
	}
	c.log("checkpoint written at generation %d (%s)", gensDone, CheckpointPath(c.dir))
}

// loadCheckpoint restores a checkpoint for resumption. Every failure
// mode — no file, damage, a checkpoint from different options or a
// different experiment set — returns an error the caller logs before
// cold-starting; nothing here can fail a run.
func loadCheckpoint(dir string, key uint64, numInsts, numPorts int) (*ckptState, error) {
	payload, err := cachestore.LoadBlob(CheckpointPath(dir), cachestore.SchemaEvoCheckpoint, key)
	if err != nil {
		return nil, err
	}
	return decodeCheckpoint(payload, numInsts, numPorts)
}

// maybe writes a periodic checkpoint when at least `interval`
// generations completed since the last one. mk builds the state lazily
// so the boundary path pays nothing when no save is due.
func (c *checkpointer) maybe(gensDone int, mk func() *ckptState) {
	if !c.enabled() || c.interval < 0 || gensDone-c.lastGens < c.interval {
		return
	}
	c.saveState(mk(), gensDone)
}

// barrier writes a checkpoint at a migration barrier (every barrier, by
// contract — the natural island-model checkpoint cadence).
func (c *checkpointer) barrier(gensDone int, mk func() *ckptState) {
	if !c.enabled() {
		return
	}
	c.saveState(mk(), gensDone)
}

// interruptOrDone writes the final checkpoint of a run: on
// interruption (the state the resume will continue from) and on
// completion of the generational phase (so a resume with a larger
// MaxGenerations extends the run).
func (c *checkpointer) interruptOrDone(gensDone int, mk func() *ckptState) {
	if !c.enabled() {
		return
	}
	c.saveState(mk(), gensDone)
}

func (c *checkpointer) log(format string, args ...any) {
	if c != nil && c.logf != nil {
		c.logf(format, args...)
	}
}

// stateSig fingerprints a state's progress so identical consecutive
// saves (e.g. a barrier immediately followed by completion) are
// written once.
func stateSig(st *ckptState) uint64 {
	h := uint64(0x736967) // "sig"
	for i := range st.islands {
		h = portmap.CombineFingerprints(h, st.islands[i].draws)
		h = portmap.CombineFingerprints(h, uint64(st.islands[i].gens))
		h = portmap.CombineFingerprints(h, uint64(st.islands[i].epochStart))
	}
	return h
}
