package uarch

import (
	"pmevo/internal/isa"
	"pmevo/internal/machine"
	"pmevo/internal/portmap"
)

// ZEN builds the Zen+-like processor with 10 ports (paper Table 1).
// The port layout follows AMD's Family 17h optimization guide: four
// integer ALUs, two load AGUs, a store unit, and four FP/vector pipes —
// with the store-data function sharing the last FP pipe, for ten
// scheduler ports total:
//
//	P0-P3: integer ALUs (multiply on P1, divide on P2)
//	P4-P5: load AGUs
//	P6:    store AGU/data
//	P7-P9: FP/vector pipes (FP0, FP1, FP2)
//
// Zen+ executes 256-bit AVX operations as two double-pumped 128-bit
// µops; the transform below doubles every vector µop count for forms
// with a 256-bit operand, in both the ground truth and the simulator.
func ZEN() *Processor {
	p := &Processor{
		Name:            "ZEN",
		Manufacturer:    "AMD",
		ProcessorStr:    "Ryzen 5 2600X",
		Microarch:       "Zen+",
		PortsStr:        "10",
		InstrSet:        "x86-64",
		ClockGHz:        3.6,
		RAMGB:           32,
		HasPortCounters: false,
		ISA:             isa.SyntheticX86(),
		PortNames:       []string{"P0", "P1", "P2", "P3", "L0", "L1", "ST", "F0", "F1", "F2"},
		Config: machine.Config{
			NumPorts:      10,
			DispatchWidth: 5,
			WindowSize:    70,
			Policy:        machine.LeastLoaded,
			FrequencyGHz:  3.6,
		},
	}

	behaviours := map[string]classBehaviour{
		// Scalar integer: four symmetric ALUs.
		"alu":     {mapUops: uops(u(1, 0, 1, 2, 3)), latency: 1},
		"alu_ld":  {mapUops: uops(u(1, 0, 1, 2, 3), u(1, 4, 5)), latency: 5},
		"shift":   {mapUops: uops(u(1, 1, 2)), latency: 1},
		"bitcnt":  {mapUops: uops(u(1, 0, 3)), latency: 1},
		"bittest": {mapUops: uops(u(1, 1, 2)), latency: 1},
		"mul":     {mapUops: uops(u(1, 1)), latency: 3},
		"mul_ld":  {mapUops: uops(u(1, 1), u(1, 4, 5)), latency: 7},
		"lea":     {mapUops: uops(u(1, 0, 1, 2, 3)), latency: 1},
		"lea3":    {mapUops: uops(u(2, 0, 1, 2, 3)), latency: 2},
		"mov":     {mapUops: uops(u(1, 0, 1, 2, 3)), latency: 1},
		"cmov":    {mapUops: uops(u(1, 0, 1, 2, 3)), latency: 1},
		"setcc":   {mapUops: uops(u(1, 0, 1, 2, 3)), latency: 1},

		// Integer division: iterative divider occupying ALU2 for 14
		// cycles; documented as 14 single-port µops so the mapping model
		// matches the measured reciprocal throughput.
		"div": {
			mapUops: uops(u(14, 2)),
			simUops: []machine.UopSpec{
				{Ports: portmap.MakePortSet(2), Block: 14},
			},
			latency: 25,
		},

		// Memory.
		"load":     {mapUops: uops(u(1, 4, 5)), latency: 4},
		"store":    {mapUops: uops(u(1, 4, 5), u(1, 6)), latency: 1},
		"vecload":  {mapUops: uops(u(1, 4, 5)), latency: 6},
		"vecstore": {mapUops: uops(u(1, 4, 5), u(1, 6)), latency: 1},

		// Vector integer (128-bit baseline; 256-bit double-pumped via
		// the transform).
		"vecmov":     {mapUops: uops(u(1, 7, 8, 9)), latency: 1},
		"vecialu":    {mapUops: uops(u(1, 7, 8, 9)), latency: 1},
		"vecialu_ld": {mapUops: uops(u(1, 7, 8, 9), u(1, 4, 5)), latency: 7},
		"vecshift":   {mapUops: uops(u(1, 8)), latency: 1},
		"vecimul":    {mapUops: uops(u(1, 7)), latency: 4},
		"vecshuf":    {mapUops: uops(u(1, 8, 9)), latency: 1},

		// Vector floating point.
		"vecfp":    {mapUops: uops(u(1, 7, 8)), latency: 3},
		"vecfp_ld": {mapUops: uops(u(1, 7, 8), u(1, 4, 5)), latency: 9},
		"fma":      {mapUops: uops(u(1, 7, 8)), latency: 5},
		"fpscalar": {mapUops: uops(u(1, 7, 8)), latency: 3},
		"veccvt":   {mapUops: uops(u(1, 9)), latency: 4},
		"xfer":     {mapUops: uops(u(1, 9)), latency: 3},

		// FP division: iterative divider occupying FP2 for 5 cycles.
		"fpdiv": {
			mapUops: uops(u(5, 9)),
			simUops: []machine.UopSpec{
				{Ports: portmap.MakePortSet(9), Block: 5},
			},
			latency: 12,
		},
	}

	// Double-pump all vector µops of 256-bit forms: both the ground
	// truth mapping and the simulator execute twice the µops. Loads and
	// stores keep a single memory µop (the load/store path is 256 bits
	// wide internally) but the FP halves double.
	transform := func(f *isa.Form, b classBehaviour) classBehaviour {
		if !has256BitOperand(f) {
			return b
		}
		vec := portmap.MakePortSet(7, 8, 9)
		out := b
		out.mapUops = nil
		for _, uc := range b.mapUops {
			if !uc.Ports.Intersect(vec).IsEmpty() {
				uc.Count *= 2
			}
			out.mapUops = append(out.mapUops, uc)
		}
		if b.simUops != nil {
			out.simUops = nil
			for _, us := range b.simUops {
				out.simUops = append(out.simUops, us)
				if !us.Ports.Intersect(vec).IsEmpty() {
					out.simUops = append(out.simUops, us)
				}
			}
		}
		return out
	}

	proc, err := build(p, behaviours, nil, transform)
	if err != nil {
		panic(err)
	}
	return proc
}

// has256BitOperand reports whether any operand of the form is 256 bits
// wide.
func has256BitOperand(f *isa.Form) bool {
	for _, op := range f.Operands {
		if op.Width >= 256 {
			return true
		}
	}
	return false
}
