package uarch

import (
	"pmevo/internal/isa"
	"pmevo/internal/machine"
	"pmevo/internal/portmap"
)

// A72 builds the Cortex-A72-like processor with 7 ports (paper Table 1:
// "7 + BR"; the branch pipeline is omitted because the ISA under test
// contains no control-flow instructions, §5.1.1).
//
// Port layout per ARM's Cortex-A72 software optimization guide:
//
//	I0, I1: single-cycle integer pipelines
//	M:      multi-cycle integer pipeline (multiply, divide, bitfield)
//	F0, F1: FP/ASIMD pipelines (divide/sqrt only on F0)
//	L:      load pipeline
//	S:      store pipeline
//
// The A72 core is configured with a narrow front end (3-wide dispatch)
// and a small scheduler window, reproducing the paper's observation that
// its "less advanced out-of-order execution engine" makes longer
// experiments fall short of the optimal-scheduler model and leads to the
// under-estimation visible in Figure 7 (§5.3.2).
func A72() *Processor {
	p := &Processor{
		Name:            "A72",
		Manufacturer:    "RockChip",
		ProcessorStr:    "RK3399",
		Microarch:       "Cortex-A72",
		PortsStr:        "7 + BR",
		InstrSet:        "ARMv8-A",
		ClockGHz:        1.8,
		RAMGB:           4,
		HasPortCounters: false,
		ISA:             isa.SyntheticARM(),
		PortNames:       []string{"I0", "I1", "M", "F0", "F1", "L", "S"},
		Config: machine.Config{
			NumPorts:      7,
			DispatchWidth: 3,
			WindowSize:    24,
			Policy:        machine.LowestIndex,
			FrequencyGHz:  1.8,
		},
	}

	behaviours := map[string]classBehaviour{
		// Integer.
		"alu":         {mapUops: uops(u(1, 0, 1)), latency: 1},
		"alu_shifted": {mapUops: uops(u(1, 2)), latency: 2},
		"csel":        {mapUops: uops(u(1, 0, 1)), latency: 1},
		"mov":         {mapUops: uops(u(1, 0, 1)), latency: 1},
		"shift":       {mapUops: uops(u(1, 0, 1)), latency: 1},
		"bitfield":    {mapUops: uops(u(1, 2)), latency: 2},
		"bitcnt":      {mapUops: uops(u(1, 2)), latency: 2},
		"mul":         {mapUops: uops(u(1, 2)), latency: 3},
		"lea":         {mapUops: uops(u(1, 0, 1)), latency: 1},

		// Integer division: iterative, occupying the M pipe for 12
		// cycles; documented as 12 M-pipe µops so the mapping model
		// matches the measured reciprocal throughput.
		"div": {
			mapUops: uops(u(12, 2)),
			simUops: []machine.UopSpec{
				{Ports: portmap.MakePortSet(2), Block: 12},
			},
			latency: 20,
		},

		// Memory.
		"load":      {mapUops: uops(u(1, 5)), latency: 4},
		"loadpair":  {mapUops: uops(u(2, 5)), latency: 4},
		"store":     {mapUops: uops(u(1, 6)), latency: 1},
		"storepair": {mapUops: uops(u(2, 6)), latency: 1},
		"vecload":   {mapUops: uops(u(1, 5)), latency: 5},
		"vecstore":  {mapUops: uops(u(1, 6)), latency: 1},

		// Scalar FP.
		"fpscalar": {mapUops: uops(u(1, 3, 4)), latency: 3},
		"fpcmp":    {mapUops: uops(u(1, 3, 4)), latency: 3},
		"fma":      {mapUops: uops(u(1, 3, 4)), latency: 7},
		"fpcvt":    {mapUops: uops(u(1, 3)), latency: 3},
		"xfer":     {mapUops: uops(u(1, 2)), latency: 3},

		// FP division and square root: F0 only, iterative, occupying the
		// pipe for 10 cycles.
		"fpdiv": {
			mapUops: uops(u(10, 3)),
			simUops: []machine.UopSpec{
				{Ports: portmap.MakePortSet(3), Block: 10},
			},
			latency: 17,
		},

		// ASIMD.
		"vecialu":  {mapUops: uops(u(1, 3, 4)), latency: 3},
		"vecshift": {mapUops: uops(u(1, 4)), latency: 3},
		"vecimul":  {mapUops: uops(u(1, 3)), latency: 4},
		"vecshuf":  {mapUops: uops(u(1, 3, 4)), latency: 3},
		"vecfp":    {mapUops: uops(u(1, 3, 4)), latency: 4},
	}

	proc, err := build(p, behaviours, nil, nil)
	if err != nil {
		panic(err)
	}
	return proc
}
