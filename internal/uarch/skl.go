package uarch

import (
	"pmevo/internal/isa"
	"pmevo/internal/machine"
	"pmevo/internal/portmap"
)

// SKL builds the Skylake-like processor: 8 execution ports plus a
// separate divider pipeline modeled as an additional port (paper §5.1.1:
// "SKL has a separate pipeline of long-running operations, marked as
// DIV, that has to be modeled as an additional port").
//
// Port roles follow the Intel optimization manual's Skylake layout:
//
//	P0: ALU, vec ALU, vec mul/FMA, divider feed
//	P1: ALU, vec ALU, vec mul/FMA, int mul, bit counts, complex LEA
//	P2: load AGU
//	P3: load AGU
//	P4: store data
//	P5: ALU, vec shuffle
//	P6: ALU, shifts, branches (branches excluded from the ISA)
//	P7: simple store AGU
//	P8: DIV pipeline (pseudo-port)
func SKL() *Processor {
	p := &Processor{
		Name:            "SKL",
		Manufacturer:    "Intel",
		ProcessorStr:    "Core i7 6700",
		Microarch:       "Skylake",
		PortsStr:        "8 + DIV",
		InstrSet:        "x86-64",
		ClockGHz:        3.4,
		RAMGB:           32,
		HasPortCounters: true,
		ISA:             isa.SyntheticX86(),
		PortNames:       []string{"P0", "P1", "P2", "P3", "P4", "P5", "P6", "P7", "DIV"},
		Config: machine.Config{
			NumPorts:      9,
			DispatchWidth: 6,
			WindowSize:    90,
			Policy:        machine.LeastLoaded,
			FrequencyGHz:  3.4,
		},
	}

	behaviours := map[string]classBehaviour{
		// Scalar integer.
		"alu":    {mapUops: uops(u(1, 0, 1, 5, 6)), latency: 1},
		"alu_ld": {mapUops: uops(u(1, 0, 1, 5, 6), u(1, 2, 3)), latency: 6},
		"shift":  {mapUops: uops(u(1, 0, 6)), latency: 1},
		"bitcnt": {mapUops: uops(u(1, 1)), latency: 3},
		"mul":    {mapUops: uops(u(1, 1)), latency: 3},
		"mul_ld": {mapUops: uops(u(1, 1), u(1, 2, 3)), latency: 8},
		"lea":    {mapUops: uops(u(1, 1, 5)), latency: 1},
		"lea3":   {mapUops: uops(u(1, 1)), latency: 3},
		"mov":    {mapUops: uops(u(1, 0, 1, 5, 6)), latency: 1},
		"cmov":   {mapUops: uops(u(1, 0, 6)), latency: 1},
		"setcc":  {mapUops: uops(u(1, 0, 6)), latency: 1},

		// The BTx quirk (§5.3.1): the documented port usage is a single
		// p06 µop, but the measurable throughput corresponds to two µops.
		// Predictors that trust the documented usage (uops.info, IACA,
		// llvm-mca) under-estimate these experiments; PMEvo learns a
		// multi-µop representation that fits the observations.
		"bittest": {
			mapUops: uops(u(1, 0, 6)),
			simUops: []machine.UopSpec{
				{Ports: portmap.MakePortSet(0, 6), Block: 1},
				{Ports: portmap.MakePortSet(0, 6), Block: 1},
			},
			latency: 1,
		},

		// Integer division: one p0 feed µop plus the DIV pipeline, which
		// blocks for six cycles (not fully pipelined). The documented
		// mapping carries six DIV-port µops so the port-mapping model
		// reproduces the measured reciprocal throughput, exactly as
		// uops.info's measured tables do for unpipelined units.
		"div": {
			mapUops: uops(u(1, 0), u(6, 8)),
			simUops: []machine.UopSpec{
				{Ports: portmap.MakePortSet(0), Block: 1},
				{Ports: portmap.MakePortSet(8), Block: 6},
			},
			latency: 21,
		},

		// Memory.
		"load":     {mapUops: uops(u(1, 2, 3)), latency: 5},
		"store":    {mapUops: uops(u(1, 2, 3, 7), u(1, 4)), latency: 1},
		"vecload":  {mapUops: uops(u(1, 2, 3)), latency: 6},
		"vecstore": {mapUops: uops(u(1, 2, 3, 7), u(1, 4)), latency: 1},

		// Vector integer.
		"vecmov":     {mapUops: uops(u(1, 0, 1, 5)), latency: 1},
		"vecialu":    {mapUops: uops(u(1, 0, 1, 5)), latency: 1},
		"vecialu_ld": {mapUops: uops(u(1, 0, 1, 5), u(1, 2, 3)), latency: 7},
		"vecshift":   {mapUops: uops(u(1, 0, 1)), latency: 1},
		"vecimul":    {mapUops: uops(u(1, 0, 1)), latency: 5},
		"vecshuf":    {mapUops: uops(u(1, 5)), latency: 1},

		// Vector floating point.
		"vecfp":    {mapUops: uops(u(1, 0, 1)), latency: 4},
		"vecfp_ld": {mapUops: uops(u(1, 0, 1), u(1, 2, 3)), latency: 10},
		"fma":      {mapUops: uops(u(1, 0, 1)), latency: 4},
		"fpscalar": {mapUops: uops(u(1, 0, 1)), latency: 4},
		"veccvt":   {mapUops: uops(u(1, 0, 1), u(1, 5)), latency: 5},
		"xfer":     {mapUops: uops(u(1, 0)), latency: 2},

		// FP division: p0 feed plus the DIV pipeline blocking for four
		// cycles (documented as four DIV-port µops, see "div").
		"fpdiv": {
			mapUops: uops(u(1, 0), u(4, 8)),
			simUops: []machine.UopSpec{
				{Ports: portmap.MakePortSet(0), Block: 1},
				{Ports: portmap.MakePortSet(8), Block: 4},
			},
			latency: 14,
		},
	}

	// vpmulld executes as two p01 µops on Skylake.
	overrides := map[string]classBehaviour{
		"vpmulld": {mapUops: uops(u(2, 0, 1)), latency: 10},
	}

	proc, err := build(p, behaviours, overrides, nil)
	if err != nil {
		panic(err)
	}
	return proc
}
