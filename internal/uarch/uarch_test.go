package uarch

import (
	"testing"

	"pmevo/internal/machine"
	"pmevo/internal/portmap"
	"pmevo/internal/throughput"
)

func TestAllProcessorsBuild(t *testing.T) {
	procs := All()
	if len(procs) != 3 {
		t.Fatalf("All() returned %d processors, want 3", len(procs))
	}
	names := []string{"SKL", "ZEN", "A72"}
	for i, p := range procs {
		if p.Name != names[i] {
			t.Errorf("processor %d = %q, want %q", i, p.Name, names[i])
		}
	}
}

func TestTable1Metadata(t *testing.T) {
	// The Table 1 rows of the paper.
	tests := []struct {
		name      string
		manu      string
		microarch string
		ports     string
		instrSet  string
		clock     float64
		numPorts  int
		counters  bool
	}{
		{"SKL", "Intel", "Skylake", "8 + DIV", "x86-64", 3.4, 9, true},
		{"ZEN", "AMD", "Zen+", "10", "x86-64", 3.6, 10, false},
		{"A72", "RockChip", "Cortex-A72", "7 + BR", "ARMv8-A", 1.8, 7, false},
	}
	for _, tc := range tests {
		p, err := ByName(tc.name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", tc.name, err)
		}
		if p.Manufacturer != tc.manu || p.Microarch != tc.microarch ||
			p.PortsStr != tc.ports || p.InstrSet != tc.instrSet {
			t.Errorf("%s metadata = %q/%q/%q/%q", tc.name,
				p.Manufacturer, p.Microarch, p.PortsStr, p.InstrSet)
		}
		if p.ClockGHz != tc.clock {
			t.Errorf("%s clock = %g, want %g", tc.name, p.ClockGHz, tc.clock)
		}
		if p.Config.NumPorts != tc.numPorts {
			t.Errorf("%s model ports = %d, want %d", tc.name, p.Config.NumPorts, tc.numPorts)
		}
		if p.HasPortCounters != tc.counters {
			t.Errorf("%s HasPortCounters = %v, want %v", tc.name, p.HasPortCounters, tc.counters)
		}
		if len(p.PortNames) != tc.numPorts {
			t.Errorf("%s has %d port names for %d ports", tc.name, len(p.PortNames), tc.numPorts)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("P4"); err == nil {
		t.Error("ByName of unknown processor succeeded")
	}
}

func TestGroundTruthValid(t *testing.T) {
	for _, p := range All() {
		if err := p.GroundTruth.Validate(); err != nil {
			t.Errorf("%s: invalid ground truth: %v", p.Name, err)
		}
		if p.GroundTruth.NumInsts() != p.ISA.NumForms() {
			t.Errorf("%s: mapping covers %d insts, ISA has %d forms",
				p.Name, p.GroundTruth.NumInsts(), p.ISA.NumForms())
		}
		if len(p.Specs) != p.ISA.NumForms() {
			t.Errorf("%s: %d specs for %d forms", p.Name, len(p.Specs), p.ISA.NumForms())
		}
	}
}

func TestMachinesBuild(t *testing.T) {
	for _, p := range All() {
		if _, err := p.Machine(); err != nil {
			t.Errorf("%s: Machine(): %v", p.Name, err)
		}
	}
}

func TestISASizes(t *testing.T) {
	for _, tc := range []struct {
		name string
		want int
	}{{"SKL", 310}, {"ZEN", 310}, {"A72", 390}} {
		p, _ := ByName(tc.name)
		if p.ISA.NumForms() != tc.want {
			t.Errorf("%s ISA has %d forms, want %d", tc.name, p.ISA.NumForms(), tc.want)
		}
	}
}

func TestSKLBitTestQuirk(t *testing.T) {
	// The ground truth documents one µop for BTx but the simulator
	// executes two: the predicted throughput from the documented usage
	// must under-estimate the simulated steady state.
	p := SKL()
	f, ok := p.ISA.FormByName("bt_r64_i8")
	if !ok {
		t.Fatal("bt_r64_i8 not in SKL ISA")
	}
	if got := p.GroundTruth.UopCountOf(f.ID); got != 1 {
		t.Errorf("documented µops = %d, want 1", got)
	}
	if got := len(p.Specs[f.ID].Uops); got != 2 {
		t.Errorf("simulated µops = %d, want 2", got)
	}
}

func TestSKLDividerBlocks(t *testing.T) {
	p := SKL()
	f, ok := p.ISA.FormByName("div_r64_r64")
	if !ok {
		t.Fatal("div_r64_r64 not in SKL ISA")
	}
	spec := p.Specs[f.ID]
	blocking := false
	for _, u := range spec.Uops {
		if u.Block > 1 {
			blocking = true
		}
	}
	if !blocking {
		t.Error("SKL divider spec has no blocking µop")
	}
	// The DIV pseudo-port (index 8) must appear in the ground truth.
	usesDIV := false
	for _, uc := range p.GroundTruth.Decomp[f.ID] {
		if uc.Ports.Has(8) {
			usesDIV = true
		}
	}
	if !usesDIV {
		t.Error("SKL divider ground truth does not use the DIV pseudo-port")
	}
}

func TestZENDoublePumping(t *testing.T) {
	p := ZEN()
	f128, ok := p.ISA.FormByName("vpaddd_v128_v128_v128")
	if !ok {
		t.Fatal("vpaddd_v128_v128_v128 not in ZEN ISA")
	}
	f256, ok := p.ISA.FormByName("vpaddd_v256_v256_v256")
	if !ok {
		t.Fatal("vpaddd_v256_v256_v256 not in ZEN ISA")
	}
	n128 := p.GroundTruth.UopCountOf(f128.ID)
	n256 := p.GroundTruth.UopCountOf(f256.ID)
	if n256 != 2*n128 {
		t.Errorf("256-bit form has %d µops, 128-bit has %d; want double", n256, n128)
	}
	if got := len(p.Specs[f256.ID].Uops); got != 2*len(p.Specs[f128.ID].Uops) {
		t.Errorf("256-bit sim spec has %d µops, 128-bit has %d",
			got, len(p.Specs[f128.ID].Uops))
	}
	// Scalar ALU forms must NOT be double pumped.
	fAdd, ok := p.ISA.FormByName("add_r64_r64")
	if !ok {
		t.Fatal("add_r64_r64 not in ZEN ISA")
	}
	if got := p.GroundTruth.UopCountOf(fAdd.ID); got != 1 {
		t.Errorf("scalar add has %d µops, want 1", got)
	}
}

func TestZENStoreKeepsSingleMemoryUop(t *testing.T) {
	// 256-bit stores double only the vector half, not the AGU µop.
	p := ZEN()
	f, ok := p.ISA.FormByName("vmovdqa_m256_v256")
	if !ok {
		t.Fatal("vmovdqa_m256_v256 not in ZEN ISA")
	}
	agu := portmap.MakePortSet(4, 5)
	aguCount := 0
	for _, uc := range p.GroundTruth.Decomp[f.ID] {
		if uc.Ports == agu {
			aguCount += uc.Count
		}
	}
	if aguCount != 1 {
		t.Errorf("256-bit store has %d AGU µops, want 1", aguCount)
	}
}

func TestA72WeakFrontEnd(t *testing.T) {
	p := A72()
	if p.Config.DispatchWidth >= SKL().Config.DispatchWidth {
		t.Error("A72 dispatch width should be narrower than SKL")
	}
	if p.Config.WindowSize >= SKL().Config.WindowSize {
		t.Error("A72 window should be smaller than SKL")
	}
}

// TestSimulatorTracksModelForSingletons verifies that for individual
// instructions (dependency-free singleton experiments), the simulator's
// steady-state throughput is close to the LP model's prediction under
// the ground-truth mapping. This is the premise of the paper's
// measurement methodology (Figure 6, length 1: low error).
func TestSimulatorTracksModelForSingletons(t *testing.T) {
	for _, p := range All() {
		mach, err := p.Machine()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		checked := 0
		for _, f := range p.ISA.Forms() {
			if f.Class == "div" || f.Class == "fpdiv" || f.Class == "bittest" {
				continue // blocking units and the BTx quirk intentionally deviate
			}
			// Sample sparsely to keep the test fast.
			if f.ID%17 != 0 {
				continue
			}
			e := portmap.Experiment{{Inst: f.ID, Count: 1}}
			want := throughput.OfExperiment(p.GroundTruth, e)

			// Build a dependency-free unrolled body: distinct registers
			// per instance. Using write-only destinations avoids chains.
			unroll := 8
			var body []machineInst
			for i := 0; i < unroll; i++ {
				body = append(body, machineInst{
					spec:   f.ID,
					writes: []int{100 + i},
					reads:  []int{200 + i%4, 300 + i%4},
				})
			}
			got, err := mach.SteadyStateCycles(toMachineInsts(body), 30, 100)
			if err != nil {
				t.Fatalf("%s %s: %v", p.Name, f.Name(), err)
			}
			got /= float64(unroll)
			// Simulated throughput can never beat the optimum and should
			// be within 25% above it for singletons.
			if got < want-0.05 {
				t.Errorf("%s %s: simulated %g below model optimum %g",
					p.Name, f.Name(), got, want)
			}
			if got > want*1.25+0.1 {
				t.Errorf("%s %s: simulated %g far above model %g",
					p.Name, f.Name(), got, want)
			}
			checked++
		}
		if checked < 10 {
			t.Errorf("%s: only %d forms checked", p.Name, checked)
		}
	}
}

// machineInst mirrors machine.Inst to keep the test readable.
type machineInst struct {
	spec   int
	reads  []int
	writes []int
}

func toMachineInsts(in []machineInst) []machine.Inst {
	out := make([]machine.Inst, len(in))
	for i, mi := range in {
		out[i] = machine.Inst{Spec: mi.spec, Reads: mi.reads, Writes: mi.writes}
	}
	return out
}
