// Package uarch defines the ground-truth virtual processors that stand in
// for the paper's physical evaluation machines (Table 1): an Intel
// Skylake-like core (SKL), an AMD Zen+-like core (ZEN), and an ARM
// Cortex-A72-like core (A72).
//
// Each processor couples an instruction set (internal/isa) with a hidden
// ground-truth port mapping, per-instruction simulator specs (latency,
// blocking dividers, quirks), and a machine configuration. The inference
// pipeline never reads the ground truth — it only observes measured
// cycles from the simulator, exactly as the paper only observes wall
// clock time on real hardware.
//
// Deliberate ground-truth/behaviour mismatches reproduce documented
// quirks of the real machines:
//
//   - SKL bit-test instructions (BTx) execute one more µop than their
//     documented port usage implies, reproducing the below-diagonal
//     cluster in Figure 7 (§5.3.1).
//   - SKL and ZEN dividers block their pipe for several cycles,
//     violating the full-pipelining assumption for those instructions
//     (§3.1, assumption 2).
//   - ZEN executes 256-bit vector operations as two double-pumped
//     128-bit µops.
//   - A72 has a narrow front end and small scheduler window, so longer
//     experiments fall short of the optimal-scheduler model (§5.3.2).
package uarch

import (
	"fmt"

	"pmevo/internal/isa"
	"pmevo/internal/machine"
	"pmevo/internal/portmap"
)

// Processor bundles everything the evaluation needs to know about one
// virtual machine.
type Processor struct {
	// Name is the short evaluation name: SKL, ZEN, or A72.
	Name string
	// Table 1 metadata.
	Manufacturer string
	ProcessorStr string
	Microarch    string
	PortsStr     string
	InstrSet     string
	ClockGHz     float64
	RAMGB        int
	// HasPortCounters reports whether the (real) machine exposes
	// per-port performance counters; only SKL does (§5.1.1), which
	// restricts which baseline predictors are available.
	HasPortCounters bool

	// ISA is the instruction form set under test.
	ISA *isa.ISA
	// GroundTruth is the true port mapping. Inference must not read it;
	// it is used only by baseline predictors (uops.info, IACA, llvm-mca)
	// and for evaluation.
	GroundTruth *portmap.Mapping
	// Specs gives the simulator behaviour per instruction form, indexed
	// by form ID. Specs may deviate from GroundTruth where the real
	// hardware deviates from its documentation.
	Specs []machine.InstSpec
	// Config is the simulated core configuration.
	Config machine.Config
	// PortNames names the model ports.
	PortNames []string
}

// Machine builds the cycle-level simulator for the processor.
func (p *Processor) Machine() (*machine.Machine, error) {
	return machine.New(p.Config, p.Specs)
}

// BaselineMachine builds the processor's simulator with both fast paths
// off — steady-state period detection disabled and the event-driven
// fast-forward disabled: the brute-force cycle-by-cycle reference that
// the measurement benchmark and the simulator property tests compare
// against. Results are bit-identical to Machine(); only the simulation
// cost differs.
func (p *Processor) BaselineMachine() (*machine.Machine, error) {
	cfg := p.Config
	cfg.PeriodDetectBudget = machine.PeriodDetectDisabled
	cfg.EventDrivenDisabled = true
	return machine.New(cfg, p.Specs)
}

// classBehaviour describes how one semantic instruction class behaves on
// a processor.
type classBehaviour struct {
	// mapUops is the documented µop decomposition (the ground truth
	// port mapping).
	mapUops []portmap.UopCount
	// simUops overrides the decomposition actually executed by the
	// simulator; nil means "as documented" with Block 1.
	simUops []machine.UopSpec
	// latency is the result latency in cycles (≥ 1).
	latency int
}

// uops is a convenience constructor for mapping decompositions.
func uops(entries ...portmap.UopCount) []portmap.UopCount { return entries }

// u is one mapping µop: n instances executable on the given ports.
func u(n int, ports ...int) portmap.UopCount {
	return portmap.UopCount{Ports: portmap.MakePortSet(ports...), Count: n}
}

// simFromMap derives fully-pipelined simulator µops from a mapping
// decomposition.
func simFromMap(mapUops []portmap.UopCount) []machine.UopSpec {
	var out []machine.UopSpec
	for _, uc := range mapUops {
		for i := 0; i < uc.Count; i++ {
			out = append(out, machine.UopSpec{Ports: uc.Ports, Block: 1})
		}
	}
	return out
}

// build assembles a Processor from per-class behaviours, optional
// per-mnemonic overrides, and an optional per-form transformation (used
// for ZEN's 256-bit double pumping).
func build(p *Processor, behaviours map[string]classBehaviour,
	mnemonicOverrides map[string]classBehaviour,
	transform func(f *isa.Form, b classBehaviour) classBehaviour) (*Processor, error) {

	n := p.ISA.NumForms()
	numPorts := len(p.PortNames)
	gt := portmap.NewMapping(n, numPorts)
	names := make([]string, n)
	specs := make([]machine.InstSpec, n)

	for _, f := range p.ISA.Forms() {
		names[f.ID] = f.Name()
		b, ok := mnemonicOverrides[f.Mnemonic]
		if !ok {
			b, ok = behaviours[f.Class]
			if !ok {
				return nil, fmt.Errorf("uarch: %s: no behaviour for class %q (form %s)",
					p.Name, f.Class, f.Name())
			}
		}
		if transform != nil {
			b = transform(f, b)
		}
		gt.SetDecomp(f.ID, b.mapUops)
		sim := b.simUops
		if sim == nil {
			sim = simFromMap(b.mapUops)
		}
		specs[f.ID] = machine.InstSpec{Uops: sim, Latency: b.latency}
	}

	gt.InstNames = names
	gt.PortNames = p.PortNames
	if err := gt.Validate(); err != nil {
		return nil, fmt.Errorf("uarch: %s ground truth invalid: %v", p.Name, err)
	}
	p.GroundTruth = gt
	p.Specs = specs
	if _, err := machine.New(p.Config, specs); err != nil {
		return nil, fmt.Errorf("uarch: %s simulator specs invalid: %v", p.Name, err)
	}
	return p, nil
}

// All returns the three evaluated processors in Table 1 order.
func All() []*Processor {
	return []*Processor{SKL(), ZEN(), A72()}
}

// ByName returns the processor with the given evaluation name.
func ByName(name string) (*Processor, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("uarch: unknown processor %q (want SKL, ZEN, or A72)", name)
}
