package cachestore

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"pmevo/internal/cachetable"
)

func sampleEntries(n int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		key := uint64(i+1) * 0x9e3779b97f4a7c15
		if key == 0 {
			key = 1
		}
		out[i] = Entry{Key: key, Val: uint64(i) * 3}
	}
	return out
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "cache.pmc")
	want := sampleEntries(1000)
	if err := Save(path, SchemaSimCache, 0xfeed, want); err != nil {
		t.Fatal(err)
	}
	got, reason := Load(path, SchemaSimCache, 0xfeed)
	if reason != "" {
		t.Fatalf("load reason = %q, want success", reason)
	}
	if len(got) != len(want) {
		t.Fatalf("loaded %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.pmc")
	if err := Save(path, SchemaSimCache, 1, sampleEntries(10)); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, SchemaSimCache, 1, sampleEntries(3)); err != nil {
		t.Fatal(err)
	}
	got, reason := Load(path, SchemaSimCache, 1)
	if reason != "" || len(got) != 3 {
		t.Fatalf("after overwrite: %d entries, reason %q", len(got), reason)
	}
	// The temp file must not linger.
	files, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("directory holds %d files, want only the cache file", len(files))
	}
}

func TestSaveBoundsEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.pmc")
	if err := Save(path, SchemaSimCache, 1, sampleEntries(MaxFileEntries+5)); err != nil {
		t.Fatal(err)
	}
	got, reason := Load(path, SchemaSimCache, 1)
	if reason != "" {
		t.Fatalf("load reason = %q", reason)
	}
	if len(got) != MaxFileEntries {
		t.Fatalf("loaded %d entries, want truncation to %d", len(got), MaxFileEntries)
	}
}

// TestLoadDegradesToEmpty is the satellite robustness table: every way a
// cache file can be missing, damaged, or foreign must load as empty with
// a diagnostic — never as an error and never as entries.
func TestLoadDegradesToEmpty(t *testing.T) {
	valid := encode(SchemaSimCache, 0xabc, sampleEntries(16))
	bigEndian := func() []byte {
		// The same logical file written with the wrong byte order: every
		// multi-byte word byte-swapped, checksum recomputed over the
		// swapped image the way a wrong-endianness writer would.
		b := append([]byte(nil), valid[:len(valid)-8]...)
		swap := func(off, n int) {
			for i, j := off, off+n-1; i < j; i, j = i+1, j-1 {
				b[i], b[j] = b[j], b[i]
			}
		}
		swap(8, 4)   // version
		swap(12, 4)  // schema
		swap(16, 8)  // content key
		swap(24, 8)  // count
		for off := headerSize; off < len(b); off += 8 {
			swap(off, 8)
		}
		return binary.BigEndian.AppendUint64(b, checksum(b))
	}()

	cases := []struct {
		name  string
		write func(path string)
	}{
		{"missing file", func(path string) {}},
		{"empty file", func(path string) { os.WriteFile(path, nil, 0o644) }},
		{"short header", func(path string) { os.WriteFile(path, valid[:headerSize-3], 0o644) }},
		{"truncated payload", func(path string) { os.WriteFile(path, valid[:len(valid)-20], 0o644) }},
		{"trailing garbage", func(path string) { os.WriteFile(path, append(append([]byte(nil), valid...), 1, 2, 3), 0o644) }},
		{"bad magic", func(path string) {
			b := append([]byte(nil), valid...)
			b[0] ^= 0xff
			os.WriteFile(path, b, 0o644)
		}},
		{"bit flip in payload", func(path string) {
			b := append([]byte(nil), valid...)
			b[headerSize+7] ^= 0x10
			os.WriteFile(path, b, 0o644)
		}},
		{"bit flip in count", func(path string) {
			b := append([]byte(nil), valid...)
			b[24] ^= 0x01
			os.WriteFile(path, b, 0o644)
		}},
		{"wrong format version", func(path string) {
			b := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint32(b[8:12], formatVersion+1)
			// A future writer would checksum its own image consistently.
			binary.LittleEndian.PutUint64(b[len(b)-8:], checksum(b[:len(b)-8]))
			os.WriteFile(path, b, 0o644)
		}},
		{"wrong endianness", func(path string) { os.WriteFile(path, bigEndian, 0o644) }},
		{"huge entry count", func(path string) {
			b := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint64(b[24:32], MaxFileEntries+1)
			binary.LittleEndian.PutUint64(b[len(b)-8:], checksum(b[:len(b)-8]))
			os.WriteFile(path, b, 0o644)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "cache.pmc")
			c.write(path)
			entries, reason := Load(path, SchemaSimCache, 0xabc)
			if len(entries) != 0 {
				t.Fatalf("loaded %d entries from damaged file", len(entries))
			}
			if reason == "" {
				t.Fatal("damaged file loaded without a diagnostic reason")
			}
		})
	}
}

// TestLoadRejectsMismatchedIdentity: a structurally valid file written
// by another consumer or against other inputs must read as empty.
func TestLoadRejectsMismatchedIdentity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.pmc")
	if err := Save(path, SchemaSimCache, 0xabc, sampleEntries(4)); err != nil {
		t.Fatal(err)
	}
	if entries, reason := Load(path, SchemaFitnessMemo, 0xabc); len(entries) != 0 || reason == "" {
		t.Fatalf("wrong schema: %d entries, reason %q", len(entries), reason)
	}
	if entries, reason := Load(path, SchemaSimCache, 0xdef); len(entries) != 0 || reason == "" {
		t.Fatalf("wrong content key: %d entries, reason %q", len(entries), reason)
	}
}

func TestTableRoundTrip(t *testing.T) {
	src := cachetable.New(1 << 10)
	for _, e := range sampleEntries(200) {
		src.Put(e.Key, e.Val)
	}
	path := filepath.Join(t.TempDir(), "cache.pmc")
	if err := SaveTable(path, SchemaFitnessMemo, 7, src); err != nil {
		t.Fatal(err)
	}
	dst := cachetable.New(1 << 10)
	n, reason := LoadTable(path, SchemaFitnessMemo, 7, dst)
	if reason != "" || n == 0 {
		t.Fatalf("LoadTable = %d, %q", n, reason)
	}
	for _, e := range src.Snapshot() {
		if v, ok := dst.Get(e.Key); !ok || v != e.Val {
			t.Fatalf("reloaded table misses {%#x, %d}", e.Key, e.Val)
		}
	}
}
