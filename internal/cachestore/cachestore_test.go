package cachestore

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"pmevo/internal/cachetable"
	"pmevo/internal/faultfs"
)

func sampleEntries(n int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		key := uint64(i+1) * 0x9e3779b97f4a7c15
		if key == 0 {
			key = 1
		}
		out[i] = Entry{Key: key, Val: uint64(i) * 3}
	}
	return out
}

// encodeEntries rebuilds the exact file image Save would write, for
// tests that damage it surgically.
func encodeEntries(schema uint32, contentKey uint64, entries []Entry) []byte {
	payload := make([]byte, 0, len(entries)*16)
	for _, e := range entries {
		payload = binary.LittleEndian.AppendUint64(payload, e.Key)
		payload = binary.LittleEndian.AppendUint64(payload, e.Val)
	}
	return encodeFrame(schema, contentKey, uint64(len(entries)), payload)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "cache.pmc")
	want := sampleEntries(1000)
	if err := Save(path, SchemaSimCache, 0xfeed, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, SchemaSimCache, 0xfeed)
	if err != nil {
		t.Fatalf("load error = %v, want success", err)
	}
	if len(got) != len(want) {
		t.Fatalf("loaded %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.pmc")
	if err := Save(path, SchemaSimCache, 1, sampleEntries(10)); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, SchemaSimCache, 1, sampleEntries(3)); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, SchemaSimCache, 1)
	if err != nil || len(got) != 3 {
		t.Fatalf("after overwrite: %d entries, err %v", len(got), err)
	}
	// The temp file must not linger.
	files, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("directory holds %d files, want only the cache file", len(files))
	}
}

func TestSaveBoundsEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.pmc")
	if err := Save(path, SchemaSimCache, 1, sampleEntries(MaxFileEntries+5)); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, SchemaSimCache, 1)
	if err != nil {
		t.Fatalf("load error = %v", err)
	}
	if len(got) != MaxFileEntries {
		t.Fatalf("loaded %d entries, want truncation to %d", len(got), MaxFileEntries)
	}
}

// TestLoadDegradesToEmpty is the satellite robustness table: every way a
// cache file can be missing, damaged, or foreign must load as empty with
// the matching typed sentinel — never as a hard failure and never as
// entries.
func TestLoadDegradesToEmpty(t *testing.T) {
	valid := encodeEntries(SchemaSimCache, 0xabc, sampleEntries(16))
	bigEndian := func() []byte {
		// The same logical file written with the wrong byte order: every
		// multi-byte word byte-swapped, checksum recomputed over the
		// swapped image the way a wrong-endianness writer would.
		b := append([]byte(nil), valid[:len(valid)-8]...)
		swap := func(off, n int) {
			for i, j := off, off+n-1; i < j; i, j = i+1, j-1 {
				b[i], b[j] = b[j], b[i]
			}
		}
		swap(8, 4)  // version
		swap(12, 4) // schema
		swap(16, 8) // content key
		swap(24, 8) // count
		for off := headerSize; off < len(b); off += 8 {
			swap(off, 8)
		}
		return binary.BigEndian.AppendUint64(b, checksum(b))
	}()

	cases := []struct {
		name  string
		want  error
		write func(path string)
	}{
		{"missing file", ErrMissing, func(path string) {}},
		{"empty file", ErrTruncated, func(path string) { os.WriteFile(path, nil, 0o644) }},
		{"short header", ErrTruncated, func(path string) { os.WriteFile(path, valid[:headerSize-3], 0o644) }},
		{"truncated payload", ErrChecksum, func(path string) { os.WriteFile(path, valid[:len(valid)-20], 0o644) }},
		{"trailing garbage", ErrChecksum, func(path string) { os.WriteFile(path, append(append([]byte(nil), valid...), 1, 2, 3), 0o644) }},
		{"bad magic", ErrMagic, func(path string) {
			b := append([]byte(nil), valid...)
			b[0] ^= 0xff
			os.WriteFile(path, b, 0o644)
		}},
		{"bit flip in payload", ErrChecksum, func(path string) {
			b := append([]byte(nil), valid...)
			b[headerSize+7] ^= 0x10
			os.WriteFile(path, b, 0o644)
		}},
		{"bit flip in count", ErrChecksum, func(path string) {
			b := append([]byte(nil), valid...)
			b[24] ^= 0x01
			os.WriteFile(path, b, 0o644)
		}},
		{"wrong format version", ErrVersion, func(path string) {
			b := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint32(b[8:12], formatVersion+1)
			// A future writer would checksum its own image consistently.
			binary.LittleEndian.PutUint64(b[len(b)-8:], checksum(b[:len(b)-8]))
			os.WriteFile(path, b, 0o644)
		}},
		{"wrong endianness", ErrVersion, func(path string) { os.WriteFile(path, bigEndian, 0o644) }},
		{"huge entry count", ErrTooLarge, func(path string) {
			b := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint64(b[24:32], MaxFileEntries+1)
			binary.LittleEndian.PutUint64(b[len(b)-8:], checksum(b[:len(b)-8]))
			os.WriteFile(path, b, 0o644)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "cache.pmc")
			c.write(path)
			entries, err := Load(path, SchemaSimCache, 0xabc)
			if len(entries) != 0 {
				t.Fatalf("loaded %d entries from damaged file", len(entries))
			}
			if err == nil {
				t.Fatal("damaged file loaded without a diagnostic")
			}
			if !errors.Is(err, c.want) {
				t.Fatalf("diagnostic = %v, want sentinel %v", err, c.want)
			}
		})
	}
}

// allSchemas pins the full schema registry. The cachekey analyzer
// (internal/analysis) statically proves each constant has matched
// Save/Load call sites and appears in a test; this table is the
// runtime half — each schema's spills must degrade safely when
// damaged, not just SchemaSimCache's.
var allSchemas = []struct {
	name   string
	schema uint32
}{
	{"SchemaSimCache", SchemaSimCache},
	{"SchemaFitnessMemo", SchemaFitnessMemo},
	{"SchemaPeriodHints", SchemaPeriodHints},
	{"SchemaEvoCheckpoint", SchemaEvoCheckpoint},
	{"SchemaFitnessCache", SchemaFitnessCache},
}

func TestDamageMatrixCoversEverySchema(t *testing.T) {
	for _, s := range allSchemas {
		t.Run(s.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "cache.pmc")
			want := sampleEntries(8)
			if err := Save(path, s.schema, 0x51, want); err != nil {
				t.Fatal(err)
			}
			got, err := Load(path, s.schema, 0x51)
			if err != nil || len(got) != len(want) {
				t.Fatalf("round trip: %d entries, err %v", len(got), err)
			}
			// A payload bit flip must degrade to a checksum sentinel.
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[headerSize] ^= 0x04
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			if entries, err := Load(path, s.schema, 0x51); len(entries) != 0 || !errors.Is(err, ErrChecksum) {
				t.Fatalf("bit flip: %d entries, err %v, want ErrChecksum", len(entries), err)
			}
			// A reader expecting any other schema must reject the file.
			if err := Save(path, s.schema, 0x51, want); err != nil {
				t.Fatal(err)
			}
			for _, other := range allSchemas {
				if other.schema == s.schema {
					continue
				}
				if entries, err := Load(path, other.schema, 0x51); len(entries) != 0 || !errors.Is(err, ErrSchema) {
					t.Fatalf("read as %s: %d entries, err %v, want ErrSchema", other.name, len(entries), err)
				}
			}
		})
	}
}

// TestLoadRejectsMismatchedIdentity: a structurally valid file written
// by another consumer or against other inputs must read as empty.
func TestLoadRejectsMismatchedIdentity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.pmc")
	if err := Save(path, SchemaSimCache, 0xabc, sampleEntries(4)); err != nil {
		t.Fatal(err)
	}
	if entries, err := Load(path, SchemaFitnessMemo, 0xabc); len(entries) != 0 || !errors.Is(err, ErrSchema) {
		t.Fatalf("wrong schema: %d entries, err %v", len(entries), err)
	}
	if entries, err := Load(path, SchemaSimCache, 0xdef); len(entries) != 0 || !errors.Is(err, ErrContentKey) {
		t.Fatalf("wrong content key: %d entries, err %v", len(entries), err)
	}
}

func TestTableRoundTrip(t *testing.T) {
	src := cachetable.New(1 << 10)
	for _, e := range sampleEntries(200) {
		src.Put(e.Key, e.Val)
	}
	path := filepath.Join(t.TempDir(), "cache.pmc")
	if err := SaveTable(path, SchemaFitnessMemo, 7, src); err != nil {
		t.Fatal(err)
	}
	dst := cachetable.New(1 << 10)
	n, err := LoadTable(path, SchemaFitnessMemo, 7, dst)
	if err != nil || n == 0 {
		t.Fatalf("LoadTable = %d, %v", n, err)
	}
	for _, e := range src.Snapshot() {
		if v, ok := dst.Get(e.Key); !ok || v != e.Val {
			t.Fatalf("reloaded table misses {%#x, %d}", e.Key, e.Val)
		}
	}
}

func TestBlobRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.pmc")
	want := []byte("checkpoint payload \x00\x01\x02 with binary bytes")
	if err := SaveBlob(path, SchemaEvoCheckpoint, 0x1234, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBlob(path, SchemaEvoCheckpoint, 0x1234)
	if err != nil {
		t.Fatalf("LoadBlob error = %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("blob = %q, want %q", got, want)
	}
	// Identity mismatches degrade exactly like entry files.
	if _, err := LoadBlob(path, SchemaFitnessCache, 0x1234); !errors.Is(err, ErrSchema) {
		t.Fatalf("wrong schema: %v", err)
	}
	if _, err := LoadBlob(path, SchemaEvoCheckpoint, 0x9999); !errors.Is(err, ErrContentKey) {
		t.Fatalf("wrong content key: %v", err)
	}
	// Blob and entry readers must not cross-read each other's files.
	if _, err := Load(path, SchemaEvoCheckpoint, 0x1234); err == nil {
		t.Fatal("entry Load accepted a blob file")
	}
}

func TestBlobEmptyAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.pmc")
	if err := SaveBlob(empty, SchemaEvoCheckpoint, 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBlob(empty, SchemaEvoCheckpoint, 1); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty blob: %v, want ErrEmpty", err)
	}
	torn := filepath.Join(dir, "torn.pmc")
	if err := SaveBlob(torn, SchemaEvoCheckpoint, 1, []byte("payload bytes here")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBlob(torn, SchemaEvoCheckpoint, 1); !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrTruncated) {
		t.Fatalf("torn blob: %v, want checksum/truncation sentinel", err)
	}
}

// TestFaultInjectionMatrix drives the atomic write path through the
// faultfs seam: a crash between temp write and rename, a torn write
// that still lands, and ENOSPC. After every fault, the reader must see
// either the last good file or a typed cold-start diagnostic — never
// stale temp litter under the final name, never a misread.
func TestFaultInjectionMatrix(t *testing.T) {
	good := sampleEntries(32)
	newer := sampleEntries(64)

	loadIsGood := func(t *testing.T, path string) {
		t.Helper()
		got, err := Load(path, SchemaSimCache, 7)
		if err != nil {
			t.Fatalf("last-good file unreadable after fault: %v", err)
		}
		if len(got) != len(good) {
			t.Fatalf("loaded %d entries, want last-good %d", len(got), len(good))
		}
		for i := range good {
			if got[i] != good[i] {
				t.Fatalf("entry %d = %+v, want %+v", i, got[i], good[i])
			}
		}
	}

	t.Run("crash between write and rename keeps last good", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "cache.pmc")
		if err := Save(path, SchemaSimCache, 7, good); err != nil {
			t.Fatal(err)
		}
		restore := faultfs.Set(&faultfs.Hooks{
			BeforeRename: func(oldpath, newpath string) error {
				return errors.New("simulated crash before rename")
			},
		})
		err := Save(path, SchemaSimCache, 7, newer)
		restore()
		if err == nil {
			t.Fatal("Save succeeded through a simulated pre-rename crash")
		}
		loadIsGood(t, path)
	})

	t.Run("orphaned temp file does not confuse later runs", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "cache.pmc")
		if err := Save(path, SchemaSimCache, 7, good); err != nil {
			t.Fatal(err)
		}
		// Simulate the residue of a hard kill: a stray temp file the
		// deferred cleanup never removed.
		stray := filepath.Join(filepath.Dir(path), ".cachestore-stray.tmp")
		if err := os.WriteFile(stray, []byte("partial garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		loadIsGood(t, path)
		if err := Save(path, SchemaSimCache, 7, good); err != nil {
			t.Fatalf("Save with stray temp present: %v", err)
		}
		loadIsGood(t, path)
	})

	t.Run("torn write that renames degrades to cold start", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "cache.pmc")
		if err := Save(path, SchemaSimCache, 7, good); err != nil {
			t.Fatal(err)
		}
		restore := faultfs.Set(&faultfs.Hooks{
			BeforeWrite: func(p string, data []byte) ([]byte, error) {
				return data[:len(data)/2], nil // torn mid-payload
			},
		})
		err := Save(path, SchemaSimCache, 7, newer)
		restore()
		if err != nil {
			t.Fatalf("a torn write is silent by definition, got %v", err)
		}
		entries, err := Load(path, SchemaSimCache, 7)
		if len(entries) != 0 {
			t.Fatalf("read %d entries from a torn file", len(entries))
		}
		if !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("torn file diagnostic = %v, want checksum/truncation", err)
		}
	})

	t.Run("ENOSPC keeps last good", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "cache.pmc")
		if err := Save(path, SchemaSimCache, 7, good); err != nil {
			t.Fatal(err)
		}
		restore := faultfs.Set(&faultfs.Hooks{
			BeforeWrite: func(p string, data []byte) ([]byte, error) {
				return nil, syscall.ENOSPC
			},
		})
		err := Save(path, SchemaSimCache, 7, newer)
		restore()
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("Save error = %v, want ENOSPC surfaced", err)
		}
		loadIsGood(t, path)
	})

	t.Run("blob path shares the same guarantees", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "ckpt.pmc")
		goodBlob := []byte("last good checkpoint")
		if err := SaveBlob(path, SchemaEvoCheckpoint, 3, goodBlob); err != nil {
			t.Fatal(err)
		}
		restore := faultfs.Set(&faultfs.Hooks{
			BeforeRename: func(oldpath, newpath string) error {
				return errors.New("simulated crash before rename")
			},
		})
		err := SaveBlob(path, SchemaEvoCheckpoint, 3, []byte("newer checkpoint"))
		restore()
		if err == nil {
			t.Fatal("SaveBlob succeeded through a simulated pre-rename crash")
		}
		got, err := LoadBlob(path, SchemaEvoCheckpoint, 3)
		if err != nil || string(got) != string(goodBlob) {
			t.Fatalf("after fault: blob %q, err %v; want last-good", got, err)
		}
	})
}
