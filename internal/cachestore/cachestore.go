// Package cachestore persists cachetable.Table contents between
// processes: a versioned, checksummed, bounded, atomically-written
// on-disk spill format. It is the warm-start layer under the
// measurement harness's kernel-simulation cache and the engine's
// throughput memo — repeated inference on the same ISA reloads pure,
// expensively derived values (noiseless steady-state cycles,
// per-experiment bottleneck throughputs) instead of re-deriving them —
// and, since PR 8, the container for evolution checkpoints (opaque
// blobs under the same framing).
//
// The store is safe by construction:
//
//   - Load never fails into a result path. A missing, truncated,
//     bit-flipped, version-mismatched, or foreign file yields no
//     entries plus a typed sentinel error (ErrMissing, ErrChecksum,
//     ...) — the consumer inspects it with errors.Is for logging and
//     simply cold-starts. Cached values are pure functions of their
//     keys, so a loaded entry can change timing but never results.
//   - Files carry a format version, a consumer schema tag, and a
//     caller-supplied content key (e.g. the fingerprint of the
//     experiment set a memo was built against); any mismatch reads as
//     empty. Consumers whose keys are already self-versioning (the
//     kernel cache hashes the machine fingerprint into every key) use a
//     fixed content key.
//   - A whole-file checksum (seeded FNV-1a over header and payload)
//     rejects truncation and corruption, including byte-order damage:
//     the encoding is fixed little-endian, and a file written with the
//     wrong byte order fails the checksum.
//   - Save writes a temp file in the target directory and renames it
//     into place, so a crashed or concurrent writer never leaves a
//     partially-written file under the final name. The write and the
//     rename go through internal/faultfs, the fault-injection seam the
//     tests use to simulate crash-between-write-and-rename, torn
//     writes, and ENOSPC.
//   - Size is bounded: Save truncates to MaxFileEntries and Load
//     refuses counts beyond it, so a corrupt count cannot drive a huge
//     allocation. Reloading into a bounded table keeps the existing
//     overwrite-on-collision semantics — excess entries only cost
//     recomputation.
package cachestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"pmevo/internal/cachetable"
	"pmevo/internal/faultfs"
)

// Schema tags identify the consumer that wrote a file; a file is only
// ever loaded by the schema that wrote it.
const (
	SchemaSimCache      uint32 = 1 // measure: kernel-simulation cache
	SchemaFitnessMemo   uint32 = 2 // engine: per-experiment throughput memo
	SchemaPeriodHints   uint32 = 3 // measure: per-body steady-state period hints
	SchemaEvoCheckpoint uint32 = 4 // evo: checkpoint blob (populations, RNG, counters)
	SchemaFitnessCache  uint32 = 5 // engine: cross-generation fitness cache
)

// Typed load diagnostics. Load and LoadBlob return exactly one of
// these (wrapped with detail via %w) whenever they yield no data; the
// degrade-to-cold contract is unchanged — these errors exist so callers
// can log or branch with errors.Is instead of matching strings, never
// so they can fail a run.
var (
	// ErrMissing: no file at the path (a plain cold start).
	ErrMissing = errors.New("no cache file")
	// ErrUnreadable: the file exists but could not be read.
	ErrUnreadable = errors.New("unreadable cache file")
	// ErrTruncated: fewer bytes than the header or the declared payload.
	ErrTruncated = errors.New("truncated cache file")
	// ErrMagic: not a cachestore file at all.
	ErrMagic = errors.New("not a cachestore file")
	// ErrVersion: written by an incompatible format version.
	ErrVersion = errors.New("cache format version mismatch")
	// ErrSchema: written by a different consumer.
	ErrSchema = errors.New("cache schema mismatch")
	// ErrContentKey: built against different inputs.
	ErrContentKey = errors.New("cache content key mismatch")
	// ErrTooLarge: declared size exceeds the store's bound.
	ErrTooLarge = errors.New("cache file exceeds size bound")
	// ErrChecksum: integrity check failed (corruption or torn write).
	ErrChecksum = errors.New("cache checksum mismatch")
	// ErrEmpty: a valid file with nothing in it (a spill taken before
	// anything was cached) — still a cold start, but a benign one.
	ErrEmpty = errors.New("empty cache file")
)

// formatVersion is bumped on any incompatible layout change; old files
// then load as empty (a cold start, never a misread).
const formatVersion uint32 = 1

// MaxFileEntries bounds both what Save writes and what Load accepts:
// 2^20 entries × 16 bytes = 16 MiB, comfortably above every bounded
// in-memory table (the kernel cache has 2^16 slots, the memo ceiling is
// 2^20).
const MaxFileEntries = 1 << 20

// MaxBlobBytes bounds blob payloads (SaveBlob/LoadBlob) the same way
// MaxFileEntries bounds entry files: 16 MiB, far above any real
// checkpoint, small enough that a corrupt length cannot drive a huge
// allocation.
const MaxBlobBytes = 1 << 24

// magic identifies a cachestore file. The trailing byte doubles as a
// little-endian marker: the header words that follow are fixed
// little-endian, and the checksum covers their encoded bytes.
var magic = [8]byte{'P', 'M', 'E', 'V', 'O', 'C', 'S', 1}

const headerSize = 8 + 4 + 4 + 8 + 8 // magic, version, schema, contentKey, count

// Entry is one live key/value pair, shared with the in-memory table's
// snapshot/load API so consumers spill and reload without conversion.
type Entry = cachetable.Entry

// checksum is a seeded 64-bit FNV-1a over the encoded bytes. It guards
// integrity, not authenticity; its job is to make truncated, bit-flipped,
// or byte-swapped files read as empty.
func checksum(bs ...[]byte) uint64 {
	const offset, prime = 0xcbf29ce484222325, 0x100000001b3
	h := uint64(offset)
	for _, b := range bs {
		for _, c := range b {
			h ^= uint64(c)
			h *= prime
		}
	}
	return h
}

// encodeFrame renders a file image: header (with count in the count
// slot), payload bytes, trailing checksum.
func encodeFrame(schema uint32, contentKey uint64, count uint64, payload []byte) []byte {
	buf := make([]byte, 0, headerSize+len(payload)+8)
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, formatVersion)
	buf = binary.LittleEndian.AppendUint32(buf, schema)
	buf = binary.LittleEndian.AppendUint64(buf, contentKey)
	buf = binary.LittleEndian.AppendUint64(buf, count)
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint64(buf, checksum(buf))
	return buf
}

// writeAtomic lands image at path via temp-file+rename, routing the
// fallible steps through faultfs so tests can inject crashes.
func writeAtomic(path string, image []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".cachestore-*.tmp")
	if err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if err := faultfs.WriteFile(tmp, tmp.Name(), image); err != nil {
		tmp.Close()
		return fmt.Errorf("cachestore: write %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cachestore: close %s: %w", tmp.Name(), err)
	}
	if err := faultfs.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	return nil
}

// readFrame reads and validates the file at path against (schema,
// contentKey), returning the count word and the raw payload bytes.
// Every failure maps to exactly one typed sentinel.
func readFrame(path string, schema uint32, contentKey uint64) (count uint64, payload []byte, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil, ErrMissing
		}
		return 0, nil, fmt.Errorf("%w: %w", ErrUnreadable, err)
	}
	if len(data) < headerSize+8 {
		return 0, nil, fmt.Errorf("%w (short header: %d bytes)", ErrTruncated, len(data))
	}
	if [8]byte(data[:8]) != magic {
		return 0, nil, fmt.Errorf("%w (bad magic)", ErrMagic)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != formatVersion {
		return 0, nil, fmt.Errorf("%w (format version %d, want %d)", ErrVersion, v, formatVersion)
	}
	if s := binary.LittleEndian.Uint32(data[12:16]); s != schema {
		return 0, nil, fmt.Errorf("%w (schema %d, want %d)", ErrSchema, s, schema)
	}
	if ck := binary.LittleEndian.Uint64(data[16:24]); ck != contentKey {
		return 0, nil, fmt.Errorf("%w (cache built against different inputs)", ErrContentKey)
	}
	count = binary.LittleEndian.Uint64(data[24:32])
	payloadLen := len(data) - headerSize - 8
	body, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	if checksum(body) != sum {
		return 0, nil, fmt.Errorf("%w (corrupt cache file)", ErrChecksum)
	}
	return count, data[headerSize : headerSize+payloadLen], nil
}

// Save atomically writes the entries for (schema, contentKey) to path,
// creating parent directories as needed. Entry lists beyond
// MaxFileEntries are truncated — the store is a bounded cache, and a
// dropped entry only costs recomputation. The write goes to a temp file
// in the destination directory followed by a rename, so readers and
// crashed writers never observe a partial file.
func Save(path string, schema uint32, contentKey uint64, entries []Entry) error {
	if len(entries) > MaxFileEntries {
		entries = entries[:MaxFileEntries]
	}
	payload := make([]byte, 0, len(entries)*16)
	for _, e := range entries {
		payload = binary.LittleEndian.AppendUint64(payload, e.Key)
		payload = binary.LittleEndian.AppendUint64(payload, e.Val)
	}
	return writeAtomic(path, encodeFrame(schema, contentKey, uint64(len(entries)), payload))
}

// Load reads the entries stored at path for (schema, contentKey). Any
// problem — missing file, truncation, corruption, format/schema/content
// mismatch — yields a nil entry list and a typed diagnostic error (see
// the Err* sentinels), and the consumer cold-starts; the error is for
// logging and errors.Is branching, never for failing a run. A nil
// error means the file was read successfully and carried at least one
// entry.
func Load(path string, schema uint32, contentKey uint64) ([]Entry, error) {
	count, payload, err := readFrame(path, schema, contentKey)
	if err != nil {
		return nil, err
	}
	if count > MaxFileEntries {
		return nil, fmt.Errorf("%w (entry count %d exceeds bound %d)", ErrTooLarge, count, MaxFileEntries)
	}
	if uint64(len(payload)) != count*16 {
		return nil, fmt.Errorf("%w (%d payload bytes, want %d)", ErrTruncated, len(payload), count*16)
	}
	entries := make([]Entry, 0, count)
	for i := 0; i < int(count); i++ {
		off := i * 16
		e := Entry{
			Key: binary.LittleEndian.Uint64(payload[off : off+8]),
			Val: binary.LittleEndian.Uint64(payload[off+8 : off+16]),
		}
		if e.Key == 0 {
			continue // never stored by Save; skip rather than poison a table
		}
		entries = append(entries, e)
	}
	if len(entries) == 0 {
		// Valid but empty (a spill taken before anything was cached):
		// give callers that log empty loads a real diagnostic.
		return nil, ErrEmpty
	}
	return entries, nil
}

// SaveBlob atomically writes an opaque payload (e.g. an evolution
// checkpoint) under the same framing, integrity checks, and atomic
// write path as entry files. Payloads beyond MaxBlobBytes are rejected
// rather than truncated — unlike cache entries, a blob is not
// droppable-by-parts.
func SaveBlob(path string, schema uint32, contentKey uint64, payload []byte) error {
	if len(payload) > MaxBlobBytes {
		return fmt.Errorf("cachestore: blob %d bytes exceeds bound %d", len(payload), MaxBlobBytes)
	}
	return writeAtomic(path, encodeFrame(schema, contentKey, uint64(len(payload)), payload))
}

// LoadBlob reads a blob written by SaveBlob, with the same
// degrade-to-cold error contract as Load: a typed sentinel diagnostic
// and a nil payload on any mismatch or damage. A zero-length blob
// yields ErrEmpty.
func LoadBlob(path string, schema uint32, contentKey uint64) ([]byte, error) {
	count, payload, err := readFrame(path, schema, contentKey)
	if err != nil {
		return nil, err
	}
	if count > MaxBlobBytes {
		return nil, fmt.Errorf("%w (blob length %d exceeds bound %d)", ErrTooLarge, count, MaxBlobBytes)
	}
	if uint64(len(payload)) != count {
		return nil, fmt.Errorf("%w (%d payload bytes, want %d)", ErrTruncated, len(payload), count)
	}
	if count == 0 {
		return nil, ErrEmpty
	}
	out := make([]byte, count)
	copy(out, payload)
	return out, nil
}

// SaveTable spills a table's live entries. The snapshot must not race
// with writers (see cachetable.Snapshot); consumers call this at exit
// or between benchmark phases.
func SaveTable(path string, schema uint32, contentKey uint64, t *cachetable.Table) error {
	return Save(path, schema, contentKey, t.Snapshot())
}

// LoadTable reloads a spilled file into a table, returning the number
// of entries stored and the empty-load diagnostic (see Load). Entries
// land with overwrite-on-collision semantics, so the table's bound
// holds regardless of the file's size.
func LoadTable(path string, schema uint32, contentKey uint64, t *cachetable.Table) (int, error) {
	entries, err := Load(path, schema, contentKey)
	return t.LoadEntries(entries), err
}
