// Package cachestore persists cachetable.Table contents between
// processes: a versioned, checksummed, bounded, atomically-written
// on-disk spill format. It is the warm-start layer under the
// measurement harness's kernel-simulation cache and the engine's
// throughput memo — repeated inference on the same ISA reloads pure,
// expensively derived values (noiseless steady-state cycles,
// per-experiment bottleneck throughputs) instead of re-deriving them.
//
// The store is safe by construction:
//
//   - Load never fails into a result path. A missing, truncated,
//     bit-flipped, version-mismatched, or foreign file yields an empty
//     entry list (plus a diagnostic reason) — the consumer simply
//     cold-starts. Cached values are pure functions of their keys, so a
//     loaded entry can change timing but never results.
//   - Files carry a format version, a consumer schema tag, and a
//     caller-supplied content key (e.g. the fingerprint of the
//     experiment set a memo was built against); any mismatch reads as
//     empty. Consumers whose keys are already self-versioning (the
//     kernel cache hashes the machine fingerprint into every key) use a
//     fixed content key.
//   - A whole-file checksum (seeded FNV-1a over header and payload)
//     rejects truncation and corruption, including byte-order damage:
//     the encoding is fixed little-endian, and a file written with the
//     wrong byte order fails the checksum.
//   - Save writes a temp file in the target directory and renames it
//     into place, so a crashed or concurrent writer never leaves a
//     partially-written file under the final name.
//   - Size is bounded: Save truncates to MaxFileEntries and Load
//     refuses counts beyond it, so a corrupt count cannot drive a huge
//     allocation. Reloading into a bounded table keeps the existing
//     overwrite-on-collision semantics — excess entries only cost
//     recomputation.
package cachestore

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"pmevo/internal/cachetable"
)

// Schema tags identify the consumer that wrote a file; a file is only
// ever loaded by the schema that wrote it.
const (
	SchemaSimCache    uint32 = 1 // measure: kernel-simulation cache
	SchemaFitnessMemo uint32 = 2 // engine: per-experiment throughput memo
	SchemaPeriodHints uint32 = 3 // measure: per-body steady-state period hints
)

// formatVersion is bumped on any incompatible layout change; old files
// then load as empty (a cold start, never a misread).
const formatVersion uint32 = 1

// MaxFileEntries bounds both what Save writes and what Load accepts:
// 2^20 entries × 16 bytes = 16 MiB, comfortably above every bounded
// in-memory table (the kernel cache has 2^16 slots, the memo ceiling is
// 2^20).
const MaxFileEntries = 1 << 20

// magic identifies a cachestore file. The trailing byte doubles as a
// little-endian marker: the header words that follow are fixed
// little-endian, and the checksum covers their encoded bytes.
var magic = [8]byte{'P', 'M', 'E', 'V', 'O', 'C', 'S', 1}

const headerSize = 8 + 4 + 4 + 8 + 8 // magic, version, schema, contentKey, count

// Entry is one live key/value pair, shared with the in-memory table's
// snapshot/load API so consumers spill and reload without conversion.
type Entry = cachetable.Entry

// checksum is a seeded 64-bit FNV-1a over the encoded bytes. It guards
// integrity, not authenticity; its job is to make truncated, bit-flipped,
// or byte-swapped files read as empty.
func checksum(bs ...[]byte) uint64 {
	const offset, prime = 0xcbf29ce484222325, 0x100000001b3
	h := uint64(offset)
	for _, b := range bs {
		for _, c := range b {
			h ^= uint64(c)
			h *= prime
		}
	}
	return h
}

// encode renders the file image: header, entries, trailing checksum.
func encode(schema uint32, contentKey uint64, entries []Entry) []byte {
	buf := make([]byte, 0, headerSize+len(entries)*16+8)
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, formatVersion)
	buf = binary.LittleEndian.AppendUint32(buf, schema)
	buf = binary.LittleEndian.AppendUint64(buf, contentKey)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = binary.LittleEndian.AppendUint64(buf, e.Key)
		buf = binary.LittleEndian.AppendUint64(buf, e.Val)
	}
	buf = binary.LittleEndian.AppendUint64(buf, checksum(buf))
	return buf
}

// Save atomically writes the entries for (schema, contentKey) to path,
// creating parent directories as needed. Entry lists beyond
// MaxFileEntries are truncated — the store is a bounded cache, and a
// dropped entry only costs recomputation. The write goes to a temp file
// in the destination directory followed by a rename, so readers and
// crashed writers never observe a partial file.
func Save(path string, schema uint32, contentKey uint64, entries []Entry) error {
	if len(entries) > MaxFileEntries {
		entries = entries[:MaxFileEntries]
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".cachestore-*.tmp")
	if err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(encode(schema, contentKey, entries)); err != nil {
		tmp.Close()
		return fmt.Errorf("cachestore: write %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cachestore: close %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	return nil
}

// Load reads the entries stored at path for (schema, contentKey). It
// never returns an error: any problem — missing file, truncation,
// corruption, format/schema/content mismatch — yields a nil entry list
// and a non-empty diagnostic reason, and the consumer cold-starts. An
// empty reason means the file was read successfully (possibly with zero
// entries).
func Load(path string, schema uint32, contentKey uint64) (entries []Entry, reason string) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, "no cache file"
		}
		return nil, fmt.Sprintf("unreadable cache file: %v", err)
	}
	if len(data) < headerSize+8 {
		return nil, "truncated cache file (short header)"
	}
	if [8]byte(data[:8]) != magic {
		return nil, "not a cachestore file (bad magic)"
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != formatVersion {
		return nil, fmt.Sprintf("format version %d, want %d", v, formatVersion)
	}
	if s := binary.LittleEndian.Uint32(data[12:16]); s != schema {
		return nil, fmt.Sprintf("schema %d, want %d", s, schema)
	}
	if ck := binary.LittleEndian.Uint64(data[16:24]); ck != contentKey {
		return nil, "content key mismatch (cache built against different inputs)"
	}
	count := binary.LittleEndian.Uint64(data[24:32])
	if count > MaxFileEntries {
		return nil, fmt.Sprintf("entry count %d exceeds bound %d", count, MaxFileEntries)
	}
	want := headerSize + int(count)*16 + 8
	if len(data) != want {
		return nil, fmt.Sprintf("truncated cache file (%d bytes, want %d)", len(data), want)
	}
	body, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	if checksum(body) != sum {
		return nil, "checksum mismatch (corrupt cache file)"
	}
	entries = make([]Entry, 0, count)
	for i := 0; i < int(count); i++ {
		off := headerSize + i*16
		e := Entry{
			Key: binary.LittleEndian.Uint64(data[off : off+8]),
			Val: binary.LittleEndian.Uint64(data[off+8 : off+16]),
		}
		if e.Key == 0 {
			continue // never stored by Save; skip rather than poison a table
		}
		entries = append(entries, e)
	}
	if len(entries) == 0 {
		// Valid but empty (a spill taken before anything was cached):
		// give callers that log empty loads a real diagnostic.
		return nil, "empty cache file"
	}
	return entries, ""
}

// SaveTable spills a table's live entries. The snapshot must not race
// with writers (see cachetable.Snapshot); consumers call this at exit
// or between benchmark phases.
func SaveTable(path string, schema uint32, contentKey uint64, t *cachetable.Table) error {
	return Save(path, schema, contentKey, t.Snapshot())
}

// LoadTable reloads a spilled file into a table, returning the number
// of entries stored and the empty-load diagnostic (see Load). Entries
// land with overwrite-on-collision semantics, so the table's bound
// holds regardless of the file's size.
func LoadTable(path string, schema uint32, contentKey uint64, t *cachetable.Table) (int, string) {
	entries, reason := Load(path, schema, contentKey)
	return t.LoadEntries(entries), reason
}
