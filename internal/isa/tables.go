package isa

import "fmt"

// This file builds the synthetic instruction form tables used throughout
// the evaluation. The paper derives its form sets from the instructions
// that compilers emit for SPEC CPU 2017: 310 x86-64 forms (Clang 8,
// -O3 -mavx2) and 390 ARMv8-A forms (GCC 4.9.4, -O3), excluding branches,
// implicit-operand instructions, SSE, and sub-register variants (§5.1.2).
// We reproduce tables of the same size and class structure. The precise
// mnemonics do not matter to any algorithm in this repository: forms are
// opaque atoms to the inference pipeline, and the ground-truth
// micro-architectures assign behaviour by semantic class.

// reg returns a read-only register operand.
func reg(class RegClass, width int) Operand {
	return Operand{Kind: KindReg, Class: class, Width: width, Read: true}
}

// dst returns a write-only register operand.
func dst(class RegClass, width int) Operand {
	return Operand{Kind: KindReg, Class: class, Width: width, Write: true}
}

// dstsrc returns a read-write register operand (x86 two-operand style).
func dstsrc(class RegClass, width int) Operand {
	return Operand{Kind: KindReg, Class: class, Width: width, Read: true, Write: true}
}

// mem returns a memory source operand.
func mem(width int) Operand {
	return Operand{Kind: KindMem, Class: ClassGPR, Width: width, Read: true}
}

// memdst returns a memory destination operand.
func memdst(width int) Operand {
	return Operand{Kind: KindMem, Class: ClassGPR, Width: width, Write: true}
}

// imm returns an immediate operand.
func imm(width int) Operand {
	return Operand{Kind: KindImm, Width: width, Read: true}
}

// SyntheticX86 builds the x86-64-like instruction form table with exactly
// 310 forms, mirroring the class mix of compiler-emitted code: scalar
// integer ALU ops, multiplies, divides, shifts, LEA, moves and extensions,
// loads/stores, and AVX/AVX2 vector integer and floating point operations.
func SyntheticX86() *ISA {
	a := New("x86-64")

	addForm := func(class, mnem string, ops ...Operand) {
		a.MustAddForm(Form{Mnemonic: mnem, Operands: ops, Class: class})
	}

	// Scalar integer ALU, two-operand destructive style.
	// Variants: r64r64, r32r32, r64i32, r32i32, r64m64, r32m32.
	aluMnems := []string{"add", "sub", "and", "or", "xor", "cmp", "test", "adc", "sbb"}
	for _, m := range aluMnems {
		addForm("alu", m, dstsrc(ClassGPR, 64), reg(ClassGPR, 64))
		addForm("alu", m, dstsrc(ClassGPR, 32), reg(ClassGPR, 32))
		addForm("alu", m, dstsrc(ClassGPR, 64), imm(32))
		addForm("alu", m, dstsrc(ClassGPR, 32), imm(32))
		addForm("alu_ld", m, dstsrc(ClassGPR, 64), mem(64))
		addForm("alu_ld", m, dstsrc(ClassGPR, 32), mem(32))
	} // 9*6 = 54

	// Unary ALU.
	for _, m := range []string{"inc", "dec", "neg", "not"} {
		addForm("alu", m, dstsrc(ClassGPR, 64))
		addForm("alu", m, dstsrc(ClassGPR, 32))
	} // +8 = 62

	// Shifts and rotates (port-restricted on Intel: p06).
	for _, m := range []string{"shl", "shr", "sar", "rol", "ror"} {
		addForm("shift", m, dstsrc(ClassGPR, 64), imm(8))
		addForm("shift", m, dstsrc(ClassGPR, 32), imm(8))
	} // +10 = 72
	for _, m := range []string{"shlx", "shrx", "sarx"} {
		addForm("shift", m, dst(ClassGPR, 64), reg(ClassGPR, 64), reg(ClassGPR, 64))
	} // +3 = 75

	// Bit manipulation (p1-ish on Intel).
	for _, m := range []string{"popcnt", "lzcnt", "tzcnt"} {
		addForm("bitcnt", m, dst(ClassGPR, 64), reg(ClassGPR, 64))
		addForm("bitcnt", m, dst(ClassGPR, 32), reg(ClassGPR, 32))
	} // +6 = 81
	for _, m := range []string{"andn", "bextr"} {
		addForm("alu", m, dst(ClassGPR, 64), reg(ClassGPR, 64), reg(ClassGPR, 64))
	} // +2 = 83

	// Bit test family: the paper's Table 3 discussion singles out BTx
	// instructions whose measurable throughput disagrees with the
	// documented port usage; the ground-truth uarch reproduces that quirk.
	for _, m := range []string{"bt", "bts", "btr", "btc"} {
		addForm("bittest", m, dstsrc(ClassGPR, 64), imm(8))
		addForm("bittest", m, dstsrc(ClassGPR, 64), reg(ClassGPR, 64))
	} // +8 = 91

	// Integer multiply (port-restricted, p1 on Intel).
	addForm("mul", "imul", dstsrc(ClassGPR, 64), reg(ClassGPR, 64))
	addForm("mul", "imul", dstsrc(ClassGPR, 32), reg(ClassGPR, 32))
	addForm("mul", "imul", dst(ClassGPR, 64), reg(ClassGPR, 64), imm(32))
	addForm("mul_ld", "imul", dstsrc(ClassGPR, 64), mem(64))
	addForm("mul", "mulx", dst(ClassGPR, 64), dst(ClassGPR, 64), reg(ClassGPR, 64))
	// 5 -> 96

	// Integer division (long-latency, unpipelined DIV unit).
	addForm("div", "div", dstsrc(ClassGPR, 64), reg(ClassGPR, 64))
	addForm("div", "div", dstsrc(ClassGPR, 32), reg(ClassGPR, 32))
	addForm("div", "idiv", dstsrc(ClassGPR, 64), reg(ClassGPR, 64))
	addForm("div", "idiv", dstsrc(ClassGPR, 32), reg(ClassGPR, 32))
	// 4 -> 100

	// LEA variants: simple (any ALU port) and complex (port-restricted).
	addForm("lea", "lea", dst(ClassGPR, 64), mem(64))
	addForm("lea", "lea", dst(ClassGPR, 32), mem(32))
	addForm("lea3", "lea3c", dst(ClassGPR, 64), mem(64)) // 3-component LEA
	// 3 -> 103

	// Moves, extensions, conditional moves.
	addForm("mov", "mov", dst(ClassGPR, 64), reg(ClassGPR, 64))
	addForm("mov", "mov", dst(ClassGPR, 32), reg(ClassGPR, 32))
	addForm("mov", "mov", dst(ClassGPR, 64), imm(32))
	addForm("mov", "mov", dst(ClassGPR, 32), imm(32))
	for _, m := range []string{"movzx", "movsx", "movsxd"} {
		addForm("mov", m, dst(ClassGPR, 64), reg(ClassGPR, 32))
	}
	for _, m := range []string{"cmove", "cmovne", "cmovl", "cmovge", "cmovb", "cmovae"} {
		addForm("cmov", m, dstsrc(ClassGPR, 64), reg(ClassGPR, 64))
	}
	for _, m := range []string{"sete", "setne", "setl", "setb"} {
		addForm("setcc", m, dst(ClassGPR, 8))
	}
	// 4+3+6+4 = 17 -> 120

	// Scalar loads and stores.
	addForm("load", "mov", dst(ClassGPR, 64), mem(64))
	addForm("load", "mov", dst(ClassGPR, 32), mem(32))
	addForm("load", "movzx", dst(ClassGPR, 64), mem(8))
	addForm("load", "movzx", dst(ClassGPR, 64), mem(16))
	addForm("load", "movsxd", dst(ClassGPR, 64), mem(32))
	addForm("store", "mov", memdst(64), reg(ClassGPR, 64))
	addForm("store", "mov", memdst(32), reg(ClassGPR, 32))
	addForm("store", "mov", memdst(64), imm(32))
	// 8 -> 128

	// Vector moves (AVX).
	for _, w := range []int{128, 256} {
		addForm("vecmov", "vmovdqa", dst(ClassVec, w), reg(ClassVec, w))
		addForm("vecload", "vmovdqa", dst(ClassVec, w), mem(w))
		addForm("vecstore", "vmovdqa", memdst(w), reg(ClassVec, w))
		addForm("vecload", "vmovdqu", dst(ClassVec, w), mem(w))
		addForm("vecstore", "vmovdqu", memdst(w), reg(ClassVec, w))
		addForm("vecload", "vmovaps", dst(ClassVec, w), mem(w))
		addForm("vecstore", "vmovaps", memdst(w), reg(ClassVec, w))
	} // 14 -> 142

	// Vector integer ALU (AVX2).
	vecIALU := []string{"vpaddd", "vpaddq", "vpaddb", "vpaddw", "vpsubd", "vpsubq",
		"vpand", "vpor", "vpxor", "vpcmpeqd", "vpcmpeqq", "vpcmpgtd",
		"vpmaxsd", "vpminsd", "vpmaxud", "vpminud", "vpabsd", "vpavgb"}
	for _, m := range vecIALU {
		addForm("vecialu", m, dst(ClassVec, 256), reg(ClassVec, 256), reg(ClassVec, 256))
		addForm("vecialu", m, dst(ClassVec, 128), reg(ClassVec, 128), reg(ClassVec, 128))
	} // 36 -> 178
	for _, m := range []string{"vpaddd", "vpand", "vpxor", "vpsubd"} {
		addForm("vecialu_ld", m, dst(ClassVec, 256), reg(ClassVec, 256), mem(256))
	} // 4 -> 182

	// Vector shifts (port-restricted).
	for _, m := range []string{"vpslld", "vpsrld", "vpsrad", "vpsllq", "vpsrlq"} {
		addForm("vecshift", m, dst(ClassVec, 256), reg(ClassVec, 256), imm(8))
		addForm("vecshift", m, dst(ClassVec, 128), reg(ClassVec, 128), imm(8))
	} // 10 -> 192
	for _, m := range []string{"vpsllvd", "vpsrlvd", "vpsravd"} {
		addForm("vecshift", m, dst(ClassVec, 256), reg(ClassVec, 256), reg(ClassVec, 256))
	} // 3 -> 195

	// Vector integer multiply.
	for _, m := range []string{"vpmulld", "vpmullw", "vpmuludq", "vpmuldq", "vpmaddwd"} {
		addForm("vecimul", m, dst(ClassVec, 256), reg(ClassVec, 256), reg(ClassVec, 256))
		addForm("vecimul", m, dst(ClassVec, 128), reg(ClassVec, 128), reg(ClassVec, 128))
	} // 10 -> 205

	// Vector shuffles/permutes (port-restricted, p5 on Intel).
	shuffles := []string{"vpshufd", "vpshufb", "vpunpckldq", "vpunpckhdq",
		"vpblendw", "vpalignr", "vperm2i128", "vpermd",
		"vinserti128", "vextracti128", "vpbroadcastd", "vpbroadcastq"}
	for _, m := range shuffles {
		addForm("vecshuf", m, dst(ClassVec, 256), reg(ClassVec, 256), reg(ClassVec, 256))
	} // 12 -> 217
	for _, m := range []string{"vpshufd", "vpshufb", "vpunpckldq"} {
		addForm("vecshuf", m, dst(ClassVec, 128), reg(ClassVec, 128), reg(ClassVec, 128))
	} // 3 -> 220

	// Vector FP arithmetic (AVX).
	fpArith := []string{"vaddps", "vaddpd", "vsubps", "vsubpd", "vmulps", "vmulpd",
		"vminps", "vmaxps", "vminpd", "vmaxpd", "vandps", "vorps", "vxorps",
		"vcmpps", "vcmppd"}
	for _, m := range fpArith {
		addForm("vecfp", m, dst(ClassVec, 256), reg(ClassVec, 256), reg(ClassVec, 256))
		addForm("vecfp", m, dst(ClassVec, 128), reg(ClassVec, 128), reg(ClassVec, 128))
	} // 30 -> 250
	for _, m := range []string{"vaddps", "vmulps", "vaddpd", "vmulpd"} {
		addForm("vecfp_ld", m, dst(ClassVec, 256), reg(ClassVec, 256), mem(256))
	} // 4 -> 254

	// FMA (two FP ports on SKL).
	fma := []string{"vfmadd132ps", "vfmadd213ps", "vfmadd231ps",
		"vfmadd132pd", "vfmadd213pd", "vfmadd231pd",
		"vfnmadd231ps", "vfmsub231ps"}
	for _, m := range fma {
		addForm("fma", m, dstsrc(ClassVec, 256), reg(ClassVec, 256), reg(ClassVec, 256))
		addForm("fma", m, dstsrc(ClassVec, 128), reg(ClassVec, 128), reg(ClassVec, 128))
	} // 16 -> 270

	// Scalar FP (SSE-encoded scalar ops are excluded; VEX scalar included).
	scalarFP := []string{"vaddss", "vaddsd", "vmulss", "vmulsd", "vsubss", "vsubsd",
		"vminss", "vmaxsd"}
	for _, m := range scalarFP {
		addForm("fpscalar", m, dst(ClassVec, 128), reg(ClassVec, 128), reg(ClassVec, 128))
	} // 8 -> 278

	// FP division and square root (DIV pipe).
	for _, m := range []string{"vdivps", "vdivpd", "vsqrtps", "vsqrtpd"} {
		addForm("fpdiv", m, dst(ClassVec, 256), reg(ClassVec, 256), reg(ClassVec, 256))
		addForm("fpdiv", m, dst(ClassVec, 128), reg(ClassVec, 128), reg(ClassVec, 128))
	} // 8 -> 286
	for _, m := range []string{"vdivss", "vdivsd", "vsqrtss", "vsqrtsd"} {
		addForm("fpdiv", m, dst(ClassVec, 128), reg(ClassVec, 128), reg(ClassVec, 128))
	} // 4 -> 290

	// FP conversions (often two µops across ports).
	convs := []string{"vcvtdq2ps", "vcvtps2dq", "vcvttps2dq", "vcvtdq2pd",
		"vcvtpd2ps", "vcvtps2pd"}
	for _, m := range convs {
		addForm("veccvt", m, dst(ClassVec, 256), reg(ClassVec, 256))
	} // 6 -> 296
	addForm("veccvt", "vcvtsi2sd", dst(ClassVec, 128), reg(ClassGPR, 64))
	addForm("veccvt", "vcvtsd2si", dst(ClassGPR, 64), reg(ClassVec, 128))
	// 2 -> 298

	// GPR<->vector moves and extracts.
	addForm("xfer", "vmovd", dst(ClassVec, 128), reg(ClassGPR, 32))
	addForm("xfer", "vmovq", dst(ClassVec, 128), reg(ClassGPR, 64))
	addForm("xfer", "vmovd", dst(ClassGPR, 32), reg(ClassVec, 128))
	addForm("xfer", "vmovq", dst(ClassGPR, 64), reg(ClassVec, 128))
	addForm("xfer", "vpextrd", dst(ClassGPR, 32), reg(ClassVec, 128), imm(8))
	addForm("xfer", "vpextrq", dst(ClassGPR, 64), reg(ClassVec, 128), imm(8))
	addForm("xfer", "vpinsrd", dst(ClassVec, 128), reg(ClassVec, 128), reg(ClassGPR, 32))
	addForm("xfer", "vpinsrq", dst(ClassVec, 128), reg(ClassVec, 128), reg(ClassGPR, 64))
	// 8 -> 306

	// Horizontal / misc vector ops to round out the table.
	addForm("vecialu", "vphaddd", dst(ClassVec, 256), reg(ClassVec, 256), reg(ClassVec, 256))
	addForm("vecialu", "vpsadbw", dst(ClassVec, 256), reg(ClassVec, 256), reg(ClassVec, 256))
	addForm("vecfp", "vhaddps", dst(ClassVec, 256), reg(ClassVec, 256), reg(ClassVec, 256))
	addForm("veccvt", "vroundps", dst(ClassVec, 256), reg(ClassVec, 256), imm(8))
	// 4 -> 310

	if n := a.NumForms(); n != 310 {
		panic(fmt.Sprintf("isa: SyntheticX86 built %d forms, want 310", n))
	}
	return a
}

// SyntheticARM builds the ARMv8-A-like instruction form table with exactly
// 390 forms, mirroring GCC-emitted A64 code: three-operand integer ALU,
// shifted-register variants, multiply/divide, bitfield ops, loads/stores
// with several addressing modes, and ASIMD/FP operations.
func SyntheticARM() *ISA {
	a := New("ARMv8-A")

	addForm := func(class, mnem string, ops ...Operand) {
		a.MustAddForm(Form{Mnemonic: mnem, Operands: ops, Class: class})
	}

	// Integer ALU, three-operand: Xd, Xn, Xm and 32-bit W variants,
	// plus immediate forms.
	aluMnems := []string{"add", "sub", "and", "orr", "eor", "bic", "orn", "eon", "adc", "sbc"}
	for _, m := range aluMnems {
		addForm("alu", m, dst(ClassGPR, 64), reg(ClassGPR, 64), reg(ClassGPR, 64))
		addForm("alu", m, dst(ClassGPR, 32), reg(ClassGPR, 32), reg(ClassGPR, 32))
	} // 20
	for _, m := range []string{"add", "sub", "and", "orr", "eor"} {
		addForm("alu", m, dst(ClassGPR, 64), reg(ClassGPR, 64), imm(12))
		addForm("alu", m, dst(ClassGPR, 32), reg(ClassGPR, 32), imm(12))
	} // +10 = 30

	// Shifted-register ALU forms (extra µop / multi-cycle pipe on A72).
	for _, m := range []string{"add", "sub", "and", "orr", "eor"} {
		addForm("alu_shifted", m+"_lsl", dst(ClassGPR, 64), reg(ClassGPR, 64), reg(ClassGPR, 64))
		addForm("alu_shifted", m+"_lsr", dst(ClassGPR, 64), reg(ClassGPR, 64), reg(ClassGPR, 64))
		addForm("alu_shifted", m+"_asr", dst(ClassGPR, 64), reg(ClassGPR, 64), reg(ClassGPR, 64))
	} // +15 = 45

	// Compares and conditional ops.
	for _, m := range []string{"cmp", "cmn", "tst"} {
		addForm("alu", m, reg(ClassGPR, 64), reg(ClassGPR, 64))
		addForm("alu", m, reg(ClassGPR, 32), reg(ClassGPR, 32))
		addForm("alu", m, reg(ClassGPR, 64), imm(12))
	} // +9 = 54
	for _, m := range []string{"csel", "csinc", "csinv", "csneg"} {
		addForm("csel", m, dst(ClassGPR, 64), reg(ClassGPR, 64), reg(ClassGPR, 64))
		addForm("csel", m, dst(ClassGPR, 32), reg(ClassGPR, 32), reg(ClassGPR, 32))
	} // +8 = 62
	for _, m := range []string{"cset", "csetm", "cinc"} {
		addForm("csel", m, dst(ClassGPR, 64))
	} // +3 = 65

	// Moves.
	addForm("mov", "mov", dst(ClassGPR, 64), reg(ClassGPR, 64))
	addForm("mov", "mov", dst(ClassGPR, 32), reg(ClassGPR, 32))
	addForm("mov", "movz", dst(ClassGPR, 64), imm(16))
	addForm("mov", "movn", dst(ClassGPR, 64), imm(16))
	addForm("mov", "movk", dstsrc(ClassGPR, 64), imm(16))
	// +5 = 70

	// Shifts by register and immediate (single-cycle integer pipe).
	for _, m := range []string{"lsl", "lsr", "asr", "ror"} {
		addForm("shift", m, dst(ClassGPR, 64), reg(ClassGPR, 64), reg(ClassGPR, 64))
		addForm("shift", m, dst(ClassGPR, 32), reg(ClassGPR, 32), reg(ClassGPR, 32))
		addForm("shift", m, dst(ClassGPR, 64), reg(ClassGPR, 64), imm(6))
	} // +12 = 82

	// Bitfield and extraction ops (multi-cycle pipe on A72).
	for _, m := range []string{"ubfx", "sbfx", "ubfiz", "sbfiz", "bfi", "bfxil", "extr"} {
		addForm("bitfield", m, dst(ClassGPR, 64), reg(ClassGPR, 64), imm(6))
		addForm("bitfield", m, dst(ClassGPR, 32), reg(ClassGPR, 32), imm(6))
	} // +14 = 96
	for _, m := range []string{"rbit", "rev", "rev16", "rev32", "clz", "cls"} {
		addForm("bitcnt", m, dst(ClassGPR, 64), reg(ClassGPR, 64))
	} // +6 = 102

	// Extensions.
	for _, m := range []string{"uxtb", "uxth", "sxtb", "sxth", "sxtw"} {
		addForm("mov", m, dst(ClassGPR, 64), reg(ClassGPR, 32))
	} // +5 = 107

	// Integer multiply and multiply-accumulate (M pipe).
	for _, m := range []string{"mul", "mneg", "smulh", "umulh"} {
		addForm("mul", m, dst(ClassGPR, 64), reg(ClassGPR, 64), reg(ClassGPR, 64))
	}
	addForm("mul", "mul", dst(ClassGPR, 32), reg(ClassGPR, 32), reg(ClassGPR, 32))
	for _, m := range []string{"madd", "msub", "smaddl", "umaddl", "smsubl", "umsubl"} {
		addForm("mul", m, dst(ClassGPR, 64), reg(ClassGPR, 64), reg(ClassGPR, 64))
	} // 4+1+6 = 11 -> 118

	// Integer divide (iterative M pipe).
	addForm("div", "sdiv", dst(ClassGPR, 64), reg(ClassGPR, 64), reg(ClassGPR, 64))
	addForm("div", "udiv", dst(ClassGPR, 64), reg(ClassGPR, 64), reg(ClassGPR, 64))
	addForm("div", "sdiv", dst(ClassGPR, 32), reg(ClassGPR, 32), reg(ClassGPR, 32))
	addForm("div", "udiv", dst(ClassGPR, 32), reg(ClassGPR, 32), reg(ClassGPR, 32))
	// +4 = 122

	// Address generation.
	addForm("lea", "adr", dst(ClassGPR, 64), imm(21))
	addForm("lea", "adrp", dst(ClassGPR, 64), imm(21))
	// +2 = 124

	// Scalar loads: register, immediate-offset, and extended variants.
	ldWidths := []struct {
		m string
		w int
	}{{"ldr", 64}, {"ldr", 32}, {"ldrb", 8}, {"ldrh", 16},
		{"ldrsb", 8}, {"ldrsh", 16}, {"ldrsw", 32}}
	for _, lw := range ldWidths {
		addForm("load", lw.m, dst(ClassGPR, 64), mem(lw.w))
		addForm("load", lw.m+"_roff", dst(ClassGPR, 64), mem(lw.w))
	} // 14 -> 138
	addForm("loadpair", "ldp", dst(ClassGPR, 64), dst(ClassGPR, 64), mem(128))
	addForm("loadpair", "ldp", dst(ClassGPR, 32), dst(ClassGPR, 32), mem(64))
	// +2 = 140

	// Scalar stores.
	stWidths := []struct {
		m string
		w int
	}{{"str", 64}, {"str", 32}, {"strb", 8}, {"strh", 16}}
	for _, sw := range stWidths {
		addForm("store", sw.m, memdst(sw.w), reg(ClassGPR, 64))
		addForm("store", sw.m+"_roff", memdst(sw.w), reg(ClassGPR, 64))
	} // 8 -> 148
	addForm("storepair", "stp", memdst(128), reg(ClassGPR, 64), reg(ClassGPR, 64))
	addForm("storepair", "stp", memdst(64), reg(ClassGPR, 32), reg(ClassGPR, 32))
	// +2 = 150

	// FP/ASIMD loads and stores.
	for _, w := range []int{32, 64, 128} {
		addForm("vecload", "ldr_q", dst(ClassVec, w), mem(w))
		addForm("vecstore", "str_q", memdst(w), reg(ClassVec, w))
	} // 6 -> 156
	addForm("vecload", "ld1", dst(ClassVec, 128), mem(128))
	addForm("vecstore", "st1", memdst(128), reg(ClassVec, 128))
	// +2 = 158

	// Scalar FP arithmetic (F0/F1 pipes).
	scalarFP := []string{"fadd", "fsub", "fmul", "fnmul", "fmin", "fmax", "fminnm", "fmaxnm"}
	for _, m := range scalarFP {
		addForm("fpscalar", m, dst(ClassFPR, 64), reg(ClassFPR, 64), reg(ClassFPR, 64))
		addForm("fpscalar", m, dst(ClassFPR, 32), reg(ClassFPR, 32), reg(ClassFPR, 32))
	} // 16 -> 174
	for _, m := range []string{"fabs", "fneg", "fmov"} {
		addForm("fpscalar", m, dst(ClassFPR, 64), reg(ClassFPR, 64))
		addForm("fpscalar", m, dst(ClassFPR, 32), reg(ClassFPR, 32))
	} // +6 = 180
	addForm("fpscalar", "fmov", dst(ClassFPR, 64), imm(8))
	addForm("fpcmp", "fcmp", reg(ClassFPR, 64), reg(ClassFPR, 64))
	addForm("fpcmp", "fcmp", reg(ClassFPR, 32), reg(ClassFPR, 32))
	addForm("csel", "fcsel", dst(ClassFPR, 64), reg(ClassFPR, 64), reg(ClassFPR, 64))
	// +4 = 184

	// Scalar FMA.
	for _, m := range []string{"fmadd", "fmsub", "fnmadd", "fnmsub"} {
		addForm("fma", m, dst(ClassFPR, 64), reg(ClassFPR, 64), reg(ClassFPR, 64))
		addForm("fma", m, dst(ClassFPR, 32), reg(ClassFPR, 32), reg(ClassFPR, 32))
	} // +8 = 192

	// FP divide and sqrt (iterative).
	for _, m := range []string{"fdiv", "fsqrt"} {
		addForm("fpdiv", m, dst(ClassFPR, 64), reg(ClassFPR, 64), reg(ClassFPR, 64))
		addForm("fpdiv", m, dst(ClassFPR, 32), reg(ClassFPR, 32), reg(ClassFPR, 32))
	} // +4 = 196

	// FP conversions and rounding.
	cvts := []string{"scvtf", "ucvtf", "fcvtzs", "fcvtzu", "fcvt", "frinta",
		"frintm", "frintp", "frintz", "frintn"}
	for _, m := range cvts {
		addForm("fpcvt", m, dst(ClassFPR, 64), reg(ClassFPR, 64))
	} // +10 = 206
	addForm("xfer", "fmov_x2d", dst(ClassFPR, 64), reg(ClassGPR, 64))
	addForm("xfer", "fmov_d2x", dst(ClassGPR, 64), reg(ClassFPR, 64))
	addForm("fpcvt", "scvtf_x", dst(ClassFPR, 64), reg(ClassGPR, 64))
	addForm("fpcvt", "fcvtzs_x", dst(ClassGPR, 64), reg(ClassFPR, 64))
	// +4 = 210

	// ASIMD integer arithmetic, 64-bit (D) and 128-bit (Q) forms.
	vecIALU := []string{"add_v", "sub_v", "mul_v", "and_v", "orr_v", "eor_v", "bic_v",
		"cmeq_v", "cmgt_v", "cmge_v", "cmhi_v", "cmhs_v",
		"smax_v", "smin_v", "umax_v", "umin_v",
		"sadd_v", "uadd_v", "shadd_v", "uhadd_v", "sqadd_v", "uqadd_v",
		"abs_v", "neg_v", "sabd_v", "uabd_v"}
	for _, m := range vecIALU {
		addForm("vecialu", m, dst(ClassVec, 128), reg(ClassVec, 128), reg(ClassVec, 128))
		addForm("vecialu", m, dst(ClassVec, 64), reg(ClassVec, 64), reg(ClassVec, 64))
	} // 52 -> 262

	// ASIMD shifts.
	for _, m := range []string{"shl_v", "sshr_v", "ushr_v", "sshl_v", "ushl_v", "sli_v"} {
		addForm("vecshift", m, dst(ClassVec, 128), reg(ClassVec, 128), imm(6))
		addForm("vecshift", m, dst(ClassVec, 64), reg(ClassVec, 64), imm(6))
	} // 12 -> 274

	// ASIMD multiply and multiply-accumulate.
	for _, m := range []string{"mul_vq", "mla_v", "mls_v", "smull_v", "umull_v",
		"smlal_v", "umlal_v", "sqdmulh_v", "sqrdmulh_v", "pmul_v"} {
		addForm("vecimul", m, dst(ClassVec, 128), reg(ClassVec, 128), reg(ClassVec, 128))
	} // 10 -> 284

	// ASIMD FP.
	vecFP := []string{"fadd_v", "fsub_v", "fmul_v", "fmin_v", "fmax_v",
		"fminnm_v", "fmaxnm_v", "fabd_v", "fcmeq_v", "fcmgt_v", "fcmge_v",
		"fabs_v", "fneg_v"}
	for _, m := range vecFP {
		addForm("vecfp", m, dst(ClassVec, 128), reg(ClassVec, 128), reg(ClassVec, 128))
		addForm("vecfp", m, dst(ClassVec, 64), reg(ClassVec, 64), reg(ClassVec, 64))
	} // 26 -> 310
	for _, m := range []string{"fmla_v", "fmls_v"} {
		addForm("fma", m, dstsrc(ClassVec, 128), reg(ClassVec, 128), reg(ClassVec, 128))
		addForm("fma", m, dstsrc(ClassVec, 64), reg(ClassVec, 64), reg(ClassVec, 64))
	} // 4 -> 314

	// ASIMD permutes/shuffles.
	perms := []string{"zip1_v", "zip2_v", "uzp1_v", "uzp2_v", "trn1_v", "trn2_v",
		"ext_v", "rev64_v", "tbl_v", "dup_v", "ins_v"}
	for _, m := range perms {
		addForm("vecshuf", m, dst(ClassVec, 128), reg(ClassVec, 128), reg(ClassVec, 128))
		addForm("vecshuf", m, dst(ClassVec, 64), reg(ClassVec, 64), reg(ClassVec, 64))
	} // 22 -> 336

	// ASIMD widening/narrowing and pairwise ops.
	for _, m := range []string{"xtn_v", "sxtl_v", "uxtl_v", "shrn_v", "sqxtn_v",
		"addp_v", "saddlp_v", "uaddlp_v", "addv_v", "smaxv_v", "uminv_v"} {
		addForm("vecialu", m, dst(ClassVec, 128), reg(ClassVec, 128))
	} // 11 -> 347

	// ASIMD conversions.
	for _, m := range []string{"scvtf_v", "ucvtf_v", "fcvtzs_v", "fcvtzu_v",
		"fcvtl_v", "fcvtn_v", "frinta_v", "frintm_v"} {
		addForm("fpcvt", m, dst(ClassVec, 128), reg(ClassVec, 128))
	} // 8 -> 355

	// ASIMD FP divide (iterative) and reciprocal estimates.
	addForm("fpdiv", "fdiv_v", dst(ClassVec, 128), reg(ClassVec, 128), reg(ClassVec, 128))
	addForm("fpdiv", "fsqrt_v", dst(ClassVec, 128), reg(ClassVec, 128))
	for _, m := range []string{"frecpe_v", "frsqrte_v", "urecpe_v"} {
		addForm("vecfp", m, dst(ClassVec, 128), reg(ClassVec, 128))
	} // 5 -> 360

	// Load/store with writeback-free indexed addressing (distinct forms
	// for the AGU-heavy addressing modes GCC likes to emit).
	for _, m := range []string{"ldr_sxtw", "ldr_lsl3", "ldrb_sxtw", "ldrh_lsl1"} {
		addForm("load", m, dst(ClassGPR, 64), mem(64))
	} // 4 -> 364
	for _, m := range []string{"str_sxtw", "str_lsl3"} {
		addForm("store", m, memdst(64), reg(ClassGPR, 64))
	} // 2 -> 366
	addForm("vecload", "ldr_q_roff", dst(ClassVec, 128), mem(128))
	addForm("vecstore", "str_q_roff", memdst(128), reg(ClassVec, 128))
	addForm("loadpair", "ldp_q", dst(ClassVec, 128), dst(ClassVec, 128), mem(256))
	addForm("storepair", "stp_q", memdst(256), reg(ClassVec, 128), reg(ClassVec, 128))
	// 4 -> 370

	// More ASIMD long/accumulate variants to round out GCC's vectorized
	// output mix.
	for _, m := range []string{"sabal_v", "uabal_v", "sadalp_v", "uadalp_v",
		"saddl_v", "uaddl_v", "ssubl_v", "usubl_v",
		"saddw_v", "uaddw_v", "ssubw_v", "usubw_v"} {
		addForm("vecialu", m, dst(ClassVec, 128), reg(ClassVec, 128), reg(ClassVec, 128))
	} // 12 -> 382

	// Misc scalar ops.
	for _, m := range []string{"ngc", "mvn"} {
		addForm("alu", m, dst(ClassGPR, 64), reg(ClassGPR, 64))
	} // 2 -> 384
	for _, m := range []string{"ccmp", "ccmn"} {
		addForm("alu", m, reg(ClassGPR, 64), reg(ClassGPR, 64))
		addForm("alu", m, reg(ClassGPR, 64), imm(5))
	} // 4 -> 388
	addForm("bitcnt", "cnt_v", dst(ClassVec, 64), reg(ClassVec, 64))
	addForm("vecialu", "bif_v", dstsrc(ClassVec, 128), reg(ClassVec, 128), reg(ClassVec, 128))
	// 2 -> 390

	if n := a.NumForms(); n != 390 {
		panic(fmt.Sprintf("isa: SyntheticARM built %d forms, want 390", n))
	}
	return a
}
