package isa

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText checks that the ISA text parser never panics and that
// anything it accepts survives a write/read round trip.
func FuzzReadText(f *testing.F) {
	var buf bytes.Buffer
	if err := SyntheticX86().WriteText(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String()[:200])
	f.Add("isa mini\nform add class=alu ops=rw:reg:gpr:64,r:reg:gpr:64\n")
	f.Add("form before header\n")
	f.Add("isa a\nisa b\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		a, err := ReadText(strings.NewReader(input))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := a.WriteText(&out); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		b, err := ReadText(&out)
		if err != nil {
			t.Fatalf("round trip unparseable: %v", err)
		}
		if b.NumForms() != a.NumForms() || b.Name != a.Name {
			t.Fatalf("round trip changed ISA: %d/%q vs %d/%q",
				b.NumForms(), b.Name, a.NumForms(), a.Name)
		}
	})
}
