package isa

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements a line-oriented text format for ISA descriptions,
// so instruction form sets can be stored alongside measured data. The
// format is deliberately simple:
//
//	# comment
//	isa x86-64
//	form add class=alu ops=rw:reg:gpr:64,r:reg:gpr:64
//
// Each operand is flags:kind:class:width where flags is a combination of
// "r" and "w", kind is reg|mem|imm, class is gpr|vec|fpr|none.

// WriteText serializes the ISA in the text format.
func (a *ISA) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "isa %s\n", a.Name)
	for _, f := range a.forms {
		ops := make([]string, len(f.Operands))
		for i, op := range f.Operands {
			ops[i] = formatOperand(op)
		}
		if len(ops) == 0 {
			fmt.Fprintf(bw, "form %s class=%s\n", f.Mnemonic, f.Class)
		} else {
			fmt.Fprintf(bw, "form %s class=%s ops=%s\n",
				f.Mnemonic, f.Class, strings.Join(ops, ","))
		}
	}
	return bw.Flush()
}

func formatOperand(op Operand) string {
	flags := ""
	if op.Read {
		flags += "r"
	}
	if op.Write {
		flags += "w"
	}
	if flags == "" {
		flags = "-"
	}
	var kind string
	switch op.Kind {
	case KindReg:
		kind = "reg"
	case KindMem:
		kind = "mem"
	case KindImm:
		kind = "imm"
	}
	return fmt.Sprintf("%s:%s:%s:%d", flags, kind, op.Class, op.Width)
}

func parseOperand(s string) (Operand, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 4 {
		return Operand{}, fmt.Errorf("isa: malformed operand %q", s)
	}
	var op Operand
	for _, c := range parts[0] {
		switch c {
		case 'r':
			op.Read = true
		case 'w':
			op.Write = true
		case '-':
		default:
			return Operand{}, fmt.Errorf("isa: bad operand flags %q", parts[0])
		}
	}
	switch parts[1] {
	case "reg":
		op.Kind = KindReg
	case "mem":
		op.Kind = KindMem
	case "imm":
		op.Kind = KindImm
	default:
		return Operand{}, fmt.Errorf("isa: bad operand kind %q", parts[1])
	}
	switch parts[2] {
	case "gpr":
		op.Class = ClassGPR
	case "vec":
		op.Class = ClassVec
	case "fpr":
		op.Class = ClassFPR
	case "none":
		op.Class = ClassNone
	default:
		return Operand{}, fmt.Errorf("isa: bad register class %q", parts[2])
	}
	w, err := strconv.Atoi(parts[3])
	if err != nil || w <= 0 {
		return Operand{}, fmt.Errorf("isa: bad operand width %q", parts[3])
	}
	op.Width = w
	return op, nil
}

// ReadText parses an ISA from the text format produced by WriteText.
func ReadText(r io.Reader) (*ISA, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var a *ISA
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "isa":
			if len(fields) != 2 {
				return nil, fmt.Errorf("isa: line %d: want 'isa <name>'", lineno)
			}
			if a != nil {
				return nil, fmt.Errorf("isa: line %d: duplicate isa header", lineno)
			}
			a = New(fields[1])
		case "form":
			if a == nil {
				return nil, fmt.Errorf("isa: line %d: form before isa header", lineno)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("isa: line %d: want 'form <mnem> class=... [ops=...]'", lineno)
			}
			f := Form{Mnemonic: fields[1]}
			for _, kv := range fields[2:] {
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("isa: line %d: malformed attribute %q", lineno, kv)
				}
				switch key {
				case "class":
					f.Class = val
				case "ops":
					for _, opStr := range strings.Split(val, ",") {
						op, err := parseOperand(opStr)
						if err != nil {
							return nil, fmt.Errorf("isa: line %d: %v", lineno, err)
						}
						f.Operands = append(f.Operands, op)
					}
				default:
					return nil, fmt.Errorf("isa: line %d: unknown attribute %q", lineno, key)
				}
			}
			if _, err := a.AddForm(f); err != nil {
				return nil, fmt.Errorf("isa: line %d: %v", lineno, err)
			}
		default:
			return nil, fmt.Errorf("isa: line %d: unknown directive %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if a == nil {
		return nil, fmt.Errorf("isa: empty input")
	}
	return a, nil
}
