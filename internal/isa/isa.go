// Package isa describes instruction set architectures at the level of
// detail PMEvo needs: instruction forms with typed operand placeholders.
//
// An instruction form is an instruction mnemonic together with the kinds
// and widths of its operands (paper §4.1). Two forms with the same
// mnemonic but different operand types (say, "add r64, r64" and
// "add r64, m64") are distinct forms because they may decompose into
// different µops. The inference algorithm treats forms as opaque atoms;
// the measurement harness uses the operand descriptions to instantiate
// concrete, dependency-free instruction sequences.
package isa

import (
	"fmt"
	"sort"
	"strings"
)

// OperandKind classifies an operand placeholder.
type OperandKind int

const (
	// KindReg is a register operand drawn from a RegClass.
	KindReg OperandKind = iota
	// KindMem is a memory operand (base register + constant offset).
	KindMem
	// KindImm is an immediate constant operand.
	KindImm
)

// String returns a short human-readable name for the operand kind.
func (k OperandKind) String() string {
	switch k {
	case KindReg:
		return "reg"
	case KindMem:
		return "mem"
	case KindImm:
		return "imm"
	default:
		return fmt.Sprintf("OperandKind(%d)", int(k))
	}
}

// RegClass identifies a register file from which a register operand is
// allocated. The measurement harness assigns concrete registers per class.
type RegClass int

const (
	// ClassNone is used for operands that are not registers.
	ClassNone RegClass = iota
	// ClassGPR is the general purpose (integer) register class.
	ClassGPR
	// ClassVec is the SIMD/vector register class.
	ClassVec
	// ClassFPR is a scalar floating point register class (used by the
	// ARM-like ISA, where FP and vector registers alias).
	ClassFPR
)

// String returns a short human-readable name for the register class.
func (c RegClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassGPR:
		return "gpr"
	case ClassVec:
		return "vec"
	case ClassFPR:
		return "fpr"
	default:
		return fmt.Sprintf("RegClass(%d)", int(c))
	}
}

// Operand is a typed placeholder in an instruction form.
type Operand struct {
	Kind  OperandKind
	Class RegClass // register class for KindReg; base-pointer class for KindMem
	Width int      // operand width in bits (8, 16, 32, 64, 128, 256)
	Read  bool     // operand value is read by the instruction
	Write bool     // operand value is written by the instruction
}

// String renders the operand like "r64", "m64", "i32", with RW flags
// implied by position (destination operands are conventionally first).
func (o Operand) String() string {
	switch o.Kind {
	case KindReg:
		switch o.Class {
		case ClassVec:
			return fmt.Sprintf("v%d", o.Width)
		case ClassFPR:
			return fmt.Sprintf("f%d", o.Width)
		default:
			return fmt.Sprintf("r%d", o.Width)
		}
	case KindMem:
		return fmt.Sprintf("m%d", o.Width)
	case KindImm:
		return fmt.Sprintf("i%d", o.Width)
	default:
		return "?"
	}
}

// Form is a single instruction form: a mnemonic plus typed operand
// placeholders. Forms are the atoms of PMEvo's search: experiments are
// multisets of forms, and the inferred port mapping assigns a µop
// decomposition to every form.
type Form struct {
	// ID is the dense index of the form within its ISA (0-based).
	ID int
	// Mnemonic is the assembly mnemonic, e.g. "add".
	Mnemonic string
	// Operands are the typed placeholders, destination(s) first.
	Operands []Operand
	// Class is a coarse semantic class ("alu", "mul", "load", ...) used
	// by the ground-truth micro-architectures to assign decompositions
	// and latencies. The inference algorithm never reads it.
	Class string
}

// Name returns the canonical unique name of the form, e.g.
// "add_r64_r64" or "vmulps_v256_v256_v256".
func (f *Form) Name() string {
	if len(f.Operands) == 0 {
		return f.Mnemonic
	}
	parts := make([]string, 0, len(f.Operands)+1)
	parts = append(parts, f.Mnemonic)
	for _, op := range f.Operands {
		parts = append(parts, op.String())
	}
	return strings.Join(parts, "_")
}

// Syntax renders the form in assembly-like syntax, e.g. "add r64, m64".
func (f *Form) Syntax() string {
	if len(f.Operands) == 0 {
		return f.Mnemonic
	}
	ops := make([]string, len(f.Operands))
	for i, op := range f.Operands {
		ops[i] = op.String()
	}
	return f.Mnemonic + " " + strings.Join(ops, ", ")
}

// NumReads reports the number of operands read by the form.
func (f *Form) NumReads() int {
	n := 0
	for _, op := range f.Operands {
		if op.Read {
			n++
		}
	}
	return n
}

// NumWrites reports the number of operands written by the form.
func (f *Form) NumWrites() int {
	n := 0
	for _, op := range f.Operands {
		if op.Write {
			n++
		}
	}
	return n
}

// HasMemoryOperand reports whether any operand is a memory operand.
func (f *Form) HasMemoryOperand() bool {
	for _, op := range f.Operands {
		if op.Kind == KindMem {
			return true
		}
	}
	return false
}

// ISA is a set of instruction forms under test.
type ISA struct {
	// Name identifies the ISA, e.g. "x86-64" or "ARMv8-A".
	Name string

	forms  []*Form
	byName map[string]*Form
}

// New creates an empty ISA with the given name.
func New(name string) *ISA {
	return &ISA{
		Name:   name,
		byName: make(map[string]*Form),
	}
}

// AddForm appends a form to the ISA, assigning its ID. It returns the
// stored form. Adding two forms with identical canonical names is an
// error because experiments identify forms by name in serialized files.
func (a *ISA) AddForm(f Form) (*Form, error) {
	stored := f
	stored.ID = len(a.forms)
	name := stored.Name()
	if _, dup := a.byName[name]; dup {
		return nil, fmt.Errorf("isa: duplicate instruction form %q", name)
	}
	p := &stored
	a.forms = append(a.forms, p)
	a.byName[name] = p
	return p, nil
}

// MustAddForm is AddForm but panics on duplicates. It is intended for
// the static ISA table builders where duplicates are programming errors.
func (a *ISA) MustAddForm(f Form) *Form {
	p, err := a.AddForm(f)
	if err != nil {
		panic(err)
	}
	return p
}

// NumForms returns the number of instruction forms in the ISA.
func (a *ISA) NumForms() int { return len(a.forms) }

// Form returns the form with the given dense ID.
func (a *ISA) Form(id int) *Form { return a.forms[id] }

// Forms returns all forms in ID order. The returned slice must not be
// modified.
func (a *ISA) Forms() []*Form { return a.forms }

// FormByName looks up a form by its canonical name.
func (a *ISA) FormByName(name string) (*Form, bool) {
	f, ok := a.byName[name]
	return f, ok
}

// Classes returns the sorted list of distinct semantic classes in the ISA.
func (a *ISA) Classes() []string {
	seen := make(map[string]bool)
	for _, f := range a.forms {
		seen[f.Class] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// FormsInClass returns all forms of the given semantic class, in ID order.
func (a *ISA) FormsInClass(class string) []*Form {
	var out []*Form
	for _, f := range a.forms {
		if f.Class == class {
			out = append(out, f)
		}
	}
	return out
}

// Subset builds a new ISA containing only the given forms (in the given
// order, re-numbered densely). The new ISA shares no state with the
// original. Subset is used by tests and by congruence filtering when the
// evolutionary algorithm should only see class representatives.
func (a *ISA) Subset(name string, forms []*Form) (*ISA, error) {
	sub := New(name)
	for _, f := range forms {
		cp := *f
		cp.Operands = append([]Operand(nil), f.Operands...)
		if _, err := sub.AddForm(cp); err != nil {
			return nil, err
		}
	}
	return sub, nil
}
