package isa

import (
	"bytes"
	"strings"
	"testing"
)

func TestAddFormAssignsIDs(t *testing.T) {
	a := New("test")
	f1 := a.MustAddForm(Form{Mnemonic: "add", Operands: []Operand{dstsrc(ClassGPR, 64), reg(ClassGPR, 64)}, Class: "alu"})
	f2 := a.MustAddForm(Form{Mnemonic: "mul", Operands: []Operand{dstsrc(ClassGPR, 64), reg(ClassGPR, 64)}, Class: "mul"})
	if f1.ID != 0 || f2.ID != 1 {
		t.Errorf("IDs = %d, %d; want 0, 1", f1.ID, f2.ID)
	}
	if a.NumForms() != 2 {
		t.Errorf("NumForms = %d, want 2", a.NumForms())
	}
	if a.Form(0) != f1 || a.Form(1) != f2 {
		t.Error("Form(id) does not return the stored forms")
	}
}

func TestAddFormRejectsDuplicates(t *testing.T) {
	a := New("test")
	f := Form{Mnemonic: "add", Operands: []Operand{dstsrc(ClassGPR, 64), reg(ClassGPR, 64)}}
	if _, err := a.AddForm(f); err != nil {
		t.Fatalf("first AddForm: %v", err)
	}
	if _, err := a.AddForm(f); err == nil {
		t.Error("duplicate AddForm succeeded, want error")
	}
}

func TestFormName(t *testing.T) {
	tests := []struct {
		form Form
		want string
	}{
		{Form{Mnemonic: "add", Operands: []Operand{dstsrc(ClassGPR, 64), reg(ClassGPR, 64)}}, "add_r64_r64"},
		{Form{Mnemonic: "mov", Operands: []Operand{dst(ClassGPR, 32), imm(32)}}, "mov_r32_i32"},
		{Form{Mnemonic: "vaddps", Operands: []Operand{dst(ClassVec, 256), reg(ClassVec, 256), reg(ClassVec, 256)}}, "vaddps_v256_v256_v256"},
		{Form{Mnemonic: "ldr", Operands: []Operand{dst(ClassGPR, 64), mem(64)}}, "ldr_r64_m64"},
		{Form{Mnemonic: "fadd", Operands: []Operand{dst(ClassFPR, 64), reg(ClassFPR, 64), reg(ClassFPR, 64)}}, "fadd_f64_f64_f64"},
		{Form{Mnemonic: "nop"}, "nop"},
	}
	for _, tc := range tests {
		if got := tc.form.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}

func TestFormSyntax(t *testing.T) {
	f := Form{Mnemonic: "add", Operands: []Operand{dstsrc(ClassGPR, 64), mem(64)}}
	if got, want := f.Syntax(), "add r64, m64"; got != want {
		t.Errorf("Syntax() = %q, want %q", got, want)
	}
}

func TestFormByName(t *testing.T) {
	a := SyntheticX86()
	f, ok := a.FormByName("add_r64_r64")
	if !ok {
		t.Fatal("add_r64_r64 not found in synthetic x86 ISA")
	}
	if f.Mnemonic != "add" || f.Class != "alu" {
		t.Errorf("found form %q class %q, want add/alu", f.Mnemonic, f.Class)
	}
	if _, ok := a.FormByName("no_such_form"); ok {
		t.Error("lookup of missing form succeeded")
	}
}

func TestFormReadWriteCounts(t *testing.T) {
	f := Form{Mnemonic: "add", Operands: []Operand{dstsrc(ClassGPR, 64), reg(ClassGPR, 64)}}
	if f.NumReads() != 2 {
		t.Errorf("NumReads = %d, want 2", f.NumReads())
	}
	if f.NumWrites() != 1 {
		t.Errorf("NumWrites = %d, want 1", f.NumWrites())
	}
	g := Form{Mnemonic: "mov", Operands: []Operand{memdst(64), reg(ClassGPR, 64)}}
	if !g.HasMemoryOperand() {
		t.Error("HasMemoryOperand = false for store")
	}
	if f.HasMemoryOperand() {
		t.Error("HasMemoryOperand = true for reg-reg op")
	}
}

func TestSyntheticX86Size(t *testing.T) {
	a := SyntheticX86()
	if a.NumForms() != 310 {
		t.Fatalf("SyntheticX86 has %d forms, want 310 (paper §5.1.2)", a.NumForms())
	}
	if a.Name != "x86-64" {
		t.Errorf("Name = %q, want x86-64", a.Name)
	}
}

func TestSyntheticARMSize(t *testing.T) {
	a := SyntheticARM()
	if a.NumForms() != 390 {
		t.Fatalf("SyntheticARM has %d forms, want 390 (paper §5.1.2)", a.NumForms())
	}
	if a.Name != "ARMv8-A" {
		t.Errorf("Name = %q, want ARMv8-A", a.Name)
	}
}

func TestSyntheticTablesHaveDiverseClasses(t *testing.T) {
	for _, a := range []*ISA{SyntheticX86(), SyntheticARM()} {
		classes := a.Classes()
		if len(classes) < 10 {
			t.Errorf("%s: only %d classes (%v), want >= 10 for realistic diversity",
				a.Name, len(classes), classes)
		}
		// Every class must be non-empty by construction; check lookup agrees.
		total := 0
		for _, c := range classes {
			forms := a.FormsInClass(c)
			if len(forms) == 0 {
				t.Errorf("%s: class %q has no forms", a.Name, c)
			}
			total += len(forms)
		}
		if total != a.NumForms() {
			t.Errorf("%s: classes cover %d forms, want %d", a.Name, total, a.NumForms())
		}
	}
}

func TestSyntheticTablesExcludeBranches(t *testing.T) {
	// Paper §5.1.2 excludes branch/jump instructions.
	for _, a := range []*ISA{SyntheticX86(), SyntheticARM()} {
		for _, f := range a.Forms() {
			m := f.Mnemonic
			if m == "jmp" || m == "je" || m == "b" || m == "bl" || m == "cbz" ||
				strings.HasPrefix(m, "j") && f.Class == "branch" {
				t.Errorf("%s contains branch-like form %q", a.Name, f.Name())
			}
		}
	}
}

func TestSubset(t *testing.T) {
	a := SyntheticX86()
	var picks []*Form
	for _, f := range a.Forms()[:5] {
		picks = append(picks, f)
	}
	sub, err := a.Subset("x86-sub", picks)
	if err != nil {
		t.Fatalf("Subset: %v", err)
	}
	if sub.NumForms() != 5 {
		t.Fatalf("subset has %d forms, want 5", sub.NumForms())
	}
	for i, f := range sub.Forms() {
		if f.ID != i {
			t.Errorf("subset form %d has ID %d", i, f.ID)
		}
		if f.Name() != picks[i].Name() {
			t.Errorf("subset form %d = %q, want %q", i, f.Name(), picks[i].Name())
		}
	}
	// Mutating the subset must not affect the original.
	sub.Forms()[0].Operands[0].Width = 1
	if a.Forms()[0].Operands[0].Width == 1 {
		t.Error("Subset shares operand storage with original ISA")
	}
}

func TestTextRoundTrip(t *testing.T) {
	for _, orig := range []*ISA{SyntheticX86(), SyntheticARM()} {
		var buf bytes.Buffer
		if err := orig.WriteText(&buf); err != nil {
			t.Fatalf("%s: WriteText: %v", orig.Name, err)
		}
		got, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("%s: ReadText: %v", orig.Name, err)
		}
		if got.Name != orig.Name {
			t.Errorf("round-trip name = %q, want %q", got.Name, orig.Name)
		}
		if got.NumForms() != orig.NumForms() {
			t.Fatalf("%s: round-trip %d forms, want %d", orig.Name, got.NumForms(), orig.NumForms())
		}
		for i, f := range orig.Forms() {
			g := got.Form(i)
			if g.Name() != f.Name() || g.Class != f.Class {
				t.Errorf("form %d: got %q/%q, want %q/%q", i, g.Name(), g.Class, f.Name(), f.Class)
			}
			if len(g.Operands) != len(f.Operands) {
				t.Errorf("form %d: %d operands, want %d", i, len(g.Operands), len(f.Operands))
				continue
			}
			for j, op := range f.Operands {
				if g.Operands[j] != op {
					t.Errorf("form %d operand %d: got %+v, want %+v", i, j, g.Operands[j], op)
				}
			}
		}
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"form before header", "form add class=alu\n"},
		{"duplicate header", "isa a\nisa b\n"},
		{"bad directive", "isa a\nblah\n"},
		{"malformed attr", "isa a\nform add class\n"},
		{"bad operand", "isa a\nform add class=alu ops=bogus\n"},
		{"bad kind", "isa a\nform add class=alu ops=r:xyz:gpr:64\n"},
		{"bad class", "isa a\nform add class=alu ops=r:reg:xyz:64\n"},
		{"bad width", "isa a\nform add class=alu ops=r:reg:gpr:xx\n"},
		{"duplicate form", "isa a\nform add class=alu\nform add class=alu\n"},
	}
	for _, tc := range cases {
		if _, err := ReadText(strings.NewReader(tc.input)); err == nil {
			t.Errorf("%s: ReadText succeeded, want error", tc.name)
		}
	}
}

func TestReadTextSkipsCommentsAndBlanks(t *testing.T) {
	input := "# header comment\n\nisa mini\n# a form\nform add class=alu ops=rw:reg:gpr:64,r:reg:gpr:64\n"
	a, err := ReadText(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if a.NumForms() != 1 {
		t.Fatalf("got %d forms, want 1", a.NumForms())
	}
	f := a.Form(0)
	if f.Name() != "add_r64_r64" {
		t.Errorf("form name = %q", f.Name())
	}
	if !f.Operands[0].Read || !f.Operands[0].Write {
		t.Error("first operand should be read-write")
	}
}

func TestOperandStringForms(t *testing.T) {
	tests := []struct {
		op   Operand
		want string
	}{
		{reg(ClassGPR, 64), "r64"},
		{reg(ClassVec, 256), "v256"},
		{reg(ClassFPR, 32), "f32"},
		{mem(64), "m64"},
		{imm(8), "i8"},
	}
	for _, tc := range tests {
		if got := tc.op.String(); got != tc.want {
			t.Errorf("%+v String() = %q, want %q", tc.op, got, tc.want)
		}
	}
}

func TestKindAndClassStrings(t *testing.T) {
	if KindReg.String() != "reg" || KindMem.String() != "mem" || KindImm.String() != "imm" {
		t.Error("OperandKind String() wrong")
	}
	if ClassGPR.String() != "gpr" || ClassVec.String() != "vec" ||
		ClassFPR.String() != "fpr" || ClassNone.String() != "none" {
		t.Error("RegClass String() wrong")
	}
	if !strings.Contains(OperandKind(99).String(), "99") {
		t.Error("unknown OperandKind should include numeric value")
	}
	if !strings.Contains(RegClass(99).String(), "99") {
		t.Error("unknown RegClass should include numeric value")
	}
}
