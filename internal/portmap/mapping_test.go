package portmap

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// paperExampleMapping builds the three-level mapping of Figure 4:
// mul = 2×U1(p1), add = sub = 1×U2(p12), store = 1×U2(p12) + 1×U3(p3),
// with instructions indexed mul=0, add=1, sub=2, store=3 and ports
// P1..P3 mapped to indices 0..2.
func paperExampleMapping() *Mapping {
	m := NewMapping(4, 3)
	m.InstNames = []string{"mul", "add", "sub", "store"}
	u1 := MakePortSet(0)
	u2 := MakePortSet(0, 1)
	u3 := MakePortSet(2)
	m.SetDecomp(0, []UopCount{{u1, 2}})
	m.SetDecomp(1, []UopCount{{u2, 1}})
	m.SetDecomp(2, []UopCount{{u2, 1}})
	m.SetDecomp(3, []UopCount{{u2, 1}, {u3, 1}})
	return m
}

func TestMappingValidate(t *testing.T) {
	m := paperExampleMapping()
	if err := m.Validate(); err != nil {
		t.Fatalf("valid mapping rejected: %v", err)
	}

	empty := NewMapping(1, 3)
	if err := empty.Validate(); err == nil {
		t.Error("mapping with empty decomposition accepted")
	}

	bad := NewMapping(1, 3)
	bad.Decomp[0] = []UopCount{{Ports: 0, Count: 1}}
	if err := bad.Validate(); err == nil {
		t.Error("µop with empty port set accepted")
	}

	oob := NewMapping(1, 3)
	oob.Decomp[0] = []UopCount{{Ports: MakePortSet(5), Count: 1}}
	if err := oob.Validate(); err == nil {
		t.Error("µop with out-of-range port accepted")
	}

	neg := NewMapping(1, 3)
	neg.Decomp[0] = []UopCount{{Ports: MakePortSet(0), Count: -1}}
	if err := neg.Validate(); err == nil {
		t.Error("negative µop count accepted")
	}
}

func TestSetDecompCanonicalizes(t *testing.T) {
	m := NewMapping(1, 4)
	m.SetDecomp(0, []UopCount{
		{MakePortSet(1, 2), 1},
		{MakePortSet(0), 2},
		{MakePortSet(1, 2), 3}, // merged with first
		{MakePortSet(3), 0},    // dropped
	})
	d := m.Decomp[0]
	if len(d) != 2 {
		t.Fatalf("decomp has %d entries, want 2: %v", len(d), d)
	}
	if d[0].Ports != MakePortSet(0) || d[0].Count != 2 {
		t.Errorf("d[0] = %v", d[0])
	}
	if d[1].Ports != MakePortSet(1, 2) || d[1].Count != 4 {
		t.Errorf("d[1] = %v", d[1])
	}
}

func TestVolume(t *testing.T) {
	m := paperExampleMapping()
	// mul: 2*|p0|=2, add: 1*2=2, sub: 2, store: 1*2+1*1=3 → total 9.
	if v := m.Volume(); v != 9 {
		t.Errorf("Volume = %d, want 9", v)
	}
	if v := m.VolumeOf([]int{0, 3}); v != 5 {
		t.Errorf("VolumeOf(mul, store) = %d, want 5", v)
	}
}

func TestDistinctUops(t *testing.T) {
	m := paperExampleMapping()
	uops := m.DistinctUops()
	if len(uops) != 3 {
		t.Fatalf("DistinctUops = %v, want 3 entries", uops)
	}
	want := []PortSet{MakePortSet(0), MakePortSet(2), MakePortSet(0, 1)}
	// DistinctUops sorts by raw bitmask value: p0=1, p2=4... wait p01=3.
	// Sorted: {P0}=1, {P0,P1}=3, {P2}=4.
	want = []PortSet{MakePortSet(0), MakePortSet(0, 1), MakePortSet(2)}
	for i, u := range uops {
		if u != want[i] {
			t.Errorf("DistinctUops[%d] = %s, want %s", i, u, want[i])
		}
	}
}

func TestUopCountOf(t *testing.T) {
	m := paperExampleMapping()
	wants := []int{2, 1, 1, 2}
	for i, w := range wants {
		if got := m.UopCountOf(i); got != w {
			t.Errorf("UopCountOf(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestFlattenPaperExample(t *testing.T) {
	// Experiment from Example 1: {add→2, mul→1, store→1}.
	m := paperExampleMapping()
	e := Experiment{{Inst: 1, Count: 2}, {Inst: 0, Count: 1}, {Inst: 3, Count: 1}}
	terms := m.Flatten(e)
	// Expected masses: U2(p01): 2 (add) + 1 (store) = 3, U1(p0): 2 (mul), U3(p2): 1.
	got := make(map[PortSet]float64)
	for _, mt := range terms {
		got[mt.Ports] += mt.Mass
	}
	want := map[PortSet]float64{
		MakePortSet(0, 1): 3,
		MakePortSet(0):    2,
		MakePortSet(2):    1,
	}
	if len(got) != len(want) {
		t.Fatalf("Flatten produced %v, want %v", got, want)
	}
	for ports, mass := range want {
		if math.Abs(got[ports]-mass) > 1e-12 {
			t.Errorf("mass[%s] = %g, want %g", ports, got[ports], mass)
		}
	}
}

func TestFlattenIntoReuse(t *testing.T) {
	m := paperExampleMapping()
	e1 := Experiment{{Inst: 0, Count: 1}}
	e2 := Experiment{{Inst: 1, Count: 5}}
	buf := m.FlattenInto(nil, e1)
	buf = m.FlattenInto(buf, e2)
	if len(buf) != 1 || buf[0].Ports != MakePortSet(0, 1) || buf[0].Mass != 5 {
		t.Errorf("FlattenInto reuse produced %v", buf)
	}
}

func TestFlattenSkipsZeroCounts(t *testing.T) {
	m := paperExampleMapping()
	e := Experiment{{Inst: 0, Count: 0}, {Inst: 1, Count: 1}}
	terms := m.Flatten(e)
	if len(terms) != 1 {
		t.Errorf("Flatten kept zero-count term: %v", terms)
	}
}

func TestExperimentNormalize(t *testing.T) {
	e := Experiment{{Inst: 3, Count: 1}, {Inst: 1, Count: 2}, {Inst: 3, Count: 2}, {Inst: 5, Count: 0}}
	n := e.Normalize()
	if len(n) != 2 {
		t.Fatalf("Normalize = %v", n)
	}
	if n[0] != (InstCount{1, 2}) || n[1] != (InstCount{3, 3}) {
		t.Errorf("Normalize = %v", n)
	}
	if e.TotalCount() != 5 {
		t.Errorf("TotalCount = %d, want 5", e.TotalCount())
	}
	if n.Key() != "1:2,3:3" {
		t.Errorf("Key = %q", n.Key())
	}
	if e.Key() != n.Key() {
		t.Error("Key should be order-independent")
	}
}

func TestExperimentClone(t *testing.T) {
	e := Experiment{{Inst: 1, Count: 2}}
	c := e.Clone()
	c[0].Count = 99
	if e[0].Count != 2 {
		t.Error("Clone shares storage")
	}
}

func TestMappingCloneAndEqual(t *testing.T) {
	m := paperExampleMapping()
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.Decomp[0][0].Count++
	if m.Equal(c) {
		t.Error("mutated clone still equal")
	}
	if m.Decomp[0][0].Count != 2 {
		t.Error("clone shares decomposition storage")
	}

	// Different port counts are unequal.
	o := paperExampleMapping()
	o.NumPorts = 4
	if m.Equal(o) {
		t.Error("mappings with different port counts equal")
	}
}

func TestIsTwoLevel(t *testing.T) {
	two := TwoLevelFromPorts(3, []PortSet{MakePortSet(0), MakePortSet(0, 1)})
	if !two.IsTwoLevel() {
		t.Error("TwoLevelFromPorts result not two-level")
	}
	if err := two.Validate(); err != nil {
		t.Errorf("two-level mapping invalid: %v", err)
	}
	three := paperExampleMapping()
	if three.IsTwoLevel() {
		t.Error("paper example (mul has 2 µops) reported as two-level")
	}
}

func TestMappingString(t *testing.T) {
	m := paperExampleMapping()
	s := m.String()
	if !strings.Contains(s, "mul: 2*p0") {
		t.Errorf("String missing mul decomposition:\n%s", s)
	}
	if !strings.Contains(s, "store: 1*p01 + 1*p2") {
		t.Errorf("String missing store decomposition:\n%s", s)
	}
}

func TestPortUsageTable(t *testing.T) {
	m := paperExampleMapping()
	s := m.PortUsageTable()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 {
		t.Fatalf("table has %d lines, want 5:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[1], "mul\t2\t.\t.") {
		t.Errorf("mul row = %q", lines[1])
	}
	if !strings.HasPrefix(lines[4], "store\t1\t1\t1") {
		t.Errorf("store row = %q", lines[4])
	}
}

func TestRandomMappingValid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		hints := make([]float64, 20)
		for i := range hints {
			hints[i] = 0.25 + rng.Float64()*4
		}
		m := Random(rng, RandomOptions{NumInsts: 20, NumPorts: 8, ThroughputHint: hints})
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: random mapping invalid: %v", trial, err)
		}
		if m.NumInsts() != 20 || m.NumPorts != 8 {
			t.Fatalf("trial %d: wrong dimensions", trial)
		}
		// Counts must respect the initialization bound ceil(t*(i)·|u|).
		for i, uops := range m.Decomp {
			hint := hints[i]
			if hint < 1 {
				hint = 1
			}
			for _, uc := range uops {
				bound := int(math.Ceil(hint * float64(uc.Ports.Count())))
				if uc.Count > bound {
					t.Errorf("trial %d inst %d: count %d exceeds bound %d",
						trial, i, uc.Count, bound)
				}
			}
		}
	}
}

func TestRandomMappingUsesMaxUops(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := Random(rng, RandomOptions{NumInsts: 100, NumPorts: 8, MaxUops: 2})
	for i, uops := range m.Decomp {
		if len(uops) > 2 {
			t.Fatalf("instruction %d has %d µops, want <= 2", i, len(uops))
		}
	}
}

func TestRandomPortSetNonEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		s := RandomPortSet(rng, 4)
		if s.IsEmpty() {
			t.Fatal("RandomPortSet returned empty set")
		}
		if !s.SubsetOf(FullPortSet(4)) {
			t.Fatalf("RandomPortSet returned out-of-range set %s", s)
		}
	}
}

func TestRandomExperiment(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		e := RandomExperiment(rng, 10, 5)
		if e.TotalCount() != 5 {
			t.Fatalf("experiment length %d, want 5", e.TotalCount())
		}
		for _, term := range e {
			if term.Inst < 0 || term.Inst >= 10 {
				t.Fatalf("instruction %d out of range", term.Inst)
			}
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m := paperExampleMapping()
	m.PortNames = []string{"P1", "P2", "P3"}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if !m.Equal(got) {
		t.Errorf("round-trip mapping differs:\n%s\nvs\n%s", m, got)
	}
	if got.InstNames[3] != "store" {
		t.Errorf("InstNames lost: %v", got.InstNames)
	}
	if got.PortNames[0] != "P1" {
		t.Errorf("PortNames lost: %v", got.PortNames)
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	bad := []string{
		`{`,
		`{"num_ports": 0, "instructions": []}`,
		`{"num_ports": 3, "instructions": [{"name":"x","uops":[]}]}`,
		`{"num_ports": 3, "instructions": [{"name":"x","uops":[{"ports":"bogus","count":1}]}]}`,
	}
	for _, s := range bad {
		if _, err := ReadJSON(strings.NewReader(s)); err == nil {
			t.Errorf("ReadJSON(%q) succeeded, want error", s)
		}
	}
}

func TestNewMappingPanicsOnBadPorts(t *testing.T) {
	for _, n := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMapping(1, %d) did not panic", n)
				}
			}()
			NewMapping(1, n)
		}()
	}
}
