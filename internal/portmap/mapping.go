package portmap

import (
	"fmt"
	"sort"
	"strings"
)

// UopCount is one edge bundle of the three-level mapping: n instances of
// the µop identified by the port set Ports in an instruction's
// decomposition (a labeled edge (i, n, u) ∈ N in Definition 4).
type UopCount struct {
	Ports PortSet
	Count int
}

// Experiment is a multiset of instructions, the input of the throughput
// model (Definition 3). Instructions are identified by their dense index
// in the ISA under test. Multiple terms with the same instruction are
// allowed and are summed.
type Experiment []InstCount

// InstCount is one term of an experiment multiset.
type InstCount struct {
	Inst  int
	Count int
}

// TotalCount returns the total number of instruction instances
// (the "length" of the experiment in the paper's terminology).
func (e Experiment) TotalCount() int {
	n := 0
	for _, t := range e {
		n += t.Count
	}
	return n
}

// Clone returns a deep copy of the experiment.
func (e Experiment) Clone() Experiment {
	return append(Experiment(nil), e...)
}

// Normalize returns an equivalent experiment with terms merged by
// instruction, zero-count terms dropped, and terms sorted by instruction
// index. Normalize is used to produce canonical keys for experiment sets.
func (e Experiment) Normalize() Experiment {
	counts := make(map[int]int, len(e))
	for _, t := range e {
		counts[t.Inst] += t.Count
	}
	out := make(Experiment, 0, len(counts))
	for inst, c := range counts {
		if c != 0 {
			out = append(out, InstCount{Inst: inst, Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Inst < out[j].Inst })
	return out
}

// Key returns a canonical string key for the experiment multiset,
// independent of term order.
func (e Experiment) Key() string {
	n := e.Normalize()
	parts := make([]string, len(n))
	for i, t := range n {
		parts[i] = fmt.Sprintf("%d:%d", t.Inst, t.Count)
	}
	return strings.Join(parts, ",")
}

// MassTerm is a µop mass in the two-level model: Mass units of work that
// must be distributed over the ports in Ports. The slice of MassTerms for
// an experiment is the input of both throughput engines.
type MassTerm struct {
	Ports PortSet
	Mass  float64
}

// Mapping is a port mapping in the three-level model (Definition 4).
// Each instruction of the ISA under test decomposes into a multiset of
// µops; each µop is identified with the set of ports that can execute it
// (§4.4). A two-level mapping (Definition 2) is the special case where
// every instruction has exactly one µop with count 1.
type Mapping struct {
	// NumPorts is |P|, the number of execution ports.
	NumPorts int
	// Decomp maps each instruction index to its µop decomposition.
	// The inner slices are sorted by port set for canonical form.
	Decomp [][]UopCount
	// InstNames optionally names the instructions for rendering and
	// serialization; if nil, instructions render as "I<n>".
	InstNames []string
	// PortNames optionally names the ports; if nil, ports render as
	// "P<n>".
	PortNames []string

	// fps caches per-instruction decomposition fingerprints (0: not
	// cached); see fingerprint.go. Maintained by the mutating methods.
	fps []uint64
}

// NewMapping creates a mapping for numInsts instructions over numPorts
// ports with empty decompositions. Decompositions must be populated with
// SetDecomp before the mapping is valid.
func NewMapping(numInsts, numPorts int) *Mapping {
	if numPorts <= 0 || numPorts > MaxPorts {
		panic(fmt.Sprintf("portmap: invalid port count %d", numPorts))
	}
	return &Mapping{
		NumPorts: numPorts,
		Decomp:   make([][]UopCount, numInsts),
		fps:      make([]uint64, numInsts),
	}
}

// NumInsts returns the number of instructions covered by the mapping.
func (m *Mapping) NumInsts() int { return len(m.Decomp) }

// SetDecomp replaces the decomposition of instruction i. The µops are
// merged by port set, zero counts dropped, and sorted canonically.
func (m *Mapping) SetDecomp(inst int, uops []UopCount) {
	m.Decomp[inst] = canonicalizeUops(uops)
	m.cacheFingerprint(inst)
}

// AddUop adds n instances of µop u to instruction i's decomposition.
func (m *Mapping) AddUop(inst int, u PortSet, n int) {
	m.Decomp[inst] = canonicalizeUops(append(m.Decomp[inst], UopCount{Ports: u, Count: n}))
	m.cacheFingerprint(inst)
}

// SetUopCount sets the count of the j-th µop of instruction inst in
// place, keeping the decomposition canonical (the port set, and hence the
// sort order, is unchanged). count must be positive; use RemoveUopAt to
// drop a µop. Local search uses this to probe ±1 count adjustments
// without cloning the mapping.
func (m *Mapping) SetUopCount(inst, j, count int) {
	if count <= 0 {
		panic(fmt.Sprintf("portmap: SetUopCount(%d, %d, %d): non-positive count", inst, j, count))
	}
	m.Decomp[inst][j].Count = count
	m.cacheFingerprint(inst)
}

// RemoveUopAt removes and returns the j-th µop of instruction inst,
// preserving the canonical order of the remaining µops. The removed µop
// can be restored with InsertUopAt(inst, j, uc).
func (m *Mapping) RemoveUopAt(inst, j int) UopCount {
	d := m.Decomp[inst]
	uc := d[j]
	m.Decomp[inst] = append(d[:j], d[j+1:]...)
	m.cacheFingerprint(inst)
	return uc
}

// InsertUopAt inserts µop uc at position j of instruction inst's
// decomposition. The caller must preserve the canonical order (sorted by
// port set, distinct port sets) — the inverse of RemoveUopAt does.
func (m *Mapping) InsertUopAt(inst, j int, uc UopCount) {
	d := append(m.Decomp[inst], UopCount{})
	copy(d[j+1:], d[j:])
	d[j] = uc
	m.Decomp[inst] = d
	m.cacheFingerprint(inst)
}

// canonSortCutoff bounds the decomposition size up to which
// canonicalization sorts a copy in place and merges adjacent runs;
// decompositions are small (≤ |P| distinct µops in practice), so the
// map-based path is the rare fallback. Both paths produce the identical
// canonical form (sorted by port set, merged, positive counts).
const canonSortCutoff = 24

func canonicalizeUops(uops []UopCount) []UopCount {
	if len(uops) > canonSortCutoff {
		return canonicalizeUopsMap(uops)
	}
	out := append(make([]UopCount, 0, len(uops)), uops...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Ports < out[j-1].Ports; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	w := 0
	for r := 0; r < len(out); {
		ports := out[r].Ports
		total := 0
		for ; r < len(out) && out[r].Ports == ports; r++ {
			total += out[r].Count
		}
		if total > 0 {
			out[w] = UopCount{Ports: ports, Count: total}
			w++
		}
	}
	return out[:w]
}

func canonicalizeUopsMap(uops []UopCount) []UopCount {
	merged := make(map[PortSet]int, len(uops))
	for _, uc := range uops {
		merged[uc.Ports] += uc.Count
	}
	out := make([]UopCount, 0, len(merged))
	for ports, count := range merged {
		if count > 0 {
			out = append(out, UopCount{Ports: ports, Count: count})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ports < out[j].Ports })
	return out
}

// Validate checks structural invariants: every instruction has a
// non-empty decomposition, every µop has at least one port within range,
// and counts are positive.
func (m *Mapping) Validate() error {
	if m.NumPorts <= 0 || m.NumPorts > MaxPorts {
		return fmt.Errorf("portmap: invalid port count %d", m.NumPorts)
	}
	all := FullPortSet(m.NumPorts)
	for i, uops := range m.Decomp {
		if len(uops) == 0 {
			return fmt.Errorf("portmap: instruction %s has no µops", m.instName(i))
		}
		for _, uc := range uops {
			if uc.Ports.IsEmpty() {
				return fmt.Errorf("portmap: instruction %s has a µop with no ports", m.instName(i))
			}
			if !uc.Ports.SubsetOf(all) {
				return fmt.Errorf("portmap: instruction %s uses ports outside 0..%d: %s",
					m.instName(i), m.NumPorts-1, uc.Ports)
			}
			if uc.Count <= 0 {
				return fmt.Errorf("portmap: instruction %s has non-positive µop count %d",
					m.instName(i), uc.Count)
			}
		}
	}
	return nil
}

func (m *Mapping) instName(i int) string {
	if m.InstNames != nil && i < len(m.InstNames) {
		return m.InstNames[i]
	}
	return fmt.Sprintf("I%d", i)
}

func (m *Mapping) portName(k int) string {
	if m.PortNames != nil && k < len(m.PortNames) {
		return m.PortNames[k]
	}
	return fmt.Sprintf("P%d", k)
}

// Clone returns a deep copy of the mapping (names are shared; they are
// immutable by convention).
func (m *Mapping) Clone() *Mapping {
	cp := &Mapping{
		NumPorts:  m.NumPorts,
		Decomp:    make([][]UopCount, len(m.Decomp)),
		InstNames: m.InstNames,
		PortNames: m.PortNames,
	}
	for i, uops := range m.Decomp {
		cp.Decomp[i] = append([]UopCount(nil), uops...)
	}
	if m.fps != nil {
		cp.fps = append([]uint64(nil), m.fps...)
	}
	return cp
}

// Equal reports whether the two mappings have identical structure
// (port count and canonical decompositions; names are ignored).
func (m *Mapping) Equal(o *Mapping) bool {
	if m.NumPorts != o.NumPorts || len(m.Decomp) != len(o.Decomp) {
		return false
	}
	for i := range m.Decomp {
		a, b := m.Decomp[i], o.Decomp[i]
		if len(a) != len(b) {
			return false
		}
		for j := range a {
			if a[j] != b[j] {
				return false
			}
		}
	}
	return true
}

// IsTwoLevel reports whether the mapping is expressible in the two-level
// model: each instruction has exactly one µop with count 1.
func (m *Mapping) IsTwoLevel() bool {
	for _, uops := range m.Decomp {
		if len(uops) != 1 || uops[0].Count != 1 {
			return false
		}
	}
	return true
}

// TwoLevelFromPorts builds a two-level mapping: instruction i can execute
// on exactly the ports in ports[i], as a single µop.
func TwoLevelFromPorts(numPorts int, ports []PortSet) *Mapping {
	m := NewMapping(len(ports), numPorts)
	for i, p := range ports {
		m.Decomp[i] = []UopCount{{Ports: p, Count: 1}}
		m.cacheFingerprint(i)
	}
	return m
}

// Volume returns the µop volume V(m) = Σ_(i,n,u) n·|u| over all
// instructions (§4.4). A smaller volume indicates a more compact and
// interpretable mapping.
func (m *Mapping) Volume() int {
	v := 0
	for _, uops := range m.Decomp {
		for _, uc := range uops {
			v += uc.Count * uc.Ports.Count()
		}
	}
	return v
}

// VolumeOf returns the µop volume restricted to the given instructions.
func (m *Mapping) VolumeOf(insts []int) int {
	v := 0
	for _, i := range insts {
		for _, uc := range m.Decomp[i] {
			v += uc.Count * uc.Ports.Count()
		}
	}
	return v
}

// DistinctUops returns the sorted set of distinct µops (port sets) used
// anywhere in the mapping. Table 2 reports its size.
func (m *Mapping) DistinctUops() []PortSet {
	seen := make(map[PortSet]bool)
	for _, uops := range m.Decomp {
		for _, uc := range uops {
			seen[uc.Ports] = true
		}
	}
	out := make([]PortSet, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UopCountOf returns the total number of µop instances in instruction
// i's decomposition (Σ n over its edges).
func (m *Mapping) UopCountOf(inst int) int {
	n := 0
	for _, uc := range m.Decomp[inst] {
		n += uc.Count
	}
	return n
}

// Flatten reduces the three-level throughput problem for experiment e to
// the two-level model (§3.2): it returns the µop masses e'(u) =
// Σ_(i,n,u) e(i)·n, grouped by µop. The result is the input for the
// throughput engines.
func (m *Mapping) Flatten(e Experiment) []MassTerm {
	return m.FlattenInto(nil, e)
}

// FlattenInto is Flatten appending into dst to avoid allocation in hot
// loops. dst may be nil.
func (m *Mapping) FlattenInto(dst []MassTerm, e Experiment) []MassTerm {
	dst = dst[:0]
	for _, t := range e {
		if t.Count == 0 {
			continue
		}
		for _, uc := range m.Decomp[t.Inst] {
			mass := float64(t.Count * uc.Count)
			// Linear scan: experiments have few distinct µops.
			found := false
			for j := range dst {
				if dst[j].Ports == uc.Ports {
					dst[j].Mass += mass
					found = true
					break
				}
			}
			if !found {
				dst = append(dst, MassTerm{Ports: uc.Ports, Mass: mass})
			}
		}
	}
	return dst
}

// String renders the mapping in a compact human-readable form, one
// instruction per line:
//
//	add_r64_r64: 1*p015
//	store_m64_r64: 1*p23 + 1*p4
func (m *Mapping) String() string {
	var b strings.Builder
	for i, uops := range m.Decomp {
		fmt.Fprintf(&b, "%s:", m.instName(i))
		if len(uops) == 0 {
			b.WriteString(" (none)")
		}
		for j, uc := range uops {
			if j > 0 {
				b.WriteString(" +")
			}
			fmt.Fprintf(&b, " %d*%s", uc.Count, uc.Ports.CompactName())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// PortUsageTable renders a port-by-instruction usage matrix similar to
// uops.info's tables: for each instruction, which ports its µops may use.
func (m *Mapping) PortUsageTable() string {
	var b strings.Builder
	b.WriteString("instruction")
	for k := 0; k < m.NumPorts; k++ {
		fmt.Fprintf(&b, "\t%s", m.portName(k))
	}
	b.WriteByte('\n')
	for i, uops := range m.Decomp {
		b.WriteString(m.instName(i))
		for k := 0; k < m.NumPorts; k++ {
			n := 0
			for _, uc := range uops {
				if uc.Ports.Has(k) {
					n += uc.Count
				}
			}
			if n == 0 {
				b.WriteString("\t.")
			} else {
				fmt.Fprintf(&b, "\t%d", n)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
