// Package portmap defines port mappings in the two-level and three-level
// models of the paper (§3.1, §3.2), µop decompositions, and the reduction
// from the three-level to the two-level model.
//
// Following §4.4, a µop is identified with the set of ports that can
// execute it: a three-level mapping assigns each instruction a multiset of
// port sets. Port sets are represented as bitmasks over at most 64 ports.
package portmap

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxPorts is the maximum number of execution ports a mapping can model.
// Real machines have at most ~10 (paper §4.5); 64 leaves ample room for
// the Figure 8 port-count sweep.
const MaxPorts = 64

// PortSet is a set of execution ports, represented as a bitmask.
// Port k is a member iff bit k is set. The empty set is invalid as a µop
// (a µop must be executable somewhere) but valid as a neutral value.
type PortSet uint64

// SinglePort returns the set containing only port k.
func SinglePort(k int) PortSet {
	if k < 0 || k >= MaxPorts {
		panic(fmt.Sprintf("portmap: port %d out of range", k))
	}
	return PortSet(1) << uint(k)
}

// MakePortSet returns the set containing exactly the given ports.
func MakePortSet(ports ...int) PortSet {
	var s PortSet
	for _, k := range ports {
		s |= SinglePort(k)
	}
	return s
}

// FullPortSet returns the set {0, ..., n-1}.
func FullPortSet(n int) PortSet {
	if n < 0 || n > MaxPorts {
		panic(fmt.Sprintf("portmap: port count %d out of range", n))
	}
	if n == MaxPorts {
		return ^PortSet(0)
	}
	return (PortSet(1) << uint(n)) - 1
}

// Has reports whether port k is in the set.
func (s PortSet) Has(k int) bool { return s&SinglePort(k) != 0 }

// With returns the set with port k added.
func (s PortSet) With(k int) PortSet { return s | SinglePort(k) }

// Without returns the set with port k removed.
func (s PortSet) Without(k int) PortSet { return s &^ SinglePort(k) }

// Union returns the union of the two sets.
func (s PortSet) Union(t PortSet) PortSet { return s | t }

// Intersect returns the intersection of the two sets.
func (s PortSet) Intersect(t PortSet) PortSet { return s & t }

// SubsetOf reports whether s ⊆ t.
func (s PortSet) SubsetOf(t PortSet) bool { return s&^t == 0 }

// IsEmpty reports whether the set has no ports.
func (s PortSet) IsEmpty() bool { return s == 0 }

// Count returns the number of ports in the set. In the paper's notation
// this is the width |u| of the µop u (§4.4).
func (s PortSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Ports returns the member ports in increasing order.
func (s PortSet) Ports() []int {
	out := make([]int, 0, s.Count())
	for v := uint64(s); v != 0; {
		k := bits.TrailingZeros64(v)
		out = append(out, k)
		v &= v - 1
	}
	return out
}

// Min returns the smallest member port, or -1 if the set is empty.
func (s PortSet) Min() int {
	if s == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(s))
}

// String renders the set like "{P0,P1,P5}".
func (s PortSet) String() string {
	if s == 0 {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, k := range s.Ports() {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "P%d", k)
	}
	b.WriteByte('}')
	return b.String()
}

// CompactName renders the set in uops.info style, e.g. "p015" for
// {P0,P1,P5}. Ports ≥ 10 are rendered in brackets, e.g. "p0[12]".
func (s PortSet) CompactName() string {
	if s == 0 {
		return "p-"
	}
	var b strings.Builder
	b.WriteByte('p')
	for _, k := range s.Ports() {
		if k < 10 {
			fmt.Fprintf(&b, "%d", k)
		} else {
			fmt.Fprintf(&b, "[%d]", k)
		}
	}
	return b.String()
}

// ParsePortSet parses the String form "{P0,P1}" or the compact form
// "p01". An empty set is written "{}" or "p-".
func ParsePortSet(s string) (PortSet, error) {
	orig := s
	switch {
	case s == "{}" || s == "p-":
		return 0, nil
	case strings.HasPrefix(s, "{") && strings.HasSuffix(s, "}"):
		var out PortSet
		for _, part := range strings.Split(s[1:len(s)-1], ",") {
			part = strings.TrimSpace(part)
			if !strings.HasPrefix(part, "P") {
				return 0, fmt.Errorf("portmap: bad port %q in %q", part, orig)
			}
			var k int
			if _, err := fmt.Sscanf(part, "P%d", &k); err != nil {
				return 0, fmt.Errorf("portmap: bad port %q in %q", part, orig)
			}
			if k < 0 || k >= MaxPorts {
				return 0, fmt.Errorf("portmap: port %d out of range in %q", k, orig)
			}
			out = out.With(k)
		}
		return out, nil
	case strings.HasPrefix(s, "p"):
		var out PortSet
		rest := s[1:]
		for len(rest) > 0 {
			if rest[0] == '[' {
				end := strings.IndexByte(rest, ']')
				if end < 0 {
					return 0, fmt.Errorf("portmap: unterminated bracket in %q", orig)
				}
				var k int
				if _, err := fmt.Sscanf(rest[1:end], "%d", &k); err != nil || k < 0 || k >= MaxPorts {
					return 0, fmt.Errorf("portmap: bad bracketed port in %q", orig)
				}
				out = out.With(k)
				rest = rest[end+1:]
			} else {
				if rest[0] < '0' || rest[0] > '9' {
					return 0, fmt.Errorf("portmap: bad character %q in %q", rest[0], orig)
				}
				out = out.With(int(rest[0] - '0'))
				rest = rest[1:]
			}
		}
		return out, nil
	default:
		return 0, fmt.Errorf("portmap: cannot parse port set %q", orig)
	}
}
