package portmap

import (
	"math/rand"
	"testing"
)

// TestFingerprintCanonicalInvariance: the fingerprint depends only on the
// µop multiset, not on the order or fragmentation SetDecomp was fed.
func TestFingerprintCanonicalInvariance(t *testing.T) {
	a := NewMapping(1, 4)
	a.SetDecomp(0, []UopCount{
		{Ports: MakePortSet(0, 1), Count: 2},
		{Ports: MakePortSet(2), Count: 1},
	})
	b := NewMapping(1, 4)
	b.SetDecomp(0, []UopCount{
		{Ports: MakePortSet(2), Count: 1},
		{Ports: MakePortSet(0, 1), Count: 1},
		{Ports: MakePortSet(0, 1), Count: 1},
	})
	if a.Fingerprint(0) != b.Fingerprint(0) {
		t.Error("equal decompositions have different fingerprints")
	}
	if a.FingerprintAll() != b.FingerprintAll() {
		t.Error("equal mappings have different whole-mapping fingerprints")
	}
}

// TestFingerprintTracksMutations: every mutating method keeps the cached
// fingerprint consistent with a fresh recomputation, and distinct
// decompositions get distinct fingerprints.
func TestFingerprintTracksMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	check := func(m *Mapping, what string) {
		t.Helper()
		for i := range m.Decomp {
			if got, want := m.Fingerprint(i), FingerprintDecomp(m.Decomp[i]); got != want {
				t.Fatalf("%s: inst %d: cached fingerprint %#x != recomputed %#x", what, i, got, want)
			}
		}
	}
	for trial := 0; trial < 50; trial++ {
		m := Random(rng, RandomOptions{NumInsts: 6, NumPorts: 5, MaxUops: 3})
		check(m, "Random")
		cp := m.Clone()
		check(cp, "Clone")
		if cp.FingerprintAll() != m.FingerprintAll() {
			t.Fatal("clone has different whole-mapping fingerprint")
		}

		i := rng.Intn(6)
		before := cp.Fingerprint(i)
		cp.AddUop(i, RandomPortSet(rng, 5), 1+rng.Intn(2))
		check(cp, "AddUop")
		if cp.Fingerprint(i) == before {
			t.Fatal("AddUop did not change the fingerprint")
		}
		if m.Fingerprint(i) != before {
			t.Fatal("AddUop on a clone changed the original's fingerprint")
		}

		j := rng.Intn(len(cp.Decomp[i]))
		cp.SetUopCount(i, j, cp.Decomp[i][j].Count+1)
		check(cp, "SetUopCount")

		if len(cp.Decomp[i]) > 1 {
			uc := cp.RemoveUopAt(i, j)
			check(cp, "RemoveUopAt")
			cp.InsertUopAt(i, j, uc)
			check(cp, "InsertUopAt")
		}

		cp.SetDecomp(i, m.Decomp[i])
		check(cp, "SetDecomp")
		if cp.Fingerprint(i) != before {
			t.Fatal("restoring the decomposition did not restore the fingerprint")
		}
	}
}

// TestFingerprintRemoveInsertRoundTrip: RemoveUopAt followed by
// InsertUopAt at the same position is an exact inverse (the local-search
// revert path).
func TestFingerprintRemoveInsertRoundTrip(t *testing.T) {
	m := NewMapping(1, 4)
	m.SetDecomp(0, []UopCount{
		{Ports: MakePortSet(0), Count: 2},
		{Ports: MakePortSet(1, 2), Count: 1},
		{Ports: MakePortSet(3), Count: 3},
	})
	want := m.Clone()
	for j := 0; j < 3; j++ {
		uc := m.RemoveUopAt(0, j)
		if len(m.Decomp[0]) != 2 {
			t.Fatalf("j=%d: removal left %d µops", j, len(m.Decomp[0]))
		}
		m.InsertUopAt(0, j, uc)
		if !m.Equal(want) {
			t.Fatalf("j=%d: round trip changed the mapping:\n%s", j, m)
		}
		if m.Fingerprint(0) != want.Fingerprint(0) {
			t.Fatalf("j=%d: round trip changed the fingerprint", j)
		}
	}
}

// TestFingerprintPureFallback: mappings built without the mutating
// methods (struct literals, direct Decomp writes) still produce correct
// fingerprints, and InvalidateFingerprints recovers from direct writes.
func TestFingerprintPureFallback(t *testing.T) {
	lit := &Mapping{
		NumPorts: 3,
		Decomp:   [][]UopCount{{{Ports: MakePortSet(0, 1), Count: 1}}},
	}
	built := NewMapping(1, 3)
	built.SetDecomp(0, []UopCount{{Ports: MakePortSet(0, 1), Count: 1}})
	if lit.Fingerprint(0) != built.Fingerprint(0) {
		t.Error("literal-built mapping fingerprint differs from SetDecomp-built")
	}
	if lit.FingerprintAll() != built.FingerprintAll() {
		t.Error("literal-built whole-mapping fingerprint differs")
	}

	built.Decomp[0][0].Count = 2 // direct write: cache is stale by contract
	built.InvalidateFingerprints()
	fresh := NewMapping(1, 3)
	fresh.SetDecomp(0, []UopCount{{Ports: MakePortSet(0, 1), Count: 2}})
	if built.Fingerprint(0) != fresh.Fingerprint(0) {
		t.Error("InvalidateFingerprints did not recover from a direct write")
	}
}

// TestFingerprintDistinctness samples random decomposition pairs and
// checks they do not collide (probabilistic; a failure here indicates a
// broken hash, not bad luck).
func TestFingerprintDistinctness(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	seen := make(map[uint64][]UopCount)
	for trial := 0; trial < 2000; trial++ {
		d := randomDecomp(rng, 6, 3, 2)
		fp := FingerprintDecomp(d)
		if fp == 0 {
			t.Fatal("fingerprint 0 is reserved as the not-cached sentinel")
		}
		if prev, ok := seen[fp]; ok && !uopsEqual(prev, d) {
			t.Fatalf("collision: %v and %v -> %#x", prev, d, fp)
		}
		seen[fp] = d
	}
}

func uopsEqual(a, b []UopCount) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCheckFingerprints is the always-available form of the pmevodebug
// assertion: it must accept mappings maintained through the mutating
// methods and name the instruction whose cache went stale after a direct
// Decomp write.
func TestCheckFingerprints(t *testing.T) {
	m := NewMapping(3, 4)
	for i := 0; i < 3; i++ {
		m.SetDecomp(i, []UopCount{{Ports: MakePortSet(i), Count: 1 + i}})
	}
	if err := m.CheckFingerprints(); err != nil {
		t.Fatalf("clean mapping rejected: %v", err)
	}
	m.Decomp[1] = []UopCount{{Ports: MakePortSet(0, 2), Count: 5}}
	if err := m.CheckFingerprints(); err == nil {
		t.Fatal("stale fingerprint not detected")
	}
	m.InvalidateFingerprints()
	if err := m.CheckFingerprints(); err != nil {
		t.Fatalf("invalidated mapping rejected: %v", err)
	}
}
