package portmap

// Port identities are not observable from throughput measurements: any
// permutation of the ports yields a mapping with identical predicted
// throughput for every experiment. This file provides permutation
// utilities so inferred mappings can be compared against references (the
// evaluation uses them; the paper makes the same point in §4.4: found
// mappings "are not necessarily identical to the port mappings that are
// really used in the processor").

// PermutePorts returns a copy of the mapping with port k renamed to
// perm[k]. perm must be a permutation of 0..NumPorts-1.
func (m *Mapping) PermutePorts(perm []int) *Mapping {
	if len(perm) != m.NumPorts {
		panic("portmap: permutation length mismatch")
	}
	seen := make([]bool, m.NumPorts)
	for _, p := range perm {
		if p < 0 || p >= m.NumPorts || seen[p] {
			panic("portmap: not a permutation")
		}
		seen[p] = true
	}
	out := NewMapping(m.NumInsts(), m.NumPorts)
	out.InstNames = m.InstNames
	if m.PortNames != nil {
		names := make([]string, m.NumPorts)
		for k, name := range m.PortNames {
			if k < m.NumPorts {
				names[perm[k]] = name
			}
		}
		out.PortNames = names
	}
	for i, uops := range m.Decomp {
		mapped := make([]UopCount, len(uops))
		for j, uc := range uops {
			var ports PortSet
			for _, k := range uc.Ports.Ports() {
				ports = ports.With(perm[k])
			}
			mapped[j] = UopCount{Ports: ports, Count: uc.Count}
		}
		out.SetDecomp(i, mapped)
	}
	return out
}

// EquivalentUpToPermutation reports whether some renaming of b's ports
// makes it structurally equal to a. It enumerates permutations and is
// intended for mappings with at most ~8 ports (the evaluation machines);
// it panics above 10 ports.
func EquivalentUpToPermutation(a, b *Mapping) bool {
	if a.NumPorts != b.NumPorts || a.NumInsts() != b.NumInsts() {
		return false
	}
	if a.NumPorts > 10 {
		panic("portmap: permutation search limited to 10 ports")
	}
	perm := make([]int, a.NumPorts)
	used := make([]bool, a.NumPorts)
	var try func(k int) bool
	try = func(k int) bool {
		if k == a.NumPorts {
			return a.Equal(b.PermutePorts(perm))
		}
		for p := 0; p < a.NumPorts; p++ {
			if used[p] {
				continue
			}
			perm[k] = p
			used[p] = true
			if try(k + 1) {
				used[p] = false
				return true
			}
			used[p] = false
		}
		return false
	}
	return try(0)
}

// PortUsageSignature returns, per port, the total µop count that may use
// it (an invariant under instruction order, useful as a quick
// permutation-invariant fingerprint when sorted).
func (m *Mapping) PortUsageSignature() []int {
	sig := make([]int, m.NumPorts)
	for _, uops := range m.Decomp {
		for _, uc := range uops {
			for _, k := range uc.Ports.Ports() {
				sig[k] += uc.Count
			}
		}
	}
	return sig
}
