//go:build pmevodebug

package portmap

// debugFingerprints: this build verifies every cached fingerprint read
// against a recomputation (see Fingerprint), trading speed for an
// immediate panic at the first stale read after a direct Mapping.Decomp
// write.
const debugFingerprints = true
