//go:build pmevodebug

package portmap

import "testing"

// TestDebugFingerprintPanicsOnStaleRead pins the `pmevodebug` assertion:
// after a direct Decomp write (bypassing the fingerprint-maintaining
// methods), the very next Fingerprint read must panic instead of
// silently feeding a stale key into the engine's memo.
func TestDebugFingerprintPanicsOnStaleRead(t *testing.T) {
	m := NewMapping(2, 4)
	m.SetDecomp(0, []UopCount{{Ports: MakePortSet(0), Count: 1}})
	m.SetDecomp(1, []UopCount{{Ports: MakePortSet(1), Count: 1}})

	// The footgun: direct write without InvalidateFingerprints.
	m.Decomp[0] = []UopCount{{Ports: MakePortSet(0, 1), Count: 2}}

	defer func() {
		if recover() == nil {
			t.Fatal("stale fingerprint read did not panic under pmevodebug")
		}
	}()
	m.Fingerprint(0)
}

// TestDebugFingerprintCleanReads: reads through the maintained methods
// and after InvalidateFingerprints must not panic.
func TestDebugFingerprintCleanReads(t *testing.T) {
	m := NewMapping(1, 4)
	m.SetDecomp(0, []UopCount{{Ports: MakePortSet(0), Count: 1}})
	m.Fingerprint(0)
	m.Decomp[0] = []UopCount{{Ports: MakePortSet(1), Count: 1}}
	m.InvalidateFingerprints()
	if m.Fingerprint(0) != FingerprintDecomp(m.Decomp[0]) {
		t.Fatal("fingerprint after invalidation does not match decomposition")
	}
}
