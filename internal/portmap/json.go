package portmap

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonMapping is the serialized form of a Mapping. µops are stored in
// the compact "p015" notation for readability.
type jsonMapping struct {
	NumPorts  int        `json:"num_ports"`
	PortNames []string   `json:"port_names,omitempty"`
	Insts     []jsonInst `json:"instructions"`
}

type jsonInst struct {
	Name string    `json:"name"`
	Uops []jsonUop `json:"uops"`
}

type jsonUop struct {
	Ports string `json:"ports"`
	Count int    `json:"count"`
}

// MarshalJSON implements json.Marshaler.
func (m *Mapping) MarshalJSON() ([]byte, error) {
	jm := jsonMapping{
		NumPorts:  m.NumPorts,
		PortNames: m.PortNames,
		Insts:     make([]jsonInst, len(m.Decomp)),
	}
	for i, uops := range m.Decomp {
		ji := jsonInst{Name: m.instName(i), Uops: make([]jsonUop, len(uops))}
		for j, uc := range uops {
			ji.Uops[j] = jsonUop{Ports: uc.Ports.CompactName(), Count: uc.Count}
		}
		jm.Insts[i] = ji
	}
	return json.Marshal(jm)
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Mapping) UnmarshalJSON(data []byte) error {
	var jm jsonMapping
	if err := json.Unmarshal(data, &jm); err != nil {
		return err
	}
	if jm.NumPorts <= 0 || jm.NumPorts > MaxPorts {
		return fmt.Errorf("portmap: invalid port count %d in JSON", jm.NumPorts)
	}
	m.NumPorts = jm.NumPorts
	m.PortNames = jm.PortNames
	m.Decomp = make([][]UopCount, len(jm.Insts))
	m.fps = make([]uint64, len(jm.Insts))
	m.InstNames = make([]string, len(jm.Insts))
	for i, ji := range jm.Insts {
		m.InstNames[i] = ji.Name
		uops := make([]UopCount, 0, len(ji.Uops))
		for _, ju := range ji.Uops {
			ps, err := ParsePortSet(ju.Ports)
			if err != nil {
				return fmt.Errorf("portmap: instruction %q: %v", ji.Name, err)
			}
			uops = append(uops, UopCount{Ports: ps, Count: ju.Count})
		}
		m.Decomp[i] = canonicalizeUops(uops)
		m.cacheFingerprint(i)
	}
	return nil
}

// WriteJSON writes the mapping as indented JSON.
func (m *Mapping) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadJSON parses a mapping from JSON.
func ReadJSON(r io.Reader) (*Mapping, error) {
	var m Mapping
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
