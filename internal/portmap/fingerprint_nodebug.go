//go:build !pmevodebug

package portmap

// debugFingerprints gates the stale-fingerprint assertion in
// Fingerprint. The release build compiles the check away; build with
// `-tags pmevodebug` (CI runs the core packages this way) to catch
// direct Mapping.Decomp writes that skipped InvalidateFingerprints.
const debugFingerprints = false
