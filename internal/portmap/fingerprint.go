package portmap

import "fmt"

// Decomposition fingerprints: every instruction's µop decomposition has a
// 64-bit fingerprint, a hash of its canonical []UopCount form. Two
// decompositions with the same multiset of µops have the same fingerprint;
// distinct decompositions collide with probability ~2^-64. The engine's
// throughput memo and the evolutionary algorithm's duplicate-candidate
// skip treat fingerprint equality as decomposition equality.
//
// Fingerprints are maintained eagerly by every mutating method of Mapping
// (SetDecomp, AddUop, SetUopCount, RemoveUopAt, InsertUopAt) and copied by
// Clone, so reading them (Fingerprint, FingerprintAll) never writes shared
// state and is safe under concurrent evaluation. Code that writes
// Mapping.Decomp directly must call InvalidateFingerprints afterwards;
// mappings built as struct literals need no call (uncached entries are
// recomputed on demand).

// fpSeed is the fingerprint chain seed (the golden-ratio constant).
const fpSeed uint64 = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 finalizer, a strong 64-bit bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// CombineFingerprints chains fingerprint fp into hash state h: the
// mixing step shared by FingerprintAll and the engine's per-experiment
// memo keys (which hash the fingerprint tuple of an experiment's
// instructions).
func CombineFingerprints(h, fp uint64) uint64 {
	return mix64(h ^ fp)
}

// FingerprintDecomp hashes a canonical µop decomposition (merged by port
// set, sorted — the form every Mapping.Decomp entry is kept in). The
// result is never 0, so 0 can serve as a "not cached" sentinel.
func FingerprintDecomp(uops []UopCount) uint64 {
	h := fpSeed
	for _, uc := range uops {
		h = mix64(h ^ uint64(uc.Ports))
		h = mix64(h ^ uint64(uc.Count))
	}
	if h == 0 {
		return 1
	}
	return h
}

// Fingerprint returns the fingerprint of instruction inst's decomposition.
// It reads the cache maintained by the mutating methods and recomputes
// (without caching, so concurrent reads stay write-free) when the entry is
// absent.
//
// Under the `pmevodebug` build tag every cached read is verified against
// a recomputation and panics on mismatch, catching the one way to corrupt
// the engine's memo layer: writing Mapping.Decomp directly without
// calling InvalidateFingerprints. The release build skips the check (the
// comparison would double the cost of the hottest read in the engine).
func (m *Mapping) Fingerprint(inst int) uint64 {
	if inst < len(m.fps) {
		if fp := m.fps[inst]; fp != 0 {
			if debugFingerprints && fp != FingerprintDecomp(m.Decomp[inst]) {
				panic(fmt.Sprintf(
					"portmap: instruction %d has a stale cached fingerprint: Decomp was written directly without InvalidateFingerprints", inst))
			}
			return fp
		}
	}
	return FingerprintDecomp(m.Decomp[inst])
}

// CheckFingerprints verifies every cached fingerprint against its
// decomposition and reports the first stale entry. It is the always-
// available form of the `pmevodebug` assertion, for tests and debugging
// sessions that suspect a direct Decomp write.
func (m *Mapping) CheckFingerprints() error {
	for i := range m.Decomp {
		if i < len(m.fps) && m.fps[i] != 0 && m.fps[i] != FingerprintDecomp(m.Decomp[i]) {
			return fmt.Errorf(
				"portmap: instruction %d has a stale cached fingerprint: Decomp was written directly without InvalidateFingerprints", i)
		}
	}
	return nil
}

// FingerprintAll returns a fingerprint of the whole mapping: the port
// count and every instruction's decomposition fingerprint, chained in
// instruction order. Equal mappings (Equal) have equal FingerprintAll;
// the evolutionary algorithm uses it to skip re-evaluating duplicate
// candidates.
func (m *Mapping) FingerprintAll() uint64 {
	h := mix64(fpSeed ^ uint64(m.NumPorts))
	for i := range m.Decomp {
		h = mix64(h ^ m.Fingerprint(i))
	}
	return h
}

// InvalidateFingerprints drops all cached fingerprints. Call it after
// writing Mapping.Decomp directly (bypassing the mutating methods);
// subsequent reads recompute from the decompositions.
func (m *Mapping) InvalidateFingerprints() {
	for i := range m.fps {
		m.fps[i] = 0
	}
}

// cacheFingerprint stores the fingerprint of instruction inst, growing
// the cache if the mapping was built without one.
func (m *Mapping) cacheFingerprint(inst int) {
	if m.fps == nil || len(m.fps) < len(m.Decomp) {
		m.fps = make([]uint64, len(m.Decomp))
	}
	m.fps[inst] = FingerprintDecomp(m.Decomp[inst])
}
