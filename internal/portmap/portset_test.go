package portmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPortSetBasics(t *testing.T) {
	s := MakePortSet(0, 2, 5)
	if !s.Has(0) || !s.Has(2) || !s.Has(5) {
		t.Error("missing expected members")
	}
	if s.Has(1) || s.Has(3) {
		t.Error("unexpected members")
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3", s.Count())
	}
	got := s.Ports()
	want := []int{0, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("Ports() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ports() = %v, want %v", got, want)
		}
	}
	if s.Min() != 0 {
		t.Errorf("Min = %d, want 0", s.Min())
	}
	if PortSet(0).Min() != -1 {
		t.Error("empty Min should be -1")
	}
}

func TestPortSetWithWithout(t *testing.T) {
	var s PortSet
	s = s.With(3).With(7)
	if s != MakePortSet(3, 7) {
		t.Errorf("With chain = %s", s)
	}
	s = s.Without(3)
	if s != MakePortSet(7) {
		t.Errorf("Without = %s", s)
	}
	// Without of a non-member is a no-op.
	if s.Without(5) != s {
		t.Error("Without non-member changed the set")
	}
}

func TestPortSetAlgebra(t *testing.T) {
	a := MakePortSet(0, 1)
	b := MakePortSet(1, 2)
	if a.Union(b) != MakePortSet(0, 1, 2) {
		t.Error("Union wrong")
	}
	if a.Intersect(b) != MakePortSet(1) {
		t.Error("Intersect wrong")
	}
	if !a.SubsetOf(MakePortSet(0, 1, 2)) {
		t.Error("SubsetOf should hold")
	}
	if a.SubsetOf(b) {
		t.Error("SubsetOf should not hold")
	}
	if !PortSet(0).SubsetOf(a) {
		t.Error("empty set is subset of everything")
	}
	if !PortSet(0).IsEmpty() || a.IsEmpty() {
		t.Error("IsEmpty wrong")
	}
}

func TestFullPortSet(t *testing.T) {
	if FullPortSet(0) != 0 {
		t.Error("FullPortSet(0) should be empty")
	}
	if FullPortSet(3) != MakePortSet(0, 1, 2) {
		t.Error("FullPortSet(3) wrong")
	}
	if FullPortSet(64).Count() != 64 {
		t.Error("FullPortSet(64) should have 64 members")
	}
}

func TestSinglePortPanicsOutOfRange(t *testing.T) {
	for _, k := range []int{-1, 64, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SinglePort(%d) did not panic", k)
				}
			}()
			SinglePort(k)
		}()
	}
}

func TestPortSetString(t *testing.T) {
	tests := []struct {
		s       PortSet
		str     string
		compact string
	}{
		{0, "{}", "p-"},
		{MakePortSet(0), "{P0}", "p0"},
		{MakePortSet(0, 1, 5), "{P0,P1,P5}", "p015"},
		{MakePortSet(0, 12), "{P0,P12}", "p0[12]"},
	}
	for _, tc := range tests {
		if got := tc.s.String(); got != tc.str {
			t.Errorf("String() = %q, want %q", got, tc.str)
		}
		if got := tc.s.CompactName(); got != tc.compact {
			t.Errorf("CompactName() = %q, want %q", got, tc.compact)
		}
	}
}

func TestParsePortSetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		s := PortSet(rng.Uint64()) & FullPortSet(16)
		for _, text := range []string{s.String(), s.CompactName()} {
			got, err := ParsePortSet(text)
			if err != nil {
				t.Fatalf("ParsePortSet(%q): %v", text, err)
			}
			if got != s {
				t.Fatalf("ParsePortSet(%q) = %s, want %s", text, got, s)
			}
		}
	}
}

func TestParsePortSetErrors(t *testing.T) {
	bad := []string{"", "P0", "{P0", "{Q1}", "{P-1}", "pX", "p[", "p[99]", "{P100}"}
	for _, s := range bad {
		if _, err := ParsePortSet(s); err == nil {
			t.Errorf("ParsePortSet(%q) succeeded, want error", s)
		}
	}
}

func TestPortSetCountMatchesPorts(t *testing.T) {
	f := func(raw uint64) bool {
		s := PortSet(raw)
		return s.Count() == len(s.Ports())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPortSetSubsetUnionProperty(t *testing.T) {
	// For all a, b: a ⊆ a∪b and b ⊆ a∪b, and a∩b ⊆ a.
	f := func(ra, rb uint64) bool {
		a, b := PortSet(ra), PortSet(rb)
		u := a.Union(b)
		return a.SubsetOf(u) && b.SubsetOf(u) && a.Intersect(b).SubsetOf(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
