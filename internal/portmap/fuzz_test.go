package portmap

import (
	"testing"
)

// FuzzParsePortSet checks that the parser never panics and that
// anything it accepts round-trips through both renderings.
func FuzzParsePortSet(f *testing.F) {
	for _, seed := range []string{"{}", "p-", "{P0}", "p015", "p0[12]", "{P0,P63}", "px", "{P", "p[9", ""} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ps, err := ParsePortSet(s)
		if err != nil {
			return
		}
		for _, text := range []string{ps.String(), ps.CompactName()} {
			back, err := ParsePortSet(text)
			if err != nil {
				t.Fatalf("render of %q (%s) unparseable: %v", s, text, err)
			}
			if back != ps {
				t.Fatalf("round trip of %q changed: %s vs %s", s, back, ps)
			}
		}
	})
}

// FuzzMappingJSON checks that the JSON decoder never panics and that
// accepted mappings survive a re-encode round trip.
func FuzzMappingJSON(f *testing.F) {
	f.Add([]byte(`{"num_ports":3,"instructions":[{"name":"add","uops":[{"ports":"p01","count":1}]}]}`))
	f.Add([]byte(`{"num_ports":0}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Mapping
		if err := m.UnmarshalJSON(data); err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			return // decodable but invalid mappings are rejected upstream
		}
		enc, err := m.MarshalJSON()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		var back Mapping
		if err := back.UnmarshalJSON(enc); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !m.Equal(&back) {
			t.Fatal("JSON round trip changed the mapping")
		}
	})
}
