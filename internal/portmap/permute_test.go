package portmap

import (
	"math/rand"
	"testing"
)

func TestPermutePortsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(5)
		m := Random(rng, RandomOptions{NumInsts: 5, NumPorts: n})
		perm := rng.Perm(n)
		inv := make([]int, n)
		for i, p := range perm {
			inv[p] = i
		}
		back := m.PermutePorts(perm).PermutePorts(inv)
		if !m.Equal(back) {
			t.Fatalf("trial %d: permute+inverse != identity", trial)
		}
	}
}

func TestPermutePortsPreservesThroughputStructure(t *testing.T) {
	m := NewMapping(2, 3)
	m.SetDecomp(0, []UopCount{{Ports: MakePortSet(0, 1), Count: 1}})
	m.SetDecomp(1, []UopCount{{Ports: MakePortSet(2), Count: 2}})
	p := m.PermutePorts([]int{2, 0, 1})
	// Instruction 0's µop {P0,P1} → {P2,P0}; instruction 1's {P2} → {P1}.
	if p.Decomp[0][0].Ports != MakePortSet(0, 2) {
		t.Errorf("permuted inst 0 = %s", p.Decomp[0][0].Ports)
	}
	if p.Decomp[1][0].Ports != MakePortSet(1) || p.Decomp[1][0].Count != 2 {
		t.Errorf("permuted inst 1 = %v", p.Decomp[1][0])
	}
}

func TestPermutePortsMovesPortNames(t *testing.T) {
	m := NewMapping(1, 3)
	m.SetDecomp(0, []UopCount{{Ports: MakePortSet(0), Count: 1}})
	m.PortNames = []string{"A", "B", "C"}
	p := m.PermutePorts([]int{1, 2, 0})
	if p.PortNames[1] != "A" || p.PortNames[2] != "B" || p.PortNames[0] != "C" {
		t.Errorf("PortNames = %v", p.PortNames)
	}
}

func TestPermutePortsValidation(t *testing.T) {
	m := NewMapping(1, 3)
	m.SetDecomp(0, []UopCount{{Ports: MakePortSet(0), Count: 1}})
	for _, perm := range [][]int{
		{0, 1},     // wrong length
		{0, 0, 1},  // repeated
		{0, 1, 5},  // out of range
		{-1, 1, 2}, // negative
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("perm %v did not panic", perm)
				}
			}()
			m.PermutePorts(perm)
		}()
	}
}

func TestEquivalentUpToPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(4)
		a := Random(rng, RandomOptions{NumInsts: 4, NumPorts: n})
		b := a.PermutePorts(rng.Perm(n))
		if !EquivalentUpToPermutation(a, b) {
			t.Fatalf("trial %d: permuted mapping not recognized as equivalent", trial)
		}
	}
	// A structurally different mapping is not equivalent.
	a := NewMapping(1, 2)
	a.SetDecomp(0, []UopCount{{Ports: MakePortSet(0), Count: 1}})
	b := NewMapping(1, 2)
	b.SetDecomp(0, []UopCount{{Ports: MakePortSet(0, 1), Count: 1}})
	if EquivalentUpToPermutation(a, b) {
		t.Error("different mappings reported equivalent")
	}
	// Dimension mismatches.
	c := NewMapping(1, 3)
	c.SetDecomp(0, []UopCount{{Ports: MakePortSet(0), Count: 1}})
	if EquivalentUpToPermutation(a, c) {
		t.Error("different port counts reported equivalent")
	}
}

func TestPortUsageSignature(t *testing.T) {
	m := NewMapping(2, 3)
	m.SetDecomp(0, []UopCount{{Ports: MakePortSet(0, 1), Count: 2}})
	m.SetDecomp(1, []UopCount{{Ports: MakePortSet(1), Count: 3}})
	sig := m.PortUsageSignature()
	want := []int{2, 5, 0}
	for i := range want {
		if sig[i] != want[i] {
			t.Fatalf("signature = %v, want %v", sig, want)
		}
	}
}
