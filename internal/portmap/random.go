package portmap

import (
	"math"
	"math/rand"
)

// RandomOptions configures random mapping generation.
type RandomOptions struct {
	// NumInsts and NumPorts give the mapping dimensions.
	NumInsts int
	NumPorts int
	// ThroughputHint optionally gives the measured individual throughput
	// t*(i) per instruction. Per §4.4 (Initialization), the count for a
	// µop u of instruction i is sampled from [1, ceil(t*(i)·|u|)]: an
	// instruction with ceil(t·|u|) instances of u can achieve no
	// throughput smaller than t. If nil, a hint of 1.0 is used.
	ThroughputHint []float64
	// MaxUops bounds the number of distinct µops sampled per instruction.
	// Zero means |P| (the paper's choice).
	MaxUops int
}

// Random samples a mapping uniformly following the paper's population
// initialization (§4.4): for each instruction, a random set of 1..|P|
// distinct µops is sampled; the count of each µop u is sampled from
// [1, ceil(t*(i)·|u|)].
func Random(rng *rand.Rand, opts RandomOptions) *Mapping {
	m := NewMapping(opts.NumInsts, opts.NumPorts)
	maxUops := opts.MaxUops
	if maxUops <= 0 || maxUops > opts.NumPorts {
		maxUops = opts.NumPorts
	}
	for i := 0; i < opts.NumInsts; i++ {
		hint := 1.0
		if opts.ThroughputHint != nil {
			hint = opts.ThroughputHint[i]
			if hint < 1 {
				hint = 1
			}
		}
		m.Decomp[i] = randomDecomp(rng, opts.NumPorts, maxUops, hint)
		m.cacheFingerprint(i)
	}
	return m
}

// randomDecomp samples one instruction's decomposition.
func randomDecomp(rng *rand.Rand, numPorts, maxUops int, tpHint float64) []UopCount {
	nUops := 1 + rng.Intn(maxUops)
	seen := make(map[PortSet]bool, nUops)
	uops := make([]UopCount, 0, nUops)
	for len(uops) < nUops {
		u := RandomPortSet(rng, numPorts)
		if seen[u] {
			continue
		}
		seen[u] = true
		bound := int(math.Ceil(tpHint * float64(u.Count())))
		if bound < 1 {
			bound = 1
		}
		uops = append(uops, UopCount{Ports: u, Count: 1 + rng.Intn(bound)})
	}
	return canonicalizeUops(uops)
}

// RandomPortSet samples a uniformly random non-empty subset of the ports
// {0, ..., numPorts-1}.
func RandomPortSet(rng *rand.Rand, numPorts int) PortSet {
	if numPorts <= 0 || numPorts > MaxPorts {
		panic("portmap: invalid port count")
	}
	for {
		var s PortSet
		if numPorts == 64 {
			s = PortSet(rng.Uint64())
		} else {
			s = PortSet(rng.Uint64()) & FullPortSet(numPorts)
		}
		if !s.IsEmpty() {
			return s
		}
	}
}

// RandomExperiment samples an experiment: a uniformly random multiset of
// `length` instruction instances over numInsts instructions. This matches
// the benchmark-set sampling of §5.3 ("sampled uniformly at random from
// the set of all instruction multi-sets of size 5").
func RandomExperiment(rng *rand.Rand, numInsts, length int) Experiment {
	var e Experiment
	for j := 0; j < length; j++ {
		e = append(e, InstCount{Inst: rng.Intn(numInsts), Count: 1})
	}
	return e.Normalize()
}
