package export

import (
	"bytes"
	"strings"
	"testing"

	"pmevo/internal/portmap"
	"pmevo/internal/uarch"
)

func exampleMapping() *portmap.Mapping {
	m := portmap.NewMapping(3, 3)
	m.InstNames = []string{"add_r64_r64", "mul r64, r64", "store"}
	m.PortNames = []string{"P0", "P1", "P2"}
	m.SetDecomp(0, []portmap.UopCount{{Ports: portmap.MakePortSet(0, 1), Count: 1}})
	m.SetDecomp(1, []portmap.UopCount{{Ports: portmap.MakePortSet(1), Count: 2}})
	m.SetDecomp(2, []portmap.UopCount{
		{Ports: portmap.MakePortSet(0, 1), Count: 1},
		{Ports: portmap.MakePortSet(2), Count: 1},
	})
	return m
}

func TestLLVMSchedModel(t *testing.T) {
	var buf bytes.Buffer
	if err := LLVMSchedModel(&buf, exampleMapping(), "VirtCore"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"def VirtCoreModel : SchedMachineModel",
		"def VirtCoreP0 : ProcResource<1>;",
		"def VirtCoreP2 : ProcResource<1>;",
		"def VirtCoreP0P1 : ProcResGroup<[VirtCoreP0, VirtCoreP1]>;",
		"WriteRes<Write_add_r64_r64, [VirtCoreP0P1]> { let ResourceCycles = [1]; let NumMicroOps = 1; }",
		"WriteRes<Write_mul_r64__r64, [VirtCoreP1]> { let ResourceCycles = [2]; let NumMicroOps = 2; }",
		"NumMicroOps = 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("LLVM model missing %q:\n%s", want, out)
		}
	}
	// The two-µop store references both resources.
	if !strings.Contains(out, "[VirtCoreP0P1, VirtCoreP2]") {
		t.Errorf("store WriteRes wrong:\n%s", out)
	}
}

func TestLLVMSchedModelRejectsInvalid(t *testing.T) {
	bad := portmap.NewMapping(1, 2) // empty decomposition
	var buf bytes.Buffer
	if err := LLVMSchedModel(&buf, bad, "X"); err == nil {
		t.Error("invalid mapping accepted")
	}
	if err := OSACAModel(&buf, bad, "X"); err == nil {
		t.Error("invalid mapping accepted by OSACA writer")
	}
}

func TestOSACAModel(t *testing.T) {
	var buf bytes.Buffer
	if err := OSACAModel(&buf, exampleMapping(), "VirtCore"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"model_name: VirtCore",
		"ports: [P0, P1, P2]",
		"- name: add_r64_r64",
		"port_pressure: {P0: 0.500, P1: 0.500}",
		"port_pressure: {P1: 2.000}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("OSACA model missing %q:\n%s", want, out)
		}
	}
	// Store: 1×p01 + 1×p2 → P0 .5, P1 .5, P2 1.
	if !strings.Contains(out, "{P0: 0.500, P1: 0.500, P2: 1.000}") {
		t.Errorf("store pressure wrong:\n%s", out)
	}
	if !strings.Contains(out, "uops: 2") {
		t.Errorf("uops count missing:\n%s", out)
	}
}

func TestSummary(t *testing.T) {
	out := Summary(exampleMapping())
	if !strings.Contains(out, "3 instructions, 3 ports, volume 7, 3 distinct µops") {
		t.Errorf("summary header wrong:\n%s", out)
	}
	// p01 used 2 times total (add + store), p1 twice (mul), p2 once.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("summary has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "×2") {
		t.Errorf("most-used µop line = %q", lines[1])
	}
}

func TestExportGroundTruthSKL(t *testing.T) {
	// The full SKL ground truth must export without error and mention
	// the DIV pseudo-port.
	proc := uarch.SKL()
	var buf bytes.Buffer
	if err := LLVMSchedModel(&buf, proc.GroundTruth, "SKLVirt"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SKLVirtDIV") {
		t.Error("DIV port missing from LLVM export")
	}
	buf.Reset()
	if err := OSACAModel(&buf, proc.GroundTruth, "SKLVirt"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "DIV") {
		t.Error("DIV port missing from OSACA export")
	}
}

func TestSanitizeIdent(t *testing.T) {
	tests := map[string]string{
		"add r64, r64": "add_r64__r64",
		"Cortex-A72":   "Cortex_A72",
		"":             "_",
		"ok_name1":     "ok_name1",
	}
	for in, want := range tests {
		if got := sanitizeIdent(in); got != want {
			t.Errorf("sanitizeIdent(%q) = %q, want %q", in, got, want)
		}
	}
}
