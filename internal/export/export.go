// Package export renders inferred port mappings in the formats of
// downstream performance tools. The paper motivates this integration
// path explicitly (§6.2): "Both, llvm-mca and OSACA, can benefit from
// port mappings by PMEvo for microarchitectures without available port
// mapping."
//
// Two writers are provided:
//
//   - LLVMSchedModel emits a TableGen-like scheduling-model fragment in
//     the style of LLVM's per-target *SchedModel*.td files: one
//     ProcResource per port, WriteRes entries per instruction with
//     resource cycles derived from the µop decomposition.
//   - OSACAModel emits a YAML fragment in the style of OSACA's machine
//     files: port list plus per-instruction port pressure, where a µop
//     executable on k ports contributes 1/k pressure to each.
package export

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"pmevo/internal/portmap"
)

// sanitizeIdent turns an instruction or processor name into a TableGen-
// compatible identifier.
func sanitizeIdent(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// portName returns the exported name of port k.
func portName(m *portmap.Mapping, k int) string {
	if m.PortNames != nil && k < len(m.PortNames) {
		return sanitizeIdent(m.PortNames[k])
	}
	return fmt.Sprintf("P%d", k)
}

func instName(m *portmap.Mapping, i int) string {
	if m.InstNames != nil && i < len(m.InstNames) {
		return m.InstNames[i]
	}
	return fmt.Sprintf("I%d", i)
}

// LLVMSchedModel writes the mapping as a TableGen-like scheduling model
// fragment. Each distinct µop (port set) becomes a ProcResGroup over
// the per-port ProcResources; each instruction gets a WriteRes listing
// its µops' resource groups with their multiplicities as resource
// cycles.
func LLVMSchedModel(w io.Writer, m *portmap.Mapping, procName string) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	proc := sanitizeIdent(procName)
	var b strings.Builder
	fmt.Fprintf(&b, "// Scheduling model for %s, inferred by PMEvo.\n", procName)
	fmt.Fprintf(&b, "// Generated file: resource cycles derive from the inferred port mapping.\n\n")
	fmt.Fprintf(&b, "def %sModel : SchedMachineModel {\n", proc)
	fmt.Fprintf(&b, "  let IssueWidth = %d;\n", m.NumPorts)
	b.WriteString("  let CompleteModel = 0;\n}\n\n")

	for k := 0; k < m.NumPorts; k++ {
		fmt.Fprintf(&b, "def %s%s : ProcResource<1>;\n", proc, portName(m, k))
	}
	b.WriteByte('\n')

	// One ProcResGroup per distinct multi-port µop.
	groups := m.DistinctUops()
	groupName := make(map[portmap.PortSet]string, len(groups))
	for _, u := range groups {
		if u.Count() == 1 {
			groupName[u] = proc + portName(m, u.Min())
			continue
		}
		parts := make([]string, 0, u.Count())
		refs := make([]string, 0, u.Count())
		for _, k := range u.Ports() {
			parts = append(parts, portName(m, k))
			refs = append(refs, proc+portName(m, k))
		}
		name := proc + strings.Join(parts, "")
		groupName[u] = name
		fmt.Fprintf(&b, "def %s : ProcResGroup<[%s]>;\n", name, strings.Join(refs, ", "))
	}
	b.WriteByte('\n')

	for i := 0; i < m.NumInsts(); i++ {
		uops := m.Decomp[i]
		resources := make([]string, len(uops))
		cycles := make([]string, len(uops))
		totalUops := 0
		for j, uc := range uops {
			resources[j] = groupName[uc.Ports]
			cycles[j] = fmt.Sprintf("%d", uc.Count)
			totalUops += uc.Count
		}
		fmt.Fprintf(&b, "def : WriteRes<Write_%s, [%s]> { let ResourceCycles = [%s]; let NumMicroOps = %d; }\n",
			sanitizeIdent(instName(m, i)), strings.Join(resources, ", "),
			strings.Join(cycles, ", "), totalUops)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// OSACAModel writes the mapping as an OSACA-style YAML machine-file
// fragment: the port list, then per-instruction port pressure where
// each µop distributes its count uniformly over its ports (the uniform
// distribution is OSACA's convention for throughput analysis).
func OSACAModel(w io.Writer, m *portmap.Mapping, procName string) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# OSACA machine model for %s, inferred by PMEvo.\n", procName)
	fmt.Fprintf(&b, "model_name: %s\n", procName)
	b.WriteString("ports: [")
	for k := 0; k < m.NumPorts; k++ {
		if k > 0 {
			b.WriteString(", ")
		}
		b.WriteString(portName(m, k))
	}
	b.WriteString("]\n")
	b.WriteString("instruction_forms:\n")
	for i := 0; i < m.NumInsts(); i++ {
		fmt.Fprintf(&b, "  - name: %s\n", instName(m, i))
		pressure := make([]float64, m.NumPorts)
		uopCount := 0
		for _, uc := range m.Decomp[i] {
			share := float64(uc.Count) / float64(uc.Ports.Count())
			for _, k := range uc.Ports.Ports() {
				pressure[k] += share
			}
			uopCount += uc.Count
		}
		fmt.Fprintf(&b, "    uops: %d\n", uopCount)
		b.WriteString("    port_pressure: {")
		first := true
		for k, p := range pressure {
			if p == 0 {
				continue
			}
			if !first {
				b.WriteString(", ")
			}
			first = false
			fmt.Fprintf(&b, "%s: %.3f", portName(m, k), p)
		}
		b.WriteString("}\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Summary renders a compact overview of a mapping: dimensions, volume,
// and the distinct µop vocabulary sorted by usage, for inclusion in
// reports.
func Summary(m *portmap.Mapping) string {
	usage := make(map[portmap.PortSet]int)
	for _, uops := range m.Decomp {
		for _, uc := range uops {
			usage[uc.Ports] += uc.Count
		}
	}
	type entry struct {
		ports portmap.PortSet
		count int
	}
	entries := make([]entry, 0, len(usage))
	for p, c := range usage {
		entries = append(entries, entry{p, c})
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].count != entries[b].count {
			return entries[a].count > entries[b].count
		}
		return entries[a].ports < entries[b].ports
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%d instructions, %d ports, volume %d, %d distinct µops\n",
		m.NumInsts(), m.NumPorts, m.Volume(), len(entries))
	for _, e := range entries {
		fmt.Fprintf(&b, "  %-12s ×%d\n", e.ports.CompactName(), e.count)
	}
	return b.String()
}
