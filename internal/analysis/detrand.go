package analysis

import "go/ast"

// deterministicPkgs are the packages pinned by the fixed-seed ⇒
// bit-identical contract (the paper's reproducibility claim): every
// random draw must come from a seeded, explicitly threaded *rand.Rand,
// and no wall-clock value may influence a result. Matching is by
// package name so testdata fixtures exercise the same scope rule.
var deterministicPkgs = map[string]bool{
	"evo":        true,
	"machine":    true,
	"engine":     true,
	"measure":    true,
	"throughput": true,
	"portmap":    true,
	"exp":        true,
}

// randPkgs are the import paths whose global draw functions share
// process-wide PRNG state.
var randPkgs = map[string]bool{"math/rand": true, "math/rand/v2": true}

// randConstructors build values rather than drawing from the global
// source. rand.New is fine (it wraps a caller-provided source); the
// source constructors are flagged separately: every raw PRNG stream
// must be created by the draw-counting seam in internal/evo/rng.go so
// checkpoint/resume can replay it.
var randConstructors = map[string]bool{
	"New":        true,
	"NewZipf":    true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

var randSourceConstructors = map[string]bool{
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// detrand enforces the determinism contract in the deterministic
// packages: no global math/rand calls (process-wide state breaks
// fixed-seed bit-identity the moment two call sites interleave), no
// ad-hoc PRNG sources outside the draw-counting seam, and no time.Now
// (wall-clock values feeding results make reruns incomparable).
type detrand struct{}

func (*detrand) Name() string { return "detrand" }

func (*detrand) Doc() string {
	return "in deterministic packages (evo, machine, engine, measure, throughput, portmap, exp): " +
		"forbid global math/rand calls, rand source construction outside internal/evo/rng.go, " +
		"time-derived seeds, and time.Now feeding results"
}

func (*detrand) Run(m *Module, r Reporter) {
	for _, p := range m.Packages {
		if !deterministicPkgs[p.Name] {
			continue
		}
		inspectFiles(p, func(f *ast.File, n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name := pkgFuncName(calleeFunc(p.Info, call))
			switch {
			case randPkgs[pkgPath] && !randConstructors[name]:
				r.ReportRangef(call.Pos(), call.End(), "global %s.%s draws from process-wide PRNG state; use a seeded *rand.Rand threaded through the call stack (fixed seed ⇒ bit-identical results)", pkgPath, name)
			case randPkgs[pkgPath] && randSourceConstructors[name]:
				r.ReportRangef(call.Pos(), call.End(), "%s.%s creates an ad-hoc PRNG stream; route it through the draw-counting seam (internal/evo/rng.go) so checkpoint/resume can replay it", pkgPath, name)
				reportTimeSeed(p, r, call)
			case pkgPath == "time" && name == "Now":
				r.ReportRangef(call.Pos(), call.End(), "time.Now in deterministic package %q: wall-clock values must not feed results; measure timing in drivers, not in the model", p.Name)
			}
			return true
		})
	}
}

// reportTimeSeed flags the classic rand.NewSource(time.Now().UnixNano())
// pattern explicitly: beyond the ad-hoc stream, the seed itself is
// irreproducible.
func reportTimeSeed(p *Package, r Reporter, call *ast.CallExpr) {
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkgPath, name := pkgFuncName(calleeFunc(p.Info, inner)); pkgPath == "time" && name == "Now" {
				r.ReportRangef(inner.Pos(), inner.End(), "time-derived seed: a wall-clock-seeded PRNG cannot reproduce a run; seeds must come from options or flags")
				return false
			}
			return true
		})
	}
}
