// Package analysis is pmevo's contract-enforcing static-analysis
// suite: project-specific analyzers over go/parser + go/types (standard
// library only) that turn the invariants every fast path in this repo
// is pinned against — fixed seed ⇒ bit-identical results, fingerprint
// caches invalidated on every mutation, ctx-first cancellation,
// content-keyed cache spills — into compile-time diagnostics with named
// culprits, instead of golden-test failures after the fact.
//
// Two layers share the framework. The syntactic analyzers (detrand,
// mapiter, ctxflow, fpguard, cachekey) pattern-match the typed AST
// directly. The concurrency-contract analyzers (scratchescape,
// atomichygiene, serialhandle, goroutinejoin, errflow) sit on a
// flow-sensitive core — a per-function control-flow graph (cfg.go) with
// a forward origin-tracking dataflow pass over it (dataflow.go) — so
// they can answer path questions ("is this scratch released on every
// path to return?", "is this error checked before the function exits?")
// rather than only shape questions.
//
// The suite is driven by cmd/pmevo-vet and by the self-check test in
// this package, which asserts the module itself stays clean. Deliberate
// exceptions are annotated in the source with a mandatory reason:
//
//	//pmevo:allow <analyzer>[,<analyzer>...] -- <why>
//
// An allow comment suppresses findings of the named analyzers on its
// own line and on the line directly below it (so it works both as a
// trailing comment and as a line of its own above the finding). A
// suppression without a reason, naming an unknown analyzer, or matching
// no finding is itself reported (analyzer name "allow"), so the
// exception list cannot rot.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"sort"
	"strings"

	"pmevo/internal/engine"
)

// An Analyzer checks one contract over the whole module. Analyzers
// scope themselves (by package name, import path, or file) and report
// findings through the Reporter.
type Analyzer interface {
	// Name is the short identifier used in findings and allow comments.
	Name() string
	// Doc is a one-paragraph description of the enforced contract.
	Doc() string
	// Run reports every violation found in the module.
	Run(m *Module, r Reporter)
}

// Reporter collects findings during an analyzer run.
type Reporter interface {
	// Reportf records a finding at pos.
	Reportf(pos token.Pos, format string, args ...any)
	// ReportRangef records a finding spanning [pos, end) — the form
	// analyzers prefer when they hold the offending node, so the JSON
	// artifact carries reviewable ranges.
	ReportRangef(pos, end token.Pos, format string, args ...any)
}

// Finding is one diagnostic: a contract violation at a position.
type Finding struct {
	// Analyzer names the reporting analyzer ("allow" for suppression
	// hygiene findings produced by the framework itself).
	Analyzer string `json:"analyzer"`
	// File is the path relative to the module root when possible.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// EndLine/EndCol delimit the offending node when the analyzer
	// reported a range (0 otherwise).
	EndLine int `json:"end_line,omitempty"`
	EndCol  int `json:"end_col,omitempty"`
	// Snippet is the source line the finding starts on, whitespace
	// trimmed, so the JSON artifact reads without a checkout.
	Snippet string `json:"snippet,omitempty"`
	// Message states the violation.
	Message string `json:"message"`
	// Suppressed reports whether a pmevo:allow annotation covers the
	// finding; suppressed findings do not fail pmevo-vet.
	Suppressed bool `json:"suppressed,omitempty"`
	// AllowReason is the suppressing annotation's reason, if any.
	AllowReason string `json:"allow_reason,omitempty"`
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	if f.Suppressed {
		s += fmt.Sprintf(" (suppressed: %s)", f.AllowReason)
	}
	return s
}

// Allow is one parsed //pmevo:allow annotation.
type Allow struct {
	// Analyzers are the analyzer names the annotation suppresses.
	Analyzers []string `json:"analyzers"`
	// Reason is the mandatory justification after " -- ".
	Reason string `json:"reason"`
	File   string `json:"file"`
	Line   int    `json:"line"`
	// Used reports whether the annotation suppressed at least one
	// finding in the run it was collected by.
	Used bool `json:"used"`
}

func (a Allow) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", a.File, a.Line, strings.Join(a.Analyzers, ","), a.Reason)
}

const allowPrefix = "pmevo:allow"

// reporter implements Reporter for one analyzer over one module.
type reporter struct {
	name     string
	m        *Module
	findings *[]Finding
}

func (r *reporter) Reportf(pos token.Pos, format string, args ...any) {
	r.ReportRangef(pos, token.NoPos, format, args...)
}

func (r *reporter) ReportRangef(pos, end token.Pos, format string, args ...any) {
	p := r.m.Fset.Position(pos)
	f := Finding{
		Analyzer: r.name,
		File:     r.m.relFile(p.Filename),
		Line:     p.Line,
		Col:      p.Column,
		Snippet:  r.m.sourceLine(p.Filename, p.Line),
		Message:  fmt.Sprintf(format, args...),
	}
	if end.IsValid() {
		e := r.m.Fset.Position(end)
		f.EndLine, f.EndCol = e.Line, e.Column
	}
	*r.findings = append(*r.findings, f)
}

// relFile renders a file path relative to the module root for stable,
// copy-pasteable findings.
func (m *Module) relFile(path string) string {
	if rest, ok := strings.CutPrefix(path, m.Root+"/"); ok {
		return rest
	}
	return path
}

// sourceLine returns the 1-based line of the file, trimmed, from a
// per-module cache; analyzers run concurrently, so the cache locks.
func (m *Module) sourceLine(filename string, line int) string {
	m.linesMu.Lock()
	defer m.linesMu.Unlock()
	if m.lines == nil {
		m.lines = map[string][]string{}
	}
	lines, ok := m.lines[filename]
	if !ok {
		data, err := os.ReadFile(filename)
		if err == nil {
			lines = strings.Split(string(data), "\n")
		}
		m.lines[filename] = lines
	}
	if line < 1 || line > len(lines) {
		return ""
	}
	return strings.TrimSpace(lines[line-1])
}

// Suite returns the full analyzer suite in reporting order: the five
// syntactic contract analyzers from PR 9 and the five flow-sensitive
// concurrency-contract analyzers built on the CFG/dataflow core.
func Suite() []Analyzer {
	return []Analyzer{
		&detrand{},
		&mapiter{},
		&ctxflow{},
		&fpguard{},
		&cachekey{},
		&scratchescape{},
		&atomichygiene{},
		&serialhandle{},
		&goroutinejoin{},
		&errflow{},
	}
}

// Run executes the analyzers over the module, applies pmevo:allow
// suppressions, and checks suppression hygiene. Findings come back
// sorted by position; allows carry their post-run Used state.
func Run(m *Module, analyzers []Analyzer) ([]Finding, []Allow, error) {
	known := map[string]bool{"allow": true}
	for _, a := range analyzers {
		known[a.Name()] = true
	}
	allows, allowFindings := collectAllows(m, known)
	// Analyzers only read the module, so they run concurrently, each
	// into its own slice; merging in suite order keeps the pre-sort
	// ordering deterministic.
	perAnalyzer := make([][]Finding, len(analyzers))
	engine.ForEachWorker(len(analyzers), 0, func(_, i int) {
		a := analyzers[i]
		a.Run(m, &reporter{name: a.Name(), m: m, findings: &perAnalyzer[i]})
	})
	var findings []Finding
	for _, fs := range perAnalyzer {
		findings = append(findings, fs...)
	}
	// Apply suppressions: an allow covers findings of its analyzers on
	// its own line and the next line of the same file.
	for i := range findings {
		f := &findings[i]
		for j := range allows {
			al := &allows[j]
			if al.File != f.File || (al.Line != f.Line && al.Line != f.Line-1) {
				continue
			}
			for _, name := range al.Analyzers {
				if name == f.Analyzer {
					f.Suppressed = true
					f.AllowReason = al.Reason
					al.Used = true
				}
			}
		}
	}
	// Suppression hygiene: every annotation must earn its keep.
	for _, al := range allows {
		if !al.Used {
			allowFindings = append(allowFindings, Finding{
				Analyzer: "allow",
				File:     al.File,
				Line:     al.Line,
				Col:      1,
				Message: fmt.Sprintf("suppression for %s matches no finding; delete it or fix the annotation",
					strings.Join(al.Analyzers, ",")),
			})
		}
	}
	findings = append(findings, allowFindings...)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	sort.Slice(allows, func(i, j int) bool {
		a, b := allows[i], allows[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return findings, allows, nil
}

// Unsuppressed filters to the findings that fail a pmevo-vet run.
func Unsuppressed(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// collectAllows parses every pmevo:allow annotation in the module's
// non-test files, reporting malformed ones as "allow" findings.
func collectAllows(m *Module, known map[string]bool) ([]Allow, []Finding) {
	var allows []Allow
	var findings []Finding
	for _, p := range m.Packages {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//")
					if !ok {
						continue // block comments don't carry annotations
					}
					text = strings.TrimSpace(text)
					rest, ok := strings.CutPrefix(text, allowPrefix)
					if !ok {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					bad := func(format string, args ...any) {
						findings = append(findings, Finding{
							Analyzer: "allow",
							File:     m.relFile(pos.Filename),
							Line:     pos.Line,
							Col:      pos.Column,
							Message:  fmt.Sprintf(format, args...),
						})
					}
					names, reason, found := strings.Cut(rest, " -- ")
					if !found || strings.TrimSpace(reason) == "" {
						bad("suppression without a reason: write %q", allowPrefix+" <analyzer> -- <why>")
						continue
					}
					var list []string
					for _, name := range strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
						if !known[name] {
							bad("suppression names unknown analyzer %q", name)
							list = nil
							break
						}
						list = append(list, name)
					}
					if len(list) == 0 {
						if found && len(strings.TrimSpace(names)) == 0 {
							bad("suppression names no analyzer")
						}
						continue
					}
					allows = append(allows, Allow{
						Analyzers: list,
						Reason:    strings.TrimSpace(reason),
						File:      m.relFile(pos.Filename),
						Line:      pos.Line,
					})
				}
			}
		}
	}
	return allows, findings
}

// inspectFiles walks every non-test file of the package.
func inspectFiles(p *Package, visit func(f *ast.File, n ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool { return visit(f, n) })
	}
}
