package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// serialhandle enforces the documented-serial discipline: a type whose
// declaration carries a //pmevo:serial doc tag (engine.BatchEvaluator
// first — it owns draw-counted RNG state and a memo epoch that only one
// goroutine may advance) hands out values that must stay confined to
// the goroutine that created them. The analyzer flags the three ways a
// handle crosses goroutines: captured by (or passed to) a go
// statement, sent on a channel, or stored through a non-local path —
// a struct or package variable another goroutine can read it back out
// of. Constructors returning the handle are the sanctioned hand-off and
// stay exempt; a deliberate store into a structure with documented
// single-goroutine ownership (evo's per-island state) carries an
// allow annotation naming that ownership.
type serialhandle struct{}

func (*serialhandle) Name() string { return "serialhandle" }

func (*serialhandle) Doc() string {
	return "values of //pmevo:serial-tagged types must not be captured by go closures, " +
		"sent on channels, or stored to shared structs"
}

const serialTag = "pmevo:serial"

// collectSerialTypes finds every type declaration tagged serial.
func collectSerialTypes(m *Module) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	for _, p := range m.Packages {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if !hasDocTag(gd.Doc, serialTag) && !hasDocTag(ts.Doc, serialTag) {
						continue
					}
					if tn, ok := p.Info.Defs[ts.Name].(*types.TypeName); ok {
						out[tn] = true
					}
				}
			}
		}
	}
	return out
}

func hasDocTag(doc *ast.CommentGroup, tag string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if text, ok := strings.CutPrefix(c.Text, "//"); ok && strings.TrimSpace(text) == tag {
			return true
		}
	}
	return false
}

func isSerialType(serial map[*types.TypeName]bool, t types.Type) bool {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	return ok && serial[n.Obj()]
}

func (a *serialhandle) Run(m *Module, r Reporter) {
	serial := collectSerialTypes(m)
	if len(serial) == 0 {
		return
	}
	isSerial := func(p *Package, e ast.Expr) bool {
		tv, ok := p.Info.Types[e]
		return ok && isSerialType(serial, tv.Type)
	}
	for _, p := range m.Packages {
		funcBodies(p, func(fn funcUnit) {
			inspectShallow(fn.body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					for _, arg := range n.Call.Args {
						if isSerial(p, arg) {
							r.ReportRangef(arg.Pos(), arg.End(), "serial handle passed to a spawned goroutine; //pmevo:serial types are confined to their creating goroutine")
						}
					}
					if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
						for _, v := range freeVars(p.Info, lit) {
							if isSerialType(serial, v.Type()) {
								r.ReportRangef(n.Pos(), n.End(), "serial handle %s captured by a spawned goroutine; claim a fresh handle inside the worker instead", v.Name())
							}
						}
					}
				case *ast.SendStmt:
					if isSerial(p, n.Value) {
						r.ReportRangef(n.Value.Pos(), n.Value.End(), "serial handle sent on a channel crosses goroutines; //pmevo:serial types are confined to their creating goroutine")
					}
				case *ast.AssignStmt:
					for i, lhs := range n.Lhs {
						if len(n.Rhs) != len(n.Lhs) || !isSerial(p, n.Rhs[i]) {
							continue
						}
						reportSerialStore(p, r, fn, n.Rhs[i], lhs)
					}
				case *ast.CompositeLit:
					for _, el := range n.Elts {
						v := el
						if kv, ok := el.(*ast.KeyValueExpr); ok {
							v = kv.Value
						}
						if isSerial(p, v) {
							r.ReportRangef(v.Pos(), v.End(), "serial handle stored into a composite literal; if the enclosing struct is single-goroutine by design, annotate the ownership with pmevo:allow")
						}
					}
				}
				return true
			})
		})
	}
}

// reportSerialStore flags an assignment of a serial value to a
// shared-visible target: a path rooted outside the function, or a
// package-level variable.
func reportSerialStore(p *Package, r Reporter, fn funcUnit, rhs ast.Expr, lhs ast.Expr) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		obj := p.Info.ObjectOf(id)
		if v, ok := obj.(*types.Var); ok && v.Parent() != nil && v.Parent().Parent() == types.Universe {
			r.ReportRangef(lhs.Pos(), lhs.End(), "serial handle stored in package variable %s is visible to every goroutine", id.Name)
		}
		return // plain local assignment stays confined
	}
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	obj := p.Info.ObjectOf(root)
	if obj == nil || declaredWithin(obj, fn.body) {
		return
	}
	r.ReportRangef(lhs.Pos(), lhs.End(), "serial handle stored through %s escapes the creating function; a handle must stay with one goroutine", root.Name)
}
