package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the control-flow half of the flow-sensitive analysis
// core: a per-function CFG over go/ast, built without any dependency
// beyond the standard library. Statements become nodes in basic blocks;
// control predicates (if/for conditions, switch tags, case expressions)
// are inserted as bare ast.Expr nodes at their evaluation point, so a
// dataflow visitor can see every read of a value in condition position
// — the convention the analyzers rely on is: an ast.Expr node in
// Block.Nodes is exactly a control-predicate read.
//
// Defer statements are kept at their registration point. For the
// all-paths queries the analyzers ask ("does a release happen on every
// path from here to exit?") that placement is exact: a defer registered
// on a path runs when that path exits, so treating the registration as
// the event never misses a covered path and only over-covers paths that
// panic between registration and exit — which the suite deliberately
// ignores, like every other analyzer here ignores panicking edges.

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	// Exit is the single synthetic exit block: every return and the
	// fall-off-the-end path feed it. It carries no nodes.
	Exit *Block
	// Spawns lists every go statement in the body, including ones inside
	// nested function literals (their spawn still happens under this
	// function's control; the literal's own statements are NOT part of
	// this CFG).
	Spawns []*ast.GoStmt
	// Returns lists every return statement of the body itself.
	Returns []*ast.ReturnStmt
	// typeSwitchSubject maps each case clause of a type switch to the
	// switched subject expression, so the dataflow transfer can bind the
	// clause's implicit object to the subject's value set.
	typeSwitchSubject map[*ast.CaseClause]ast.Expr
}

// Block is one basic block: a straight-line node sequence with edges to
// its successors. Nodes are simple statements (assignments, sends,
// declarations, go/defer/return statements, range headers, case
// clauses) or bare expressions for control predicates.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// ctrlFrame is one enclosing breakable construct during construction.
type ctrlFrame struct {
	breakTo    *Block
	continueTo *Block // nil for switch/select frames
	label      string
}

type cfgBuilder struct {
	c      *CFG
	cur    *Block // nil: current point unreachable
	frames []ctrlFrame
	// labels maps label names to their blocks (created on first mention,
	// forward gotos included).
	labels map[string]*Block
	// pendingLabel is the label wrapping the next for/range/switch/select,
	// so labeled break/continue resolve to the right frame.
	pendingLabel string
	// fallNext is the fallthrough target stack (next case body per
	// enclosing switch).
	fallNext []*Block
}

// BuildCFG constructs the CFG of a function body. The body may be nil
// (externally implemented functions); the result then has an empty
// entry wired to exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	c := &CFG{typeSwitchSubject: map[*ast.CaseClause]ast.Expr{}}
	b := &cfgBuilder{c: c, labels: map[string]*Block{}}
	c.Entry = b.newBlock()
	c.Exit = b.newBlock()
	b.cur = c.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	if b.cur != nil {
		b.edge(b.cur, c.Exit)
	}
	for _, blk := range c.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return c
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.c.Blocks)}
	b.c.Blocks = append(b.c.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) { from.Succs = append(from.Succs, to) }

// block returns the current block, opening an unreachable one if
// control cannot reach this point (dead code still gets analyzed, it
// just has no predecessors).
func (b *cfgBuilder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	blk := b.block()
	blk.Nodes = append(blk.Nodes, n)
	// Spawns are collected from everywhere in the node, including
	// statements nested in function literals: the literal's body is not
	// control flow of this function, but the spawn itself is.
	ast.Inspect(n, func(x ast.Node) bool {
		if g, ok := x.(*ast.GoStmt); ok {
			b.c.Spawns = append(b.c.Spawns, g)
		}
		return true
	})
}

func (b *cfgBuilder) addExpr(e ast.Expr) {
	if e != nil {
		b.add(e)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for a breakable construct.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.addExpr(s.Cond)
		head := b.block()
		then := b.newBlock()
		b.edge(head, then)
		join := b.newBlock()
		var elseB *Block
		if s.Else != nil {
			elseB = b.newBlock()
			b.edge(head, elseB)
		} else {
			b.edge(head, join)
		}
		b.cur = then
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
		if s.Else != nil {
			b.cur = elseB
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, join)
			}
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.edge(b.block(), head)
		b.cur = head
		b.addExpr(s.Cond)
		condEnd := b.block() // addExpr never splits, but keep the handle honest
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(condEnd, after)
		}
		body := b.newBlock()
		b.edge(condEnd, body)
		cont := head
		var postB *Block
		if s.Post != nil {
			postB = b.newBlock()
			cont = postB
		}
		b.frames = append(b.frames, ctrlFrame{breakTo: after, continueTo: cont, label: label})
		b.cur = body
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		if b.cur != nil {
			b.edge(b.cur, cont)
		}
		if postB != nil {
			b.cur = postB
			b.add(s.Post)
			b.edge(postB, head)
		}
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.edge(b.block(), head)
		b.cur = head
		b.add(s) // the header node: transfer binds Key/Value from X
		after := b.newBlock()
		b.edge(head, after)
		body := b.newBlock()
		b.edge(head, body)
		b.frames = append(b.frames, ctrlFrame{breakTo: after, continueTo: head, label: label})
		b.cur = body
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.addExpr(s.Tag)
		b.caseClauses(s.Body.List, label, func(clause *ast.CaseClause, blk *Block) {
			for _, e := range clause.List {
				blk.Nodes = append(blk.Nodes, e)
			}
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		subject := typeSwitchSubject(s)
		b.addExpr(subject)
		b.caseClauses(s.Body.List, label, func(clause *ast.CaseClause, blk *Block) {
			b.c.typeSwitchSubject[clause] = subject
			blk.Nodes = append(blk.Nodes, clause)
		})

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.block()
		after := b.newBlock()
		b.frames = append(b.frames, ctrlFrame{breakTo: after, label: label})
		for _, cs := range s.Body.List {
			comm := cs.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if comm.Comm != nil {
				b.add(comm.Comm)
			}
			b.stmtList(comm.Body)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		b.frames = b.frames[:len(b.frames)-1]
		// A select with no clauses blocks forever: after then has no
		// predecessor, which is exactly right.
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.c.Returns = append(b.c.Returns, s)
		b.edge(b.block(), b.c.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.block()
		switch s.Tok {
		case token.BREAK:
			if f := b.findFrame(s.Label, false); f != nil {
				b.edge(b.cur, f.breakTo)
			}
		case token.CONTINUE:
			if f := b.findFrame(s.Label, true); f != nil {
				b.edge(b.cur, f.continueTo)
			}
		case token.GOTO:
			if s.Label != nil {
				b.edge(b.cur, b.labelBlock(s.Label.Name))
			}
		case token.FALLTHROUGH:
			if len(b.fallNext) > 0 && b.fallNext[len(b.fallNext)-1] != nil {
				b.edge(b.cur, b.fallNext[len(b.fallNext)-1])
			}
		}
		b.cur = nil

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(b.block(), lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.GoStmt, *ast.DeferStmt, *ast.ExprStmt, *ast.AssignStmt, *ast.SendStmt,
		*ast.IncDecStmt, *ast.DeclStmt:
		b.add(s)

	case *ast.EmptyStmt:
		// nothing

	default:
		b.add(s)
	}
}

// caseClauses wires the shared switch shape: every clause body branches
// from the current block, falls to the join, and may fall through to
// the next clause; a missing default adds a direct head→join edge.
func (b *cfgBuilder) caseClauses(list []ast.Stmt, label string, head func(*ast.CaseClause, *Block)) {
	headBlk := b.block()
	after := b.newBlock()
	b.frames = append(b.frames, ctrlFrame{breakTo: after, label: label})
	bodies := make([]*Block, len(list))
	hasDefault := false
	for i, cs := range list {
		bodies[i] = b.newBlock()
		if len(cs.(*ast.CaseClause).List) == 0 {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(headBlk, after)
	}
	for i, cs := range list {
		clause := cs.(*ast.CaseClause)
		blk := bodies[i]
		b.edge(headBlk, blk)
		head(clause, blk)
		next := (*Block)(nil)
		if i+1 < len(bodies) {
			next = bodies[i+1]
		}
		b.fallNext = append(b.fallNext, next)
		b.cur = blk
		b.stmtList(clause.Body)
		b.fallNext = b.fallNext[:len(b.fallNext)-1]
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

// findFrame resolves a break/continue target: the innermost frame, or
// the labeled one; continue skips frames without a continue target.
func (b *cfgBuilder) findFrame(label *ast.Ident, needContinue bool) *ctrlFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needContinue && f.continueTo == nil {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

// typeSwitchSubject extracts the switched expression of a type switch
// (the X of `v := x.(type)` or `x.(type)`).
func typeSwitchSubject(s *ast.TypeSwitchStmt) ast.Expr {
	var e ast.Expr
	switch a := s.Assign.(type) {
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			e = a.Rhs[0]
		}
	case *ast.ExprStmt:
		e = a.X
	}
	if ta, ok := ast.Unparen(e).(*ast.TypeAssertExpr); ok {
		return ta.X
	}
	return e
}

// CanReach reports whether `to` is reachable from `from` along CFG
// edges (from == to counts only if it lies on a cycle).
func (c *CFG) CanReach(from, to *Block) bool {
	seen := make([]bool, len(c.Blocks))
	stack := []*Block{}
	push := func(b *Block) {
		if !seen[b.Index] {
			seen[b.Index] = true
			stack = append(stack, b)
		}
	}
	for _, s := range from.Succs {
		push(s)
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == to {
			return true
		}
		for _, s := range b.Succs {
			push(s)
		}
	}
	return false
}

// ReachesExitAvoiding reports whether execution starting at node index
// `from` of block `b` can reach the exit without passing a node for
// which covered() is true — the all-paths query behind "a release must
// dominate every return". covered is evaluated on whole CFG nodes; a
// release anywhere inside a node covers it.
func (c *CFG) ReachesExitAvoiding(b *Block, from int, covered func(ast.Node) bool) bool {
	for _, n := range b.Nodes[from:] {
		if covered(n) {
			return false // straight-line: every continuation passes it
		}
	}
	seen := make([]bool, len(c.Blocks))
	var dfs func(blk *Block) bool
	dfs = func(blk *Block) bool {
		if blk == c.Exit {
			return true
		}
		if seen[blk.Index] {
			return false
		}
		seen[blk.Index] = true
		for _, n := range blk.Nodes {
			if covered(n) {
				return false
			}
		}
		for _, s := range blk.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	for _, s := range b.Succs {
		if dfs(s) {
			return true
		}
	}
	return false
}
