package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// mapiter flags `range` over maps whose body has order-sensitive
// effects — the exact bug class that silently breaks the fixed-seed ⇒
// bit-identical contract, because Go randomizes map iteration order per
// run. Three effect classes are checked:
//
//   - floating-point accumulation into a variable declared outside the
//     loop (float addition is not associative, so the sum depends on
//     visit order; integer accumulation is exact and commutative, so it
//     is not flagged),
//   - appends to a slice declared outside the loop that is not sorted
//     afterwards in the same function (the canonical safe idiom —
//     collect then sort.Slice — is recognized and stays quiet),
//   - channel sends (the receiver observes the iteration order).
type mapiter struct{}

func (*mapiter) Name() string { return "mapiter" }

func (*mapiter) Doc() string {
	return "flag range-over-map loops with order-sensitive effects: float accumulation, " +
		"appends that escape unsorted, channel sends (map iteration order is randomized per run)"
}

func (*mapiter) Run(m *Module, r Reporter) {
	for _, p := range m.Packages {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				fn, body := enclosedFuncBody(n)
				if body == nil {
					return true
				}
				checkFuncMapRanges(p, r, fn, body)
				return true
			})
		}
	}
}

// enclosedFuncBody returns the body of a function declaration or
// literal node, so range statements can be checked against the sorts
// that follow them in the same function.
func enclosedFuncBody(n ast.Node) (ast.Node, *ast.BlockStmt) {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn, fn.Body
	case *ast.FuncLit:
		return fn, fn.Body
	}
	return nil, nil
}

func checkFuncMapRanges(p *Package, r Reporter, fn ast.Node, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if inner, _ := enclosedFuncBody(n); inner != nil && inner != fn {
			return false // nested functions are visited on their own
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rs.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := types.Unalias(tv.Type).Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(p, r, rs, body)
		return true
	})
}

func checkMapRangeBody(p *Package, r Reporter, rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.SendStmt:
			r.ReportRangef(st.Pos(), st.End(), "channel send inside range over map: the receiver observes randomized iteration order")
		case *ast.AssignStmt:
			checkMapRangeAssign(p, r, rs, st, funcBody)
		}
		return true
	})
}

func checkMapRangeAssign(p *Package, r Reporter, rs *ast.RangeStmt, st *ast.AssignStmt, funcBody *ast.BlockStmt) {
	// Compound float accumulation: sum += v and friends.
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range st.Lhs {
			if isFloatExpr(p.Info, lhs) && !lhsDeclaredIn(p.Info, lhs, rs) {
				r.ReportRangef(st.Pos(), st.End(), "float accumulation inside range over map: float addition is not associative, so the result depends on randomized iteration order (accumulate over sorted keys)")
			}
		}
	case token.ASSIGN:
		for i, lhs := range st.Lhs {
			if i >= len(st.Rhs) {
				break
			}
			rhs := st.Rhs[i]
			// Spelled-out accumulation: sum = sum + v.
			if bin, ok := ast.Unparen(rhs).(*ast.BinaryExpr); ok && isFloatExpr(p.Info, lhs) && !lhsDeclaredIn(p.Info, lhs, rs) {
				if obj := objectOfRoot(p.Info, lhs); obj != nil && usesObject(p.Info, bin, obj) {
					r.ReportRangef(st.Pos(), st.End(), "float accumulation inside range over map: float addition is not associative, so the result depends on randomized iteration order (accumulate over sorted keys)")
					continue
				}
			}
			// Escaping append: v = append(v, ...) with v declared outside
			// the loop and never sorted after it.
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltin(p.Info, call, "append") {
				continue
			}
			obj := objectOfRoot(p.Info, lhs)
			if obj == nil || declaredWithin(obj, rs) {
				continue
			}
			if sortedAfter(p.Info, funcBody, rs, obj) {
				continue
			}
			r.ReportRangef(st.Pos(), st.End(), "append to %s inside range over map escapes in randomized iteration order; sort it after the loop or iterate over sorted keys", obj.Name())
		}
	}
}

func isFloatExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := types.Unalias(tv.Type).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func objectOfRoot(info *types.Info, e ast.Expr) types.Object {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	return info.ObjectOf(id)
}

func lhsDeclaredIn(info *types.Info, lhs ast.Expr, n ast.Node) bool {
	obj := objectOfRoot(info, lhs)
	// Unresolvable roots (e.g. results of calls) cannot be proven to be
	// loop-local, so treat them as accumulators.
	return obj != nil && declaredWithin(obj, n)
}

// sortFuncs are the stdlib entry points that establish a deterministic
// order over a just-collected slice.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// canonicalizerMethods are project methods that establish a canonical
// order over the collected value (portmap's Experiment.Normalize sorts
// and merges terms), so collect-then-canonicalize is as safe as
// collect-then-sort.
var canonicalizerMethods = map[string]bool{"Normalize": true}

// sortedAfter reports whether obj is passed to a recognized sort
// function or canonicalizer method somewhere after the range statement
// in the same function body — the collect-then-sort idiom that makes
// map-order appends safe.
func sortedAfter(info *types.Info, funcBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found || n == nil || n.Pos() < rs.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if len(call.Args) > 0 {
			pkgPath, name := pkgFuncName(calleeFunc(info, call))
			if names, ok := sortFuncs[pkgPath]; ok && names[name] && usesObject(info, call.Args[0], obj) {
				found = true
				return false
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && canonicalizerMethods[sel.Sel.Name] {
			if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && usesObject(info, sel.X, obj) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
