package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// errflow enforces the cold-start degradation contract on cache loads:
// an error from cachestore.Load*/engine.Load*/measure.Load*/Warm* means
// the persisted cache is absent, stale, or corrupt, and the caller must
// degrade to an empty cache and recompute — the static complement of
// the faultfs fault-injection matrix, which proves the same property
// dynamically for the failure modes it samples. Three failure shapes
// are flagged, flow-sensitively: the error dropped on the floor (a bare
// call statement or a _ assignment), the error never reaching a check,
// and the error escaping into the function's own result path (a loader
// failure must not become the caller's failure; warm caches are an
// optimization, never a correctness input).
//
// Functions that are themselves loaders — name starting with load/warm,
// case-insensitive — are the propagation layer and exempt: their job is
// to surface the typed error to the seam where this analyzer takes
// over.
type errflow struct{}

func (*errflow) Name() string { return "errflow" }

func (*errflow) Doc() string {
	return "cachestore.Load*/Warm* errors must reach a handler that degrades to cold start; " +
		"not _-dropped, not returned into result paths"
}

// errflowPkgs are the import-path suffixes whose Load*/Warm* calls the
// contract covers.
var errflowPkgs = [...]string{"cachestore", "engine", "measure"}

// loadCallErr reports whether the call is a covered loader returning an
// error, and at which result index the error sits.
func loadCallErr(info *types.Info, call *ast.CallExpr) (errIdx int, ok bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return 0, false
	}
	if !strings.HasPrefix(fn.Name(), "Load") && !strings.HasPrefix(fn.Name(), "Warm") {
		return 0, false
	}
	covered := false
	for _, suffix := range errflowPkgs {
		if pathEndsIn(fn.Pkg().Path(), suffix) {
			covered = true
		}
	}
	if !covered {
		return 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return 0, false
	}
	last := sig.Results().Len() - 1
	if !isErrorType(sig.Results().At(last).Type()) {
		return 0, false
	}
	return last, true
}

func isErrorType(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// isLoaderFunc reports whether the function is itself part of the
// loading layer by name.
func isLoaderFunc(name string) bool {
	l := strings.ToLower(name)
	return strings.HasPrefix(l, "load") || strings.HasPrefix(l, "warm")
}

func (*errflow) Run(m *Module, r Reporter) {
	for _, p := range m.Packages {
		funcBodies(p, func(fn funcUnit) {
			if fn.lit == nil && isLoaderFunc(fn.name) {
				return
			}
			runErrflow(p, r, fn)
		})
	}
}

func runErrflow(p *Package, r Reporter, fn funcUnit) {
	found := false
	inspectShallow(fn.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := loadCallErr(p.Info, call); ok {
				found = true
			}
		}
		return !found
	})
	if !found {
		return
	}

	cfg := BuildCFG(fn.body)
	type site struct {
		call   *ast.CallExpr
		errIdx int
		bit    uint64
	}
	sites := map[*ast.CallExpr]site{}
	var order []site
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			// A bare call statement drops every result, error included.
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok {
					if _, ok := loadCallErr(p.Info, call); ok {
						r.ReportRangef(call.Pos(), call.End(), "%s error discarded; a failed cache load must degrade to cold start, not vanish", callName(call))
						continue
					}
				}
			}
			inspectShallow(n, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				if errIdx, ok := loadCallErr(p.Info, call); ok {
					if _, seen := sites[call]; !seen {
						s := site{call: call, errIdx: errIdx, bit: OriginBit(len(order))}
						sites[call] = s
						order = append(order, s)
					}
				}
				return true
			})
		}
	}
	if len(order) == 0 {
		return
	}
	flow := NewFlow(p, cfg, func(c *ast.CallExpr, result int) uint64 {
		if s, ok := sites[c]; ok {
			// Single-value context (result 0) covers error-only loaders;
			// in tuple context only the error leg carries the bit.
			if result == s.errIdx {
				return s.bit
			}
		}
		return 0
	})

	// Walk once, recording how each error bit is consumed.
	checked := uint64(0) // reached a condition or a non-loader call argument
	returned := map[*ast.ReturnStmt]uint64{}
	dropped := map[*ast.AssignStmt]uint64{}
	flow.Walk(func(_ *Block, _ int, n ast.Node, st varMask) {
		switch n := n.(type) {
		case ast.Expr:
			// Bare exprs in Block.Nodes are control predicates: the
			// error influenced a branch — it was checked.
			checked |= flow.ExprMask(st, n)
		case *ast.AssignStmt:
			// A _ in the error leg of a loader call drops it.
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					if s, ok := sites[call]; ok && s.errIdx < len(n.Lhs) {
						if id, ok := ast.Unparen(n.Lhs[s.errIdx]).(*ast.Ident); ok && id.Name == "_" {
							dropped[n] |= s.bit
						}
					}
				}
			}
		case *ast.ReturnStmt:
			// In return position a call's arguments flow outward too:
			// return fmt.Errorf("...: %w", err) still propagates the
			// loader failure to the caller.
			for _, res := range n.Results {
				returned[n] |= retMask(flow, st, res)
			}
		case *ast.ExprStmt:
			// A call that takes the error as an argument handles it
			// (logging, recording) — unless it's itself a covered
			// loader, which only produces errors.
			inspectShallow(n, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				if _, isLoad := sites[call]; !isLoad {
					for _, a := range call.Args {
						checked |= flow.ExprMask(st, a)
					}
				}
				return true
			})
		}
	})

	for stmt, bits := range dropped {
		for _, s := range order {
			if bits&s.bit != 0 {
				r.ReportRangef(stmt.Pos(), stmt.End(), "%s error assigned to _; a failed cache load must degrade to cold start, not vanish", callName(s.call))
			}
		}
	}
	for ret, bits := range returned {
		for _, s := range order {
			if bits&s.bit != 0 {
				r.ReportRangef(ret.Pos(), ret.End(), "%s error returned into the result path; degrade to cold start here instead of failing the caller", callName(s.call))
			}
		}
	}
	for _, s := range order {
		if checked&s.bit != 0 {
			continue
		}
		if siteIn(dropped, s.bit) || siteIn(returned, s.bit) {
			continue // already reported with a sharper message
		}
		r.ReportRangef(s.call.Pos(), s.call.End(), "%s error is never checked; test it and degrade to cold start on failure", callName(s.call))
	}
}

// retMask is ExprMask extended through call arguments — used only in
// return position, where handing the value to a wrapping call still
// sends it to the caller.
func retMask(flow *Flow, st varMask, e ast.Expr) uint64 {
	m := flow.ExprMask(st, e)
	ast.Inspect(e, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			for _, a := range call.Args {
				m |= flow.ExprMask(st, a)
			}
		}
		return true
	})
	return m
}

func siteIn[K comparable](m map[K]uint64, bit uint64) bool {
	for _, bits := range m {
		if bits&bit != 0 {
			return true
		}
	}
	return false
}

// callName renders a call's function expression for messages
// (pkg.Func, recv.Method, f).
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	default:
		return "call"
	}
}
