package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// fpguard is the compile-time complement to the pmevodebug runtime
// panic: outside internal/portmap, the decomposition state of a
// portmap.Mapping must only change through the fingerprint-maintaining
// mutators (SetDecomp, SetUopCount, RemoveUopAt, InsertUopAt, AddUop).
// A direct write to m.Decomp leaves the cached per-instruction
// fingerprints stale, which silently poisons every fingerprint-keyed
// cache (throughput memo, fitness cache, kernel-sim cache) downstream.
type fpguard struct{}

func (*fpguard) Name() string { return "fpguard" }

func (*fpguard) Doc() string {
	return "outside internal/portmap, Mapping.Decomp must not be written directly; " +
		"use SetDecomp/SetUopCount/RemoveUopAt/InsertUopAt/AddUop so decomposition fingerprints stay fresh"
}

const fpguardAdvice = "mutate through SetDecomp/SetUopCount/RemoveUopAt/InsertUopAt/AddUop so the fingerprint cache stays fresh"

func (*fpguard) Run(m *Module, r Reporter) {
	for _, p := range m.Packages {
		if strings.HasSuffix(p.ImportPath, "internal/portmap") {
			continue // the mutators themselves live here
		}
		inspectFiles(p, func(f *ast.File, n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if onDecompPath(p, lhs) {
						r.ReportRangef(lhs.Pos(), lhs.End(), "direct write to Mapping.Decomp outside internal/portmap; %s", fpguardAdvice)
					}
				}
			case *ast.IncDecStmt:
				if onDecompPath(p, n.X) {
					r.ReportRangef(n.X.Pos(), n.X.End(), "direct write to Mapping.Decomp outside internal/portmap; %s", fpguardAdvice)
				}
			case *ast.CallExpr:
				// append with a Decomp-rooted first argument may mutate
				// the backing array in place when capacity allows.
				if isBuiltin(p.Info, n, "append") && len(n.Args) > 0 && onDecompPath(p, n.Args[0]) {
					r.Reportf(n.Args[0].Pos(), "append onto Mapping.Decomp outside internal/portmap may mutate the decomposition in place; %s", fpguardAdvice)
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND && onDecompPath(p, n.X) {
					r.ReportRangef(n.X.Pos(), n.X.End(), "taking the address of Mapping.Decomp state outside internal/portmap enables unguarded mutation; %s", fpguardAdvice)
				}
			}
			return true
		})
	}
}

// onDecompPath reports whether the expression's access path goes
// through the Decomp field of a portmap.Mapping (m.Decomp,
// m.Decomp[i], m.Decomp[i][j].Count, ...).
func onDecompPath(p *Package, e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if x.Sel.Name == "Decomp" {
				if tv, ok := p.Info.Types[x.X]; ok && isNamedType(tv.Type, "internal/portmap", "Mapping") {
					return true
				}
			}
			e = x.X
		default:
			return false
		}
	}
}
