package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves a call expression to the package-level function
// or method it invokes, or nil (builtins, conversions, function-typed
// variables).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function
// pkgPath.name (methods never match).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath
}

// pkgFuncName returns (pkgPath, name) for a package-level function, or
// ("", "") for methods and nil.
func pkgFuncName(fn *types.Func) (pkgPath, name string) {
	if fn == nil || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// isNamedType reports whether t (after dereferencing one pointer and
// unaliasing) is the named type name from a package whose import path
// ends in pathSuffix. Matching by suffix keeps analyzers working over
// both the real packages and their testdata fixture twins.
func isNamedType(t types.Type, pathSuffix, name string) bool {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == pathSuffix || strings.HasSuffix(path, "/"+pathSuffix)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// pathEndsIn reports whether the import path is suffix or ends in
// /suffix — the same fixture-twin-friendly matching isNamedType uses.
func pathEndsIn(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// rootIdent returns the leftmost identifier of an access-path
// expression (selectors, indexing, dereferences, parens), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether the object's declaration lies inside
// the node — used to separate loop-local variables from accumulators
// declared outside a range body.
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj != nil && obj.Pos() != 0 && n.Pos() <= obj.Pos() && obj.Pos() < n.End()
}

// usesObject reports whether the expression mentions the object.
func usesObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
