package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// cachekey audits the persistence seam end to end: every
// cachestore.Schema* constant — each names one on-disk spill format —
// must have at least one Save-family and one Load-family call site
// outside cachestore itself (a schema with only one side is either
// dead weight or an unreadable spill), every such call site must pass a
// non-trivial content key (a zero key defeats the "cache built against
// different inputs" rejection), and the constant must be exercised by
// at least one test (the damage-matrix tests are where corrupt-file
// degradation is proven per schema).
type cachekey struct{}

func (*cachekey) Name() string { return "cachekey" }

func (*cachekey) Doc() string {
	return "every cachestore.Schema* constant needs matched Save/Load call sites with a " +
		"non-trivial content key and coverage in the damage-matrix tests"
}

var (
	cacheSaveFuncs = map[string]bool{"Save": true, "SaveTable": true, "SaveBlob": true}
	cacheLoadFuncs = map[string]bool{"Load": true, "LoadTable": true, "LoadBlob": true}
)

func (*cachekey) Run(m *Module, r Reporter) {
	store := findCachestore(m)
	if store == nil {
		return
	}
	// The schema constants under audit, by object.
	type schemaState struct {
		obj   *types.Const
		saves int
		loads int
	}
	var names []string
	schemas := map[string]*schemaState{}
	scope := store.Types.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Schema") {
			continue
		}
		if c, ok := scope.Lookup(name).(*types.Const); ok {
			schemas[name] = &schemaState{obj: c}
			names = append(names, name)
		}
	}
	if len(schemas) == 0 {
		return
	}

	// Pass 1: every Save/Load call site in non-test files outside
	// cachestore — attribute schema arguments and vet content keys.
	for _, p := range m.Packages {
		if p == store {
			continue
		}
		inspectFiles(p, func(f *ast.File, n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 3 {
				return true
			}
			fn := calleeFunc(p.Info, call)
			pkgPath, fname := pkgFuncName(fn)
			if pkgPath != store.ImportPath || (!cacheSaveFuncs[fname] && !cacheLoadFuncs[fname]) {
				return true
			}
			// Arg layout is uniform: (path, schema, contentKey, ...).
			schemaArg, keyArg := call.Args[1], call.Args[2]
			if obj := constRef(p.Info, schemaArg); obj != nil {
				if st, ok := schemas[obj.Name()]; ok {
					if cacheSaveFuncs[fname] {
						st.saves++
					} else {
						st.loads++
					}
				}
			} else {
				r.ReportRangef(schemaArg.Pos(), schemaArg.End(), "%s.%s called with a schema that is not a cachestore.Schema* constant; ad-hoc schema tags collide silently", store.Name, fname)
			}
			if tv, ok := p.Info.Types[keyArg]; ok && tv.Value != nil {
				if v, isInt := constant.Uint64Val(tv.Value); isInt && v == 0 {
					r.ReportRangef(keyArg.Pos(), keyArg.End(), "trivial content key 0 in %s.%s call: a zero key defeats the built-against-different-inputs rejection; hash the inputs the cache depends on", store.Name, fname)
				}
			}
			return true
		})
	}

	// A partial load sees only a slice of the module's call sites and
	// tests, so the absence checks below would report schemas as orphaned
	// merely because their consumers were not loaded. The per-call-site
	// checks above remain sound — they judge only what is visible.
	if m.Partial {
		return
	}

	// Pass 2: test presence — each schema constant must appear in at
	// least one _test.go file anywhere in the module.
	tested := map[string]bool{}
	for _, p := range m.Packages {
		for _, f := range p.TestFiles {
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if _, isSchema := schemas[id.Name]; isSchema {
						tested[id.Name] = true
					}
				}
				return true
			})
		}
	}

	sort.Strings(names)
	for _, name := range names {
		st := schemas[name]
		switch {
		case st.saves == 0 && st.loads == 0:
			r.Reportf(st.obj.Pos(), "%s has no Save or Load call site outside %s: a schema constant without consumers is dead weight or a sign the spill moved off the cachestore seam", name, store.Name)
		case st.saves == 0:
			r.Reportf(st.obj.Pos(), "%s has Load call sites but no Save call site outside %s: nothing ever writes this spill", name, store.Name)
		case st.loads == 0:
			r.Reportf(st.obj.Pos(), "%s has Save call sites but no Load call site outside %s: this spill is written but never warm-starts anything", name, store.Name)
		}
		if !tested[name] {
			r.Reportf(st.obj.Pos(), "%s is not exercised by any test: extend the cachestore damage-matrix tests so corrupt-file degradation is proven for this schema", name)
		}
	}
}

// findCachestore locates the persistence package under audit: the real
// internal/cachestore when loaded, else any package named cachestore
// (the fixture twin).
func findCachestore(m *Module) *Package {
	if p := m.Pkg(m.Path + "/internal/cachestore"); p != nil {
		return p
	}
	for _, p := range m.Packages {
		if p.Name == "cachestore" {
			return p
		}
	}
	return nil
}

// constRef resolves an expression to the constant object it references
// (identifier or selector), or nil.
func constRef(info *types.Info, e ast.Expr) *types.Const {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	c, _ := info.Uses[id].(*types.Const)
	return c
}
