package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomichygiene enforces all-or-nothing atomicity on fields: a field
// that participates in sync/atomic anywhere in the module may never be
// read or written plainly anywhere else. Mixed access is exactly the
// cachetable failure mode — the XOR-tagged slots and the service
// counters are only coherent because *every* access goes through
// atomic.Load/Store/Add; one plain read compiles fine, usually passes,
// and tears under pmevo-serve's concurrent traffic unless -race happens
// to schedule the collision.
//
// Two styles are covered. Fields declared with a sync/atomic type
// (atomic.Uint64, atomic.Int64, atomic.Pointer[T], ...) may only be
// used as a method receiver (x.f.Load()) or have their address taken —
// anything else (a value copy, an assignment) bypasses the API. Fields
// of plain type whose address reaches a sync/atomic function anywhere
// (atomic.AddInt64(&x.f, 1)) may only appear as &f directly inside such
// a call; a bare read or write races with the atomic sites, which the
// finding names.
type atomichygiene struct{}

func (*atomichygiene) Name() string { return "atomichygiene" }

func (*atomichygiene) Doc() string {
	return "a field accessed via sync/atomic anywhere may never be read or written plainly elsewhere"
}

// atomicUse records how the module touches one atomic-participating
// variable.
type atomicUse struct {
	declared bool      // the var's type is from sync/atomic
	site     token.Pos // one sync/atomic call involving the var (style a)
}

func (*atomichygiene) Run(m *Module, r Reporter) {
	// Pass 1: collect the atomic-participating fields module-wide.
	// Object identity spans packages: the whole module shares one
	// type-checking universe, so a cachetable field seen from evo is the
	// same *types.Var.
	vars := map[*types.Var]*atomicUse{}
	for _, p := range m.Packages {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.Ident:
					if v, ok := p.Info.Defs[n].(*types.Var); ok && isAtomicType(v.Type()) {
						vars[v] = &atomicUse{declared: true}
					}
				case *ast.CallExpr:
					if !isAtomicPkgCall(p.Info, n) {
						return true
					}
					for _, a := range n.Args {
						if v := addressedVar(p.Info, a); v != nil && !isAtomicType(v.Type()) {
							if vars[v] == nil {
								vars[v] = &atomicUse{site: n.Pos()}
							}
						}
					}
				}
				return true
			})
		}
	}
	if len(vars) == 0 {
		return
	}

	// Pass 2: audit every use. Sanctioned uses are collected first
	// (method receivers, address-of, direct &f arguments of atomic
	// calls), then any remaining mention is a violation.
	for _, p := range m.Packages {
		for _, f := range p.Files {
			sanctioned := map[*ast.Ident]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					// x.f.M(): the receiver read of a declared-atomic field
					// is the API, not a plain access.
					if _, isMethod := p.Info.Uses[n.Sel].(*types.Func); !isMethod {
						return true
					}
					if id := fieldUseIdent(p.Info, n.X, vars, true); id != nil {
						sanctioned[id] = true
					}
				case *ast.UnaryExpr:
					// &x.f of a declared-atomic field delegates to the
					// pointer; for style (a) fields the address is only
					// sanctioned directly inside an atomic call (below).
					if n.Op != token.AND {
						return true
					}
					if id := fieldUseIdent(p.Info, n.X, vars, true); id != nil {
						sanctioned[id] = true
					}
				case *ast.CallExpr:
					if !isAtomicPkgCall(p.Info, n) {
						return true
					}
					for _, a := range n.Args {
						if u, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && u.Op == token.AND {
							if id := fieldUseIdent(p.Info, u.X, vars, false); id != nil {
								sanctioned[id] = true
							}
						}
					}
				case *ast.CompositeLit:
					// Field keys in a literal initialize a value nothing
					// else can see yet — pre-publication, not an access.
					for _, el := range n.Elts {
						if kv, ok := el.(*ast.KeyValueExpr); ok {
							if id, ok := kv.Key.(*ast.Ident); ok {
								sanctioned[id] = true
							}
						}
					}
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || sanctioned[id] {
					return true
				}
				v, ok := p.Info.Uses[id].(*types.Var)
				if !ok {
					return true
				}
				u, tracked := vars[v]
				if !tracked {
					return true
				}
				if u.declared {
					r.ReportRangef(id.Pos(), id.End(), "plain use of atomic-typed field %s bypasses its Load/Store API; a value copy tears under concurrent access", id.Name)
				} else {
					site := m.Fset.Position(u.site)
					r.ReportRangef(id.Pos(), id.End(), "plain access to %s races with its sync/atomic use at %s:%d; every access must go through sync/atomic",
						id.Name, m.relFile(site.Filename), site.Line)
				}
				return true
			})
		}
	}
}

// isAtomicType reports whether t is a named type from sync/atomic.
func isAtomicType(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}

// isAtomicPkgCall reports whether the call invokes a sync/atomic
// package-level function (AddInt64, LoadUint64, CompareAndSwap...).
func isAtomicPkgCall(info *types.Info, call *ast.CallExpr) bool {
	pkgPath, _ := pkgFuncName(calleeFunc(info, call))
	return pkgPath == "sync/atomic"
}

// addressedVar unwraps &path to the field or variable at the path's
// tip, or nil if the argument is not a direct address-of.
func addressedVar(info *types.Info, arg ast.Expr) *types.Var {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	switch x := ast.Unparen(u.X).(type) {
	case *ast.SelectorExpr:
		v, _ := info.Uses[x.Sel].(*types.Var)
		return v
	case *ast.Ident:
		v, _ := info.Uses[x].(*types.Var)
		return v
	}
	return nil
}

// fieldUseIdent resolves an expression to the identifier of a tracked
// variable use at its tip (x.f or a bare ident), filtered to declared
// atomics when declaredOnly is set.
func fieldUseIdent(info *types.Info, e ast.Expr, vars map[*types.Var]*atomicUse, declaredOnly bool) *ast.Ident {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		id = x.Sel
	case *ast.Ident:
		id = x
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	u, ok := vars[v]
	if !ok || (declaredOnly && !u.declared) {
		return nil
	}
	return id
}
