package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goroutinejoin requires every go statement in library code to carry a
// provable join or termination path. PR 8's leak tests sample this
// property at runtime; this analyzer makes it structural. A spawn is
// accepted when one of the recognized disciplines holds:
//
//   - WaitGroup pairing: the goroutine calls Done on a WaitGroup that
//     the enclosing function Adds to, and the function (or its caller,
//     for a non-local WaitGroup) Waits on it — engine's worker pools.
//   - ctx-cancel: the goroutine selects on ctx.Done() or polls
//     runctrl.Check, so cancellation bounds its lifetime.
//   - done-channel: the goroutine receives from (or ranges over, or
//     selects on) a channel that the enclosing function closes or sends
//     on — lifecycle's signal watcher — or conversely sends on a
//     channel the function receives from (a result hand-off joins the
//     goroutine at the receive).
//   - bounded body: no loops and no channel operations; the goroutine
//     runs straight-line code to completion and cannot leak.
//
// Entry-point packages (package main) are exempt: their goroutines die
// with the process. Spawns with a lifetime argument the analyzer cannot
// see (a watcher joined by a different mechanism) carry a pmevo:allow
// naming the join.
type goroutinejoin struct{}

func (*goroutinejoin) Name() string { return "goroutinejoin" }

func (*goroutinejoin) Doc() string {
	return "every go statement in library code needs a provable join or termination path " +
		"(WaitGroup pairing, close-channel signal, or ctx-cancel select)"
}

func (*goroutinejoin) Run(m *Module, r Reporter) {
	for _, p := range m.Packages {
		if p.Name == "main" {
			continue
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if g, ok := n.(*ast.GoStmt); ok {
						checkJoin(p, r, fd, g)
					}
					return true
				})
			}
		}
	}
}

func checkJoin(p *Package, r Reporter, fd *ast.FuncDecl, g *ast.GoStmt) {
	lit, isLit := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !isLit {
		// go f(...): joinable only through a WaitGroup argument the
		// enclosing function pairs with.
		for _, arg := range g.Call.Args {
			if v := waitGroupObj(p.Info, arg); v != nil && addsAndWaits(p, fd, g, v) {
				return
			}
		}
		r.ReportRangef(g.Pos(), g.End(), "go %s: no provable join; pass a WaitGroup the caller Add/Waits, or spawn a closure with a join discipline", callName(g.Call))
		return
	}
	body := lit.Body

	// WaitGroup pairing: Done inside, Add (and Wait, for local groups)
	// outside.
	done := false
	inspectCalls(body, func(call *ast.CallExpr) {
		if v := waitGroupMethodRecv(p.Info, call, "Done"); v != nil && addsAndWaits(p, fd, g, v) {
			done = true
		}
	})
	if done {
		return
	}

	// ctx-cancel: the body observes a context's Done channel or polls
	// runctrl.Check in its loop.
	cancelable := false
	inspectCalls(body, func(call *ast.CallExpr) {
		if fn := calleeFunc(p.Info, call); fn != nil {
			if fn.Name() == "Done" && fn.Type().(*types.Signature).Recv() != nil &&
				isContextType(fn.Type().(*types.Signature).Recv().Type()) {
				cancelable = true
			}
			if pkgPath, name := pkgFuncName(fn); name == "Check" && pathEndsIn(pkgPath, "runctrl") {
				cancelable = true
			}
		}
	})
	if cancelable {
		return
	}

	// done-channel: a channel the body blocks on pairs with a
	// close/send (or receive) in the function outside this goroutine.
	joined := false
	for _, ch := range channelsObserved(p.Info, body) {
		if closesOrSignals(p.Info, fd.Body, lit, ch.obj, ch.recv) {
			joined = true
			break
		}
	}
	if joined {
		return
	}

	// Bounded body: straight-line work terminates on its own.
	if isBoundedBody(body) {
		return
	}
	r.ReportRangef(g.Pos(), g.End(), "goroutine has no provable join or termination path (no WaitGroup pairing, ctx-cancel, or done-channel signal visible in %s)", fd.Name.Name)
}

// inspectCalls visits every call in the node, including nested
// literals (a join discipline may live one closure deeper).
func inspectCalls(n ast.Node, visit func(*ast.CallExpr)) {
	ast.Inspect(n, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			visit(call)
		}
		return true
	})
}

// waitGroupObj resolves an expression (wg, &wg, s.wg) to the
// sync.WaitGroup variable at its root, or nil.
func waitGroupObj(info *types.Info, e ast.Expr) types.Object {
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = u.X
	}
	root := rootIdent(e)
	if root == nil {
		return nil
	}
	obj := info.ObjectOf(root)
	if obj == nil {
		return nil
	}
	// Accept both wg itself and a struct holding it: the root carries
	// the pairing identity either way.
	tv, ok := info.Types[e]
	if ok && isNamedType(tv.Type, "sync", "WaitGroup") {
		return obj
	}
	return nil
}

// waitGroupMethodRecv returns the root object of wg in wg.<name>(),
// when wg is a sync.WaitGroup.
func waitGroupMethodRecv(info *types.Info, call *ast.CallExpr, name string) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() == nil {
		return nil
	}
	if !isNamedType(fn.Type().(*types.Signature).Recv().Type(), "sync", "WaitGroup") {
		return nil
	}
	root := rootIdent(sel.X)
	if root == nil {
		return nil
	}
	return info.ObjectOf(root)
}

// addsAndWaits reports whether the enclosing function pairs the
// WaitGroup: an Add outside the spawned closure, plus a Wait — or a
// non-local group, whose Wait lives with the owner.
func addsAndWaits(p *Package, fd *ast.FuncDecl, g *ast.GoStmt, wg types.Object) bool {
	hasAdd, hasWait := false, false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == g {
			return false // the goroutine's own calls don't pair itself
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if v := waitGroupMethodRecv(p.Info, call, "Add"); v == wg {
				hasAdd = true
			}
			if v := waitGroupMethodRecv(p.Info, call, "Wait"); v == wg {
				hasWait = true
			}
		}
		return true
	})
	if !hasAdd {
		return false
	}
	if hasWait {
		return true
	}
	// Add without Wait is a valid split only when the group outlives
	// the function (a parameter or field — the owner Waits).
	return !declaredWithin(wg, fd.Body)
}

// chanObserved is one channel the goroutine body blocks on.
type chanObserved struct {
	obj  types.Object
	recv bool // true: the body receives; false: the body sends
}

// channelsObserved lists the channels the body receives from (unary
// <-, range, select comm) or sends on.
func channelsObserved(info *types.Info, body ast.Node) []chanObserved {
	var out []chanObserved
	add := func(e ast.Expr, recv bool) {
		root := rootIdent(e)
		if root == nil {
			return
		}
		obj := info.ObjectOf(root)
		if obj == nil {
			return
		}
		tv, ok := info.Types[e]
		if !ok {
			return
		}
		if _, isChan := types.Unalias(tv.Type).Underlying().(*types.Chan); !isChan {
			return
		}
		out = append(out, chanObserved{obj: obj, recv: recv})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				add(n.X, true)
			}
		case *ast.RangeStmt:
			add(n.X, true)
		case *ast.SendStmt:
			add(n.Chan, false)
		}
		return true
	})
	return out
}

// closesOrSignals reports whether the function body, outside the
// spawned literal, completes the channel's protocol: close/send for a
// channel the goroutine receives from, a receive for a channel the
// goroutine sends on. The search spans sibling closures — lifecycle's
// stop() closes the done channel from a returned function.
func closesOrSignals(info *types.Info, fnBody ast.Node, lit *ast.FuncLit, ch types.Object, goroutineReceives bool) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if n == lit || found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if goroutineReceives && isBuiltinCloseOf(info, n, ch) {
				found = true
			}
		case *ast.SendStmt:
			if goroutineReceives && rootObjIs(info, n.Chan, ch) {
				found = true
			}
		case *ast.UnaryExpr:
			if !goroutineReceives && n.Op == token.ARROW && rootObjIs(info, n.X, ch) {
				found = true
			}
		case *ast.RangeStmt:
			if !goroutineReceives && rootObjIs(info, n.X, ch) {
				found = true
			}
		}
		return !found
	})
	if found {
		return true
	}
	// A channel the function did not create (parameter, field) is the
	// owner's to signal.
	return !declaredWithin(ch, fnBody)
}

func isBuiltinCloseOf(info *types.Info, call *ast.CallExpr, ch types.Object) bool {
	return isBuiltin(info, call, "close") && len(call.Args) == 1 && rootObjIs(info, call.Args[0], ch)
}

func rootObjIs(info *types.Info, e ast.Expr, obj types.Object) bool {
	root := rootIdent(e)
	return root != nil && info.ObjectOf(root) == obj
}

// isBoundedBody reports whether the goroutine body is loop- and
// channel-free: it terminates by running out of statements.
func isBoundedBody(body ast.Node) bool {
	bounded := true
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt:
			bounded = false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				bounded = false
			}
		case *ast.SendStmt:
			bounded = false
		}
		return bounded
	})
	return bounded
}
