package analysis

import "go/ast"

// ctxflow enforces the cancellation contract that PR 8 plumbed through
// the compute stack: library code must accept its caller's
// context.Context rather than minting its own, exported functions that
// take a context must take it first, and exported functions that spawn
// goroutines must be cancelable at all. Entry-point packages (package
// main) are exempt — creating the root context is their job.
//
// The "compute functions that loop" half of the contract is enforced at
// the seam where it is checkable without heuristics: any exported
// function that already threads a context must put it first, and the
// Background()/TODO() ban makes dropping the caller's context visible
// wherever a loop's callee requires one. Deliberate back-compat shims
// carry a pmevo:allow annotation with a reason.
type ctxflow struct{}

func (*ctxflow) Name() string { return "ctxflow" }

func (*ctxflow) Doc() string {
	return "library code must not call context.Background()/TODO(); exported functions " +
		"taking a context.Context must take it first; exported functions spawning goroutines must take one"
}

func (*ctxflow) Run(m *Module, r Reporter) {
	for _, p := range m.Packages {
		if p.Name == "main" {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if pkgPath, name := pkgFuncName(calleeFunc(p.Info, n)); pkgPath == "context" && (name == "Background" || name == "TODO") {
						r.ReportRangef(n.Pos(), n.End(), "context.%s() in library code severs the caller's cancellation scope; accept a context.Context parameter instead", name)
					}
				case *ast.FuncDecl:
					checkCtxParams(p, r, n)
				}
				return true
			})
		}
	}
}

func checkCtxParams(p *Package, r Reporter, fn *ast.FuncDecl) {
	if !fn.Name.IsExported() || fn.Type.Params == nil {
		return
	}
	hasCtx := false
	paramIdx := 0
	for _, field := range fn.Type.Params.List {
		tv, ok := p.Info.Types[field.Type]
		width := len(field.Names)
		if width == 0 {
			width = 1
		}
		if ok && isContextType(tv.Type) {
			hasCtx = true
			if paramIdx != 0 {
				r.ReportRangef(field.Pos(), field.End(), "%s: context.Context must be the first parameter so cancellation scope reads uniformly across the API", fn.Name.Name)
			}
		}
		paramIdx += width
	}
	if !hasCtx && fn.Body != nil && spawnsGoroutine(fn.Body) {
		r.ReportRangef(fn.Pos(), fn.End(), "%s spawns goroutines but takes no context.Context; spawned work must be cancelable (see engine.ForEachWorkerCtx)", fn.Name.Name)
	}
}

// spawnsGoroutine reports whether the body contains a go statement,
// including inside nested function literals it defines (the goroutine
// still starts under this function's control).
func spawnsGoroutine(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
		}
		return !found
	})
	return found
}
