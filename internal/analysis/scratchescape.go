package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// scratchescape enforces the worker-locality contract behind PMEvo's
// parallel fitness evaluation (PLDI 2020 §5): per-worker scratch arenas
// — engine.evalScratch, machine's runScratch, and anything drawn from a
// sync.Pool — are reused across claims, so a value that escapes the
// claiming function's control (stored through a non-local path, sent on
// a channel, captured by a spawned goroutine, or returned from a
// non-accessor) can be handed to the next worker while the first still
// writes to it. The analyzer also checks the release half of the
// contract: within the claiming function, a Pool.Put (or a
// put*/release*/free*-named call) on the claimed value must dominate
// every path to the exit, or the arena silently stops being reused.
//
// Functions whose own result type is a scratch type are accessors: the
// return IS the handoff, and the caller inherits the release
// obligation, so both checks skip them. Deliberate ownership transfers
// (a fork that parks its scratch in a sibling struct for a later
// epilogue release) carry a pmevo:allow with the release site named.
type scratchescape struct{}

func (*scratchescape) Name() string { return "scratchescape" }

func (*scratchescape) Doc() string {
	return "per-worker scratch values (engine.evalScratch, machine.runScratch, sync.Pool gets) must not " +
		"escape their claiming function and must be released on every path to return"
}

// scratchTypes lists the per-worker arena types by (import-path suffix,
// name); suffix matching covers the testdata fixture twins.
var scratchTypes = [...]struct{ pathSuffix, name string }{
	{"engine", "evalScratch"},
	{"machine", "runScratch"},
}

func isScratchType(t types.Type) bool {
	for _, s := range scratchTypes {
		if isNamedType(t, s.pathSuffix, s.name) {
			return true
		}
	}
	return false
}

// isPoolMethod reports whether the call invokes the named method of
// sync.Pool.
func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamedType(sig.Recv().Type(), "sync", "Pool")
}

// isReleaseCall reports whether the call returns a scratch to its pool:
// sync.Pool.Put, or any function or method whose name reads as a
// release (putScratch, releaseArena, freeBuf).
func isReleaseCall(info *types.Info, call *ast.CallExpr) bool {
	if isPoolMethod(info, call, "Put") {
		return true
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	name := strings.ToLower(fn.Name())
	return strings.HasPrefix(name, "put") || strings.HasPrefix(name, "release") || strings.HasPrefix(name, "free")
}

// claimsScratch reports whether the call produces a fresh claim: a
// sync.Pool Get, or a call with some scratch-typed result. scratchRes
// is the result index carrying the value (Pool.Get's interface result
// is index 0).
func claimsScratch(p *Package, call *ast.CallExpr) (scratchRes int, ok bool) {
	if isPoolMethod(p.Info, call, "Get") {
		return 0, true
	}
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		return 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return 0, false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isScratchType(sig.Results().At(i).Type()) {
			return i, true
		}
	}
	return 0, false
}

// hasScratchResult reports whether the function type returns a scratch
// value — the accessor exemption.
func hasScratchResult(p *Package, ftype *ast.FuncType) bool {
	if ftype.Results == nil {
		return false
	}
	for _, field := range ftype.Results.List {
		if tv, ok := p.Info.Types[field.Type]; ok && isScratchType(tv.Type) {
			return true
		}
	}
	return false
}

func (*scratchescape) Run(m *Module, r Reporter) {
	for _, p := range m.Packages {
		funcBodies(p, func(fn funcUnit) {
			runScratchEscape(p, r, fn)
		})
	}
}

// claimSite is one scratch claim inside a function.
type claimSite struct {
	call *ast.CallExpr
	res  int
	bit  uint64
	blk  *Block
	idx  int // node index of the claiming node within blk
}

func runScratchEscape(p *Package, r Reporter, fn funcUnit) {
	// Cheap prescan: skip the CFG entirely for functions that cannot
	// claim (no call could be a Get or return a scratch type).
	found := false
	inspectShallow(fn.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := claimsScratch(p, call); ok {
				found = true
			}
		}
		return !found
	})
	if !found {
		return
	}

	cfg := BuildCFG(fn.body)
	// Assign an origin bit to each claim site, in block order.
	claims := map[*ast.CallExpr]claimSite{}
	var sites []claimSite
	for _, b := range cfg.Blocks {
		for i, n := range b.Nodes {
			inspectShallow(n, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				if res, ok := claimsScratch(p, call); ok {
					s := claimSite{call: call, res: res, bit: OriginBit(len(sites)), blk: b, idx: i}
					claims[call] = s
					sites = append(sites, s)
				}
				return true
			})
		}
	}
	if len(sites) == 0 {
		return
	}
	flow := NewFlow(p, cfg, func(c *ast.CallExpr, result int) uint64 {
		if s, ok := claims[c]; ok && result == s.res {
			return s.bit
		}
		return 0
	})
	accessor := hasScratchResult(p, fn.ftype)

	// Escape checks, flow-sensitively at each node.
	flow.Walk(func(_ *Block, _ int, n ast.Node, st varMask) {
		switch n := n.(type) {
		case *ast.SendStmt:
			if flow.ExprMask(st, n.Value) != 0 {
				r.ReportRangef(n.Pos(), n.End(), "per-worker scratch sent on a channel escapes its worker; pass results, not the arena")
			}
		case *ast.GoStmt:
			reportSpawnCaptures(p, r, flow, st, n, "per-worker scratch", "scratch")
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
					continue
				}
				var rhsMask uint64
				if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
					rhsMask = flow.ExprMask(st, n.Rhs[0])
				} else if i < len(n.Rhs) {
					rhsMask = flow.ExprMask(st, n.Rhs[i])
				}
				if rhsMask == 0 {
					continue
				}
				root := rootIdent(lhs)
				if root == nil {
					continue
				}
				obj := p.Info.ObjectOf(root)
				if obj == nil || declaredWithin(obj, fn.body) {
					continue // store into a function-local aggregate stays in the worker
				}
				r.ReportRangef(n.Pos(), n.End(), "per-worker scratch stored through %s escapes the claiming function; it can be re-claimed while still referenced", root.Name)
			}
		case *ast.ReturnStmt:
			if accessor {
				return
			}
			for _, res := range n.Results {
				if flow.ExprMask(st, res) != 0 {
					r.ReportRangef(n.Pos(), n.End(), "per-worker scratch returned from a non-accessor; only functions whose result type is the scratch type may hand one out")
				}
			}
		}
	})

	// Release check: every claim must be covered on every path to exit.
	if accessor {
		return // the caller inherits the obligation with the value
	}
	any := flow.AnyMask()
	for _, s := range sites {
		bit := s.bit
		releases := func(n ast.Node) bool {
			rel := false
			ast.Inspect(n, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok || !isReleaseCall(p.Info, call) {
					return true
				}
				for _, a := range call.Args {
					if flow.ExprMask(any, a)&bit != 0 {
						rel = true
					}
				}
				return !rel
			})
			return rel
		}
		if cfg.ReachesExitAvoiding(s.blk, s.idx+1, releases) {
			r.ReportRangef(s.call.Pos(), s.call.End(), "scratch claimed here is not released (Pool.Put or put*/release*/free*) on every path to return")
		}
	}
}

// reportSpawnCaptures flags go-statement arguments and closure captures
// whose value carries an origin mask under st. what/short name the
// contract in the message.
func reportSpawnCaptures(p *Package, r Reporter, flow *Flow, st varMask, g *ast.GoStmt, what, short string) {
	for _, a := range g.Call.Args {
		if flow.ExprMask(st, a) != 0 {
			r.ReportRangef(a.Pos(), a.End(), "%s passed to a spawned goroutine outlives the claim; the worker may re-claim it concurrently", what)
		}
	}
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		for _, v := range freeVars(p.Info, lit) {
			if st[v] != 0 {
				r.ReportRangef(g.Pos(), g.End(), "%s %s captured by a spawned goroutine outlives the claim", what, v.Name())
			}
		}
	}
}
