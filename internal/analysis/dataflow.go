package analysis

import (
	"go/ast"
	"go/types"
)

// This file is the value-flow half of the analysis core: a forward
// dataflow over the CFG that tracks which "origins" — analyzer-chosen
// source expressions such as a sync.Pool.Get result or a cache-load
// error — each local variable may hold at each program point.
//
// The abstraction is deliberately coarse and sound-for-the-contracts:
// each variable carries a bitmask of origins, assignment propagates
// masks, and writes through a selector/index/pointer fold the mask into
// the access path's root object (so a local aggregate that absorbed an
// origin is treated as carrying it — the alias-set view of locals and
// their fields). Join is mask union; the lattice is finite, so the
// fixpoint terminates. Functions with more than 63 origin sites fold
// the surplus onto the overflow bit — conservatively merged, never
// dropped.

// originOverflowBit collects origin sites beyond the per-function mask
// width; queries on it answer for "some late origin".
const originOverflowBit = uint64(1) << 63

// OriginBit maps the i-th origin site of a function to its mask bit.
func OriginBit(i int) uint64 {
	if i >= 63 {
		return originOverflowBit
	}
	return uint64(1) << uint(i)
}

// varMask is the per-point state: object → origin bitmask.
type varMask map[types.Object]uint64

func cloneMask(m varMask) varMask {
	out := make(varMask, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// joinInto unions src into dst, reporting whether dst changed.
func joinInto(dst varMask, src varMask) bool {
	changed := false
	for k, v := range src {
		if dst[k]|v != dst[k] {
			dst[k] |= v
			changed = true
		}
	}
	return changed
}

// Flow is the fixpoint result of one function's origin analysis.
type Flow struct {
	p   *Package
	cfg *CFG
	// originAt assigns origin bits to call results: result index r of
	// call c carries the returned mask (0: none). The hook is consulted
	// with r == 0 for single-value uses of a call.
	originAt func(c *ast.CallExpr, result int) uint64
	in       []varMask // per block, state at block entry
}

// NewFlow runs the forward origin analysis over fn's CFG to fixpoint.
func NewFlow(p *Package, cfg *CFG, originAt func(c *ast.CallExpr, result int) uint64) *Flow {
	f := &Flow{p: p, cfg: cfg, originAt: originAt, in: make([]varMask, len(cfg.Blocks))}
	for i := range f.in {
		f.in[i] = varMask{}
	}
	work := make([]*Block, len(cfg.Blocks))
	queued := make([]bool, len(cfg.Blocks))
	copy(work, cfg.Blocks)
	for i := range queued {
		queued[i] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false
		st := cloneMask(f.in[b.Index])
		for _, n := range b.Nodes {
			f.transfer(st, n)
		}
		for _, s := range b.Succs {
			if joinInto(f.in[s.Index], st) && !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return f
}

// Walk replays the analysis, invoking visit on every node with the
// state holding *before* the node's own effect, in block order.
func (f *Flow) Walk(visit func(b *Block, idx int, n ast.Node, st varMask)) {
	for _, b := range f.cfg.Blocks {
		st := cloneMask(f.in[b.Index])
		for i, n := range b.Nodes {
			visit(b, i, n, st)
			f.transfer(st, n)
		}
	}
}

// ExprMask computes the origin mask an expression's value may carry
// under state st.
func (f *Flow) ExprMask(st varMask, e ast.Expr) uint64 {
	switch e := e.(type) {
	case nil:
		return 0
	case *ast.Ident:
		if obj := f.p.Info.ObjectOf(e); obj != nil {
			return st[obj]
		}
		return 0
	case *ast.ParenExpr:
		return f.ExprMask(st, e.X)
	case *ast.StarExpr:
		return f.ExprMask(st, e.X)
	case *ast.UnaryExpr:
		return f.ExprMask(st, e.X) // &x aliases x; <-ch approximates to ch's mask
	case *ast.SelectorExpr:
		// Qualified reference (pkg.V) reads the named object; a field or
		// method access inherits the base's alias set.
		if obj := f.p.Info.ObjectOf(e.Sel); obj != nil {
			if _, isPkg := f.p.Info.ObjectOf(baseIdent(e.X)).(*types.PkgName); isPkg {
				return st[obj]
			}
		}
		return f.ExprMask(st, e.X)
	case *ast.IndexExpr:
		return f.ExprMask(st, e.X)
	case *ast.SliceExpr:
		return f.ExprMask(st, e.X)
	case *ast.TypeAssertExpr:
		return f.ExprMask(st, e.X)
	case *ast.BinaryExpr:
		return f.ExprMask(st, e.X) | f.ExprMask(st, e.Y)
	case *ast.CallExpr:
		// A conversion passes its operand through; a real call
		// contributes its single-value origin, if any.
		if tv, ok := f.p.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return f.ExprMask(st, e.Args[0])
		}
		if f.originAt != nil {
			return f.originAt(e, 0)
		}
		return 0
	case *ast.CompositeLit:
		m := uint64(0)
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				m |= f.ExprMask(st, kv.Value)
				continue
			}
			m |= f.ExprMask(st, el)
		}
		return m
	case *ast.FuncLit:
		// A closure carries whatever its captured variables carry.
		m := uint64(0)
		for _, obj := range freeVars(f.p.Info, e) {
			m |= st[obj]
		}
		return m
	default:
		return 0
	}
}

// transfer applies one CFG node's effect to st.
func (f *Flow) transfer(st varMask, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		f.transferAssign(st, n.Lhs, n.Rhs)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, name := range vs.Names {
					lhs[i] = name
				}
				f.transferAssign(st, lhs, vs.Values)
			}
		}
	case *ast.RangeStmt:
		m := f.ExprMask(st, n.X)
		for _, lhs := range []ast.Expr{n.Key, n.Value} {
			if lhs != nil {
				f.assignTo(st, lhs, m)
			}
		}
	case *ast.CaseClause:
		// Type-switch clause: bind the clause's implicit object to the
		// subject's alias set.
		if subj, ok := f.cfg.typeSwitchSubject[n]; ok {
			if obj := f.p.Info.Implicits[n]; obj != nil {
				st[obj] = f.ExprMask(st, subj)
			}
		}
	}
}

func (f *Flow) transferAssign(st varMask, lhs, rhs []ast.Expr) {
	if len(rhs) == 1 && len(lhs) > 1 {
		switch r := ast.Unparen(rhs[0]).(type) {
		case *ast.CallExpr:
			// Conversions are single-valued; this is a real multi-result
			// call, with per-result origins.
			for i, lh := range lhs {
				m := uint64(0)
				if f.originAt != nil {
					m = f.originAt(r, i)
				}
				f.assignTo(st, lh, m)
			}
		case *ast.TypeAssertExpr:
			if r.Type == nil {
				return // type-switch guard: clauses bind the implicits
			}
			f.assignTo(st, lhs[0], f.ExprMask(st, r.X))
			f.assignTo(st, lhs[1], 0)
		default:
			// Comma-ok map index or channel receive: the value leg
			// inherits the container's alias set.
			f.assignTo(st, lhs[0], f.ExprMask(st, rhs[0]))
			if len(lhs) > 1 {
				f.assignTo(st, lhs[1], 0)
			}
		}
		return
	}
	for i := range lhs {
		if i < len(rhs) {
			f.assignTo(st, lhs[i], f.ExprMask(st, rhs[i]))
		} else {
			f.assignTo(st, lhs[i], 0)
		}
	}
}

// assignTo applies mask to an assignment target: plain identifiers get
// a strong update, writes through a path (x.f = v, x[i] = v, *p = v)
// fold the mask into the path's root object — the container absorbs
// what was stored into it.
func (f *Flow) assignTo(st varMask, lhs ast.Expr, mask uint64) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		if obj := f.p.Info.ObjectOf(id); obj != nil {
			st[obj] = mask
		}
		return
	}
	if root := rootIdent(lhs); root != nil {
		if obj := f.p.Info.ObjectOf(root); obj != nil {
			st[obj] |= mask
		}
	}
}

// baseIdent unwraps parens to a bare identifier, or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

// freeVars lists the variables a function literal references but does
// not declare — its captures (parameters and locals of enclosing
// scopes, including the enclosing function's receiver).
func freeVars(info *types.Info, lit *ast.FuncLit) []*types.Var {
	var out []*types.Var
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.ObjectOf(id).(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		// Declared inside the literal (params included) → not free.
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true
		}
		// Package-level variables are not captures.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}

// AnyMask unions the entry states of every block: the masks each
// variable may hold at *some* point of the function. Coverage queries
// (does this call release the claimed value?) evaluate argument masks
// against it, since they inspect nodes far from the state they hold at.
func (f *Flow) AnyMask() varMask {
	any := varMask{}
	for _, st := range f.in {
		joinInto(any, st)
	}
	return any
}

// funcUnit is one unit of flow-sensitive analysis: a declared function
// or a function literal, each analyzed over its own CFG.
type funcUnit struct {
	file  *ast.File
	decl  *ast.FuncDecl // the enclosing declaration; == the unit for non-literals
	lit   *ast.FuncLit  // nil for declarations
	name  string
	ftype *ast.FuncType
	body  *ast.BlockStmt
}

// funcBodies visits every function body in the package's non-test
// files: declarations and (recursively) the function literals inside
// them, each as its own unit. Analyzers pair this with inspectShallow
// so no statement is attributed to two units.
func funcBodies(p *Package, visit func(fn funcUnit)) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			visit(funcUnit{file: f, decl: fd, name: fd.Name.Name, ftype: fd.Type, body: fd.Body})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					visit(funcUnit{file: f, decl: fd, lit: lit,
						name: "function literal in " + fd.Name.Name, ftype: lit.Type, body: lit.Body})
				}
				return true
			})
		}
	}
}

// inspectShallow walks n without descending into function literals —
// their statements belong to the literal's own funcUnit, not to the
// node that happens to contain them.
func inspectShallow(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok && x != n {
			return false
		}
		return visit(x)
	})
}
