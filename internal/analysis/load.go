package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"pmevo/internal/engine"
)

// The stdlib source importer re-type-checks the standard library from
// GOROOT on every fresh instance — by far the dominant cost of a load.
// All loads in a process share one importer (and therefore one FileSet,
// which the importer is bound to) so that cost is paid once; the
// importer is not concurrency-safe, so stdImpMu serializes it. The
// FileSet itself is safe for concurrent use.
var (
	sharedFset = token.NewFileSet()
	stdImpMu   sync.Mutex
	sharedStd  = importer.ForCompiler(sharedFset, "source", nil)
)

// Package is one type-checked package of the module under analysis.
// Non-test files are parsed with comments and fully type-checked; test
// files are parsed (for the cachekey analyzer's test-presence checks)
// but never type-checked — analyzers must not read type information
// from them.
type Package struct {
	// ImportPath is the package's import path (modulePath/relDir).
	ImportPath string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Name is the package name from the package clauses.
	Name string
	// Files are the build-selected non-test files, with comments.
	Files []*ast.File
	// TestFiles are the _test.go files, parsed with comments only.
	TestFiles []*ast.File
	// Types and Info hold the type-checking results for Files.
	Types *types.Package
	// Info holds identifier resolution and expression types for Files.
	Info *types.Info
}

// Module is the unit the analyzer suite runs over: every loaded package
// plus the shared position table.
type Module struct {
	// Path is the module path from go.mod (e.g. "pmevo").
	Path string
	// Root is the absolute directory containing go.mod.
	Root string
	// Fset maps every parsed file, including dependencies type-checked
	// from source.
	Fset *token.FileSet
	// Packages are the loaded packages, sorted by import path.
	Packages []*Package
	// Partial reports that the module was loaded from a package pattern
	// rather than in full: whole-module analyzers (cachekey's "every
	// cache key has a test" cross-package checks) skip themselves so a
	// subtree run does not report absences it cannot see.
	Partial bool

	linesMu sync.Mutex          // guards lines; analyzers run concurrently
	lines   map[string][]string // source lines by filename, for snippets
}

// Pkg returns the loaded package with the given import path, or nil.
func (m *Module) Pkg(importPath string) *Package {
	for _, p := range m.Packages {
		if p.ImportPath == importPath {
			return p
		}
	}
	return nil
}

// loader lazily parses and type-checks module packages, resolving
// module-internal imports from the module tree and everything else
// (the standard library) through the stdlib source importer, so the
// suite needs no dependencies outside the standard library.
type loader struct {
	fset    *token.FileSet
	bctx    build.Context
	modPath string
	root    string
	pkgs    map[string]*Package // by import path; nil while loading (cycle guard)
	order   []string            // completion order
}

// Import implements types.Importer: module-internal paths load from the
// module tree, everything else from GOROOT source.
func (l *loader) Import(path string) (*types.Package, error) {
	if l.isModulePath(path) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	stdImpMu.Lock()
	defer stdImpMu.Unlock()
	return sharedStd.Import(path)
}

func (l *loader) isModulePath(path string) bool {
	return path == l.modPath || strings.HasPrefix(path, l.modPath+"/")
}

// dirFor maps a module-internal import path to its directory.
func (l *loader) dirFor(path string) string {
	if path == l.modPath {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
}

// load parses and type-checks one module package (memoized).
func (l *loader) load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %s", importPath)
		}
		return p, nil
	}
	l.pkgs[importPath] = nil // in progress
	dir := l.dirFor(importPath)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", importPath, err)
	}
	var names, testNames []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			testNames = append(testNames, name)
			continue
		}
		ok, err := l.bctx.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", importPath, err)
		}
		if !ok {
			continue
		}
		names = append(names, name)
	}
	// Parse the package's files concurrently: the shared FileSet is
	// safe for concurrent AddFile, and parsing dominates everything but
	// the first load's stdlib import.
	all := append(append([]string{}, names...), testNames...)
	parsed := make([]*ast.File, len(all))
	errs := make([]error, len(all))
	engine.ForEach(len(all), 0, func(i int) {
		parsed[i], errs[i] = parser.ParseFile(l.fset, filepath.Join(dir, all[i]), nil, parser.ParseComments|parser.SkipObjectResolution)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	files := parsed[:len(names)]
	testFiles := parsed[len(names):]
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no buildable Go files in %s", importPath, dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	p := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Name:       tpkg.Name(),
		Files:      files,
		TestFiles:  testFiles,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = p
	l.order = append(l.order, importPath)
	return p, nil
}

// moduleRoot walks upward from dir to the directory containing go.mod
// and returns it together with the declared module path.
func moduleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func newLoader(root, modPath string) *loader {
	return &loader{
		fset:    sharedFset,
		bctx:    build.Default,
		modPath: modPath,
		root:    root,
		pkgs:    map[string]*Package{},
	}
}

// LoadModule loads every package of the module rooted at or above dir:
// each directory with buildable Go files becomes a package, excluding
// testdata trees and hidden directories. Test files ride along parsed
// but unchecked.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	var pkgDirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			dir := filepath.Dir(path)
			if len(pkgDirs) == 0 || pkgDirs[len(pkgDirs)-1] != dir {
				pkgDirs = append(pkgDirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return loadDirs(root, modPath, pkgDirs)
}

// LoadPackages loads only the given directories (relative to the module
// root at or above dir) plus whatever module-internal packages they
// import. The analyzer fixtures use this to bring testdata packages,
// which LoadModule skips, under analysis.
func LoadPackages(dir string, rel ...string) (*Module, error) {
	root, modPath, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	dirs := make([]string, len(rel))
	for i, r := range rel {
		dirs[i] = filepath.Join(root, filepath.FromSlash(r))
	}
	return loadDirs(root, modPath, dirs)
}

// LoadPatterns loads the packages matching go-style patterns relative
// to the module root at or above dir ("./..." everything, "./x" one
// directory, "./x/..." a subtree) plus their module-internal imports.
// A restrictive pattern marks the module Partial, which whole-module
// analyzers consult before reporting cross-package absences.
func LoadPatterns(dir string, patterns []string) (*Module, error) {
	for _, pat := range patterns {
		p := strings.TrimPrefix(pat, "./")
		if p == "..." || p == "" || p == "." {
			return LoadModule(dir)
		}
	}
	root, modPath, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	var pkgDirs []string
	seen := map[string]bool{}
	addDir := func(d string) error {
		if seen[d] {
			return nil
		}
		ents, err := os.ReadDir(d)
		if err != nil {
			return fmt.Errorf("pattern directory %s: %w", d, err)
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				seen[d] = true
				pkgDirs = append(pkgDirs, d)
				return nil
			}
		}
		return nil
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		rest, isSubtree := strings.CutSuffix(pat, "/...")
		base := filepath.Join(root, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
		if !isSubtree {
			base = filepath.Join(root, filepath.FromSlash(strings.TrimSuffix(pat, "/")))
			if err := addDir(base); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				return addDir(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if len(pkgDirs) == 0 {
		return nil, fmt.Errorf("no packages match %s", strings.Join(patterns, " "))
	}
	m, err := loadDirs(root, modPath, pkgDirs)
	if err != nil {
		return nil, err
	}
	m.Partial = true
	return m, nil
}

func loadDirs(root, modPath string, pkgDirs []string) (*Module, error) {
	l := newLoader(root, modPath)
	for _, dir := range pkgDirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		if _, err := l.load(importPath); err != nil {
			return nil, err
		}
	}
	m := &Module{Path: modPath, Root: root, Fset: l.fset}
	for _, path := range l.order {
		m.Packages = append(m.Packages, l.pkgs[path])
	}
	sort.Slice(m.Packages, func(i, j int) bool { return m.Packages[i].ImportPath < m.Packages[j].ImportPath })
	return m, nil
}
