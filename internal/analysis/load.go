package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
// Non-test files are parsed with comments and fully type-checked; test
// files are parsed (for the cachekey analyzer's test-presence checks)
// but never type-checked — analyzers must not read type information
// from them.
type Package struct {
	// ImportPath is the package's import path (modulePath/relDir).
	ImportPath string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Name is the package name from the package clauses.
	Name string
	// Files are the build-selected non-test files, with comments.
	Files []*ast.File
	// TestFiles are the _test.go files, parsed with comments only.
	TestFiles []*ast.File
	// Types and Info hold the type-checking results for Files.
	Types *types.Package
	// Info holds identifier resolution and expression types for Files.
	Info *types.Info
}

// Module is the unit the analyzer suite runs over: every loaded package
// plus the shared position table.
type Module struct {
	// Path is the module path from go.mod (e.g. "pmevo").
	Path string
	// Root is the absolute directory containing go.mod.
	Root string
	// Fset maps every parsed file, including dependencies type-checked
	// from source.
	Fset *token.FileSet
	// Packages are the loaded packages, sorted by import path.
	Packages []*Package
}

// Pkg returns the loaded package with the given import path, or nil.
func (m *Module) Pkg(importPath string) *Package {
	for _, p := range m.Packages {
		if p.ImportPath == importPath {
			return p
		}
	}
	return nil
}

// loader lazily parses and type-checks module packages, resolving
// module-internal imports from the module tree and everything else
// (the standard library) through the stdlib source importer, so the
// suite needs no dependencies outside the standard library.
type loader struct {
	fset    *token.FileSet
	bctx    build.Context
	modPath string
	root    string
	pkgs    map[string]*Package // by import path; nil while loading (cycle guard)
	order   []string            // completion order
	stdImp  types.Importer
}

// Import implements types.Importer: module-internal paths load from the
// module tree, everything else from GOROOT source.
func (l *loader) Import(path string) (*types.Package, error) {
	if l.isModulePath(path) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.stdImp.Import(path)
}

func (l *loader) isModulePath(path string) bool {
	return path == l.modPath || strings.HasPrefix(path, l.modPath+"/")
}

// dirFor maps a module-internal import path to its directory.
func (l *loader) dirFor(path string) string {
	if path == l.modPath {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
}

// load parses and type-checks one module package (memoized).
func (l *loader) load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %s", importPath)
		}
		return p, nil
	}
	l.pkgs[importPath] = nil // in progress
	dir := l.dirFor(importPath)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", importPath, err)
	}
	var files, testFiles []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			testFiles = append(testFiles, f)
			continue
		}
		ok, err := l.bctx.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", importPath, err)
		}
		if !ok {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no buildable Go files in %s", importPath, dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	p := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Name:       tpkg.Name(),
		Files:      files,
		TestFiles:  testFiles,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = p
	l.order = append(l.order, importPath)
	return p, nil
}

// moduleRoot walks upward from dir to the directory containing go.mod
// and returns it together with the declared module path.
func moduleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func newLoader(root, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		bctx:    build.Default,
		modPath: modPath,
		root:    root,
		pkgs:    map[string]*Package{},
		stdImp:  importer.ForCompiler(fset, "source", nil),
	}
}

// LoadModule loads every package of the module rooted at or above dir:
// each directory with buildable Go files becomes a package, excluding
// testdata trees and hidden directories. Test files ride along parsed
// but unchecked.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	var pkgDirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			dir := filepath.Dir(path)
			if len(pkgDirs) == 0 || pkgDirs[len(pkgDirs)-1] != dir {
				pkgDirs = append(pkgDirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return loadDirs(root, modPath, pkgDirs)
}

// LoadPackages loads only the given directories (relative to the module
// root at or above dir) plus whatever module-internal packages they
// import. The analyzer fixtures use this to bring testdata packages,
// which LoadModule skips, under analysis.
func LoadPackages(dir string, rel ...string) (*Module, error) {
	root, modPath, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	dirs := make([]string, len(rel))
	for i, r := range rel {
		dirs[i] = filepath.Join(root, filepath.FromSlash(r))
	}
	return loadDirs(root, modPath, dirs)
}

func loadDirs(root, modPath string, pkgDirs []string) (*Module, error) {
	l := newLoader(root, modPath)
	for _, dir := range pkgDirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		if _, err := l.load(importPath); err != nil {
			return nil, err
		}
	}
	m := &Module{Path: modPath, Root: root, Fset: l.fset}
	for _, path := range l.order {
		m.Packages = append(m.Packages, l.pkgs[path])
	}
	sort.Slice(m.Packages, func(i, j int) bool { return m.Packages[i].ImportPath < m.Packages[j].ImportPath })
	return m, nil
}
