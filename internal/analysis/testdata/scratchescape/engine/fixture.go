// Package engine is the scratchescape fixture: a twin of the real
// engine's per-worker arena. evalScratch values claimed from the pool
// must stay inside the claiming function and be released on every path
// to return.
package engine

import "sync"

// evalScratch is the fixture twin of engine's per-worker arena.
type evalScratch struct {
	buf []float64
}

var scratchPool sync.Pool

// getScratch is an accessor: its result type is the scratch type, so
// the return is the hand-off and the caller inherits the release
// obligation.
func getScratch() *evalScratch {
	return scratchPool.Get().(*evalScratch)
}

func putScratch(s *evalScratch) {
	scratchPool.Put(s)
}

// GoodSum claims, uses, and releases on every path via defer.
func GoodSum(xs []float64) float64 {
	s := getScratch()
	defer putScratch(s)
	t := 0.0
	for _, x := range xs {
		t += x
	}
	s.buf = append(s.buf[:0], t)
	return t
}

// GoodDirectPool drives the pool without the accessor: the Get claim
// and the Put release pair up directly.
func GoodDirectPool() {
	s := scratchPool.Get().(*evalScratch)
	s.buf = s.buf[:0]
	scratchPool.Put(s)
}

// BadLeak releases on one path only: the empty-input return leaks the
// claim.
func BadLeak(xs []float64) float64 {
	s := getScratch() // want "not released"
	if len(xs) == 0 {
		return 0
	}
	putScratch(s)
	return xs[0]
}

// BadSend hands the arena to another worker over a channel.
func BadSend(ch chan *evalScratch) {
	s := getScratch()
	ch <- s // want "sent on a channel"
	putScratch(s)
}

// BadSpawnArg passes the arena into a spawned goroutine.
func BadSpawnArg(f func(*evalScratch)) {
	s := getScratch()
	go f(s) // want "passed to a spawned goroutine"
	putScratch(s)
}

// BadCapture lets a spawned closure keep writing after the release.
func BadCapture() {
	s := getScratch()
	go func() { // want "captured by a spawned goroutine"
		s.buf = nil
	}()
	putScratch(s)
}

type worker struct {
	scratch *evalScratch
}

// BadStash parks the arena in a struct that outlives the claim.
func (w *worker) BadStash() {
	s := getScratch()
	w.scratch = s // want "stored through w"
	putScratch(s)
}

// BadReturn hands the arena out of a function whose signature does not
// say so — and never releases it.
func BadReturn() any {
	s := getScratch() // want "not released"
	return s          // want "returned from a non-accessor"
}

// Park mirrors machine/run.go's fork hand-off: a deliberate ownership
// transfer whose release happens elsewhere, recorded with an allow.
func (w *worker) Park() {
	s := getScratch() //pmevo:allow scratchescape -- fixture twin of the fork hand-off; the epilogue releases it
	w.scratch = s
}
