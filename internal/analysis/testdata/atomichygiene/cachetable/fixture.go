// Package cachetable is the atomichygiene fixture: a twin of the real
// cache table's counters. hits participates in sync/atomic by address
// (style a), gen is declared with an atomic type (style b); any plain
// access to either is a violation.
package cachetable

import "sync/atomic"

// Table mixes both atomic styles with one untracked plain field.
type Table struct {
	hits uint64
	gen  atomic.Int64
	cap  int
}

// New initializes hits in the literal: pre-publication, nothing else
// can see the value yet, so the init is sanctioned.
func New(cap int, warmHits uint64) *Table {
	return &Table{cap: cap, hits: warmHits}
}

// Hit and Hits are the sanctioned style-a accesses: the address goes
// straight into a sync/atomic call.
func (t *Table) Hit() {
	atomic.AddUint64(&t.hits, 1)
}

func (t *Table) Hits() uint64 {
	return atomic.LoadUint64(&t.hits)
}

// Bump uses the declared-atomic API: the field as a method receiver.
func (t *Table) Bump() {
	t.gen.Add(1)
}

// Cap reads an untracked field; the analyzer has no opinion.
func (t *Table) Cap() int { return t.cap }

// BadPlainRead races with the atomic.AddUint64 in Hit.
func (t *Table) BadPlainRead() uint64 {
	return t.hits // want "races with its sync/atomic use"
}

// BadReset writes over the counter the atomic sites increment.
func (t *Table) BadReset() {
	t.hits = 0 // want "races with its sync/atomic use"
}

// BadCopy copies the declared-atomic field by value, bypassing its API.
func (t *Table) BadCopy() int64 {
	g := t.gen // want "plain use of atomic-typed field gen"
	return g.Load()
}
