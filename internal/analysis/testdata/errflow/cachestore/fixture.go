// Package cachestore is the errflow fixture's loader seam: Load* and
// Warm* errors mean the persisted cache is absent or stale, and the
// consumer must degrade to cold start.
package cachestore

import "errors"

var errStale = errors.New("stale spill")

// Table is the warm-cache payload consumers load.
type Table struct {
	Entries map[string]int
}

// LoadTable is a covered loader with the (value, error) shape.
func LoadTable(path string) (*Table, error) {
	if path == "" {
		return nil, errStale
	}
	return &Table{Entries: map[string]int{}}, nil
}

// WarmStart is a covered loader with an error-only result.
func WarmStart(path string) error {
	if path == "" {
		return errStale
	}
	return nil
}
