// Package consumer exercises the cold-start degradation contract on
// the fixture cachestore's loaders.
package consumer

import (
	"fmt"

	"pmevo/internal/analysis/testdata/errflow/cachestore"
)

func record(err error) {}

// GoodColdStart checks the error and degrades to an empty table — the
// contract.
func GoodColdStart(path string) *cachestore.Table {
	t, err := cachestore.LoadTable(path)
	if err != nil {
		return &cachestore.Table{Entries: map[string]int{}}
	}
	return t
}

// GoodLogged hands the error to a recorder: observed, not dropped.
func GoodLogged(path string) {
	err := cachestore.WarmStart(path)
	record(err)
}

// LoadAll is itself a loader by name: propagating the typed error up
// to the degradation seam is its job, so it is exempt.
func LoadAll(paths []string) error {
	for _, p := range paths {
		if err := cachestore.WarmStart(p); err != nil {
			return err
		}
	}
	return nil
}

// BadDrop discards the error leg outright.
func BadDrop(path string) *cachestore.Table {
	t, _ := cachestore.LoadTable(path) // want "error assigned to _"
	return t
}

// BadBare drops every result on the floor.
func BadBare(path string) {
	cachestore.WarmStart(path) // want "error discarded"
}

// BadReturn turns a warm-cache miss into the caller's failure.
func BadReturn(path string) error {
	err := cachestore.WarmStart(path)
	return err // want "error returned into the result path"
}

// BadWrap: wrapping the error does not launder the propagation.
func BadWrap(path string) error {
	if err := cachestore.WarmStart(path); err != nil {
		return fmt.Errorf("warm start: %w", err) // want "error returned into the result path"
	}
	return nil
}

// BadIgnored binds the error and never looks at it.
func BadIgnored(path string) *cachestore.Table {
	t, err := cachestore.LoadTable(path) // want "error is never checked"
	_ = err
	return t
}
