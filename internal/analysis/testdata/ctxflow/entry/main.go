// Command entry is the ctxflow scope control: package main is where
// root contexts are made, so context.Background here is not a finding.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
