// Package lib is the ctxflow fixture: context discipline in library
// code — no minted root contexts, ctx-first signatures, cancelable
// goroutine spawns.
package lib

import "context"

func BadBackground() context.Context {
	return context.Background() // want "context.Background"
}

func BadTODO() context.Context {
	return context.TODO() // want "context.TODO"
}

func BadOrder(n int, ctx context.Context) {} // want "context.Context must be the first parameter"

func BadSpawn(done chan struct{}) { // want "spawns goroutines but takes no context.Context"
	go func() { close(done) }()
}

// GoodSpawn threads the caller's context; the spawned work can be
// canceled.
func GoodSpawn(ctx context.Context, done chan struct{}) {
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
	}()
}

// GoodFirst has the context in first position.
func GoodFirst(ctx context.Context, n int) {}

// goodUnexportedSpawn is outside the exported-API contract.
func goodUnexportedSpawn(done chan struct{}) {
	go func() { close(done) }()
}

// AllowedShim mirrors engine/pool.go's back-compat wrappers.
func AllowedShim() context.Context {
	//pmevo:allow ctxflow -- fixture twin of the pool.go back-compat shims
	return context.Background()
}
