// Package main is scope control for goroutinejoin: entry-point
// goroutines die with the process, so the analyzer stands down here
// and this spawn-with-no-join produces no finding.
package main

func main() {
	go func() {
		for {
			process()
		}
	}()
	select {}
}

func process() {}
