// Package lib is the goroutinejoin fixture: every spawn in library
// code needs a provable join or termination path.
package lib

import (
	"context"
	"sync"
)

func work(i int) {}

func compute() int { return 1 }

// GoodWaitGroup pairs Add/Done/Wait — engine's worker-pool shape.
func GoodWaitGroup(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(0)
		}()
	}
	wg.Wait()
}

// GoodCtx: cancellation bounds the watcher's lifetime.
func GoodCtx(ctx context.Context, tick chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick:
				work(1)
			}
		}
	}()
}

// GoodDone: the done channel the spawn drains is closed by the
// returned stop function — lifecycle's watcher shape.
func GoodDone(events chan int) (stop func()) {
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			case e := <-events:
				work(e)
			}
		}
	}()
	return func() { close(done) }
}

// GoodHandoff: the result send joins the goroutine at the receive.
func GoodHandoff() int {
	out := make(chan int)
	go func() {
		out <- compute()
	}()
	return <-out
}

// GoodBounded: a straight-line body terminates by running out of
// statements.
func GoodBounded() {
	go func() {
		work(1)
	}()
}

// BadLoop ranges over a channel this function creates and never
// closes: the worker can never exit.
func BadLoop() chan int {
	events := make(chan int)
	go func() { // want "no provable join or termination path"
		for e := range events {
			work(e)
		}
	}()
	return events
}

// BadNamed spawns a named function with nothing to join on.
func BadNamed(n int) {
	go work(n) // want "no provable join"
}

// BadForever spins with no signal of any kind.
func BadForever() {
	go func() { // want "no provable join or termination path"
		for {
			work(2)
		}
	}()
}

// AllowedWatcher's join lives with a supervisor the analyzer cannot
// see; the annotation names it.
func AllowedWatcher() {
	//pmevo:allow goroutinejoin -- fixture twin of a supervised watcher; the supervisor joins it at shutdown
	go func() {
		for {
			work(3)
		}
	}()
}
