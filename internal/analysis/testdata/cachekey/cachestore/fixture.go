// Package cachestore is the cachekey fixture twin of
// pmevo/internal/cachestore: same Save/Load-family surface and Schema*
// constant naming, so the analyzer audits it exactly like the real
// persistence seam. The want markers sit on the schema constants
// because that is where per-schema findings are reported.
package cachestore

// Entry is a stand-in record type for table spills.
type Entry struct{ Key, Val uint64 }

const (
	SchemaGood   uint32 = 1
	SchemaNoLoad uint32 = 2 // want "no Load call site"
	SchemaNoSave uint32 = 3 // want "no Save call site"
	SchemaOrphan uint32 = 4 // want "no Save or Load call site"
	SchemaNoTest uint32 = 5 // want "not exercised by any test"
)

func Save(path string, schema uint32, contentKey uint64, entries []Entry) error {
	return nil
}

func Load(path string, schema uint32, contentKey uint64) ([]Entry, error) {
	return nil, nil
}

func SaveBlob(path string, schema uint32, contentKey uint64, blob []byte) error {
	return nil
}

func LoadBlob(path string, schema uint32, contentKey uint64) ([]byte, error) {
	return nil, nil
}
