// This file is parsed — never compiled or type-checked — by the
// analysis loader; referencing a schema constant here is what the
// cachekey test-presence pass looks for. SchemaNoTest is deliberately
// absent.
package consumer

import (
	"testing"

	cs "pmevo/internal/analysis/testdata/cachekey/cachestore"
)

func TestSchemaRoundTrips(t *testing.T) {
	_ = []uint32{cs.SchemaGood, cs.SchemaNoLoad, cs.SchemaNoSave, cs.SchemaOrphan}
}
