// Package consumer exercises the fixture cachestore the way real call
// sites do, covering each cachekey failure mode exactly once.
package consumer

import cs "pmevo/internal/analysis/testdata/cachekey/cachestore"

// Good is the healthy pattern: matched Save and Load under one Schema*
// constant, with a caller-supplied content key.
func Good(path string, key uint64, entries []cs.Entry) ([]cs.Entry, error) {
	if err := cs.Save(path, cs.SchemaGood, key, entries); err != nil {
		return nil, err
	}
	return cs.Load(path, cs.SchemaGood, key)
}

// NoLoad writes a spill nothing ever reads back.
func NoLoad(path string, key uint64, blob []byte) error {
	return cs.SaveBlob(path, cs.SchemaNoLoad, key, blob)
}

// NoSave reads a spill nothing ever writes.
func NoSave(path string, key uint64) ([]byte, error) {
	return cs.LoadBlob(path, cs.SchemaNoSave, key)
}

// NoTest round-trips correctly but its schema never appears in a test.
func NoTest(path string, key uint64, entries []cs.Entry) ([]cs.Entry, error) {
	if err := cs.Save(path, cs.SchemaNoTest, key, entries); err != nil {
		return nil, err
	}
	return cs.Load(path, cs.SchemaNoTest, key)
}

// TrivialKey passes a zero content key, defeating the
// built-against-different-inputs rejection.
func TrivialKey(path string, entries []cs.Entry) error {
	return cs.Save(path, cs.SchemaGood, 0, entries) // want "trivial content key 0"
}

// AdHocSchema tags the spill with a literal instead of a Schema*
// constant.
func AdHocSchema(path string, key uint64, entries []cs.Entry) error {
	return cs.Save(path, 42, key, entries) // want "not a cachestore.Schema"
}
