// Package evo is a detrand fixture: its name places it in the
// deterministic-package set, so global math/rand state, ad-hoc PRNG
// sources, and wall-clock reads are all violations here.
package evo

import (
	"math/rand"
	"time"
)

func BadGlobalDraw(n int) int {
	return rand.Intn(n) // want "global math/rand.Intn"
}

func BadGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand.Shuffle"
}

func BadSource(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want "ad-hoc PRNG stream"
}

func BadTimeSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "ad-hoc PRNG stream" "time-derived seed" "time.Now in deterministic package"
}

func BadClock() int64 {
	return time.Now().UnixNano() // want "time.Now in deterministic package"
}

// GoodInjected draws through an injected stream: method calls on a
// seeded *rand.Rand are the sanctioned pattern.
func GoodInjected(rng *rand.Rand, n int) int {
	return rng.Intn(n)
}

// GoodNew wraps a caller-built source; the source's construction site
// is where the contract bites, not the wrapping.
func GoodNew(src rand.Source) *rand.Rand {
	return rand.New(src)
}

// AllowedSource mirrors internal/evo/rng.go: a sanctioned construction
// site carries an annotation with a reason.
func AllowedSource(seed int64) rand.Source {
	return rand.NewSource(seed) //pmevo:allow detrand -- fixture twin of the draw-counting seam
}
