// Package other is the detrand scope control: it is not in the
// deterministic-package set, so the very same patterns produce no
// findings here.
package other

import (
	"math/rand"
	"time"
)

func GlobalDrawOutsideScope(n int) int {
	return rand.Intn(n)
}

func ClockOutsideScope() time.Time {
	return time.Now()
}
