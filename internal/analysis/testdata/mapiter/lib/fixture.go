// Package lib is the mapiter fixture: order-sensitive effects inside
// range-over-map loops, next to the near-miss patterns that must stay
// quiet (integer accumulation, collect-then-sort, loop-local state).
package lib

import "sort"

func BadFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "float accumulation"
	}
	return sum
}

func BadSpelledOutSum(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum = sum + v // want "float accumulation"
	}
	return sum
}

func BadAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys"
	}
	return keys
}

func BadSend(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want "channel send"
	}
}

// GoodIntSum: integer addition is exact and commutative, so iteration
// order cannot change the result.
func GoodIntSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// GoodSortedKeys is the canonical safe idiom: collect, then sort.
func GoodSortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GoodLoopLocal: the accumulator lives inside the loop body, so each
// iteration's sum is independent of visit order; the escaping slice is
// sorted after the loop.
func GoodLoopLocal(m map[string][]float64) []float64 {
	var out []float64
	for _, vs := range m {
		total := 0.0
		for _, v := range vs {
			total += v
		}
		out = append(out, total)
	}
	sort.Float64s(out)
	return out
}

// List mimics portmap.Experiment: Normalize establishes a canonical
// order, so collect-then-Normalize is as safe as collect-then-sort.
type List []int

func (l List) Normalize() List {
	out := append(List(nil), l...)
	sort.Ints(out)
	return out
}

func GoodCanonicalized(m map[int]int) List {
	var out List
	for k := range m {
		out = append(out, k)
	}
	return out.Normalize()
}

// GoodMapWrite: writes to distinct keys of another map commute.
func GoodMapWrite(m map[string]int) map[string]int {
	inv := make(map[string]int, len(m))
	for k, v := range m {
		inv[k] = v * 2
	}
	return inv
}
