// Package consumer is the fpguard fixture: direct writes to a
// portmap.Mapping's decomposition state outside internal/portmap, next
// to the sanctioned mutator calls and read-only patterns.
package consumer

import "pmevo/internal/portmap"

func BadWrites(m *portmap.Mapping, uops []portmap.UopCount) {
	m.Decomp[0] = uops       // want "direct write to Mapping.Decomp"
	m.Decomp[0][0].Count = 2 // want "direct write to Mapping.Decomp"
	m.Decomp = nil           // want "direct write to Mapping.Decomp"
	m.Decomp[0][0].Count++   // want "direct write to Mapping.Decomp"
}

func BadAppend(m *portmap.Mapping, uc portmap.UopCount) []portmap.UopCount {
	return append(m.Decomp[0], uc) // want "append onto Mapping.Decomp"
}

func BadAddress(m *portmap.Mapping) *[]portmap.UopCount {
	return &m.Decomp[0] // want "taking the address of Mapping.Decomp"
}

// GoodMutators go through the fingerprint-maintaining API.
func GoodMutators(m *portmap.Mapping, uops []portmap.UopCount) {
	m.SetDecomp(0, uops)
	m.AddUop(0, portmap.SinglePort(0), 1)
	m.SetUopCount(0, 0, 3)
	uc := m.RemoveUopAt(0, 0)
	m.InsertUopAt(0, 0, uc)
}

// GoodReads: reading decomposition state is unrestricted, including
// copying it out.
func GoodReads(m *portmap.Mapping) []portmap.UopCount {
	n := 0
	for _, uc := range m.Decomp[0] {
		n += uc.Count
	}
	cp := append([]portmap.UopCount(nil), m.Decomp[0]...)
	return cp
}

// GoodOtherField: fields outside the decomposition seam are not
// guarded.
func GoodOtherField(m *portmap.Mapping, names []string) {
	m.InstNames = names
}
