// Package lib is the suppression-hygiene fixture: pmevo:allow
// annotations that are malformed or cover nothing are themselves
// findings (analyzer name "allow"), so the exception list cannot rot.
package lib

//pmevo:allow detrand -- stale exception left behind by a refactor // want "matches no finding"
var usedToViolate = 1

//pmevo:allow detrand // want "without a reason"
var missingReason = 2

//pmevo:allow nosuchanalyzer -- typo in the analyzer name // want "unknown analyzer"
var unknownName = 3
