// Package lib is the serialhandle fixture: Evaluator carries the
// serial doc tag, so its handles must stay with the goroutine that
// created them.
package lib

// Evaluator is the fixture twin of engine.BatchEvaluator: it owns
// draw-counted state only one goroutine may advance.
//
//pmevo:serial
type Evaluator struct {
	draws int
}

// NewEvaluator is the sanctioned hand-off: a constructor returning the
// handle.
func NewEvaluator() *Evaluator { return &Evaluator{} }

type island struct {
	ev *Evaluator
}

var shared *Evaluator

// GoodLocal keeps the handle inside one goroutine: local assignments
// stay confined.
func GoodLocal() int {
	ev := NewEvaluator()
	other := ev
	other.draws++
	return other.draws
}

// GoodIsland mirrors evo's per-island state: a deliberate store into a
// single-goroutine structure carries the ownership annotation.
func GoodIsland() *island {
	ev := NewEvaluator()
	return &island{
		//pmevo:allow serialhandle -- fixture twin of the per-island handle; one worker goroutine owns each island
		ev: ev,
	}
}

// BadGlobal publishes the handle to every goroutine.
func BadGlobal() {
	ev := NewEvaluator()
	shared = ev // want "stored in package variable shared"
}

// BadSend moves the handle to whichever goroutine drains the channel.
func BadSend(ch chan *Evaluator) {
	ev := NewEvaluator()
	ch <- ev // want "sent on a channel"
}

// BadSpawnArg hands the handle to a spawned goroutine directly.
func BadSpawnArg(work func(*Evaluator)) {
	ev := NewEvaluator()
	go work(ev) // want "passed to a spawned goroutine"
}

// BadCapture lets a spawned closure advance the serial state.
func BadCapture() {
	ev := NewEvaluator()
	go func() { // want "captured by a spawned goroutine"
		ev.draws++
	}()
}

// BadStash stores the handle through a parameter path another
// goroutine can read it back out of.
func BadStash(isl *island) {
	ev := NewEvaluator()
	isl.ev = ev // want "escapes the creating function"
}

// BadLit builds a shared-able aggregate around the handle without a
// documented owner.
func BadLit() island {
	ev := NewEvaluator()
	return island{ev: ev} // want "stored into a composite literal"
}
