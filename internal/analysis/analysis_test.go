package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture tests pin each analyzer's exact findings: every
// // want "substring" marker in a fixture must match one unsuppressed
// finding on its line, and every finding must be claimed by a marker.

func TestDetrandFixture(t *testing.T) {
	runFixture(t, []Analyzer{&detrand{}},
		"internal/analysis/testdata/detrand/evo",
		"internal/analysis/testdata/detrand/other")
}

func TestMapiterFixture(t *testing.T) {
	runFixture(t, []Analyzer{&mapiter{}},
		"internal/analysis/testdata/mapiter/lib")
}

func TestCtxflowFixture(t *testing.T) {
	runFixture(t, []Analyzer{&ctxflow{}},
		"internal/analysis/testdata/ctxflow/lib",
		"internal/analysis/testdata/ctxflow/entry")
}

func TestFpguardFixture(t *testing.T) {
	runFixture(t, []Analyzer{&fpguard{}},
		"internal/analysis/testdata/fpguard/consumer")
}

func TestCachekeyFixture(t *testing.T) {
	runFixture(t, []Analyzer{&cachekey{}},
		"internal/analysis/testdata/cachekey/cachestore",
		"internal/analysis/testdata/cachekey/consumer")
}

func TestScratchescapeFixture(t *testing.T) {
	runFixture(t, []Analyzer{&scratchescape{}},
		"internal/analysis/testdata/scratchescape/engine")
}

func TestAtomichygieneFixture(t *testing.T) {
	runFixture(t, []Analyzer{&atomichygiene{}},
		"internal/analysis/testdata/atomichygiene/cachetable")
}

func TestSerialhandleFixture(t *testing.T) {
	runFixture(t, []Analyzer{&serialhandle{}},
		"internal/analysis/testdata/serialhandle/lib")
}

func TestGoroutinejoinFixture(t *testing.T) {
	runFixture(t, []Analyzer{&goroutinejoin{}},
		"internal/analysis/testdata/goroutinejoin/lib",
		"internal/analysis/testdata/goroutinejoin/entry")
}

func TestErrflowFixture(t *testing.T) {
	runFixture(t, []Analyzer{&errflow{}},
		"internal/analysis/testdata/errflow/cachestore",
		"internal/analysis/testdata/errflow/consumer")
}

func TestAllowHygieneFixture(t *testing.T) {
	runFixture(t, Suite(),
		"internal/analysis/testdata/allowcheck/lib")
}

// TestModuleSelfCheck runs the full suite over the real module: main
// must stay clean, and every deliberate exception must still be
// earning its keep.
func TestModuleSelfCheck(t *testing.T) {
	m, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	findings, allows, err := Run(m, Suite())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range Unsuppressed(findings) {
		t.Errorf("unsuppressed finding on main: %s", f)
	}
	if len(allows) == 0 {
		t.Error("no pmevo:allow annotations found; the deliberate exceptions (engine/pool.go shims, evo/rng.go seam) should be present")
	}
	for _, a := range allows {
		if !a.Used {
			t.Errorf("stale suppression: %s", a)
		}
	}
}

type findingKey struct {
	file string
	line int
}

func runFixture(t *testing.T, analyzers []Analyzer, dirs ...string) {
	t.Helper()
	m, err := LoadPackages(".", dirs...)
	if err != nil {
		t.Fatalf("LoadPackages(%v): %v", dirs, err)
	}
	findings, _, err := Run(m, analyzers)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wants := collectWants(t, m.Root, dirs)

	got := map[findingKey][]string{}
	for _, f := range Unsuppressed(findings) {
		if !inFixtureDirs(f.File, dirs) {
			t.Errorf("finding outside fixture dirs: %s", f)
			continue
		}
		k := findingKey{f.File, f.Line}
		got[k] = append(got[k], f.Message)
	}

	for k, markers := range wants {
		msgs := got[k]
		delete(got, k)
		for _, marker := range markers {
			matched := -1
			for i, msg := range msgs {
				if strings.Contains(msg, marker) {
					matched = i
					break
				}
			}
			if matched < 0 {
				t.Errorf("%s:%d: no finding matching want %q (findings on line: %q)", k.file, k.line, marker, msgs)
				continue
			}
			msgs = append(msgs[:matched], msgs[matched+1:]...)
		}
		for _, msg := range msgs {
			t.Errorf("%s:%d: finding not claimed by any want marker: %s", k.file, k.line, msg)
		}
	}
	for k, msgs := range got {
		for _, msg := range msgs {
			t.Errorf("%s:%d: unexpected finding (no want markers on line): %s", k.file, k.line, msg)
		}
	}
}

func inFixtureDirs(file string, dirs []string) bool {
	for _, d := range dirs {
		if strings.HasPrefix(file, d+"/") {
			return true
		}
	}
	return false
}

var wantQuoted = regexp.MustCompile(`"([^"]*)"`)

// collectWants scans the fixture sources for want markers. A line may
// carry several: // want "a" "b" matches two findings on that line.
func collectWants(t *testing.T, root string, dirs []string) map[findingKey][]string {
	t.Helper()
	wants := map[findingKey][]string{}
	for _, d := range dirs {
		abs := filepath.Join(root, filepath.FromSlash(d))
		ents, err := os.ReadDir(abs)
		if err != nil {
			t.Fatalf("reading fixture dir: %v", err)
		}
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(abs, e.Name()))
			if err != nil {
				t.Fatalf("reading fixture: %v", err)
			}
			rel := d + "/" + e.Name()
			for i, line := range strings.Split(string(data), "\n") {
				idx := strings.Index(line, `want "`)
				if idx < 0 {
					continue
				}
				k := findingKey{rel, i + 1}
				for _, mm := range wantQuoted.FindAllStringSubmatch(line[idx:], -1) {
					wants[k] = append(wants[k], mm[1])
				}
			}
		}
	}
	if len(wants) == 0 {
		// Scope-control fixtures legitimately carry no markers, but at
		// least one dir per call should; a typo'd marker comment would
		// otherwise pass silently.
		for _, d := range dirs {
			if strings.Contains(d, "/other") || strings.Contains(d, "/entry") {
				continue
			}
			t.Fatalf("no want markers found under %v", dirs)
		}
	}
	return wants
}
