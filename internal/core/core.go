// Package core orchestrates the PMEvo pipeline of paper Figure 5:
//
//	ISA description ──► experiment generation ──► throughput measurement
//	      # ports ──────► congruence filtering ──► evolutionary optimization
//	                                                    │
//	                                               port mapping
//
// The pipeline is agnostic to how experiments are measured: any
// exp.Measurer works, including measure.Harness (the simulated hardware
// of this reproduction) or a driver for real silicon. That separation is
// exactly the paper's portability claim — only steady-state wall-clock
// throughput is ever observed.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pmevo/internal/congruence"
	"pmevo/internal/evo"
	"pmevo/internal/exp"
	"pmevo/internal/isa"
	"pmevo/internal/portmap"
)

// Config configures an inference run.
type Config struct {
	// NumPorts is the port count hyperparameter (Figure 5: "# ports").
	NumPorts int
	// Epsilon is the congruence-filtering tolerance (paper: 0.05).
	Epsilon float64
	// Evo configures the evolutionary algorithm. Evo.NumPorts is
	// overridden by NumPorts.
	Evo evo.Options
	// PortNames optionally names the ports of the resulting mapping.
	PortNames []string
	// Progress, if non-nil, receives human-readable stage updates.
	Progress func(stage string)
}

// DefaultConfig returns a medium-scale configuration for the given port
// count.
func DefaultConfig(numPorts int) Config {
	return Config{
		NumPorts: numPorts,
		Epsilon:  0.05,
		Evo:      evo.DefaultOptions(numPorts),
	}
}

// Result is the outcome of an inference run.
type Result struct {
	// Mapping is the inferred port mapping over the full ISA.
	Mapping *portmap.Mapping
	// RepMapping is the mapping over congruence-class representatives
	// that the evolutionary algorithm actually produced.
	RepMapping *portmap.Mapping
	// Classes is the congruence partition.
	Classes *congruence.Classes
	// Set is the complete measured experiment set; RepSet its projection
	// onto class representatives.
	Set    *exp.Set
	RepSet *exp.Set
	// Evo carries the evolutionary algorithm's statistics.
	Evo *evo.Result
	// MeasurementTime and InferenceTime split the wall-clock cost into
	// the measurement phase and the search phase (the two time rows of
	// Table 2).
	MeasurementTime time.Duration
	InferenceTime   time.Duration
}

// NumUops returns the number of distinct µops in the inferred mapping
// (Table 2: "number of µops").
func (r *Result) NumUops() int { return len(r.Mapping.DistinctUops()) }

// CongruentFraction returns the fraction of instruction forms eliminated
// by congruence filtering (Table 2: "insns found congruent").
func (r *Result) CongruentFraction() float64 { return r.Classes.ReductionRatio() }

// Infer runs the full PMEvo pipeline for the given ISA against the
// measurer.
//
// Cancellation and deadlines are honored through ctx at every
// long-running stage. An interruption during measurement or congruence
// filtering returns a plain error (there is no useful partial pipeline
// state); an interruption during the evolutionary search returns the
// typed evo.ErrCanceled/ErrDeadline ALONG WITH a complete Result built
// from the best mapping found so far — callers check
// evo.Interrupted(err) and may use or discard the partial result. With
// cfg.Evo.CheckpointDir set the search also checkpoints, so a later run
// with cfg.Evo.Resume continues where the interruption hit.
func Infer(ctx context.Context, a *isa.ISA, m exp.Measurer, cfg Config) (*Result, error) {
	if a == nil || a.NumForms() == 0 {
		return nil, errors.New("core: empty ISA")
	}
	if m == nil {
		return nil, errors.New("core: nil measurer")
	}
	if cfg.NumPorts <= 0 || cfg.NumPorts > portmap.MaxPorts {
		return nil, fmt.Errorf("core: invalid port count %d", cfg.NumPorts)
	}
	if cfg.Epsilon <= 0 {
		return nil, errors.New("core: epsilon must be positive")
	}
	progress := cfg.Progress
	if progress == nil {
		progress = func(string) {}
	}

	// Stage 1+2: experiment generation and measurement (§4.1, §4.2).
	progress("generating and measuring experiments")
	tMeasure := time.Now()
	set, err := exp.GenerateAndMeasure(ctx, m, a.NumForms())
	if err != nil {
		if evo.Interrupted(err) {
			return nil, err
		}
		return nil, fmt.Errorf("core: measurement failed: %w", err)
	}
	measurementTime := time.Since(tMeasure)

	// Stage 3: congruence filtering (§4.3).
	progress("congruence filtering")
	tInfer := time.Now()
	classes, err := congruence.Partition(set, cfg.Epsilon)
	if err != nil {
		return nil, err
	}
	repSet := classes.ProjectSet(set)

	// Stage 4: evolutionary optimization over representatives (§4.4).
	progress(fmt.Sprintf("evolving port mappings over %d representatives", repSet.NumInsts))
	evoOpts := cfg.Evo
	evoOpts.NumPorts = cfg.NumPorts
	evoRes, evoErr := evo.Run(ctx, repSet, evoOpts)
	if evoErr != nil && !(evo.Interrupted(evoErr) && evoRes != nil && evoRes.Best != nil) {
		return nil, evoErr
	}

	// Expand the representative mapping to the full ISA. An interrupted
	// search with a partial best expands it exactly like a final one, so
	// the caller gets a usable (if under-evolved) mapping plus the typed
	// interruption error.
	names := make([]string, a.NumForms())
	for _, f := range a.Forms() {
		names[f.ID] = f.Name()
	}
	full := classes.ExpandMapping(evoRes.Best, names)
	full.PortNames = cfg.PortNames
	evoRes.Best.PortNames = cfg.PortNames
	if err := full.Validate(); err != nil {
		return nil, fmt.Errorf("core: inferred mapping invalid: %w", err)
	}
	if evoErr != nil {
		progress("interrupted")
	} else {
		progress("done")
	}

	return &Result{
		Mapping:         full,
		RepMapping:      evoRes.Best,
		Classes:         classes,
		Set:             set,
		RepSet:          repSet,
		Evo:             evoRes,
		MeasurementTime: measurementTime,
		InferenceTime:   time.Since(tInfer),
	}, evoErr
}
