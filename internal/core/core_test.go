package core

import (
	"context"
	"math"
	"strings"
	"testing"

	"pmevo/internal/evo"
	"pmevo/internal/isa"
	"pmevo/internal/portmap"
	"pmevo/internal/throughput"
)

// miniISA builds a small ISA whose classes map 1:1 onto a hidden
// mapping: 6 forms, two congruent pairs.
func miniISA(t *testing.T) *isa.ISA {
	t.Helper()
	a := isa.New("mini")
	for _, mnem := range []string{"add", "sub", "mul", "store", "load", "shuf"} {
		a.MustAddForm(isa.Form{
			Mnemonic: mnem,
			Operands: []isa.Operand{
				{Kind: isa.KindReg, Class: isa.ClassGPR, Width: 64, Write: true},
				{Kind: isa.KindReg, Class: isa.ClassGPR, Width: 64, Read: true},
			},
			Class: mnem,
		})
	}
	return a
}

// hiddenMapping: add/sub on p01 (congruent), mul on p0, store = p01+p2,
// load on p2, shuf on p1.
func hiddenMapping() *portmap.Mapping {
	m := portmap.NewMapping(6, 3)
	p01 := portmap.MakePortSet(0, 1)
	m.SetDecomp(0, []portmap.UopCount{{Ports: p01, Count: 1}})
	m.SetDecomp(1, []portmap.UopCount{{Ports: p01, Count: 1}})
	m.SetDecomp(2, []portmap.UopCount{{Ports: portmap.MakePortSet(0), Count: 1}})
	m.SetDecomp(3, []portmap.UopCount{{Ports: p01, Count: 1}, {Ports: portmap.MakePortSet(2), Count: 1}})
	m.SetDecomp(4, []portmap.UopCount{{Ports: portmap.MakePortSet(2), Count: 1}})
	m.SetDecomp(5, []portmap.UopCount{{Ports: portmap.MakePortSet(1), Count: 1}})
	return m
}

type modelMeasurer struct {
	m     *portmap.Mapping
	calls int
}

func (mm *modelMeasurer) Measure(e portmap.Experiment) (float64, error) {
	mm.calls++
	return throughput.OfExperiment(mm.m, e), nil
}

func testConfig() Config {
	cfg := DefaultConfig(3)
	cfg.Evo = evo.Options{
		PopulationSize:  200,
		MaxGenerations:  40,
		NumPorts:        3,
		LocalSearch:     true,
		VolumeObjective: true,
		Seed:            13,
		Workers:         2,
	}
	return cfg
}

func TestInferEndToEnd(t *testing.T) {
	a := miniISA(t)
	hidden := hiddenMapping()
	mm := &modelMeasurer{m: hidden}
	var stages []string
	cfg := testConfig()
	cfg.Progress = func(s string) { stages = append(stages, s) }

	res, err := Infer(context.Background(), a, mm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapping.NumInsts() != 6 {
		t.Fatalf("mapping covers %d forms", res.Mapping.NumInsts())
	}
	if err := res.Mapping.Validate(); err != nil {
		t.Fatalf("invalid mapping: %v", err)
	}
	// add and sub are congruent; the filter must merge at least them.
	if res.Classes.NumClasses() >= 6 {
		t.Errorf("no congruence found: %d classes", res.Classes.NumClasses())
	}
	if res.Classes.ClassOf[0] != res.Classes.ClassOf[1] {
		t.Error("add and sub should be congruent")
	}
	// Expanded mapping must give congruent forms identical decomps.
	if res.Mapping.UopCountOf(0) != res.Mapping.UopCountOf(1) {
		t.Error("congruent forms have different decompositions")
	}
	// Prediction quality on the training set.
	if res.Evo.BestError > 0.06 {
		t.Errorf("final Davg = %g", res.Evo.BestError)
	}
	// The full mapping must predict well on experiments over ALL forms
	// (not just representatives).
	worst := 0.0
	for _, e := range []portmap.Experiment{
		{{Inst: 1, Count: 1}, {Inst: 3, Count: 1}},
		{{Inst: 0, Count: 2}, {Inst: 4, Count: 1}},
		{{Inst: 5, Count: 1}, {Inst: 2, Count: 1}, {Inst: 1, Count: 1}},
	} {
		want := throughput.OfExperiment(hidden, e)
		got := throughput.OfExperiment(res.Mapping, e)
		if rel := math.Abs(got-want) / want; rel > worst {
			worst = rel
		}
	}
	// The two-objective fitness trades some worst-case accuracy for
	// compactness (the paper's heat maps show comparable outliers).
	if worst > 0.35 {
		t.Errorf("worst full-ISA prediction error %g", worst)
	}
	// Progress reporting fired for every stage.
	joined := strings.Join(stages, ";")
	for _, want := range []string{"measuring", "congruence", "evolving", "done"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing progress stage %q in %v", want, stages)
		}
	}
	if res.MeasurementTime <= 0 || res.InferenceTime <= 0 {
		t.Error("timings not recorded")
	}
	if res.NumUops() < 1 {
		t.Error("no µops in result")
	}
	if res.CongruentFraction() <= 0 {
		t.Error("congruent fraction should be positive")
	}
}

func TestInferValidation(t *testing.T) {
	a := miniISA(t)
	mm := &modelMeasurer{m: hiddenMapping()}
	if _, err := Infer(context.Background(), nil, mm, testConfig()); err == nil {
		t.Error("nil ISA accepted")
	}
	if _, err := Infer(context.Background(), isa.New("empty"), mm, testConfig()); err == nil {
		t.Error("empty ISA accepted")
	}
	if _, err := Infer(context.Background(), a, nil, testConfig()); err == nil {
		t.Error("nil measurer accepted")
	}
	bad := testConfig()
	bad.NumPorts = 0
	if _, err := Infer(context.Background(), a, mm, bad); err == nil {
		t.Error("zero ports accepted")
	}
	bad = testConfig()
	bad.Epsilon = 0
	if _, err := Infer(context.Background(), a, mm, bad); err == nil {
		t.Error("zero epsilon accepted")
	}
}

func TestInferDeterministic(t *testing.T) {
	a := miniISA(t)
	cfg := testConfig()
	cfg.Evo.MaxGenerations = 8
	r1, err := Infer(context.Background(), a, &modelMeasurer{m: hiddenMapping()}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Infer(context.Background(), a, &modelMeasurer{m: hiddenMapping()}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Mapping.Equal(r2.Mapping) {
		t.Error("same seed produced different mappings")
	}
}

func TestInferUsesPortNames(t *testing.T) {
	a := miniISA(t)
	cfg := testConfig()
	cfg.Evo.MaxGenerations = 5
	cfg.PortNames = []string{"A", "B", "C"}
	res, err := Infer(context.Background(), a, &modelMeasurer{m: hiddenMapping()}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapping.PortNames[1] != "B" {
		t.Errorf("PortNames = %v", res.Mapping.PortNames)
	}
	if res.Mapping.InstNames[0] != "add_r64_r64" {
		t.Errorf("InstNames = %v", res.Mapping.InstNames[:2])
	}
}
