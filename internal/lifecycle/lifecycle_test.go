package lifecycle

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestClampDeadline(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want time.Duration
		ok   bool
	}{
		{0, 0, false},
		{-5 * time.Second, 0, false},
		{time.Nanosecond, time.Nanosecond, true},
		{3 * time.Second, 3 * time.Second, true},
	}
	for _, c := range cases {
		got, ok := ClampDeadline(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("ClampDeadline(%v) = (%v, %v), want (%v, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestSignalContextNoDeadline(t *testing.T) {
	ctx, stop := SignalContext(context.Background(), 0)
	defer stop()
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("zero -deadline installed a context deadline")
	}
	select {
	case <-ctx.Done():
		t.Fatal("context done without signal or deadline")
	default:
	}
}

func TestSignalContextDeadlineExpires(t *testing.T) {
	ctx, stop := SignalContext(context.Background(), 10*time.Millisecond)
	defer stop()
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("positive -deadline installed no context deadline")
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("deadline never expired")
	}
	if err := ctx.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ctx.Err() = %v, want DeadlineExceeded", err)
	}
}

func TestSignalContextStopReleases(t *testing.T) {
	ctx, stop := SignalContext(context.Background(), time.Hour)
	stop()
	// After stop the timeout context is canceled; the important part is
	// that stop is idempotent and releases the signal registration.
	stop()
	<-ctx.Done()
}
