// Package lifecycle provides the process-level robustness seam shared
// by the three cmds: a root context wired to SIGINT/SIGTERM and an
// optional deadline, plus a spill-on-signal hook for tools whose only
// interruption response is persisting their caches before exit.
//
// The division of labor: long-running library entry points honor
// context cancellation (internal/runctrl's typed errors); this package
// owns how a *process* produces that context and what it does when the
// operating system, rather than the library, ends the run.
package lifecycle

import (
	"context"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// ClampDeadline normalizes a -deadline flag value: zero or negative
// durations mean "no deadline" (mirroring evo's clamp-at-the-seam
// convention for out-of-range knobs), anything positive is kept.
func ClampDeadline(d time.Duration) (time.Duration, bool) {
	if d <= 0 {
		return 0, false
	}
	return d, true
}

// SignalContext returns a context that is canceled on SIGINT/SIGTERM
// and, if deadline is positive, expires after it (so library code
// returns runctrl.ErrCanceled or ErrDeadline respectively). stop
// releases the signal registration; a second signal after the first
// kills the process through Go's default handling, so a hung cleanup
// can still be interrupted from the keyboard.
func SignalContext(parent context.Context, deadline time.Duration) (ctx context.Context, stop context.CancelFunc) {
	ctx, sigStop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	if d, ok := ClampDeadline(deadline); ok {
		var timeStop context.CancelFunc
		ctx, timeStop = context.WithTimeout(ctx, d)
		return ctx, func() { timeStop(); sigStop() }
	}
	return ctx, sigStop
}

// OnSignalSpill runs spill when SIGINT/SIGTERM arrives and then exits
// with the conventional 128+signal status. It is the whole interruption
// story for tools with no resumable in-flight state (pmevo-bench,
// pmevo-sim): the caches they have warmed are persisted — mirroring
// their spill-on-fatalf path — and the process ends. Returns a stop
// function that deregisters the handler (call it once the process
// reaches its normal spill point). Tools with resumable state
// (pmevo-infer) use SignalContext instead and let cancellation
// propagate.
//
//pmevo:allow ctxflow -- process-lifetime signal watcher: the returned stop() is its cancellation scope; a ctx would duplicate it
func OnSignalSpill(spill func()) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			if spill != nil {
				spill()
			}
			code := 128 + int(syscall.SIGTERM)
			if s, ok := sig.(syscall.Signal); ok {
				code = 128 + int(s)
			}
			os.Exit(code)
		case <-done:
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
