package eval

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestTable1ContainsPaperRows(t *testing.T) {
	out := Table1()
	for _, want := range []string{
		"SKL", "ZEN", "A72",
		"Intel", "AMD", "RockChip",
		"Skylake", "Zen+", "Cortex-A72",
		"8 + DIV", "10", "7 + BR",
		"3.4 GHz", "3.6 GHz", "1.8 GHz",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestScaleValidate(t *testing.T) {
	for _, s := range []Scale{DefaultScale(), QuickScale(), FullScale()} {
		if err := s.Validate(); err != nil {
			t.Errorf("scale %+v invalid: %v", s, err)
		}
	}
	bad := QuickScale()
	bad.Population = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid scale accepted")
	}
}

func TestSubsetFormsStratified(t *testing.T) {
	run, err := RunPipeline(context.Background(), "SKL", QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	// One form per class at QuickScale.
	classes := run.Proc.ISA.Classes()
	if run.SubISA.NumForms() != len(classes) {
		t.Errorf("subset has %d forms for %d classes", run.SubISA.NumForms(), len(classes))
	}
	// FormIDs must point back to forms with identical names.
	for i, f := range run.SubISA.Forms() {
		orig := run.Proc.ISA.Form(run.FormIDs[i])
		if orig.Name() != f.Name() {
			t.Errorf("subset form %d = %q, original %q", i, f.Name(), orig.Name())
		}
	}
	if err := run.Result.Mapping.Validate(); err != nil {
		t.Errorf("inferred mapping invalid: %v", err)
	}
}

func TestRunPipelineUnknownProcessor(t *testing.T) {
	if _, err := RunPipeline(context.Background(), "P4", QuickScale()); err == nil {
		t.Error("unknown processor accepted")
	}
}

func TestFigure6Shape(t *testing.T) {
	scale := QuickScale()
	scale.Figure6MaxLen = 5
	res, err := RunFigure6(context.Background(), scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lengths) != 5 {
		t.Fatalf("got %d lengths", len(res.Lengths))
	}
	// Qualitative claim of Figure 6: the error for short experiments is
	// small (model holds) and grows with length.
	if res.MAPEUopsInfo[0] > 8 {
		t.Errorf("length-1 MAPE %.1f%% too high; model should fit singletons", res.MAPEUopsInfo[0])
	}
	if res.MAPEUopsInfo[len(res.MAPEUopsInfo)-1] < res.MAPEUopsInfo[0] {
		t.Errorf("MAPE should grow with length: %v", res.MAPEUopsInfo)
	}
	out := res.Render()
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "uops.info") {
		t.Errorf("render missing headers:\n%s", out)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 6 {
		t.Errorf("CSV has %d lines, want 6", lines)
	}
}

func TestSuiteTables(t *testing.T) {
	suite, err := NewSuite(context.Background(), QuickScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := suite.Table2()
	if len(rows) != 3 {
		t.Fatalf("Table 2 has %d rows", len(rows))
	}
	for _, r := range rows {
		if r.BenchmarkingHours <= 0 {
			t.Errorf("%s: non-positive benchmarking time", r.Arch)
		}
		if r.NumUops < 1 {
			t.Errorf("%s: no µops", r.Arch)
		}
		if r.CongruentPct < 0 || r.CongruentPct >= 100 {
			t.Errorf("%s: congruent pct %.1f out of range", r.Arch, r.CongruentPct)
		}
	}
	out := RenderTable2(rows)
	for _, want := range []string{"benchmarking time", "inference time", "insns found congruent", "number of µops"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 render missing %q:\n%s", want, out)
		}
	}

	acc, err := suite.Accuracy(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// SKL: 5 tools; ZEN: 2; A72: 2.
	if len(acc.rowsFor("SKL")) != 5 {
		t.Errorf("SKL has %d tools, want 5", len(acc.rowsFor("SKL")))
	}
	if len(acc.rowsFor("ZEN")) != 2 || len(acc.rowsFor("A72")) != 2 {
		t.Errorf("ZEN/A72 tool counts wrong")
	}

	// Qualitative Table 4 claim: PMEvo clearly beats llvm-mca on ZEN and
	// A72.
	for _, arch := range []string{"ZEN", "A72"} {
		var pmevo, mca float64
		for _, row := range acc.rowsFor(arch) {
			switch row.Tool {
			case "PMEvo":
				pmevo = row.MAPE
			case "llvm-mca":
				mca = row.MAPE
			}
		}
		if pmevo >= mca {
			t.Errorf("%s: PMEvo MAPE %.1f%% should beat llvm-mca %.1f%%", arch, pmevo, mca)
		}
	}

	// Qualitative Table 3 claim: Ithemal is far worse than the
	// port-mapping-based tools on dependency-free experiments.
	var ithemal, uopsinfo float64
	for _, row := range acc.rowsFor("SKL") {
		switch row.Tool {
		case "Ithemal":
			ithemal = row.MAPE
		case "uops.info":
			uopsinfo = row.MAPE
		}
	}
	if ithemal < 2*uopsinfo {
		t.Errorf("Ithemal MAPE %.1f%% should be much worse than uops.info %.1f%%", ithemal, uopsinfo)
	}

	t3 := acc.RenderTable3()
	for _, want := range []string{"PMEvo", "uops.info", "IACA", "llvm-mca", "Ithemal"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table 3 missing %q:\n%s", want, t3)
		}
	}
	t4 := acc.RenderTable4()
	if !strings.Contains(t4, "PMEvo (ZEN)") || !strings.Contains(t4, "llvm-mca (A72)") {
		t.Errorf("Table 4 render wrong:\n%s", t4)
	}
	f7 := acc.RenderFigure7()
	if strings.Count(f7, "---") < 9 {
		t.Errorf("Figure 7 should have 9 panels:\n%s", f7[:200])
	}
	var buf bytes.Buffer
	if err := acc.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "arch,tool,") {
		t.Error("accuracy CSV header missing")
	}
}

func TestFigure8ShapesAndCrossCheck(t *testing.T) {
	scale := QuickScale()
	res, err := RunFigure8(scale)
	if err != nil {
		t.Fatal(err) // includes the engine cross-check
	}
	if len(res.PortSweep) != 17 { // ports 4..20
		t.Fatalf("port sweep has %d points", len(res.PortSweep))
	}
	if len(res.LengthSweep) != 10 {
		t.Fatalf("length sweep has %d points", len(res.LengthSweep))
	}
	// Qualitative Figure 8 claim: at realistic port counts (≤ 10) the
	// bottleneck algorithm is much faster than the LP solver.
	for _, p := range res.PortSweep {
		if p.X > 10 {
			continue
		}
		if p.BottleneckSec >= p.LPSec {
			t.Errorf("ports=%d: bottleneck %.3g s not faster than LP %.3g s",
				p.X, p.BottleneckSec, p.LPSec)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "Figure 8a") || !strings.Contains(out, "Figure 8b") {
		t.Errorf("render missing sections:\n%s", out)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 1+17+10 {
		t.Errorf("CSV has %d lines", lines)
	}
}

// TestMeasureBenchArchBitExact smokes the measurement benchmark driver
// on the cheapest processor: it must report a positive speedup and —
// enforced inside the driver — bit-identical measurements between the
// fast path and the brute-force baseline.
func TestMeasureBenchArchBitExact(t *testing.T) {
	row, err := runMeasureBenchArch(context.Background(), "A72", QuickScale(), "")
	if err != nil {
		t.Fatal(err)
	}
	if row.Experiments == 0 || row.Fast.Measurements != row.Baseline.Measurements {
		t.Fatalf("bad accounting: %+v", row)
	}
	if row.Fast.SimHits == 0 {
		t.Error("fast path recorded no kernel-cache hits on a class-redundant form set")
	}
	if row.Baseline.SimHits != 0 || row.Baseline.SimMisses != 0 {
		t.Errorf("baseline recorded cache traffic: %+v", row.Baseline)
	}
	if row.Speedup() <= 1 {
		t.Errorf("measurement fast path slower than brute force: %+v", row)
	}
	res := &MeasureBenchResult{Archs: []MeasureBenchArch{row}}
	if out := res.Render(); len(out) == 0 {
		t.Error("empty render")
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "A72,fast") {
		t.Errorf("CSV missing rows:\n%s", sb.String())
	}
}
