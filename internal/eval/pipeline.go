package eval

import (
	"context"
	"fmt"

	"pmevo/internal/core"
	"pmevo/internal/evo"
	"pmevo/internal/isa"
	"pmevo/internal/measure"
	"pmevo/internal/portmap"
	"pmevo/internal/uarch"
)

// translateExperiment maps instruction indices through ids.
func translateExperiment(e portmap.Experiment, ids []int) portmap.Experiment {
	out := make(portmap.Experiment, len(e))
	for i, t := range e {
		out[i] = portmap.InstCount{Inst: ids[t.Inst], Count: t.Count}
	}
	return out
}

// PipelineRun is a complete PMEvo inference against one virtual
// processor at a given scale.
type PipelineRun struct {
	Proc *uarch.Processor
	// SubISA is the (possibly class-stratified) instruction subset the
	// pipeline ran on; FormIDs maps its form IDs to the processor ISA.
	SubISA  *isa.ISA
	FormIDs []int
	// Harness is the measurement harness used (its accounting feeds the
	// Table 2 benchmarking-time row).
	Harness *measure.Harness
	// Result is the inference outcome; Result.Mapping is in subset
	// instruction space.
	Result *core.Result
}

// RunPipeline executes the full PMEvo pipeline for the named processor.
//
// ctx cancellation and deadlines propagate into measurement and the
// evolutionary search (core.Infer): an interruption during the search
// returns the typed evo.ErrCanceled/ErrDeadline along with a
// PipelineRun built from the best mapping found so far, so callers can
// checkpoint-and-report rather than lose the run. Scale.CheckpointDir /
// Resume plumb crash-safe checkpointing through to evo.
func RunPipeline(ctx context.Context, procName string, scale Scale) (*PipelineRun, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	proc, err := uarch.ByName(procName)
	if err != nil {
		return nil, err
	}
	sub, ids, err := subsetForms(proc.ISA, scale.MaxFormsPerClass)
	if err != nil {
		return nil, err
	}

	mopts := measure.DefaultOptions()
	mopts.Seed = scale.Seed
	h, err := measure.NewHarness(proc, mopts)
	if err != nil {
		return nil, err
	}

	cfg := core.DefaultConfig(proc.Config.NumPorts)
	cfg.PortNames = proc.PortNames
	cfg.Evo = evo.Options{
		PopulationSize:     scale.Population,
		MaxGenerations:     scale.MaxGenerations,
		NumPorts:           proc.Config.NumPorts,
		LocalSearch:        true,
		VolumeObjective:    true,
		Seed:               scale.Seed,
		Islands:            scale.Islands,
		MigrationInterval:  scale.MigrationInterval,
		MigrationCount:     scale.MigrationCount,
		CheckpointDir:      scale.CheckpointDir,
		CheckpointInterval: scale.CheckpointInterval,
		Resume:             scale.Resume,
		Log:                scale.Log,
	}

	res, err := core.Infer(ctx, sub, measure.SubsetMeasurer{H: h, IDs: ids}, cfg)
	if err != nil && !(evo.Interrupted(err) && res != nil) {
		return nil, fmt.Errorf("eval: inference on %s failed: %w", procName, err)
	}
	return &PipelineRun{
		Proc:    proc,
		SubISA:  sub,
		FormIDs: ids,
		Harness: h,
		Result:  res,
	}, err
}
