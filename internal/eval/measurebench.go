package eval

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"pmevo/internal/exp"
	"pmevo/internal/machine"
	"pmevo/internal/measure"
	"pmevo/internal/uarch"
)

// MeasureBenchResult reports the §4.2 measurement throughput at Table 1
// scale: the full experiment-generation-and-measurement protocol
// (singletons, pairs, weighted pairs) on each of the three virtual
// processors, timed with the measurement fast path on (steady-state
// period detection in the simulator plus the kernel-level simulation
// cache) and off (brute-force cycle-by-cycle simulation, no cache). The
// measured throughputs are bit-identical by construction — RunMeasureBench
// verifies this — so the pair quantifies pure measurement speedup.
//
// With WarmStart set (pmevo-bench -cache-dir), the fast runs additionally
// start from whatever the kernel cache already holds — typically a spill
// file loaded by measure.LoadSimCache — instead of being flushed to a
// cold cache, and report the disk-warm subset of their hits. The
// baseline runs bypass the cache entirely either way, so the bit-equality
// check also pins warm results identical to cold ones.
type MeasureBenchResult struct {
	Archs []MeasureBenchArch
	// WarmStart records whether the fast runs kept (rather than flushed)
	// the pre-existing kernel-cache contents.
	WarmStart bool
}

// MeasureBenchArch is one processor's timed pair of runs.
type MeasureBenchArch struct {
	Arch        string
	Forms       int
	Experiments int
	Fast        MeasureBenchRun
	Baseline    MeasureBenchRun
}

// MeasureBenchRun is one timed generate-and-measure pass.
type MeasureBenchRun struct {
	Seconds      float64
	Measurements int
	PerSec       float64
	SimHits      int64
	SimMisses    int64
	// SimWarmHits is the subset of SimHits served by entries loaded
	// from a cache file (nonzero only on warm-started runs).
	SimWarmHits int64
}

// Speedup returns the per-arch baseline-over-fast wall-time ratio.
func (a MeasureBenchArch) Speedup() float64 {
	if a.Fast.Seconds <= 0 {
		return 0
	}
	return a.Baseline.Seconds / a.Fast.Seconds
}

// Speedup returns the aggregate speedup over all architectures (total
// baseline time over total fast time).
func (r *MeasureBenchResult) Speedup() float64 {
	var fast, base float64
	for _, a := range r.Archs {
		fast += a.Fast.Seconds
		base += a.Baseline.Seconds
	}
	if fast <= 0 {
		return 0
	}
	return base / fast
}

// RunMeasureBench times the measurement pipeline on all three Table 1
// processors at the given scale, fast path versus baseline, and errors
// if the two produce different measurements anywhere (the fast path must
// be bit-exact). A non-empty cacheDir selects disk-warm timing: each
// fast run starts from exactly the directory's spill file (flush, then
// reload — entries seeded by earlier drivers in the same process are
// dropped, so hit rates stay attributable) and re-spills the cache
// afterwards, so every arch's kernels persist even if a later arch
// fails.
func RunMeasureBench(ctx context.Context, scale Scale, cacheDir string) (*MeasureBenchResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	res := &MeasureBenchResult{WarmStart: cacheDir != ""}
	for _, name := range []string{"SKL", "ZEN", "A72"} {
		arch, err := runMeasureBenchArch(ctx, name, scale, cacheDir)
		if err != nil {
			return nil, fmt.Errorf("measure bench %s: %w", name, err)
		}
		res.Archs = append(res.Archs, arch)
	}
	return res, nil
}

func runMeasureBenchArch(ctx context.Context, name string, scale Scale, cacheDir string) (MeasureBenchArch, error) {
	// The benchmark keeps at least two forms per semantic class: the
	// paper's form sets (310/390 forms over a few dozen classes) are
	// dominated by same-class forms with identical execution behaviour,
	// and that class-level redundancy — which the kernel cache collapses
	// — is part of the measurement workload under test. A
	// one-form-per-class subset would hide it.
	perClass := scale.MaxFormsPerClass
	if perClass == 1 {
		perClass = 2
	}
	run := func(baseline bool) (MeasureBenchRun, *exp.Set, int, error) {
		// Known cache state: earlier experiments in the same process
		// (the pipeline suite, figure 6) measure overlapping kernels on
		// the same machines; without a flush the fast run would be
		// served hits it did not pay for and the recorded speedup would
		// depend on invocation order. Disk-warm timing flushes too, then
		// reloads exactly the spill file, so every hit beyond it is paid
		// for in-run and the disk's contribution is attributed via
		// SimWarmHits. The baseline bypasses the cache either way.
		measure.FlushSimCache()
		if cacheDir != "" {
			if _, err := measure.LoadSimCache(measure.SimCachePath(cacheDir)); err != nil {
				// Cold start: the spill is absent or stale. Re-flush so a
				// partially applied load cannot skew the warm-hit
				// attribution; the in-run measurements repay the cache.
				measure.FlushSimCache()
			}
		}
		proc, err := uarch.ByName(name)
		if err != nil {
			return MeasureBenchRun{}, nil, 0, err
		}
		if baseline {
			proc.Config.PeriodDetectBudget = machine.PeriodDetectDisabled
			proc.Config.EventDrivenDisabled = true
		}
		sub, ids, err := subsetForms(proc.ISA, perClass)
		if err != nil {
			return MeasureBenchRun{}, nil, 0, err
		}
		mopts := measure.DefaultOptions()
		mopts.Seed = scale.Seed
		mopts.DisableSimCache = baseline
		h, err := measure.NewHarness(proc, mopts)
		if err != nil {
			return MeasureBenchRun{}, nil, 0, err
		}
		start := time.Now()
		set, err := exp.GenerateAndMeasure(ctx, measure.SubsetMeasurer{H: h, IDs: ids}, sub.NumForms())
		if err != nil {
			return MeasureBenchRun{}, nil, 0, err
		}
		secs := time.Since(start).Seconds()
		st := h.CacheStats()
		out := MeasureBenchRun{
			Seconds:      secs,
			Measurements: h.Measurements(),
			SimHits:      st.SimHits,
			SimMisses:    st.SimMisses,
			SimWarmHits:  st.SimWarmHits,
		}
		if secs > 0 {
			out.PerSec = float64(out.Measurements) / secs
		}
		return out, set, sub.NumForms(), nil
	}

	fast, fastSet, forms, err := run(false)
	if err != nil {
		return MeasureBenchArch{}, err
	}
	if cacheDir != "" {
		// Spill immediately: the cache now holds the disk entries plus
		// this arch's newly simulated kernels, and the next arch's run
		// flushes. Entries are pure functions of their keys, so spilling
		// mid-benchmark can never affect results.
		if err := measure.SaveSimCache(measure.SimCachePath(cacheDir)); err != nil {
			return MeasureBenchArch{}, fmt.Errorf("spill kernel cache: %w", err)
		}
	}
	base, baseSet, _, err := run(true)
	if err != nil {
		return MeasureBenchArch{}, err
	}
	if len(fastSet.Measurements) != len(baseSet.Measurements) {
		return MeasureBenchArch{}, fmt.Errorf("experiment counts diverged: %d vs %d",
			len(fastSet.Measurements), len(baseSet.Measurements))
	}
	for i := range fastSet.Measurements {
		if fastSet.Measurements[i].Throughput != baseSet.Measurements[i].Throughput {
			return MeasureBenchArch{}, fmt.Errorf(
				"measurement %d differs: fast %v != baseline %v (measurement fast path must be bit-exact)",
				i, fastSet.Measurements[i].Throughput, baseSet.Measurements[i].Throughput)
		}
	}
	return MeasureBenchArch{
		Arch:        name,
		Forms:       forms,
		Experiments: fastSet.NumExperiments(),
		Fast:        fast,
		Baseline:    base,
	}, nil
}

// Render prints the benchmark in a human-readable form.
func (r *MeasureBenchResult) Render() string {
	var b strings.Builder
	b.WriteString("Measurement throughput (§4.2 generate-and-measure, fast = period detection + kernel cache)\n")
	if r.WarmStart {
		b.WriteString("fast runs warm-started from the persistent kernel cache (-cache-dir)\n")
	}
	b.WriteString("\n")
	for _, a := range r.Archs {
		warm := ""
		if r.WarmStart {
			warm = fmt.Sprintf(" warm=%d", a.Fast.SimWarmHits)
		}
		fmt.Fprintf(&b, "%-4s %3d forms %5d experiments  fast %8.3fs (%7.0f meas/s, hits=%d misses=%d%s)  baseline %8.3fs  speedup %.2fx\n",
			a.Arch, a.Forms, a.Experiments,
			a.Fast.Seconds, a.Fast.PerSec, a.Fast.SimHits, a.Fast.SimMisses, warm,
			a.Baseline.Seconds, a.Speedup())
	}
	fmt.Fprintf(&b, "\naggregate speedup: %.2fx (bit-identical measurements)\n", r.Speedup())
	return b.String()
}

// WriteCSV emits the per-arch timed runs for machine comparison.
func (r *MeasureBenchResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "arch,config,seconds,measurements,meas_per_sec,sim_hits,sim_misses,sim_warm_hits"); err != nil {
		return err
	}
	for _, a := range r.Archs {
		for _, row := range []struct {
			name string
			run  MeasureBenchRun
		}{{"fast", a.Fast}, {"baseline", a.Baseline}} {
			if _, err := fmt.Fprintf(w, "%s,%s,%.6f,%d,%.1f,%d,%d,%d\n",
				a.Arch, row.name, row.run.Seconds, row.run.Measurements,
				row.run.PerSec, row.run.SimHits, row.run.SimMisses, row.run.SimWarmHits); err != nil {
				return err
			}
		}
	}
	return nil
}
