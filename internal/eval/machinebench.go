package eval

import (
	"fmt"
	"io"
	"strings"
	"time"

	"pmevo/internal/machine"
	"pmevo/internal/uarch"
)

// MachineBenchResult reports the raw cycle-level simulator throughput
// with the event-driven fast-forward on versus off, isolated from the
// other measurement fast paths: both sides run with period detection
// disabled, so the pair times the core stepper alone. Three kernel
// classes per Table 1 processor probe the regimes that matter:
//
//   - latency: a single-register RAW chain on the processor's highest-
//     latency instruction — the window parks for a full latency between
//     issues, the workload where stepping wastes the most cycles (and
//     where period detection and the kernel cache help least on first
//     contact);
//   - divider: a chain of instances of the instruction with the
//     longest blocking µop (a division latency measurement) — the jump
//     target composes the readiness bound with the blocked pipe's
//     busy-release bound;
//   - dense: independent instances of a minimum-latency single-µop
//     instruction — every cycle issues, the fast-forward never engages,
//     and the pair pins that its gate costs nothing measurable.
//
// RunMachineBench errors if any kernel's two runs differ in any Result
// field (the fast-forward must be bit-exact), so the timings always
// describe identical simulations.
type MachineBenchResult struct {
	Archs []MachineBenchArch
}

// MachineBenchArch is one processor's kernel sweep.
type MachineBenchArch struct {
	Arch    string
	Kernels []MachineBenchKernel
}

// MachineBenchKernel is one timed kernel: the same simulation run with
// the event-driven fast-forward on and off.
type MachineBenchKernel struct {
	Kernel string // latency, divider, dense
	Iters  int
	// Cycles is the simulated cycle count (identical on both sides);
	// SkippedCycles is how many of them the event-driven run jumped.
	Cycles        int64
	SkippedCycles int64
	FastSeconds   float64
	BaseSeconds   float64
	FastNsPerIter float64
	BaseNsPerIter float64
}

// Speedup returns the event-driven-over-stepped wall-time ratio.
func (k MachineBenchKernel) Speedup() float64 {
	if k.FastSeconds <= 0 {
		return 0
	}
	return k.BaseSeconds / k.FastSeconds
}

// MinSpeedup returns the smallest speedup over the named kernel class
// across all architectures (0 if the class never ran).
func (r *MachineBenchResult) MinSpeedup(kernel string) float64 {
	min := 0.0
	for _, a := range r.Archs {
		for _, k := range a.Kernels {
			if k.Kernel != kernel {
				continue
			}
			if s := k.Speedup(); min == 0 || s < min {
				min = s
			}
		}
	}
	return min
}

// machineBenchKernels builds the three kernel bodies from a processor's
// real instruction specs.
func machineBenchKernels(proc *uarch.Processor) []struct {
	name string
	body []machine.Inst
} {
	maxLat, maxLatSpec := 0, 0
	maxBlock, maxBlockSpec := 0, 0
	minLat, minLatSpec := 0, 0
	for id, spec := range proc.Specs {
		if spec.Latency > maxLat {
			maxLat, maxLatSpec = spec.Latency, id
		}
		for _, u := range spec.Uops {
			if u.Block > maxBlock {
				maxBlock, maxBlockSpec = u.Block, id
			}
		}
		if len(spec.Uops) == 1 && (minLat == 0 || spec.Latency < minLat) {
			minLat, minLatSpec = spec.Latency, id
		}
	}
	chain := make([]machine.Inst, 6)
	for i := range chain {
		chain[i] = machine.Inst{Spec: maxLatSpec, Reads: []int{0}, Writes: []int{0}}
	}
	// Chained dividers — the shape of a division latency measurement:
	// spans are bounded by both the result latency and the blocking
	// pipe's release, so the jump target composes the two event sources.
	// (Independent dividers are issue-bound every Block cycles and sit
	// between the dense and latency regimes; the stress property tests
	// cover them for correctness.)
	div := make([]machine.Inst, 4)
	for i := range div {
		div[i] = machine.Inst{Spec: maxBlockSpec, Reads: []int{0}, Writes: []int{0}}
	}
	dense := make([]machine.Inst, 12)
	for i := range dense {
		dense[i] = machine.Inst{Spec: minLatSpec, Writes: []int{1 + i}}
	}
	return []struct {
		name string
		body []machine.Inst
	}{
		{"latency", chain},
		{"divider", div},
		{"dense", dense},
	}
}

// RunMachineBench times the event-driven core against the brute-force
// stepper on all three Table 1 processors.
func RunMachineBench(scale Scale) (*MachineBenchResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	// Enough iterations that each timed side runs for milliseconds even
	// on the fast path; both sides simulate every cycle of every
	// iteration (no period detection), so cost scales linearly.
	iters := 400 * scale.MaxGenerations
	const reps = 3
	res := &MachineBenchResult{}
	for _, name := range []string{"SKL", "ZEN", "A72"} {
		proc, err := uarch.ByName(name)
		if err != nil {
			return nil, err
		}
		arch := MachineBenchArch{Arch: name}
		for _, kern := range machineBenchKernels(proc) {
			k, err := runMachineBenchKernel(proc, kern.name, kern.body, iters, reps)
			if err != nil {
				return nil, fmt.Errorf("machine bench %s/%s: %w", name, kern.name, err)
			}
			arch.Kernels = append(arch.Kernels, k)
		}
		res.Archs = append(res.Archs, arch)
	}
	return res, nil
}

func runMachineBenchKernel(proc *uarch.Processor, name string, body []machine.Inst, iters, reps int) (MachineBenchKernel, error) {
	build := func(eventOff bool) (*machine.Machine, error) {
		cfg := proc.Config
		cfg.PeriodDetectBudget = machine.PeriodDetectDisabled
		cfg.EventDrivenDisabled = eventOff
		return machine.New(cfg, proc.Specs)
	}
	fastM, err := build(false)
	if err != nil {
		return MachineBenchKernel{}, err
	}
	baseM, err := build(true)
	if err != nil {
		return MachineBenchKernel{}, err
	}
	time_ := func(m *machine.Machine) (machine.Result, float64, error) {
		var last machine.Result
		start := time.Now()
		for i := 0; i < reps; i++ {
			r, err := m.Run(body, iters)
			if err != nil {
				return machine.Result{}, 0, err
			}
			last = r
		}
		return last, time.Since(start).Seconds(), nil
	}
	fast, fastSecs, err := time_(fastM)
	if err != nil {
		return MachineBenchKernel{}, err
	}
	base, baseSecs, err := time_(baseM)
	if err != nil {
		return MachineBenchKernel{}, err
	}
	if fast.Cycles != base.Cycles || fast.Instructions != base.Instructions ||
		fast.Uops != base.Uops || fast.WindowFullCycles != base.WindowFullCycles ||
		fast.OccupancySum != base.OccupancySum {
		return MachineBenchKernel{}, fmt.Errorf(
			"event-driven run diverged from brute force:\n fast %+v\n base %+v", fast, base)
	}
	for p := range base.PortUops {
		if fast.PortUops[p] != base.PortUops[p] {
			return MachineBenchKernel{}, fmt.Errorf(
				"port %d µops differ: fast %d != base %d", p, fast.PortUops[p], base.PortUops[p])
		}
	}
	if base.SkippedCycles != 0 {
		return MachineBenchKernel{}, fmt.Errorf("brute-force run skipped %d cycles", base.SkippedCycles)
	}
	out := MachineBenchKernel{
		Kernel:        name,
		Iters:         iters,
		Cycles:        fast.Cycles,
		SkippedCycles: fast.SkippedCycles,
		FastSeconds:   fastSecs,
		BaseSeconds:   baseSecs,
	}
	total := float64(iters * reps)
	if total > 0 {
		out.FastNsPerIter = fastSecs * 1e9 / total
		out.BaseNsPerIter = baseSecs * 1e9 / total
	}
	return out, nil
}

// Render prints the benchmark in a human-readable form.
func (r *MachineBenchResult) Render() string {
	var b strings.Builder
	b.WriteString("Simulator core throughput (event-driven fast-forward vs cycle-by-cycle stepping,\nperiod detection off on both sides; bit-identical results verified per kernel)\n\n")
	for _, a := range r.Archs {
		for _, k := range a.Kernels {
			skippedPct := 0.0
			if k.Cycles > 0 {
				skippedPct = 100 * float64(k.SkippedCycles) / float64(k.Cycles)
			}
			fmt.Fprintf(&b, "%-4s %-8s %7d iters %10d cycles (%5.1f%% skipped)  event %8.1f ns/iter  stepped %8.1f ns/iter  speedup %.2fx\n",
				a.Arch, k.Kernel, k.Iters, k.Cycles, skippedPct,
				k.FastNsPerIter, k.BaseNsPerIter, k.Speedup())
		}
	}
	fmt.Fprintf(&b, "\nmin speedup: latency %.2fx, divider %.2fx, dense %.2fx\n",
		r.MinSpeedup("latency"), r.MinSpeedup("divider"), r.MinSpeedup("dense"))
	return b.String()
}

// WriteCSV emits the per-kernel timed runs for machine comparison.
func (r *MachineBenchResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "arch,kernel,iters,cycles,skipped_cycles,fast_seconds,base_seconds,fast_ns_per_iter,base_ns_per_iter,speedup"); err != nil {
		return err
	}
	for _, a := range r.Archs {
		for _, k := range a.Kernels {
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%d,%.6f,%.6f,%.1f,%.1f,%.3f\n",
				a.Arch, k.Kernel, k.Iters, k.Cycles, k.SkippedCycles,
				k.FastSeconds, k.BaseSeconds, k.FastNsPerIter, k.BaseNsPerIter, k.Speedup()); err != nil {
				return err
			}
		}
	}
	return nil
}
