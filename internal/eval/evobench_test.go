package eval

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRunEvoBenchQuick(t *testing.T) {
	scale := QuickScale()
	// Keep the smoke test fast: a small amplified population still
	// exercises both configurations end to end.
	scale.Population = 8
	scale.MaxGenerations = 6
	scale.Islands = 3
	res, err := RunEvoBench(context.Background(), scale)
	if err != nil {
		t.Fatal(err)
	}
	if res.Islands != 3 {
		t.Errorf("islands = %d, want 3", res.Islands)
	}
	if res.Population != 8*evoBenchPopFactor {
		t.Errorf("population = %d, want %d", res.Population, 8*evoBenchPopFactor)
	}
	budget := res.Population * (scale.MaxGenerations + 1)
	for name, run := range map[string]EvoBenchRun{"single": res.Single, "islands": res.Island} {
		if run.Evaluations < res.Population || run.Evaluations > budget {
			t.Errorf("%s: %d evaluations outside [population, budget] = [%d, %d]",
				name, run.Evaluations, res.Population, budget)
		}
		if run.Seconds <= 0 {
			t.Errorf("%s: non-positive wall time %v", name, run.Seconds)
		}
		if run.BestError < 0 || run.BestVolume <= 0 {
			t.Errorf("%s: implausible result Davg=%v V=%d", name, run.BestError, run.BestVolume)
		}
	}
	// The single run is the pre-island configuration: no fitness cache.
	if res.Single.FitCacheHits != 0 || res.Single.FitCacheMisses != 0 {
		t.Errorf("single run used the fitness cache: %d/%d",
			res.Single.FitCacheHits, res.Single.FitCacheMisses)
	}
	// The island run has it on: every evaluated candidate is at least a
	// recorded miss.
	if res.Island.FitCacheHits+res.Island.FitCacheMisses == 0 {
		t.Error("island run never touched the fitness cache")
	}
	out := res.Render()
	if !strings.Contains(out, "single") || !strings.Contains(out, "islands") ||
		!strings.Contains(out, "speedup") {
		t.Errorf("render missing rows:\n%s", out)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "\n") != 3 {
		t.Errorf("CSV line count wrong:\n%s", buf.String())
	}
}
