package eval

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"pmevo/internal/cachetable"
	"pmevo/internal/engine"
	"pmevo/internal/evo"
	"pmevo/internal/exp"
	"pmevo/internal/portmap"
	"pmevo/internal/throughput"
)

// FitnessBenchResult reports the fitness-evaluation throughput of the
// evolutionary hot loop: a full inference run (evolution plus greedy
// local search) on a synthetic hidden machine, measured with the
// engine's memoized + incremental evaluation layer on and off. The
// results are bit-identical by construction (pinned in internal/evo);
// only the cost differs.
//
// With a cache directory (pmevo-bench -cache-dir), the cached run
// additionally warm-starts its throughput memo from the spill of the
// previous invocation against the same experiment set (engine.LoadMemo)
// and spills its own memo on completion; WarmEntries and the run's
// MemoWarmHits report the disk-warm traffic. The uncached run never
// touches the memo, so the bit-equality check also pins warm results
// identical to cold ones.
type FitnessBenchResult struct {
	NumInsts    int
	NumPorts    int
	Experiments int
	Population  int
	Generations int

	// WarmStart records whether a cache directory was used; WarmEntries
	// is the number of memo entries loaded from it (0 on the first,
	// cold invocation).
	WarmStart   bool
	WarmEntries int

	// Cached is the production configuration, Uncached the same run
	// with DisableCache.
	Cached   FitnessBenchRun
	Uncached FitnessBenchRun
}

// FitnessBenchRun is one timed inference run.
type FitnessBenchRun struct {
	Seconds          float64
	Evaluations      int
	EvalsPerSec      float64
	MemoHits         int64
	MemoMisses       int64
	MemoWarmHits     int64
	MemoEntries      int64
	MemoResizes      int64
	DeltaEvals       int64
	DeltaExpsSkipped int64
	BestError        float64
}

// fitnessBenchInsts/Ports fix the synthetic machine of the fitness
// benchmark (the ablation-scale hidden processor).
const (
	fitnessBenchInsts = 12
	fitnessBenchPorts = 8
)

type modelMeasurer struct{ m *portmap.Mapping }

func (mm modelMeasurer) Measure(e portmap.Experiment) (float64, error) {
	return throughput.OfExperiment(mm.m, e), nil
}

// RunFitnessBench measures the population fitness loop at the given
// scale: evo.Run on a hidden random machine, cached vs uncached. A
// non-empty cacheDir warm-starts the cached run's throughput memo from
// the directory's spill file and re-spills the memo on completion; the
// first invocation cold-starts (no file) and seeds the second.
func RunFitnessBench(ctx context.Context, scale Scale, cacheDir string) (*FitnessBenchResult, error) {
	rng := rand.New(rand.NewSource(scale.Seed + 4))
	hidden := portmap.Random(rng, portmap.RandomOptions{
		NumInsts: fitnessBenchInsts, NumPorts: fitnessBenchPorts, MaxUops: 2,
	})
	set, err := exp.GenerateAndMeasure(ctx, modelMeasurer{hidden}, fitnessBenchInsts)
	if err != nil {
		return nil, fmt.Errorf("fitness bench: %w", err)
	}
	res := &FitnessBenchResult{
		NumInsts:    fitnessBenchInsts,
		NumPorts:    fitnessBenchPorts,
		Experiments: set.NumExperiments(),
		Population:  scale.Population,
		Generations: scale.MaxGenerations,
	}
	var warm []cachetable.Entry
	if cacheDir != "" {
		res.WarmStart = true
		warm, err = engine.LoadMemo(engine.MemoPath(cacheDir), set)
		if err != nil {
			warm = nil // cold start: an absent or stale memo spill just means no warm entries
		}
		res.WarmEntries = len(warm)
	}
	run := func(disable bool) (FitnessBenchRun, []cachetable.Entry, error) {
		opts := evo.Options{
			PopulationSize:  scale.Population,
			MaxGenerations:  scale.MaxGenerations,
			NumPorts:        fitnessBenchPorts,
			LocalSearch:     true,
			VolumeObjective: true,
			Seed:            scale.Seed,
			DisableCache:    disable,
		}
		if !disable {
			opts.MemoWarm = warm
			opts.SnapshotMemo = cacheDir != ""
		}
		start := time.Now()
		r, err := evo.Run(ctx, set, opts)
		if err != nil {
			return FitnessBenchRun{}, nil, err
		}
		secs := time.Since(start).Seconds()
		out := FitnessBenchRun{
			Seconds:          secs,
			Evaluations:      r.FitnessEvaluations,
			MemoHits:         r.CacheStats.MemoHits,
			MemoMisses:       r.CacheStats.MemoMisses,
			MemoWarmHits:     r.CacheStats.MemoWarmHits,
			MemoEntries:      r.CacheStats.MemoEntries,
			MemoResizes:      r.CacheStats.MemoResizes,
			DeltaEvals:       r.CacheStats.DeltaEvaluations,
			DeltaExpsSkipped: r.CacheStats.DeltaExperimentsSkipped,
			BestError:        r.BestError,
		}
		if secs > 0 {
			out.EvalsPerSec = float64(r.FitnessEvaluations) / secs
		}
		return out, r.MemoSnapshot, nil
	}
	var snapshot []cachetable.Entry
	if res.Cached, snapshot, err = run(false); err != nil {
		return nil, err
	}
	if res.Uncached, _, err = run(true); err != nil {
		return nil, err
	}
	if res.Cached.BestError != res.Uncached.BestError {
		return nil, fmt.Errorf("fitness bench: cached Davg %v != uncached %v (caching must be bit-exact)",
			res.Cached.BestError, res.Uncached.BestError)
	}
	if cacheDir != "" && len(snapshot) > 0 {
		if err := engine.SaveMemo(engine.MemoPath(cacheDir), set, snapshot); err != nil {
			return nil, fmt.Errorf("fitness bench: spill memo: %w", err)
		}
	}
	return res, nil
}

// Speedup returns the cached-over-uncached wall-time ratio.
func (r *FitnessBenchResult) Speedup() float64 {
	if r.Cached.Seconds <= 0 {
		return 0
	}
	return r.Uncached.Seconds / r.Cached.Seconds
}

// Render prints the benchmark in a human-readable form.
func (r *FitnessBenchResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fitness-evaluation throughput (hidden %d-inst/%d-port machine, %d experiments, p=%d, %d generations)\n",
		r.NumInsts, r.NumPorts, r.Experiments, r.Population, r.Generations)
	if r.WarmStart {
		fmt.Fprintf(&b, "cached run warm-started from persistent memo (-cache-dir): %d entries loaded\n", r.WarmEntries)
	}
	b.WriteString("\n")
	row := func(name string, run FitnessBenchRun) {
		fmt.Fprintf(&b, "%-9s %9.3fs  %8d evals  %10.0f evals/s  hits=%d misses=%d warm=%d delta=%d skipped=%d\n",
			name, run.Seconds, run.Evaluations, run.EvalsPerSec,
			run.MemoHits, run.MemoMisses, run.MemoWarmHits, run.DeltaEvals, run.DeltaExpsSkipped)
	}
	row("cached", r.Cached)
	row("uncached", r.Uncached)
	fmt.Fprintf(&b, "\nspeedup: %.2fx (bit-identical results, Davg = %.6g)\n", r.Speedup(), r.Cached.BestError)
	return b.String()
}

// WriteCSV emits the two timed runs for machine comparison.
func (r *FitnessBenchResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "config,seconds,evaluations,evals_per_sec,memo_hits,memo_misses,memo_warm_hits,delta_evals,delta_exps_skipped"); err != nil {
		return err
	}
	for _, row := range []struct {
		name string
		run  FitnessBenchRun
	}{{"cached", r.Cached}, {"uncached", r.Uncached}} {
		if _, err := fmt.Fprintf(w, "%s,%.6f,%d,%.1f,%d,%d,%d,%d,%d\n",
			row.name, row.run.Seconds, row.run.Evaluations, row.run.EvalsPerSec,
			row.run.MemoHits, row.run.MemoMisses, row.run.MemoWarmHits, row.run.DeltaEvals, row.run.DeltaExpsSkipped); err != nil {
			return err
		}
	}
	return nil
}
