package eval

import (
	"math"
	"strings"
	"testing"
)

// TestEngineCheckAgreesAcrossEngines is the acceptance criterion for
// the unified engine layer: the LP reference and the bottleneck
// simulation algorithm must produce identical throughputs (up to 1e-9)
// on the Table 1 processor configurations, and the ablation engines
// must agree too.
func TestEngineCheckAgreesAcrossEngines(t *testing.T) {
	ref, err := RunEngineCheck("lp", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Lines) == 0 {
		t.Fatal("empty engine check")
	}
	for _, name := range []string{"bottleneck", "union"} {
		got, err := RunEngineCheck(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Lines) != len(ref.Lines) {
			t.Fatalf("%s: %d lines, lp has %d", name, len(got.Lines), len(ref.Lines))
		}
		for i, l := range got.Lines {
			r := ref.Lines[i]
			if l.Proc != r.Proc || l.Key != r.Key {
				t.Fatalf("%s: line %d covers %s/%s, lp covers %s/%s", name, i, l.Proc, l.Key, r.Proc, r.Key)
			}
			if math.Abs(l.Throughput-r.Throughput) > 1e-9 {
				t.Errorf("%s: %s %s: %.12g, lp %.12g", name, l.Proc, l.Key, l.Throughput, r.Throughput)
			}
		}
	}
}

func TestEngineCheckRendering(t *testing.T) {
	res, err := RunEngineCheck("bottleneck", 1)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, proc := range []string{"SKL", "ZEN", "A72"} {
		if !strings.Contains(out, proc) {
			t.Errorf("render lacks %s", proc)
		}
	}
	var b strings.Builder
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(b.String(), "\n"); lines != len(res.Lines)+1 {
		t.Errorf("CSV has %d lines, want %d", lines, len(res.Lines)+1)
	}
	if _, err := RunEngineCheck("bogus", 1); err == nil {
		t.Error("unknown engine accepted")
	}
}
