// Package eval regenerates every table and figure of the paper's
// evaluation (§5): processor overview (Table 1), model validation over
// experiment lengths (Figure 6), PMEvo mapping characteristics (Table 2),
// prediction accuracy against the baseline tools (Tables 3 and 4,
// Figure 7), and the bottleneck-algorithm performance study (Figure 8).
//
// The paper's full runs use a population of 100,000, benchmark sets of
// 40,000 experiments, and days of measurement time. Every driver here
// takes a Scale that reproduces the experiments shape-faithfully at
// configurable cost; FullScale() restores the paper's parameters.
package eval

import (
	"fmt"

	"pmevo/internal/isa"
)

// Scale controls the size of every experiment.
type Scale struct {
	// MaxFormsPerClass caps the instruction forms per semantic class
	// used in the inference pipeline and benchmark sets (0: all).
	// The paper uses the full 310/390-form sets.
	MaxFormsPerClass int
	// Population is the evolutionary algorithm's population size
	// (paper: 100,000).
	Population int
	// MaxGenerations bounds the evolution loop.
	MaxGenerations int
	// BenchmarkExperiments is the accuracy benchmark set size per
	// architecture (paper: 40,000 experiments of size 5).
	BenchmarkExperiments int
	// BenchmarkLength is the instruction multiset size of benchmark
	// experiments (paper: 5).
	BenchmarkLength int
	// Figure6Samples is the number of random experiments per length
	// (paper: 2,000).
	Figure6Samples int
	// Figure6MaxLen is the largest experiment length (paper: 15).
	Figure6MaxLen int
	// Figure8Mappings, Figure8Experiments and Figure8Reps control the
	// §5.4 performance study (paper: 8 mappings × 128 experiments,
	// mean over 1,000 simulations each).
	Figure8Mappings    int
	Figure8Experiments int
	Figure8Reps        int
	// IthemalBlocks is the training set size of the learned baseline.
	IthemalBlocks int
	// Islands shards the evolutionary population into concurrently
	// evolving sub-populations with ring migration (see
	// evo.Options.Islands). 0 keeps the single-population algorithm —
	// the zero value reproduces historical runs bit-exactly.
	Islands int
	// MigrationInterval and MigrationCount configure the island
	// exchange (see evo.Options; zero values select the evo defaults).
	// Ignored with Islands <= 1.
	MigrationInterval int
	MigrationCount    int
	// CheckpointDir, CheckpointInterval and Resume configure crash-safe
	// checkpointing of the inference pipeline's evolutionary search (see
	// evo.Options). The zero values — no checkpoint directory, no resume
	// — keep historical runs bit-exact; a set CheckpointDir only changes
	// what is written to disk, never the trajectory.
	CheckpointDir      string
	CheckpointInterval int
	Resume             bool
	// Log, when non-nil, receives checkpoint/resume diagnostics from
	// the evolutionary search (Printf-style). Purely informational —
	// never part of the trajectory. Nil means silent.
	Log func(format string, args ...any)
	// Seed derives all pseudo-random choices.
	Seed int64
}

// DefaultScale finishes the whole evaluation in a few minutes on a
// laptop while preserving every qualitative result.
func DefaultScale() Scale {
	return Scale{
		MaxFormsPerClass:     3,
		Population:           300,
		MaxGenerations:       40,
		BenchmarkExperiments: 1500,
		BenchmarkLength:      5,
		Figure6Samples:       150,
		Figure6MaxLen:        15,
		Figure8Mappings:      4,
		Figure8Experiments:   16,
		Figure8Reps:          20,
		IthemalBlocks:        1200,
		Seed:                 1,
	}
}

// QuickScale is a smoke-test scale for unit tests and benchmarks.
func QuickScale() Scale {
	return Scale{
		MaxFormsPerClass:     1,
		Population:           80,
		MaxGenerations:       15,
		BenchmarkExperiments: 120,
		BenchmarkLength:      5,
		Figure6Samples:       25,
		Figure6MaxLen:        8,
		Figure8Mappings:      2,
		Figure8Experiments:   6,
		Figure8Reps:          5,
		IthemalBlocks:        250,
		Seed:                 1,
	}
}

// FullScale restores the paper's experiment sizes. Expect very long
// runtimes (the paper reports 5–21 h of inference per architecture).
func FullScale() Scale {
	return Scale{
		MaxFormsPerClass:     0,
		Population:           100000,
		MaxGenerations:       200,
		BenchmarkExperiments: 40000,
		BenchmarkLength:      5,
		Figure6Samples:       2000,
		Figure6MaxLen:        15,
		Figure8Mappings:      8,
		Figure8Experiments:   128,
		Figure8Reps:          1000,
		IthemalBlocks:        20000,
		Seed:                 1,
	}
}

// Validate checks the scale for sanity.
func (s Scale) Validate() error {
	if s.Population < 2 || s.MaxGenerations < 1 {
		return fmt.Errorf("eval: invalid EA scale %d/%d", s.Population, s.MaxGenerations)
	}
	if s.BenchmarkExperiments < 1 || s.BenchmarkLength < 1 {
		return fmt.Errorf("eval: invalid benchmark scale")
	}
	if s.Figure6Samples < 1 || s.Figure6MaxLen < 1 {
		return fmt.Errorf("eval: invalid figure 6 scale")
	}
	if s.Figure8Mappings < 1 || s.Figure8Experiments < 1 || s.Figure8Reps < 1 {
		return fmt.Errorf("eval: invalid figure 8 scale")
	}
	return nil
}

// subsetForms picks a deterministic, class-stratified subset of the
// ISA's forms: up to MaxFormsPerClass per semantic class. It returns the
// subset ISA and the original form IDs, aligned by new form ID.
func subsetForms(a *isa.ISA, maxPerClass int) (*isa.ISA, []int, error) {
	if maxPerClass <= 0 {
		ids := make([]int, a.NumForms())
		for i := range ids {
			ids[i] = i
		}
		return a, ids, nil
	}
	var picked []*isa.Form
	var ids []int
	for _, class := range a.Classes() {
		forms := a.FormsInClass(class)
		n := maxPerClass
		if n > len(forms) {
			n = len(forms)
		}
		for _, f := range forms[:n] {
			picked = append(picked, f)
			ids = append(ids, f.ID)
		}
	}
	sub, err := a.Subset(a.Name+"-subset", picked)
	if err != nil {
		return nil, nil, err
	}
	return sub, ids, nil
}
