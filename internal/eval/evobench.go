package eval

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"pmevo/internal/evo"
	"pmevo/internal/exp"
	"pmevo/internal/portmap"
)

// EvoBenchResult reports the island-model evolution benchmark: the same
// inference workload run with the pre-island single-population
// configuration (Islands=1, no cross-generation fitness cache — the
// exact production path before the island restructure) and with the
// island-model configuration (Islands=N concurrent sub-populations
// sharing one fitness service plus the cross-generation cache), at an
// equal evaluation budget (same PopulationSize and MaxGenerations, so
// both runs may perform at most Population×(MaxGenerations+1)
// evaluations; either may use less through convergence and caching).
//
// Local search is disabled in both runs: it is a serial final phase
// identical in either configuration (its cost is measured by the
// fitness benchmark), and including it would only dilute the
// evolution-loop comparison this benchmark isolates.
//
// The two runs search with different population layouts, so their
// results are not expected to be bit-identical — both Davg values are
// reported. The determinism and bit-exactness contracts of the island
// model itself (Islands=1 ≡ legacy, results independent of Workers,
// cache on/off equality) are pinned by the internal/evo tests, not
// here.
type EvoBenchResult struct {
	NumInsts    int
	NumPorts    int
	Experiments int
	Population  int
	Generations int

	// Islands is the sub-population count of the island run;
	// MigrationInterval/MigrationCount its (defaulted) exchange knobs.
	Islands           int
	MigrationInterval int
	MigrationCount    int

	// Single is the pre-island configuration, Island the sharded one.
	Single EvoBenchRun
	Island EvoBenchRun
}

// EvoBenchRun is one timed evolution run.
type EvoBenchRun struct {
	Seconds     float64
	Evaluations int
	EvalsPerSec float64
	Generations int
	// FitCacheHits/Misses and FitCacheHitRate report the
	// cross-generation fitness cache (zero in the single run, which
	// disables it).
	FitCacheHits    int64
	FitCacheMisses  int64
	FitCacheHitRate float64
	BestError       float64
	BestVolume      int
}

// evoBenchInsts/Ports fix the synthetic hidden machine of the evolution
// benchmark. It is deliberately narrow: per-candidate evaluation on a
// small machine is cheap, so the serial per-generation phases of the
// single-population algorithm (recombination, selection, dedup priming)
// carry a large share of the runtime — exactly the share the island
// model shards. Wide machines bury that share under evaluation work the
// single-population loop already parallelizes, and the fitness benchmark
// covers raw evaluation throughput separately.
//
// evoBenchPopFactor amplifies scale.Population for this benchmark only,
// so each timed run lasts long enough for stable wall-clock numbers even
// at QuickScale (the unamplified population 80 finishes in milliseconds on the narrow
// machine).
const (
	evoBenchInsts     = 6
	evoBenchPorts     = 3
	evoBenchPopFactor = 50
)

// RunEvoBench measures the evolution loop at the given scale, single
// population vs island model. scale.Islands selects the island count
// (0: GOMAXPROCS, floored at 2 so the island path is always exercised).
func RunEvoBench(ctx context.Context, scale Scale) (*EvoBenchResult, error) {
	rng := rand.New(rand.NewSource(scale.Seed + 6))
	hidden := portmap.Random(rng, portmap.RandomOptions{
		NumInsts: evoBenchInsts, NumPorts: evoBenchPorts, MaxUops: 2,
	})
	set, err := exp.GenerateAndMeasure(ctx, modelMeasurer{hidden}, evoBenchInsts)
	if err != nil {
		return nil, fmt.Errorf("evo bench: %w", err)
	}
	islands := scale.Islands
	if islands <= 0 {
		islands = runtime.GOMAXPROCS(0)
	}
	if islands < 2 {
		islands = 2
	}
	population := scale.Population * evoBenchPopFactor
	res := &EvoBenchResult{
		NumInsts:    evoBenchInsts,
		NumPorts:    evoBenchPorts,
		Experiments: set.NumExperiments(),
		Population:  population,
		Generations: scale.MaxGenerations,
		Islands:     islands,
	}
	run := func(islands int) (EvoBenchRun, error) {
		opts := evo.Options{
			PopulationSize:    population,
			MaxGenerations:    scale.MaxGenerations,
			NumPorts:          evoBenchPorts,
			VolumeObjective:   true,
			Seed:              scale.Seed,
			Islands:           islands,
			MigrationInterval: scale.MigrationInterval,
			MigrationCount:    scale.MigrationCount,
		}
		if islands <= 1 {
			opts.FitnessCacheEntries = -1 // the pre-island production configuration
		}
		start := time.Now()
		r, err := evo.Run(ctx, set, opts)
		if err != nil {
			return EvoBenchRun{}, err
		}
		secs := time.Since(start).Seconds()
		out := EvoBenchRun{
			Seconds:        secs,
			Evaluations:    r.FitnessEvaluations,
			Generations:    r.Generations,
			FitCacheHits:   r.CacheStats.FitCacheHits,
			FitCacheMisses: r.CacheStats.FitCacheMisses,
			BestError:      r.BestError,
			BestVolume:     r.BestVolume,
		}
		if secs > 0 {
			out.EvalsPerSec = float64(r.FitnessEvaluations) / secs
		}
		if total := out.FitCacheHits + out.FitCacheMisses; total > 0 {
			out.FitCacheHitRate = float64(out.FitCacheHits) / float64(total)
		}
		return out, nil
	}
	if res.Single, err = run(1); err != nil {
		return nil, err
	}
	if res.Island, err = run(islands); err != nil {
		return nil, err
	}
	// Report the knobs the island run actually used (defaults filled the
	// same way evo.Run fills them).
	res.MigrationInterval = scale.MigrationInterval
	if res.MigrationInterval == 0 {
		res.MigrationInterval = 5
	}
	res.MigrationCount = scale.MigrationCount
	if res.MigrationCount == 0 {
		res.MigrationCount = 1
	}
	return res, nil
}

// Speedup returns the island-over-single wall-time ratio at the equal
// evaluation budget.
func (r *EvoBenchResult) Speedup() float64 {
	if r.Island.Seconds <= 0 {
		return 0
	}
	return r.Single.Seconds / r.Island.Seconds
}

// Render prints the benchmark in a human-readable form.
func (r *EvoBenchResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Island-model evolution (hidden %d-inst/%d-port machine, %d experiments, p=%d, %d generations budget)\n",
		r.NumInsts, r.NumPorts, r.Experiments, r.Population, r.Generations)
	fmt.Fprintf(&b, "island run: %d islands, migration every %d generations, %d emigrants\n\n",
		r.Islands, r.MigrationInterval, r.MigrationCount)
	row := func(name string, run EvoBenchRun) {
		fmt.Fprintf(&b, "%-8s %9.3fs  %8d evals  %10.0f evals/s  %3d gens  fit-cache %d/%d (%.0f%%)  Davg=%.6g V=%d\n",
			name, run.Seconds, run.Evaluations, run.EvalsPerSec, run.Generations,
			run.FitCacheHits, run.FitCacheHits+run.FitCacheMisses, 100*run.FitCacheHitRate,
			run.BestError, run.BestVolume)
	}
	row("single", r.Single)
	row("islands", r.Island)
	fmt.Fprintf(&b, "\nspeedup: %.2fx wall-clock at equal evaluation budget (GOMAXPROCS=%d)\n",
		r.Speedup(), runtime.GOMAXPROCS(0))
	return b.String()
}

// WriteCSV emits the two timed runs for machine comparison.
func (r *EvoBenchResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "config,islands,seconds,evaluations,evals_per_sec,generations,fit_cache_hits,fit_cache_misses,fit_cache_hit_rate,best_error,best_volume"); err != nil {
		return err
	}
	for _, row := range []struct {
		name    string
		islands int
		run     EvoBenchRun
	}{{"single", 1, r.Single}, {"islands", r.Islands, r.Island}} {
		if _, err := fmt.Fprintf(w, "%s,%d,%.6f,%d,%.1f,%d,%d,%d,%.4f,%.8g,%d\n",
			row.name, row.islands, row.run.Seconds, row.run.Evaluations, row.run.EvalsPerSec,
			row.run.Generations, row.run.FitCacheHits, row.run.FitCacheMisses,
			row.run.FitCacheHitRate, row.run.BestError, row.run.BestVolume); err != nil {
			return err
		}
	}
	return nil
}
