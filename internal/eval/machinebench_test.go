package eval

import (
	"strings"
	"testing"

	"pmevo/internal/uarch"
)

// TestMachineBenchKernelBitExact smokes the simulator-core benchmark on
// the cheapest processor: the dead-cycle kernels must engage the
// fast-forward (and the dense kernel must not), with bit-identical
// results enforced inside the driver. No timing thresholds — wall-clock
// speedups are asserted only by the CI perf-smoke job, on dedicated
// runners.
func TestMachineBenchKernelBitExact(t *testing.T) {
	proc, err := uarch.ByName("A72")
	if err != nil {
		t.Fatal(err)
	}
	kernels := machineBenchKernels(proc)
	if len(kernels) != 3 {
		t.Fatalf("expected 3 kernel classes, got %d", len(kernels))
	}
	arch := MachineBenchArch{Arch: "A72"}
	for _, kern := range kernels {
		k, err := runMachineBenchKernel(proc, kern.name, kern.body, 600, 1)
		if err != nil {
			t.Fatal(err)
		}
		switch kern.name {
		case "latency", "divider":
			if k.SkippedCycles == 0 {
				t.Errorf("%s kernel never engaged the fast-forward", kern.name)
			}
			// The dead-cycle kernels exist to be dominated by dead
			// cycles; anything below half skipped means the kernel
			// shape regressed.
			if 2*k.SkippedCycles < k.Cycles {
				t.Errorf("%s kernel skipped only %d of %d cycles", kern.name, k.SkippedCycles, k.Cycles)
			}
		case "dense":
			if k.SkippedCycles != 0 {
				t.Errorf("dense kernel skipped %d cycles; it must saturate issue", k.SkippedCycles)
			}
		}
		if k.Cycles <= 0 {
			t.Errorf("%s kernel simulated %d cycles", kern.name, k.Cycles)
		}
		arch.Kernels = append(arch.Kernels, k)
	}
	res := &MachineBenchResult{Archs: []MachineBenchArch{arch}}
	if out := res.Render(); !strings.Contains(out, "A72") {
		t.Errorf("render missing arch:\n%s", out)
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"A72,latency", "A72,divider", "A72,dense"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("CSV missing %s:\n%s", want, sb.String())
		}
	}
	if res.MinSpeedup("latency") <= 0 {
		t.Error("latency speedup not recorded")
	}
}
