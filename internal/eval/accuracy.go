package eval

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
	"time"

	"pmevo/internal/exp"
	"pmevo/internal/measure"
	"pmevo/internal/portmap"
	"pmevo/internal/predictors"
	"pmevo/internal/stats"
)

// Suite bundles the PMEvo inference runs for all three processors so
// Table 2, Tables 3/4 and Figure 7 share the same (expensive) pipelines.
type Suite struct {
	Scale Scale
	Runs  []*PipelineRun // SKL, ZEN, A72
}

// NewSuite runs the inference pipeline on all three processors.
// Cancellation aborts the suite at the first interrupted pipeline
// (partial per-processor results are not useful for the cross-tool
// tables, so no partial Suite is returned).
func NewSuite(ctx context.Context, scale Scale, progress func(string)) (*Suite, error) {
	if progress == nil {
		progress = func(string) {}
	}
	s := &Suite{Scale: scale}
	for _, name := range []string{"SKL", "ZEN", "A72"} {
		progress(fmt.Sprintf("running PMEvo pipeline on %s", name))
		run, err := RunPipeline(ctx, name, scale)
		if err != nil {
			return nil, err
		}
		s.Runs = append(s.Runs, run)
	}
	return s, nil
}

// Table2Row is one column of paper Table 2 (the table is transposed
// here: one row per architecture).
type Table2Row struct {
	Arch string
	// BenchmarkingHours is the simulated wall-clock cost of the §4.2
	// measurements on the real machine.
	BenchmarkingHours float64
	// InferenceTime is the actual wall-clock inference time of this
	// reproduction run.
	InferenceTime time.Duration
	// CongruentPct is the percentage of forms eliminated by congruence
	// filtering.
	CongruentPct float64
	// NumUops is the number of distinct µops in the inferred mapping.
	NumUops int
}

// Table2 derives the mapping-characteristics table from the suite.
func (s *Suite) Table2() []Table2Row {
	rows := make([]Table2Row, 0, len(s.Runs))
	for _, run := range s.Runs {
		rows = append(rows, Table2Row{
			Arch:              run.Proc.Name,
			BenchmarkingHours: run.Harness.SimulatedBenchmarkingCost() / 3600,
			InferenceTime:     run.Result.InferenceTime + run.Result.MeasurementTime,
			CongruentPct:      run.Result.CongruentFraction() * 100,
			NumUops:           run.Result.NumUops(),
		})
	}
	return rows
}

// RenderTable2 formats the Table 2 reproduction.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2. PMEvo mapping characteristics\n\n")
	fmt.Fprintf(&b, "%-22s", "")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s", r.Arch)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-22s", "benchmarking time")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s", fmt.Sprintf("%.1fh", r.BenchmarkingHours))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-22s", "inference time")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s", r.InferenceTime.Round(time.Millisecond))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-22s", "insns found congruent")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s", fmt.Sprintf("%.0f%%", r.CongruentPct))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-22s", "number of µops")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12d", r.NumUops)
	}
	b.WriteByte('\n')
	return b.String()
}

// AccuracyRow is one (architecture, tool) accuracy result of Tables 3
// and 4, with the Figure 7 heat map.
type AccuracyRow struct {
	Arch string
	Tool string
	MAPE float64
	PCC  float64
	SCC  float64
	Heat *stats.Heatmap
	N    int
}

// AccuracyResult carries all accuracy rows.
type AccuracyResult struct {
	Rows []AccuracyRow
}

// Accuracy measures the benchmark sets and evaluates every applicable
// predictor per architecture (§5.3): on SKL all five tools, on ZEN and
// A72 only PMEvo and llvm-mca (the others are Intel-only or require
// per-port counters).
func (s *Suite) Accuracy(ctx context.Context, progress func(string)) (*AccuracyResult, error) {
	if progress == nil {
		progress = func(string) {}
	}
	out := &AccuracyResult{}
	for _, run := range s.Runs {
		proc := run.Proc
		progress(fmt.Sprintf("benchmarking %s accuracy set", proc.Name))

		// A fresh harness keeps Table 2's measurement accounting clean.
		mopts := measure.DefaultOptions()
		mopts.Seed = s.Scale.Seed + 100
		h, err := measure.NewHarness(proc, mopts)
		if err != nil {
			return nil, err
		}

		rng := rand.New(rand.NewSource(s.Scale.Seed + 53))
		bench := exp.RandomBenchmarkSet(rng, run.SubISA.NumForms(),
			s.Scale.BenchmarkExperiments, s.Scale.BenchmarkLength)

		full := make([]portmap.Experiment, len(bench))
		for i, e := range bench {
			full[i] = translateExperiment(e, run.FormIDs)
		}
		meas, err := h.MeasureAll(ctx, full)
		if err != nil {
			return nil, err
		}

		type tool struct {
			name    string
			subset  bool // predicts in subset instruction space
			predict predictors.Predictor
		}
		tools := []tool{
			{"PMEvo", true, predictors.FromMapping("PMEvo", run.Result.Mapping)},
			{"llvm-mca", false, predictors.LLVMMCA(proc)},
		}
		if proc.HasPortCounters {
			ui, err := predictors.UopsInfo(proc)
			if err != nil {
				return nil, err
			}
			tools = append(tools, tool{"uops.info", false, ui})
		}
		if proc.Manufacturer == "Intel" {
			ia, err := predictors.IACA(proc)
			if err != nil {
				return nil, err
			}
			tools = append(tools, tool{"IACA", false, ia})
			progress("training Ithemal baseline")
			iopts := predictors.DefaultIthemalOptions()
			iopts.TrainingBlocks = s.Scale.IthemalBlocks
			iopts.Seed = s.Scale.Seed
			ith, err := predictors.TrainIthemal(proc, iopts)
			if err != nil {
				return nil, err
			}
			tools = append(tools, tool{"Ithemal", false, ith})
		}

		// Heat map extent: a round bound covering the measured range
		// (the paper uses 35 cycles for most panels).
		maxMeas := 0.0
		for _, m := range meas {
			maxMeas = math.Max(maxMeas, m)
		}
		heatMax := math.Ceil(maxMeas/5) * 5
		if heatMax < 5 {
			heatMax = 5
		}

		for _, tl := range tools {
			es := full
			if tl.subset {
				es = bench
			}
			pred := make([]float64, len(bench))
			if err := predictors.PredictAll(tl.predict, es, pred); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", tl.name, proc.Name, err)
			}
			out.Rows = append(out.Rows, AccuracyRow{
				Arch: proc.Name,
				Tool: tl.name,
				MAPE: stats.MAPE(pred, meas),
				PCC:  stats.Pearson(meas, pred),
				SCC:  stats.Spearman(meas, pred),
				Heat: stats.BinHeatmap(meas, pred, 35, heatMax),
				N:    len(bench),
			})
		}
	}
	return out, nil
}

// rowsFor filters rows by architecture.
func (r *AccuracyResult) rowsFor(arch string) []AccuracyRow {
	var out []AccuracyRow
	for _, row := range r.Rows {
		if row.Arch == arch {
			out = append(out, row)
		}
	}
	return out
}

// RenderTable3 formats the SKL accuracy comparison (paper Table 3).
func (r *AccuracyResult) RenderTable3() string {
	var b strings.Builder
	b.WriteString("Table 3. Prediction accuracy for port-mapping-bound experiments on SKL\n\n")
	b.WriteString("tool        MAPE    Pearson CC  Spearman CC\n")
	order := []string{"PMEvo", "uops.info", "IACA", "llvm-mca", "Ithemal"}
	rows := r.rowsFor("SKL")
	for _, name := range order {
		for _, row := range rows {
			if row.Tool == name {
				fmt.Fprintf(&b, "%-10s %5.1f%%  %10.2f  %11.2f\n",
					row.Tool, row.MAPE, row.PCC, row.SCC)
			}
		}
	}
	return b.String()
}

// RenderTable4 formats the ZEN and A72 comparison (paper Table 4).
func (r *AccuracyResult) RenderTable4() string {
	var b strings.Builder
	b.WriteString("Table 4. Prediction accuracy for port-mapping-bound experiments on ZEN and A72\n\n")
	b.WriteString("tool               MAPE    Pearson CC  Spearman CC\n")
	for _, arch := range []string{"ZEN", "A72"} {
		for _, name := range []string{"PMEvo", "llvm-mca"} {
			for _, row := range r.rowsFor(arch) {
				if row.Tool == name {
					fmt.Fprintf(&b, "%-16s  %5.1f%%  %10.2f  %11.2f\n",
						fmt.Sprintf("%s (%s)", row.Tool, arch), row.MAPE, row.PCC, row.SCC)
				}
			}
		}
	}
	return b.String()
}

// RenderFigure7 draws all nine heat maps of paper Figure 7.
func (r *AccuracyResult) RenderFigure7() string {
	var b strings.Builder
	b.WriteString("Figure 7. Prediction accuracy heat maps (predicted vs measured cycles)\n\n")
	panels := []struct{ arch, tool string }{
		{"SKL", "PMEvo"}, {"ZEN", "PMEvo"}, {"A72", "PMEvo"},
		{"SKL", "llvm-mca"}, {"ZEN", "llvm-mca"}, {"A72", "llvm-mca"},
		{"SKL", "uops.info"}, {"SKL", "IACA"}, {"SKL", "Ithemal"},
	}
	for _, p := range panels {
		for _, row := range r.Rows {
			if row.Arch == p.arch && row.Tool == p.tool {
				fmt.Fprintf(&b, "--- %s on %s (MAPE %.1f%%) ---\n", row.Tool, row.Arch, row.MAPE)
				b.WriteString(row.Heat.Render())
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}

// WriteCSV emits all accuracy rows.
func (r *AccuracyResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "arch,tool,n,mape_pct,pearson,spearman"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%.4f,%.4f,%.4f\n",
			row.Arch, row.Tool, row.N, row.MAPE, row.PCC, row.SCC); err != nil {
			return err
		}
	}
	return nil
}
