package eval

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"pmevo/internal/portmap"
	"pmevo/internal/stats"
	"pmevo/internal/throughput"
)

// Figure8Point is one (x, engine time) sample of the §5.4 performance
// study: the median over mapping/experiment configurations of the mean
// seconds-per-simulation.
type Figure8Point struct {
	X             int // number of ports (8a) or experiment length (8b)
	BottleneckSec float64
	LPSec         float64
}

// Figure8Result holds both sweeps of paper Figure 8.
type Figure8Result struct {
	// PortSweep varies the number of ports at experiment length 4 (8a).
	PortSweep []Figure8Point
	// LengthSweep varies the experiment length at 10 ports (8b).
	LengthSweep []Figure8Point
}

// figure8ISASize is the artificial instruction count of §5.4 (the size
// is irrelevant to both engines; only experiment contents matter).
const figure8ISASize = 100

// RunFigure8 measures both sweeps. Following §5.4, each configuration
// samples `Figure8Mappings` random three-level mappings and
// `Figure8Experiments` random experiments per mapping; each pair is
// simulated `Figure8Reps` times and the mean time per simulation is
// recorded; the point plotted is the median over pairs.
func RunFigure8(scale Scale) (*Figure8Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	res := &Figure8Result{}
	for ports := 4; ports <= 20; ports++ {
		p, err := figure8Config(scale, ports, 4, int64(ports)*7+scale.Seed)
		if err != nil {
			return nil, err
		}
		res.PortSweep = append(res.PortSweep, p)
	}
	for length := 1; length <= 10; length++ {
		p, err := figure8Config(scale, 10, length, int64(length)*13+scale.Seed)
		if err != nil {
			return nil, err
		}
		p.X = length
		res.LengthSweep = append(res.LengthSweep, p)
	}
	return res, nil
}

// figure8Config measures one (ports, length) configuration.
func figure8Config(scale Scale, ports, length int, seed int64) (Figure8Point, error) {
	rng := rand.New(rand.NewSource(seed))
	var bnTimes, lpTimes []float64
	var ev throughput.Evaluator
	for m := 0; m < scale.Figure8Mappings; m++ {
		mapping := portmap.Random(rng, portmap.RandomOptions{
			NumInsts: figure8ISASize,
			NumPorts: ports,
			MaxUops:  3, // realistic µop counts per instruction
		})
		for e := 0; e < scale.Figure8Experiments; e++ {
			expr := portmap.RandomExperiment(rng, figure8ISASize, length)
			terms := mapping.Flatten(expr)

			// Bottleneck simulation algorithm: the paper's Θ(2^|P|)
			// table variant, so the exponential port-count behaviour
			// of §5.4 stays measurable (the production entry point
			// Evaluator.Bottleneck additionally dispatches to a
			// union-enumeration shortcut; see the ablation benchmarks).
			start := time.Now()
			var bn float64
			for r := 0; r < scale.Figure8Reps; r++ {
				bn = ev.BottleneckTable(terms)
			}
			bnTimes = append(bnTimes, time.Since(start).Seconds()/float64(scale.Figure8Reps))

			// LP solver, including model construction (§5.4: "The
			// running times reported for the LP version include model
			// construction ... as well as the actual solving").
			start = time.Now()
			var lpv float64
			for r := 0; r < scale.Figure8Reps; r++ {
				v, err := throughput.LP(terms, ports)
				if err != nil {
					return Figure8Point{}, err
				}
				lpv = v
			}
			lpTimes = append(lpTimes, time.Since(start).Seconds()/float64(scale.Figure8Reps))

			// Cross-check while we are here: both engines must agree.
			if diff := bn - lpv; diff > 1e-6 || diff < -1e-6 {
				return Figure8Point{}, fmt.Errorf(
					"engines disagree at ports=%d length=%d: %g vs %g", ports, length, bn, lpv)
			}
		}
	}
	return Figure8Point{
		X:             ports,
		BottleneckSec: stats.Median(bnTimes),
		LPSec:         stats.Median(lpTimes),
	}, nil
}

// Render draws both sweeps as text tables.
func (r *Figure8Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8a. Time per simulation, varying port count (experiment length 4)\n\n")
	b.WriteString("ports   bottleneck (s)  LP solver (s)  speedup\n")
	for _, p := range r.PortSweep {
		fmt.Fprintf(&b, "%5d   %14.3g  %13.3g  %6.1fx\n",
			p.X, p.BottleneckSec, p.LPSec, p.LPSec/p.BottleneckSec)
	}
	b.WriteString("\nFigure 8b. Time per simulation, varying experiment length (10 ports)\n\n")
	b.WriteString("length  bottleneck (s)  LP solver (s)  speedup\n")
	for _, p := range r.LengthSweep {
		fmt.Fprintf(&b, "%5d   %14.3g  %13.3g  %6.1fx\n",
			p.X, p.BottleneckSec, p.LPSec, p.LPSec/p.BottleneckSec)
	}
	return b.String()
}

// WriteCSV emits both sweeps.
func (r *Figure8Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "sweep,x,bottleneck_sec,lp_sec"); err != nil {
		return err
	}
	for _, p := range r.PortSweep {
		if _, err := fmt.Fprintf(w, "ports,%d,%.9g,%.9g\n", p.X, p.BottleneckSec, p.LPSec); err != nil {
			return err
		}
	}
	for _, p := range r.LengthSweep {
		if _, err := fmt.Fprintf(w, "length,%d,%.9g,%.9g\n", p.X, p.BottleneckSec, p.LPSec); err != nil {
			return err
		}
	}
	return nil
}
