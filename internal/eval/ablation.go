package eval

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"pmevo/internal/evo"
	"pmevo/internal/exp"
	"pmevo/internal/portmap"
	"pmevo/internal/stats"
	"pmevo/internal/throughput"
)

// ExperimentDesignResult compares inference quality under different
// experiment-set designs (§4.1's design-space exploration): singletons
// plus plain pairs only, the paper's design (plus weighted pairs), and
// the paper's design extended with triples. For each design the EA runs
// on measurements from a hidden random machine and is scored on a fresh
// probe set against the hidden truth.
type ExperimentDesignResult struct {
	Rows []ExperimentDesignRow
}

// ExperimentDesignRow is one design's outcome.
type ExperimentDesignRow struct {
	Design      string
	Experiments int
	TrainDavg   float64
	ProbeMAPE   float64
}

// RunExperimentDesignAblation evaluates the three designs on `trials`
// hidden machines and averages the scores.
func RunExperimentDesignAblation(ctx context.Context, scale Scale, trials int) (*ExperimentDesignResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	if trials < 1 {
		return nil, fmt.Errorf("eval: need at least one trial")
	}
	const (
		numInsts = 10
		numPorts = 6
		probeLen = 4
		probes   = 200
	)
	designs := []string{"pairs-only", "paper (weighted pairs)", "paper + triples"}
	sums := make([]ExperimentDesignRow, len(designs))
	for i := range sums {
		sums[i].Design = designs[i]
	}

	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(scale.Seed + int64(trial)*101))
		hidden := portmap.Random(rng, portmap.RandomOptions{
			NumInsts: numInsts, NumPorts: numPorts, MaxUops: 2,
		})
		oracle := oracleMeasurer{hidden}

		// The full paper set, measured once; designs select subsets.
		full, err := exp.GenerateAndMeasure(ctx, oracle, numInsts)
		if err != nil {
			return nil, err
		}

		// Design 0: singletons + plain pairs only.
		pairsOnly := &exp.Set{NumInsts: numInsts, Individual: full.Individual}
		for _, m := range full.Measurements {
			n := m.Exp.Normalize()
			plain := true
			for _, t := range n {
				if t.Count != 1 {
					plain = false
				}
			}
			if plain {
				pairsOnly.Measurements = append(pairsOnly.Measurements, m)
			}
		}

		// Design 2: the paper's set extended with measured triples.
		withTriples := &exp.Set{
			NumInsts:     numInsts,
			Individual:   full.Individual,
			Measurements: append([]exp.Measurement(nil), full.Measurements...),
		}
		if _, err := withTriples.ExtendWithTriples(oracle, rng, 40, true); err != nil {
			return nil, err
		}

		sets := []*exp.Set{pairsOnly, full, withTriples}
		probesExps := make([]portmap.Experiment, probes)
		meas := make([]float64, probes)
		for i := range probesExps {
			probesExps[i] = portmap.RandomExperiment(rng, numInsts, probeLen)
			meas[i] = throughput.OfExperiment(hidden, probesExps[i])
		}

		for d, set := range sets {
			opts := evo.Options{
				PopulationSize:  scale.Population,
				MaxGenerations:  scale.MaxGenerations,
				NumPorts:        numPorts,
				LocalSearch:     true,
				VolumeObjective: true,
				Seed:            scale.Seed + int64(trial),
			}
			res, err := evo.Run(ctx, set, opts)
			if err != nil {
				return nil, err
			}
			pred := make([]float64, probes)
			for i, e := range probesExps {
				pred[i] = throughput.OfExperiment(res.Best, e)
			}
			sums[d].Experiments += set.NumExperiments()
			sums[d].TrainDavg += res.BestError
			sums[d].ProbeMAPE += stats.MAPE(pred, meas)
		}
	}
	for i := range sums {
		sums[i].Experiments /= trials
		sums[i].TrainDavg /= float64(trials)
		sums[i].ProbeMAPE /= float64(trials)
	}
	return &ExperimentDesignResult{Rows: sums}, nil
}

type oracleMeasurer struct{ m *portmap.Mapping }

func (o oracleMeasurer) Measure(e portmap.Experiment) (float64, error) {
	return throughput.OfExperiment(o.m, e), nil
}

// Render formats the ablation table.
func (r *ExperimentDesignResult) Render() string {
	var b strings.Builder
	b.WriteString("Experiment-design ablation (§4.1): inference quality by experiment set\n\n")
	b.WriteString("design                    experiments  train Davg  probe MAPE\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-25s %11d  %9.3f  %9.1f%%\n",
			row.Design, row.Experiments, row.TrainDavg, row.ProbeMAPE)
	}
	return b.String()
}

// WriteCSV emits the rows.
func (r *ExperimentDesignResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "design,experiments,train_davg,probe_mape"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%s,%d,%.4f,%.4f\n",
			row.Design, row.Experiments, row.TrainDavg, row.ProbeMAPE); err != nil {
			return err
		}
	}
	return nil
}
