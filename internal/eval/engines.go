package eval

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"pmevo/internal/engine"
	"pmevo/internal/exp"
	"pmevo/internal/uarch"
)

// EngineCheckLine is one predicted throughput of the engine-consistency
// dump: experiment Key on processor Proc's ground-truth mapping.
type EngineCheckLine struct {
	Proc       string
	Key        string
	Throughput float64
}

// EngineCheckResult is the output of RunEngineCheck. Runs with
// different engines over the same seed cover the identical experiments,
// so two dumps can be compared line by line — the acceptance check that
// `pmevo-bench -engine=lp` and `-engine=bottleneck` agree on the
// Table 1 configurations.
type EngineCheckResult struct {
	Engine string
	Lines  []EngineCheckLine
}

// engineCheckExperiments is the number of random multiset experiments
// predicted per processor, on top of every singleton.
const engineCheckExperiments = 64

// RunEngineCheck predicts a deterministic experiment set — all
// singletons plus random multisets up to length 5 — on the ground-truth
// mapping of every Table 1 processor with the named engine, using the
// batched PredictAll interface.
func RunEngineCheck(engineName string, seed int64) (*EngineCheckResult, error) {
	eng, err := engine.ByName(engineName)
	if err != nil {
		return nil, err
	}
	res := &EngineCheckResult{Engine: eng.Name()}
	for pi, proc := range uarch.All() {
		m := proc.GroundTruth
		es := exp.Singletons(m.NumInsts())
		rng := rand.New(rand.NewSource(seed + int64(pi)))
		es = append(es, exp.RandomBenchmarkSet(rng, m.NumInsts(), engineCheckExperiments, 5)...)
		out := make([]float64, len(es))
		if err := eng.PredictAll(m, es, out); err != nil {
			return nil, fmt.Errorf("engine check on %s: %w", proc.Name, err)
		}
		for i, e := range es {
			res.Lines = append(res.Lines, EngineCheckLine{
				Proc:       proc.Name,
				Key:        e.Key(),
				Throughput: out[i],
			})
		}
	}
	return res, nil
}

// Render prints the dump with enough digits that diffing two runs
// detects disagreements beyond 1e-9.
func (r *EngineCheckResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Engine consistency dump (engine=%s): ground-truth throughputs on the Table 1 processors\n\n", r.Engine)
	for _, l := range r.Lines {
		fmt.Fprintf(&b, "%-4s %-24s %.12g\n", l.Proc, l.Key, l.Throughput)
	}
	return b.String()
}

// WriteCSV emits the dump for machine comparison.
func (r *EngineCheckResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "proc,experiment,throughput"); err != nil {
		return err
	}
	for _, l := range r.Lines {
		if _, err := fmt.Fprintf(w, "%s,%q,%.12g\n", l.Proc, l.Key, l.Throughput); err != nil {
			return err
		}
	}
	return nil
}
