package eval

import (
	"context"
	"testing"

	"pmevo/internal/measure"
)

// TestMeasureBenchWarmStartRoundTrip is the driver-level pin of the
// acceptance criterion: a measurement bench warm-started from a spill
// file written by an earlier ("cold") invocation must report a nonzero
// disk-warm hit rate and — enforced inside the driver against the
// brute-force baseline — bit-identical measurements. The fresh process
// is simulated by flushing the in-memory cache between the two phases.
func TestMeasureBenchWarmStartRoundTrip(t *testing.T) {
	scale := QuickScale()
	dir := t.TempDir()

	// Pollute the process-wide cache: entries earlier drivers paid for
	// must not leak into the benchmark's attribution (the driver
	// flushes and reloads exactly the spill file).
	if _, err := runMeasureBenchArch(context.Background(), "A72", scale, ""); err != nil {
		t.Fatal(err)
	}

	cold, err := runMeasureBenchArch(context.Background(), "A72", scale, dir) // no spill file yet
	if err != nil {
		t.Fatal(err)
	}
	if cold.Fast.SimWarmHits != 0 {
		t.Fatalf("cold run reported %d disk-warm hits", cold.Fast.SimWarmHits)
	}
	if cold.Fast.SimMisses == 0 {
		t.Fatal("cold run paid for nothing; pollution from the earlier run leaked in")
	}

	measure.FlushSimCache() // "new process"
	warm, err := runMeasureBenchArch(context.Background(), "A72", scale, dir)
	if err != nil {
		t.Fatal(err) // includes the in-driver fast-vs-baseline bit-equality check
	}
	if warm.Fast.SimWarmHits == 0 {
		t.Error("warm run reported no disk-warm hits")
	}
	// The direct-mapped table drops slot-colliding keys, so the spill is
	// not a complete kernel set — but the warm start must eliminate the
	// bulk of the cold run's simulations.
	if warm.Fast.SimMisses*10 >= cold.Fast.SimMisses {
		t.Errorf("warm run misses %d not well below cold misses %d",
			warm.Fast.SimMisses, cold.Fast.SimMisses)
	}
	measure.FlushSimCache() // leave no warm state behind for other tests
}

// TestFitnessBenchWarmStartRoundTrip: the fitness bench with a cache
// directory must spill its memo on the first invocation, warm-start the
// second from it with nonzero disk-warm traffic, and converge to the
// bit-identical best error (the in-driver cached-vs-uncached equality
// additionally pins warm == cold).
func TestFitnessBenchWarmStartRoundTrip(t *testing.T) {
	scale := QuickScale()
	scale.Population = 30
	scale.MaxGenerations = 5
	scale.Seed = 3
	dir := t.TempDir()

	cold, err := RunFitnessBench(context.Background(), scale, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.WarmStart || cold.WarmEntries != 0 {
		t.Fatalf("first invocation should cold-start: %+v", cold)
	}
	if cold.Cached.MemoWarmHits != 0 {
		t.Fatalf("cold run reported %d disk-warm hits", cold.Cached.MemoWarmHits)
	}

	warm, err := RunFitnessBench(context.Background(), scale, dir)
	if err != nil {
		t.Fatal(err)
	}
	if warm.WarmEntries == 0 {
		t.Fatal("second invocation loaded no memo entries")
	}
	if warm.Cached.MemoWarmHits == 0 {
		t.Error("second invocation served no disk-warm hits")
	}
	if warm.Cached.BestError != cold.Cached.BestError {
		t.Errorf("warm best error %v != cold %v (warm start must be bit-exact)",
			warm.Cached.BestError, cold.Cached.BestError)
	}
}
