package eval

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"pmevo/internal/exp"
	"pmevo/internal/measure"
	"pmevo/internal/portmap"
	"pmevo/internal/predictors"
	"pmevo/internal/stats"
	"pmevo/internal/uarch"
)

// Figure6Result holds the model-validation sweep of paper Figure 6: the
// MAPE of the ground-truth port mapping ("uops.info") and of the
// IACA-style predictor against measurements, for experiment lengths
// 1..MaxLen on SKL.
type Figure6Result struct {
	Lengths      []int
	MAPEUopsInfo []float64
	MAPEIACA     []float64
	Samples      []int
}

// RunFigure6 measures the sweep.
func RunFigure6(ctx context.Context, scale Scale) (*Figure6Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	proc := uarch.SKL()
	mopts := measure.DefaultOptions()
	mopts.Seed = scale.Seed
	h, err := measure.NewHarness(proc, mopts)
	if err != nil {
		return nil, err
	}
	ui, err := predictors.UopsInfo(proc)
	if err != nil {
		return nil, err
	}
	iaca, err := predictors.IACA(proc)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(scale.Seed + 6))
	res := &Figure6Result{}
	for length := 1; length <= scale.Figure6MaxLen; length++ {
		var es []portmap.Experiment
		if length == 1 {
			// Length 1: the set of all supported instructions (§5.2).
			es = exp.Singletons(proc.ISA.NumForms())
			if scale.MaxFormsPerClass > 0 {
				_, ids, err := subsetForms(proc.ISA, scale.MaxFormsPerClass)
				if err != nil {
					return nil, err
				}
				es = es[:0]
				for _, id := range ids {
					es = append(es, portmap.Experiment{{Inst: id, Count: 1}})
				}
			}
		} else {
			es = exp.RandomBenchmarkSet(rng, proc.ISA.NumForms(), scale.Figure6Samples, length)
		}
		meas, err := h.MeasureAll(ctx, es)
		if err != nil {
			return nil, err
		}
		predUI := make([]float64, len(es))
		if err := predictors.PredictAll(ui, es, predUI); err != nil {
			return nil, err
		}
		predIACA := make([]float64, len(es))
		if err := predictors.PredictAll(iaca, es, predIACA); err != nil {
			return nil, err
		}
		res.Lengths = append(res.Lengths, length)
		res.MAPEUopsInfo = append(res.MAPEUopsInfo, stats.MAPE(predUI, meas))
		res.MAPEIACA = append(res.MAPEIACA, stats.MAPE(predIACA, meas))
		res.Samples = append(res.Samples, len(es))
	}
	return res, nil
}

// Render draws the figure as a text table.
func (r *Figure6Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6. MAPE of ground-truth simulation (uops.info) and IACA\n")
	b.WriteString("vs. measurements, by experiment length (SKL)\n\n")
	b.WriteString("length  samples  uops.info MAPE  IACA MAPE\n")
	for i, l := range r.Lengths {
		fmt.Fprintf(&b, "%6d  %7d  %13.1f%%  %8.1f%%\n",
			l, r.Samples[i], r.MAPEUopsInfo[i], r.MAPEIACA[i])
	}
	return b.String()
}

// WriteCSV emits the series for plotting.
func (r *Figure6Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "length,samples,mape_uopsinfo,mape_iaca"); err != nil {
		return err
	}
	for i, l := range r.Lengths {
		if _, err := fmt.Fprintf(w, "%d,%d,%.4f,%.4f\n",
			l, r.Samples[i], r.MAPEUopsInfo[i], r.MAPEIACA[i]); err != nil {
			return err
		}
	}
	return nil
}
