package eval

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestExperimentDesignAblation(t *testing.T) {
	scale := QuickScale()
	scale.Population = 120
	scale.MaxGenerations = 20
	res, err := RunExperimentDesignAblation(context.Background(), scale, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d designs", len(res.Rows))
	}
	// The paper's design includes the pairs-only set plus weighted pairs.
	if res.Rows[1].Experiments <= res.Rows[0].Experiments {
		t.Errorf("paper design should measure more experiments than pairs-only: %d vs %d",
			res.Rows[1].Experiments, res.Rows[0].Experiments)
	}
	if res.Rows[2].Experiments <= res.Rows[1].Experiments {
		t.Errorf("triples design should measure more experiments: %d vs %d",
			res.Rows[2].Experiments, res.Rows[1].Experiments)
	}
	for _, row := range res.Rows {
		if row.ProbeMAPE < 0 || row.ProbeMAPE > 200 {
			t.Errorf("%s: implausible probe MAPE %.1f", row.Design, row.ProbeMAPE)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "pairs-only") || !strings.Contains(out, "paper + triples") {
		t.Errorf("render missing designs:\n%s", out)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "\n") != 4 {
		t.Errorf("CSV line count wrong:\n%s", buf.String())
	}
}

func TestExperimentDesignAblationValidation(t *testing.T) {
	if _, err := RunExperimentDesignAblation(context.Background(), QuickScale(), 0); err == nil {
		t.Error("zero trials accepted")
	}
	bad := QuickScale()
	bad.Population = 0
	if _, err := RunExperimentDesignAblation(context.Background(), bad, 1); err == nil {
		t.Error("invalid scale accepted")
	}
}
