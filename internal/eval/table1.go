package eval

import (
	"fmt"
	"strings"

	"pmevo/internal/uarch"
)

// Table1 renders the evaluated-processors overview (paper Table 1).
func Table1() string {
	procs := uarch.All()
	var b strings.Builder
	b.WriteString("Table 1. Evaluated processors\n\n")
	rows := []struct {
		label string
		get   func(*uarch.Processor) string
	}{
		{"Manufact.", func(p *uarch.Processor) string { return p.Manufacturer }},
		{"Processor", func(p *uarch.Processor) string { return p.ProcessorStr }},
		{"Microarch.", func(p *uarch.Processor) string { return p.Microarch }},
		{"# Ports", func(p *uarch.Processor) string { return p.PortsStr }},
		{"Instr. Set", func(p *uarch.Processor) string { return p.InstrSet }},
		{"Clock Freq.", func(p *uarch.Processor) string { return fmt.Sprintf("%.1f GHz", p.ClockGHz) }},
		{"RAM", func(p *uarch.Processor) string { return fmt.Sprintf("%d GB", p.RAMGB) }},
		{"Port counters", func(p *uarch.Processor) string {
			if p.HasPortCounters {
				return "yes"
			}
			return "no"
		}},
	}
	fmt.Fprintf(&b, "%-14s", "")
	for _, p := range procs {
		fmt.Fprintf(&b, "%-16s", p.Name)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s", r.label)
		for _, p := range procs {
			fmt.Fprintf(&b, "%-16s", r.get(p))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
