package throughput

import (
	"math"
	"math/rand"
	"testing"

	"pmevo/internal/portmap"
)

// paperExampleMapping is the three-level mapping of Figure 4 with ports
// P1..P3 at indices 0..2 and instructions mul=0, add=1, sub=2, store=3.
func paperExampleMapping() *portmap.Mapping {
	m := portmap.NewMapping(4, 3)
	u1 := portmap.MakePortSet(0)
	u2 := portmap.MakePortSet(0, 1)
	u3 := portmap.MakePortSet(2)
	m.SetDecomp(0, []portmap.UopCount{{Ports: u1, Count: 2}})
	m.SetDecomp(1, []portmap.UopCount{{Ports: u2, Count: 1}})
	m.SetDecomp(2, []portmap.UopCount{{Ports: u2, Count: 1}})
	m.SetDecomp(3, []portmap.UopCount{{Ports: u2, Count: 1}, {Ports: u3, Count: 1}})
	return m
}

// twoLevelPaperMapping is the two-level mapping of Figure 2: mul→{P1},
// add,sub→{P1,P2}, store→{P3}.
func twoLevelPaperMapping() *portmap.Mapping {
	return portmap.TwoLevelFromPorts(3, []portmap.PortSet{
		portmap.MakePortSet(0),
		portmap.MakePortSet(0, 1),
		portmap.MakePortSet(0, 1),
		portmap.MakePortSet(2),
	})
}

func TestPaperExample1(t *testing.T) {
	// Example 1: e = {add→2, mul→1, store→1} under the Figure 2 mapping
	// has throughput 1.5 (ports P1, P2 are the bottleneck).
	m := twoLevelPaperMapping()
	e := portmap.Experiment{{Inst: 1, Count: 2}, {Inst: 0, Count: 1}, {Inst: 3, Count: 1}}
	got := OfExperiment(m, e)
	if math.Abs(got-1.5) > 1e-9 {
		t.Errorf("throughput = %g, want 1.5", got)
	}
	gotLP, err := OfExperimentLP(m, e)
	if err != nil {
		t.Fatalf("LP: %v", err)
	}
	if math.Abs(gotLP-1.5) > 1e-6 {
		t.Errorf("LP throughput = %g, want 1.5", gotLP)
	}
}

func TestThreeLevelStoreConflict(t *testing.T) {
	// Under the Figure 4 three-level mapping, a store costs one p01 µop
	// and one p2 µop. Experiment {store→2}: masses p01=2, p2=2; the
	// bottleneck is {P2} with 2/1 = 2? No: p01 mass 2 over 2 ports = 1,
	// p2 mass 2 on 1 port = 2. Throughput 2.
	m := paperExampleMapping()
	got := OfExperiment(m, portmap.Experiment{{Inst: 3, Count: 2}})
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("throughput = %g, want 2", got)
	}

	// {add→1, store→1}: masses p01 = 2, p2 = 1. Q={P1,P2}: 2/2=1;
	// Q={P3}: 1. Q={P1,P2,P3}: 3/3=1. Throughput 1.
	got = OfExperiment(m, portmap.Experiment{{Inst: 1, Count: 1}, {Inst: 3, Count: 1}})
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("throughput = %g, want 1", got)
	}
}

func TestMulDoubleUop(t *testing.T) {
	// mul decomposes into two p0 µops: {mul→1} has throughput 2.
	m := paperExampleMapping()
	got := OfExperiment(m, portmap.Experiment{{Inst: 0, Count: 1}})
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("throughput = %g, want 2", got)
	}
}

func TestEmptyExperiment(t *testing.T) {
	m := paperExampleMapping()
	if got := OfExperiment(m, nil); got != 0 {
		t.Errorf("empty experiment throughput = %g, want 0", got)
	}
	v, err := LP(nil, 3)
	if err != nil || v != 0 {
		t.Errorf("LP(empty) = %g, %v; want 0, nil", v, err)
	}
	if got := BottleneckNaive(nil); got != 0 {
		t.Errorf("naive empty = %g, want 0", got)
	}
	if got := BottleneckUnion(nil); got != 0 {
		t.Errorf("union empty = %g, want 0", got)
	}
}

func TestEmptyPortSetMassIsInf(t *testing.T) {
	terms := []portmap.MassTerm{{Ports: 0, Mass: 1}}
	if !math.IsInf(Bottleneck(terms), 1) {
		t.Error("Bottleneck of unexecutable µop should be +Inf")
	}
	if !math.IsInf(BottleneckNaive(terms), 1) {
		t.Error("BottleneckNaive of unexecutable µop should be +Inf")
	}
	if !math.IsInf(BottleneckUnion(terms), 1) {
		t.Error("BottleneckUnion of unexecutable µop should be +Inf")
	}
	v, err := LP(terms, 3)
	if err != nil || !math.IsInf(v, 1) {
		t.Errorf("LP of unexecutable µop = %g, %v; want +Inf", v, err)
	}
}

func TestZeroMassTermsIgnored(t *testing.T) {
	terms := []portmap.MassTerm{
		{Ports: portmap.MakePortSet(0), Mass: 0},
		{Ports: portmap.MakePortSet(1), Mass: 3},
	}
	if got := Bottleneck(terms); math.Abs(got-3) > 1e-9 {
		t.Errorf("throughput = %g, want 3", got)
	}
}

func TestSinglePortSaturation(t *testing.T) {
	// All mass on one port: throughput equals total mass.
	terms := []portmap.MassTerm{
		{Ports: portmap.MakePortSet(4), Mass: 2.5},
		{Ports: portmap.MakePortSet(4), Mass: 1.5},
	}
	for name, got := range map[string]float64{
		"sos":   Bottleneck(terms),
		"naive": BottleneckNaive(terms),
		"union": BottleneckUnion(terms),
	} {
		if math.Abs(got-4) > 1e-9 {
			t.Errorf("%s throughput = %g, want 4", name, got)
		}
	}
}

func TestDisjointPortsBalance(t *testing.T) {
	// Two µops on disjoint port pairs: each limits independently.
	terms := []portmap.MassTerm{
		{Ports: portmap.MakePortSet(0, 1), Mass: 6},
		{Ports: portmap.MakePortSet(2, 3), Mass: 2},
	}
	// {P0,P1}: 6/2 = 3; whole set: 8/4 = 2. Max is 3.
	if got := Bottleneck(terms); math.Abs(got-3) > 1e-9 {
		t.Errorf("throughput = %g, want 3", got)
	}
}

func TestPartialOverlapSpilling(t *testing.T) {
	// µop A on {P0}, µop B on {P0,P1}: optimal scheduler pushes B to P1.
	terms := []portmap.MassTerm{
		{Ports: portmap.MakePortSet(0), Mass: 1},
		{Ports: portmap.MakePortSet(0, 1), Mass: 1},
	}
	// Q={P0}: 1; Q={P0,P1}: 2/2=1. Throughput 1.
	if got := Bottleneck(terms); math.Abs(got-1) > 1e-9 {
		t.Errorf("throughput = %g, want 1", got)
	}
}

func TestFractionalMasses(t *testing.T) {
	terms := []portmap.MassTerm{
		{Ports: portmap.MakePortSet(0), Mass: 0.5},
		{Ports: portmap.MakePortSet(0, 1), Mass: 1.25},
	}
	// Q={P0}: 0.5; Q={P0,P1}: 1.75/2 = 0.875. Throughput 0.875.
	if got := Bottleneck(terms); math.Abs(got-0.875) > 1e-9 {
		t.Errorf("throughput = %g, want 0.875", got)
	}
}

func randomTerms(rng *rand.Rand, numPorts, n int) []portmap.MassTerm {
	terms := make([]portmap.MassTerm, n)
	for i := range terms {
		terms[i] = portmap.MassTerm{
			Ports: portmap.RandomPortSet(rng, numPorts),
			Mass:  rng.Float64() * 10,
		}
	}
	return terms
}

// TestEnginesAgreeRandom is the correctness cross-validation of the
// bottleneck simulation algorithm (paper Appendix A): for random µop
// masses, all five engines must produce the same throughput.
func TestEnginesAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	var ev Evaluator
	for trial := 0; trial < 400; trial++ {
		numPorts := 1 + rng.Intn(8)
		n := 1 + rng.Intn(8)
		terms := randomTerms(rng, numPorts, n)

		dispatched := Bottleneck(terms)
		table := ev.BottleneckTable(terms)
		naive := BottleneckNaive(terms)
		union := BottleneckUnion(terms)
		lpVal, err := LP(terms, numPorts)
		if err != nil {
			t.Fatalf("trial %d: LP error: %v", trial, err)
		}
		if math.Abs(dispatched-naive) > 1e-9 {
			t.Fatalf("trial %d: dispatched %g != naive %g\nterms: %v", trial, dispatched, naive, terms)
		}
		if math.Abs(dispatched-table) > 1e-9 {
			t.Fatalf("trial %d: dispatched %g != table %g\nterms: %v", trial, dispatched, table, terms)
		}
		if math.Abs(dispatched-union) > 1e-9 {
			t.Fatalf("trial %d: dispatched %g != union %g\nterms: %v", trial, dispatched, union, terms)
		}
		if math.Abs(dispatched-lpVal) > 1e-6 {
			t.Fatalf("trial %d: dispatched %g != LP %g\nterms: %v", trial, dispatched, lpVal, terms)
		}
	}
}

// TestEnginesAgreeOnMappings cross-validates on full three-level mappings
// and multi-instruction experiments.
func TestEnginesAgreeOnMappings(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		numPorts := 2 + rng.Intn(7)
		numInsts := 3 + rng.Intn(10)
		m := portmap.Random(rng, portmap.RandomOptions{
			NumInsts: numInsts, NumPorts: numPorts,
		})
		e := portmap.RandomExperiment(rng, numInsts, 1+rng.Intn(6))
		bn := OfExperiment(m, e)
		lpVal, err := OfExperimentLP(m, e)
		if err != nil {
			t.Fatalf("trial %d: LP error: %v", trial, err)
		}
		if math.Abs(bn-lpVal) > 1e-6 {
			t.Fatalf("trial %d: bottleneck %g != LP %g\nmapping:\n%s\nexperiment: %v",
				trial, bn, lpVal, m, e)
		}
	}
}

// TestThroughputLowerBound checks the invariant from the initialization
// rationale (§4.4): an instruction with n instances of µop u has
// individual throughput at least n/|u|.
func TestThroughputLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		numPorts := 1 + rng.Intn(8)
		u := portmap.RandomPortSet(rng, numPorts)
		n := 1 + rng.Intn(5)
		terms := []portmap.MassTerm{{Ports: u, Mass: float64(n)}}
		got := Bottleneck(terms)
		lower := float64(n) / float64(u.Count())
		if got < lower-1e-9 {
			t.Fatalf("throughput %g below lower bound %g for %d×%s", got, lower, n, u)
		}
	}
}

// TestThroughputMonotone checks that adding mass never decreases the
// throughput.
func TestThroughputMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		numPorts := 2 + rng.Intn(6)
		terms := randomTerms(rng, numPorts, 1+rng.Intn(6))
		base := Bottleneck(terms)
		more := append(append([]portmap.MassTerm(nil), terms...),
			portmap.MassTerm{Ports: portmap.RandomPortSet(rng, numPorts), Mass: rng.Float64() * 3})
		grown := Bottleneck(more)
		if grown < base-1e-9 {
			t.Fatalf("adding mass decreased throughput: %g -> %g", base, grown)
		}
	}
}

// TestThroughputScaling checks homogeneity: scaling all masses by c
// scales the throughput by c.
func TestThroughputScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		numPorts := 2 + rng.Intn(6)
		terms := randomTerms(rng, numPorts, 1+rng.Intn(6))
		c := 0.5 + rng.Float64()*4
		scaled := make([]portmap.MassTerm, len(terms))
		for i, mt := range terms {
			scaled[i] = portmap.MassTerm{Ports: mt.Ports, Mass: mt.Mass * c}
		}
		a, b := Bottleneck(terms), Bottleneck(scaled)
		if math.Abs(a*c-b) > 1e-6*(1+math.Abs(b)) {
			t.Fatalf("scaling violated: %g * %g != %g", a, c, b)
		}
	}
}

// TestThreeLevelReduction verifies the §3.2 reduction: computing the
// three-level throughput via Flatten matches a hand-constructed
// two-level problem over µops.
func TestThreeLevelReduction(t *testing.T) {
	m := paperExampleMapping()
	// Experiment {mul→1, add→1, store→1}: µop masses are
	// p0: 2 (mul), p01: 1 (add) + 1 (store), p2: 1 (store).
	e := portmap.Experiment{{Inst: 0, Count: 1}, {Inst: 1, Count: 1}, {Inst: 3, Count: 1}}
	manual := []portmap.MassTerm{
		{Ports: portmap.MakePortSet(0), Mass: 2},
		{Ports: portmap.MakePortSet(0, 1), Mass: 2},
		{Ports: portmap.MakePortSet(2), Mass: 1},
	}
	if got, want := OfExperiment(m, e), Bottleneck(manual); math.Abs(got-want) > 1e-9 {
		t.Errorf("reduction mismatch: %g vs %g", got, want)
	}
}

func TestEvaluatorReuse(t *testing.T) {
	three := paperExampleMapping()
	two := twoLevelPaperMapping()
	var ev Evaluator
	e1 := portmap.Experiment{{Inst: 0, Count: 1}}
	e2 := portmap.Experiment{{Inst: 1, Count: 2}, {Inst: 0, Count: 1}, {Inst: 3, Count: 1}}
	if got := ev.ThroughputOf(three, e1); math.Abs(got-2) > 1e-9 {
		t.Errorf("first eval = %g, want 2", got)
	}
	// Under the three-level mapping, e2 has masses p0:2, p01:3, p2:1;
	// the bottleneck is {P0,P1} with 5/2 = 2.5.
	if got := ev.ThroughputOf(three, e2); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("second eval = %g, want 2.5", got)
	}
	// Same experiment under the two-level Figure 2 mapping: 1.5.
	if got := ev.ThroughputOf(two, e2); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("third eval = %g, want 1.5", got)
	}
	// Re-evaluating the first must still be correct (buffer reuse).
	if got := ev.ThroughputOf(three, e1); math.Abs(got-2) > 1e-9 {
		t.Errorf("fourth eval = %g, want 2", got)
	}
}

func TestHighPortIndices(t *testing.T) {
	// Ports well above the dense range exercise compaction.
	terms := []portmap.MassTerm{
		{Ports: portmap.MakePortSet(40, 50), Mass: 4},
		{Ports: portmap.MakePortSet(50, 63), Mass: 2},
	}
	// Q={40,50}: 4/2=2; Q={50,63}: 2/2=1; Q=all: 6/3=2.
	if got := Bottleneck(terms); math.Abs(got-2) > 1e-9 {
		t.Errorf("throughput = %g, want 2", got)
	}
	if got := BottleneckUnion(terms); math.Abs(got-2) > 1e-9 {
		t.Errorf("union throughput = %g, want 2", got)
	}
}

func TestBottleneckPanicsAboveTableLimit(t *testing.T) {
	var terms []portmap.MassTerm
	for k := 0; k < 23; k++ {
		terms = append(terms, portmap.MassTerm{Ports: portmap.SinglePort(k), Mass: 1})
	}
	defer func() {
		if recover() == nil {
			t.Error("Bottleneck with 23 ports did not panic")
		}
	}()
	Bottleneck(terms)
}

func TestLPOutOfRangePort(t *testing.T) {
	terms := []portmap.MassTerm{{Ports: portmap.MakePortSet(5), Mass: 1}}
	if _, err := LP(terms, 3); err == nil {
		t.Error("LP with out-of-range port succeeded")
	}
}

func TestAnalyzePaperExample(t *testing.T) {
	// Figure 3: e = {add→2, mul→1, store→1}; optimal allocation loads
	// P1 and P2 with 1.5 each and P3 with 1; bottleneck = {P1, P2}.
	m := twoLevelPaperMapping()
	e := portmap.Experiment{{Inst: 1, Count: 2}, {Inst: 0, Count: 1}, {Inst: 3, Count: 1}}
	a, err := Analyze(m, e)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if math.Abs(a.Throughput-1.5) > 1e-6 {
		t.Errorf("Throughput = %g, want 1.5", a.Throughput)
	}
	if math.Abs(a.PortLoad[0]-1.5) > 1e-6 || math.Abs(a.PortLoad[1]-1.5) > 1e-6 {
		t.Errorf("PortLoad = %v, want 1.5 on P0 and P1", a.PortLoad)
	}
	if math.Abs(a.PortLoad[2]-1) > 1e-6 {
		t.Errorf("PortLoad[2] = %g, want 1", a.PortLoad[2])
	}
	if a.Bottleneck != portmap.MakePortSet(0, 1) {
		t.Errorf("Bottleneck = %s, want {P0,P1}", a.Bottleneck)
	}
	// Render should not crash and should mention the throughput.
	out := a.Render([]string{"P1", "P2", "P3"})
	if len(out) == 0 {
		t.Error("empty render")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	m := twoLevelPaperMapping()
	a, err := Analyze(m, nil)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if a.Throughput != 0 {
		t.Errorf("Throughput = %g, want 0", a.Throughput)
	}
}

func TestAnalyzeLoadConservation(t *testing.T) {
	// Port loads must sum to the total µop mass.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		numPorts := 2 + rng.Intn(6)
		numInsts := 2 + rng.Intn(8)
		m := portmap.Random(rng, portmap.RandomOptions{NumInsts: numInsts, NumPorts: numPorts})
		e := portmap.RandomExperiment(rng, numInsts, 1+rng.Intn(5))
		a, err := Analyze(m, e)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		totalMass := 0.0
		for _, mt := range m.Flatten(e) {
			totalMass += mt.Mass
		}
		gotMass := 0.0
		for _, l := range a.PortLoad {
			gotMass += l
			if l > a.Throughput+1e-6 {
				t.Fatalf("trial %d: port load %g exceeds throughput %g", trial, l, a.Throughput)
			}
		}
		if math.Abs(gotMass-totalMass) > 1e-6 {
			t.Fatalf("trial %d: loads sum to %g, want %g", trial, gotMass, totalMass)
		}
	}
}

// wideTerms builds a term list far above smallMergeCutoff with many
// duplicate port sets, the workload where the merge strategy matters.
func wideTerms(rng *rand.Rand, numTerms, numPorts, distinct int) []portmap.MassTerm {
	sets := make([]portmap.PortSet, distinct)
	for i := range sets {
		var p portmap.PortSet
		for p.IsEmpty() {
			for k := 0; k < numPorts; k++ {
				if rng.Intn(3) == 0 {
					p = p.With(k)
				}
			}
		}
		sets[i] = p
	}
	terms := make([]portmap.MassTerm, numTerms)
	for i := range terms {
		terms[i] = portmap.MassTerm{Ports: sets[rng.Intn(distinct)], Mass: 1 + rng.Float64()}
	}
	return terms
}

// TestMergeTermsIndexedMatchesLinear checks that the wide-input index
// path of mergeTerms produces the identical merged list (same
// first-occurrence order, same masses) as the linear path.
func TestMergeTermsIndexedMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		terms := wideTerms(rng, smallMergeCutoff+1+rng.Intn(200), 10, 1+rng.Intn(30))
		var linEv, idxEv Evaluator
		linUsed, linOK := linEv.mergeTermsLinear(terms)
		idxUsed, idxOK := idxEv.mergeTermsIndexed(terms)
		if linOK != idxOK || linUsed != idxUsed {
			t.Fatalf("trial %d: (used, ok) diverged: (%v,%v) vs (%v,%v)",
				trial, linUsed, linOK, idxUsed, idxOK)
		}
		if len(linEv.masks) != len(idxEv.masks) {
			t.Fatalf("trial %d: %d vs %d merged terms", trial, len(linEv.masks), len(idxEv.masks))
		}
		for i := range linEv.masks {
			if linEv.masks[i] != idxEv.masks[i] {
				t.Fatalf("trial %d: merged term %d diverged: %+v vs %+v",
					trial, i, linEv.masks[i], idxEv.masks[i])
			}
		}
	}
}

// BenchmarkMergeTerms compares the pre-optimization O(d²) linear-scan
// merge against the indexed merge on a wide workload (512 terms, 160
// distinct port sets), and documents that the linear scan stays ahead
// on the narrow workloads of the evolutionary hot loop.
func BenchmarkMergeTerms(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	wide := wideTerms(rng, 512, 12, 160)
	narrow := wideTerms(rng, 8, 6, 4)
	b.Run("Wide/Linear", func(b *testing.B) {
		var ev Evaluator
		for i := 0; i < b.N; i++ {
			ev.mergeTermsLinear(wide)
		}
	})
	b.Run("Wide/Indexed", func(b *testing.B) {
		var ev Evaluator
		for i := 0; i < b.N; i++ {
			ev.mergeTermsIndexed(wide)
		}
	})
	b.Run("Narrow/Linear", func(b *testing.B) {
		var ev Evaluator
		for i := 0; i < b.N; i++ {
			ev.mergeTermsLinear(narrow)
		}
	})
	b.Run("Narrow/Dispatched", func(b *testing.B) {
		var ev Evaluator
		for i := 0; i < b.N; i++ {
			ev.mergeTerms(narrow)
		}
	})
}

// TestBottleneckPartsBitIdentical: evaluating an experiment through
// pre-flattened per-instruction parts (the engine's memo-miss path) must
// be bit-identical to ThroughputOf on random mappings and experiments,
// including wide experiments that cross the indexed-merge cutoff.
func TestBottleneckPartsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	var ref, parts Evaluator
	for trial := 0; trial < 300; trial++ {
		numInsts := 2 + rng.Intn(30)
		numPorts := 2 + rng.Intn(9)
		m := portmap.Random(rng, portmap.RandomOptions{
			NumInsts: numInsts, NumPorts: numPorts, MaxUops: 1 + rng.Intn(3),
		})
		e := portmap.RandomExperiment(rng, numInsts, 1+rng.Intn(12))
		if rng.Intn(3) == 0 {
			// Weighted experiments exercise larger scales.
			for i := range e {
				e[i].Count = 1 + rng.Intn(6)
			}
		}

		// Pre-flatten each instruction's unit terms, as the engine does.
		ps := make([]Part, len(e))
		for i, term := range e {
			unit := make([]portmap.MassTerm, len(m.Decomp[term.Inst]))
			for j, uc := range m.Decomp[term.Inst] {
				unit[j] = portmap.MassTerm{Ports: uc.Ports, Mass: float64(uc.Count)}
			}
			ps[i] = Part{Terms: unit, Scale: float64(term.Count)}
		}

		want := ref.ThroughputOf(m, e)
		got := parts.BottleneckParts(ps)
		if got != want {
			t.Fatalf("trial %d: BottleneckParts %v != ThroughputOf %v\nexp %v\nmapping:\n%s",
				trial, got, want, e, m)
		}
	}
}

// TestBottleneckPartsEdgeCases covers the zero-scale, zero-mass, and
// empty-port-set paths of the parts merge.
func TestBottleneckPartsEdgeCases(t *testing.T) {
	var ev Evaluator
	unit := []portmap.MassTerm{{Ports: portmap.MakePortSet(0), Mass: 1}}
	if got := ev.BottleneckParts(nil); got != 0 {
		t.Errorf("no parts: %v, want 0", got)
	}
	if got := ev.BottleneckParts([]Part{{Terms: unit, Scale: 0}}); got != 0 {
		t.Errorf("zero scale: %v, want 0", got)
	}
	bad := []portmap.MassTerm{{Ports: 0, Mass: 2}}
	if got := ev.BottleneckParts([]Part{{Terms: bad, Scale: 1}}); !math.IsInf(got, 1) {
		t.Errorf("empty port set with mass: %v, want +Inf", got)
	}
	if got := ev.BottleneckParts([]Part{{Terms: unit, Scale: 3}}); got != 3 {
		t.Errorf("single port, mass 3: %v, want 3", got)
	}
}
