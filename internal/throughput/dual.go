package throughput

import (
	"fmt"
	"math"

	"pmevo/internal/lp"
	"pmevo/internal/portmap"
)

// DualLP computes the throughput via the dual linear program from the
// paper's Appendix A:
//
//	maximize   Σ_u e(u)·y_u
//	subject to y_u − z_k ≤ 0    for all (u,k) ∈ M
//	           Σ_k z_k = 1
//	           z_k ≥ 0, y_u ≥ 0
//
// (In the paper's formulation the constraint is y_i − z_k ≤ m_ik with
// m_ik = 1 ⇔ (i,k) ∉ M; pairs outside M are never binding at the
// optimum, so only the (u,k) ∈ M rows are materialized here.)
//
// By the strong duality theorem the optimum equals the primal optimum,
// i.e. the throughput t*(e). Computing the throughput both ways and
// checking equality is a machine-checked version of the Appendix A
// correctness argument for the bottleneck simulation algorithm; the
// property tests in this package do exactly that.
func DualLP(terms []portmap.MassTerm, numPorts int) (float64, error) {
	// Merge terms by port set.
	type uop struct {
		ports portmap.PortSet
		mass  float64
	}
	var uops []uop
	for _, t := range terms {
		if t.Mass == 0 {
			continue
		}
		if t.Ports.IsEmpty() {
			return math.Inf(1), nil
		}
		found := false
		for i := range uops {
			if uops[i].ports == t.Ports {
				uops[i].mass += t.Mass
				found = true
				break
			}
		}
		if !found {
			uops = append(uops, uop{t.Ports, t.Mass})
		}
	}
	if len(uops) == 0 {
		return 0, nil
	}

	p := lp.NewProblem(lp.Maximize)
	zs := make([]lp.Var, numPorts)
	zUsed := make([]bool, numPorts)
	ys := make([]lp.Var, len(uops))
	for i, u := range uops {
		ys[i] = p.AddVariable(u.mass)
		for _, k := range u.ports.Ports() {
			if k >= numPorts {
				return 0, fmt.Errorf("throughput: port %d out of range (%d ports)", k, numPorts)
			}
			if !zUsed[k] {
				zs[k] = p.AddVariable(0)
				zUsed[k] = true
			}
		}
	}
	for i, u := range uops {
		for _, k := range u.ports.Ports() {
			if err := p.AddConstraint([]lp.Term{{Var: ys[i], Coeff: 1}, {Var: zs[k], Coeff: -1}}, lp.LE, 0); err != nil {
				return 0, err
			}
		}
	}
	var sumZ []lp.Term
	for k := 0; k < numPorts; k++ {
		if zUsed[k] {
			sumZ = append(sumZ, lp.Term{Var: zs[k], Coeff: 1})
		}
	}
	if err := p.AddConstraint(sumZ, lp.EQ, 1); err != nil {
		return 0, err
	}

	sol := p.Solve()
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("throughput: dual LP status %v", sol.Status)
	}
	// The dual objective is Σ m_u y_u scaled by the implicit 1/Σz = 1;
	// with Σ z_k = 1 the objective is directly the throughput... up to
	// one subtlety: the bottleneck characterization divides by |Q|. The
	// witness z_k = 1/|Q*| for k ∈ Q*, y_u = 1/|Q*| for Ports(u) ⊆ Q*
	// attains exactly max_Q Σ{e(u) | Ports(u) ⊆ Q}/|Q| (Appendix A,
	// part II).
	return sol.Objective, nil
}

// BottleneckWitness returns the optimal bottleneck port set Q* of
// Equation 1 along with the throughput: the set of ports whose combined
// mass-to-width ratio attains the maximum. When several subsets attain
// the optimum, the smallest (by popcount, then by bitmask value) is
// returned. An empty set is returned for empty experiments.
func BottleneckWitness(terms []portmap.MassTerm) (portmap.PortSet, float64) {
	// Merge by mask.
	var masks []maskMass
	var used portmap.PortSet
	for _, t := range terms {
		if t.Mass == 0 {
			continue
		}
		if t.Ports.IsEmpty() {
			return 0, math.Inf(1)
		}
		used |= t.Ports
		found := false
		for i := range masks {
			if masks[i].ports == t.Ports {
				masks[i].mass += t.Mass
				found = true
				break
			}
		}
		if !found {
			masks = append(masks, maskMass{ports: t.Ports, mass: t.Mass})
		}
	}
	if len(masks) == 0 {
		return 0, 0
	}
	if len(masks) > 24 {
		panic("throughput: too many distinct µops for witness enumeration")
	}
	bestQ := portmap.PortSet(0)
	best := -1.0
	for s := 1; s < 1<<uint(len(masks)); s++ {
		var q portmap.PortSet
		for j := 0; j < len(masks); j++ {
			if s&(1<<uint(j)) != 0 {
				q |= masks[j].ports
			}
		}
		mass := 0.0
		for i := range masks {
			if masks[i].ports.SubsetOf(q) {
				mass += masks[i].mass
			}
		}
		v := mass / float64(q.Count())
		const eps = 1e-12
		switch {
		case v > best+eps:
			best, bestQ = v, q
		case v > best-eps && (q.Count() < bestQ.Count() ||
			(q.Count() == bestQ.Count() && q < bestQ)):
			bestQ = q
		}
	}
	return bestQ, best
}
